// mmap-backed fiber stacks with guard pages.
//
// Used by the simulator's own tests and by the Amber runtime before the
// global address space is up. Amber thread stacks normally come from the
// global object space (mem::) so that threads are mobile objects; this pool
// is the standalone equivalent.

#ifndef AMBER_SRC_SIM_STACK_POOL_H_
#define AMBER_SRC_SIM_STACK_POOL_H_

#include <cstddef>
#include <vector>

namespace sim {

class StackPool {
 public:
  // usable_size is rounded up to whole pages; one extra PROT_NONE guard page
  // sits below every stack so overflow faults instead of corrupting.
  explicit StackPool(size_t usable_size = 256 * 1024);
  ~StackPool();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  // Returns the base of a usable stack region of stack_size() bytes.
  void* Allocate();
  void Free(void* base);

  size_t stack_size() const { return usable_size_; }
  size_t outstanding() const { return allocated_; }

 private:
  size_t usable_size_;
  size_t page_size_;
  std::vector<void*> free_list_;   // usable bases available for reuse
  std::vector<void*> mappings_;    // raw mmap bases (guard page included)
  size_t allocated_ = 0;
};

}  // namespace sim

#endif  // AMBER_SRC_SIM_STACK_POOL_H_
