// Discrete-event queue with a virtual clock.
//
// Events are closures ordered by (time, sequence-number); the sequence number
// makes ordering of simultaneous events deterministic (FIFO within a
// timestamp), which in turn makes every simulation run bit-reproducible.

#ifndef AMBER_SRC_SIM_EVENT_QUEUE_H_
#define AMBER_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/base/panic.h"
#include "src/base/time.h"

namespace sim {

using amber::Duration;
using amber::Time;

class EventQueue {
 public:
  // Schedules fn to run at virtual time t. t must not be in the past.
  void Post(Time t, std::function<void()> fn) {
    AMBER_DCHECK(t >= now_) << "posting event in the past: " << t << " < " << now_;
    heap_.push(Event{t, next_seq_++, std::move(fn)});
  }

  // Runs the earliest pending event, advancing the clock to its timestamp.
  // Returns false if no events remain.
  bool RunOne() {
    if (heap_.empty()) {
      return false;
    }
    // Moving the closure out before popping keeps it alive while it runs and
    // lets it post further events (which may mutate the heap).
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ev.fn();
    return true;
  }

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  // Current virtual time: the timestamp of the most recently started event.
  Time now() const { return now_; }

  // Timestamp of the earliest pending event (queue must be non-empty).
  Time NextTime() const {
    AMBER_DCHECK(!heap_.empty());
    return heap_.top().when;
  }

  uint64_t events_run() const { return next_seq_ - heap_.size(); }

 private:
  struct Event {
    Time when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace sim

#endif  // AMBER_SRC_SIM_EVENT_QUEUE_H_
