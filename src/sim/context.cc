#include "src/sim/context.h"

#include "src/base/panic.h"

#if defined(AMBER_CTX_UCONTEXT)

#include <ucontext.h>

namespace sim {

// ucontext(3) portable fallback. Slower than the assembly path (swapcontext
// performs a sigprocmask syscall per switch) but runs anywhere POSIX does.

struct ContextImpl {
  ucontext_t uctx;
  void (*entry)(void*) = nullptr;
  void* arg = nullptr;
};

namespace {

// makecontext only passes ints, so smuggle the ContextImpl pointer as two
// 32-bit halves (the classic portable idiom).
void TrampolineSplit(unsigned hi, unsigned lo) {
  auto* impl = reinterpret_cast<ContextImpl*>((static_cast<uintptr_t>(hi) << 32) |
                                              static_cast<uintptr_t>(lo));
  impl->entry(impl->arg);
  AMBER_PANIC("fiber entry function returned");
}

}  // namespace

Context::Context() : impl_(new ContextImpl) {}
Context::~Context() { delete impl_; }

void Context::Init(void* stack_base, size_t size, void (*entry)(void*), void* arg) {
  AMBER_CHECK(getcontext(&impl_->uctx) == 0);
  impl_->uctx.uc_stack.ss_sp = stack_base;
  impl_->uctx.uc_stack.ss_size = size;
  impl_->uctx.uc_link = nullptr;
  impl_->entry = entry;
  impl_->arg = arg;
  const auto p = reinterpret_cast<uintptr_t>(impl_);
  makecontext(&impl_->uctx, reinterpret_cast<void (*)()>(TrampolineSplit), 2,
              static_cast<unsigned>(p >> 32), static_cast<unsigned>(p & 0xffffffffu));
}

void Context::Switch(Context* from, Context* to) {
  AMBER_CHECK(swapcontext(&from->impl_->uctx, &to->impl_->uctx) == 0);
}

}  // namespace sim

#else  // assembly implementation

extern "C" {
void amber_ctx_switch(void** save_sp, void* load_sp);
void amber_ctx_trampoline();
}

namespace sim {

Context::Context() = default;
Context::~Context() = default;

void Context::Init(void* stack_base, size_t size, void (*entry)(void*), void* arg) {
  AMBER_CHECK(size >= 1024) << "stack too small: " << size;
  // Place the trampoline return address so that rsp % 16 == 8 right after the
  // final ret in amber_ctx_switch pops it — i.e. the trampoline starts with
  // call-boundary alignment, and its own `call *%rbx` re-establishes the
  // SysV requirement (rsp % 16 == 8 at function entry) for user code.
  uintptr_t top = (reinterpret_cast<uintptr_t>(stack_base) + size) & ~uintptr_t{15};
  auto* ret_slot = reinterpret_cast<uint64_t*>(top - 8);
  *ret_slot = reinterpret_cast<uint64_t>(&amber_ctx_trampoline);

  uint64_t* p = ret_slot;
  *--p = 0;                                  // rbp
  *--p = reinterpret_cast<uint64_t>(entry);  // rbx -> trampoline's call target
  *--p = reinterpret_cast<uint64_t>(arg);    // r12 -> trampoline's argument
  *--p = 0;                                  // r13
  *--p = 0;                                  // r14
  *--p = 0;                                  // r15

  // Seed the new context's FP control slot with the current control words so
  // fibers inherit the process rounding/precision configuration.
  uint32_t mxcsr;
  uint16_t fcw;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));
  --p;
  auto* fp_slot = reinterpret_cast<uint8_t*>(p);
  __builtin_memcpy(fp_slot, &mxcsr, sizeof(mxcsr));
  __builtin_memcpy(fp_slot + 4, &fcw, sizeof(fcw));

  sp_ = p;
}

void Context::Switch(Context* from, Context* to) {
  AMBER_DCHECK(to->sp_ != nullptr) << "switching to an uninitialized context";
  amber_ctx_switch(&from->sp_, to->sp_);
}

}  // namespace sim

#endif
