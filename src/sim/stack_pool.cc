#include "src/sim/stack_pool.h"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>

#include "src/base/panic.h"

namespace sim {

StackPool::StackPool(size_t usable_size) {
  page_size_ = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  usable_size_ = (usable_size + page_size_ - 1) & ~(page_size_ - 1);
}

StackPool::~StackPool() {
  for (void* m : mappings_) {
    munmap(m, usable_size_ + page_size_);
  }
}

void* StackPool::Allocate() {
  ++allocated_;
  if (!free_list_.empty()) {
    void* base = free_list_.back();
    free_list_.pop_back();
    return base;
  }
  void* raw = mmap(nullptr, usable_size_ + page_size_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  AMBER_CHECK(raw != MAP_FAILED) << "stack mmap failed";
  // Guard page at the low end: stacks grow down, so overflow hits it.
  AMBER_CHECK(mprotect(raw, page_size_, PROT_NONE) == 0);
  mappings_.push_back(raw);
  return static_cast<char*>(raw) + page_size_;
}

void StackPool::Free(void* base) {
  AMBER_CHECK(base != nullptr);
  AMBER_DCHECK(allocated_ > 0);
  --allocated_;
  free_list_.push_back(base);
}

}  // namespace sim
