// Fibers: simulated threads of control.
//
// A fiber is a user-level thread (real stack, real context switches on the
// host) whose *time* is virtual: the kernel dispatches it onto a simulated
// processor, it accrues virtual time through Kernel::Charge(), and it blocks
// and migrates through kernel primitives. The Amber runtime layers thread
// objects, invocation stacks and migration semantics on top.

#ifndef AMBER_SRC_SIM_FIBER_H_
#define AMBER_SRC_SIM_FIBER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/base/time.h"
#include "src/sim/context.h"

namespace sim {

using amber::Time;

using NodeId = int32_t;
constexpr NodeId kNoNode = -1;

enum class FiberState {
  kReady,     // on a node's run queue
  kRunning,   // assigned to a processor (may be host-suspended at a Sync point)
  kBlocked,   // waiting for a Wake
  kFinished,  // entry function returned or Exit() was called
};

// Stable lowercase names for dumps and diagnostics.
inline const char* FiberStateName(FiberState s) {
  switch (s) {
    case FiberState::kReady:
      return "ready";
    case FiberState::kRunning:
      return "running";
    case FiberState::kBlocked:
      return "blocked";
    case FiberState::kFinished:
      return "finished";
  }
  return "unknown";
}

class Kernel;

// Plain data plus the machine context. Owned by the Kernel; the stack memory
// is owned by whoever spawned the fiber (the Amber runtime carves thread
// stacks from the global object space).
class Fiber {
 public:
  uint64_t id = 0;
  std::string name;

  NodeId node = kNoNode;  // node the fiber currently executes on
  int processor = -1;     // processor index while running, else -1

  // While running: the fiber's current virtual time (dispatch time plus
  // accumulated charges). While ready/blocked: the time it last ran or was
  // made ready. Never decreases.
  Time vtime = 0;
  Time quantum_end = 0;  // end of the current timeslice
  Time ready_since = 0;  // when the fiber last joined a run queue (for wait stats)

  FiberState state = FiberState::kReady;

  // Set by RequestPreempt (an object move, §3.5); honoured at the next
  // charge boundary or sync point.
  bool preempt_requested = false;
  // True while resuming from an involuntary preemption or a blocking wait;
  // triggers the resume hook (Amber's context-switch-in residency check).
  bool involuntary_resume = false;

  int priority = 0;  // consulted by PriorityRunQueue only

  // Back-pointer for the embedding runtime (Amber's thread control block).
  void* user_data = nullptr;

  Kernel* kernel = nullptr;
  std::function<void()> entry;
  // Runs in fiber context, at the fiber's exit vtime, just before the fiber
  // is torn down. Amber uses it to wake joiners.
  std::function<void()> on_exit;

  Context ctx;
  void* stack_base = nullptr;
  size_t stack_size = 0;
};

}  // namespace sim

#endif  // AMBER_SRC_SIM_FIBER_H_
