#include "src/sim/kernel.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/panic.h"
#include "src/telemetry/telemetry.h"

namespace sim {

Kernel::Kernel(const Config& config) : cost_(config.cost), procs_per_node_(config.procs_per_node) {
  AMBER_CHECK(config.nodes >= 1);
  AMBER_CHECK(config.procs_per_node >= 1);
  nodes_.resize(config.nodes);
  for (auto& node : nodes_) {
    node.procs.resize(config.procs_per_node);
    for (int p = config.procs_per_node - 1; p >= 0; --p) {
      node.free_procs.push_back(p);
    }
    node.queue = std::make_unique<FifoRunQueue>();
  }
}

Kernel::~Kernel() = default;

void Kernel::FiberEntry(void* arg) {
  auto* f = static_cast<Fiber*>(arg);
  f->entry();
  f->kernel->Exit();
}

Fiber* Kernel::Spawn(NodeId node, void* stack_base, size_t stack_size, std::function<void()> fn,
                     std::string name) {
  AMBER_CHECK(node >= 0 && node < nodes());
  auto owned = std::make_unique<Fiber>();
  Fiber* f = owned.get();
  f->id = next_fiber_id_++;
  f->name = name.empty() ? "fiber-" + std::to_string(f->id) : std::move(name);
  f->node = node;
  f->kernel = this;
  f->entry = std::move(fn);
  f->stack_base = stack_base;
  f->stack_size = stack_size;
  f->vtime = Now();
  f->ctx.Init(stack_base, stack_size, &FiberEntry, f);
  fibers_.push_back(std::move(owned));
  ++live_fibers_;
  if (sched_observer_ != nullptr) {
    sched_observer_->OnFiberCreate(Now(), node, *f);
  }
  Post(Now(), [this, f] {
    EnqueueReady(f, queue_.now());
    TryDispatch(f->node);
  });
  return f;
}

void Kernel::DestroyFiber(Fiber* f) {
  AMBER_CHECK(f->state == FiberState::kFinished) << "destroying live fiber " << f->name;
  auto it = std::find_if(fibers_.begin(), fibers_.end(),
                         [f](const std::unique_ptr<Fiber>& p) { return p.get() == f; });
  AMBER_CHECK(it != fibers_.end());
  fibers_.erase(it);
}

void Kernel::ForEachFiber(const std::function<void(const Fiber&)>& fn) const {
  for (const auto& f : fibers_) {
    fn(*f);
  }
}

void Kernel::SetRunQueue(NodeId node, std::unique_ptr<RunQueue> queue) {
  AMBER_CHECK(node >= 0 && node < nodes());
  RunQueue& old = *nodes_[node].queue;
  while (Fiber* f = old.Dequeue()) {
    queue->Enqueue(f);
  }
  nodes_[node].queue = std::move(queue);
}

RunQueue& Kernel::run_queue(NodeId node) {
  AMBER_CHECK(node >= 0 && node < nodes());
  return *nodes_[node].queue;
}

Time Kernel::Now() const { return current_ != nullptr ? current_->vtime : queue_.now(); }

// --- Dispatch machinery -----------------------------------------------------

void Kernel::EnqueueReady(Fiber* f, Time t) {
  AMBER_DCHECK(f->state != FiberState::kRunning && f->state != FiberState::kFinished);
  f->state = FiberState::kReady;
  f->vtime = std::max(f->vtime, t);
  f->ready_since = f->vtime;
  // Every pass through the run queue implies a context switch in, which in
  // Amber performs the §3.5 residency re-check via the resume hook.
  f->involuntary_resume = true;
  nodes_[f->node].queue->Enqueue(f);
}

void Kernel::TryDispatch(NodeId node) {
  AMBER_DCHECK(current_ == nullptr) << "TryDispatch from fiber context";
  NodeState& ns = nodes_[node];
  if (!ns.up) {
    return;  // crashed node: ready fibers park until restart
  }
  while (!ns.free_procs.empty() && !ns.queue->Empty()) {
    Fiber* f = ns.queue->Dequeue();
    AMBER_DCHECK(f->state == FiberState::kReady);
    const int proc = ns.free_procs.back();
    ns.free_procs.pop_back();
    f->processor = proc;
    f->state = FiberState::kRunning;
    const Time start = std::max(f->vtime, queue_.now());
    f->vtime = start + cost_.context_switch;
    f->quantum_end = f->vtime + cost_.quantum;
    ns.procs[proc].running = f;
    ns.procs[proc].busy_since = start;
    ++dispatches_;
    if (sched_observer_ != nullptr) {
      sched_observer_->OnFiberDispatch(start, node, *f, start - f->ready_since);
    }
    if (telemetry::SelfProfiler* prof = telemetry::SelfProfiler::active()) {
      prof->NodeDispatch(node);
    }
    RunFiberSlice(f);
  }
}

void Kernel::RunFiberSlice(Fiber* f) {
  current_ = f;
  if (telemetry::SelfProfiler::active() != nullptr) {
    telemetry::ScopedWallTimer timer(telemetry::Bucket::kFiberRun);
    Context::Switch(&kernel_ctx_, &f->ctx);
  } else {
    Context::Switch(&kernel_ctx_, &f->ctx);
  }
  current_ = nullptr;
}

void Kernel::SwitchToKernel(Fiber* f) { Context::Switch(&f->ctx, &kernel_ctx_); }

void Kernel::AfterResume(Fiber* f) {
  if (f->involuntary_resume) {
    f->involuntary_resume = false;
    if (resume_hook_) {
      resume_hook_(f);
    }
  }
}

void Kernel::ReleaseProcessorAndMaybeRequeue(Fiber* f, bool requeue) {
  const NodeId node = f->node;
  const int proc = f->processor;
  const Time t = f->vtime;
  AMBER_DCHECK(proc >= 0);
  f->state = requeue ? FiberState::kReady : FiberState::kBlocked;
  f->processor = -1;
  Post(t, [this, node, proc, f, requeue, t] {
    NodeState& ns = nodes_[node];
    ns.busy_ns += t - ns.procs[proc].busy_since;
    ns.procs[proc].running = nullptr;
    ns.free_procs.push_back(proc);
    if (sched_observer_ != nullptr) {
      if (requeue) {
        sched_observer_->OnFiberPreempt(t, node, *f);
      } else {
        sched_observer_->OnFiberBlock(t, node, *f);
      }
    }
    if (requeue) {
      EnqueueReady(f, queue_.now());
    }
    TryDispatch(node);
  });
  SwitchToKernel(f);
  AfterResume(f);
}

// --- Fiber-facing primitives --------------------------------------------------

void Kernel::Charge(Duration d) {
  AMBER_DCHECK(current_ != nullptr) << "Charge outside fiber context";
  AMBER_DCHECK(d >= 0);
  Fiber* f = current_;
  while (d > 0) {
    if (f->preempt_requested) {
      // An object move is preempting this node (§3.5): reschedule now so the
      // residency re-check runs on the next switch-in.
      f->preempt_requested = false;
      f->vtime += cost_.preempt_ipi;
      ++preemptions_;
      ReleaseProcessorAndMaybeRequeue(f, /*requeue=*/true);
      continue;
    }
    const Duration slice = f->quantum_end - f->vtime;
    if (d < slice) {
      f->vtime += d;
      return;
    }
    f->vtime += slice;
    d -= slice;
    // Quantum expired. Re-enter the event queue so the clock catches up —
    // this bounds how far a computing fiber can run ahead of virtual time
    // (and therefore the latency of §3.5 move-time preemption) to one
    // quantum. Sync() also honours any preemption request that arrived.
    Sync();
    if (nodes_[f->node].queue->Empty()) {
      f->quantum_end = f->vtime + cost_.quantum;
      continue;
    }
    ++preemptions_;
    f->vtime += cost_.context_switch;
    ReleaseProcessorAndMaybeRequeue(f, /*requeue=*/true);
  }
  if (f->preempt_requested) {
    f->preempt_requested = false;
    f->vtime += cost_.preempt_ipi;
    ++preemptions_;
    ReleaseProcessorAndMaybeRequeue(f, /*requeue=*/true);
  }
}

void Kernel::Sync() {
  AMBER_DCHECK(current_ != nullptr) << "Sync outside fiber context";
  Fiber* f = current_;
  queue_.Post(f->vtime, [this, f] {
    AMBER_DCHECK(f->state == FiberState::kRunning);
    RunFiberSlice(f);
  });
  SwitchToKernel(f);
  if (f->preempt_requested) {
    f->preempt_requested = false;
    f->vtime += cost_.preempt_ipi;
    ++preemptions_;
    ReleaseProcessorAndMaybeRequeue(f, /*requeue=*/true);
  }
}

void Kernel::Yield() {
  AMBER_DCHECK(current_ != nullptr);
  ReleaseProcessorAndMaybeRequeue(current_, /*requeue=*/true);
}

void Kernel::Block() {
  AMBER_DCHECK(current_ != nullptr);
  ReleaseProcessorAndMaybeRequeue(current_, /*requeue=*/false);
}

void Kernel::SleepUntil(Time t) {
  AMBER_DCHECK(current_ != nullptr) << "SleepUntil outside fiber context";
  Sync();  // the timer must be armed at an ordered point
  Fiber* f = current_;
  if (t <= f->vtime) {
    return;
  }
  Post(t, [this, f] { Wake(f, queue_.now()); });
  Block();
}

void Kernel::TravelTo(NodeId node, Time arrive) {
  AMBER_DCHECK(current_ != nullptr);
  AMBER_CHECK(node >= 0 && node < nodes());
  Fiber* f = current_;
  AMBER_DCHECK(arrive >= f->vtime);
  const NodeId src = f->node;
  const int proc = f->processor;
  const Time t = f->vtime;
  f->state = FiberState::kBlocked;
  f->processor = -1;
  Post(t, [this, src, proc, t, f] {
    NodeState& ns = nodes_[src];
    ns.busy_ns += t - ns.procs[proc].busy_since;
    ns.procs[proc].running = nullptr;
    ns.free_procs.push_back(proc);
    if (sched_observer_ != nullptr) {
      sched_observer_->OnFiberBlock(t, src, *f);  // in flight to another node
    }
    TryDispatch(src);
  });
  Post(arrive, [this, f, node] {
    f->node = node;
    if (sched_observer_ != nullptr) {
      sched_observer_->OnFiberUnblock(queue_.now(), node, *f, /*waker_id=*/0, queue_.now());
    }
    EnqueueReady(f, queue_.now());
    TryDispatch(node);
  });
  SwitchToKernel(f);
  AfterResume(f);
}

void Kernel::SpinWait() {
  AMBER_DCHECK(current_ != nullptr);
  Fiber* f = current_;
  // State stays kRunning and the processor stays assigned: the CPU is
  // burning cycles on the lock word. Only SpinResume may switch back in.
  SwitchToKernel(f);
}

void Kernel::SpinResume(Fiber* f, Time t) {
  AMBER_DCHECK(t >= Now());
  AMBER_DCHECK(f->state == FiberState::kRunning && f->processor >= 0)
      << "SpinResume target is not spinning";
  Post(t, [this, f] {
    f->vtime = std::max(f->vtime, queue_.now());
    RunFiberSlice(f);
  });
}

void Kernel::Exit() {
  AMBER_DCHECK(current_ != nullptr);
  Fiber* f = current_;
  if (f->on_exit) {
    f->on_exit();
  }
  f->state = FiberState::kFinished;
  --live_fibers_;
  const NodeId node = f->node;
  const int proc = f->processor;
  const Time t = f->vtime;
  f->processor = -1;
  // Emitted from fiber context: the posted release below may run after a
  // joiner has already reclaimed the Fiber record.
  if (sched_observer_ != nullptr) {
    sched_observer_->OnFiberExit(t, node, *f);
  }
  Post(t, [this, node, proc, t] {
    NodeState& ns = nodes_[node];
    ns.busy_ns += t - ns.procs[proc].busy_since;
    ns.procs[proc].running = nullptr;
    ns.free_procs.push_back(proc);
    TryDispatch(node);
  });
  SwitchToKernel(f);
  AMBER_PANIC("finished fiber resumed");
}

// --- Kernel-facing primitives --------------------------------------------------

void Kernel::Wake(Fiber* f, Time t) {
  AMBER_DCHECK(t >= Now()) << "waking in the past";
  // Capture the waker's identity now: by delivery time the waker may have
  // exited (ids outlive Fiber records) and current_ is no longer it.
  const uint64_t waker_id = current_ != nullptr ? current_->id : 0;
  const Time wake_time = Now();
  Post(t, [this, f, waker_id, wake_time] {
    AMBER_DCHECK(f->state == FiberState::kBlocked)
        << "waking fiber " << f->name << " in state " << static_cast<int>(f->state);
    if (sched_observer_ != nullptr) {
      sched_observer_->OnFiberUnblock(queue_.now(), f->node, *f, waker_id, wake_time);
    }
    EnqueueReady(f, queue_.now());
    TryDispatch(f->node);
  });
}

void Kernel::SetNodeUp(NodeId node, bool up) {
  AMBER_CHECK(node >= 0 && node < nodes());
  NodeState& ns = nodes_[node];
  if (ns.up == up) {
    return;
  }
  ns.up = up;
  if (!up) {
    // Running fibers halt at their next charge boundary or sync point and
    // requeue; TryDispatch then refuses to run them until restart.
    RequestPreempt(node);
  } else {
    Post(Now(), [this, node] { TryDispatch(node); });
  }
}

bool Kernel::NodeUp(NodeId node) const {
  AMBER_CHECK(node >= 0 && node < nodes());
  return nodes_[node].up;
}

int Kernel::RequestPreempt(NodeId node) {
  AMBER_CHECK(node >= 0 && node < nodes());
  int flagged = 0;
  for (auto& proc : nodes_[node].procs) {
    if (proc.running != nullptr && proc.running != current_ &&
        proc.running->state == FiberState::kRunning) {
      proc.running->preempt_requested = true;
      ++flagged;
    }
  }
  return flagged;
}

// --- Run loop -------------------------------------------------------------------

Time Kernel::Run() {
  // The disabled path must stay exactly the bare loop: one branch decides
  // which loop runs, and the instrumented one adds a single clock read per
  // iteration (consecutive timestamps are differenced, so each iteration's
  // wall cost needs only one NowNs call).
  telemetry::SelfProfiler* prof = telemetry::SelfProfiler::active();
  if (prof == nullptr) {
    while (queue_.RunOne()) {
    }
  } else {
    prof->SetNodeCount(nodes());
    prof->ResetLoopClock();
    while (queue_.RunOne()) {
      prof->OnEventLoopIteration(queue_.now(), queue_.Size());
    }
    prof->SyncLoopClock();
  }
  if (live_fibers_ > 0) {
    AMBER_LOG(kWarn) << "simulation ended with " << live_fibers_
                     << " live fibers (deadlock or leaked threads)";
    for (const auto& f : fibers_) {
      if (f->state != FiberState::kFinished) {
        AMBER_LOG(kWarn) << "  live fiber: " << f->name << " state="
                         << static_cast<int>(f->state) << " node=" << f->node;
      }
    }
  }
  return queue_.now();
}

bool Kernel::AnyLiveFiberOnUpNode() const {
  for (const auto& f : fibers_) {
    if (f->state != FiberState::kFinished && nodes_[f->node].up) {
      return true;
    }
  }
  return false;
}

Duration Kernel::NodeBusyTime(NodeId node) const {
  AMBER_CHECK(node >= 0 && node < nodes());
  return nodes_[node].busy_ns;
}

int Kernel::RunQueueLength(NodeId node) const {
  AMBER_CHECK(node >= 0 && node < nodes());
  return static_cast<int>(nodes_[node].queue->Size());
}

int Kernel::BusyProcessors(NodeId node) const {
  AMBER_CHECK(node >= 0 && node < nodes());
  return procs_per_node_ - static_cast<int>(nodes_[node].free_procs.size());
}

}  // namespace sim
