// Per-node run queues.
//
// The scheduling *policy* of each node is pluggable, mirroring Amber/Presto's
// replaceable scheduler objects (§2.1): "An application can install a custom
// scheduling discipline at runtime by replacing the system scheduler object."
// amber::SetScheduler() installs one of these (or a user subclass) per node.

#ifndef AMBER_SRC_SIM_RUN_QUEUE_H_
#define AMBER_SRC_SIM_RUN_QUEUE_H_

#include <deque>
#include <map>
#include <vector>

#include "src/base/panic.h"
#include "src/sim/fiber.h"

namespace sim {

class RunQueue {
 public:
  virtual ~RunQueue() = default;

  virtual void Enqueue(Fiber* f) = 0;
  // Returns the next fiber to run, or nullptr if empty.
  virtual Fiber* Dequeue() = 0;
  virtual bool Empty() const = 0;
  virtual size_t Size() const = 0;
  // Removes a specific fiber (used when a queued thread migrates away).
  virtual bool Remove(Fiber* f) = 0;
};

// Default policy: FIFO with round-robin timeslicing (the Amber default).
class FifoRunQueue : public RunQueue {
 public:
  void Enqueue(Fiber* f) override { q_.push_back(f); }
  Fiber* Dequeue() override {
    if (q_.empty()) {
      return nullptr;
    }
    Fiber* f = q_.front();
    q_.pop_front();
    return f;
  }
  bool Empty() const override { return q_.empty(); }
  size_t Size() const override { return q_.size(); }
  bool Remove(Fiber* f) override {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (*it == f) {
        q_.erase(it);
        return true;
      }
    }
    return false;
  }

 private:
  std::deque<Fiber*> q_;
};

// LIFO: favours cache-warm recently-preempted threads.
class LifoRunQueue : public RunQueue {
 public:
  void Enqueue(Fiber* f) override { q_.push_back(f); }
  Fiber* Dequeue() override {
    if (q_.empty()) {
      return nullptr;
    }
    Fiber* f = q_.back();
    q_.pop_back();
    return f;
  }
  bool Empty() const override { return q_.empty(); }
  size_t Size() const override { return q_.size(); }
  bool Remove(Fiber* f) override {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (*it == f) {
        q_.erase(it);
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<Fiber*> q_;
};

// Adaptive multilevel feedback (§2.1's "adaptive policies tuned to the
// specific application"): a fiber that keeps getting requeued (a CPU hog
// burning full quanta) sinks to lower levels; fibers that block (I/O- or
// communication-bound) re-enter at the top, so short interactive work
// overtakes long computations without explicit priorities.
class FeedbackRunQueue : public RunQueue {
 public:
  explicit FeedbackRunQueue(int levels = 3) : queues_(static_cast<size_t>(levels)) {}

  void Enqueue(Fiber* f) override {
    // Involuntary requeues (quantum expiry) arrive with the flag set by the
    // kernel *after* this call, so classify by history: a fiber seen again
    // without having blocked in between is demoted one level.
    auto [it, inserted] = level_of_.try_emplace(f, 0);
    if (!inserted) {
      it->second = std::min(it->second + 1, static_cast<int>(queues_.size()) - 1);
    }
    queues_[static_cast<size_t>(it->second)].push_back(f);
    ++size_;
  }

  Fiber* Dequeue() override {
    for (auto& q : queues_) {
      if (!q.empty()) {
        Fiber* f = q.front();
        q.pop_front();
        --size_;
        return f;
      }
    }
    return nullptr;
  }

  // A blocked-then-woken fiber signals interactivity: promote to the top.
  // (The kernel calls Enqueue for wakes too; callers wanting the boost use
  // Boost() from a wrapper, or simply rely on demotion being slow.)
  void Boost(Fiber* f) { level_of_[f] = 0; }

  bool Empty() const override { return size_ == 0; }
  size_t Size() const override { return size_; }
  bool Remove(Fiber* f) override {
    for (auto& q : queues_) {
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (*it == f) {
          q.erase(it);
          --size_;
          return true;
        }
      }
    }
    return false;
  }

 private:
  std::vector<std::deque<Fiber*>> queues_;
  std::map<Fiber*, int> level_of_;
  size_t size_ = 0;
};

// Strict priority (higher Fiber::priority first), FIFO within a level.
class PriorityRunQueue : public RunQueue {
 public:
  void Enqueue(Fiber* f) override {
    levels_[-f->priority].push_back(f);
    ++size_;
  }
  Fiber* Dequeue() override {
    if (size_ == 0) {
      return nullptr;
    }
    auto it = levels_.begin();
    while (it->second.empty()) {
      it = levels_.erase(it);
    }
    Fiber* f = it->second.front();
    it->second.pop_front();
    --size_;
    return f;
  }
  bool Empty() const override { return size_ == 0; }
  size_t Size() const override { return size_; }
  bool Remove(Fiber* f) override {
    auto level = levels_.find(-f->priority);
    if (level == levels_.end()) {
      return false;
    }
    for (auto it = level->second.begin(); it != level->second.end(); ++it) {
      if (*it == f) {
        level->second.erase(it);
        --size_;
        return true;
      }
    }
    return false;
  }

 private:
  std::map<int, std::deque<Fiber*>> levels_;  // keyed by -priority: highest first
  size_t size_ = 0;
};

}  // namespace sim

#endif  // AMBER_SRC_SIM_RUN_QUEUE_H_
