// Machine-level execution contexts (fibers).
//
// Amber threads are user-level threads with their own stacks; the simulator
// switches between them cooperatively. The default implementation is ~20
// instructions of x86-64 assembly saving only the System V callee-saved state
// (GPRs + x87/SSE control words) — a cooperative switch at a call boundary
// needs nothing else. A portable ucontext(3) fallback is selected with
// -DAMBER_USE_UCONTEXT=ON.
//
// Contexts do not own their stacks: the caller provides stack memory, which
// lets the Amber runtime carve thread stacks out of the global object address
// space exactly as the paper describes (§3.1: "all dynamic objects (including
// thread objects and their stacks)").

#ifndef AMBER_SRC_SIM_CONTEXT_H_
#define AMBER_SRC_SIM_CONTEXT_H_

#include <cstddef>
#include <cstdint>

namespace sim {

#if defined(AMBER_CTX_UCONTEXT)
struct ContextImpl;  // wraps ucontext_t, defined in context_ucontext.cc
#endif

// A suspended machine context. Default-constructed contexts represent the
// currently running control flow and may be switched *from* immediately;
// Init() prepares a context to start executing `entry(arg)` on the given
// stack when first switched *to*.
class Context {
 public:
  Context();
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // Arms the context to run entry(arg) on [stack_base, stack_base + size).
  // The entry function must never return; it must switch away instead
  // (returning out of the root frame of a fiber is a fatal error and traps).
  void Init(void* stack_base, size_t size, void (*entry)(void*), void* arg);

  // Saves the current machine state into `from` and resumes `to`. Returns
  // when something later switches back into `from`.
  static void Switch(Context* from, Context* to);

 private:
#if defined(AMBER_CTX_UCONTEXT)
  ContextImpl* impl_;
#else
  void* sp_ = nullptr;  // saved stack pointer; live only while suspended
#endif
};

}  // namespace sim

#endif  // AMBER_SRC_SIM_CONTEXT_H_
