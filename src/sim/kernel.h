// The discrete-event simulation kernel.
//
// One Kernel simulates a cluster of `nodes` shared-memory multiprocessors
// with `procs_per_node` processors each, on a single host thread, in virtual
// time. Fibers execute real code; their elapsed time is whatever they Charge.
//
// Ordering discipline
// -------------------
// Events execute in strict (time, sequence) order, so any state shared
// between fibers must only be touched at an *ordered point*: inside an event
// handler, or in fiber code immediately after Kernel::Sync() (which re-enters
// the fiber through the event queue at its current virtual time). Pure
// computation (Charge) may run ahead of the clock safely because it touches
// nothing shared. All Amber runtime primitives Sync() on entry. Preemption
// requests take effect at the next charge boundary or sync point, bounding
// the interleaving granularity by the scheduling quantum — the same
// granularity at which a real multiprocessor node would service the §3.5
// move-time preemption interrupt.

#ifndef AMBER_SRC_SIM_KERNEL_H_
#define AMBER_SRC_SIM_KERNEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/stats.h"
#include "src/base/time.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/fiber.h"
#include "src/sim/run_queue.h"

namespace sim {

// Observer of scheduling events (run-queue activity, blocking, preemption).
// Callbacks fire at ordered points with virtual timestamps and must not call
// back into the kernel's mutating primitives. The Amber runtime bridges
// these to its RuntimeObserver / metrics registry; the hooks cost nothing
// when no observer is installed (a single null check per event site).
class SchedObserver {
 public:
  virtual ~SchedObserver() = default;
  // A fiber was created on `node` and will become ready at `when`.
  virtual void OnFiberCreate(Time when, NodeId node, const Fiber& f) {}
  // A fiber left the run queue and starts running; `queue_wait` is the time
  // it spent ready-but-not-running since it was enqueued.
  virtual void OnFiberDispatch(Time when, NodeId node, const Fiber& f, Duration queue_wait) {}
  // A running fiber gave up its processor to wait (Block / migration
  // departure).
  virtual void OnFiberBlock(Time when, NodeId node, const Fiber& f) {}
  // A blocked fiber became runnable again (Wake / migration arrival).
  // `waker_id` is the fiber id of the party that called Wake (0 when the
  // wake came from event context — a timer, message delivery, or migration
  // arrival) and `wake_time` is the waker's clock at the Wake call. Ids are
  // passed rather than Fiber pointers because the waker may have exited —
  // and its record been reclaimed — by the time the wake is delivered.
  virtual void OnFiberUnblock(Time when, NodeId node, const Fiber& f, uint64_t waker_id,
                              Time wake_time) {}
  // A running fiber was requeued involuntarily (quantum expiry, move-time
  // preemption) or yielded.
  virtual void OnFiberPreempt(Time when, NodeId node, const Fiber& f) {}
  virtual void OnFiberExit(Time when, NodeId node, const Fiber& f) {}
};

class Kernel {
 public:
  struct Config {
    int nodes = 1;
    int procs_per_node = 1;
    CostModel cost;
  };

  explicit Kernel(const Config& config);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- Setup / teardown ----------------------------------------------------

  // Creates a fiber that will run fn on `node`. The stack is borrowed, not
  // owned; it must outlive the fiber. The fiber becomes ready at the current
  // virtual time. Callable from host code (before Run) or from fiber code.
  Fiber* Spawn(NodeId node, void* stack_base, size_t stack_size, std::function<void()> fn,
               std::string name = "");

  // Frees the kernel's record of a finished fiber. The caller reclaims the
  // stack. Must not be called on a live fiber.
  void DestroyFiber(Fiber* f);

  // Replaces a node's scheduling policy. Queued fibers are transferred.
  void SetRunQueue(NodeId node, std::unique_ptr<RunQueue> queue);
  RunQueue& run_queue(NodeId node);

  // Hook invoked in fiber context whenever a fiber is dispatched again after
  // blocking or being preempted — Amber's context-switch-in residency check
  // (§3.5) lives here.
  void SetResumeHook(std::function<void(Fiber*)> hook) { resume_hook_ = std::move(hook); }

  // Attaches a scheduling-event observer (nullptr detaches). Guarded at
  // every emission site, so the cost is zero when none is attached.
  void SetSchedObserver(SchedObserver* observer) { sched_observer_ = observer; }

  // --- Fiber-facing primitives (call only from fiber context) --------------

  // Advances the running fiber's virtual time by d, honouring the timeslice:
  // the fiber is preempted (and requeued) at quantum boundaries when other
  // work is waiting or a preemption was requested.
  void Charge(Duration d);

  // Re-enters the fiber through the event queue at its current virtual time.
  // Establishes an ordered point; see the header comment.
  void Sync();

  // Voluntarily yields the processor: requeue on this node and reschedule.
  void Yield();

  // Blocks until another party calls Wake. The caller must have registered
  // itself with that party *after* a Sync() — see the ordering discipline.
  void Block();

  // Moves the running fiber to `node`, arriving at time `arrive` (>= current
  // vtime). The processor is released now; the fiber joins the destination
  // run queue at `arrive`. Used for Amber thread migration.
  void TravelTo(NodeId node, Time arrive);

  // Parks the running fiber until virtual time `t`, releasing its processor
  // (a timer sleep, not a busy wait). Returns immediately when t has already
  // passed. The open-loop benchmark drivers pace their deterministic arrival
  // processes with this.
  void SleepUntil(Time t);

  // Suspends the running fiber WITHOUT releasing its processor — the
  // processor spins (stays busy) until SpinResume. Models non-relinquishing
  // locks (§2.2): latency-optimal, throughput-hostile.
  void SpinWait();

  // Resumes a SpinWait-ed fiber at time t (>= now). Call from an ordered
  // point. The spinner's virtual time jumps to t; its processor was busy
  // throughout.
  void SpinResume(Fiber* f, Time t);

  // Terminates the running fiber (runs its on_exit first). Does not return.
  [[noreturn]] void Exit();

  // --- Kernel-facing primitives (event handlers or ordered fiber code) -----

  void Post(Time t, std::function<void()> fn) { queue_.Post(t, std::move(fn)); }

  // Makes a blocked fiber ready on its current node at time t.
  void Wake(Fiber* f, Time t);

  // Flags every fiber currently running on `node` for preemption; each will
  // be requeued at its next charge boundary or sync point and will run the
  // resume hook when dispatched again. Returns how many were flagged.
  int RequestPreempt(NodeId node);

  // Marks a node down (crash) or back up (restart). A down node dispatches
  // nothing: running fibers are flagged for preemption and park on the run
  // queue at their next charge boundary; fibers arriving via TravelTo queue
  // up and wait. Memory and queued state survive the outage (fail-stop
  // freeze/restart — the fault-injection model, see docs/FAULTS.md).
  // Call from event context or ordered fiber code.
  void SetNodeUp(NodeId node, bool up);
  bool NodeUp(NodeId node) const;

  // --- Clock / introspection ------------------------------------------------

  // Current virtual time: the running fiber's vtime, else the event clock.
  Time Now() const;

  Fiber* current() const { return current_; }
  int nodes() const { return static_cast<int>(nodes_.size()); }
  int procs_per_node() const { return procs_per_node_; }
  const CostModel& cost() const { return cost_; }
  CostModel& mutable_cost() { return cost_; }

  // --- Run loop -------------------------------------------------------------

  // Processes events until none remain. Returns the final virtual time.
  Time Run();

  // Fibers spawned but not finished. Nonzero after Run() means deadlock.
  int live_fibers() const { return live_fibers_; }

  // Read-only sweep over every fiber the kernel still tracks, in creation
  // order (finished fibers stay listed until DestroyFiber reclaims them).
  // Post-mortem introspection — the flight recorder's authoritative
  // per-thread snapshot at time of death. `fn` must not call back into the
  // kernel.
  void ForEachFiber(const std::function<void(const Fiber&)>& fn) const;

  // True while any unfinished fiber sits on an up node. Background services
  // (the membership heartbeat ticks) use this to decide whether the
  // simulation still has work that could need them: fibers frozen on
  // crashed nodes do not count — with every up node idle they can only run
  // again through a restart event that is already in the queue.
  bool AnyLiveFiberOnUpNode() const;

  // --- Statistics ------------------------------------------------------------

  // Total processor-busy virtual time on a node (for utilization reports).
  Duration NodeBusyTime(NodeId node) const;

  // Instantaneous load introspection (for placement policies).
  int RunQueueLength(NodeId node) const;
  int BusyProcessors(NodeId node) const;
  uint64_t dispatches() const { return dispatches_; }
  uint64_t preemptions() const { return preemptions_; }
  uint64_t events_run() const { return queue_.events_run(); }

 private:
  struct Processor {
    Fiber* running = nullptr;
    Time busy_since = 0;
  };
  struct NodeState {
    std::vector<Processor> procs;
    std::vector<int> free_procs;  // LIFO stack of free processor indices
    std::unique_ptr<RunQueue> queue;
    Duration busy_ns = 0;
    bool up = true;  // down nodes dispatch nothing (fault injection)
  };

  static void FiberEntry(void* arg);

  void EnqueueReady(Fiber* f, Time t);
  void TryDispatch(NodeId node);
  // Switches into f until it switches back, timing the slice into the
  // telemetry fiber_run bucket when a self-profiler is active.
  void RunFiberSlice(Fiber* f);
  void ReleaseProcessorAndMaybeRequeue(Fiber* f, bool requeue);
  void SwitchToKernel(Fiber* f);
  void AfterResume(Fiber* f);
  // Preempts the running fiber at its current vtime (requeue + release).
  void PreemptSelf();

  EventQueue queue_;
  CostModel cost_;
  int procs_per_node_;
  std::vector<NodeState> nodes_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  Fiber* current_ = nullptr;
  Context kernel_ctx_;
  std::function<void(Fiber*)> resume_hook_;
  SchedObserver* sched_observer_ = nullptr;
  uint64_t next_fiber_id_ = 1;
  int live_fibers_ = 0;
  uint64_t dispatches_ = 0;
  uint64_t preemptions_ = 0;
};

}  // namespace sim

#endif  // AMBER_SRC_SIM_KERNEL_H_
