// Cost model: the virtual-time prices of CPU, software-RPC and network
// operations.
//
// Defaults are calibrated to the paper's hardware — DEC Firefly workstations
// (CVAX processors, ~3 MIPS class) on 10 Mbit/s shared Ethernet under Topaz —
// so that the five Table-1 operations *decompose* to roughly the published
// latencies. Nothing hard-codes a Table-1 number: remote invoke = marshal +
// per-hop software and wire costs + dispatch, summed. Benchmarks vary these
// knobs for sensitivity studies.

#ifndef AMBER_SRC_SIM_COST_MODEL_H_
#define AMBER_SRC_SIM_COST_MODEL_H_

#include <cstdint>

#include "src/base/time.h"

namespace sim {

using amber::Duration;
using amber::Micros;
using amber::Millis;

struct CostModel {
  // --- CPU costs (charged to the running fiber's processor) ---------------
  Duration local_invoke = Micros(6);     // entry residency check + linkage
  Duration local_return = Micros(6);     // return-time residency check
  Duration object_create = Micros(170);  // heap allocation + descriptor init
  Duration object_destroy = Micros(40);
  Duration thread_create = Micros(950);   // stack allocation + control block
  Duration thread_dispatch = Micros(120);  // run-queue pop + switch to thread
  Duration join_sync = Micros(150);        // join rendezvous bookkeeping
  Duration context_switch = Micros(50);
  Duration preempt_ipi = Micros(60);  // per-processor interrupt during a move (§3.5)
  Duration quantum = Millis(10);      // timeslice length

  // --- Synchronization (§2.2) ----------------------------------------------
  Duration spin_op = Micros(2);     // hardware spinlock acquire/release
  Duration lock_op = Micros(8);     // blocking lock queue manipulation
  Duration barrier_op = Micros(12);  // barrier arrival bookkeeping

  // --- Marshalling / RPC software path ------------------------------------
  Duration marshal_base = Micros(150);     // per-message fixed pack/unpack
  double marshal_ns_per_byte = 60.0;       // ~16 MB/s CVAX copy + checksum
  Duration rpc_send_software = Micros(900);  // driver + protocol, send side
  Duration rpc_recv_software = Micros(900);  // receive interrupt + demux

  // Stack bytes shipped with a migrating thread (§3.4: "pieces of its
  // stack"). A model parameter, not a host measurement: 1989 VAX activation
  // records were compact, and the paper's benchmarks assume a migrating
  // thread fits in one network packet. Host stack frames are an order of
  // magnitude fatter, so probing the real stack would mis-calibrate.
  int64_t thread_ship_stack_bytes = 128;

  // --- Network: 10 Mbit/s shared Ethernet ---------------------------------
  double bandwidth_bits_per_sec = 10e6;
  Duration media_access = Micros(100);  // arbitration + preamble + IFG
  Duration propagation = Micros(20);
  int32_t mtu_bytes = 1500;
  Duration per_fragment_overhead = Micros(250);  // extra protocol cost per bulk fragment

  // --- Mobility ------------------------------------------------------------
  Duration move_setup = Micros(500);    // bound-thread scan + descriptor updates, source
  Duration move_install = Micros(400);  // descriptor install + requeue, destination

  // Wire time for one frame of `bytes` payload on the shared medium.
  Duration WireTime(int64_t bytes) const {
    const double secs = static_cast<double>(bytes) * 8.0 / bandwidth_bits_per_sec;
    return media_access + static_cast<Duration>(secs * 1e9);
  }

  // CPU cost of marshalling (or unmarshalling) a `bytes`-sized payload.
  Duration MarshalCost(int64_t bytes) const {
    return marshal_base + static_cast<Duration>(static_cast<double>(bytes) * marshal_ns_per_byte);
  }

  // Number of MTU-sized fragments a payload occupies on the wire.
  int64_t Fragments(int64_t bytes) const {
    if (bytes <= 0) {
      return 1;
    }
    return (bytes + mtu_bytes - 1) / mtu_bytes;
  }
};

}  // namespace sim

#endif  // AMBER_SRC_SIM_COST_MODEL_H_
