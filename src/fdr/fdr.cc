#include "src/fdr/fdr.h"

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "src/metrics/metrics.h"
#include "src/sim/fiber.h"

namespace fdr {
namespace {

// Stable type names — the dump schema renderers switch on.
const char* TypeName(EventType t) {
  switch (t) {
    case EventType::kThreadCreate:      return "thread_create";
    case EventType::kThreadDispatch:    return "thread_dispatch";
    case EventType::kThreadBlock:       return "thread_block";
    case EventType::kThreadUnblock:     return "thread_unblock";
    case EventType::kThreadPreempt:     return "thread_preempt";
    case EventType::kThreadExit:        return "thread_exit";
    case EventType::kThreadJoin:        return "thread_join";
    case EventType::kThreadMigrate:     return "thread_migrate";
    case EventType::kInvokeEnter:       return "invoke_enter";
    case EventType::kInvokeExit:        return "invoke_exit";
    case EventType::kLockBlocked:       return "lock_blocked";
    case EventType::kLockAcquired:      return "lock_acquired";
    case EventType::kLockReleased:      return "lock_released";
    case EventType::kConditionWake:     return "condition_wake";
    case EventType::kRpcRequest:        return "rpc_request";
    case EventType::kRpcResponse:       return "rpc_response";
    case EventType::kRpcRetry:          return "rpc_retry";
    case EventType::kRpcTimeout:        return "rpc_timeout";
    case EventType::kObjectMove:        return "object_move";
    case EventType::kReplicaInstall:    return "replica_install";
    case EventType::kMessage:           return "message";
    case EventType::kMessageDropped:    return "message_dropped";
    case EventType::kMessageDuplicated: return "message_duplicated";
    case EventType::kMessageDelayed:    return "message_delayed";
    case EventType::kNodeCrash:         return "node_crash";
    case EventType::kNodeRestart:       return "node_restart";
    case EventType::kFailureBackoff:    return "failure_backoff";
    case EventType::kNodeSuspected:     return "node_suspected";
    case EventType::kNodeTrusted:       return "node_trusted";
    case EventType::kRecoveryStart:     return "recovery_start";
    case EventType::kRecoveryEnd:       return "recovery_end";
    case EventType::kObjectRecovered:   return "object_recovered";
    case EventType::kNodeDrained:       return "node_drained";
    case EventType::kPolicyMigration:   return "policy_migration";
  }
  return "unknown";
}

// Drop reasons travel as codes in the 1-byte flag.
uint8_t DropCode(const char* reason) {
  if (reason == nullptr) return 0;
  if (std::string_view(reason) == "lossy") return 1;
  if (std::string_view(reason) == "partition") return 2;
  if (std::string_view(reason) == "node_down") return 3;
  return 0;
}

const char* DropName(uint8_t code) {
  switch (code) {
    case 1: return "lossy";
    case 2: return "partition";
    case 3: return "node_down";
  }
  return "other";
}

void EscapeJson(std::ostream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':  out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

Recorder::Recorder(Config config) : config_(std::move(config)) {
  if (config_.ring_capacity == 0) {
    config_.ring_capacity = 1;
  }
}

void Recorder::AttachTo(amber::Runtime& rt) {
  // Pre-size every node's ring so steady-state appends never allocate.
  rings_.reserve(static_cast<size_t>(rt.nodes()));
  for (NodeId n = 0; n < rt.nodes(); ++n) {
    RingFor(n);
  }
  rt.SetBlackBox(this);
}

Recorder::Ring& Recorder::RingFor(NodeId node) {
  const size_t idx = node < 0 ? 0 : static_cast<size_t>(node);
  while (rings_.size() <= idx) {
    rings_.emplace_back();
    rings_.back().buf.resize(config_.ring_capacity);
  }
  return rings_[idx];
}

void Recorder::Append(EventType type, Time when, NodeId node, int64_t a, int64_t b, int64_t c,
                      int32_t aux, uint8_t flag, uint64_t span) {
  Ring& ring = RingFor(node);
  Record& r = ring.buf[ring.appended % ring.buf.size()];
  r.when = when;
  r.seq = next_seq_++;
  r.a = a;
  r.b = b;
  r.c = c;
  r.span = span;
  r.aux = aux;
  r.type = type;
  r.flag = flag;
  r.node = static_cast<int16_t>(node);
  ++ring.appended;
  if (when > last_time_) {
    last_time_ = when;
  }
}

int64_t Recorder::recorded() const {
  int64_t total = 0;
  for (const Ring& r : rings_) {
    total += static_cast<int64_t>(r.appended);
  }
  return total;
}

int64_t Recorder::dropped() const {
  int64_t total = 0;
  for (const Ring& r : rings_) {
    if (r.appended > r.buf.size()) {
      total += static_cast<int64_t>(r.appended - r.buf.size());
    }
  }
  return total;
}

void Recorder::PublishMetrics(metrics::Registry* registry) {
  if (registry == nullptr) {
    return;
  }
  for (size_t n = 0; n < rings_.size(); ++n) {
    Ring& r = rings_[n];
    const uint64_t rec = r.appended;
    const uint64_t drop = r.appended > r.buf.size() ? r.appended - r.buf.size() : 0;
    registry->GetCounter("fdr.recorded", static_cast<int>(n))
        .Add(static_cast<int64_t>(rec - r.published_recorded));
    registry->GetCounter("fdr.dropped", static_cast<int>(n))
        .Add(static_cast<int64_t>(drop - r.published_dropped));
    r.published_recorded = rec;
    r.published_dropped = drop;
  }
}

Recorder::ThreadLive& Recorder::Thread(ThreadId tid) { return threads_[tid]; }

int Recorder::ObjectId(const void* obj) {
  auto it = obj_ids_.find(obj);
  if (it != obj_ids_.end()) {
    return it->second;
  }
  const int id = static_cast<int>(objects_.size());
  obj_ids_.emplace(obj, id);
  objects_.emplace_back();
  return id;
}

void Recorder::TouchObject(int id, NodeId node, Time when) {
  ObjectLive& o = objects_[static_cast<size_t>(id)];
  if (node >= 0) {
    o.node = node;
  }
  if (when > o.last_touch) {
    o.last_touch = when;
  }
}

void Recorder::SetStatus(ThreadId tid, Status status, Time when) {
  ThreadLive& t = Thread(tid);
  t.status = status;
  t.since = when;
}

// --- Observer callbacks: encode + live state ---------------------------------

void Recorder::OnThreadCreate(Time when, NodeId node, ThreadId thread, const std::string& name,
                              ThreadId parent) {
  Append(EventType::kThreadCreate, when, node, static_cast<int64_t>(thread),
         static_cast<int64_t>(parent));
  ThreadLive& t = Thread(thread);
  t.name = name;
  t.parent = parent;
  t.node = node;
  t.status = Status::kReady;
  t.since = when;
}

void Recorder::OnThreadDispatch(Time when, NodeId node, ThreadId thread, Duration queue_wait) {
  Append(EventType::kThreadDispatch, when, node, static_cast<int64_t>(thread), queue_wait);
  ThreadLive& t = Thread(thread);
  t.node = node;
  SetStatus(thread, Status::kRunning, when);
}

void Recorder::OnThreadBlock(Time when, NodeId node, ThreadId thread) {
  Append(EventType::kThreadBlock, when, node, static_cast<int64_t>(thread));
  ThreadLive& t = Thread(thread);
  t.node = node;
  // Consume the armed fiber-context marker: it names what this block waits
  // on (the profiler's cause-resolution protocol).
  t.wait = t.pending;
  t.wait_arg = t.pending_arg;
  t.wait_node = t.pending_node;
  t.pending = WaitKind::kNone;
  t.pending_arg = 0;
  t.pending_node = -1;
  SetStatus(thread, Status::kBlocked, when);
}

void Recorder::OnThreadUnblock(Time when, NodeId node, ThreadId thread, ThreadId waker,
                               Time wake_time) {
  Append(EventType::kThreadUnblock, when, node, static_cast<int64_t>(thread),
         static_cast<int64_t>(waker), wake_time);
  ThreadLive& t = Thread(thread);
  t.node = node;
  t.wait = WaitKind::kNone;
  t.wait_arg = 0;
  t.wait_node = -1;
  SetStatus(thread, Status::kReady, when);
}

void Recorder::OnThreadPreempt(Time when, NodeId node, ThreadId thread) {
  Append(EventType::kThreadPreempt, when, node, static_cast<int64_t>(thread));
  SetStatus(thread, Status::kReady, when);
}

void Recorder::OnThreadExit(Time when, NodeId node, ThreadId thread) {
  Append(EventType::kThreadExit, when, node, static_cast<int64_t>(thread));
  SetStatus(thread, Status::kExited, when);
}

void Recorder::OnThreadJoin(Time when, NodeId node, ThreadId thread, ThreadId target) {
  Append(EventType::kThreadJoin, when, node, static_cast<int64_t>(thread),
         static_cast<int64_t>(target));
  ThreadLive& t = Thread(thread);
  t.pending = WaitKind::kJoin;
  t.pending_arg = static_cast<int64_t>(target);
}

void Recorder::OnThreadMigrate(Time when, NodeId src, NodeId dst, ThreadId thread,
                               int64_t bytes) {
  Append(EventType::kThreadMigrate, when, src, static_cast<int64_t>(thread), bytes, 0, dst, 0,
         SpanOf(thread));
  ThreadLive& t = Thread(thread);
  t.pending = WaitKind::kMigration;
  t.pending_node = dst;
}

void Recorder::OnInvokeEnter(Time when, NodeId node, ThreadId thread, const void* obj,
                             const std::string& object, bool remote, NodeId origin,
                             Duration entry_overhead) {
  const int id = ObjectId(obj);
  ObjectLive& o = objects_[static_cast<size_t>(id)];
  if (o.label.empty()) {
    o.label = object;
  }
  TouchObject(id, node, when);
  Append(EventType::kInvokeEnter, when, node, static_cast<int64_t>(thread), id, entry_overhead,
         origin, remote ? 1 : 0, SpanOf(thread));
  Thread(thread).stack.push_back(id);
}

void Recorder::OnInvokeExit(Time when, NodeId node, ThreadId thread, Duration span, bool remote,
                            Duration exit_overhead) {
  Append(EventType::kInvokeExit, when, node, static_cast<int64_t>(thread), span, exit_overhead,
         0, remote ? 1 : 0, SpanOf(thread));
  ThreadLive& t = Thread(thread);
  if (!t.stack.empty()) {
    t.stack.pop_back();
  }
}

void Recorder::OnLockBlocked(Time when, NodeId node, ThreadId thread, int lock) {
  Append(EventType::kLockBlocked, when, node, static_cast<int64_t>(thread), 0, 0, lock, 0,
         SpanOf(thread));
  ThreadLive& t = Thread(thread);
  t.pending = WaitKind::kLock;
  t.pending_arg = lock;
  locks_[lock].waiters.push_back(thread);
}

void Recorder::OnLockAcquired(Time when, NodeId node, ThreadId thread, int lock,
                              Duration wait) {
  Append(EventType::kLockAcquired, when, node, static_cast<int64_t>(thread), wait, 0, lock, 0,
         SpanOf(thread));
  LockLive& l = locks_[lock];
  l.holder = thread;
  l.waiters.erase(std::remove(l.waiters.begin(), l.waiters.end(), thread), l.waiters.end());
  Thread(thread).held_locks.push_back(lock);
}

void Recorder::OnLockReleased(Time when, NodeId node, ThreadId thread, int lock,
                              Duration held) {
  Append(EventType::kLockReleased, when, node, static_cast<int64_t>(thread), held, 0, lock);
  LockLive& l = locks_[lock];
  if (l.holder == thread) {
    l.holder = 0;
  }
  auto& hl = Thread(thread).held_locks;
  hl.erase(std::remove(hl.begin(), hl.end(), lock), hl.end());
}

void Recorder::OnConditionWake(Time when, NodeId node, int condition, int woken) {
  Append(EventType::kConditionWake, when, node, woken, 0, 0, condition);
}

void Recorder::OnRpcRequest(Time depart, NodeId src, NodeId dst, int64_t bytes, uint64_t id,
                            ThreadId requester) {
  Append(EventType::kRpcRequest, depart, src, static_cast<int64_t>(id), bytes,
         static_cast<int64_t>(requester), dst, 0, SpanOf(requester));
  rpcs_[id] = RpcLive{src, dst, bytes, requester, depart, 1};
  if (requester != 0) {
    ThreadLive& t = Thread(requester);
    t.pending = WaitKind::kRpc;
    t.pending_arg = static_cast<int64_t>(id);
    t.pending_node = dst;
  }
}

void Recorder::OnRpcResponse(Time when, Time reply_arrive, NodeId src, NodeId dst,
                             int64_t bytes, uint64_t id) {
  Append(EventType::kRpcResponse, when, src, static_cast<int64_t>(id), bytes, reply_arrive,
         dst);
  rpcs_.erase(id);
}

void Recorder::OnRpcRetry(Time when, NodeId src, NodeId dst, uint64_t id, int attempt,
                          ThreadId requester) {
  Append(EventType::kRpcRetry, when, src, static_cast<int64_t>(id), attempt,
         static_cast<int64_t>(requester), dst, 0, SpanOf(requester));
  auto it = rpcs_.find(id);
  if (it != rpcs_.end()) {
    it->second.attempts = attempt + 1;  // attempt is the 1-based retransmission count
  } else {
    // Thread travels emit no request event for their first transmission —
    // a retry is the first we hear of them. Track the roundtrip anyway
    // (bytes unknown) so mid-retry travels appear as in flight.
    rpcs_[id] = RpcLive{src, dst, 0, requester, when, attempt + 1};
  }
}

void Recorder::OnRpcTimeout(Time when, NodeId src, NodeId dst, uint64_t id, int attempts,
                            ThreadId requester) {
  Append(EventType::kRpcTimeout, when, src, static_cast<int64_t>(id), attempts,
         static_cast<int64_t>(requester), dst, 0, SpanOf(requester));
  rpcs_.erase(id);
}

void Recorder::OnObjectMove(Time when, const void* obj, NodeId src, NodeId dst,
                            int64_t bytes) {
  const int id = ObjectId(obj);
  TouchObject(id, dst, when);
  Append(EventType::kObjectMove, when, src, id, bytes, 0, dst);
}

void Recorder::OnReplicaInstall(Time when, const void* obj, NodeId node) {
  const int id = ObjectId(obj);
  TouchObject(id, -1, when);  // replicas don't change the primary's home
  Append(EventType::kReplicaInstall, when, node, id);
}

void Recorder::OnMessage(Time depart, Time arrive, NodeId src, NodeId dst, int64_t bytes) {
  Append(EventType::kMessage, depart, src, bytes, arrive, 0, dst);
}

void Recorder::OnMessageDropped(Time when, NodeId src, NodeId dst, int64_t bytes,
                                const char* reason) {
  Append(EventType::kMessageDropped, when, src, bytes, 0, 0, dst, DropCode(reason));
}

void Recorder::OnMessageDuplicated(Time when, NodeId src, NodeId dst, int64_t bytes) {
  Append(EventType::kMessageDuplicated, when, src, bytes, 0, 0, dst);
}

void Recorder::OnMessageDelayed(Time when, NodeId src, NodeId dst, Duration extra) {
  Append(EventType::kMessageDelayed, when, src, extra, 0, 0, dst);
}

void Recorder::OnNodeCrash(Time when, NodeId node) {
  Append(EventType::kNodeCrash, when, node);
  crashed_.insert(node);
}

void Recorder::OnNodeRestart(Time when, NodeId node) {
  Append(EventType::kNodeRestart, when, node);
  crashed_.erase(node);
}

void Recorder::OnFailureBackoff(Time when, NodeId node, ThreadId thread, Duration backoff) {
  Append(EventType::kFailureBackoff, when, node, static_cast<int64_t>(thread), backoff, 0, 0, 0,
         SpanOf(thread));
  Thread(thread).pending = WaitKind::kBackoff;
}

void Recorder::OnNodeSuspected(Time when, NodeId by, NodeId node) {
  Append(EventType::kNodeSuspected, when, by, 0, 0, 0, node);
  suspects_[by].insert(node);
}

void Recorder::OnNodeTrusted(Time when, NodeId by, NodeId node) {
  Append(EventType::kNodeTrusted, when, by, 0, 0, 0, node);
  auto it = suspects_.find(by);
  if (it != suspects_.end()) {
    it->second.erase(node);
  }
}

void Recorder::OnRecoveryStart(Time when, NodeId node, ThreadId thread, const void* obj) {
  const int id = ObjectId(obj);
  Append(EventType::kRecoveryStart, when, node, static_cast<int64_t>(thread), id);
  Thread(thread).in_recovery = true;
}

void Recorder::OnRecoveryEnd(Time when, NodeId node, ThreadId thread, const void* obj,
                             bool ok) {
  const int id = ObjectId(obj);
  Append(EventType::kRecoveryEnd, when, node, static_cast<int64_t>(thread), id, 0, 0,
         ok ? 1 : 0);
  Thread(thread).in_recovery = false;
}

void Recorder::OnObjectRecovered(Time when, const void* obj, NodeId from, NodeId to,
                                 bool from_checkpoint) {
  const int id = ObjectId(obj);
  TouchObject(id, to, when);
  Append(EventType::kObjectRecovered, when, to, id, 0, 0, from, from_checkpoint ? 1 : 0);
}

void Recorder::OnNodeDrained(Time when, NodeId node, int objects_moved) {
  Append(EventType::kNodeDrained, when, node, objects_moved);
}

void Recorder::OnPolicyMigration(Time when, const void* obj, NodeId from, NodeId to, bool ok,
                                 Duration cost) {
  const int id = ObjectId(obj);
  TouchObject(id, to, when);
  Append(EventType::kPolicyMigration, when, to, id, cost, 0, from, ok ? 1 : 0);
}

// --- Dump rendering ----------------------------------------------------------

void Recorder::RenderEvent(std::ostream& out, const Record& r) const {
  out << "{\"seq\":" << r.seq << ",\"t\":" << r.when << ",\"node\":" << r.node << ",\"type\":\""
      << TypeName(r.type) << "\"";
  switch (r.type) {
    case EventType::kThreadCreate:
      out << ",\"thread\":" << r.a << ",\"parent\":" << r.b;
      break;
    case EventType::kThreadDispatch:
      out << ",\"thread\":" << r.a << ",\"queue_wait_ns\":" << r.b;
      break;
    case EventType::kThreadBlock:
    case EventType::kThreadPreempt:
    case EventType::kThreadExit:
      out << ",\"thread\":" << r.a;
      break;
    case EventType::kThreadUnblock:
      out << ",\"thread\":" << r.a << ",\"waker\":" << r.b << ",\"wake_time_ns\":" << r.c;
      break;
    case EventType::kThreadJoin:
      out << ",\"thread\":" << r.a << ",\"target\":" << r.b;
      break;
    case EventType::kThreadMigrate:
      out << ",\"thread\":" << r.a << ",\"dst\":" << r.aux << ",\"bytes\":" << r.b;
      break;
    case EventType::kInvokeEnter:
      out << ",\"thread\":" << r.a << ",\"object\":" << r.b << ",\"origin\":" << r.aux
          << ",\"remote\":" << (r.flag ? "true" : "false") << ",\"entry_overhead_ns\":" << r.c;
      break;
    case EventType::kInvokeExit:
      out << ",\"thread\":" << r.a << ",\"span_ns\":" << r.b
          << ",\"remote\":" << (r.flag ? "true" : "false") << ",\"exit_overhead_ns\":" << r.c;
      break;
    case EventType::kLockBlocked:
      out << ",\"thread\":" << r.a << ",\"lock\":" << r.aux;
      break;
    case EventType::kLockAcquired:
      out << ",\"thread\":" << r.a << ",\"lock\":" << r.aux << ",\"wait_ns\":" << r.b;
      break;
    case EventType::kLockReleased:
      out << ",\"thread\":" << r.a << ",\"lock\":" << r.aux << ",\"held_ns\":" << r.b;
      break;
    case EventType::kConditionWake:
      out << ",\"condition\":" << r.aux << ",\"woken\":" << r.a;
      break;
    case EventType::kRpcRequest:
      out << ",\"id\":" << r.a << ",\"dst\":" << r.aux << ",\"bytes\":" << r.b
          << ",\"requester\":" << r.c;
      break;
    case EventType::kRpcResponse:
      out << ",\"id\":" << r.a << ",\"dst\":" << r.aux << ",\"bytes\":" << r.b
          << ",\"reply_arrive_ns\":" << r.c;
      break;
    case EventType::kRpcRetry:
      out << ",\"id\":" << r.a << ",\"dst\":" << r.aux << ",\"attempt\":" << r.b
          << ",\"requester\":" << r.c;
      break;
    case EventType::kRpcTimeout:
      out << ",\"id\":" << r.a << ",\"dst\":" << r.aux << ",\"attempts\":" << r.b
          << ",\"requester\":" << r.c;
      break;
    case EventType::kObjectMove:
      out << ",\"object\":" << r.a << ",\"dst\":" << r.aux << ",\"bytes\":" << r.b;
      break;
    case EventType::kReplicaInstall:
      out << ",\"object\":" << r.a;
      break;
    case EventType::kMessage:
      out << ",\"dst\":" << r.aux << ",\"bytes\":" << r.a << ",\"arrive_ns\":" << r.b;
      break;
    case EventType::kMessageDropped:
      out << ",\"dst\":" << r.aux << ",\"bytes\":" << r.a << ",\"reason\":\""
          << DropName(r.flag) << "\"";
      break;
    case EventType::kMessageDuplicated:
      out << ",\"dst\":" << r.aux << ",\"bytes\":" << r.a;
      break;
    case EventType::kMessageDelayed:
      out << ",\"dst\":" << r.aux << ",\"extra_ns\":" << r.a;
      break;
    case EventType::kNodeCrash:
    case EventType::kNodeRestart:
      break;
    case EventType::kFailureBackoff:
      out << ",\"thread\":" << r.a << ",\"backoff_ns\":" << r.b;
      break;
    case EventType::kNodeSuspected:
    case EventType::kNodeTrusted:
      out << ",\"peer\":" << r.aux;
      break;
    case EventType::kRecoveryStart:
      out << ",\"thread\":" << r.a << ",\"object\":" << r.b;
      break;
    case EventType::kRecoveryEnd:
      out << ",\"thread\":" << r.a << ",\"object\":" << r.b << ",\"ok\":"
          << (r.flag ? "true" : "false");
      break;
    case EventType::kObjectRecovered:
      out << ",\"object\":" << r.a << ",\"from\":" << r.aux << ",\"from_checkpoint\":"
          << (r.flag ? "true" : "false");
      break;
    case EventType::kNodeDrained:
      out << ",\"objects_moved\":" << r.a;
      break;
    case EventType::kPolicyMigration:
      out << ",\"object\":" << r.a << ",\"from\":" << r.aux << ",\"cost_ns\":" << r.b
          << ",\"ok\":" << (r.flag ? "true" : "false");
      break;
  }
  // Trace join key, present only when a span source stamped the record —
  // span-free dumps stay byte-identical to the pre-span schema.
  if (r.span != 0) {
    out << ",\"span\":" << r.span;
  }
  out << "}";
}

void Recorder::WriteDump(std::ostream& out, const std::string& reason,
                         const std::string& detail) {
  amber::Runtime* rt = amber::Runtime::CurrentOrNull();

  out << "{\n";
  out << "  \"fdr\": \"";
  EscapeJson(out, config_.name);
  out << "\",\n";
  out << "  \"schema\": 1,\n";
  out << "  \"reason\": \"";
  EscapeJson(out, reason);
  out << "\",\n";
  out << "  \"detail\": \"";
  EscapeJson(out, detail);
  out << "\",\n";
  const Time vt = rt != nullptr ? rt->now() : last_time_;
  out << "  \"virtual_time_ns\": " << vt << ",\n";
  // The thread this dump is "about": the fiber that was executing when the
  // dump was requested (the panicking thread), or 0 when the death happened
  // in event context / outside the simulation.
  ThreadId dying = 0;
  if (rt != nullptr && rt->sim().current() != nullptr) {
    dying = rt->sim().current()->id;
  }
  out << "  \"dying_thread\": " << dying << ",\n";
  out << "  \"ring_capacity\": " << config_.ring_capacity << ",\n";
  out << "  \"recorded\": " << recorded() << ",\n";
  out << "  \"dropped\": " << dropped() << ",\n";

  // Per-node ring stats + last activity (the analyzer's "was this node
  // really dead" cross-check against suspicion views).
  out << "  \"nodes\": [";
  for (size_t n = 0; n < rings_.size(); ++n) {
    const Ring& ring = rings_[n];
    Time last = 0;
    const size_t have = std::min<uint64_t>(ring.appended, ring.buf.size());
    for (size_t i = 0; i < have; ++i) {
      last = std::max(last, ring.buf[i].when);
    }
    const uint64_t drop = ring.appended > ring.buf.size() ? ring.appended - ring.buf.size() : 0;
    out << (n == 0 ? "" : ",") << "\n    {\"node\":" << n << ",\"recorded\":" << ring.appended
        << ",\"dropped\":" << drop << ",\"crashed\":"
        << (crashed_.count(static_cast<NodeId>(n)) ? "true" : "false")
        << ",\"last_event_ns\":" << last << "}";
  }
  out << "\n  ],\n";

  // Suspicion views: the authoritative Membership::Suspects() matrix when a
  // runtime (with an active fault plan) is still alive, else the view
  // reconstructed from suspected/trusted events.
  out << "  \"suspicion\": [";
  {
    bool first = true;
    const int nnodes = rt != nullptr ? rt->nodes() : static_cast<int>(rings_.size());
    for (NodeId viewer = 0; viewer < nnodes; ++viewer) {
      std::vector<NodeId> sus;
      if (rt != nullptr && rt->membership() != nullptr) {
        for (NodeId peer = 0; peer < nnodes; ++peer) {
          if (rt->membership()->Suspects(viewer, peer)) {
            sus.push_back(peer);
          }
        }
      } else {
        auto it = suspects_.find(viewer);
        if (it != suspects_.end()) {
          sus.assign(it->second.begin(), it->second.end());
        }
      }
      out << (first ? "" : ",") << "\n    {\"viewer\":" << viewer << ",\"suspects\":[";
      for (size_t i = 0; i < sus.size(); ++i) {
        out << (i == 0 ? "" : ",") << sus[i];
      }
      out << "]}";
      first = false;
    }
  }
  out << "\n  ],\n";

  // Ground-truth lock holds from the runtime. Uncontended acquires emit no
  // observer event (the fast path is uninstrumented by design), so the
  // event-derived lock table alone misses them; Runtime::HeldLocks() fills
  // the gap at dump time without perturbing any id numbering.
  std::map<ThreadId, std::vector<int>> extra_held;    // holder -> lock ids
  std::map<int, ThreadId> holder_override;            // lock id -> holder
  std::vector<amber::Runtime::HeldLock> anon_holds;   // never-id'd locks
  if (rt != nullptr) {
    for (const amber::Runtime::HeldLock& h : rt->HeldLocks()) {
      if (h.lock > 0 && h.holder != 0) {
        holder_override[h.lock] = h.holder;
        extra_held[h.holder].push_back(h.lock);
      } else {
        anon_holds.push_back(h);
      }
    }
  }

  // Per-thread state at time of death.
  out << "  \"threads\": [";
  {
    bool first = true;
    for (const auto& [tid, t] : threads_) {
      out << (first ? "" : ",") << "\n    {\"thread\":" << tid << ",\"name\":\"";
      EscapeJson(out, t.name);
      out << "\",\"parent\":" << t.parent << ",\"node\":" << t.node << ",\"status\":\"";
      switch (t.status) {
        case Status::kReady:   out << "ready"; break;
        case Status::kRunning: out << "running"; break;
        case Status::kBlocked: out << "blocked"; break;
        case Status::kExited:  out << "exited"; break;
      }
      out << "\",\"since_ns\":" << t.since << ",\"wait\":\"";
      switch (t.wait) {
        case WaitKind::kNone:      out << "none"; break;
        case WaitKind::kLock:      out << "lock"; break;
        case WaitKind::kRpc:       out << "rpc"; break;
        case WaitKind::kJoin:      out << "join"; break;
        case WaitKind::kMigration: out << "migration"; break;
        case WaitKind::kBackoff:   out << "backoff"; break;
      }
      out << "\",\"wait_arg\":" << t.wait_arg << ",\"wait_node\":" << t.wait_node
          << ",\"in_recovery\":" << (t.in_recovery ? "true" : "false") << ",\"held_locks\":[";
      std::vector<int> held = t.held_locks;
      if (auto eit = extra_held.find(tid); eit != extra_held.end()) {
        for (int lock : eit->second) {
          if (std::find(held.begin(), held.end(), lock) == held.end()) {
            held.push_back(lock);
          }
        }
      }
      for (size_t i = 0; i < held.size(); ++i) {
        out << (i == 0 ? "" : ",") << held[i];
      }
      out << "],\"stack\":[";
      for (size_t i = 0; i < t.stack.size(); ++i) {
        out << (i == 0 ? "" : ",") << t.stack[i];
      }
      out << "]}";
      first = false;
    }
  }
  out << "\n  ],\n";

  // Lock table: who holds what, who waits. Event-derived waiters, with the
  // holder corrected from the runtime's ground truth when available.
  out << "  \"locks\": [";
  {
    std::map<int, LockLive> table = locks_;
    for (const auto& [id, holder] : holder_override) {
      table[id].holder = holder;
    }
    bool first = true;
    for (const auto& [id, l] : table) {
      if (l.holder == 0 && l.waiters.empty()) {
        continue;  // free and uncontended: noise
      }
      out << (first ? "" : ",") << "\n    {\"lock\":" << id << ",\"holder\":" << l.holder
          << ",\"waiters\":[";
      for (size_t i = 0; i < l.waiters.size(); ++i) {
        out << (i == 0 ? "" : ",") << l.waiters[i];
      }
      out << "]}";
      first = false;
    }
    // Locks held but never contended/released while observed have no dense
    // id; list them anyway (id 0) so no hold is silently missing.
    for (const amber::Runtime::HeldLock& h : anon_holds) {
      out << (first ? "" : ",") << "\n    {\"lock\":0,\"holder\":" << h.holder
          << ",\"waiters\":[]}";
      first = false;
    }
  }
  out << "\n  ],\n";

  // Reliable roundtrips still in flight, with their transmission counts.
  out << "  \"rpcs_in_flight\": [";
  {
    bool first = true;
    for (const auto& [id, r] : rpcs_) {
      out << (first ? "" : ",") << "\n    {\"id\":" << id << ",\"src\":" << r.src
          << ",\"dst\":" << r.dst << ",\"bytes\":" << r.bytes << ",\"requester\":" << r.requester
          << ",\"depart_ns\":" << r.depart << ",\"attempts\":" << r.attempts << "}";
      first = false;
    }
  }
  out << "\n  ],\n";

  // Recently-touched objects, with their descriptor forwarding chain on
  // every node (read via DescriptorTable::ForEach — no Lookup side effects).
  std::vector<int> selected;
  for (size_t i = 0; i < objects_.size(); ++i) {
    selected.push_back(static_cast<int>(i));
  }
  std::sort(selected.begin(), selected.end(), [this](int a, int b) {
    const ObjectLive& oa = objects_[static_cast<size_t>(a)];
    const ObjectLive& ob = objects_[static_cast<size_t>(b)];
    return oa.last_touch != ob.last_touch ? oa.last_touch > ob.last_touch : a < b;
  });
  if (selected.size() > config_.dump_objects) {
    selected.resize(config_.dump_objects);
  }
  std::sort(selected.begin(), selected.end());
  // id -> per-node descriptor rendering ("res", "rep->h", "->h", "-").
  std::map<int, std::vector<std::string>> chains;
  if (rt != nullptr) {
    std::unordered_map<const void*, int> wanted;
    for (const auto& [ptr, id] : obj_ids_) {
      if (std::binary_search(selected.begin(), selected.end(), id)) {
        wanted.emplace(ptr, id);
      }
    }
    for (int id : selected) {
      chains[id].assign(static_cast<size_t>(rt->nodes()), "-");
    }
    for (NodeId n = 0; n < rt->nodes(); ++n) {
      rt->table(n).ForEach([&](const void* ptr, const amber::Descriptor& d) {
        auto it = wanted.find(ptr);
        if (it == wanted.end()) {
          return;
        }
        std::string& cell = chains[it->second][static_cast<size_t>(n)];
        switch (d.state) {
          case amber::Residency::kUninitialized:
            cell = "-";
            break;
          case amber::Residency::kResident:
            cell = "res";
            break;
          case amber::Residency::kRemoteHint:
            cell = "->" + std::to_string(d.forward);
            break;
          case amber::Residency::kReplica:
            cell = d.forward == amber::kNoNode ? "rep" : "rep->" + std::to_string(d.forward);
            break;
        }
      });
    }
  }
  out << "  \"objects\": [";
  {
    bool first = true;
    for (int id : selected) {
      const ObjectLive& o = objects_[static_cast<size_t>(id)];
      out << (first ? "" : ",") << "\n    {\"id\":" << id << ",\"label\":\"";
      EscapeJson(out, o.label.empty() ? "obj-" + std::to_string(id) : o.label);
      out << "\",\"node\":" << o.node << ",\"last_touched_ns\":" << o.last_touch
          << ",\"chain\":[";
      auto it = chains.find(id);
      if (it != chains.end()) {
        for (size_t n = 0; n < it->second.size(); ++n) {
          out << (n == 0 ? "" : ",") << "\"" << it->second[n] << "\"";
        }
      }
      out << "]}";
      first = false;
    }
  }
  out << "\n  ],\n";

  // Authoritative kernel snapshot: every fiber still tracked, in creation
  // order — the ground truth the event-derived thread states are checked
  // against.
  out << "  \"fibers\": [";
  if (rt != nullptr) {
    bool first = true;
    rt->sim().ForEachFiber([&](const sim::Fiber& f) {
      out << (first ? "" : ",") << "\n    {\"fiber\":" << f.id << ",\"name\":\"";
      EscapeJson(out, f.name);
      out << "\",\"node\":" << f.node << ",\"processor\":" << f.processor << ",\"state\":\""
          << sim::FiberStateName(f.state) << "\",\"vtime_ns\":" << f.vtime << "}";
      first = false;
    });
  }
  out << "\n  ],\n";

  // The causally-merged final window: all retained records across rings,
  // ordered by the global append sequence (== virtual-time order, since
  // every emission happens at an ordered point).
  std::vector<const Record*> merged;
  for (const Ring& ring : rings_) {
    const size_t have = std::min<uint64_t>(ring.appended, ring.buf.size());
    for (size_t i = 0; i < have; ++i) {
      merged.push_back(&ring.buf[i]);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const Record* a, const Record* b) { return a->seq < b->seq; });
  out << "  \"events\": [";
  for (size_t i = 0; i < merged.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n    ";
    RenderEvent(out, *merged[i]);
  }
  out << "\n  ]\n";
  out << "}\n";
}

}  // namespace fdr
