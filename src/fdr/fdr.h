// Flight data recorder: the always-on black box for Amber runs.
//
// A fdr::Recorder subscribes to the amber::RuntimeObserver bus and encodes
// *every* event — scheduler, invocation, lock, RPC, migration, fault,
// membership, recovery — into fixed-size per-node ring buffers of compact
// 56-byte binary records (O(1) append, no allocation once the rings are
// sized; an overwritten record counts as dropped). Alongside the rings it
// maintains a small live-state model fed by the same events: what each
// thread is doing and what it is blocked on, who holds and who waits on
// every lock, which reliable roundtrips are in flight and how many times
// they have been retransmitted, which objects were touched recently, and
// each node's suspicion view.
//
// On amber::Panic (failed AMBER_CHECK included), on injected-fault
// divergence, or on an explicit Runtime::DumpBlackBox(path), WriteDump
// renders everything as a deterministic FDR_<name>.json document: the
// causally-merged (virtual-clock-ordered) last-K events per node, the
// per-thread state at time of death, in-flight RPCs with retry counts, held
// locks, descriptor forwarding chains of the recently-touched objects, the
// authoritative kernel fiber snapshot, and per-node Membership::Suspects()
// views. All values are dense ids and integer nanoseconds — two same-seed
// runs dump byte-identical documents. Render a human report from the dump
// with the amber-fdr CLI (src/apps/fdr).
//
// Contract: the recorder is an observer-only tap. Attaching it changes no
// virtual time and no existing output; detaching leaves the binary
// behaviour untouched (tests/fdr_test.cc asserts both).
//
// Usage:
//   fdr::Recorder rec({.name = "chaos"});
//   rec.AttachTo(rt);            // observer fan-out + panic hook
//   rt.Run(...);                 // any Panic now flushes FDR_chaos.json
//   rt.DumpBlackBox("FDR_chaos.json");   // or flush explicitly

#ifndef AMBER_SRC_FDR_FDR_H_
#define AMBER_SRC_FDR_FDR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/runtime.h"

namespace fdr {

using amber::Duration;
using amber::NodeId;
using amber::ThreadId;
using amber::Time;

struct Config {
  std::string name = "amber";   // dump stem: panic dumps go to FDR_<name>.json
  size_t ring_capacity = 4096;  // records retained per node (the last-K window)
  size_t dump_objects = 32;     // most-recently-touched objects dumped with chains
};

// Every bus event maps to one record type. The numeric values are part of
// the (versioned) dump schema only through their names — renderers must
// switch on the "type" strings in the JSON, never on these ordinals.
enum class EventType : uint8_t {
  kThreadCreate,
  kThreadDispatch,
  kThreadBlock,
  kThreadUnblock,
  kThreadPreempt,
  kThreadExit,
  kThreadJoin,
  kThreadMigrate,
  kInvokeEnter,
  kInvokeExit,
  kLockBlocked,
  kLockAcquired,
  kLockReleased,
  kConditionWake,
  kRpcRequest,
  kRpcResponse,
  kRpcRetry,
  kRpcTimeout,
  kObjectMove,
  kReplicaInstall,
  kMessage,
  kMessageDropped,
  kMessageDuplicated,
  kMessageDelayed,
  kNodeCrash,
  kNodeRestart,
  kFailureBackoff,
  kNodeSuspected,
  kNodeTrusted,
  kRecoveryStart,
  kRecoveryEnd,
  kObjectRecovered,
  kNodeDrained,
  kPolicyMigration,
};

class Recorder : public amber::BlackBox {
 public:
  explicit Recorder(Config config = {});

  // Sizes one ring per node and registers with the runtime: observer
  // fan-out (AddObserver semantics — zero virtual-time cost) plus the
  // panic hook via Runtime::SetBlackBox. Call before Run(). The recorder
  // must outlive the runtime or be detached with rt.SetBlackBox(nullptr).
  void AttachTo(amber::Runtime& rt);

  // --- Volume counters --------------------------------------------------------
  int64_t recorded() const;  // records appended across all rings
  int64_t dropped() const;   // records overwritten before being dumped

  // Joins records to request traces (src/rtrace): `source(thread)` returns
  // the thread's active span id, 0 when untraced. Thread-scoped records
  // (invoke, lock, rpc, migration, backoff) are stamped with it at append
  // time and dump a "span" field when nonzero — with no source set (or an
  // unsampled run) every record stamps 0 and the dump is byte-identical to
  // the pre-span schema.
  void SetSpanSource(std::function<uint64_t(ThreadId)> source) {
    span_source_ = std::move(source);
  }

  // --- amber::BlackBox --------------------------------------------------------
  void WriteDump(std::ostream& out, const std::string& reason,
                 const std::string& detail) override;
  const std::string& name() const override { return config_.name; }
  void PublishMetrics(metrics::Registry* registry) override;

  const Config& config() const { return config_; }

  // --- amber::RuntimeObserver -------------------------------------------------
  void OnThreadMigrate(Time when, NodeId src, NodeId dst, ThreadId thread,
                       int64_t bytes) override;
  void OnObjectMove(Time when, const void* obj, NodeId src, NodeId dst, int64_t bytes) override;
  void OnReplicaInstall(Time when, const void* obj, NodeId node) override;
  void OnMessage(Time depart, Time arrive, NodeId src, NodeId dst, int64_t bytes) override;
  void OnThreadCreate(Time when, NodeId node, ThreadId thread, const std::string& name,
                      ThreadId parent) override;
  void OnThreadDispatch(Time when, NodeId node, ThreadId thread, Duration queue_wait) override;
  void OnThreadBlock(Time when, NodeId node, ThreadId thread) override;
  void OnThreadUnblock(Time when, NodeId node, ThreadId thread, ThreadId waker,
                       Time wake_time) override;
  void OnThreadPreempt(Time when, NodeId node, ThreadId thread) override;
  void OnThreadExit(Time when, NodeId node, ThreadId thread) override;
  void OnThreadJoin(Time when, NodeId node, ThreadId thread, ThreadId target) override;
  void OnInvokeEnter(Time when, NodeId node, ThreadId thread, const void* obj,
                     const std::string& object, bool remote, NodeId origin,
                     Duration entry_overhead) override;
  void OnInvokeExit(Time when, NodeId node, ThreadId thread, Duration span, bool remote,
                    Duration exit_overhead) override;
  void OnLockBlocked(Time when, NodeId node, ThreadId thread, int lock) override;
  void OnLockAcquired(Time when, NodeId node, ThreadId thread, int lock, Duration wait) override;
  void OnLockReleased(Time when, NodeId node, ThreadId thread, int lock, Duration held) override;
  void OnConditionWake(Time when, NodeId node, int condition, int woken) override;
  void OnRpcRequest(Time depart, NodeId src, NodeId dst, int64_t bytes, uint64_t id,
                    ThreadId requester) override;
  void OnRpcResponse(Time when, Time reply_arrive, NodeId src, NodeId dst, int64_t bytes,
                     uint64_t id) override;
  void OnMessageDropped(Time when, NodeId src, NodeId dst, int64_t bytes,
                        const char* reason) override;
  void OnMessageDuplicated(Time when, NodeId src, NodeId dst, int64_t bytes) override;
  void OnMessageDelayed(Time when, NodeId src, NodeId dst, Duration extra) override;
  void OnNodeCrash(Time when, NodeId node) override;
  void OnNodeRestart(Time when, NodeId node) override;
  void OnRpcRetry(Time when, NodeId src, NodeId dst, uint64_t id, int attempt,
                  ThreadId requester) override;
  void OnRpcTimeout(Time when, NodeId src, NodeId dst, uint64_t id, int attempts,
                    ThreadId requester) override;
  void OnFailureBackoff(Time when, NodeId node, ThreadId thread, Duration backoff) override;
  void OnNodeSuspected(Time when, NodeId by, NodeId node) override;
  void OnNodeTrusted(Time when, NodeId by, NodeId node) override;
  void OnRecoveryStart(Time when, NodeId node, ThreadId thread, const void* obj) override;
  void OnRecoveryEnd(Time when, NodeId node, ThreadId thread, const void* obj, bool ok) override;
  void OnObjectRecovered(Time when, const void* obj, NodeId from, NodeId to,
                         bool from_checkpoint) override;
  void OnNodeDrained(Time when, NodeId node, int objects_moved) override;
  void OnPolicyMigration(Time when, const void* obj, NodeId from, NodeId to, bool ok,
                         Duration cost) override;

 private:
  // The compact binary encoding: one fixed-width record per event. `a`,
  // `b`, `c` and `aux` carry per-type arguments (see RenderEvent in
  // fdr.cc for the decoding table); `seq` is the global append order — the
  // causal merge key across rings (events are emitted at ordered points, so
  // append order *is* the virtual-time order).
  struct Record {
    Time when = 0;
    uint64_t seq = 0;
    int64_t a = 0;
    int64_t b = 0;
    int64_t c = 0;
    uint64_t span = 0;  // active rtrace span of the acting thread (0 = untraced)
    int32_t aux = 0;
    EventType type = EventType::kThreadCreate;
    uint8_t flag = 0;  // small per-type flag: remote / ok / drop-reason code
    int16_t node = 0;
  };
  static_assert(sizeof(Record) == 56, "compact record layout");

  struct Ring {
    std::vector<Record> buf;  // capacity fixed when the ring is created
    uint64_t appended = 0;
    // Marks for delta publication of fdr.recorded / fdr.dropped.
    uint64_t published_recorded = 0;
    uint64_t published_dropped = 0;
  };

  // --- Live state at time of death -------------------------------------------
  enum class Status : uint8_t { kReady, kRunning, kBlocked, kExited };
  enum class WaitKind : uint8_t { kNone, kLock, kRpc, kJoin, kMigration, kBackoff };

  struct ThreadLive {
    std::string name;
    ThreadId parent = 0;
    NodeId node = 0;
    Status status = Status::kReady;
    Time since = 0;  // last status change
    // Active wait (valid while blocked) and the armed marker that becomes
    // it at the next OnThreadBlock — same fiber-context marker protocol as
    // the profiler's cause resolution.
    WaitKind wait = WaitKind::kNone;
    int64_t wait_arg = 0;    // lock id / rpc id / join target / dst node
    NodeId wait_node = -1;   // rpc dst / migration dst
    WaitKind pending = WaitKind::kNone;
    int64_t pending_arg = 0;
    NodeId pending_node = -1;
    bool in_recovery = false;  // level-triggered recovery episode
    std::vector<int> held_locks;  // acquisition order
    std::vector<int> stack;       // object ids of open invocation frames
  };

  struct LockLive {
    ThreadId holder = 0;  // 0 = free
    std::vector<ThreadId> waiters;
  };

  struct RpcLive {
    NodeId src = 0;
    NodeId dst = 0;
    int64_t bytes = 0;
    ThreadId requester = 0;
    Time depart = 0;
    int attempts = 1;  // transmissions so far
  };

  struct ObjectLive {
    std::string label;   // demangled class + ordinal, from the first invoke
    NodeId node = -1;    // last known location
    Time last_touch = 0;
  };

  Ring& RingFor(NodeId node);
  void Append(EventType type, Time when, NodeId node, int64_t a = 0, int64_t b = 0,
              int64_t c = 0, int32_t aux = 0, uint8_t flag = 0, uint64_t span = 0);
  // The acting thread's active span id via the span source (0 without one).
  uint64_t SpanOf(ThreadId thread) const {
    return span_source_ && thread != 0 ? span_source_(thread) : 0;
  }
  ThreadLive& Thread(ThreadId tid);
  int ObjectId(const void* obj);
  void TouchObject(int id, NodeId node, Time when);
  void SetStatus(ThreadId tid, Status status, Time when);

  // Dump helpers (fdr.cc).
  void RenderEvent(std::ostream& out, const Record& r) const;

  Config config_;
  std::vector<Ring> rings_;
  Time last_time_ = 0;

  std::map<ThreadId, ThreadLive> threads_;
  std::map<int, LockLive> locks_;
  std::map<uint64_t, RpcLive> rpcs_;
  std::map<NodeId, std::set<NodeId>> suspects_;  // viewer -> suspected peers
  std::set<NodeId> crashed_;
  std::unordered_map<const void*, int> obj_ids_;
  std::vector<ObjectLive> objects_;  // by dense id
  uint64_t next_seq_ = 0;
  std::function<uint64_t(ThreadId)> span_source_;
};

}  // namespace fdr

#endif  // AMBER_SRC_FDR_FDR_H_
