// The global virtual address space (§3.1).
//
// Amber arranges every node's address space identically so that virtual
// addresses mean the same thing everywhere: "the segment of virtual memory
// occupied by an object on one node is reserved for that object on all other
// nodes". Our single-process simulation is the limiting case of that design —
// one mmap'd arena, partitioned into 1 MiB regions. Each region is owned by
// (assigned to) exactly one node, whose allocator draws object segments from
// it; the region→owner map is what lets any node compute an object's *home
// node* from its bare address (§3.3).
//
// Most of the arena is reserved but uncommitted at startup; regions are
// committed when the AddressSpaceServer hands them out, mirroring the paper's
// lazy extension of each node's pool.

#ifndef AMBER_SRC_MEM_ADDRESS_SPACE_H_
#define AMBER_SRC_MEM_ADDRESS_SPACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/fiber.h"  // for NodeId

namespace mem {

using sim::NodeId;
using sim::kNoNode;

inline constexpr size_t kRegionSize = size_t{1} << 20;  // 1 MiB, per the paper

class GlobalAddressSpace {
 public:
  // Reserves (PROT_NONE) `reserve_bytes` of address space, rounded down to a
  // whole number of regions. Nothing is committed yet.
  explicit GlobalAddressSpace(size_t reserve_bytes = size_t{4} << 30);
  ~GlobalAddressSpace();

  GlobalAddressSpace(const GlobalAddressSpace&) = delete;
  GlobalAddressSpace& operator=(const GlobalAddressSpace&) = delete;

  size_t total_regions() const { return owners_.size(); }

  // True if p lies inside the arena (committed or not).
  bool Contains(const void* p) const;

  // Region index containing p; p must be inside the arena.
  int64_t RegionIndexOf(const void* p) const;

  void* RegionBase(int64_t index) const;

  // Owner of the region containing p (kNoNode if the region is unassigned).
  NodeId HomeOf(const void* p) const;

  NodeId RegionOwner(int64_t index) const { return owners_[static_cast<size_t>(index)]; }

  // Commits a region (read/write) and records its owner. Called only by the
  // AddressSpaceServer.
  void CommitRegion(int64_t index, NodeId owner);

  size_t committed_regions() const { return committed_; }

 private:
  uint8_t* base_ = nullptr;
  size_t reserved_ = 0;
  std::vector<NodeId> owners_;  // kNoNode until committed
  size_t committed_ = 0;
};

}  // namespace mem

#endif  // AMBER_SRC_MEM_ADDRESS_SPACE_H_
