// Per-node segment (heap-block) allocator (§3.2).
//
// Objects are allocated as segments from the regions a node owns. Two rules
// from the paper shape this allocator:
//
//  1. "Heap blocks are never divided once they have been returned to the
//     free pool" — so a dangling reference into a freed-and-reused block
//     still lands on a well-formed block boundary and the descriptor scheme
//     stays sound. Freed blocks are reused whole, exact-size match only;
//     they are never split or coalesced.
//
//  2. Fresh blocks are carved bump-style from the node's regions; when all
//     owned regions are exhausted Allocate returns nullptr and the caller
//     (the Amber kernel) acquires a new region from the RegionServer —
//     paying a control RPC when the server is remote — and retries.
//
// Every block carries a 16-byte header (size + magic + liveness) directly
// below the address handed out, so blocks can be walked, validated, and
// sized for migration byte-accounting.

#ifndef AMBER_SRC_MEM_SEGMENT_ALLOC_H_
#define AMBER_SRC_MEM_SEGMENT_ALLOC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/mem/address_space.h"

namespace mem {

class SegmentAllocator {
 public:
  SegmentAllocator(GlobalAddressSpace* space, NodeId node) : space_(space), node_(node) {}

  SegmentAllocator(const SegmentAllocator&) = delete;
  SegmentAllocator& operator=(const SegmentAllocator&) = delete;

  // Adds a region (granted to this node by the RegionServer) to the pool.
  void AddRegion(int64_t region_index);

  // Allocates a segment of at least `size` usable bytes (16-byte aligned).
  // Returns nullptr if no owned region can satisfy it — acquire a region and
  // retry. size must fit in a region.
  void* Allocate(size_t size);

  void Free(void* p);

  // Usable size of a live segment.
  size_t SizeOf(const void* p) const;

  // True if p is the base of a live segment of this allocator.
  bool IsLiveSegment(const void* p) const;

  // Maximum usable allocation size.
  static size_t MaxAllocation() { return kRegionSize - 2 * kHeaderSize; }

  // --- Introspection / integrity ---------------------------------------------

  struct BlockInfo {
    void* base;       // usable base
    size_t size;      // usable size
    bool live;
  };

  // Walks every block ever carved in this node's regions, in address order.
  void WalkBlocks(const std::function<void(const BlockInfo&)>& fn) const;

  // Validates headers and non-overlap of all blocks; panics on corruption.
  void CheckIntegrity() const;

  int64_t live_segments() const { return live_segments_; }
  int64_t live_bytes() const { return live_bytes_; }
  int64_t total_allocations() const { return total_allocations_; }
  size_t regions_owned() const { return regions_.size(); }

 private:
  static constexpr size_t kHeaderSize = 16;
  static constexpr uint32_t kMagic = 0xa3b37a1eu;

  struct Header {
    uint64_t size;  // usable bytes
    uint32_t magic;
    uint32_t live;
  };
  static_assert(sizeof(Header) == kHeaderSize);

  struct Region {
    int64_t index;
    uint8_t* base;
    size_t bump;  // next free offset
  };

  static Header* HeaderOf(void* p) { return reinterpret_cast<Header*>(static_cast<uint8_t*>(p)) - 1; }
  static const Header* HeaderOf(const void* p) {
    return reinterpret_cast<const Header*>(static_cast<const uint8_t*>(p)) - 1;
  }

  GlobalAddressSpace* space_;
  NodeId node_;
  std::vector<Region> regions_;
  // Exact-size free lists; blocks are reused whole (rule 1).
  std::map<size_t, std::vector<void*>> free_lists_;
  int64_t live_segments_ = 0;
  int64_t live_bytes_ = 0;
  int64_t total_allocations_ = 0;
};

}  // namespace mem

#endif  // AMBER_SRC_MEM_SEGMENT_ALLOC_H_
