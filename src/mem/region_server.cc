#include "src/mem/region_server.h"

#include "src/base/panic.h"

namespace mem {

RegionServer::RegionServer(GlobalAddressSpace* space, int nodes, int initial_regions_per_node,
                           NodeId server_node)
    : space_(space), server_node_(server_node) {
  AMBER_CHECK(nodes >= 1);
  AMBER_CHECK(initial_regions_per_node >= 1);
  AMBER_CHECK(static_cast<size_t>(nodes) * initial_regions_per_node <= space->total_regions())
      << "arena too small for initial region grants";
  for (NodeId n = 0; n < nodes; ++n) {
    for (int i = 0; i < initial_regions_per_node; ++i) {
      space_->CommitRegion(next_region_++, n);
    }
  }
}

int64_t RegionServer::AcquireRegion(NodeId node) {
  AMBER_CHECK(static_cast<size_t>(next_region_) < space_->total_regions())
      << "global address space exhausted";
  const int64_t index = next_region_++;
  space_->CommitRegion(index, node);
  return index;
}

}  // namespace mem
