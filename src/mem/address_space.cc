#include "src/mem/address_space.h"

#include <sys/mman.h>

#include "src/base/panic.h"

namespace mem {

GlobalAddressSpace::GlobalAddressSpace(size_t reserve_bytes) {
  const size_t regions = reserve_bytes / kRegionSize;
  AMBER_CHECK(regions >= 1) << "arena smaller than one region";
  reserved_ = regions * kRegionSize;
  void* raw = mmap(nullptr, reserved_, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE,
                   -1, 0);
  AMBER_CHECK(raw != MAP_FAILED) << "arena reservation failed (" << reserved_ << " bytes)";
  base_ = static_cast<uint8_t*>(raw);
  owners_.assign(regions, kNoNode);
}

GlobalAddressSpace::~GlobalAddressSpace() {
  if (base_ != nullptr) {
    munmap(base_, reserved_);
  }
}

bool GlobalAddressSpace::Contains(const void* p) const {
  const auto* b = static_cast<const uint8_t*>(p);
  return b >= base_ && b < base_ + reserved_;
}

int64_t GlobalAddressSpace::RegionIndexOf(const void* p) const {
  AMBER_DCHECK(Contains(p));
  return static_cast<int64_t>((static_cast<const uint8_t*>(p) - base_) / kRegionSize);
}

void* GlobalAddressSpace::RegionBase(int64_t index) const {
  AMBER_DCHECK(index >= 0 && static_cast<size_t>(index) < owners_.size());
  return base_ + static_cast<size_t>(index) * kRegionSize;
}

NodeId GlobalAddressSpace::HomeOf(const void* p) const {
  if (!Contains(p)) {
    return kNoNode;
  }
  return owners_[static_cast<size_t>(RegionIndexOf(p))];
}

void GlobalAddressSpace::CommitRegion(int64_t index, NodeId owner) {
  AMBER_CHECK(index >= 0 && static_cast<size_t>(index) < owners_.size());
  AMBER_CHECK(owners_[static_cast<size_t>(index)] == kNoNode) << "region already assigned";
  AMBER_CHECK(mprotect(RegionBase(index), kRegionSize, PROT_READ | PROT_WRITE) == 0);
  owners_[static_cast<size_t>(index)] = owner;
  ++committed_;
}

}  // namespace mem
