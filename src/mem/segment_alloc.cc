#include "src/mem/segment_alloc.h"

#include <cstring>

#include "src/base/panic.h"
#include "src/telemetry/telemetry.h"

namespace mem {

void SegmentAllocator::AddRegion(int64_t region_index) {
  AMBER_CHECK(space_->RegionOwner(region_index) == node_)
      << "adding region " << region_index << " not owned by node " << node_;
  regions_.push_back(Region{region_index, static_cast<uint8_t*>(space_->RegionBase(region_index)),
                            /*bump=*/0});
}

void* SegmentAllocator::Allocate(size_t size) {
  size = (size + 15) & ~size_t{15};
  if (size == 0) {
    size = 16;
  }
  AMBER_CHECK(size <= MaxAllocation()) << "allocation larger than a region: " << size;
  ++total_allocations_;
  telemetry::CountIfActive(telemetry::Count::kAllocations);
  telemetry::CountIfActive(telemetry::Count::kAllocBytes, static_cast<int64_t>(size));

  // Reuse a freed block of exactly this size, whole (never split).
  auto it = free_lists_.find(size);
  if (it != free_lists_.end() && !it->second.empty()) {
    void* p = it->second.back();
    it->second.pop_back();
    Header* h = HeaderOf(p);
    AMBER_DCHECK(h->magic == kMagic && h->live == 0 && h->size == size);
    h->live = 1;
    ++live_segments_;
    live_bytes_ += static_cast<int64_t>(size);
    return p;
  }

  // Carve a fresh block: first-fit over owned regions' bump tails.
  for (Region& r : regions_) {
    if (r.bump + kHeaderSize + size <= kRegionSize) {
      auto* h = reinterpret_cast<Header*>(r.base + r.bump);
      h->size = size;
      h->magic = kMagic;
      h->live = 1;
      r.bump += kHeaderSize + size;
      ++live_segments_;
      live_bytes_ += static_cast<int64_t>(size);
      return reinterpret_cast<uint8_t*>(h) + kHeaderSize;
    }
  }
  return nullptr;  // caller must acquire a region and retry
}

void SegmentAllocator::Free(void* p) {
  Header* h = HeaderOf(p);
  AMBER_CHECK(h->magic == kMagic) << "freeing non-segment pointer";
  AMBER_CHECK(h->live == 1) << "double free";
  h->live = 0;
  --live_segments_;
  live_bytes_ -= static_cast<int64_t>(h->size);
  free_lists_[h->size].push_back(p);
}

size_t SegmentAllocator::SizeOf(const void* p) const {
  const Header* h = HeaderOf(p);
  AMBER_CHECK(h->magic == kMagic);
  return h->size;
}

bool SegmentAllocator::IsLiveSegment(const void* p) const {
  if (!space_->Contains(p)) {
    return false;
  }
  const Header* h = HeaderOf(p);
  return h->magic == kMagic && h->live == 1;
}

void SegmentAllocator::WalkBlocks(const std::function<void(const BlockInfo&)>& fn) const {
  for (const Region& r : regions_) {
    size_t off = 0;
    while (off < r.bump) {
      const auto* h = reinterpret_cast<const Header*>(r.base + off);
      AMBER_CHECK(h->magic == kMagic) << "corrupt heap walk at offset " << off;
      fn(BlockInfo{const_cast<uint8_t*>(r.base + off + kHeaderSize), h->size, h->live == 1});
      off += kHeaderSize + h->size;
    }
  }
}

void SegmentAllocator::CheckIntegrity() const {
  int64_t live = 0;
  int64_t bytes = 0;
  const uint8_t* prev_end = nullptr;
  WalkBlocks([&](const BlockInfo& b) {
    const auto* base = static_cast<const uint8_t*>(b.base);
    // Non-overlap: blocks are visited in address order within a region and
    // each must start at or after the previous block's end.
    if (prev_end != nullptr && base > prev_end) {
      // Region boundary crossed; reset.
    }
    AMBER_CHECK(reinterpret_cast<uintptr_t>(base) % 16 == 0) << "misaligned block";
    if (b.live) {
      ++live;
      bytes += static_cast<int64_t>(b.size);
    }
    prev_end = base + b.size;
  });
  AMBER_CHECK(live == live_segments_) << "live segment count drift";
  AMBER_CHECK(bytes == live_bytes_) << "live byte count drift";
}

}  // namespace mem
