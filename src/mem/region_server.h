// The address-space server (§3.1).
//
// "Each node is assigned a private region of the virtual address space at
// startup time for its local heap allocations. ... a large part of the
// address space is left unallocated at startup and is handed out later by an
// address space server as nodes exhaust their initial pool."
//
// The server's state lives on one node; acquiring a region from another node
// costs a control RPC, which the Amber kernel charges when it calls
// AcquireRegion on a non-server node. The region→owner map becomes globally
// visible at grant time (in the paper, each task learns a region's owner
// when it first maps the region — we fold that into the grant; the lookup
// itself is free thereafter on every node, as in the paper).

#ifndef AMBER_SRC_MEM_REGION_SERVER_H_
#define AMBER_SRC_MEM_REGION_SERVER_H_

#include <cstdint>

#include "src/mem/address_space.h"

namespace mem {

class RegionServer {
 public:
  // Grants `initial_regions_per_node` regions to each of `nodes` nodes up
  // front (program startup, no RPC cost — the tasks are created with them).
  RegionServer(GlobalAddressSpace* space, int nodes, int initial_regions_per_node,
               NodeId server_node = 0);

  RegionServer(const RegionServer&) = delete;
  RegionServer& operator=(const RegionServer&) = delete;

  // Grants the next unassigned region to `node` and commits it. The caller
  // is responsible for charging the RPC when node != server_node().
  // Returns the region index.
  int64_t AcquireRegion(NodeId node);

  NodeId server_node() const { return server_node_; }
  int64_t regions_granted() const { return next_region_; }

 private:
  GlobalAddressSpace* space_;
  NodeId server_node_;
  int64_t next_region_ = 0;
};

}  // namespace mem

#endif  // AMBER_SRC_MEM_REGION_SERVER_H_
