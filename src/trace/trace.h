// Execution tracing.
//
// Records the runtime's distribution events — thread migrations, object
// moves, replica installs, network messages — with virtual timestamps, and
// renders them as chrome://tracing JSON (load in chrome://tracing or
// https://ui.perfetto.dev) or as a plain-text log. Deterministic runs
// produce byte-identical traces, so traces diff cleanly across changes.
//
// Attach with Runtime::SetObserver(&tracer) before Run().

#ifndef AMBER_SRC_TRACE_TRACE_H_
#define AMBER_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/runtime.h"

namespace trace {

using amber::NodeId;
using amber::Time;

enum class EventKind : uint8_t {
  kThreadMigrate,
  kObjectMove,
  kReplicaInstall,
  kMessage,
};

struct Event {
  EventKind kind;
  Time when;
  NodeId src;
  NodeId dst;
  int64_t bytes;
  std::string label;  // thread name or object id
};

class Tracer : public amber::RuntimeObserver {
 public:
  // --- RuntimeObserver -------------------------------------------------------
  void OnThreadMigrate(Time when, NodeId src, NodeId dst, const std::string& thread,
                       int64_t bytes) override {
    events_.push_back({EventKind::kThreadMigrate, when, src, dst, bytes, thread});
  }
  void OnObjectMove(Time when, const void* obj, NodeId src, NodeId dst,
                    int64_t bytes) override {
    events_.push_back({EventKind::kObjectMove, when, src, dst, bytes, ObjLabel(obj)});
  }
  void OnReplicaInstall(Time when, const void* obj, NodeId node) override {
    events_.push_back({EventKind::kReplicaInstall, when, node, node, 0, ObjLabel(obj)});
  }
  void OnMessage(Time depart, Time arrive, NodeId src, NodeId dst, int64_t bytes) override {
    events_.push_back({EventKind::kMessage, depart, src, dst, bytes,
                       std::to_string(arrive)});
  }

  // --- Access / rendering ------------------------------------------------------

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  // chrome://tracing "trace event format" JSON: one instant event per
  // distribution event, grouped by node (pid = node).
  void WriteChromeTrace(std::ostream& out) const;

  // Plain-text timeline, one line per event.
  void WriteText(std::ostream& out) const;

 private:
  static std::string ObjLabel(const void* obj);

  std::vector<Event> events_;
};

}  // namespace trace

#endif  // AMBER_SRC_TRACE_TRACE_H_
