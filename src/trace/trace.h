// Execution tracing.
//
// Records the runtime's full event bus — distribution events (thread
// migrations, object moves, replica installs, network messages), scheduler
// events (create/dispatch/block/unblock/preempt/exit), invocation spans and
// contention events — with virtual timestamps, and renders them as
// chrome://tracing JSON (load in https://ui.perfetto.dev) or as a plain-text
// log. Deterministic runs produce byte-identical traces, so traces diff
// cleanly across changes.
//
// Thread identity arrives as a stable integer id (amber::ThreadId); the
// tracer learns each id's name once from OnThreadCreate and keeps an
// id -> name side table, so recording an event never allocates for the
// thread name. Renderers resolve names at write time.
//
// Events are recorded in delivery order. Distribution events are globally
// nondecreasing in time; scheduler/invocation/contention events can run a
// context-switch ahead of the event clock (fiber-context emission), so
// renderers sort by timestamp before writing.
//
// The Chrome renderer emits:
//   * "X" duration spans for invocations (tid = thread), thread-running
//     intervals (tid = "<thread> (cpu)"), network messages and RPC
//     roundtrips;
//   * "s"/"f" flow arrows connecting a migration departure to the arrival
//     on the destination node, and an RPC request to its service;
//   * instants for moves, replica installs and lock/condition activity;
//   * process_name metadata naming each node.
//
// Attach with Runtime::SetObserver(&tracer) — or alongside other observers
// with Runtime::AddObserver(&tracer) — before Run().

#ifndef AMBER_SRC_TRACE_TRACE_H_
#define AMBER_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/runtime.h"

namespace trace {

using amber::Duration;
using amber::NodeId;
using amber::ThreadId;
using amber::Time;

enum class EventKind : uint8_t {
  // Distribution events (globally time-ordered).
  kThreadMigrate,
  kObjectMove,
  kReplicaInstall,
  kMessage,
  // Scheduler events.
  kThreadCreate,
  kThreadDispatch,
  kThreadBlock,
  kThreadUnblock,
  kThreadPreempt,
  kThreadExit,
  // Invocation spans.
  kInvokeEnter,
  kInvokeExit,
  // Contention events.
  kLockBlocked,
  kLockAcquired,
  kLockReleased,
  kConditionWake,
  kRpcRequest,
  kRpcResponse,
  // Fault-injection events (src/fault).
  kMessageDrop,
  kMessageDup,
  kMessageDelay,
  kNodeCrash,
  kNodeRestart,
  kRpcRetry,
  kRpcTimeout,
};

// True for the four kinds whose recording order is globally nondecreasing
// in virtual time.
bool IsDistributionEvent(EventKind kind);

struct Event {
  EventKind kind = EventKind::kMessage;
  Time when = 0;
  Time arrive = 0;      // messages: delivery time; rpc response: reply arrival
  NodeId src = 0;       // node for single-node events
  NodeId dst = 0;
  int64_t bytes = 0;
  Duration dur = 0;     // invoke span, dispatch queue-wait, lock wait/hold
  int64_t value = 0;    // lock/condition id, wakeup count, rpc id
  ThreadId tid = 0;     // acting thread (0 = none / event context)
  bool remote = false;  // invocation required a migration
  std::string label;    // object label or drop reason (thread names live in
                        // the tracer's id -> name table, resolved at render)
};

class Tracer : public amber::RuntimeObserver {
 public:
  // --- RuntimeObserver: distribution ----------------------------------------
  void OnThreadMigrate(Time when, NodeId src, NodeId dst, ThreadId thread,
                       int64_t bytes) override;
  void OnObjectMove(Time when, const void* obj, NodeId src, NodeId dst, int64_t bytes) override;
  void OnReplicaInstall(Time when, const void* obj, NodeId node) override;
  void OnMessage(Time depart, Time arrive, NodeId src, NodeId dst, int64_t bytes) override;

  // --- RuntimeObserver: scheduler -------------------------------------------
  void OnThreadCreate(Time when, NodeId node, ThreadId thread, const std::string& name,
                      ThreadId parent) override;
  void OnThreadDispatch(Time when, NodeId node, ThreadId thread, Duration queue_wait) override;
  void OnThreadBlock(Time when, NodeId node, ThreadId thread) override;
  void OnThreadUnblock(Time when, NodeId node, ThreadId thread, ThreadId waker,
                       Time wake_time) override;
  void OnThreadPreempt(Time when, NodeId node, ThreadId thread) override;
  void OnThreadExit(Time when, NodeId node, ThreadId thread) override;

  // --- RuntimeObserver: invocation spans ------------------------------------
  void OnInvokeEnter(Time when, NodeId node, ThreadId thread, const void* obj,
                     const std::string& object, bool remote, NodeId origin,
                     Duration entry_overhead) override;
  void OnInvokeExit(Time when, NodeId node, ThreadId thread, Duration span, bool remote,
                    Duration exit_overhead) override;

  // --- RuntimeObserver: contention ------------------------------------------
  void OnLockBlocked(Time when, NodeId node, ThreadId thread, int lock) override;
  void OnLockAcquired(Time when, NodeId node, ThreadId thread, int lock,
                      Duration wait) override;
  void OnLockReleased(Time when, NodeId node, ThreadId thread, int lock,
                      Duration held) override;
  void OnConditionWake(Time when, NodeId node, int condition, int woken) override;
  void OnRpcRequest(Time depart, NodeId src, NodeId dst, int64_t bytes, uint64_t id,
                    ThreadId requester) override;
  void OnRpcResponse(Time when, Time reply_arrive, NodeId src, NodeId dst, int64_t bytes,
                     uint64_t id) override;

  // --- RuntimeObserver: fault injection -------------------------------------
  void OnMessageDropped(Time when, NodeId src, NodeId dst, int64_t bytes,
                        const char* reason) override;
  void OnMessageDuplicated(Time when, NodeId src, NodeId dst, int64_t bytes) override;
  void OnMessageDelayed(Time when, NodeId src, NodeId dst, Duration extra) override;
  void OnNodeCrash(Time when, NodeId node) override;
  void OnNodeRestart(Time when, NodeId node) override;
  void OnRpcRetry(Time when, NodeId src, NodeId dst, uint64_t id, int attempt,
                  ThreadId requester) override;
  void OnRpcTimeout(Time when, NodeId src, NodeId dst, uint64_t id, int attempts,
                    ThreadId requester) override;

  // --- Access / rendering ------------------------------------------------------

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() {
    events_.clear();
    obj_ids_.clear();
    thread_names_.clear();
  }

  // Name recorded for a thread id ("t<id>" if its creation was not seen).
  std::string ThreadName(ThreadId tid) const;

  // chrome://tracing "trace event format" JSON; see the header comment for
  // the mapping. pid = node, tid = thread (or "net" / "rpc" rows).
  void WriteChromeTrace(std::ostream& out) const;

  // Plain-text timeline, one line per event.
  void WriteText(std::ostream& out) const;

 private:
  // Dense object label ("obj-N"), assigned in first-seen order so traces are
  // identical across runs (unlike pointer values).
  std::string ObjLabel(const void* obj);

  std::vector<Event> events_;
  std::unordered_map<const void*, int> obj_ids_;
  std::unordered_map<ThreadId, std::string> thread_names_;
};

}  // namespace trace

#endif  // AMBER_SRC_TRACE_TRACE_H_
