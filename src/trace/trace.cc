#include "src/trace/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace trace {
namespace {

const char* KindName(EventKind kind) {
  switch (kind) {
    case EventKind::kThreadMigrate:
      return "thread-migrate";
    case EventKind::kObjectMove:
      return "object-move";
    case EventKind::kReplicaInstall:
      return "replica-install";
    case EventKind::kMessage:
      return "message";
    case EventKind::kThreadCreate:
      return "thread-create";
    case EventKind::kThreadDispatch:
      return "thread-dispatch";
    case EventKind::kThreadBlock:
      return "thread-block";
    case EventKind::kThreadUnblock:
      return "thread-unblock";
    case EventKind::kThreadPreempt:
      return "thread-preempt";
    case EventKind::kThreadExit:
      return "thread-exit";
    case EventKind::kInvokeEnter:
      return "invoke-enter";
    case EventKind::kInvokeExit:
      return "invoke-exit";
    case EventKind::kLockBlocked:
      return "lock-blocked";
    case EventKind::kLockAcquired:
      return "lock-acquired";
    case EventKind::kLockReleased:
      return "lock-released";
    case EventKind::kConditionWake:
      return "condition-wake";
    case EventKind::kRpcRequest:
      return "rpc-request";
    case EventKind::kRpcResponse:
      return "rpc-response";
    case EventKind::kMessageDrop:
      return "message-drop";
    case EventKind::kMessageDup:
      return "message-dup";
    case EventKind::kMessageDelay:
      return "message-delay";
    case EventKind::kNodeCrash:
      return "node-crash";
    case EventKind::kNodeRestart:
      return "node-restart";
    case EventKind::kRpcRetry:
      return "rpc-retry";
    case EventKind::kRpcTimeout:
      return "rpc-timeout";
  }
  return "?";
}

// Minimal JSON string escaping (labels are runtime-generated, but be safe).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

double Us(Time t) { return static_cast<double>(t) / 1000.0; }

// One rendered trace line, sortable by timestamp with a stable sequence so
// identical runs produce byte-identical files.
struct Line {
  double ts;
  int seq;
  std::string json;
};

}  // namespace

bool IsDistributionEvent(EventKind kind) {
  switch (kind) {
    case EventKind::kThreadMigrate:
    case EventKind::kObjectMove:
    case EventKind::kReplicaInstall:
    case EventKind::kMessage:
      return true;
    default:
      return false;
  }
}

std::string Tracer::ObjLabel(const void* obj) {
  const auto [it, inserted] =
      obj_ids_.try_emplace(obj, static_cast<int>(obj_ids_.size()));
  return "obj-" + std::to_string(it->second);
}

std::string Tracer::ThreadName(ThreadId tid) const {
  const auto it = thread_names_.find(tid);
  if (it != thread_names_.end()) {
    return it->second;
  }
  return "t" + std::to_string(tid);
}

// --- Recording ------------------------------------------------------------------

void Tracer::OnThreadMigrate(Time when, NodeId src, NodeId dst, ThreadId thread,
                             int64_t bytes) {
  Event e;
  e.kind = EventKind::kThreadMigrate;
  e.when = when;
  e.src = src;
  e.dst = dst;
  e.bytes = bytes;
  e.tid = thread;
  events_.push_back(std::move(e));
}

void Tracer::OnObjectMove(Time when, const void* obj, NodeId src, NodeId dst, int64_t bytes) {
  Event e;
  e.kind = EventKind::kObjectMove;
  e.when = when;
  e.src = src;
  e.dst = dst;
  e.bytes = bytes;
  e.label = ObjLabel(obj);
  events_.push_back(std::move(e));
}

void Tracer::OnReplicaInstall(Time when, const void* obj, NodeId node) {
  Event e;
  e.kind = EventKind::kReplicaInstall;
  e.when = when;
  e.src = node;
  e.dst = node;
  e.label = ObjLabel(obj);
  events_.push_back(std::move(e));
}

void Tracer::OnMessage(Time depart, Time arrive, NodeId src, NodeId dst, int64_t bytes) {
  Event e;
  e.kind = EventKind::kMessage;
  e.when = depart;
  e.arrive = arrive;
  e.src = src;
  e.dst = dst;
  e.bytes = bytes;
  events_.push_back(std::move(e));
}

void Tracer::OnThreadCreate(Time when, NodeId node, ThreadId thread, const std::string& name,
                            ThreadId parent) {
  (void)parent;
  thread_names_[thread] = name;
  Event e;
  e.kind = EventKind::kThreadCreate;
  e.when = when;
  e.src = e.dst = node;
  e.tid = thread;
  events_.push_back(std::move(e));
}

void Tracer::OnThreadDispatch(Time when, NodeId node, ThreadId thread, Duration queue_wait) {
  Event e;
  e.kind = EventKind::kThreadDispatch;
  e.when = when;
  e.src = e.dst = node;
  e.dur = queue_wait;
  e.tid = thread;
  events_.push_back(std::move(e));
}

void Tracer::OnThreadBlock(Time when, NodeId node, ThreadId thread) {
  Event e;
  e.kind = EventKind::kThreadBlock;
  e.when = when;
  e.src = e.dst = node;
  e.tid = thread;
  events_.push_back(std::move(e));
}

void Tracer::OnThreadUnblock(Time when, NodeId node, ThreadId thread, ThreadId waker,
                             Time wake_time) {
  (void)waker;
  (void)wake_time;
  Event e;
  e.kind = EventKind::kThreadUnblock;
  e.when = when;
  e.src = e.dst = node;
  e.tid = thread;
  events_.push_back(std::move(e));
}

void Tracer::OnThreadPreempt(Time when, NodeId node, ThreadId thread) {
  Event e;
  e.kind = EventKind::kThreadPreempt;
  e.when = when;
  e.src = e.dst = node;
  e.tid = thread;
  events_.push_back(std::move(e));
}

void Tracer::OnThreadExit(Time when, NodeId node, ThreadId thread) {
  Event e;
  e.kind = EventKind::kThreadExit;
  e.when = when;
  e.src = e.dst = node;
  e.tid = thread;
  events_.push_back(std::move(e));
}

void Tracer::OnInvokeEnter(Time when, NodeId node, ThreadId thread, const void* obj,
                           const std::string& object, bool remote, NodeId origin,
                           Duration entry_overhead) {
  (void)obj;
  (void)origin;
  (void)entry_overhead;
  Event e;
  e.kind = EventKind::kInvokeEnter;
  e.when = when;
  e.src = e.dst = node;
  e.remote = remote;
  e.tid = thread;
  e.label = object;
  events_.push_back(std::move(e));
}

void Tracer::OnInvokeExit(Time when, NodeId node, ThreadId thread, Duration span, bool remote,
                          Duration exit_overhead) {
  (void)exit_overhead;
  Event e;
  e.kind = EventKind::kInvokeExit;
  e.when = when;
  e.src = e.dst = node;
  e.dur = span;
  e.remote = remote;
  e.tid = thread;
  events_.push_back(std::move(e));
}

void Tracer::OnLockBlocked(Time when, NodeId node, ThreadId thread, int lock) {
  Event e;
  e.kind = EventKind::kLockBlocked;
  e.when = when;
  e.src = e.dst = node;
  e.value = lock;
  e.tid = thread;
  events_.push_back(std::move(e));
}

void Tracer::OnLockAcquired(Time when, NodeId node, ThreadId thread, int lock, Duration wait) {
  Event e;
  e.kind = EventKind::kLockAcquired;
  e.when = when;
  e.src = e.dst = node;
  e.value = lock;
  e.dur = wait;
  e.tid = thread;
  events_.push_back(std::move(e));
}

void Tracer::OnLockReleased(Time when, NodeId node, ThreadId thread, int lock, Duration held) {
  Event e;
  e.kind = EventKind::kLockReleased;
  e.when = when;
  e.src = e.dst = node;
  e.value = lock;
  e.dur = held;
  e.tid = thread;
  events_.push_back(std::move(e));
}

void Tracer::OnConditionWake(Time when, NodeId node, int condition, int woken) {
  Event e;
  e.kind = EventKind::kConditionWake;
  e.when = when;
  e.src = e.dst = node;
  e.value = condition;
  e.bytes = woken;
  events_.push_back(std::move(e));
}

void Tracer::OnRpcRequest(Time depart, NodeId src, NodeId dst, int64_t bytes, uint64_t id,
                          ThreadId requester) {
  Event e;
  e.kind = EventKind::kRpcRequest;
  e.when = depart;
  e.src = src;
  e.dst = dst;
  e.bytes = bytes;
  e.value = static_cast<int64_t>(id);
  e.tid = requester;
  events_.push_back(std::move(e));
}

void Tracer::OnRpcResponse(Time when, Time reply_arrive, NodeId src, NodeId dst, int64_t bytes,
                           uint64_t id) {
  Event e;
  e.kind = EventKind::kRpcResponse;
  e.when = when;
  e.arrive = reply_arrive;
  e.src = src;
  e.dst = dst;
  e.bytes = bytes;
  e.value = static_cast<int64_t>(id);
  events_.push_back(std::move(e));
}

void Tracer::OnMessageDropped(Time when, NodeId src, NodeId dst, int64_t bytes,
                              const char* reason) {
  Event e;
  e.kind = EventKind::kMessageDrop;
  e.when = when;
  e.src = src;
  e.dst = dst;
  e.bytes = bytes;
  e.label = reason;
  events_.push_back(std::move(e));
}

void Tracer::OnMessageDuplicated(Time when, NodeId src, NodeId dst, int64_t bytes) {
  Event e;
  e.kind = EventKind::kMessageDup;
  e.when = when;
  e.src = src;
  e.dst = dst;
  e.bytes = bytes;
  events_.push_back(std::move(e));
}

void Tracer::OnMessageDelayed(Time when, NodeId src, NodeId dst, Duration extra) {
  Event e;
  e.kind = EventKind::kMessageDelay;
  e.when = when;
  e.src = src;
  e.dst = dst;
  e.dur = extra;
  events_.push_back(std::move(e));
}

void Tracer::OnNodeCrash(Time when, NodeId node) {
  Event e;
  e.kind = EventKind::kNodeCrash;
  e.when = when;
  e.src = e.dst = node;
  events_.push_back(std::move(e));
}

void Tracer::OnNodeRestart(Time when, NodeId node) {
  Event e;
  e.kind = EventKind::kNodeRestart;
  e.when = when;
  e.src = e.dst = node;
  events_.push_back(std::move(e));
}

void Tracer::OnRpcRetry(Time when, NodeId src, NodeId dst, uint64_t id, int attempt,
                        ThreadId requester) {
  (void)requester;
  Event e;
  e.kind = EventKind::kRpcRetry;
  e.when = when;
  e.src = src;
  e.dst = dst;
  e.value = static_cast<int64_t>(id);
  e.bytes = attempt;
  events_.push_back(std::move(e));
}

void Tracer::OnRpcTimeout(Time when, NodeId src, NodeId dst, uint64_t id, int attempts,
                          ThreadId requester) {
  (void)requester;
  Event e;
  e.kind = EventKind::kRpcTimeout;
  e.when = when;
  e.src = src;
  e.dst = dst;
  e.value = static_cast<int64_t>(id);
  e.bytes = attempts;
  events_.push_back(std::move(e));
}

// --- Rendering ------------------------------------------------------------------

void Tracer::WriteChromeTrace(std::ostream& out) const {
  std::vector<Line> lines;
  int seq = 0;
  char buf[512];
  auto add = [&](double ts, const char* json) {
    lines.push_back(Line{ts, seq++, std::string(json)});
  };

  NodeId max_node = 0;
  for (const Event& e : events_) {
    max_node = std::max({max_node, e.src, e.dst});
  }

  // Render-time pairing state, all keyed by thread id (stable across runs).
  struct OpenSpan {
    Time start;
    NodeId node;
  };
  std::map<ThreadId, OpenSpan> running;                 // open dispatch
  std::map<ThreadId, std::vector<const Event*>> calls;  // invoke stack
  std::map<ThreadId, int> migration_flow;               // awaiting arrival
  std::map<int64_t, const Event*> rpc_requests;         // by rpc id
  int next_flow = 0;

  for (const Event& e : events_) {
    switch (e.kind) {
      case EventKind::kThreadDispatch:
        running[e.tid] = OpenSpan{e.when, e.src};
        break;
      case EventKind::kThreadBlock:
      case EventKind::kThreadPreempt:
      case EventKind::kThreadExit: {
        auto it = running.find(e.tid);
        if (it != running.end()) {
          std::snprintf(buf, sizeof(buf),
                        "{\"name\":\"running\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                        "\"pid\":%d,\"tid\":\"%s (cpu)\",\"cat\":\"sched\"}",
                        Us(it->second.start), Us(e.when - it->second.start), it->second.node,
                        Escape(ThreadName(e.tid)).c_str());
          add(Us(it->second.start), buf);
          running.erase(it);
        }
        break;
      }
      case EventKind::kThreadUnblock: {
        auto it = migration_flow.find(e.tid);
        if (it != migration_flow.end()) {
          std::snprintf(buf, sizeof(buf),
                        "{\"name\":\"migrate\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
                        "\"id\":%d,\"ts\":%.3f,\"pid\":%d,\"tid\":\"%s (cpu)\"}",
                        it->second, Us(e.when), e.src, Escape(ThreadName(e.tid)).c_str());
          add(Us(e.when), buf);
          migration_flow.erase(it);
        }
        break;
      }
      case EventKind::kThreadMigrate: {
        const int id = next_flow++;
        migration_flow[e.tid] = id;
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"migrate\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":%d,"
                      "\"ts\":%.3f,\"pid\":%d,\"tid\":\"%s (cpu)\"}",
                      id, Us(e.when), e.src, Escape(ThreadName(e.tid)).c_str());
        add(Us(e.when), buf);
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"thread-migrate %s %d->%d\",\"ph\":\"i\",\"ts\":%.3f,"
                      "\"pid\":%d,\"tid\":\"%s (cpu)\",\"s\":\"p\",\"cat\":\"migration\","
                      "\"args\":{\"bytes\":%lld}}",
                      Escape(ThreadName(e.tid)).c_str(), e.src, e.dst, Us(e.when), e.src,
                      Escape(ThreadName(e.tid)).c_str(), static_cast<long long>(e.bytes));
        add(Us(e.when), buf);
        break;
      }
      case EventKind::kInvokeEnter:
        calls[e.tid].push_back(&e);
        break;
      case EventKind::kInvokeExit: {
        auto it = calls.find(e.tid);
        if (it != calls.end() && !it->second.empty()) {
          const Event* enter = it->second.back();
          it->second.pop_back();
          std::snprintf(buf, sizeof(buf),
                        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,"
                        "\"tid\":\"%s\",\"cat\":\"invoke\",\"args\":{\"remote\":%s}}",
                        Escape(enter->label).c_str(), Us(enter->when), Us(e.when - enter->when),
                        enter->src, Escape(ThreadName(e.tid)).c_str(),
                        enter->remote ? "true" : "false");
          add(Us(enter->when), buf);
        }
        break;
      }
      case EventKind::kRpcRequest:
        rpc_requests[e.value] = &e;
        break;
      case EventKind::kRpcResponse: {
        auto it = rpc_requests.find(e.value);
        if (it != rpc_requests.end()) {
          const Event* req = it->second;
          // Roundtrip span on the requester's "rpc" row (src of the request,
          // dst of the response).
          std::snprintf(buf, sizeof(buf),
                        "{\"name\":\"rpc %d->%d (%lld B)\",\"ph\":\"X\",\"ts\":%.3f,"
                        "\"dur\":%.3f,\"pid\":%d,\"tid\":\"rpc\",\"cat\":\"rpc\"}",
                        req->src, req->dst, static_cast<long long>(req->bytes), Us(req->when),
                        Us(e.arrive - req->when), req->src);
          add(Us(req->when), buf);
          const int id = next_flow++;
          std::snprintf(buf, sizeof(buf),
                        "{\"name\":\"rpc\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":%d,"
                        "\"ts\":%.3f,\"pid\":%d,\"tid\":\"rpc\"}",
                        id, Us(req->when), req->src);
          add(Us(req->when), buf);
          std::snprintf(buf, sizeof(buf),
                        "{\"name\":\"rpc\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
                        "\"id\":%d,\"ts\":%.3f,\"pid\":%d,\"tid\":\"rpc\"}",
                        id, Us(e.when), e.src);
          add(Us(e.when), buf);
          rpc_requests.erase(it);
        }
        break;
      }
      case EventKind::kMessage:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"msg %d->%d (%lld B)\",\"ph\":\"X\",\"ts\":%.3f,"
                      "\"dur\":%.3f,\"pid\":%d,\"tid\":\"net\",\"cat\":\"message\"}",
                      e.src, e.dst, static_cast<long long>(e.bytes), Us(e.when),
                      Us(e.arrive - e.when), e.src);
        add(Us(e.when), buf);
        break;
      case EventKind::kLockBlocked:
      case EventKind::kLockAcquired:
      case EventKind::kLockReleased:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s lock-%lld\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":%d,"
                      "\"tid\":\"%s\",\"s\":\"t\",\"cat\":\"sync\",\"args\":{\"ns\":%lld}}",
                      KindName(e.kind), static_cast<long long>(e.value), Us(e.when), e.src,
                      Escape(ThreadName(e.tid)).c_str(), static_cast<long long>(e.dur));
        add(Us(e.when), buf);
        break;
      case EventKind::kConditionWake:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"condition-wake cond-%lld\",\"ph\":\"i\",\"ts\":%.3f,"
                      "\"pid\":%d,\"tid\":\"sync\",\"s\":\"t\",\"cat\":\"sync\","
                      "\"args\":{\"woken\":%lld}}",
                      static_cast<long long>(e.value), Us(e.when), e.src,
                      static_cast<long long>(e.bytes));
        add(Us(e.when), buf);
        break;
      case EventKind::kThreadCreate:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"thread-create %s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":%d,"
                      "\"tid\":\"%s (cpu)\",\"s\":\"t\",\"cat\":\"sched\"}",
                      Escape(ThreadName(e.tid)).c_str(), Us(e.when), e.src,
                      Escape(ThreadName(e.tid)).c_str());
        add(Us(e.when), buf);
        break;
      case EventKind::kObjectMove:
      case EventKind::kReplicaInstall:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s %s %d->%d\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":%d,"
                      "\"tid\":\"%s\",\"s\":\"p\",\"cat\":\"%s\",\"args\":{\"bytes\":%lld}}",
                      KindName(e.kind), Escape(e.label).c_str(), e.src, e.dst, Us(e.when),
                      e.src, KindName(e.kind), KindName(e.kind),
                      static_cast<long long>(e.bytes));
        add(Us(e.when), buf);
        break;
      case EventKind::kMessageDrop:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"drop %d->%d (%s)\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":%d,"
                      "\"tid\":\"net\",\"s\":\"p\",\"cat\":\"fault\",\"args\":{\"bytes\":%lld}}",
                      e.src, e.dst, Escape(e.label).c_str(), Us(e.when), e.src,
                      static_cast<long long>(e.bytes));
        add(Us(e.when), buf);
        break;
      case EventKind::kMessageDup:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"dup %d->%d\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":%d,"
                      "\"tid\":\"net\",\"s\":\"p\",\"cat\":\"fault\",\"args\":{\"bytes\":%lld}}",
                      e.src, e.dst, Us(e.when), e.src, static_cast<long long>(e.bytes));
        add(Us(e.when), buf);
        break;
      case EventKind::kMessageDelay:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"delay %d->%d\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":%d,"
                      "\"tid\":\"net\",\"s\":\"p\",\"cat\":\"fault\",\"args\":{\"extra_ns\":%lld}}",
                      e.src, e.dst, Us(e.when), e.src, static_cast<long long>(e.dur));
        add(Us(e.when), buf);
        break;
      case EventKind::kNodeCrash:
      case EventKind::kNodeRestart:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s node-%d\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":%d,"
                      "\"tid\":\"fault\",\"s\":\"p\",\"cat\":\"fault\"}",
                      KindName(e.kind), e.src, Us(e.when), e.src);
        add(Us(e.when), buf);
        break;
      case EventKind::kRpcRetry:
      case EventKind::kRpcTimeout:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s %d->%d\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":%d,"
                      "\"tid\":\"rpc\",\"s\":\"t\",\"cat\":\"fault\","
                      "\"args\":{\"id\":%lld,\"attempt\":%lld}}",
                      KindName(e.kind), e.src, e.dst, Us(e.when), e.src,
                      static_cast<long long>(e.value), static_cast<long long>(e.bytes));
        add(Us(e.when), buf);
        break;
    }
  }

  std::stable_sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    return a.ts != b.ts ? a.ts < b.ts : a.seq < b.seq;
  });

  out << "{\"traceEvents\":[\n";
  bool first = true;
  for (NodeId n = 0; n <= max_node; ++n) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"args\":{\"name\":\"node %d\"}}",
                  n, n);
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << buf;
  }
  for (const Line& l : lines) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << l.json;
  }
  out << "\n]}\n";
}

void Tracer::WriteText(std::ostream& out) const {
  char buf[320];
  for (const Event& e : events_) {
    // Reconstruct the human label: acting thread's name, then any event
    // label (object or reason) after a space — matching the pre-ThreadId
    // format byte for byte.
    std::string label;
    switch (e.kind) {
      case EventKind::kRpcRequest:
      case EventKind::kRpcRetry:
      case EventKind::kRpcTimeout:
        // These carried no thread name before ids existed; keep them bare.
        label = e.label;
        break;
      default:
        if (e.tid != 0) {
          label = ThreadName(e.tid);
        }
        if (!e.label.empty()) {
          if (!label.empty()) {
            label += " ";
          }
          label += e.label;
        }
        break;
    }
    std::snprintf(buf, sizeof(buf), "%12.3f ms  %-16s %d -> %d  %8lld B  %s\n",
                  static_cast<double>(e.when) / 1e6, KindName(e.kind), e.src, e.dst,
                  static_cast<long long>(e.bytes), label.c_str());
    out << buf;
  }
}

}  // namespace trace
