#include "src/trace/trace.h"

#include <cinttypes>
#include <cstdio>

namespace trace {
namespace {

const char* KindName(EventKind kind) {
  switch (kind) {
    case EventKind::kThreadMigrate:
      return "thread-migrate";
    case EventKind::kObjectMove:
      return "object-move";
    case EventKind::kReplicaInstall:
      return "replica-install";
    case EventKind::kMessage:
      return "message";
  }
  return "?";
}

// Minimal JSON string escaping (labels are runtime-generated, but be safe).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string Tracer::ObjLabel(const void* obj) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "obj-%" PRIxPTR, reinterpret_cast<uintptr_t>(obj));
  return buf;
}

void Tracer::WriteChromeTrace(std::ostream& out) const {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  char buf[384];
  for (const Event& e : events_) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    if (e.kind == EventKind::kMessage) {
      // Render messages as duration events on the source node's "net" row.
      const Time arrive = std::stoll(e.label);
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"msg %d->%d (%lld B)\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":%d,\"tid\":\"net\",\"cat\":\"message\"}",
                    e.src, e.dst, static_cast<long long>(e.bytes),
                    static_cast<double>(e.when) / 1000.0,
                    static_cast<double>(arrive - e.when) / 1000.0, e.src);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s %s %d->%d\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":%d,"
                    "\"tid\":\"%s\",\"s\":\"p\",\"cat\":\"%s\"}",
                    KindName(e.kind), Escape(e.label).c_str(), e.src, e.dst,
                    static_cast<double>(e.when) / 1000.0, e.src, KindName(e.kind),
                    KindName(e.kind));
    }
    out << buf;
  }
  out << "\n]}\n";
}

void Tracer::WriteText(std::ostream& out) const {
  char buf[256];
  for (const Event& e : events_) {
    std::snprintf(buf, sizeof(buf), "%12.3f ms  %-16s %d -> %d  %8lld B  %s\n",
                  static_cast<double>(e.when) / 1e6, KindName(e.kind), e.src, e.dst,
                  static_cast<long long>(e.bytes), e.label.c_str());
    out << buf;
  }
}

}  // namespace trace
