// Causal critical-path profiler and object placement advisor.
//
// The profiler subscribes to the amber::RuntimeObserver event bus and
// incrementally builds the run's blocking-dependency graph: every thread's
// lifetime is tiled into segments — runnable-but-queued, running, or blocked
// with a *cause* (waiting for a lock held elsewhere, waiting for an RPC
// served by node N including retry/timeout episodes, in migration transit,
// fault-induced backoff, or a generic wake by another thread). Causes are
// resolved from fiber-context markers that the runtime emits before each
// block (OnLockBlocked, OnThreadJoin, OnRpcRequest, OnFailureBackoff,
// OnThreadMigrate) plus the waker identity carried on OnThreadUnblock.
//
// Finalize() extracts the virtual-time critical path: a backward walk from
// the last thread exit that, at every blocked segment, either attributes the
// wait in place (lock contention, RPC service, migration transit, fault
// backoff) or jumps to the thread that caused the wake (join targets,
// condition/barrier signalers) at the wake time. Every nanosecond of the
// run lands in exactly one category — the breakdown sums to the end-to-end
// virtual time by construction:
//
//   compute.node<n>   executing on a processor of node n
//   queue.node<n>     runnable, waiting for a free processor of node n
//   lock.<l>          blocked on lock l held by another thread
//   rpc.node<n>       waiting for an RPC served by node n
//   rpc.net           waiting on the wire (messages, unpaired waits)
//   migration         thread in migration transit
//   fault             retry backoff / fault-induced waiting
//   recovery          crash-recovery episodes: replica re-bind probes and
//                     checkpoint restores (OnRecoveryStart/End brackets)
//
// The placement advisor aggregates per-object invocation flow (who calls
// each object from where, and how much entry/exit overhead — residency
// chases, thread migration — each remote call pays) and per-lock wait/hold
// totals, then emits ranked advice: "obj-3 lives on node 0 but 83% of
// remote-invocation overhead originates on node 2; MoveTo(2) est. saving
// 1.2 ms".
//
// Determinism: all aggregation is keyed by dense ids (thread ids, first-seen
// object order, lock ids) and all report values are integer nanoseconds, so
// WriteJson output is byte-identical across identical runs. Attach with
// Runtime::AddObserver(&profiler) — alongside a tracer if desired — before
// Run(), and call Finalize() after.

#ifndef AMBER_SRC_PROF_PROFILER_H_
#define AMBER_SRC_PROF_PROFILER_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/runtime.h"

namespace prof {

using amber::Duration;
using amber::NodeId;
using amber::ThreadId;
using amber::Time;

// One attributed stretch of the critical path (adjacent equal categories are
// merged; listed in start -> end order).
struct PathStep {
  std::string category;
  Time ns = 0;
};

// Per-object invocation flow, fed to the placement advisor.
struct ObjectProfile {
  int id = 0;          // dense first-seen order (deterministic)
  std::string label;   // demangled class name + instance ordinal
  NodeId home = 0;     // node of residence at the end of the run
  int64_t moves = 0;
  int64_t invocations = 0;
  int64_t remote_invocations = 0;
  std::map<NodeId, int64_t> calls_by_origin;
  // Entry + exit overhead (residency chase, migration, return travel) paid
  // by remote invocations, bucketed by the calling thread's origin node.
  std::map<NodeId, Time> overhead_by_origin;
};

// Per-lock contention totals; critical_path_ns is filled by Finalize().
struct LockProfile {
  int id = 0;
  int64_t acquisitions = 0;
  Time wait_ns = 0;
  Time hold_ns = 0;
  Time max_wait_ns = 0;
  Time critical_path_ns = 0;
};

// One ranked recommendation. kind is "move" (object placement) or "lock"
// (contention hot spot); est_saving_ns orders the list.
struct Advice {
  std::string kind;
  int target = 0;  // object id (move) or lock id (lock)
  std::string label;
  NodeId from = 0;
  NodeId to = 0;
  Time est_saving_ns = 0;
  std::string text;
};

struct ProfileReport {
  std::string name;  // scenario/bench name, set by the caller
  Time total_ns = 0;
  // category -> attributed ns; the values sum exactly to total_ns.
  std::map<std::string, Time> breakdown;
  std::vector<PathStep> critical_path;
  std::vector<ObjectProfile> objects;  // ordered by id
  std::vector<LockProfile> locks;      // ordered by id
  std::vector<Advice> advice;          // best saving first

  // Machine-readable report. Integer-only values and deterministic key
  // order: byte-identical across identical (same-seed) runs.
  void WriteJson(std::ostream& out) const;

  // Human-readable summary (totals, attribution table, top locks, advice).
  void WriteSummary(std::ostream& out) const;
};

class Profiler : public amber::RuntimeObserver {
 public:
  // --- RuntimeObserver --------------------------------------------------------
  void OnThreadCreate(Time when, NodeId node, ThreadId thread, const std::string& name,
                      ThreadId parent) override;
  void OnThreadDispatch(Time when, NodeId node, ThreadId thread, Duration queue_wait) override;
  void OnThreadBlock(Time when, NodeId node, ThreadId thread) override;
  void OnThreadUnblock(Time when, NodeId node, ThreadId thread, ThreadId waker,
                       Time wake_time) override;
  void OnThreadPreempt(Time when, NodeId node, ThreadId thread) override;
  void OnThreadExit(Time when, NodeId node, ThreadId thread) override;
  void OnThreadJoin(Time when, NodeId node, ThreadId thread, ThreadId target) override;
  void OnThreadMigrate(Time when, NodeId src, NodeId dst, ThreadId thread,
                       int64_t bytes) override;

  void OnInvokeEnter(Time when, NodeId node, ThreadId thread, const void* obj,
                     const std::string& object, bool remote, NodeId origin,
                     Duration entry_overhead) override;
  void OnInvokeExit(Time when, NodeId node, ThreadId thread, Duration span, bool remote,
                    Duration exit_overhead) override;

  void OnLockBlocked(Time when, NodeId node, ThreadId thread, int lock) override;
  void OnLockAcquired(Time when, NodeId node, ThreadId thread, int lock, Duration wait) override;
  void OnLockReleased(Time when, NodeId node, ThreadId thread, int lock, Duration held) override;

  void OnRpcRequest(Time depart, NodeId src, NodeId dst, int64_t bytes, uint64_t id,
                    ThreadId requester) override;
  void OnRpcResponse(Time when, Time reply_arrive, NodeId src, NodeId dst, int64_t bytes,
                     uint64_t id) override;
  void OnRpcRetry(Time when, NodeId src, NodeId dst, uint64_t id, int attempt,
                  ThreadId requester) override;
  void OnRpcTimeout(Time when, NodeId src, NodeId dst, uint64_t id, int attempts,
                    ThreadId requester) override;
  void OnFailureBackoff(Time when, NodeId node, ThreadId thread, Duration backoff) override;
  void OnRecoveryStart(Time when, NodeId node, ThreadId thread, const void* obj) override;
  void OnRecoveryEnd(Time when, NodeId node, ThreadId thread, const void* obj, bool ok) override;

  void OnObjectMove(Time when, const void* obj, NodeId src, NodeId dst, int64_t bytes) override;
  void OnMessage(Time depart, Time arrive, NodeId src, NodeId dst, int64_t bytes) override;

  // --- Extraction -------------------------------------------------------------

  // Closes open segments, walks the dependency graph backward from the last
  // exit, and builds the report. Call once, after Runtime::Run() returns.
  ProfileReport Finalize();

  // Forgets everything recorded so far (for back-to-back runs).
  void Reset();

 private:
  enum class SegKind : uint8_t { kQueued, kRunning, kBlocked };
  enum class Cause : uint8_t {
    kNone,
    kLock,
    kRpc,
    kJoin,
    kMigration,
    kFault,
    kWake,
    kNet,
    kRecovery,
  };

  struct Segment {
    Time start = 0;
    Time end = 0;
    SegKind kind = SegKind::kQueued;
    Cause cause = Cause::kNone;
    NodeId node = 0;
    int aux = 0;         // lock id (kLock) or serving node (kRpc)
    ThreadId other = 0;  // join target (kJoin) or waker (kWake)
    Time wake_time = 0;  // when the waker called Wake (kWake / kJoin)
  };

  enum class Status : uint8_t { kReady, kRunning, kBlocked, kExited };

  struct ThreadState {
    std::string name;
    ThreadId parent = 0;
    Time create_time = 0;
    Time exit_time = 0;
    int64_t exit_seq = -1;  // -1: has not exited
    NodeId node = 0;
    Status status = Status::kReady;
    Time cursor = 0;  // start of the currently open segment
    std::vector<Segment> segs;
    int last_blocked = -1;  // index of the most recently closed blocked seg

    // Cause markers armed from fiber context before the next block.
    int pending_lock = -1;
    ThreadId pending_join = 0;
    bool pending_migrate = false;
    bool pending_backoff = false;
    // Level-triggered (not one-shot like the others): every block between
    // OnRecoveryStart and OnRecoveryEnd belongs to the recovery episode.
    bool in_recovery = false;
    bool rpc_armed = false;
    bool rpc_replied = false;
    NodeId rpc_dst = 0;

    // Open invocation frames: {object id, origin node, remote}.
    struct Frame {
      int obj = 0;
      NodeId origin = 0;
      bool remote = false;
    };
    std::vector<Frame> frames;
  };

  struct ObjectAgg {
    std::string label;
    NodeId home = 0;
    int64_t moves = 0;
    int64_t invocations = 0;
    int64_t remote_invocations = 0;
    std::map<NodeId, int64_t> calls_by_origin;
    std::map<NodeId, Time> overhead_by_origin;
  };

  struct LockAgg {
    int64_t acquisitions = 0;
    Time wait_ns = 0;
    Time hold_ns = 0;
    Time max_wait_ns = 0;
  };

  ThreadState& Ensure(ThreadId tid, Time when);
  void CloseSegment(ThreadState& st, Time when, SegKind kind, Cause cause, NodeId node,
                    int aux = 0, ThreadId other = 0, Time wake_time = 0);
  // Resolves the armed cause markers for a block that ends at `when`.
  void CloseBlocked(ThreadState& st, ThreadId tid, Time when, NodeId node, ThreadId waker,
                    Time wake_time);
  int ObjectId(const void* obj);
  // Index of the segment containing t (start < t <= end), or the last
  // segment before t (gap), or -1 if t is at/before the first segment.
  int SegmentBefore(const ThreadState& st, Time t) const;

  std::map<ThreadId, ThreadState> threads_;
  std::map<const void*, int> obj_ids_;
  std::vector<ObjectAgg> objects_;      // by dense id
  std::map<int, LockAgg> locks_;        // by lock id
  std::map<uint64_t, ThreadId> rpc_requester_;  // rpc id -> blocked thread
  Time last_time_ = 0;
  int64_t exit_counter_ = 0;
};

}  // namespace prof

#endif  // AMBER_SRC_PROF_PROFILER_H_
