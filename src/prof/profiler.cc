#include "src/prof/profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace prof {
namespace {

// Minimal JSON string escaping (labels are runtime-generated, but be safe).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

std::string NodeCat(const char* prefix, NodeId n) {
  return std::string(prefix) + std::to_string(n);
}

// How many cursor-preserving walk steps (thread jumps at one timestamp) are
// tolerated before the walk forces in-place attribution. Wake chains at a
// single virtual instant are short in practice; this is a cycle guard.
constexpr int kStallLimit = 64;

}  // namespace

// --- Event recording --------------------------------------------------------------

Profiler::ThreadState& Profiler::Ensure(ThreadId tid, Time when) {
  auto [it, inserted] = threads_.try_emplace(tid);
  if (inserted) {
    it->second.name = "t" + std::to_string(tid);
    it->second.create_time = when;
    it->second.cursor = when;
  }
  return it->second;
}

void Profiler::CloseSegment(ThreadState& st, Time when, SegKind kind, Cause cause, NodeId node,
                            int aux, ThreadId other, Time wake_time) {
  if (when <= st.cursor) {
    // Zero-length (or defensively, out-of-order) interval: nothing to tile.
    st.cursor = std::max(st.cursor, when);
    return;
  }
  Segment s;
  s.start = st.cursor;
  s.end = when;
  s.kind = kind;
  s.cause = cause;
  s.node = node;
  s.aux = aux;
  s.other = other;
  s.wake_time = wake_time;
  if (kind == SegKind::kBlocked) {
    st.last_blocked = static_cast<int>(st.segs.size());
  }
  st.segs.push_back(s);
  st.cursor = when;
}

void Profiler::CloseBlocked(ThreadState& st, ThreadId tid, Time when, NodeId node, ThreadId waker,
                            Time wake_time) {
  // Resolve the wait's cause. Priority: explicit fiber-context markers first
  // (they know *why* the thread blocked), then the waker's identity, then
  // the network default.
  Cause cause = Cause::kNet;
  int aux = 0;
  ThreadId other = 0;
  Time wt = 0;
  if (st.pending_join != 0) {
    cause = Cause::kJoin;
    other = st.pending_join;
    wt = wake_time;
    st.pending_join = 0;
  } else if (st.pending_lock >= 0) {
    cause = Cause::kLock;
    aux = st.pending_lock;  // cleared by OnLockAcquired
  } else if (st.pending_migrate) {
    cause = Cause::kMigration;
    st.pending_migrate = false;
  } else if (st.pending_backoff) {
    cause = Cause::kFault;
    st.pending_backoff = false;
  } else if (st.rpc_armed) {
    cause = Cause::kRpc;
    aux = st.rpc_dst;
    if (st.rpc_replied) {
      // Roundtrip complete; a timeout wake keeps the marker armed for the
      // retry that follows (OnRpcRetry then reclassifies this wait).
      st.rpc_armed = false;
      st.rpc_replied = false;
    }
  } else if (waker != 0 && waker != tid) {
    cause = Cause::kWake;
    other = waker;
    wt = wake_time;
  }
  // Inside a recovery episode every rpc/net wait is the recovery's cost —
  // the probes and restores themselves — not ordinary service time. The
  // marker bookkeeping above still ran, so nothing is left stale.
  if (st.in_recovery && (cause == Cause::kRpc || cause == Cause::kNet)) {
    cause = Cause::kRecovery;
    aux = 0;
  }
  CloseSegment(st, when, SegKind::kBlocked, cause, node, aux, other, wt);
}

int Profiler::ObjectId(const void* obj) {
  const auto [it, inserted] = obj_ids_.try_emplace(obj, static_cast<int>(obj_ids_.size()));
  if (inserted) {
    objects_.emplace_back();
  }
  return it->second;
}

void Profiler::OnThreadCreate(Time when, NodeId node, ThreadId thread, const std::string& name,
                              ThreadId parent) {
  last_time_ = std::max(last_time_, when);
  ThreadState& st = Ensure(thread, when);
  st.name = name;
  st.parent = parent;
  st.node = node;
}

void Profiler::OnThreadDispatch(Time when, NodeId node, ThreadId thread, Duration queue_wait) {
  (void)queue_wait;  // the queued segment [cursor, when] already covers it
  last_time_ = std::max(last_time_, when);
  ThreadState& st = Ensure(thread, when);
  CloseSegment(st, when, SegKind::kQueued, Cause::kNone, node);
  st.status = Status::kRunning;
  st.node = node;
}

void Profiler::OnThreadBlock(Time when, NodeId node, ThreadId thread) {
  last_time_ = std::max(last_time_, when);
  ThreadState& st = Ensure(thread, when);
  CloseSegment(st, when, SegKind::kRunning, Cause::kNone, node);
  st.status = Status::kBlocked;
  st.node = node;
}

void Profiler::OnThreadUnblock(Time when, NodeId node, ThreadId thread, ThreadId waker,
                               Time wake_time) {
  last_time_ = std::max(last_time_, when);
  ThreadState& st = Ensure(thread, when);
  CloseBlocked(st, thread, when, node, waker, wake_time);
  st.status = Status::kReady;
  st.node = node;
}

void Profiler::OnThreadPreempt(Time when, NodeId node, ThreadId thread) {
  last_time_ = std::max(last_time_, when);
  ThreadState& st = Ensure(thread, when);
  CloseSegment(st, when, SegKind::kRunning, Cause::kNone, node);
  st.status = Status::kReady;
}

void Profiler::OnThreadExit(Time when, NodeId node, ThreadId thread) {
  last_time_ = std::max(last_time_, when);
  ThreadState& st = Ensure(thread, when);
  CloseSegment(st, when, SegKind::kRunning, Cause::kNone, node);
  st.status = Status::kExited;
  st.exit_time = when;
  st.exit_seq = exit_counter_++;
}

void Profiler::OnThreadJoin(Time when, NodeId node, ThreadId thread, ThreadId target) {
  (void)node;
  ThreadState& st = Ensure(thread, when);
  st.pending_join = target;
}

void Profiler::OnThreadMigrate(Time when, NodeId src, NodeId dst, ThreadId thread,
                               int64_t bytes) {
  (void)bytes;
  last_time_ = std::max(last_time_, when);
  ThreadState& st = Ensure(thread, when);
  if (st.node == dst && st.last_blocked >= 0) {
    // Reliable-mode travel announces the migration *after* arrival (the
    // thread already runs on dst): the wait it just finished was the
    // transit. Failed attempts were already reclassified by OnRpcRetry.
    Segment& seg = st.segs[st.last_blocked];
    if (seg.cause == Cause::kNet) {
      seg.cause = Cause::kMigration;
    }
  } else {
    // Lossless mode announces before departure (still running on src): the
    // *next* blocked interval is the transit.
    st.pending_migrate = true;
  }
}

void Profiler::OnInvokeEnter(Time when, NodeId node, ThreadId thread, const void* obj,
                             const std::string& object, bool remote, NodeId origin,
                             Duration entry_overhead) {
  last_time_ = std::max(last_time_, when);
  const int id = ObjectId(obj);
  ObjectAgg& agg = objects_[id];
  agg.label = object;
  agg.home = node;
  ++agg.invocations;
  ++agg.calls_by_origin[origin];
  if (remote) {
    ++agg.remote_invocations;
    agg.overhead_by_origin[origin] += entry_overhead;
  }
  ThreadState& st = Ensure(thread, when);
  st.frames.push_back(ThreadState::Frame{id, origin, remote});
}

void Profiler::OnInvokeExit(Time when, NodeId node, ThreadId thread, Duration span, bool remote,
                            Duration exit_overhead) {
  (void)node;
  (void)span;
  (void)remote;
  last_time_ = std::max(last_time_, when);
  ThreadState& st = Ensure(thread, when);
  if (st.frames.empty()) {
    return;  // enter predates attachment
  }
  const ThreadState::Frame f = st.frames.back();
  st.frames.pop_back();
  if (f.remote) {
    objects_[f.obj].overhead_by_origin[f.origin] += exit_overhead;
  }
}

void Profiler::OnLockBlocked(Time when, NodeId node, ThreadId thread, int lock) {
  (void)node;
  ThreadState& st = Ensure(thread, when);
  st.pending_lock = lock;
}

void Profiler::OnLockAcquired(Time when, NodeId node, ThreadId thread, int lock, Duration wait) {
  (void)node;
  last_time_ = std::max(last_time_, when);
  ThreadState& st = Ensure(thread, when);
  st.pending_lock = -1;
  LockAgg& l = locks_[lock];
  ++l.acquisitions;
  l.wait_ns += wait;
  l.max_wait_ns = std::max(l.max_wait_ns, wait);
}

void Profiler::OnLockReleased(Time when, NodeId node, ThreadId thread, int lock, Duration held) {
  (void)node;
  (void)thread;
  last_time_ = std::max(last_time_, when);
  locks_[lock].hold_ns += held;
}

void Profiler::OnRpcRequest(Time depart, NodeId src, NodeId dst, int64_t bytes, uint64_t id,
                            ThreadId requester) {
  (void)src;
  (void)bytes;
  last_time_ = std::max(last_time_, depart);
  ThreadState& st = Ensure(requester, depart);
  st.rpc_armed = true;
  st.rpc_replied = false;
  st.rpc_dst = dst;
  rpc_requester_[id] = requester;
}

void Profiler::OnRpcResponse(Time when, Time reply_arrive, NodeId src, NodeId dst, int64_t bytes,
                             uint64_t id) {
  (void)src;
  (void)dst;
  (void)bytes;
  last_time_ = std::max(last_time_, std::max(when, reply_arrive));
  const auto it = rpc_requester_.find(id);
  if (it == rpc_requester_.end()) {
    return;
  }
  const auto tit = threads_.find(it->second);
  if (tit != threads_.end() && tit->second.rpc_armed) {
    tit->second.rpc_replied = true;
  }
  rpc_requester_.erase(it);
}

void Profiler::OnRpcRetry(Time when, NodeId src, NodeId dst, uint64_t id, int attempt,
                          ThreadId requester) {
  (void)src;
  (void)dst;
  (void)id;
  (void)attempt;
  last_time_ = std::max(last_time_, when);
  ThreadState& st = Ensure(requester, when);
  if (st.last_blocked >= 0) {
    // The wait that just ended was a timeout, not a service: fault-induced.
    Segment& seg = st.segs[st.last_blocked];
    if (seg.cause == Cause::kRpc || seg.cause == Cause::kNet) {
      seg.cause = Cause::kFault;
    }
  }
}

void Profiler::OnRpcTimeout(Time when, NodeId src, NodeId dst, uint64_t id, int attempts,
                            ThreadId requester) {
  (void)src;
  (void)dst;
  (void)id;
  (void)attempts;
  last_time_ = std::max(last_time_, when);
  ThreadState& st = Ensure(requester, when);
  if (st.last_blocked >= 0) {
    Segment& seg = st.segs[st.last_blocked];
    if (seg.cause == Cause::kRpc || seg.cause == Cause::kNet) {
      seg.cause = Cause::kFault;
    }
  }
  st.rpc_armed = false;
  st.rpc_replied = false;
}

void Profiler::OnFailureBackoff(Time when, NodeId node, ThreadId thread, Duration backoff) {
  (void)node;
  (void)backoff;
  ThreadState& st = Ensure(thread, when);
  st.pending_backoff = true;
}

void Profiler::OnRecoveryStart(Time when, NodeId node, ThreadId thread, const void* obj) {
  (void)node;
  (void)obj;
  last_time_ = std::max(last_time_, when);
  Ensure(thread, when).in_recovery = true;
}

void Profiler::OnRecoveryEnd(Time when, NodeId node, ThreadId thread, const void* obj, bool ok) {
  (void)node;
  (void)obj;
  (void)ok;
  last_time_ = std::max(last_time_, when);
  Ensure(thread, when).in_recovery = false;
}

void Profiler::OnObjectMove(Time when, const void* obj, NodeId src, NodeId dst, int64_t bytes) {
  (void)src;
  (void)bytes;
  last_time_ = std::max(last_time_, when);
  const int id = ObjectId(obj);
  ++objects_[id].moves;
  objects_[id].home = dst;
}

void Profiler::OnMessage(Time depart, Time arrive, NodeId src, NodeId dst, int64_t bytes) {
  (void)depart;
  (void)src;
  (void)dst;
  (void)bytes;
  last_time_ = std::max(last_time_, arrive);
}

// --- Extraction --------------------------------------------------------------------

int Profiler::SegmentBefore(const ThreadState& st, Time t) const {
  // Last segment with start < t (binary search over the sorted tiling).
  int lo = 0;
  int hi = static_cast<int>(st.segs.size());
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (st.segs[mid].start >= t) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo - 1;
}

ProfileReport Profiler::Finalize() {
  ProfileReport r;
  r.total_ns = last_time_;

  // Close segments still open at the horizon (threads that never exited).
  for (auto& [tid, st] : threads_) {
    if (st.status == Status::kExited) {
      continue;
    }
    switch (st.status) {
      case Status::kRunning:
        CloseSegment(st, last_time_, SegKind::kRunning, Cause::kNone, st.node);
        break;
      case Status::kBlocked:
        CloseBlocked(st, tid, last_time_, st.node, /*waker=*/0, /*wake_time=*/0);
        break;
      default:
        CloseSegment(st, last_time_, SegKind::kQueued, Cause::kNone, st.node);
        break;
    }
  }

  // Aggregates.
  for (size_t i = 0; i < objects_.size(); ++i) {
    const ObjectAgg& a = objects_[i];
    ObjectProfile o;
    o.id = static_cast<int>(i);
    o.label = a.label.empty() ? "obj-" + std::to_string(i) : a.label;
    o.home = a.home;
    o.moves = a.moves;
    o.invocations = a.invocations;
    o.remote_invocations = a.remote_invocations;
    o.calls_by_origin = a.calls_by_origin;
    o.overhead_by_origin = a.overhead_by_origin;
    r.objects.push_back(std::move(o));
  }
  for (const auto& [id, l] : locks_) {
    LockProfile lp;
    lp.id = id;
    lp.acquisitions = l.acquisitions;
    lp.wait_ns = l.wait_ns;
    lp.hold_ns = l.hold_ns;
    lp.max_wait_ns = l.max_wait_ns;
    r.locks.push_back(std::move(lp));
  }

  // Choose the walk's starting point: the thread whose exit is latest (tie:
  // latest in exit order — deterministic).
  ThreadId start = 0;
  Time best_exit = -1;
  int64_t best_seq = -1;
  for (const auto& [tid, st] : threads_) {
    if (st.exit_seq < 0) {
      continue;
    }
    if (st.exit_time > best_exit || (st.exit_time == best_exit && st.exit_seq > best_seq)) {
      best_exit = st.exit_time;
      best_seq = st.exit_seq;
      start = tid;
    }
  }
  if (start == 0) {
    Time best = -1;
    for (const auto& [tid, st] : threads_) {
      if (st.cursor > best) {
        best = st.cursor;
        start = tid;
      }
    }
  }
  if (start == 0 || r.total_ns == 0) {
    return r;
  }

  // Backward walk: attribute (from, cursor] stretches until time zero.
  std::vector<PathStep> steps;  // collected end -> start, reversed below
  std::map<int, Time> lock_path;
  Time cursor = r.total_ns;
  ThreadId t = start;
  Time last_cursor = cursor;
  int stall = 0;
  auto attribute = [&](const std::string& cat, Time from) {
    if (from >= cursor) {
      return;
    }
    const Time len = cursor - from;
    r.breakdown[cat] += len;
    if (!steps.empty() && steps.back().category == cat) {
      steps.back().ns += len;
    } else {
      steps.push_back(PathStep{cat, len});
    }
    cursor = from;
  };

  while (cursor > 0) {
    if (cursor < last_cursor) {
      last_cursor = cursor;
      stall = 0;
    } else {
      ++stall;
    }
    const bool forced = stall > kStallLimit;  // cycle guard: stop jumping

    const auto it = threads_.find(t);
    if (it == threads_.end()) {
      attribute("rpc.net", 0);
      break;
    }
    const ThreadState& st = it->second;
    const int si = SegmentBefore(st, cursor);
    if (si < 0) {
      // At or before this thread's creation: follow the creation edge (the
      // parent was running CreateThread at this instant).
      if (st.parent != 0 && threads_.count(st.parent) != 0 && !forced) {
        t = st.parent;
        continue;
      }
      attribute("rpc.net", 0);
      break;
    }
    const Segment& seg = st.segs[si];
    if (seg.end < cursor) {
      // Gap past the thread's last activity (post-exit event drain).
      attribute("rpc.net", seg.end);
      continue;
    }
    switch (seg.kind) {
      case SegKind::kQueued:
        attribute(NodeCat("queue.node", seg.node), seg.start);
        break;
      case SegKind::kRunning:
        attribute(NodeCat("compute.node", seg.node), seg.start);
        break;
      case SegKind::kBlocked:
        switch (seg.cause) {
          case Cause::kLock:
            lock_path[seg.aux] += cursor - seg.start;
            attribute("lock." + std::to_string(seg.aux), seg.start);
            break;
          case Cause::kMigration:
            attribute("migration", seg.start);
            break;
          case Cause::kFault:
            attribute("fault", seg.start);
            break;
          case Cause::kRecovery:
            attribute("recovery", seg.start);
            break;
          case Cause::kRpc:
            attribute(NodeCat("rpc.node", seg.aux), seg.start);
            break;
          case Cause::kJoin:
          case Cause::kWake: {
            // Jump to the thread that caused the wake, at the time it called
            // Wake; the remainder (wake -> unblock delivery) is scheduler
            // latency on the sleeper's node.
            const auto wit = threads_.find(seg.other);
            const Time jump = std::max(seg.start, std::min(seg.wake_time, cursor));
            const bool can_jump = !forced && jump > 0 && wit != threads_.end() &&
                                  SegmentBefore(wit->second, jump) >= 0;
            if (can_jump) {
              attribute(NodeCat("queue.node", seg.node), jump);
              t = seg.other;
            } else {
              attribute(NodeCat("queue.node", seg.node), seg.start);
            }
            break;
          }
          default:
            attribute("rpc.net", seg.start);
            break;
        }
        break;
    }
  }
  std::reverse(steps.begin(), steps.end());
  r.critical_path = std::move(steps);
  for (LockProfile& lp : r.locks) {
    const auto lit = lock_path.find(lp.id);
    lp.critical_path_ns = lit != lock_path.end() ? lit->second : 0;
  }

  // --- Placement advice -------------------------------------------------------

  // Per-thread overhead savings only shorten the *run* to the extent the run
  // actually waits on placement overhead: scale raw savings by the measured
  // migration + RPC share of the critical path. A run that is 95% compute
  // cannot be made much faster by moving objects, however much total thread
  // time the moves would save.
  Time path_overhead_ns = 0;
  for (const auto& [cat, ns] : r.breakdown) {
    if (cat == "migration" || cat.rfind("rpc.", 0) == 0) {
      path_overhead_ns += ns;
    }
  }

  char buf[512];
  for (const ObjectProfile& o : r.objects) {
    if (o.remote_invocations == 0) {
      continue;
    }
    Time total_overhead = 0;
    for (const auto& [n, v] : o.overhead_by_origin) {
      total_overhead += v;
    }
    if (total_overhead == 0) {
      continue;
    }
    // Heaviest remote origin (map order breaks ties toward the lowest node).
    NodeId best = o.home;
    Time best_overhead = 0;
    for (const auto& [n, v] : o.overhead_by_origin) {
      if (n != o.home && v > best_overhead) {
        best = n;
        best_overhead = v;
      }
    }
    if (best == o.home || best_overhead == 0) {
      continue;
    }
    const int percent = static_cast<int>(100 * best_overhead / total_overhead);
    if (percent < 60) {
      // No dominant origin: the traffic is symmetric (e.g. neighbour edge
      // exchange). Moving the object only relocates the overhead — that is
      // a load-balance problem, not a placement one.
      continue;
    }
    // Moving the object makes calls from `best` local and calls from the
    // current home remote; price the latter at this object's average
    // remote-call overhead.
    const Time avg_remote = total_overhead / o.remote_invocations;
    const auto hit = o.calls_by_origin.find(o.home);
    const int64_t calls_from_home = hit != o.calls_by_origin.end() ? hit->second : 0;
    const Time raw_saving = best_overhead - avg_remote * calls_from_home;
    if (raw_saving <= 0) {
      continue;
    }
    const Time saving =
        r.total_ns > 0
            ? static_cast<Time>(static_cast<__int128>(raw_saving) * path_overhead_ns /
                                r.total_ns)
            : raw_saving;
    if (saving <= 0) {
      continue;
    }
    Advice a;
    a.kind = "move";
    a.target = o.id;
    a.label = o.label;
    a.from = o.home;
    a.to = best;
    a.est_saving_ns = saving;
    std::snprintf(buf, sizeof(buf),
                  "%s lives on node %d but %d%% of remote-invocation overhead originates on "
                  "node %d; MoveTo(%d) est. saving %lld us",
                  o.label.c_str(), o.home, percent, best, best,
                  static_cast<long long>(saving / 1000));
    a.text = buf;
    r.advice.push_back(std::move(a));
  }
  for (const LockProfile& l : r.locks) {
    if (l.critical_path_ns == 0) {
      continue;
    }
    Advice a;
    a.kind = "lock";
    a.target = l.id;
    a.label = "lock " + std::to_string(l.id);
    a.est_saving_ns = l.critical_path_ns;
    std::snprintf(buf, sizeof(buf),
                  "lock %d contributes %lld us of critical-path wait (%lld acquisitions, "
                  "total wait %lld us); shorten the critical section or split the lock",
                  l.id, static_cast<long long>(l.critical_path_ns / 1000),
                  static_cast<long long>(l.acquisitions),
                  static_cast<long long>(l.wait_ns / 1000));
    a.text = buf;
    r.advice.push_back(std::move(a));
  }
  std::stable_sort(r.advice.begin(), r.advice.end(), [](const Advice& a, const Advice& b) {
    return a.est_saving_ns > b.est_saving_ns;
  });

  return r;
}

void Profiler::Reset() {
  threads_.clear();
  obj_ids_.clear();
  objects_.clear();
  locks_.clear();
  rpc_requester_.clear();
  last_time_ = 0;
  exit_counter_ = 0;
}

// --- Report rendering --------------------------------------------------------------

void ProfileReport::WriteJson(std::ostream& out) const {
  out << "{\n  \"profile\": \"" << Escape(name) << "\",\n";
  out << "  \"total_ns\": " << total_ns << ",\n";

  out << "  \"breakdown\": {";
  bool first = true;
  for (const auto& [k, v] : breakdown) {
    out << (first ? "\n" : ",\n") << "    \"" << Escape(k) << "\": " << v;
    first = false;
  }
  out << (breakdown.empty() ? "" : "\n  ") << "},\n";

  out << "  \"critical_path\": [";
  first = true;
  for (const PathStep& s : critical_path) {
    out << (first ? "\n" : ",\n") << "    {\"category\": \"" << Escape(s.category)
        << "\", \"ns\": " << s.ns << "}";
    first = false;
  }
  out << (critical_path.empty() ? "" : "\n  ") << "],\n";

  out << "  \"objects\": [";
  first = true;
  for (const ObjectProfile& o : objects) {
    out << (first ? "\n" : ",\n") << "    {\"id\": " << o.id << ", \"label\": \""
        << Escape(o.label) << "\", \"home\": " << o.home << ", \"moves\": " << o.moves
        << ", \"invocations\": " << o.invocations
        << ", \"remote_invocations\": " << o.remote_invocations;
    out << ", \"calls_by_origin\": {";
    bool f2 = true;
    for (const auto& [n, c] : o.calls_by_origin) {
      out << (f2 ? "" : ", ") << "\"" << n << "\": " << c;
      f2 = false;
    }
    out << "}, \"overhead_ns_by_origin\": {";
    f2 = true;
    for (const auto& [n, ns] : o.overhead_by_origin) {
      out << (f2 ? "" : ", ") << "\"" << n << "\": " << ns;
      f2 = false;
    }
    out << "}}";
    first = false;
  }
  out << (objects.empty() ? "" : "\n  ") << "],\n";

  out << "  \"locks\": [";
  first = true;
  for (const LockProfile& l : locks) {
    out << (first ? "\n" : ",\n") << "    {\"id\": " << l.id
        << ", \"acquisitions\": " << l.acquisitions << ", \"wait_ns\": " << l.wait_ns
        << ", \"hold_ns\": " << l.hold_ns << ", \"max_wait_ns\": " << l.max_wait_ns
        << ", \"critical_path_ns\": " << l.critical_path_ns << "}";
    first = false;
  }
  out << (locks.empty() ? "" : "\n  ") << "],\n";

  out << "  \"advice\": [";
  first = true;
  for (const Advice& a : advice) {
    out << (first ? "\n" : ",\n") << "    {\"kind\": \"" << a.kind
        << "\", \"target\": " << a.target << ", \"label\": \"" << Escape(a.label) << "\"";
    if (a.kind == "move") {
      out << ", \"from\": " << a.from << ", \"to\": " << a.to;
    }
    out << ", \"est_saving_ns\": " << a.est_saving_ns << ", \"text\": \"" << Escape(a.text)
        << "\"}";
    first = false;
  }
  out << (advice.empty() ? "" : "\n  ") << "]\n}\n";
}

void ProfileReport::WriteSummary(std::ostream& out) const {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "critical-path profile: %s\n", name.c_str());
  out << buf;
  std::snprintf(buf, sizeof(buf), "  total virtual time : %.3f ms\n",
                static_cast<double>(total_ns) / 1e6);
  out << buf;

  // Attribution table, largest share first (ties: category name).
  std::vector<std::pair<std::string, Time>> rows(breakdown.begin(), breakdown.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  Time sum = 0;
  for (const auto& [cat, ns] : rows) {
    sum += ns;
  }
  std::snprintf(buf, sizeof(buf), "  critical path      : %zu steps, %.3f ms attributed\n",
                critical_path.size(), static_cast<double>(sum) / 1e6);
  out << buf;
  for (const auto& [cat, ns] : rows) {
    const double pct =
        total_ns > 0 ? 100.0 * static_cast<double>(ns) / static_cast<double>(total_ns) : 0.0;
    std::snprintf(buf, sizeof(buf), "    %-18s %12.3f ms  %5.1f%%\n", cat.c_str(),
                  static_cast<double>(ns) / 1e6, pct);
    out << buf;
  }

  if (!locks.empty()) {
    out << "  locks:\n";
    for (const LockProfile& l : locks) {
      std::snprintf(buf, sizeof(buf),
                    "    lock %-4d %8lld acq  wait %10.3f ms (max %8.3f ms)  hold %10.3f ms"
                    "  critical-path %10.3f ms\n",
                    l.id, static_cast<long long>(l.acquisitions),
                    static_cast<double>(l.wait_ns) / 1e6, static_cast<double>(l.max_wait_ns) / 1e6,
                    static_cast<double>(l.hold_ns) / 1e6,
                    static_cast<double>(l.critical_path_ns) / 1e6);
      out << buf;
    }
  }

  if (advice.empty()) {
    out << "  advice: none (placement and locking look balanced)\n";
  } else {
    out << "  advice:\n";
    int rank = 1;
    for (const Advice& a : advice) {
      std::snprintf(buf, sizeof(buf), "    %d. [%s] %s\n", rank++, a.kind.c_str(),
                    a.text.c_str());
      out << buf;
    }
  }
}

}  // namespace prof
