// The Amber public API.
//
// Programs include this one header. The surface mirrors the paper's
// programming model (§2): object creation with New, location-independent
// invocation through Ref<T>::Call, threads with StartThread/Join, the
// mobility primitives MoveTo / Locate / Attach / Unattach / MakeImmutable,
// and the synchronization classes in sync.h.
//
// A minimal program:
//
//   class Counter : public amber::Object {
//    public:
//     int Add(int d) { return value_ += d; }
//    private:
//     int value_ = 0;
//   };
//
//   amber::Runtime::Config config;
//   config.nodes = 4;
//   config.procs_per_node = 4;
//   amber::Runtime rt(config);
//   rt.Run([] {
//     auto c = amber::New<Counter>();
//     amber::MoveTo(c, 2);              // place the data
//     int v = c.Call(&Counter::Add, 5); // thread migrates to node 2 and back
//   });

#ifndef AMBER_SRC_CORE_AMBER_H_
#define AMBER_SRC_CORE_AMBER_H_

#include <utility>

#include "src/core/object.h"
#include "src/core/ref.h"
#include "src/core/runtime.h"
#include "src/core/sync.h"
#include "src/core/thread.h"

namespace amber {

// Creates a T in the global object space on the current node and returns a
// location-independent reference. T must derive amber::Object.
template <typename T, typename... A>
Ref<T> New(A&&... args) {
  static_assert(std::is_base_of_v<Object, T>, "New<T> requires T : public amber::Object");
  Runtime& rt = Runtime::Current();
  void* mem = rt.AllocateObjectMemory(sizeof(T));
  T* obj;
  try {
    obj = new (mem) T(std::forward<A>(args)...);
  } catch (...) {
    rt.AbandonObjectMemory(mem);
    throw;
  }
  rt.FinishObjectConstruction(obj);
  return Ref<T>(obj);
}

// Creates a T and moves it to `node` — convenience for the create-then-place
// pattern the paper's SOR program uses for its section objects.
template <typename T, typename... A>
Ref<T> NewOn(NodeId node, A&&... args) {
  Ref<T> ref = New<T>(std::forward<A>(args)...);
  Runtime::Current().MoveTo(ref.object(), node);
  return ref;
}

// Destroys an object. Like any invocation, the call takes place where the
// object resides (the calling thread migrates there if necessary).
template <typename T>
void Delete(Ref<T> ref) {
  Runtime& rt = Runtime::Current();
  Object* obj = ref.object();
  rt.EnterInvocation(obj->AmberPrimary(), 0);  // migrate to the object
  rt.DeleteObject(obj);                        // destroy it here
  rt.ExitInvocation(0);                        // migrate back to the caller's frame
}

// --- Mobility (§2.3) -------------------------------------------------------

// Returns Status::kOk in fault-free runs; under fault injection an
// unreachable owner/destination is reported instead of hanging (the object
// stays consistent at its source).
template <typename T>
Status MoveTo(Ref<T> ref, NodeId node) {
  return Runtime::Current().MoveTo(ref.object(), node);
}

template <typename T>
NodeId Locate(Ref<T> ref) {
  return Runtime::Current().Locate(ref.object());
}

// Attaches `child` to `parent`: co-located now and forever after (until
// Unattach); moving the parent moves the child.
template <typename C, typename P>
void Attach(Ref<C> child, Ref<P> parent) {
  Runtime::Current().Attach(child.object(), parent.object());
}

template <typename C>
void Unattach(Ref<C> child) {
  Runtime::Current().Unattach(child.object());
}

// Declares that the object will never be modified again; from now on remote
// use replicates it instead of shipping threads to it.
template <typename T>
void MakeImmutable(Ref<T> ref) {
  Runtime::Current().MakeImmutable(ref.object());
}

// --- Crash recovery and planned shutdown (docs/FAULTS.md) --------------------

// Opts a mutable primary object into checkpoint/restore crash recovery: its
// bytes (Object::AmberSaveState) are checkpointed to a buddy node after
// every successful move and at every explicit Checkpoint call, and a crash
// of its node restores the *last checkpoint* on the buddy (a documented
// staleness window — work since the checkpoint is lost and must be
// idempotently re-run by the application). No-op cost in fault-free runs.
template <typename T>
void SetRecoverable(Ref<T> ref) {
  Runtime::Current().SetRecoverable(ref.object());
}

// Checkpoints a recoverable object at a quiescent point. Returns true once
// the checkpoint reached its buddy node; false means the transfer was lost
// (retry — a fresh buddy is elected each call if the old one is suspected).
template <typename T>
bool Checkpoint(Ref<T> ref) {
  return Runtime::Current().CheckpointObject(ref.object());
}

// Planned shutdown: evacuates every mobile primary object homed on `node`
// to the remaining live nodes (attach groups move as units; threads follow
// their objects through the §3.5 residency re-check). Returns the number of
// evacuated objects.
inline int DrainNode(NodeId node) { return Runtime::Current().DrainNode(node); }

// --- Time, placement, scheduling --------------------------------------------

// Consumes `d` of CPU time on the calling thread (application computation).
inline void Work(Duration d) { Runtime::Current().Work(d); }

// Voluntarily yields the processor to another ready thread on this node
// (the thread re-checks residency when dispatched again, §3.5).
inline void Yield() { Runtime::Current().sim().Yield(); }

// The node the calling thread is currently executing on.
inline NodeId Here() { return Runtime::Current().here(); }

inline Time Now() { return Runtime::Current().now(); }

// Parks the calling thread until virtual time `t` (no-op if already past).
// Open-loop workload drivers use this to pace deterministic arrival
// processes independently of how long each request takes to serve.
inline void SleepUntil(Time t) { Runtime::Current().sim().SleepUntil(t); }
inline int Nodes() { return Runtime::Current().nodes(); }
inline int ProcsPerNode() { return Runtime::Current().procs_per_node(); }

// Installs a custom scheduling policy on a node (§2.1).
inline void SetScheduler(NodeId node, std::unique_ptr<sim::RunQueue> queue) {
  Runtime::Current().SetScheduler(node, std::move(queue));
}

}  // namespace amber

#endif  // AMBER_SRC_CORE_AMBER_H_
