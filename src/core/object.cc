#include "src/core/object.h"

#include "src/core/runtime.h"

namespace amber {

Object::Object() {
  header_.magic = ObjectHeader::kMagic;
  Runtime* rt = Runtime::CurrentOrNull();
  if (rt != nullptr) {
    rt->OnObjectConstruct(this);
  } else {
    // Constructed outside any runtime (host-side tests): behaves like a
    // stack-local object — always co-resident, never checked.
    header_.flags |= kObjStackLocal;
  }
}

Object::~Object() {
  Runtime* rt = Runtime::CurrentOrNull();
  if (rt != nullptr) {
    rt->OnObjectDestruct(this);
  }
  header_.magic = 0;
}

}  // namespace amber
