#include "src/core/object.h"

#include <cstring>

#include "src/base/panic.h"
#include "src/core/runtime.h"

namespace amber {

void Object::AmberSaveState(std::vector<uint8_t>* out) const {
  // Raw copy of the derived representation (everything in the segment past
  // the Object base, which holds the descriptor). header_.size is the
  // segment size recorded at New<T>; host-constructed objects have none.
  out->clear();
  if (header_.size > sizeof(Object)) {
    const auto* base = reinterpret_cast<const uint8_t*>(this);
    out->assign(base + sizeof(Object), base + header_.size);
  }
}

void Object::AmberLoadState(const uint8_t* data, size_t size) {
  if (size > 0) {
    AMBER_CHECK(size == header_.size - sizeof(Object))
        << "checkpoint size mismatch: saved " << size << " bytes into a segment of "
        << header_.size;
    std::memcpy(reinterpret_cast<uint8_t*>(this) + sizeof(Object), data, size);
  }
}

Object::Object() {
  header_.magic = ObjectHeader::kMagic;
  Runtime* rt = Runtime::CurrentOrNull();
  if (rt != nullptr) {
    rt->OnObjectConstruct(this);
  } else {
    // Constructed outside any runtime (host-side tests): behaves like a
    // stack-local object — always co-resident, never checked.
    header_.flags |= kObjStackLocal;
  }
}

Object::~Object() {
  Runtime* rt = Runtime::CurrentOrNull();
  if (rt != nullptr) {
    rt->OnObjectDestruct(this);
  }
  header_.magic = 0;
}

}  // namespace amber
