// Typed outcomes for failure-aware runtime operations.
//
// The original Amber assumed a reliable LAN and crash-free nodes; every
// operation either succeeded or the whole machine was wedged. Under fault
// injection (src/fault) that assumption breaks, so operations that can
// encounter an unreachable node report a Status instead of hanging:
//   * kTimeout     — the retransmission budget was exhausted talking to a
//                    peer (lossy link or transient partition);
//   * kUnreachable — the target node is known-dead or partitioned away and
//                    the operation could not complete.
// In fault-free runs every operation returns kOk and no code path changes.

#ifndef AMBER_SRC_CORE_STATUS_H_
#define AMBER_SRC_CORE_STATUS_H_

#include <cstdint>

namespace amber {

enum class Status : uint8_t { kOk, kTimeout, kUnreachable };

inline const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kTimeout:
      return "timeout";
    case Status::kUnreachable:
      return "unreachable";
  }
  return "?";
}

inline bool ok(Status s) { return s == Status::kOk; }

}  // namespace amber

#endif  // AMBER_SRC_CORE_STATUS_H_
