#include "src/core/sync.h"

#include "src/base/panic.h"
#include "src/core/thread.h"

namespace amber {
namespace {

sim::Kernel& K() { return Runtime::Current().sim(); }

}  // namespace

// --- SpinLock -----------------------------------------------------------------

void SpinLock::Acquire() {
  sim::Kernel& k = K();
  k.Charge(k.cost().spin_op);
  k.Sync();
  Runtime& rt = Runtime::Current();
  ThreadObject* self = rt.current_thread();
  if (holder_ == nullptr) {
    holder_ = self;
    rt.NotifyLockHeldSince(this, k.Now(), self);
    return;
  }
  AMBER_CHECK(holder_ != self) << "SpinLock is not recursive";
  const Time blocked_at = k.Now();
  if (rt.instrumented()) {
    rt.NotifyLockBlocked(this);
  }
  // Spin: keep the processor, wait for handoff. The processor stays busy
  // for the whole wait — the defining cost/latency tradeoff of a
  // non-relinquishing lock.
  spinners_.push_back(k.current());
  k.SpinWait();
  AMBER_DCHECK(holder_ == self);  // FIFO handoff installed us
  if (rt.instrumented()) {
    rt.NotifyLockAcquired(this, k.Now() - blocked_at);
  }
}

bool SpinLock::TryAcquire() {
  sim::Kernel& k = K();
  k.Charge(k.cost().spin_op);
  k.Sync();
  if (holder_ != nullptr) {
    return false;
  }
  Runtime& rt = Runtime::Current();
  holder_ = rt.current_thread();
  rt.NotifyLockHeldSince(this, k.Now(), holder_);
  return true;
}

void SpinLock::Release() {
  sim::Kernel& k = K();
  k.Charge(k.cost().spin_op);
  k.Sync();
  Runtime& rt = Runtime::Current();
  AMBER_CHECK(holder_ == rt.current_thread()) << "SpinLock released by non-holder";
  rt.NotifyLockReleased(this);
  if (spinners_.empty()) {
    holder_ = nullptr;
    return;
  }
  sim::Fiber* next = spinners_.front();
  spinners_.pop_front();
  holder_ = static_cast<ThreadObject*>(next->user_data);
  const Time resume = k.Now() + k.cost().spin_op;
  rt.NotifyLockHeldSince(this, resume, holder_);  // next holder's hold starts at handoff
  k.SpinResume(next, resume);
}

// --- Lock ----------------------------------------------------------------------

void Lock::Acquire() {
  sim::Kernel& k = K();
  k.Charge(k.cost().lock_op);
  k.Sync();
  Runtime& rt = Runtime::Current();
  ThreadObject* self = rt.current_thread();
  if (holder_ == nullptr) {
    holder_ = self;
    rt.NotifyLockHeldSince(this, k.Now(), self);
    return;
  }
  AMBER_CHECK(holder_ != self) << "Lock is not recursive";
  const Time blocked_at = k.Now();
  if (rt.instrumented()) {
    rt.NotifyLockBlocked(this);
  }
  waiters_.push_back(k.current());
  k.Block();
  // Woken by a FIFO handoff that already installed us as holder.
  AMBER_DCHECK(holder_ == self);
  if (rt.instrumented()) {
    rt.NotifyLockAcquired(this, k.Now() - blocked_at);
  }
}

bool Lock::TryAcquire() {
  sim::Kernel& k = K();
  k.Charge(k.cost().lock_op);
  k.Sync();
  if (holder_ != nullptr) {
    return false;
  }
  Runtime& rt = Runtime::Current();
  holder_ = rt.current_thread();
  rt.NotifyLockHeldSince(this, k.Now(), holder_);
  return true;
}

bool Lock::HeldByCaller() const {
  return holder_ != nullptr && holder_ == Runtime::Current().current_thread();
}

void Lock::ReleaseInternal() {
  sim::Kernel& k = K();
  Runtime& rt = Runtime::Current();
  rt.NotifyLockReleased(this);
  if (waiters_.empty()) {
    holder_ = nullptr;
    return;
  }
  sim::Fiber* next = waiters_.front();
  waiters_.pop_front();
  holder_ = static_cast<ThreadObject*>(next->user_data);
  const Time resume = k.Now() + k.cost().lock_op;
  rt.NotifyLockHeldSince(this, resume, holder_);  // next holder's hold starts at handoff
  k.Wake(next, resume);
}

void Lock::Release() {
  sim::Kernel& k = K();
  k.Charge(k.cost().lock_op);
  k.Sync();
  AMBER_CHECK(holder_ == Runtime::Current().current_thread()) << "Lock released by non-holder";
  ReleaseInternal();
}

// --- Condition -------------------------------------------------------------------

void Condition::Wait(Lock& lock) {
  sim::Kernel& k = K();
  k.Charge(k.cost().lock_op);
  k.Sync();
  AMBER_CHECK(lock.HeldByCaller()) << "Condition::Wait without holding the lock";
  waiters_.push_back(k.current());
  lock.ReleaseInternal();  // atomic with the wait: we are at an ordered point
  k.Block();
  // Signalled: re-acquire before returning (Mesa semantics — re-check your
  // predicate in a loop).
  lock.Acquire();
}

void Condition::Signal() {
  sim::Kernel& k = K();
  k.Charge(k.cost().lock_op);
  k.Sync();
  if (waiters_.empty()) {
    return;
  }
  sim::Fiber* f = waiters_.front();
  waiters_.pop_front();
  Runtime& rt = Runtime::Current();
  if (rt.instrumented()) {
    rt.NotifyConditionWake(this, 1);
  }
  k.Wake(f, k.Now() + k.cost().lock_op);
}

void Condition::Broadcast() {
  sim::Kernel& k = K();
  k.Charge(k.cost().lock_op);
  k.Sync();
  if (waiters_.empty()) {
    return;
  }
  Runtime& rt = Runtime::Current();
  if (rt.instrumented()) {
    rt.NotifyConditionWake(this, static_cast<int>(waiters_.size()));
  }
  for (sim::Fiber* f : waiters_) {
    k.Wake(f, k.Now() + k.cost().lock_op);
  }
  waiters_.clear();
}

// --- Barrier ----------------------------------------------------------------------

Barrier::Barrier(int parties) : parties_(parties) {
  AMBER_CHECK(parties >= 1) << "barrier needs at least one party";
}

int64_t Barrier::Wait() {
  sim::Kernel& k = K();
  k.Charge(k.cost().barrier_op);
  k.Sync();
  Runtime& rt = Runtime::Current();
  if (rt.instrumented()) {
    rt.NotifyBarrierWait();
  }
  const int64_t my_phase = phase_;
  if (++arrived_ < parties_) {
    waiting_.push_back(k.current());
    k.Block();
    AMBER_DCHECK(phase_ > my_phase);
  } else {
    // Last arrival releases everyone and advances the phase.
    arrived_ = 0;
    ++phase_;
    for (sim::Fiber* f : waiting_) {
      k.Wake(f, k.Now() + k.cost().barrier_op);
    }
    waiting_.clear();
  }
  return my_phase;
}

}  // namespace amber
