// Synchronization objects (§2.2).
//
// "The system supports relinquishing and non-relinquishing locks, barrier
// synchronization, monitors and condition variables."
//
// All of these are ordinary Amber objects: they can be member objects (and
// then move with their container — the §3.6 fast-inline-lock pattern), they
// can be moved and attached, and they can be invoked remotely through
// Ref::Call, in which case the calling thread migrates to the lock's node —
// the function-shipping answer to lock-page thrashing (§4.1).
//
// Two usage styles, both supported:
//   * co-resident (member object): call methods directly — the §3.6 inline
//     optimization. The methods still execute at ordered points.
//   * distributed: invoke through Ref<Lock>::Call(&Lock::Acquire) etc.

#ifndef AMBER_SRC_CORE_SYNC_H_
#define AMBER_SRC_CORE_SYNC_H_

#include <deque>
#include <vector>

#include "src/core/object.h"
#include "src/core/runtime.h"

namespace amber {

class ThreadObject;

// Non-relinquishing lock: a waiting thread spins, keeping its processor
// busy until the lock is handed over. Minimal latency, zero context
// switches — for short critical sections among co-resident threads.
class SpinLock : public Object {
 public:
  SpinLock() = default;

  void Acquire();
  bool TryAcquire();
  void Release();
  bool IsHeld() const { return holder_ != nullptr; }

 private:
  ThreadObject* holder_ = nullptr;
  std::deque<sim::Fiber*> spinners_;
};

// Relinquishing lock: a waiting thread blocks and releases its processor.
// FIFO handoff (no barging), so acquisition order is deterministic.
class Lock : public Object {
 public:
  Lock() = default;

  void Acquire();
  bool TryAcquire();
  void Release();
  bool IsHeld() const { return holder_ != nullptr; }
  bool HeldByCaller() const;

 private:
  friend class Condition;
  void ReleaseInternal();  // handoff without the Sync (caller is ordered)

  ThreadObject* holder_ = nullptr;
  std::deque<sim::Fiber*> waiters_;
};

// Condition variable, used with a Lock the caller holds.
class Condition : public Object {
 public:
  Condition() = default;

  // Atomically releases `lock` and blocks; re-acquires before returning.
  void Wait(Lock& lock);
  void Signal();
  void Broadcast();
  int waiter_count() const { return static_cast<int>(waiters_.size()); }

 private:
  std::deque<sim::Fiber*> waiters_;
};

// RAII monitor-entry guard; Monitor below is the subclassing convenience.
class MonitorGuard {
 public:
  explicit MonitorGuard(Lock& lock) : lock_(lock) { lock_.Acquire(); }
  ~MonitorGuard() { lock_.Release(); }
  MonitorGuard(const MonitorGuard&) = delete;
  MonitorGuard& operator=(const MonitorGuard&) = delete;

 private:
  Lock& lock_;
};

// Base class for monitored objects: derive, and wrap each operation body in
// `MonitorGuard g(monitor_lock());`. The lock is a member object, so it is
// always co-resident with the monitor (§3.6).
class Monitor : public Object {
 public:
  Lock& monitor_lock() { return lock_; }

 protected:
  Monitor() = default;

 private:
  Lock lock_;
};

// Reusable N-party barrier. Wait returns the completed phase number.
class Barrier : public Object {
 public:
  explicit Barrier(int parties);

  int64_t Wait();
  int parties() const { return parties_; }
  int64_t phase() const { return phase_; }

 private:
  int parties_;
  int arrived_ = 0;
  int64_t phase_ = 0;
  std::vector<sim::Fiber*> waiting_;
};

}  // namespace amber

#endif  // AMBER_SRC_CORE_SYNC_H_
