// amber::Runtime — one simulated Amber machine: N multiprocessor nodes, the
// global object space, per-node descriptor tables and allocators, and the
// simulated interconnect.
//
// A Runtime is the unit of an experiment: construct one with a Config,
// call Run(main) — main executes as the program's initial thread on node 0 —
// and read the final virtual time and traffic statistics afterwards.
//
// The free-function programming surface (amber::New, Ref<T>::Call,
// amber::MoveTo, StartThread, ...) lives in amber.h / ref.h / thread.h and
// funnels into the protocol methods here.

#ifndef AMBER_SRC_CORE_RUNTIME_H_
#define AMBER_SRC_CORE_RUNTIME_H_

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/time.h"
#include "src/core/status.h"
#include "src/fault/fault.h"
#include "src/fault/membership.h"
#include "src/kernel/descriptor_table.h"
#include "src/mem/address_space.h"
#include "src/mem/region_server.h"
#include "src/mem/segment_alloc.h"
#include "src/net/network.h"
#include "src/rpc/transport.h"
#include "src/sim/kernel.h"

namespace metrics {
class Registry;
}

namespace amber {

class Object;
class ThreadObject;

// Stable identity of a thread on the event bus: the underlying fiber's
// dense creation-order id (1, 2, 3, ... — deterministic across identical
// runs). Events carry this instead of the thread's name so the hot path is
// allocation-free; OnThreadCreate delivers the id→name binding exactly once
// and sinks keep their own side table (see trace::Tracer::ThreadName).
using ThreadId = uint64_t;

// Observer of the runtime's events — the instrumentation bus. Callbacks run
// at ordered points with virtual timestamps; deterministic runs produce the
// identical event sequence. Observers must not call back into the runtime.
//
// Four event families:
//   * distribution — migrations, moves, replicas, network messages;
//   * scheduler    — thread lifecycle, run-queue wait, blocking, preemption
//                    (bridged from sim::Kernel);
//   * invocation   — Enter/Exit *span* pairs around every Ref::Call / Join,
//                    labelled local or remote;
//   * contention   — lock wait/hold and condition wakeups (from core/sync),
//                    request/response roundtrips (from rpc::Transport).
// Every emission site is guarded, so an unattached runtime pays nothing.
//
// Fan-out: several observers may be attached at once (AddObserver); each
// event is delivered to all of them in attachment order, and removing one
// mid-run does not change what the others see (tested in observer_test).
class RuntimeObserver {
 public:
  virtual ~RuntimeObserver() = default;

  // --- Distribution events ---------------------------------------------------
  virtual void OnThreadMigrate(Time when, NodeId src, NodeId dst, ThreadId thread,
                               int64_t bytes) {}
  virtual void OnObjectMove(Time when, const void* obj, NodeId src, NodeId dst, int64_t bytes) {}
  virtual void OnReplicaInstall(Time when, const void* obj, NodeId node) {}
  virtual void OnMessage(Time depart, Time arrive, NodeId src, NodeId dst, int64_t bytes) {}

  // --- Scheduler events ------------------------------------------------------
  // The only event that carries the thread's name; `parent` is the creating
  // thread (0 for the initial thread, which host code spawns).
  virtual void OnThreadCreate(Time when, NodeId node, ThreadId thread, const std::string& name,
                              ThreadId parent) {}
  // `queue_wait` is the time spent ready on the run queue before dispatch.
  virtual void OnThreadDispatch(Time when, NodeId node, ThreadId thread, Duration queue_wait) {}
  virtual void OnThreadBlock(Time when, NodeId node, ThreadId thread) {}
  // `waker` is the thread whose Wake made this one runnable (0 when the wake
  // came from event context: a timer, a message delivery, or a migration
  // arrival) and `wake_time` the waker's clock at that call — together they
  // are the causal edge the critical-path profiler walks.
  virtual void OnThreadUnblock(Time when, NodeId node, ThreadId thread, ThreadId waker,
                               Time wake_time) {}
  virtual void OnThreadPreempt(Time when, NodeId node, ThreadId thread) {}
  virtual void OnThreadExit(Time when, NodeId node, ThreadId thread) {}
  // `thread` is about to block until `target` finishes (emitted only when
  // the join actually waits).
  virtual void OnThreadJoin(Time when, NodeId node, ThreadId thread, ThreadId target) {}

  // --- Invocation spans ------------------------------------------------------
  // Emitted once the thread is co-resident with the object (user code is
  // about to run); `remote` is whether reaching the object required
  // migration. Enter/Exit pairs nest properly per thread. `obj` is the
  // object's identity (sinks map it to a dense id), `origin` the node the
  // caller stood on before the residency check, and `entry_overhead` the
  // virtual time that check consumed (forward-chain chasing + migration) —
  // the placement advisor's raw material.
  virtual void OnInvokeEnter(Time when, NodeId node, ThreadId thread, const void* obj,
                             const std::string& object, bool remote, NodeId origin,
                             Duration entry_overhead) {}
  // `exit_overhead` is the return-side residency cost (migrating back to the
  // enclosing frame's object).
  virtual void OnInvokeExit(Time when, NodeId node, ThreadId thread, Duration span, bool remote,
                            Duration exit_overhead) {}

  // --- Contention events -----------------------------------------------------
  // `lock` is a small dense id assigned in first-contention order (stable
  // across identical runs, unlike pointers).
  virtual void OnLockBlocked(Time when, NodeId node, ThreadId thread, int lock) {}
  virtual void OnLockAcquired(Time when, NodeId node, ThreadId thread, int lock,
                              Duration wait) {}
  virtual void OnLockReleased(Time when, NodeId node, ThreadId thread, int lock,
                              Duration held) {}
  virtual void OnConditionWake(Time when, NodeId node, int condition, int woken) {}
  // `requester` is the thread blocked for the reply.
  virtual void OnRpcRequest(Time depart, NodeId src, NodeId dst, int64_t bytes, uint64_t id,
                            ThreadId requester) {}
  virtual void OnRpcResponse(Time when, Time reply_arrive, NodeId src, NodeId dst, int64_t bytes,
                             uint64_t id) {}

  // --- Fault events (emitted only in fault-injected runs) --------------------
  // `reason` is one of "lossy", "partition", "node_down".
  virtual void OnMessageDropped(Time when, NodeId src, NodeId dst, int64_t bytes,
                                const char* reason) {}
  virtual void OnMessageDuplicated(Time when, NodeId src, NodeId dst, int64_t bytes) {}
  virtual void OnMessageDelayed(Time when, NodeId src, NodeId dst, Duration extra) {}
  virtual void OnNodeCrash(Time when, NodeId node) {}
  virtual void OnNodeRestart(Time when, NodeId node) {}
  // `attempt` is the 1-based retransmission count of rpc `id`.
  virtual void OnRpcRetry(Time when, NodeId src, NodeId dst, uint64_t id, int attempt,
                          ThreadId requester) {}
  virtual void OnRpcTimeout(Time when, NodeId src, NodeId dst, uint64_t id, int attempts,
                            ThreadId requester) {}
  // `thread` is about to back off for `backoff` before re-probing an
  // unreachable object / unacked transfer (failure-handler kRetry path and
  // move-ack timeouts) — blocked time that is the fault's fault, not the
  // network's.
  virtual void OnFailureBackoff(Time when, NodeId node, ThreadId thread, Duration backoff) {}

  // --- Membership / recovery events (fault-injected runs only) ---------------
  // `by`'s heartbeat lease on `node` expired (OnNodeSuspected) or a
  // heartbeat from a suspected node arrived again (OnNodeTrusted). Protocol
  // opinions, not ground truth — tests grade them against the injector.
  virtual void OnNodeSuspected(Time when, NodeId by, NodeId node) {}
  virtual void OnNodeTrusted(Time when, NodeId by, NodeId node) {}
  // `thread` started / finished a recovery episode for `obj` (replica
  // re-bind or checkpoint restore). The critical-path profiler tiles the
  // enclosed waiting into its `recovery` category.
  virtual void OnRecoveryStart(Time when, NodeId node, ThreadId thread, const void* obj) {}
  virtual void OnRecoveryEnd(Time when, NodeId node, ThreadId thread, const void* obj,
                             bool ok) {}
  // `obj` was re-homed from dead node `from` to `to`: an immutable object
  // re-bound to a surviving replica (from_checkpoint=false) or a mutable
  // object restored from its buddy checkpoint (from_checkpoint=true).
  virtual void OnObjectRecovered(Time when, const void* obj, NodeId from, NodeId to,
                                 bool from_checkpoint) {}
  // DrainNode finished evacuating `node`.
  virtual void OnNodeDrained(Time when, NodeId node, int objects_moved) {}

  // --- Placement-policy events (runs with a PlacementHook attached only) -----
  // The runtime moved `obj` (an attach-group root) from `from` to `to` on
  // behalf of the placement policy — a pull issued on the invocation path.
  // `ok` is whether the move landed; `cost` the virtual time the issuing
  // thread spent on it (the migration bill the profiler attributes).
  virtual void OnPolicyMigration(Time when, const void* obj, NodeId from, NodeId to, bool ok,
                                 Duration cost) {}
};

// A black-box flight recorder: an observer that can additionally render a
// post-mortem dump of everything it has retained. Register one with
// Runtime::SetBlackBox so the runtime can flush it on amber::Panic (failed
// AMBER_CHECK included) and on explicit Runtime::DumpBlackBox calls. The
// concrete implementation lives in src/fdr (fdr::Recorder); core only knows
// this interface.
class BlackBox : public RuntimeObserver {
 public:
  // Renders the dump document (FDR_<name>.json schema, docs/OBSERVABILITY.md).
  // `reason` is "panic", "explicit" or "divergence"; `detail` carries the
  // panic message (or caller-provided context). Runs at death time — it may
  // read the runtime through Runtime::CurrentOrNull() but must not touch
  // virtual time.
  virtual void WriteDump(std::ostream& out, const std::string& reason,
                         const std::string& detail) = 0;
  // Dump file stem: panic dumps go to FDR_<name>.json.
  virtual const std::string& name() const = 0;
  // Copies the recorder's volume counters (fdr.recorded / fdr.dropped) into
  // the registry; called when Run() publishes its totals.
  virtual void PublishMetrics(metrics::Registry* registry) {}
};

// The decision side of the adaptive-placement subsystem (src/policy). The
// runtime consults the hook on the invocation path: when a thread is about
// to invoke an object that is not resident here, ShouldPull may redirect
// the §3.5 protocol — instead of migrating the thread to the object, the
// runtime moves the object's attach-group root to the caller's node (a
// "pull"), and the residency check then finds it local. Decisions run at
// ordered points in fiber context, so enabled-policy runs stay
// deterministic; with no hook attached the invocation path is untouched.
class PlacementHook {
 public:
  virtual ~PlacementHook() = default;
  // `root` is the movable unit (the target's attach-group root), `target`
  // the invoked object whose heat the decision is about, `here` the calling
  // thread's node. Return true to pull root to `here` now, at the calling
  // thread's expense.
  virtual bool ShouldPull(const Object* root, const Object* target, NodeId here, Time now) = 0;
  // Outcome of a pull this hook requested (ok = the move landed).
  virtual void OnPullResult(const Object* root, NodeId here, bool ok) {}
  // Policy metrics (policy.heat and friends); called when Run() publishes
  // its totals, only while a registry is attached.
  virtual void PublishMetrics(metrics::Registry* registry) {}
  // The run is over: `end` is the final virtual time, and no further hook
  // calls will arrive. The hook outlives the runtime, so it must stop
  // consulting runtime-owned state (the kernel clock in particular) after
  // this — freeze anything needed for post-mortem export now.
  virtual void OnRunEnd(Time end) {}
};

// --- Failure-aware semantics ---------------------------------------------------
//
// When an invocation (or a context-switch-in residency check) cannot reach
// the target object — its node crashed, or a partition outlived the whole
// retransmission budget — the runtime consults the failure handler instead
// of hanging. kRetry backs off and re-chases (the node may restart or the
// partition heal); kRecover first attempts crash recovery (re-bind an
// immutable object to a surviving replica, or restore a SetRecoverable
// object from its buddy checkpoint — docs/FAULTS.md) and degrades to the
// kRetry backoff when the object is unrecoverable; kAbort (or no handler
// installed) panics with a typed diagnosis — a *detected* fail-stop, never
// a silent hang.

enum class FailureAction : uint8_t { kAbort, kRetry, kRecover };

struct FailureEvent {
  Status status = Status::kUnreachable;
  const void* object = nullptr;  // the object being chased (may be null)
  NodeId node = -1;              // the unreachable node
  int attempts = 0;              // consecutive failed repair rounds
};

using FailureHandler = std::function<FailureAction(const FailureEvent&)>;

// An invocation-stack frame: user code in this frame runs inside `object`
// (the primary), so the thread is *bound* to it (§3.5) until the frame pops.
struct Frame {
  Object* object;
  Time enter = 0;       // virtual time the invocation began (span start)
  bool remote = false;  // entry required a thread migration
};

class Runtime {
 public:
  struct Config {
    int nodes = 1;
    int procs_per_node = 1;
    sim::CostModel cost;
    net::Topology topology = net::Topology::kSharedBus;
    size_t arena_bytes = size_t{2} << 30;
    int initial_regions_per_node = 8;
    size_t stack_bytes = 64 * 1024;
    bool validate_invariants = false;  // run location-invariant checks at key points
  };

  explicit Runtime(const Config& config);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // The runtime owning the calling code. Exactly one Runtime exists at a
  // time (they represent whole machines).
  static Runtime& Current();
  static Runtime* CurrentOrNull();

  // Runs `main` as the program's initial thread on node 0; returns the final
  // virtual time after all threads finish and the event queue drains.
  Time Run(std::function<void()> main);

  // --- Invocation protocol (called by Ref<T>::Call and Join) ----------------

  // Entry half of an invocation: pushes the frame (before the residency
  // check, §3.5), charges the check, and migrates this thread to the
  // object's node if it is not resident here.
  void EnterInvocation(Object* primary, int64_t args_wire_bytes);

  // Return half: charges the return check, pops the frame, and migrates back
  // to the enclosing frame's object if that object is elsewhere.
  void ExitInvocation(int64_t result_wire_bytes);

  // --- Object lifecycle ------------------------------------------------------

  // Allocates an object segment on the current node (charges creation cost,
  // acquiring a fresh region from the address-space server if needed) and
  // arms construction bookkeeping; New<T> placement-constructs into it.
  void* AllocateObjectMemory(size_t size);
  void AbandonObjectMemory(void* p);  // constructor threw
  void FinishObjectConstruction(Object* obj);

  // Destroys a primary object (must be invoked where it is resident — the
  // call migrates there like any invocation). Runs the destructor and frees
  // the segment.
  void DeleteObject(Object* obj);

  // Called from Object's constructor to classify primary/member/stack-local.
  void OnObjectConstruct(Object* obj);
  void OnObjectDestruct(Object* obj);

  // --- Mobility (§2.3) --------------------------------------------------------

  // Moves obj (and its attachment closure, and lazily its bound threads) to
  // dst. Synchronous: returns when the object is installed. Moving an
  // immutable object installs a copy at dst instead (§2.3). Always kOk in
  // fault-free runs; under fault injection an unreachable owner or
  // destination surfaces as kUnreachable/kTimeout with the object left
  // consistent at its source.
  Status MoveTo(Object* obj, NodeId dst);

  // Current location of obj (follows and compacts the forwarding chain).
  NodeId Locate(Object* obj);

  // Attaches child to parent: child becomes co-located with parent (moving
  // it there now if needed) and moves whenever parent moves.
  void Attach(Object* child, Object* parent);
  void Unattach(Object* child);

  // Marks obj immutable: it will never be modified again; remote access
  // replicates instead of migrating.
  void MakeImmutable(Object* obj);

  // --- Crash recovery / planned shutdown (docs/FAULTS.md) --------------------

  // Opts a mutable, unattached primary into checkpoint/restore recovery:
  // an initial checkpoint ships to a buddy node now (fault-injected runs),
  // and every successful MoveTo / explicit CheckpointObject refreshes it.
  void SetRecoverable(Object* obj);

  // Checkpoints a recoverable object's bytes (AmberSaveState) to the lowest
  // non-suspected node other than its owner. Returns true when the transfer
  // was delivered; false (lost frame / no live buddy) means the previous
  // checkpoint — if any — remains the restore point. Inert without an
  // active fault plan (returns true, ships nothing).
  bool CheckpointObject(Object* obj);

  // Planned shutdown of `node`: moves every unattached mobile primary homed
  // there to the remaining non-suspected nodes round-robin (attach groups
  // move with their root; bound threads follow through the §3.5 residency
  // re-check). Immutable objects are re-homed to a live replica. Returns
  // the number of evacuated roots.
  int DrainNode(NodeId node);

  // --- Threads ---------------------------------------------------------------

  // Creates a thread object + stack + fiber on the current node running
  // `body` (already wrapped by StartThread to invoke the target operation).
  ThreadObject* CreateThread(std::function<void()> body, std::string name, int priority = 0);

  // Blocks until t finishes (call with the joiner's frame already on t).
  // Returns true when the join completed. With fail_aware set, a *lost*
  // thread (its node suspected down) returns false instead of consulting
  // the failure handler — the ThreadRef::TryJoin path.
  bool JoinWait(ThreadObject* t, bool fail_aware = false);

  ThreadObject* current_thread() const;

  // Installs a scheduling policy on a node (§2.1 replaceable scheduler).
  void SetScheduler(NodeId node, std::unique_ptr<sim::RunQueue> queue);

  // Attaches an event observer (e.g. trace::Tracer), replacing any already
  // attached. Call before Run(). Pass nullptr to detach all.
  void SetObserver(RuntimeObserver* observer);

  // Fan-out: attaches an additional observer. Events are delivered to every
  // attached observer in attachment order — the order is part of the
  // deterministic contract (two identical runs deliver the identical
  // sequence to each observer). May be called before Run() or from ordered
  // fiber code mid-run.
  void AddObserver(RuntimeObserver* observer);

  // Detaches one observer; the remaining observers' event streams are
  // unaffected (they keep receiving every event, in the same order as if
  // the removed one had never been attached). No-op if not attached.
  void RemoveObserver(RuntimeObserver* observer);

  // Attaches a metrics registry. The runtime pre-registers and fills the
  // core metric families (see docs/OBSERVABILITY.md for the catalogue):
  // invocation latency local/remote, migration counts/bytes/latency,
  // forwarding-chain length, replica fetches, run-queue depth/wait, lock
  // wait/hold, rpc latency and per-link traffic are recorded live; scalar
  // totals are published when Run() finishes. Call before Run(); nullptr
  // detaches. With no registry attached the hot paths are untouched.
  void SetMetrics(metrics::Registry* registry);
  metrics::Registry* metrics() const { return metrics_; }

  // Attaches a fault injector: hooks the network/kernel/transport and routes
  // fault events into the observer bus and the fault.* metrics. Call before
  // Run(); an injector with an empty plan changes nothing (every output stays
  // byte-identical). The injector must outlive the runtime.
  void SetFaultInjector(fault::Injector* injector);
  fault::Injector* fault_injector() const { return injector_; }

  // Installs the failure handler consulted when an object is unreachable
  // (see FailureHandler above). Default: none — unreachability panics.
  void SetFailureHandler(FailureHandler handler) { failure_handler_ = std::move(handler); }

  // Attaches a black-box flight recorder: the recorder joins the observer
  // fan-out (AddObserver — same zero-virtual-time tap), and a panic hook is
  // installed so any amber::Panic / failed AMBER_CHECK flushes it to
  // FDR_<name>.json before aborting (the path is printed by Panic). Pass
  // nullptr to detach (also uninstalls the hook). The recorder must outlive
  // the runtime or be detached first.
  void SetBlackBox(BlackBox* recorder);
  BlackBox* black_box() const { return blackbox_; }

  // Attaches the adaptive-placement decision hook (policy::PlacementPolicy
  // implements it). The hook is consulted on every invocation of a
  // non-resident object; see PlacementHook. It is *not* an observer — pair
  // it with AddObserver for event delivery (PlacementPolicy::AttachTo does
  // both). Call before Run(); nullptr detaches. With no hook attached the
  // invocation path is byte-identical to a policy-free runtime.
  void SetPlacementPolicy(PlacementHook* policy);
  PlacementHook* placement_policy() const { return policy_; }

  // Flushes the attached black box to `path` now ("explicit" reason) —
  // mid-run state capture without dying. Returns `path`, or "" when no
  // recorder is attached.
  std::string DumpBlackBox(const std::string& path);

  // Snapshot of every currently-held lock (instrumented runs only): dense
  // sync id (0 if the lock never produced an id-bearing event — i.e. was
  // never contended or released while observed), the holder's thread id,
  // and when the hold began. Sorted deterministically by (id, holder,
  // since); read-only — assigns no new ids. The black box dumps this as
  // ground truth, since uncontended acquires emit no observer event.
  struct HeldLock {
    int lock = 0;
    ThreadId holder = 0;
    Time since = 0;
  };
  std::vector<HeldLock> HeldLocks() const;

  // True when an observer or metrics registry is attached; instrumentation
  // call sites outside the runtime (core/sync) gate on this.
  bool instrumented() const { return !observers_.empty() || metrics_ != nullptr; }

  // --- Contention instrumentation (called by core/sync; cheap no-ops
  // unless instrumented()) ----------------------------------------------------
  void NotifyLockBlocked(const void* lock);
  void NotifyLockAcquired(const void* lock, Duration wait);
  // Records that `lock` became held at `when` by `holder` (uncontended
  // acquire or FIFO handoff); NotifyLockReleased derives the hold time from
  // it, and HeldLocks() snapshots it for the black box.
  void NotifyLockHeldSince(const void* lock, Time when, ThreadObject* holder);
  void NotifyLockReleased(const void* lock);
  void NotifyConditionWake(const void* condition, int woken);
  void NotifyBarrierWait();

  // --- Time / work -------------------------------------------------------------

  // Consumes d of CPU on the current thread's processor (the application's
  // "computation"; subject to timeslicing and preemption).
  void Work(Duration d) { sim_->Charge(d); }

  NodeId here() const;
  Time now() const { return sim_->Now(); }
  int nodes() const { return sim_->nodes(); }
  int procs_per_node() const { return sim_->procs_per_node(); }

  // --- Plumbing / introspection --------------------------------------------------

  sim::Kernel& sim() { return *sim_; }
  net::Network& network() { return *net_; }
  rpc::Transport& transport() { return *rpc_; }
  // The heartbeat membership service; non-null only while a fault plan is
  // active (SetFaultInjector with a non-empty plan).
  fault::Membership* membership() { return membership_.get(); }
  const sim::CostModel& cost() const { return sim_->cost(); }
  DescriptorTable& table(NodeId node);
  mem::GlobalAddressSpace& address_space() { return *gas_; }
  mem::SegmentAllocator& allocator(NodeId node);

  // Authoritative location (validation/tests only — never the protocol).
  NodeId OwnerOf(const Object* obj) const;

  // Checks: each mutable object resident on exactly its owner node; all
  // forwarding chains terminate; attachment groups co-located. Panics on
  // violation.
  void ValidateLocationInvariants();

  // Sum of bytes of the attachment closure rooted at obj (move payload).
  int64_t ClosureBytes(Object* obj);

  int64_t objects_created() const { return objects_created_; }
  int64_t objects_moved() const { return objects_moved_; }
  int64_t replicas_installed() const { return replicas_installed_; }
  int64_t thread_migrations() const { return thread_migrations_; }
  int64_t forward_hops() const { return forward_hops_; }

  // Thread migrations from src to dst (for the cluster report).
  int64_t MigrationCount(NodeId src, NodeId dst) const {
    return migration_matrix_[static_cast<size_t>(src) * static_cast<size_t>(nodes()) +
                             static_cast<size_t>(dst)];
  }

 private:
  friend class Object;

  struct PendingAllocation {
    void* base;
    size_t size;
    Object* primary;  // first Object constructed at base
  };

  // Makes the calling thread co-resident with obj, following the forwarding
  // chain with thread hops (mutable) or replica fetches (immutable). Under
  // fault injection a hop into a dead node triggers chain repair (probe the
  // reachable nodes, re-aim the hint) and, when the object itself is
  // unreachable, the failure-handler contract.
  void EnsureResident(Object* obj, int64_t payload_bytes);

  // Resolves obj's current location with control-message roundtrips from the
  // current node, compacting stale hints along the way. Does not move the
  // calling thread. Returns kNoNode when the chain runs through an
  // unreachable node (fault-injected runs only).
  NodeId ResolveLocation(Object* obj);

  // Probes every reachable node for a Resident descriptor of obj — the
  // forwarding-chain repair path when a hint routes through a dead node.
  // Returns kNoNode if no reachable node holds the object right now.
  NodeId BroadcastLocate(Object* obj);

  // Consults the failure handler (see SetFailureHandler); panics on kAbort
  // or when none is installed. Returns after backoff (kRetry) or after a
  // recovery attempt (kRecover; an unrecoverable object degrades to the
  // kRetry backoff so the caller re-probes).
  void HandleUnreachable(Object* obj, NodeId node, int attempts);

  // --- Crash recovery internals (docs/FAULTS.md) -----------------------------

  // kRecover dispatch: re-binds immutable obj to a surviving replica or
  // restores a checkpointed mutable obj on its buddy. Returns true when the
  // object has a live home afterwards.
  bool RecoverObject(Object* obj, NodeId dead);
  // Probes the non-suspected nodes in ascending order for a replica of
  // immutable obj; the lowest holder becomes the new home (deterministic
  // election — every recovering thread picks the same winner).
  bool RecoverImmutable(Object* obj, NodeId dead);
  // Restores obj's last checkpoint on its buddy node (idempotent: concurrent
  // recoverers agree because the restore service no-ops once resident).
  bool RecoverMutable(Object* obj, NodeId dead);
  // Refreshes the buddy checkpoint after a successful move of a recoverable
  // object (quiescent point: the object just landed and is not mid-write).
  void MaybeRecheckpoint(Object* obj);
  // Membership suspicion/trust callbacks (virtual-time ordered): lost-thread
  // marking, detection metrics graded against the injector oracle.
  void OnPeerSuspected(Time when, NodeId by, NodeId peer);
  void OnPeerTrusted(Time when, NodeId by, NodeId peer);
  // Semantic crash/restart hook from the injector (not the observability
  // sink): ground-truth timestamps for detection-latency metrics, and
  // boot-time reconciliation of a restarted node's stale descriptors.
  void OnNodeEvent(Time when, NodeId node, bool up);
  void NotifyRecoveryStart(const Object* obj);
  void NotifyRecoveryEnd(const Object* obj, bool ok);

  // Fetches a replica of immutable obj from `from` (following the chain with
  // further roundtrips if stale) and installs it locally.
  Status FetchReplica(Object* obj, NodeId from);

  // Migrates the calling thread to dst carrying its state + extra payload.
  // kUnreachable means the thread never left (descriptors reverted).
  Status TravelThread(NodeId dst, int64_t extra_bytes);

  // Executes the source side of a move at the owner == current node. On
  // failure the closure is reverted to the source.
  Status MoveOutLocal(Object* obj, NodeId dst);
  // Asks `owner` to move obj to dst (source side runs there in event
  // context, latency model). *accepted=false with kOk means the object had
  // moved on and the caller should re-resolve.
  Status RequestRemoteMove(Object* obj, NodeId owner, NodeId dst, bool* accepted);
  // Installs a replica of immutable obj at dst (MoveTo-on-immutable, §2.3).
  Status ReplicateTo(Object* obj, NodeId dst);
  // Entry wrapper for every thread fiber: root frame, body, joiner wakeup.
  void ThreadMain(ThreadObject* t);

  // Collects obj + transitive attachment children.
  void CollectClosure(Object* obj, std::vector<Object*>* out);

  // Flips descriptors for a moving closure at an ordered point: forward at
  // src, resident at dst, owner updated. Returns total payload bytes.
  int64_t FlipDescriptorsForMove(const std::vector<Object*>& closure, NodeId src, NodeId dst);

  // Serializes closure contents and returns the checksum (real copy through
  // a wire buffer — the bulk-transfer marshal).
  uint64_t SerializeClosure(const std::vector<Object*>& closure);

  // Estimate of the calling thread's migration payload (control block +
  // live stack). Must run on the thread being sized.
  int64_t ThreadPayloadBytes() const;

  void* AllocateSegmentOnCurrentNode(size_t size);
  void ResumeHook(sim::Fiber* f);

  // Invocation-path pull: gives the placement policy a chance to move the
  // target's attach group to the calling thread's node before the §3.5
  // residency check chases it the other way. Only called when policy_ is
  // attached; the pull is billed to the calling thread like any MoveTo.
  void MaybePolicyPull(Object* primary);

  // Installs / removes the kernel, transport and network bridges according
  // to which sinks (observer_, metrics_) are attached.
  void UpdateInstrumentation();
  // Copies the scalar run totals (object/migration counters, network and
  // simulator activity, per-node busy time) into the attached registry.
  void PublishRunTotals(Time end);
  // Dense id for a lock/condition address, assigned in first-contention
  // order (deterministic, unlike the address itself).
  int SyncObjectId(const void* obj);

  Config config_;
  std::unique_ptr<sim::Kernel> sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<rpc::Transport> rpc_;
  std::unique_ptr<mem::GlobalAddressSpace> gas_;
  std::unique_ptr<mem::RegionServer> region_server_;
  std::vector<std::unique_ptr<mem::SegmentAllocator>> allocators_;
  std::vector<std::unique_ptr<DescriptorTable>> tables_;
  std::vector<PendingAllocation> pending_;   // nested New stack
  std::vector<ThreadObject*> threads_;       // for teardown
  std::unordered_set<Object*> live_objects_;  // primaries, for validation
  int64_t objects_created_ = 0;
  int64_t objects_moved_ = 0;
  int64_t replicas_installed_ = 0;
  int64_t thread_migrations_ = 0;
  int64_t forward_hops_ = 0;
  std::vector<int64_t> migration_matrix_;  // nodes x nodes, row = source
  // Attached observers, in attachment (= delivery) order. Emission sites
  // loop over this vector; an empty vector short-circuits to one branch.
  std::vector<RuntimeObserver*> observers_;
  metrics::Registry* metrics_ = nullptr;
  fault::Injector* injector_ = nullptr;
  // Heartbeat/lease failure detector, created by SetFaultInjector for active
  // plans only — the runtime's repair/recovery paths ask it, never the
  // injector oracle. Null in fault-free runs.
  std::unique_ptr<fault::Membership> membership_;
  // Last checkpoint of each SetRecoverable object: serialized bytes + the
  // buddy node holding them (conceptually; the bytes travelled there on the
  // wire, we keep the authoritative copy host-side like the replica model).
  struct CheckpointRecord {
    std::vector<uint8_t> bytes;
    NodeId buddy = kNoNode;
    Time when = 0;
  };
  std::unordered_map<Object*, CheckpointRecord> checkpoints_;
  // Creation-sequence number per live primary: the deterministic iteration
  // order for DrainNode and the object label on fault.unreachable (pointer
  // order would vary with arena layout).
  std::unordered_map<const Object*, uint64_t> obj_seq_;
  uint64_t next_obj_seq_ = 1;
  // Ground-truth crash instants (injector hook) for member.detect_latency.
  std::vector<Time> crash_time_;
  FailureHandler failure_handler_;
  // Bridges sim::SchedObserver / rpc::TransportObserver callbacks into the
  // RuntimeObserver + registry; allocated on demand (see runtime.cc).
  struct Instrumentation;
  std::unique_ptr<Instrumentation> instr_;
  std::unordered_map<const void*, int> sync_ids_;  // lock/cond -> dense id
  struct LockHold {
    Time since = 0;
    ThreadObject* holder = nullptr;
  };
  std::unordered_map<const void*, LockHold> lock_acquired_;  // only while instrumented
  BlackBox* blackbox_ = nullptr;
  PlacementHook* policy_ = nullptr;
  bool ran_ = false;
};

}  // namespace amber

#endif  // AMBER_SRC_CORE_RUNTIME_H_
