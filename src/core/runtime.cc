#include "src/core/runtime.h"

#include <cxxabi.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <typeinfo>
#include <unordered_map>
#include <unordered_set>

#include "src/base/logging.h"
#include "src/base/panic.h"
#include "src/core/object.h"
#include "src/core/thread.h"
#include "src/metrics/metrics.h"
#include "src/rpc/wire.h"
#include "src/telemetry/telemetry.h"

namespace amber {
namespace {

Runtime* g_runtime = nullptr;

// Human-readable dynamic type of an object (invocation span labels).
// Demangling is deterministic: same binary, same names.
std::string ObjectLabel(const Object* obj) {
  if (obj == nullptr) {
    return "stack-local";
  }
  const char* raw = typeid(*obj).name();
  int status = 0;
  char* demangled = abi::__cxa_demangle(raw, nullptr, nullptr, &status);
  std::string out = (status == 0 && demangled != nullptr) ? demangled : raw;
  std::free(demangled);
  return out;
}

// Wire size of the thread control state that travels with a migrating
// thread, excluding the stack (registers, scheduling state, frame list).
constexpr int64_t kThreadStateBytes = 96;
// Size of location-protocol control messages (requests, acks, redirects).
constexpr int64_t kControlBytes = 64;
// Size of an asynchronous forwarding-hint update (path compaction, §3.3).
constexpr int64_t kHintUpdateBytes = 32;
// Per-object descriptor/bookkeeping bytes added to a move's bulk payload.
constexpr int64_t kPerObjectMoveOverhead = 32;

}  // namespace

// Bridges the lower layers' observer interfaces (sim::SchedObserver,
// rpc::TransportObserver, fault::FaultSink) into the RuntimeObserver and
// metrics registry. Allocated only while a sink is attached, so detached
// runs never construct it and the kernel/transport hooks stay null.
struct Runtime::Instrumentation : public sim::SchedObserver,
                                  public rpc::TransportObserver,
                                  public fault::FaultSink {
  explicit Instrumentation(Runtime* rt) : rt(rt) {}

  Runtime* rt;
  // depart time per in-flight rpc id (erased on response) for latency.
  std::unordered_map<uint64_t, Time> rpc_depart;
  // ids that needed at least one retransmission (for rpc.retry.latency).
  std::unordered_set<uint64_t> rpc_retried;

  // --- sim::SchedObserver ----------------------------------------------------
  void OnFiberCreate(Time when, sim::NodeId node, const sim::Fiber& f) override {
    telemetry::ScopedWallTimer fanout(telemetry::Bucket::kObserverFanout);
    // Spawn runs in the creating fiber's context (host context for the
    // initial thread), so current() is the parent — the causal creation
    // edge the critical-path profiler walks.
    sim::Fiber* creator = rt->sim_->current();
    const ThreadId parent = creator != nullptr ? creator->id : 0;
    for (RuntimeObserver* o : rt->observers_) {
      o->OnThreadCreate(when, node, f.id, f.name, parent);
    }
    if (rt->metrics_ != nullptr) {
      rt->metrics_->GetCounter("sched.threads.created", node).Add();
    }
  }
  void OnFiberDispatch(Time when, sim::NodeId node, const sim::Fiber& f,
                       Duration queue_wait) override {
    telemetry::ScopedWallTimer fanout(telemetry::Bucket::kObserverFanout);
    for (RuntimeObserver* o : rt->observers_) {
      o->OnThreadDispatch(when, node, f.id, queue_wait);
    }
    if (rt->metrics_ != nullptr) {
      rt->metrics_->GetHistogram("sched.runqueue.wait", node)
          .Record(static_cast<double>(queue_wait));
      rt->metrics_->GetHistogram("sched.runqueue.depth", node)
          .Record(static_cast<double>(rt->sim_->RunQueueLength(node)));
    }
  }
  void OnFiberBlock(Time when, sim::NodeId node, const sim::Fiber& f) override {
    telemetry::ScopedWallTimer fanout(telemetry::Bucket::kObserverFanout);
    for (RuntimeObserver* o : rt->observers_) {
      o->OnThreadBlock(when, node, f.id);
    }
  }
  void OnFiberUnblock(Time when, sim::NodeId node, const sim::Fiber& f, uint64_t waker_id,
                      Time wake_time) override {
    telemetry::ScopedWallTimer fanout(telemetry::Bucket::kObserverFanout);
    for (RuntimeObserver* o : rt->observers_) {
      o->OnThreadUnblock(when, node, f.id, waker_id, wake_time);
    }
  }
  void OnFiberPreempt(Time when, sim::NodeId node, const sim::Fiber& f) override {
    telemetry::ScopedWallTimer fanout(telemetry::Bucket::kObserverFanout);
    for (RuntimeObserver* o : rt->observers_) {
      o->OnThreadPreempt(when, node, f.id);
    }
    if (rt->metrics_ != nullptr) {
      rt->metrics_->GetCounter("sched.preempts", node).Add();
    }
  }
  void OnFiberExit(Time when, sim::NodeId node, const sim::Fiber& f) override {
    telemetry::ScopedWallTimer fanout(telemetry::Bucket::kObserverFanout);
    for (RuntimeObserver* o : rt->observers_) {
      o->OnThreadExit(when, node, f.id);
    }
  }

  // --- rpc::TransportObserver ------------------------------------------------
  void OnRpcRequest(Time depart, rpc::NodeId src, rpc::NodeId dst, int64_t bytes, uint64_t id,
                    uint64_t requester) override {
    telemetry::ScopedWallTimer fanout(telemetry::Bucket::kObserverFanout);
    for (RuntimeObserver* o : rt->observers_) {
      o->OnRpcRequest(depart, src, dst, bytes, id, requester);
    }
    if (rt->metrics_ != nullptr) {
      rpc_depart[id] = depart;
    }
  }
  void OnRpcResponse(Time when, Time reply_arrive, rpc::NodeId src, rpc::NodeId dst,
                     int64_t bytes, uint64_t id) override {
    telemetry::ScopedWallTimer fanout(telemetry::Bucket::kObserverFanout);
    for (RuntimeObserver* o : rt->observers_) {
      o->OnRpcResponse(when, reply_arrive, src, dst, bytes, id);
    }
    if (rt->metrics_ != nullptr) {
      auto it = rpc_depart.find(id);
      if (it != rpc_depart.end()) {
        // Latency as seen by the requester (dst of the reply).
        rt->metrics_->GetHistogram("rpc.roundtrip.latency", dst)
            .Record(static_cast<double>(reply_arrive - it->second));
        if (auto rit = rpc_retried.find(id); rit != rpc_retried.end()) {
          // First-departure-to-reply latency of roundtrips that needed
          // retransmission — the cost of riding out loss.
          rt->metrics_->GetHistogram("rpc.retry.latency")
              .Record(static_cast<double>(reply_arrive - it->second));
          rpc_retried.erase(rit);
        }
        rpc_depart.erase(it);
      }
    }
  }
  void OnRpcRetry(Time when, rpc::NodeId src, rpc::NodeId dst, uint64_t id, int attempt,
                  uint64_t requester) override {
    telemetry::ScopedWallTimer fanout(telemetry::Bucket::kObserverFanout);
    for (RuntimeObserver* o : rt->observers_) {
      o->OnRpcRetry(when, src, dst, id, attempt, requester);
    }
    if (rt->metrics_ != nullptr) {
      rt->metrics_->GetCounter("rpc.retries").Add();
      rpc_retried.insert(id);
    }
  }
  void OnRpcTimeout(Time when, rpc::NodeId src, rpc::NodeId dst, uint64_t id, int attempts,
                    uint64_t requester) override {
    telemetry::ScopedWallTimer fanout(telemetry::Bucket::kObserverFanout);
    for (RuntimeObserver* o : rt->observers_) {
      o->OnRpcTimeout(when, src, dst, id, attempts, requester);
    }
    if (rt->metrics_ != nullptr) {
      rt->metrics_->GetCounter("rpc.timeouts").Add();
      rpc_depart.erase(id);
      rpc_retried.erase(id);
    }
  }
  void OnRpcDuplicateSuppressed(Time /*when*/, rpc::NodeId /*node*/, uint64_t /*id*/) override {
    if (rt->metrics_ != nullptr) {
      rt->metrics_->GetCounter("rpc.dup_suppressed").Add();
    }
  }

  // --- fault::FaultSink ------------------------------------------------------
  void OnMessageDropped(Time when, fault::NodeId src, fault::NodeId dst, int64_t bytes,
                        fault::DropReason reason) override {
    for (RuntimeObserver* o : rt->observers_) {
      o->OnMessageDropped(when, src, dst, bytes, fault::DropReasonName(reason));
    }
    if (rt->metrics_ != nullptr) {
      rt->metrics_->GetCounter("fault.drops", metrics::Registry::LinkLabel(src, dst)).Add();
    }
  }
  void OnMessageDuplicated(Time when, fault::NodeId src, fault::NodeId dst,
                           int64_t bytes) override {
    for (RuntimeObserver* o : rt->observers_) {
      o->OnMessageDuplicated(when, src, dst, bytes);
    }
    if (rt->metrics_ != nullptr) {
      rt->metrics_->GetCounter("fault.dups", metrics::Registry::LinkLabel(src, dst)).Add();
    }
  }
  void OnMessageDelayed(Time when, fault::NodeId src, fault::NodeId dst,
                        Duration extra) override {
    for (RuntimeObserver* o : rt->observers_) {
      o->OnMessageDelayed(when, src, dst, extra);
    }
    if (rt->metrics_ != nullptr) {
      rt->metrics_->GetCounter("fault.delays", metrics::Registry::LinkLabel(src, dst)).Add();
      rt->metrics_->GetHistogram("fault.delay").Record(static_cast<double>(extra));
    }
  }
  void OnNodeCrash(Time when, fault::NodeId node) override {
    for (RuntimeObserver* o : rt->observers_) {
      o->OnNodeCrash(when, node);
    }
    if (rt->metrics_ != nullptr) {
      rt->metrics_->GetCounter("fault.node.crashes", node).Add();
    }
  }
  void OnNodeRestart(Time when, fault::NodeId node) override {
    for (RuntimeObserver* o : rt->observers_) {
      o->OnNodeRestart(when, node);
    }
    if (rt->metrics_ != nullptr) {
      rt->metrics_->GetCounter("fault.node.restarts", node).Add();
    }
  }
};

Runtime::Runtime(const Config& config) : config_(config) {
  AMBER_CHECK(g_runtime == nullptr) << "only one Runtime may exist at a time";
  sim::Kernel::Config kc;
  kc.nodes = config.nodes;
  kc.procs_per_node = config.procs_per_node;
  kc.cost = config.cost;
  sim_ = std::make_unique<sim::Kernel>(kc);
  net_ = std::make_unique<net::Network>(sim_.get(), config.topology);
  rpc_ = std::make_unique<rpc::Transport>(sim_.get(), net_.get());
  gas_ = std::make_unique<mem::GlobalAddressSpace>(config.arena_bytes);
  region_server_ = std::make_unique<mem::RegionServer>(gas_.get(), config.nodes,
                                                       config.initial_regions_per_node);
  for (NodeId n = 0; n < config.nodes; ++n) {
    allocators_.push_back(std::make_unique<mem::SegmentAllocator>(gas_.get(), n));
    for (int r = 0; r < config.initial_regions_per_node; ++r) {
      allocators_.back()->AddRegion(n * config.initial_regions_per_node + r);
    }
    tables_.push_back(std::make_unique<DescriptorTable>(n));
  }
  migration_matrix_.assign(static_cast<size_t>(config.nodes) * config.nodes, 0);
  sim_->SetResumeHook([this](sim::Fiber* f) { ResumeHook(f); });
  g_runtime = this;
}

Runtime::~Runtime() {
  if (blackbox_ != nullptr) {
    SetPanicHook(nullptr);
  }
  // Destroy thread records (their std::function/vector state lives on the
  // host heap); object segments disappear with the arena.
  for (ThreadObject* t : threads_) {
    t->~ThreadObject();
  }
  g_runtime = nullptr;
}

Runtime& Runtime::Current() {
  AMBER_CHECK(g_runtime != nullptr) << "no Runtime is active";
  return *g_runtime;
}

Runtime* Runtime::CurrentOrNull() { return g_runtime; }

DescriptorTable& Runtime::table(NodeId node) {
  AMBER_CHECK(node >= 0 && node < nodes());
  return *tables_[static_cast<size_t>(node)];
}

mem::SegmentAllocator& Runtime::allocator(NodeId node) {
  AMBER_CHECK(node >= 0 && node < nodes());
  return *allocators_[static_cast<size_t>(node)];
}

NodeId Runtime::here() const {
  sim::Fiber* f = sim_->current();
  AMBER_CHECK(f != nullptr) << "not running on an Amber thread";
  return f->node;
}

ThreadObject* Runtime::current_thread() const {
  sim::Fiber* f = sim_->current();
  AMBER_CHECK(f != nullptr) << "not running on an Amber thread";
  auto* t = static_cast<ThreadObject*>(f->user_data);
  AMBER_CHECK(t != nullptr);
  return t;
}

// --- Program startup ----------------------------------------------------------

Time Runtime::Run(std::function<void()> main) {
  AMBER_CHECK(!ran_) << "a Runtime represents one program execution; construct a new one";
  ran_ = true;
  // Stamp log lines with virtual time for the duration of the run.
  SetLogTimeSource(+[]() -> int64_t { return g_runtime != nullptr ? g_runtime->now() : 0; });
  // The initial thread is materialized host-side on node 0 — program startup
  // (§3: tasks created by Topaz facilities), not a charged runtime operation.
  void* mem = allocators_[0]->Allocate(sizeof(ThreadObject));
  AMBER_CHECK(mem != nullptr);
  pending_.push_back(PendingAllocation{mem, sizeof(ThreadObject), nullptr});
  auto* t = new (mem) ThreadObject();
  AMBER_CHECK(pending_.back().primary == t);
  pending_.pop_back();
  t->header_.flags |= kObjThread;
  t->header_.home = 0;
  t->header_.owner = 0;
  t->header_.size = sizeof(ThreadObject);
  tables_[0]->SetResident(t);
  t->name_ = "main";
  t->body_ = std::move(main);
  void* stack = allocators_[0]->Allocate(config_.stack_bytes);
  AMBER_CHECK(stack != nullptr);
  t->stack_base_ = stack;
  t->fiber_ = sim_->Spawn(0, stack, config_.stack_bytes, [this, t] { ThreadMain(t); }, "main");
  t->fiber_->user_data = t;
  threads_.push_back(t);
  const Time end = sim_->Run();
  PublishRunTotals(end);
  if (policy_ != nullptr) {
    policy_->OnRunEnd(end);
  }
  SetLogTimeSource(nullptr);
  return end;
}

void Runtime::ThreadMain(ThreadObject* t) {
  t->frames_.push_back(Frame{t});
  t->body_();
  sim_->Sync();
  t->finished_ = true;
  for (sim::Fiber* w : t->join_waiters_) {
    sim_->Wake(w, sim_->Now());
  }
  t->join_waiters_.clear();
  t->frames_.clear();
}

// --- Object construction --------------------------------------------------------

void* Runtime::AllocateSegmentOnCurrentNode(size_t size) {
  const NodeId node = here();
  mem::SegmentAllocator& alloc = *allocators_[static_cast<size_t>(node)];
  void* p = alloc.Allocate(size);
  if (p != nullptr) {
    return p;
  }
  // Pool exhausted: extend it through the address-space server (§3.1). A
  // remote server costs a control RPC; the server node extends locally.
  const NodeId server = region_server_->server_node();
  int64_t region = -1;
  if (node == server) {
    sim_->Charge(cost().object_create);  // local bookkeeping for the grant
    sim_->Sync();
    region = region_server_->AcquireRegion(node);
  } else {
    for (int tries = 0;; ++tries) {
      const rpc::RoundtripResult rr =
          rpc_->Roundtrip(server, kControlBytes, [this, node, &region]() -> int64_t {
            region = region_server_->AcquireRegion(node);
            return kControlBytes;
          });
      if (rr.status == rpc::SendStatus::kOk) {
        break;
      }
      // Fault-injected runs: the server may be crashed right now; keep
      // retrying (it is fail-stop/restart) rather than hanging, with a cap
      // so a permanently dead server is a detected failure.
      AMBER_CHECK(tries < 16) << "address-space server on node " << server << " unreachable";
    }
  }
  alloc.AddRegion(region);
  p = alloc.Allocate(size);
  AMBER_CHECK(p != nullptr);
  return p;
}

void* Runtime::AllocateObjectMemory(size_t size) {
  sim_->Charge(cost().object_create);
  sim_->Sync();
  void* p = AllocateSegmentOnCurrentNode(size);
  // The descriptor is initialized at allocation time, on the allocating
  // node (§3.2): the object is resident here from birth, even if its
  // constructor migrates the creating thread.
  tables_[static_cast<size_t>(here())]->SetResident(p);
  pending_.push_back(PendingAllocation{p, size, nullptr});
  return p;
}

void Runtime::AbandonObjectMemory(void* p) {
  AMBER_CHECK(!pending_.empty() && pending_.back().base == p);
  pending_.pop_back();
  tables_[static_cast<size_t>(here())]->Erase(p);
  allocator(gas_->HomeOf(p)).Free(p);
}

void Runtime::OnObjectConstruct(Object* obj) {
  if (!pending_.empty()) {
    PendingAllocation& p = pending_.back();
    auto* base = static_cast<char*>(p.base);
    auto* addr = reinterpret_cast<char*>(obj);
    if (addr >= base && addr < base + p.size) {
      if (p.primary == nullptr) {
        AMBER_CHECK(addr == base) << "Object base must be the first subobject";
        p.primary = obj;
        const NodeId node = sim_->current() != nullptr ? here() : 0;
        obj->header_.home = gas_->HomeOf(base);
        obj->header_.owner = node;
        obj->header_.size = p.size;
        // Creation-sequence id: deterministic program order, unlike the
        // segment address (DrainNode iteration, fault.unreachable labels).
        obj_seq_[obj] = next_obj_seq_++;
      } else {
        // A member object (§3.6): co-resident with — and moves with — the
        // containing primary.
        obj->header_.flags |= kObjMember;
        obj->header_.primary = p.primary;
      }
      return;
    }
  }
  obj->header_.flags |= kObjStackLocal;
}

void Runtime::OnObjectDestruct(Object* obj) {
  // Primary objects are unregistered in DeleteObject (or at teardown);
  // member/stack objects need nothing.
  live_objects_.erase(obj);
  obj_seq_.erase(obj);
  checkpoints_.erase(obj);
}

void Runtime::FinishObjectConstruction(Object* obj) {
  AMBER_CHECK(!pending_.empty() && pending_.back().primary == obj)
      << "FinishObjectConstruction out of order";
  pending_.pop_back();
  live_objects_.insert(obj);
  ++objects_created_;
}

void Runtime::DeleteObject(Object* obj) {
  AMBER_CHECK(obj != nullptr);
  ObjectHeader& h = obj->header_;
  AMBER_CHECK(!h.IsMember() && !h.IsStackLocal()) << "delete the containing object";
  AMBER_CHECK(!h.IsThread()) << "thread objects are reclaimed by Join";
  AMBER_CHECK(h.attach_parent == nullptr) << "unattach before delete";
  AMBER_CHECK(h.first_child == nullptr) << "unattach children before delete";
  sim_->Charge(cost().object_destroy);
  sim_->Sync();
  const NodeId node = here();
  AMBER_CHECK(tables_[static_cast<size_t>(node)]->IsResident(obj))
      << "DeleteObject must run where the object is resident";
  live_objects_.erase(obj);
  tables_[static_cast<size_t>(node)]->Erase(obj);
  const NodeId home = gas_->HomeOf(obj);
  obj->~Object();  // virtual: destroys the complete object
  allocator(home).Free(obj);
}

// --- Invocation protocol ---------------------------------------------------------

void Runtime::EnterInvocation(Object* primary, int64_t args_wire_bytes) {
  ThreadObject* t = current_thread();
  const bool instr = instrumented();
  // Frame push precedes the residency check (§3.5) so a concurrent move
  // already sees this thread as bound to the object.
  t->frames_.push_back(Frame{primary, instr ? sim_->Now() : 0});
  sim_->Charge(cost().local_invoke);
  sim_->Sync();
  if (policy_ != nullptr) {
    // Adaptive placement: offer the policy a pull before the residency
    // check chases the object the other way (see MaybePolicyPull).
    MaybePolicyPull(primary);
  }
  const int64_t migrations_before = thread_migrations_;
  // Bracket the residency check: its duration (chain chasing + migration +
  // failure backoff) is the invocation's entry overhead — what a better
  // placement of `primary` would have saved the caller standing on `origin`.
  const NodeId origin = instr ? here() : kNoNode;
  const Time chase_start = instr ? sim_->Now() : 0;
  EnsureResident(primary, args_wire_bytes);
  if (instr) {
    const bool remote = thread_migrations_ != migrations_before;
    t->frames_.back().remote = remote;
    if (!observers_.empty()) {
      telemetry::ScopedWallTimer fanout(telemetry::Bucket::kObserverFanout);
      const Time now = sim_->Now();
      const std::string label = ObjectLabel(primary);
      const ThreadId tid = t->fiber_->id;
      for (RuntimeObserver* o : observers_) {
        o->OnInvokeEnter(now, here(), tid, primary, label, remote, origin, now - chase_start);
      }
    }
  }
}

void Runtime::ExitInvocation(int64_t result_wire_bytes) {
  ThreadObject* t = current_thread();
  AMBER_CHECK(t->frames_.size() > 1) << "invocation stack underflow";
  const Frame done = t->frames_.back();
  t->frames_.pop_back();
  sim_->Charge(cost().local_return);
  sim_->Sync();
  const bool instr = instrumented();
  const Time return_start = instr ? sim_->Now() : 0;
  // Return-time check, made after the frame pop (§3.5): continue where the
  // enclosing frame's object now lives.
  EnsureResident(t->frames_.back().object, result_wire_bytes);
  if (instr) {
    const Time now = sim_->Now();
    const Duration span = now - done.enter;
    if (metrics_ != nullptr) {
      metrics_
          ->GetHistogram(done.remote ? "amber.invoke.latency.remote"
                                     : "amber.invoke.latency.local",
                         here())
          .Record(static_cast<double>(span));
    }
    if (!observers_.empty()) {
      telemetry::ScopedWallTimer fanout(telemetry::Bucket::kObserverFanout);
      const ThreadId tid = t->fiber_->id;
      for (RuntimeObserver* o : observers_) {
        o->OnInvokeExit(now, here(), tid, span, done.remote, now - return_start);
      }
    }
  }
}

void Runtime::ResumeHook(sim::Fiber* f) {
  auto* t = static_cast<ThreadObject*>(f->user_data);
  if (t == nullptr || t->resolving_ || t->frames_.empty()) {
    return;
  }
  // Context-switch-in residency check (§3.5): a thread bound to an object
  // that moved while the thread was suspended chases it on dispatch.
  EnsureResident(t->frames_.back().object, 0);
}

int64_t Runtime::ThreadPayloadBytes() const {
  return kThreadStateBytes + cost().thread_ship_stack_bytes;
}

Status Runtime::TravelThread(NodeId dst, int64_t extra_bytes) {
  ThreadObject* t = current_thread();
  const NodeId src = here();
  AMBER_CHECK(dst != src);
  // The thread object travels with the thread: forward at the source,
  // resident at the destination. (Descriptors flip at departure; see
  // DESIGN.md on the in-flight window.)
  tables_[static_cast<size_t>(src)]->SetForward(t, dst);
  tables_[static_cast<size_t>(dst)]->SetResident(t);
  t->header_.owner = dst;
  const int64_t payload = ThreadPayloadBytes() + extra_bytes;
  const Time depart = sim_->Now();
  if (!rpc_->reliability_enabled()) {
    ++thread_migrations_;
    migration_matrix_[static_cast<size_t>(src) * static_cast<size_t>(nodes()) +
                      static_cast<size_t>(dst)] += 1;
    for (RuntimeObserver* o : observers_) {
      o->OnThreadMigrate(depart, src, dst, t->fiber_->id, payload);
    }
    rpc_->Travel(dst, payload);
    if (metrics_ != nullptr) {
      // Departure decision to running again at dst (marshal + wire + dispatch).
      metrics_->GetHistogram("amber.migration.latency").Record(static_cast<double>(sim_->Now() - depart));
      metrics_->GetCounter("amber.migration.bytes").Add(payload);
    }
    return Status::kOk;
  }
  // Fault-injected run: the migration can fail (dst dead or partitioned away
  // for the whole retransmission budget). The thread is still on src then —
  // flip the descriptors back, leaving a correct dst->src hint in place of
  // the speculative resident entry.
  const rpc::TravelResult r = rpc_->Travel(dst, payload);
  if (r.status != rpc::SendStatus::kOk) {
    tables_[static_cast<size_t>(dst)]->SetForward(t, src);
    tables_[static_cast<size_t>(src)]->SetResident(t);
    t->header_.owner = src;
    return Status::kUnreachable;
  }
  ++thread_migrations_;
  migration_matrix_[static_cast<size_t>(src) * static_cast<size_t>(nodes()) +
                    static_cast<size_t>(dst)] += 1;
  for (RuntimeObserver* o : observers_) {
    o->OnThreadMigrate(depart, src, dst, t->fiber_->id, payload);
  }
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("amber.migration.latency").Record(static_cast<double>(sim_->Now() - depart));
    metrics_->GetCounter("amber.migration.bytes").Add(payload);
  }
  return Status::kOk;
}

void Runtime::EnsureResident(Object* obj, int64_t payload_bytes) {
  if (obj == nullptr) {
    return;
  }
  ObjectHeader& h = obj->header_;
  if (h.IsStackLocal()) {
    return;
  }
  ThreadObject* t = current_thread();
  if (t->resolving_) {
    return;  // the outer resolution loop is already chasing
  }
  t->resolving_ = true;
  const bool faulty = rpc_->reliability_enabled();
  // (node, stale hint) pairs visited on the way, for path compaction.
  std::vector<std::pair<NodeId, NodeId>> visited;
  int hops = 0;
  int failures = 0;  // consecutive unreachable rounds (fault-injected runs)
  for (;;) {
    const NodeId cur = here();
    const Descriptor d = tables_[static_cast<size_t>(cur)]->Lookup(obj);
    if (d.state == Residency::kResident || d.state == Residency::kReplica) {
      break;
    }
    NodeId target;
    if (d.state == Residency::kRemoteHint) {
      target = d.forward;
    } else {
      const NodeId home = gas_->HomeOf(obj);
      AMBER_CHECK(home != kNoNode) << "reference outside the object space";
      AMBER_CHECK(home != cur) << "dangling object reference (home has no descriptor)";
      target = home;
    }
    if (h.IsImmutable()) {
      // Immutable objects replicate to the reader instead of pulling the
      // reader to them (§2.3).
      AMBER_LOG(kTrace) << "EnsureResident: fetch replica of " << obj << " via " << target;
      if (FetchReplica(obj, target) != Status::kOk) {
        HandleUnreachable(obj, target, ++failures);
      }
      continue;
    }
    if (hops > 0) {
      ++forward_hops_;
    }
    ++hops;
    AMBER_CHECK(faulty || hops <= 2 * nodes() + 4) << "forwarding chain did not terminate";
    AMBER_LOG(kTrace) << "EnsureResident: chase " << obj << " " << cur << " -> " << target;
    if (TravelThread(target, payload_bytes) != Status::kOk) {
      // The hop target is unreachable (crashed or partitioned away). Repair
      // the chain: probe the nodes that *are* reachable for the object and
      // re-aim the local hint past the dead node. If nobody reachable holds
      // it, the object itself is unavailable — failure contract.
      const NodeId found = BroadcastLocate(obj);
      if (found != kNoNode) {
        if (found != target) {
          AMBER_LOG(kTrace) << "EnsureResident: repair " << obj << " hint " << target << " -> "
                            << found;
          tables_[static_cast<size_t>(cur)]->SetForward(obj, found);
        }
        failures = 0;  // the object is reachable again; re-chase
        continue;
      }
      HandleUnreachable(obj, target, ++failures);
      continue;
    }
    failures = 0;
    visited.emplace_back(cur, target);
  }
  if (hops > 0 && metrics_ != nullptr) {
    metrics_->GetHistogram("amber.forward.chain").Record(static_cast<double>(hops));
  }
  // Path compaction (§3.3): every node along the chain learns the final
  // location, via asynchronous hint updates.
  const NodeId final_node = here();
  for (const auto& [v, hint] : visited) {
    if (v != final_node && hint != final_node) {
      tables_[static_cast<size_t>(v)]->SetForward(obj, final_node);
      net_->Send(final_node, v, kHintUpdateBytes, sim_->Now());
    }
  }
  t->resolving_ = false;
}

NodeId Runtime::ResolveLocation(Object* obj) {
  const NodeId cur = here();
  Descriptor d = tables_[static_cast<size_t>(cur)]->Lookup(obj);
  if (d.state == Residency::kResident) {
    return cur;
  }
  NodeId target;
  if (d.state == Residency::kRemoteHint ||
      (d.state == Residency::kReplica && d.forward != kNoNode)) {
    // A replica remembers where its bytes came from — a trail toward the
    // primary even when this node never held a forwarding entry.
    target = d.forward;
  } else {
    const NodeId home = gas_->HomeOf(obj);
    AMBER_CHECK(home != kNoNode) << "reference outside the object space";
    AMBER_CHECK(home != cur || d.state == Residency::kReplica)
        << "dangling object reference (home has no descriptor)";
    target = home;
  }
  int hops = 0;
  std::vector<NodeId> visited{cur};
  for (;;) {
    AMBER_CHECK(++hops <= 2 * nodes() + 4) << "forwarding chain did not terminate";
    if (target == cur) {
      // A remote hint pointed back here; re-read our own table.
      d = tables_[static_cast<size_t>(cur)]->Lookup(obj);
      if (d.state == Residency::kResident) {
        target = cur;
        break;
      }
      AMBER_CHECK(d.state == Residency::kRemoteHint ||
                  (d.state == Residency::kReplica && d.forward != kNoNode))
          << "location chain stuck: self-lookup state=" << static_cast<int>(d.state)
          << " node=" << cur;
      target = d.forward;
      continue;
    }
    bool found = false;
    NodeId next = kNoNode;
    const NodeId probe = target;
    const rpc::RoundtripResult rr =
        rpc_->Roundtrip(probe, kControlBytes, [this, obj, probe, &found, &next]() -> int64_t {
          const Descriptor dd = tables_[static_cast<size_t>(probe)]->Lookup(obj);
          if (dd.state == Residency::kResident) {
            found = true;
          } else if (dd.state == Residency::kRemoteHint ||
                     (dd.state == Residency::kReplica && dd.forward != kNoNode)) {
            next = dd.forward;
          } else {
            next = gas_->HomeOf(obj);
          }
          return kControlBytes;
        });
    if (rr.status != rpc::SendStatus::kOk) {
      return kNoNode;  // probe unreachable (fault-injected runs only)
    }
    if (found) {
      break;
    }
    AMBER_CHECK(next != kNoNode);
    visited.push_back(probe);
    target = next;
  }
  // Path compaction for the nodes we probed. A node holding a replica keeps
  // it (the bytes stay useful for immutable reads); only its primary hint
  // is refreshed.
  for (NodeId v : visited) {
    if (v == target) {
      continue;
    }
    if (tables_[static_cast<size_t>(v)]->Lookup(obj).state == Residency::kReplica) {
      tables_[static_cast<size_t>(v)]->SetReplica(obj, target);
    } else {
      tables_[static_cast<size_t>(v)]->SetForward(obj, target);
    }
  }
  return target;
}

NodeId Runtime::BroadcastLocate(Object* obj) {
  const NodeId cur = here();
  if (tables_[static_cast<size_t>(cur)]->IsResident(obj)) {
    return cur;
  }
  for (NodeId n = 0; n < nodes(); ++n) {
    if (n == cur) {
      continue;
    }
    // Ask the membership service, not the injector: skip peers whose
    // heartbeat lease has expired instead of burning a retransmission
    // budget on each. A dead-but-not-yet-suspected peer still costs one
    // probe, but the transport's own suspicion check cuts that short as
    // soon as the lease runs out mid-probe.
    if (membership_ != nullptr && membership_->Suspects(cur, n)) {
      continue;
    }
    bool resident = false;
    const rpc::RoundtripResult rr =
        rpc_->Roundtrip(n, kControlBytes, [this, obj, n, &resident]() -> int64_t {
          resident = tables_[static_cast<size_t>(n)]->IsResident(obj);
          return kControlBytes;
        });
    if (rr.status == rpc::SendStatus::kOk && resident) {
      return n;
    }
  }
  return kNoNode;
}

void Runtime::HandleUnreachable(Object* obj, NodeId node, int attempts) {
  if (metrics_ != nullptr) {
    // Labelled with the chased object's creation-sequence id alongside the
    // dead node (pointers would not be stable across runs), so the counter
    // says *what* was unreachable, not just where.
    std::string label = "node" + std::to_string(node);
    if (const auto it = obj_seq_.find(obj); it != obj_seq_.end()) {
      label = "obj" + std::to_string(it->second) + "@" + label;
    }
    metrics_->GetCounter("fault.unreachable", label).Add();
  }
  FailureAction action = FailureAction::kAbort;
  if (failure_handler_) {
    action = failure_handler_(FailureEvent{Status::kUnreachable, obj, node, attempts});
  }
  if (action == FailureAction::kAbort) {
    AMBER_CHECK(false) << "object " << obj << " unreachable: node " << node
                  << " is down or partitioned away (after " << attempts
                  << " repair rounds); install a FailureHandler to retry";
  }
  if (action == FailureAction::kRecover && RecoverObject(obj, node)) {
    return;  // the object has a live home again; the caller re-probes it
  }
  // kRetry (or an unrecoverable object under kRecover): back off one
  // retransmission-timeout before re-probing, so a crashed node gets a
  // chance to restart (or a partition to heal).
  sim::Fiber* self = sim_->current();
  const Duration backoff = rpc_->retry_policy().timeout_cap;
  const Time resume = sim_->Now() + backoff;
  for (RuntimeObserver* o : observers_) {
    o->OnFailureBackoff(sim_->Now(), here(), self->id, backoff);
  }
  sim_->Post(resume, [this, self] { sim_->Wake(self, sim_->Now()); });
  sim_->Block();
}

Status Runtime::FetchReplica(Object* obj, NodeId from) {
  const NodeId cur = here();
  if (metrics_ != nullptr) {
    metrics_->GetCounter("amber.replica.fetches").Add();
  }
  NodeId target = from;
  int hops = 0;
  const int64_t obj_bytes = static_cast<int64_t>(obj->header_.size);
  for (;;) {
    AMBER_CHECK(++hops <= 2 * nodes() + 4) << "replica fetch chain did not terminate";
    AMBER_LOG(kTrace) << "FetchReplica: " << obj << " probe " << target;
    bool found = false;
    NodeId next = kNoNode;
    const NodeId probe = target;
    const rpc::RoundtripResult rr =
        rpc_->Roundtrip(probe, kControlBytes,
                        [this, obj, probe, obj_bytes, &found, &next]() -> int64_t {
                          const Descriptor dd = tables_[static_cast<size_t>(probe)]->Lookup(obj);
                          if (dd.state == Residency::kResident || dd.state == Residency::kReplica) {
                            found = true;
                            return kControlBytes + obj_bytes;  // reply carries the object
                          }
                          next = dd.state == Residency::kRemoteHint ? dd.forward
                                                                    : gas_->HomeOf(obj);
                          return kControlBytes;
                        });
    if (rr.status != rpc::SendStatus::kOk) {
      return Status::kUnreachable;  // holder unreachable (fault-injected runs)
    }
    if (found) {
      break;
    }
    AMBER_CHECK(next != kNoNode && next != probe);
    target = next;
  }
  // Unmarshal locally (the real copy through a wire buffer).
  sim_->Charge(cost().MarshalCost(obj_bytes));
  rpc::WireBuffer wb;
  wb.PutBytes(obj, obj->header_.size);
  sim_->Sync();
  // Two threads on one node can fetch concurrently; both pay the fetch but
  // only one install is recorded. A stale forwarding hint is overwritten —
  // the replica supersedes it.
  const Residency st = tables_[static_cast<size_t>(cur)]->Lookup(obj).state;
  if (st != Residency::kReplica && st != Residency::kResident) {
    tables_[static_cast<size_t>(cur)]->SetReplica(obj, target != cur ? target : kNoNode);
    ++replicas_installed_;
    for (RuntimeObserver* o : observers_) {
      o->OnReplicaInstall(sim_->Now(), obj, cur);
    }
  }
  return Status::kOk;
}

// --- Mobility -----------------------------------------------------------------------

void Runtime::CollectClosure(Object* obj, std::vector<Object*>* out) {
  out->push_back(obj);
  for (Object* c = obj->header_.first_child; c != nullptr; c = c->header_.next_sibling) {
    CollectClosure(c, out);
  }
}

int64_t Runtime::ClosureBytes(Object* obj) {
  std::vector<Object*> closure;
  CollectClosure(obj->AmberPrimary(), &closure);
  int64_t total = 0;
  for (Object* o : closure) {
    total += static_cast<int64_t>(o->header_.size) + o->AmberPayloadBytes() +
             kPerObjectMoveOverhead;
  }
  return total;
}

int64_t Runtime::FlipDescriptorsForMove(const std::vector<Object*>& closure, NodeId src,
                                        NodeId dst) {
  int64_t total = 0;
  for (Object* o : closure) {
    tables_[static_cast<size_t>(src)]->SetForward(o, dst);
    tables_[static_cast<size_t>(dst)]->SetResident(o);
    o->header_.owner = dst;
    total += static_cast<int64_t>(o->header_.size) + o->AmberPayloadBytes() +
             kPerObjectMoveOverhead;
  }
  return total;
}

uint64_t Runtime::SerializeClosure(const std::vector<Object*>& closure) {
  rpc::WireBuffer wb;
  for (Object* o : closure) {
    wb.PutPointer(o);
    wb.PutBytes(o, o->header_.size);
  }
  return wb.Checksum();
}

Status Runtime::MoveTo(Object* obj, NodeId dst) {
  AMBER_CHECK(obj != nullptr);
  AMBER_CHECK(dst >= 0 && dst < nodes());
  obj = obj->AmberPrimary();
  AMBER_CHECK(obj != nullptr) << "cannot move a stack-local object";
  ObjectHeader& h = obj->header_;
  AMBER_CHECK(!h.IsThread()) << "thread objects move with their thread";
  AMBER_CHECK(h.attach_parent == nullptr) << "unattach before moving an attached object";
  sim_->Sync();

  if (h.IsImmutable()) {
    // §2.3: "Invoking MoveTo on an immutable object causes the object to be
    // copied rather than moved."
    return ReplicateTo(obj, dst);
  }

  const bool faulty = rpc_->reliability_enabled();
  for (int attempt = 0;; ++attempt) {
    if (faulty && attempt > 2 * nodes() + 4) {
      // The mover lost every race (or the object keeps dodging through a
      // flaky cluster). Typed give-up instead of a panic: the object is
      // still consistent wherever it is.
      return Status::kTimeout;
    }
    AMBER_CHECK(attempt <= 2 * nodes() + 4) << "move could not catch the object";
    AMBER_LOG(kTrace) << "MoveTo: attempt " << attempt << " obj " << obj << " dst " << dst;
    const NodeId owner = ResolveLocation(obj);
    if (owner == kNoNode) {
      return Status::kUnreachable;  // fault-injected runs only
    }
    if (owner == dst) {
      return Status::kOk;
    }
    if (membership_ != nullptr && membership_->Suspects(here(), dst)) {
      return Status::kUnreachable;  // destination's heartbeat lease expired
    }
    if (owner == here()) {
      return MoveOutLocal(obj, dst);
    }
    bool accepted = false;
    const Status s = RequestRemoteMove(obj, owner, dst, &accepted);
    if (s != Status::kOk) {
      return s;
    }
    if (accepted) {
      return Status::kOk;
    }
  }
}

void Runtime::MaybePolicyPull(Object* primary) {
  if (primary == nullptr) {
    return;
  }
  Object* p = primary->AmberPrimary();
  if (p == nullptr) {
    return;  // stack-local: lives in its thread's frame, nothing to place
  }
  ObjectHeader& h = p->header_;
  if (h.IsThread() || h.IsImmutable()) {
    return;  // threads move with their fibers; immutables replicate to readers
  }
  ThreadObject* t = current_thread();
  if (t->resolving_) {
    return;  // already inside a residency resolution — don't recurse
  }
  const NodeId cur = here();
  if (tables_[static_cast<size_t>(cur)]->IsResident(p)) {
    return;  // already local: the residency check will be free
  }
  // The movable unit is the attach-group root: attached children cannot be
  // MoveTo'd alone, the group migrates or stays together.
  Object* root = p;
  while (root->header_.attach_parent != nullptr) {
    root = root->header_.attach_parent;
  }
  if (root->header_.IsThread() || root->header_.IsImmutable()) {
    return;
  }
  if (!policy_->ShouldPull(root, p, cur, sim_->Now())) {
    return;
  }
  const Time start = sim_->Now();
  const NodeId src = root->header_.owner;
  // Suppress the context-switch-in residency chase while the pull is in
  // flight: the top frame is the object being pulled, and chasing it from
  // ResumeHook would migrate this thread toward the moving object mid-pull.
  t->resolving_ = true;
  const Status s = MoveTo(root, cur);
  t->resolving_ = false;
  const bool ok = s == Status::kOk;
  if (metrics_ != nullptr) {
    metrics_->GetCounter(ok ? "policy.migrations" : "policy.migrations.failed", cur).Add();
  }
  if (!observers_.empty()) {
    telemetry::ScopedWallTimer fanout(telemetry::Bucket::kObserverFanout);
    const Time now = sim_->Now();
    for (RuntimeObserver* o : observers_) {
      o->OnPolicyMigration(now, root, src, cur, ok, now - start);
    }
  }
  policy_->OnPullResult(root, cur, ok);
}

Status Runtime::MoveOutLocal(Object* obj, NodeId dst) {
  const NodeId src = here();
  const Time move_start = metrics_ != nullptr ? sim_->Now() : 0;
  std::vector<Object*> closure;
  CollectClosure(obj, &closure);
  sim_->Charge(cost().move_setup);
  sim_->Sync();
  // §3.5 order: mark non-resident, then preempt every processor on this node
  // so running threads make a fresh residency check, then transfer.
  const int64_t total = FlipDescriptorsForMove(closure, src, dst);
  sim_->RequestPreempt(src);
  SerializeClosure(closure);
  // SendBulk charges this thread for marshalling the payload, then occupies
  // the wire; install completes after the destination's install cost.
  sim::Fiber* self = sim_->current();
  if (rpc_->reliability_enabled()) {
    const net::TxResult tx = rpc_->SendBulkTracked(dst, total, nullptr);
    if (!tx.delivered) {
      // The transfer was lost (destination crashed or link cut). Restore the
      // closure at the source — the speculative resident entries at dst
      // become correct dst->src hints — and surface the detection latency as
      // one retransmission-timeout of blocking (the bulk protocol's ack
      // timer).
      for (Object* o : closure) {
        tables_[static_cast<size_t>(dst)]->SetForward(o, src);
        tables_[static_cast<size_t>(src)]->SetResident(o);
        o->header_.owner = src;
      }
      const Duration ack_timeout = rpc_->retry_policy().timeout;
      const Time give_up = sim_->Now() + ack_timeout;
      for (RuntimeObserver* ob : observers_) {
        ob->OnFailureBackoff(sim_->Now(), src, self->id, ack_timeout);
      }
      sim_->Post(give_up, [this, self] { sim_->Wake(self, sim_->Now()); });
      sim_->Block();
      return Status::kUnreachable;
    }
    const Time installed = tx.arrival + cost().move_install;
    sim_->Wake(self, installed);
    sim_->Block();
  } else {
    const Time arrive = rpc_->SendBulk(dst, total, nullptr);
    const Time installed = arrive + cost().move_install;
    sim_->Wake(self, installed);
    sim_->Block();
  }
  ++objects_moved_;
  for (RuntimeObserver* o : observers_) {
    o->OnObjectMove(sim_->Now(), obj, src, dst, total);
  }
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("amber.move.latency").Record(static_cast<double>(sim_->Now() - move_start));
    metrics_->GetCounter("amber.move.bytes").Add(total);
  }
  MaybeRecheckpoint(obj);
  return Status::kOk;
}

Status Runtime::RequestRemoteMove(Object* obj, NodeId owner, NodeId dst, bool* accepted_out) {
  const NodeId cur = here();
  AMBER_CHECK(owner != cur);
  sim::Fiber* self = sim_->current();
  const Time move_start = metrics_ != nullptr ? sim_->Now() : 0;
  int64_t moved_bytes = 0;
  bool accepted = false;
  if (rpc_->reliability_enabled()) {
    // Fault-injected run: the whole exchange rides the reliable roundtrip
    // (the control request or its ack can be lost). The owner-side bulk
    // transfer is tracked; a lost transfer reverts the move at the owner and
    // NACKs, so the requester re-resolves — the source's ack timeout is
    // folded into the control reply (oracle shortcut, see docs/FAULTS.md).
    const rpc::RoundtripResult rr = rpc_->Roundtrip(
        owner, kControlBytes, [this, obj, owner, dst, &accepted, &moved_bytes]() -> int64_t {
          if (!tables_[static_cast<size_t>(owner)]->IsResident(obj)) {
            return kControlBytes;  // the object moved on; NACK
          }
          std::vector<Object*> closure;
          CollectClosure(obj, &closure);
          const int64_t total = FlipDescriptorsForMove(closure, owner, dst);
          sim_->RequestPreempt(owner);
          SerializeClosure(closure);
          const Time depart = sim_->Now() + cost().move_setup + cost().MarshalCost(total) +
                              cost().rpc_send_software;
          const net::TxResult tx = net_->SendBulkTracked(owner, dst, total, depart, nullptr);
          if (!tx.delivered) {
            // Transfer lost: the object never left. Flip back.
            for (Object* o : closure) {
              tables_[static_cast<size_t>(dst)]->SetForward(o, owner);
              tables_[static_cast<size_t>(owner)]->SetResident(o);
              o->header_.owner = owner;
            }
            return kControlBytes;
          }
          accepted = true;
          moved_bytes = total;
          ++objects_moved_;
          for (RuntimeObserver* ob : observers_) {
            ob->OnObjectMove(sim_->Now(), obj, owner, dst, total);
          }
          return kControlBytes;
        });
    if (rr.status != rpc::SendStatus::kOk) {
      if (accepted) {
        // The owner committed the move (descriptors flipped, transfer
        // delivered) but every reply copy was lost: a lost ack, not a lost
        // move. The in-simulator flag is the oracle; it is stable here
        // because the transport cancels the roundtrip on give-up, so the
        // service can no longer run after this point.
        if (metrics_ != nullptr) {
          metrics_->GetHistogram("amber.move.latency")
              .Record(static_cast<double>(sim_->Now() - move_start));
          metrics_->GetCounter("amber.move.bytes").Add(moved_bytes);
        }
        MaybeRecheckpoint(obj);
        *accepted_out = true;
        return Status::kOk;
      }
      *accepted_out = false;
      return Status::kUnreachable;  // owner unreachable
    }
    if (accepted && metrics_ != nullptr) {
      metrics_->GetHistogram("amber.move.latency").Record(static_cast<double>(sim_->Now() - move_start));
      metrics_->GetCounter("amber.move.bytes").Add(moved_bytes);
    }
    if (accepted) {
      MaybeRecheckpoint(obj);
    }
    *accepted_out = accepted;
    return Status::kOk;
  }
  // Charge the request like any control send, then run the source side of
  // the move at the owner (event context, latency model), then block until
  // the destination's install acknowledgement.
  sim_->Charge(cost().MarshalCost(kControlBytes) + cost().rpc_send_software);
  sim_->Sync();
  net_->Send(cur, owner, kControlBytes, sim_->Now(), [this, obj, owner, dst, cur, self, &accepted,
                                                      &moved_bytes] {
    if (!tables_[static_cast<size_t>(owner)]->IsResident(obj)) {
      // The object moved on; NACK so the requester re-resolves.
      const Time back = net_->Send(owner, cur, kControlBytes, sim_->Now());
      sim_->Wake(self, back);
      return;
    }
    accepted = true;
    std::vector<Object*> closure;
    CollectClosure(obj, &closure);
    const int64_t total = FlipDescriptorsForMove(closure, owner, dst);
    moved_bytes = total;
    sim_->RequestPreempt(owner);
    SerializeClosure(closure);
    const Time depart =
        sim_->Now() + cost().move_setup + cost().MarshalCost(total) + cost().rpc_send_software;
    const Time arrive = net_->SendBulk(owner, dst, total, depart, nullptr);
    const Time installed = arrive + cost().move_install;
    if (dst == cur) {
      sim_->Wake(self, installed);
    } else {
      const Time ack = net_->Send(dst, cur, kControlBytes, installed);
      sim_->Wake(self, ack);
    }
    ++objects_moved_;
    for (RuntimeObserver* ob : observers_) {
      ob->OnObjectMove(sim_->Now(), obj, owner, dst, total);
    }
  });
  sim_->Block();
  if (accepted && metrics_ != nullptr) {
    metrics_->GetHistogram("amber.move.latency").Record(static_cast<double>(sim_->Now() - move_start));
    metrics_->GetCounter("amber.move.bytes").Add(moved_bytes);
  }
  *accepted_out = accepted;
  return Status::kOk;
}

Status Runtime::ReplicateTo(Object* obj, NodeId dst) {
  if (tables_[static_cast<size_t>(dst)]->Lookup(obj).state != Residency::kUninitialized) {
    return Status::kOk;  // dst already holds the object or a replica
  }
  const NodeId cur = here();
  const int64_t obj_bytes = static_cast<int64_t>(obj->header_.size);
  sim::Fiber* self = sim_->current();
  const bool faulty = rpc_->reliability_enabled();
  if (membership_ != nullptr && membership_->Suspects(cur, dst)) {
    return Status::kUnreachable;  // destination's heartbeat lease expired
  }
  if (tables_[static_cast<size_t>(cur)]->Lookup(obj).state != Residency::kUninitialized &&
      dst != cur) {
    // We hold the bytes: bulk-copy them to dst and install a replica.
    SerializeClosure({obj});
    if (faulty) {
      const net::TxResult tx = rpc_->SendBulkTracked(dst, obj_bytes, nullptr);
      if (!tx.delivered) {
        // Copy lost; dst never saw it. Ride out the ack timeout, report.
        const Duration ack_timeout = rpc_->retry_policy().timeout;
        const Time give_up = sim_->Now() + ack_timeout;
        for (RuntimeObserver* o : observers_) {
          o->OnFailureBackoff(sim_->Now(), cur, self->id, ack_timeout);
        }
        sim_->Post(give_up, [this, self] { sim_->Wake(self, sim_->Now()); });
        sim_->Block();
        return Status::kUnreachable;
      }
      const Time installed = tx.arrival + cost().move_install;
      tables_[static_cast<size_t>(dst)]->SetReplica(obj, cur);
      ++replicas_installed_;
      for (RuntimeObserver* o : observers_) {
        o->OnReplicaInstall(installed, obj, dst);
      }
      sim_->Wake(self, installed);
      sim_->Block();
      return Status::kOk;
    }
    const Time arrive = rpc_->SendBulk(dst, obj_bytes, nullptr);
    const Time installed = arrive + cost().move_install;
    tables_[static_cast<size_t>(dst)]->SetReplica(obj, cur);
    ++replicas_installed_;
    for (RuntimeObserver* o : observers_) {
      o->OnReplicaInstall(installed, obj, dst);
    }
    sim_->Wake(self, installed);
    sim_->Block();
    return Status::kOk;
  }
  // Find a holder, then have it copy to dst.
  const NodeId holder = ResolveLocation(obj);
  if (holder == kNoNode) {
    return Status::kUnreachable;  // fault-injected runs only
  }
  if (holder == dst) {
    return Status::kOk;
  }
  if (faulty) {
    // Reliable control roundtrip to the holder; the holder-side copy to dst
    // is tracked and only installs the replica when it actually arrives.
    bool installed_ok = false;
    const rpc::RoundtripResult rr = rpc_->Roundtrip(
        holder, kControlBytes, [this, obj, holder, dst, obj_bytes, &installed_ok]() -> int64_t {
          SerializeClosure({obj});
          const Time depart =
              sim_->Now() + cost().MarshalCost(obj_bytes) + cost().rpc_send_software;
          const net::TxResult tx = net_->SendBulkTracked(holder, dst, obj_bytes, depart, nullptr);
          if (tx.delivered) {
            const Time installed = tx.arrival + cost().move_install;
            tables_[static_cast<size_t>(dst)]->SetReplica(obj, holder);
            ++replicas_installed_;
            installed_ok = true;
            for (RuntimeObserver* o : observers_) {
              o->OnReplicaInstall(installed, obj, dst);
            }
          }
          return kControlBytes;
        });
    if (rr.status != rpc::SendStatus::kOk) {
      return Status::kUnreachable;
    }
    return installed_ok ? Status::kOk : Status::kUnreachable;
  }
  sim_->Charge(cost().MarshalCost(kControlBytes) + cost().rpc_send_software);
  sim_->Sync();
  net_->Send(cur, holder, kControlBytes, sim_->Now(), [this, obj, holder, dst, cur, self,
                                                       obj_bytes] {
    SerializeClosure({obj});
    const Time depart = sim_->Now() + cost().MarshalCost(obj_bytes) + cost().rpc_send_software;
    const Time arrive = net_->SendBulk(holder, dst, obj_bytes, depart, nullptr);
    const Time installed = arrive + cost().move_install;
    tables_[static_cast<size_t>(dst)]->SetReplica(obj, holder);
    ++replicas_installed_;
    for (RuntimeObserver* o : observers_) {
      o->OnReplicaInstall(installed, obj, dst);
    }
    if (dst == cur) {
      sim_->Wake(self, installed);
    } else {
      const Time ack = net_->Send(dst, cur, kControlBytes, installed);
      sim_->Wake(self, ack);
    }
  });
  sim_->Block();
  return Status::kOk;
}

NodeId Runtime::Locate(Object* obj) {
  AMBER_CHECK(obj != nullptr);
  obj = obj->AmberPrimary();
  if (obj == nullptr) {
    return here();  // stack-local: wherever this thread is
  }
  sim_->Charge(cost().local_invoke);
  sim_->Sync();
  return ResolveLocation(obj);
}

void Runtime::Attach(Object* child, Object* parent) {
  AMBER_CHECK(child != nullptr && parent != nullptr);
  child = child->AmberPrimary();
  parent = parent->AmberPrimary();
  AMBER_CHECK(child != nullptr && parent != nullptr) << "cannot attach stack-local objects";
  AMBER_CHECK(child != parent);
  AMBER_CHECK(!child->header_.IsThread() && !parent->header_.IsThread());
  AMBER_CHECK(!child->header_.IsImmutable()) << "immutable objects replicate; do not attach them";
  AMBER_CHECK(child->header_.attach_parent == nullptr) << "already attached";
  // Reject cycles: parent must not be a descendant of child.
  for (Object* a = parent; a != nullptr; a = a->header_.attach_parent) {
    AMBER_CHECK(a != child) << "attachment cycle";
  }
  sim_->Charge(cost().local_invoke);
  sim_->Sync();
  // Attachment guarantees co-location (§2.3): bring the child to the parent.
  // Under fault injection the parent's node may be down or the move may be
  // lost; treat that like any unreachable invocation target (failure
  // handler + backoff) instead of panicking — fault-free runs never loop.
  int attach_failures = 0;
  for (;;) {
    const NodeId p = ResolveLocation(parent);
    if (p == kNoNode) {
      // Even the parent's location probe failed (its chain runs through a
      // dead node); back off and re-resolve like any other unreachable.
      HandleUnreachable(parent, gas_->HomeOf(parent), ++attach_failures);
      continue;
    }
    if (ResolveLocation(child) == p || MoveTo(child, p) == Status::kOk) {
      break;
    }
    HandleUnreachable(parent, p, ++attach_failures);
  }
  sim_->Sync();
  child->header_.attach_parent = parent;
  child->header_.next_sibling = parent->header_.first_child;
  parent->header_.first_child = child;
}

void Runtime::Unattach(Object* child) {
  AMBER_CHECK(child != nullptr);
  child = child->AmberPrimary();
  AMBER_CHECK(child != nullptr);
  Object* parent = child->header_.attach_parent;
  AMBER_CHECK(parent != nullptr) << "object is not attached";
  sim_->Charge(cost().local_invoke);
  sim_->Sync();
  Object** link = &parent->header_.first_child;
  while (*link != child) {
    AMBER_CHECK(*link != nullptr) << "attachment list corrupt";
    link = &(*link)->header_.next_sibling;
  }
  *link = child->header_.next_sibling;
  child->header_.attach_parent = nullptr;
  child->header_.next_sibling = nullptr;
}

void Runtime::MakeImmutable(Object* obj) {
  AMBER_CHECK(obj != nullptr);
  obj = obj->AmberPrimary();
  AMBER_CHECK(obj != nullptr) << "cannot mark a stack-local object immutable";
  AMBER_CHECK(!obj->header_.IsThread());
  AMBER_CHECK(obj->header_.first_child == nullptr && obj->header_.attach_parent == nullptr)
      << "detach before marking immutable";
  sim_->Charge(cost().local_invoke);
  sim_->Sync();
  obj->header_.flags |= kObjImmutable;
}

NodeId Runtime::OwnerOf(const Object* obj) const {
  const Object* p = const_cast<Object*>(obj)->AmberPrimary();
  return p != nullptr ? p->amber_header().owner : kNoNode;
}

// --- Crash recovery / planned shutdown (docs/FAULTS.md) ------------------------------

void Runtime::SetRecoverable(Object* obj) {
  AMBER_CHECK(obj != nullptr);
  obj = obj->AmberPrimary();
  AMBER_CHECK(obj != nullptr) << "stack-local objects are not recoverable";
  ObjectHeader& h = obj->header_;
  AMBER_CHECK(!h.IsThread()) << "threads are not recoverable state";
  AMBER_CHECK(!h.IsImmutable()) << "immutable objects already recover via replicas";
  AMBER_CHECK(h.attach_parent == nullptr && h.first_child == nullptr)
      << "a checkpoint covers a single unattached object";
  sim_->Charge(cost().local_invoke);
  sim_->Sync();
  h.flags |= kObjRecoverable;
  if (injector_ != nullptr && injector_->active()) {
    CheckpointObject(obj);  // best-effort initial restore point
  }
}

bool Runtime::CheckpointObject(Object* obj) {
  AMBER_CHECK(obj != nullptr);
  obj = obj->AmberPrimary();
  AMBER_CHECK(obj != nullptr && obj->header_.IsRecoverable())
      << "CheckpointObject requires SetRecoverable";
  if (injector_ == nullptr || !injector_->active()) {
    return true;  // fault-free run: nothing to survive, nothing shipped
  }
  sim_->Sync();
  const NodeId owner = obj->header_.owner;
  const NodeId cur = here();
  // Buddy election: the lowest node, other than the owner, whose heartbeat
  // lease is intact — deterministic given the suspicion state.
  NodeId buddy = kNoNode;
  for (NodeId n = 0; n < nodes(); ++n) {
    if (n == owner || (membership_ != nullptr && membership_->Suspects(cur, n))) {
      continue;
    }
    buddy = n;
    break;
  }
  if (buddy == kNoNode) {
    return false;  // nobody live to hold the checkpoint
  }
  std::vector<uint8_t> bytes;
  obj->AmberSaveState(&bytes);
  // The checkpoint travels owner -> buddy as a tracked background bulk
  // transfer: it takes fault draws like any frame and is recorded only if
  // it actually arrived — a lost checkpoint leaves the previous one valid.
  const int64_t wire = kControlBytes + static_cast<int64_t>(bytes.size());
  const net::TxResult tx = net_->SendBulkTracked(owner, buddy, wire, sim_->Now(), nullptr);
  if (!tx.delivered) {
    return false;
  }
  CheckpointRecord& rec = checkpoints_[obj];
  rec.bytes = std::move(bytes);
  rec.buddy = buddy;
  rec.when = sim_->Now();
  if (metrics_ != nullptr) {
    metrics_->GetCounter("recovery.checkpoints").Add();
    metrics_->GetCounter("recovery.checkpoint.bytes").Add(wire);
  }
  return true;
}

void Runtime::MaybeRecheckpoint(Object* obj) {
  // Quiescent point: the move just committed and no invocation is running
  // inside the object. Only meaningful under an active fault plan.
  if (membership_ == nullptr || !obj->header_.IsRecoverable()) {
    return;
  }
  CheckpointObject(obj);
}

bool Runtime::RecoverObject(Object* obj, NodeId node) {
  if (obj->header_.IsThread()) {
    return false;  // a thread's stack is not recoverable state
  }
  NotifyRecoveryStart(obj);
  const Time start = sim_->Now();
  bool ok = false;
  if (obj->header_.IsImmutable()) {
    ok = RecoverImmutable(obj, node);
  } else if (checkpoints_.find(obj) != checkpoints_.end()) {
    ok = RecoverMutable(obj, node);
  }
  NotifyRecoveryEnd(obj, ok);
  if (ok && metrics_ != nullptr) {
    metrics_->GetHistogram("recovery.latency").Record(static_cast<double>(sim_->Now() - start));
  }
  return ok;
}

bool Runtime::RecoverImmutable(Object* obj, NodeId node) {
  const NodeId cur = here();
  const NodeId dead = obj->header_.owner;
  // Deterministic election: probe the non-suspected nodes in ascending id
  // order for a surviving copy; the lowest holder becomes the new home.
  // Every recovering thread runs the same scan and picks the same winner.
  for (NodeId n = 0; n < nodes(); ++n) {
    if (n == node || n == dead ||
        (membership_ != nullptr && membership_->Suspects(cur, n))) {
      continue;
    }
    bool holds = false;
    if (n == cur) {
      const Residency st = tables_[static_cast<size_t>(cur)]->Lookup(obj).state;
      holds = st == Residency::kReplica || st == Residency::kResident;
    } else {
      const rpc::RoundtripResult rr =
          rpc_->Roundtrip(n, kControlBytes, [this, obj, n, &holds]() -> int64_t {
            const Residency st = tables_[static_cast<size_t>(n)]->Lookup(obj).state;
            holds = st == Residency::kReplica || st == Residency::kResident;
            return kControlBytes;
          });
      if (rr.status != rpc::SendStatus::kOk) {
        continue;  // this candidate is unreachable too; keep scanning
      }
    }
    if (!holds) {
      continue;
    }
    sim_->Sync();
    // Promote the survivor's replica to the primary copy.
    tables_[static_cast<size_t>(n)]->SetResident(obj);
    obj->header_.owner = n;
    if (cur != n && !tables_[static_cast<size_t>(cur)]->IsResident(obj)) {
      tables_[static_cast<size_t>(cur)]->SetForward(obj, n);
    }
    for (RuntimeObserver* o : observers_) {
      o->OnObjectRecovered(sim_->Now(), obj, dead, n, /*from_checkpoint=*/false);
    }
    if (metrics_ != nullptr) {
      metrics_->GetCounter("recovery.rebinds").Add();
    }
    return true;
  }
  return false;  // no surviving copy: unrecoverable until a restart
}

bool Runtime::RecoverMutable(Object* obj, NodeId node) {
  const auto it = checkpoints_.find(obj);
  if (it == checkpoints_.end()) {
    return false;
  }
  const NodeId cur = here();
  const NodeId dead = obj->header_.owner;
  const NodeId buddy = it->second.buddy;
  if (buddy == kNoNode || buddy == node || buddy == dead ||
      (membership_ != nullptr && membership_->Suspects(cur, buddy))) {
    return false;  // the checkpoint died with its holder
  }
  // Restore at the buddy. Idempotent: the restore runs only while the
  // object is still homed at the dead node, so concurrent recoverers agree
  // — the first restore wins and the rest observe the new home.
  bool restored = false;
  auto restore = [this, obj, dead, buddy, &it, &restored] {
    if (obj->header_.owner != dead) {
      restored = true;  // someone already recovered it (and it may have moved on)
      return;
    }
    obj->AmberLoadState(it->second.bytes.data(), it->second.bytes.size());
    tables_[static_cast<size_t>(buddy)]->SetResident(obj);
    obj->header_.owner = buddy;
    restored = true;
  };
  if (buddy == cur) {
    sim_->Charge(cost().move_install);
    sim_->Sync();
    restore();
  } else {
    const rpc::RoundtripResult rr =
        rpc_->Roundtrip(buddy, kControlBytes, [this, obj, &restore]() -> int64_t {
          restore();
          return kControlBytes + static_cast<int64_t>(obj->header_.size);
        });
    if (rr.status != rpc::SendStatus::kOk) {
      return false;
    }
  }
  if (!restored) {
    return false;
  }
  if (cur != buddy && !tables_[static_cast<size_t>(cur)]->IsResident(obj)) {
    tables_[static_cast<size_t>(cur)]->SetForward(obj, buddy);
  }
  for (RuntimeObserver* o : observers_) {
    o->OnObjectRecovered(sim_->Now(), obj, dead, obj->header_.owner, /*from_checkpoint=*/true);
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("recovery.restores").Add();
  }
  // The restored copy is the new authoritative state; its old checkpoint
  // record points at what is now the home. Take a fresh one elsewhere.
  MaybeRecheckpoint(obj);
  return true;
}

int Runtime::DrainNode(NodeId node) {
  AMBER_CHECK(node >= 0 && node < nodes());
  sim_->Charge(cost().local_invoke);
  sim_->Sync();
  const NodeId cur = here();
  // Evacuation targets: every other node whose heartbeat lease is intact.
  std::vector<NodeId> targets;
  for (NodeId n = 0; n < nodes(); ++n) {
    if (n == node || (membership_ != nullptr && membership_->Suspects(cur, n))) {
      continue;
    }
    targets.push_back(n);
  }
  AMBER_CHECK(!targets.empty()) << "no live node to evacuate node " << node << " to";
  // Roots homed on the draining node, in creation order — deterministic,
  // where iterating live_objects_ (a hash set of pointers) would not be.
  std::vector<std::pair<uint64_t, Object*>> roots;
  for (Object* obj : live_objects_) {
    const ObjectHeader& h = obj->header_;
    if (h.IsMember() || h.IsStackLocal() || h.IsThread() || h.attach_parent != nullptr ||
        h.owner != node) {
      continue;  // attached children move with their root; threads follow §3.5
    }
    const auto it = obj_seq_.find(obj);
    roots.emplace_back(it != obj_seq_.end() ? it->second : 0, obj);
  }
  std::sort(roots.begin(), roots.end());
  int moved = 0;
  size_t next_target = 0;
  for (const auto& [seq, obj] : roots) {
    const NodeId dst = targets[next_target % targets.size()];
    Status s;
    if (obj->header_.IsImmutable()) {
      // Re-home the primary copy: replicate to dst, promote that replica,
      // and leave a forwarding hint behind. (Not a replica: the drained
      // node is going away, and the hint keeps the old home resolvable —
      // an immutable primary never moves otherwise, so nobody else knows
      // where it went.)
      s = ReplicateTo(obj, dst);
      if (s == Status::kOk) {
        sim_->Sync();
        tables_[static_cast<size_t>(dst)]->SetResident(obj);
        obj->header_.owner = dst;
        tables_[static_cast<size_t>(node)]->SetForward(obj, dst);
      }
    } else {
      s = MoveTo(obj, dst);
    }
    if (s == Status::kOk) {
      ++moved;
      ++next_target;
    }
  }
  // Kick every processor on the drained node: resident threads re-run the
  // §3.5 residency check on dispatch and chase their objects out.
  sim_->RequestPreempt(node);
  for (RuntimeObserver* o : observers_) {
    o->OnNodeDrained(sim_->Now(), node, moved);
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("drain.objects", node).Add(moved);
  }
  return moved;
}

void Runtime::OnPeerSuspected(Time when, NodeId by, NodeId peer) {
  for (RuntimeObserver* o : observers_) {
    o->OnNodeSuspected(when, by, peer);
  }
  if (metrics_ != nullptr) {
    // Detection quality, graded against the injector's ground truth (the
    // one sanctioned oracle use: tests judge the protocol with it).
    if (!sim_->NodeUp(peer)) {
      metrics_->GetCounter("member.suspicions").Add();
      if (!crash_time_.empty() && crash_time_[static_cast<size_t>(peer)] >= 0) {
        metrics_->GetHistogram("member.detect_latency")
            .Record(static_cast<double>(when - crash_time_[static_cast<size_t>(peer)]));
      }
    } else if (injector_ != nullptr && !injector_->Reachable(by, peer, when)) {
      metrics_->GetCounter("member.suspicions").Add();  // partitioned: genuine
    } else {
      metrics_->GetCounter("member.false_suspicions").Add();
    }
  }
  // Threads homed on the suspected node are *lost*: their joiners must not
  // sleep forever waiting on a node that cannot answer.
  for (ThreadObject* t : threads_) {
    if (!t->finished_ && !t->lost_ && t->header_.owner == peer) {
      t->lost_ = true;
      for (sim::Fiber* w : t->join_waiters_) {
        sim_->Wake(w, when);
      }
      t->join_waiters_.clear();
    }
  }
}

void Runtime::OnPeerTrusted(Time when, NodeId by, NodeId peer) {
  for (RuntimeObserver* o : observers_) {
    o->OnNodeTrusted(when, by, peer);
  }
  // A healed partition (no crash) revives the node's threads: they were
  // never actually dead. After a real restart OnNodeEvent clears them too.
  if (sim_->NodeUp(peer)) {
    for (ThreadObject* t : threads_) {
      if (t->lost_ && t->header_.owner == peer) {
        t->lost_ = false;
      }
    }
  }
}

void Runtime::OnNodeEvent(Time when, NodeId node, bool up) {
  if (!up) {
    crash_time_[static_cast<size_t>(node)] = when;
    return;
  }
  crash_time_[static_cast<size_t>(node)] = Time{-1};
  if (membership_ != nullptr) {
    membership_->OnNodeRestart(when, node);
  }
  // Boot-time repair, run by the restarting node over its own table: while
  // it was down, objects may have moved or been recovered away, leaving
  // stale Resident claims here. Demote them so chases leave immediately —
  // an immutable object's stale copy is still a perfectly good replica.
  DescriptorTable& tab = *tables_[static_cast<size_t>(node)];
  for (Object* obj : live_objects_) {
    const ObjectHeader& h = obj->header_;
    if (h.IsMember() || h.IsStackLocal()) {
      continue;
    }
    if (h.owner != node && tab.Lookup(obj).state == Residency::kResident) {
      if (h.IsImmutable()) {
        tab.SetReplica(obj, h.owner);
      } else {
        tab.SetForward(obj, h.owner);
      }
    }
  }
  // The node's threads resume from the freeze: no longer lost.
  for (ThreadObject* t : threads_) {
    if (t->lost_ && t->header_.owner == node) {
      t->lost_ = false;
    }
  }
}

void Runtime::NotifyRecoveryStart(const Object* obj) {
  if (observers_.empty()) {
    return;
  }
  const ThreadId tid = sim_->current()->id;
  for (RuntimeObserver* o : observers_) {
    o->OnRecoveryStart(sim_->Now(), here(), tid, obj);
  }
}

void Runtime::NotifyRecoveryEnd(const Object* obj, bool ok) {
  if (observers_.empty()) {
    return;
  }
  const ThreadId tid = sim_->current()->id;
  for (RuntimeObserver* o : observers_) {
    o->OnRecoveryEnd(sim_->Now(), here(), tid, obj, ok);
  }
}

// --- Threads -------------------------------------------------------------------------

ThreadObject* Runtime::CreateThread(std::function<void()> body, std::string name, int priority) {
  sim_->Charge(cost().thread_create);
  void* mem = AllocateObjectMemory(sizeof(ThreadObject));
  auto* t = new (mem) ThreadObject();
  FinishObjectConstruction(t);
  t->header_.flags |= kObjThread;
  t->name_ = name.empty() ? "thread-" + std::to_string(threads_.size()) : std::move(name);
  t->body_ = std::move(body);
  void* stack = AllocateSegmentOnCurrentNode(config_.stack_bytes);
  t->stack_base_ = stack;
  t->fiber_ =
      sim_->Spawn(here(), stack, config_.stack_bytes, [this, t] { ThreadMain(t); }, t->name_);
  t->fiber_->user_data = t;
  t->fiber_->priority = priority;
  threads_.push_back(t);
  return t;
}

bool Runtime::JoinWait(ThreadObject* t, bool fail_aware) {
  AMBER_CHECK(t != nullptr);
  AMBER_CHECK(!t->joined_) << "thread joined twice";
  sim_->Charge(cost().join_sync);
  sim_->Sync();
  int failures = 0;
  while (!t->finished_) {
    if (t->lost_) {
      // The thread's node is suspected down: it cannot finish unless that
      // node restarts. TryJoin reports the loss; a plain Join consults the
      // failure handler (backoff-and-recheck, or typed abort).
      if (fail_aware) {
        return false;
      }
      HandleUnreachable(t, t->header_.owner, ++failures);
      continue;
    }
    if (!observers_.empty()) {
      // The join will actually wait: the causal edge is "joiner sleeps until
      // target exits" (the profiler follows the critical path into `t`).
      const ThreadId joiner = sim_->current()->id;
      const ThreadId target = t->fiber_->id;
      for (RuntimeObserver* o : observers_) {
        o->OnThreadJoin(sim_->Now(), here(), joiner, target);
      }
    }
    t->join_waiters_.push_back(sim_->current());
    sim_->Block();
  }
  t->joined_ = true;
  if (!t->reaped_) {
    t->reaped_ = true;
    sim_->DestroyFiber(t->fiber_);
    t->fiber_ = nullptr;
    allocator(gas_->HomeOf(t->stack_base_)).Free(t->stack_base_);
    t->stack_base_ = nullptr;
  }
  return true;
}

void Runtime::SetScheduler(NodeId node, std::unique_ptr<sim::RunQueue> queue) {
  sim_->SetRunQueue(node, std::move(queue));
}

void Runtime::SetObserver(RuntimeObserver* observer) {
  observers_.clear();
  if (observer != nullptr) {
    observers_.push_back(observer);
  }
  UpdateInstrumentation();
}

void Runtime::AddObserver(RuntimeObserver* observer) {
  AMBER_CHECK(observer != nullptr);
  AMBER_CHECK(std::find(observers_.begin(), observers_.end(), observer) == observers_.end())
      << "observer already attached";
  observers_.push_back(observer);
  UpdateInstrumentation();
}

void Runtime::RemoveObserver(RuntimeObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
  UpdateInstrumentation();
}

void Runtime::SetMetrics(metrics::Registry* registry) {
  metrics_ = registry;
  if (registry != nullptr) {
    // Pre-register the live-path families so the document always contains
    // them (at zero) even when the run never hits a path.
    for (NodeId n = 0; n < nodes(); ++n) {
      registry->GetHistogram("amber.invoke.latency.local", n);
      registry->GetHistogram("amber.invoke.latency.remote", n);
      registry->GetHistogram("sched.runqueue.wait", n);
      registry->GetHistogram("sched.runqueue.depth", n);
      registry->GetHistogram("sync.lock.wait", n);
      registry->GetHistogram("rpc.roundtrip.latency", n);
    }
    registry->GetHistogram("amber.migration.latency");
    registry->GetHistogram("amber.move.latency");
    registry->GetHistogram("amber.forward.chain");
    registry->GetHistogram("sync.lock.hold");
    registry->GetCounter("amber.migration.bytes");
    registry->GetCounter("amber.move.bytes");
    registry->GetCounter("amber.replica.fetches");
    registry->GetCounter("sync.condition.wakeups");
  }
  UpdateInstrumentation();
}

void Runtime::SetBlackBox(BlackBox* recorder) {
  if (blackbox_ != nullptr) {
    RemoveObserver(blackbox_);
    SetPanicHook(nullptr);
  }
  blackbox_ = recorder;
  if (recorder == nullptr) {
    return;
  }
  AddObserver(recorder);
  // Any Panic (AMBER_CHECK included, from fiber or event context) flushes
  // the recorder before abort; Panic prints the returned path. The hook
  // never raises virtual time — it only reads recorder + runtime state.
  SetPanicHook([this](const std::string& msg, const char* file, int line) -> std::string {
    if (blackbox_ == nullptr) {
      return "";
    }
    const std::string path = "FDR_" + blackbox_->name() + ".json";
    std::ofstream out(path);
    if (!out) {
      return "";
    }
    std::ostringstream where;
    where << msg << " at " << file << ":" << line;
    blackbox_->WriteDump(out, "panic", where.str());
    return path;
  });
}

std::string Runtime::DumpBlackBox(const std::string& path) {
  if (blackbox_ == nullptr) {
    return "";
  }
  std::ofstream out(path);
  AMBER_CHECK(out) << "cannot open black-box dump path " << path;
  blackbox_->WriteDump(out, "explicit", "");
  return path;
}

void Runtime::SetPlacementPolicy(PlacementHook* policy) {
  AMBER_CHECK(!ran_) << "attach the placement policy before Run()";
  policy_ = policy;
}

void Runtime::SetFaultInjector(fault::Injector* injector) {
  AMBER_CHECK(!ran_) << "attach the fault injector before Run()";
  AMBER_CHECK(injector_ == nullptr || injector == nullptr) << "fault injector already attached";
  injector_ = injector;
  if (injector_ != nullptr) {
    injector_->Attach(sim_.get(), net_.get(), rpc_.get());
    if (injector_->active()) {
      // Real failure detection: a heartbeat/lease membership service whose
      // datagrams ride the same faulty network as everything else. The
      // repair, screening and recovery paths ask *it* who is reachable; the
      // injector stays ground truth for tests and detection-quality metrics
      // only. An empty plan creates none of this (byte-identity contract).
      crash_time_.assign(static_cast<size_t>(nodes()), Time{-1});
      membership_ = std::make_unique<fault::Membership>(sim_.get(), net_.get());
      membership_->SetSuspicionHandler(
          [this](Time when, NodeId by, NodeId peer) { OnPeerSuspected(when, by, peer); });
      membership_->SetTrustHandler(
          [this](Time when, NodeId by, NodeId peer) { OnPeerTrusted(when, by, peer); });
      membership_->Start();
      rpc_->SetSuspicionOracle(
          [this](NodeId src, NodeId dst) { return membership_->Suspects(src, dst); });
      injector_->SetNodeEventHandler(
          [this](Time when, NodeId node, bool up) { OnNodeEvent(when, node, up); });
    }
  }
  UpdateInstrumentation();
}

void Runtime::UpdateInstrumentation() {
  const bool on = !observers_.empty() || metrics_ != nullptr;
  if (on && instr_ == nullptr) {
    instr_ = std::make_unique<Instrumentation>(this);
  }
  sim_->SetSchedObserver(on ? instr_.get() : nullptr);
  rpc_->SetObserver(on ? instr_.get() : nullptr);
  if (injector_ != nullptr) {
    injector_->SetSink(on ? instr_.get() : nullptr);
  }
  if (on) {
    net_->SetMessageObserver(
        [this](Time depart, Time arrive, NodeId src, NodeId dst, int64_t bytes) {
          for (RuntimeObserver* o : observers_) {
            o->OnMessage(depart, arrive, src, dst, bytes);
          }
          if (metrics_ != nullptr) {
            const std::string link = metrics::Registry::LinkLabel(src, dst);
            metrics_->GetCounter("net.link.messages", link).Add();
            metrics_->GetCounter("net.link.bytes", link).Add(bytes);
          }
        });
  } else {
    net_->SetMessageObserver(nullptr);
  }
  // Per-link histograms (net.link_bytes / net.link_queue_depth) are
  // recorded inside the network itself — it alone sees channel backlog.
  net_->SetMetrics(metrics_);
}

void Runtime::PublishRunTotals(Time end) {
  if (metrics_ == nullptr) {
    return;
  }
  metrics::Registry& m = *metrics_;
  m.GetCounter("amber.objects.created").Add(objects_created_);
  m.GetCounter("amber.objects.moved").Add(objects_moved_);
  m.GetCounter("amber.replicas.installed").Add(replicas_installed_);
  m.GetCounter("amber.threads.migrated").Add(thread_migrations_);
  m.GetCounter("amber.forward.hops").Add(forward_hops_);
  for (NodeId s = 0; s < nodes(); ++s) {
    for (NodeId d = 0; d < nodes(); ++d) {
      const int64_t c = MigrationCount(s, d);
      if (c != 0) {
        m.GetCounter("amber.migration.matrix", metrics::Registry::LinkLabel(s, d)).Add(c);
      }
    }
  }
  m.GetCounter("net.messages").Add(net_->messages());
  m.GetCounter("net.bytes").Add(net_->bytes_sent());
  m.GetCounter("net.fragments").Add(net_->fragments());
  m.GetGauge("net.busy_ns").Set(static_cast<double>(net_->busy_time()));
  m.GetCounter("rpc.roundtrips").Add(rpc_->roundtrips());
  m.GetCounter("rpc.travels").Add(rpc_->travels());
  m.GetCounter("sim.events").Add(static_cast<int64_t>(sim_->events_run()));
  m.GetCounter("sim.dispatches").Add(static_cast<int64_t>(sim_->dispatches()));
  m.GetCounter("sim.preemptions").Add(static_cast<int64_t>(sim_->preemptions()));
  for (NodeId n = 0; n < nodes(); ++n) {
    m.GetGauge("sched.busy_ns", n).Set(static_cast<double>(sim_->NodeBusyTime(n)));
  }
  m.GetGauge("run.virtual_time").Set(static_cast<double>(end));
  m.GetGauge("run.nodes").Set(static_cast<double>(nodes()));
  m.GetGauge("run.procs_per_node").Set(static_cast<double>(procs_per_node()));
  if (blackbox_ != nullptr) {
    blackbox_->PublishMetrics(metrics_);
  }
  if (policy_ != nullptr) {
    policy_->PublishMetrics(metrics_);
  }
}

int Runtime::SyncObjectId(const void* obj) {
  const auto [it, inserted] = sync_ids_.try_emplace(obj, static_cast<int>(sync_ids_.size()) + 1);
  return it->second;
}

void Runtime::NotifyLockBlocked(const void* lock) {
  if (!instrumented()) {
    return;
  }
  const int id = SyncObjectId(lock);
  if (!observers_.empty()) {
    const ThreadId tid = sim_->current()->id;
    for (RuntimeObserver* o : observers_) {
      o->OnLockBlocked(sim_->Now(), here(), tid, id);
    }
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("sync.lock.blocked", "lock" + std::to_string(id)).Add();
  }
}

void Runtime::NotifyLockAcquired(const void* lock, Duration wait) {
  if (!instrumented()) {
    return;
  }
  const int id = SyncObjectId(lock);
  if (!observers_.empty()) {
    const ThreadId tid = sim_->current()->id;
    for (RuntimeObserver* o : observers_) {
      o->OnLockAcquired(sim_->Now(), here(), tid, id, wait);
    }
  }
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("sync.lock.wait", here()).Record(static_cast<double>(wait));
    // Per-lock wait-time distribution (the placement/contention advisor's
    // input): labelled by the dense lock id, like sync.lock.blocked.
    metrics_->GetHistogram("lock.wait_ns", "lock" + std::to_string(id))
        .Record(static_cast<double>(wait));
  }
}

void Runtime::NotifyLockHeldSince(const void* lock, Time when, ThreadObject* holder) {
  if (!instrumented()) {
    return;
  }
  lock_acquired_[lock] = {when, holder};
}

std::vector<Runtime::HeldLock> Runtime::HeldLocks() const {
  std::vector<HeldLock> held;
  held.reserve(lock_acquired_.size());
  for (const auto& [lock, hold] : lock_acquired_) {
    HeldLock h;
    // Read-only id lookup: locks that never produced an id-bearing event
    // stay 0 — assigning here would perturb the dense numbering that
    // traces and metrics labels already use.
    if (auto it = sync_ids_.find(lock); it != sync_ids_.end()) {
      h.lock = it->second;
    }
    if (hold.holder != nullptr && hold.holder->fiber_ != nullptr) {
      h.holder = hold.holder->fiber_->id;
    }
    h.since = hold.since;
    held.push_back(h);
  }
  // lock_acquired_ iterates in pointer order (nondeterministic across
  // runs); sort by stable keys so dumps stay byte-identical.
  std::sort(held.begin(), held.end(), [](const HeldLock& a, const HeldLock& b) {
    return std::tie(a.lock, a.holder, a.since) < std::tie(b.lock, b.holder, b.since);
  });
  return held;
}

void Runtime::NotifyLockReleased(const void* lock) {
  if (!instrumented()) {
    return;
  }
  Duration held = 0;
  if (auto it = lock_acquired_.find(lock); it != lock_acquired_.end()) {
    held = sim_->Now() - it->second.since;
    lock_acquired_.erase(it);
  }
  const int id = SyncObjectId(lock);
  if (!observers_.empty()) {
    const ThreadId tid = sim_->current()->id;
    for (RuntimeObserver* o : observers_) {
      o->OnLockReleased(sim_->Now(), here(), tid, id, held);
    }
  }
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("sync.lock.hold").Record(static_cast<double>(held));
    // Per-lock hold-time distribution, same labelling as lock.wait_ns.
    metrics_->GetHistogram("lock.hold_ns", "lock" + std::to_string(id))
        .Record(static_cast<double>(held));
  }
}

void Runtime::NotifyConditionWake(const void* condition, int woken) {
  if (!instrumented()) {
    return;
  }
  const int id = SyncObjectId(condition);
  for (RuntimeObserver* o : observers_) {
    o->OnConditionWake(sim_->Now(), here(), id, woken);
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("sync.condition.wakeups").Add(woken);
  }
}

void Runtime::NotifyBarrierWait() {
  if (!instrumented()) {
    return;
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("sync.barrier.waits", here()).Add();
  }
}

// --- Validation -------------------------------------------------------------------------

void Runtime::ValidateLocationInvariants() {
  // Fault-injected runs relax the residency count around crashed nodes: a
  // down node's table is frozen and may hold a stale Resident claim (the
  // boot-time repair in OnNodeEvent fixes it on restart), and an object
  // homed on a down node legitimately has no live resident copy at all.
  // The oracle use (sim_->NodeUp) is sanctioned here — validation is a test
  // instrument, not a protocol path.
  const bool faulty = injector_ != nullptr && injector_->active();
  for (Object* obj : live_objects_) {
    const ObjectHeader& h = obj->amber_header();
    if (h.IsMember() || h.IsStackLocal()) {
      continue;
    }
    // Exactly one *up* node marks a mutable object resident, and it is the
    // owner — unless the owner itself is down, in which case nobody is.
    int resident_count = 0;
    for (NodeId n = 0; n < nodes(); ++n) {
      if (faulty && !sim_->NodeUp(n)) {
        continue;
      }
      const Descriptor d = tables_[static_cast<size_t>(n)]->Lookup(obj);
      if (d.state == Residency::kResident) {
        ++resident_count;
        AMBER_CHECK(n == h.owner) << "resident node " << n << " != owner " << h.owner;
      }
      AMBER_CHECK(h.IsImmutable() || d.state != Residency::kReplica)
          << "replica of a mutable object";
    }
    if (faulty && !sim_->NodeUp(h.owner)) {
      AMBER_CHECK(resident_count == 0)
          << "object claims residence on an up node but is owned by down node " << h.owner;
    } else {
      AMBER_CHECK(resident_count == 1) << "object resident on " << resident_count << " nodes";
    }
    // Every forwarding chain terminates at the owner; under faults a chain
    // may dead-end at a down node (repaired lazily by BroadcastLocate).
    for (NodeId n = 0; n < nodes(); ++n) {
      if (faulty && !sim_->NodeUp(n)) {
        continue;
      }
      NodeId at = n;
      int hops = 0;
      for (;;) {
        if (faulty && !sim_->NodeUp(at)) {
          break;  // chain runs into a down node: terminal until repaired
        }
        const Descriptor d = tables_[static_cast<size_t>(at)]->Lookup(obj);
        if (d.state == Residency::kResident) {
          break;
        }
        if (d.state == Residency::kReplica) {
          AMBER_CHECK(h.IsImmutable());
          break;
        }
        if (d.state == Residency::kUninitialized) {
          const NodeId home = gas_->HomeOf(obj);
          AMBER_CHECK(home != at) << "dangling home descriptor";
          at = home;
        } else {
          at = d.forward;
        }
        AMBER_CHECK(++hops <= 2 * nodes()) << "forwarding chain does not terminate";
      }
    }
    // Attachment groups are co-located.
    for (Object* c = h.first_child; c != nullptr; c = c->amber_header().next_sibling) {
      AMBER_CHECK(c->amber_header().owner == h.owner) << "attached child on different node";
    }
  }
}

}  // namespace amber
