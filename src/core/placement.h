// Higher-level object placement policies.
//
// The paper deliberately leaves placement to "the program or higher-level
// object placement software" (§2.3). This is that software: pluggable
// policies that decide where to put the next object, built entirely on the
// public mobility primitives — nothing here has privileged access to the
// runtime.
//
//   RoundRobinPlacer  — cycle through the nodes (static balance).
//   LoadAwarePlacer   — least instantaneous load (busy CPUs + run-queue).
//   WeightedPlacer    — proportional to per-node weights (heterogeneous use).
//
// Usage:
//   LoadAwarePlacer placer;
//   auto section = placer.Place<Section>(args...);   // New + MoveTo

#ifndef AMBER_SRC_CORE_PLACEMENT_H_
#define AMBER_SRC_CORE_PLACEMENT_H_

#include <vector>

#include "src/base/panic.h"
#include "src/core/amber.h"

namespace amber {

class Placer {
 public:
  virtual ~Placer() = default;

  // The node the next object should be placed on.
  virtual NodeId NextNode() = 0;

  // Creates a T and places it according to the policy.
  template <typename T, typename... A>
  Ref<T> Place(A&&... args) {
    Ref<T> ref = New<T>(std::forward<A>(args)...);
    const NodeId target = NextNode();
    if (target != Here()) {
      MoveTo(ref, target);
    }
    return ref;
  }
};

class RoundRobinPlacer : public Placer {
 public:
  explicit RoundRobinPlacer(NodeId first = 0) : next_(first) {}

  NodeId NextNode() override {
    const NodeId n = next_;
    next_ = static_cast<NodeId>((next_ + 1) % Nodes());
    return n;
  }

 private:
  NodeId next_;
};

// Picks the node with the least instantaneous load (busy processors plus
// run-queue length), breaking ties by lowest node id. Adaptive: placing a
// compute-heavy object shifts subsequent placements elsewhere.
class LoadAwarePlacer : public Placer {
 public:
  NodeId NextNode() override {
    Runtime& rt = Runtime::Current();
    NodeId best = 0;
    int best_load = -1;
    for (NodeId n = 0; n < rt.nodes(); ++n) {
      const int load = rt.sim().BusyProcessors(n) + rt.sim().RunQueueLength(n);
      if (best_load < 0 || load < best_load) {
        best = n;
        best_load = load;
      }
    }
    return best;
  }
};

// Distributes placements proportionally to fixed weights — e.g. to favour
// nodes with more memory or to keep a node half-idle for interactive work.
class WeightedPlacer : public Placer {
 public:
  explicit WeightedPlacer(std::vector<int> weights) : weights_(std::move(weights)) {
    AMBER_CHECK(!weights_.empty());
    for (int w : weights_) {
      AMBER_CHECK(w >= 0);
      total_ += w;
    }
    AMBER_CHECK(total_ > 0) << "all weights zero";
    credits_.assign(weights_.size(), 0);
  }

  NodeId NextNode() override {
    AMBER_CHECK(weights_.size() == static_cast<size_t>(Nodes()))
        << "weight count must match node count";
    // Largest-accumulated-credit first (smooth weighted round-robin).
    size_t best = 0;
    for (size_t n = 0; n < weights_.size(); ++n) {
      credits_[n] += weights_[n];
      if (credits_[n] > credits_[best]) {
        best = n;
      }
    }
    credits_[best] -= total_;
    return static_cast<NodeId>(best);
  }

 private:
  std::vector<int> weights_;
  std::vector<int64_t> credits_;
  int total_ = 0;
};

}  // namespace amber

#endif  // AMBER_SRC_CORE_PLACEMENT_H_
