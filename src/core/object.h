// amber::Object — the base class of everything in the object space (§3.6).
//
// "Object descriptors are allocated and managed by deriving all user classes
// from a single base class called Object whose private data items include
// the descriptor. The constructor and destructor functions for the Object
// class maintain the descriptor..."
//
// Construction discipline:
//   * amber::New<T>(...) allocates a segment in the global object space and
//     placement-constructs T there → a *primary*, independently mobile object.
//   * An Object embedded by value inside another Object (a C++ member object)
//     is detected during construction and marked kObjMember: it is always
//     co-resident with — and moves with — its containing primary (§3.6).
//   * An Object constructed on a thread's stack is marked kObjStackLocal:
//     always co-resident with the running thread.

#ifndef AMBER_SRC_CORE_OBJECT_H_
#define AMBER_SRC_CORE_OBJECT_H_

#include <cstdint>
#include <vector>

#include "src/kernel/object_header.h"

namespace amber {

class Runtime;

class Object {
 public:
  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;

  // The primary object whose location governs this object: itself if it is
  // a primary, the containing object for members (transitively resolved at
  // construction), nullptr for stack-local objects.
  Object* AmberPrimary() {
    return header_.IsMember() ? header_.primary : (header_.IsStackLocal() ? nullptr : this);
  }
  const ObjectHeader& amber_header() const { return header_; }

  // Wire bytes of state held OUTSIDE the object's own segment (heap-backed
  // vectors, strings...). Migration charges segment + this. Override it in
  // classes with out-of-line state that should travel on moves — the manual
  // serialization burden of the era; the default assumes none.
  virtual int64_t AmberPayloadBytes() const { return 0; }

  // Checkpoint hooks for amber::SetRecoverable (docs/FAULTS.md). The default
  // raw-copies the derived part of the object's segment, which is correct
  // only for trivially-copyable representations; classes with out-of-line
  // state (the AmberPayloadBytes cases) must override both symmetrically.
  // Save runs at a quiescent point; Load rebuilds the object from a prior
  // Save's bytes on the recovery buddy after the home node crashed.
  virtual void AmberSaveState(std::vector<uint8_t>* out) const;
  virtual void AmberLoadState(const uint8_t* data, size_t size);

 protected:
  Object();
  virtual ~Object();

 private:
  friend class Runtime;
  ObjectHeader header_;
};

}  // namespace amber

#endif  // AMBER_SRC_CORE_OBJECT_H_
