// Amber threads (§2.1).
//
// "The basic operations on threads are Start and Join. Start starts a thread
// executing an operation on a specified object. Join blocks the caller until
// the specified thread terminates, returning the result from the operation
// specified in the Start call."
//
// Threads are objects: a ThreadObject lives in the global object space and
// is always co-resident with its executing fiber — when the thread migrates,
// so does its object (and conceptually its stack, whose bytes are part of
// the migration payload). Joining a thread is an invocation *on the thread
// object*, so a Join chases the thread to wherever it last ran — the exact
// tradeoff §3.4 describes ("optimize remote invocations made by the thread
// at the expense of invocations made on the thread object itself").
//
// StartThread<R> returns a typed ThreadRef<R> whose Join() yields R.

#ifndef AMBER_SRC_CORE_THREAD_H_
#define AMBER_SRC_CORE_THREAD_H_

#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "src/core/object.h"
#include "src/core/ref.h"
#include "src/core/runtime.h"

namespace amber {

class ThreadObject final : public Object {
 public:
  ThreadObject() = default;

  const std::string& name() const { return name_; }
  bool finished() const { return finished_; }

  // True while the thread's node is suspected down (membership lease
  // expired). Cleared if the node restarts; a lost thread's joiners get the
  // FailureHandler treatment (or a false TryJoin) instead of blocking
  // forever. See docs/FAULTS.md.
  bool lost() const { return lost_; }

  // Stores the operation result for Join (used by the StartThread wrapper).
  void set_result(std::shared_ptr<void> r) { result_ = std::move(r); }

 private:
  friend class Runtime;
  template <typename R>
  friend class ThreadRef;

  sim::Fiber* fiber_ = nullptr;
  void* stack_base_ = nullptr;
  std::function<void()> body_;
  std::vector<Frame> frames_;
  std::shared_ptr<void> result_;
  std::vector<sim::Fiber*> join_waiters_;
  std::string name_;
  bool resolving_ = false;  // re-entry guard for the residency resume hook
  bool finished_ = false;
  bool joined_ = false;
  bool reaped_ = false;
  bool lost_ = false;  // node suspected down; see lost()
};

// Typed handle to a started thread.
template <typename R>
class ThreadRef {
 public:
  ThreadRef() = default;
  explicit ThreadRef(ThreadObject* t) : t_(t) {}

  // Blocks until the thread terminates; returns the operation's result.
  // The joiner migrates to the thread object's node (see header comment).
  // A thread may be joined once; Join also reclaims the thread's stack.
  R Join() {
    Runtime& rt = Runtime::Current();
    rt.EnterInvocation(t_, 0);
    rt.JoinWait(t_);
    if constexpr (std::is_void_v<R>) {
      rt.ExitInvocation(0);
    } else {
      R out = *std::static_pointer_cast<R>(t_->result_);
      rt.ExitInvocation(rpc::WireSizeOf(out));
      return out;
    }
  }

  // Failure-aware join: true once the thread has terminated (reaping it,
  // like Join — at most one success per thread); false if the thread is
  // currently *lost*, i.e. its node is suspected down. Unlike Join the
  // caller does not migrate to the thread object, and a false return leaves
  // the thread joinable again — it may yet finish after a node restart, or
  // the caller re-runs the work elsewhere (the bench_chaos recovery driver).
  bool TryJoin() { return Runtime::Current().JoinWait(t_, /*fail_aware=*/true); }

  // The operation's result after a successful TryJoin() (Join() returns it
  // directly). Only meaningful for non-void R and after TryJoin() == true.
  template <typename U = R, typename = std::enable_if_t<!std::is_void_v<U>>>
  U result() const {
    return *std::static_pointer_cast<U>(t_->result_);
  }

  ThreadObject* object() const { return t_; }
  explicit operator bool() const { return t_ != nullptr; }

 private:
  ThreadObject* t_ = nullptr;
};

// Starts a new thread executing `method` on `target`. The thread begins on
// the creating node; its first action is the invocation, which migrates it
// to the target if remote. Arguments are captured by value.
template <typename T, typename R, typename... P, typename... A>
ThreadRef<R> StartThread(Ref<T> target, R (T::*method)(P...), A&&... args) {
  Runtime& rt = Runtime::Current();
  std::tuple<std::decay_t<P>...> bound(std::forward<A>(args)...);
  ThreadObject* t = rt.CreateThread(
      [target, method, bound = std::move(bound)]() mutable {
        if constexpr (std::is_void_v<R>) {
          std::apply([&](auto&... a) { target.Call(method, a...); }, bound);
        } else {
          R r = std::apply([&](auto&... a) { return target.Call(method, a...); }, bound);
          // Store through the thread's own record so Join can retrieve it.
          Runtime::Current().current_thread()->set_result(std::make_shared<R>(std::move(r)));
        }
      },
      /*name=*/"");
  return ThreadRef<R>(t);
}

// Const-method overload.
template <typename T, typename R, typename... P, typename... A>
ThreadRef<R> StartThread(Ref<T> target, R (T::*method)(P...) const, A&&... args) {
  Runtime& rt = Runtime::Current();
  std::tuple<std::decay_t<P>...> bound(std::forward<A>(args)...);
  ThreadObject* t = rt.CreateThread(
      [target, method, bound = std::move(bound)]() mutable {
        if constexpr (std::is_void_v<R>) {
          std::apply([&](auto&... a) { target.Call(method, a...); }, bound);
        } else {
          R r = std::apply([&](auto&... a) { return target.Call(method, a...); }, bound);
          Runtime::Current().current_thread()->set_result(std::make_shared<R>(std::move(r)));
        }
      },
      /*name=*/"");
  return ThreadRef<R>(t);
}

// Named/priority variant (priority is consulted by PriorityRunQueue, §2.1).
template <typename T, typename R, typename... P, typename... A>
ThreadRef<R> StartThreadNamed(std::string name, int priority, Ref<T> target,
                              R (T::*method)(P...), A&&... args) {
  Runtime& rt = Runtime::Current();
  std::tuple<std::decay_t<P>...> bound(std::forward<A>(args)...);
  ThreadObject* t = rt.CreateThread(
      [target, method, bound = std::move(bound)]() mutable {
        if constexpr (std::is_void_v<R>) {
          std::apply([&](auto&... a) { target.Call(method, a...); }, bound);
        } else {
          R r = std::apply([&](auto&... a) { return target.Call(method, a...); }, bound);
          Runtime::Current().current_thread()->set_result(std::make_shared<R>(std::move(r)));
        }
      },
      std::move(name), priority);
  return ThreadRef<R>(t);
}

}  // namespace amber

#endif  // AMBER_SRC_CORE_THREAD_H_
