#include "src/core/cluster_report.h"

#include <cstdio>
#include <sstream>

namespace amber {

std::string ClusterReport(Runtime& rt, Time elapsed) {
  std::ostringstream out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "cluster report (%d nodes x %d CPUs, %.2f ms virtual)\n",
                rt.nodes(), rt.procs_per_node(), ToMillis(elapsed));
  out << buf;

  out << "  node | utilization | migrations out\n";
  const double capacity =
      static_cast<double>(elapsed) * rt.procs_per_node();
  for (NodeId n = 0; n < rt.nodes(); ++n) {
    int64_t out_migrations = 0;
    for (NodeId d = 0; d < rt.nodes(); ++d) {
      out_migrations += rt.MigrationCount(n, d);
    }
    const double util =
        capacity > 0 ? 100.0 * static_cast<double>(rt.sim().NodeBusyTime(n)) / capacity : 0.0;
    std::snprintf(buf, sizeof(buf), "  %4d | %9.1f%% | %lld\n", n, util,
                  static_cast<long long>(out_migrations));
    out << buf;
  }

  // Migration matrix (only if anything migrated).
  if (rt.thread_migrations() > 0) {
    out << "  thread-migration matrix (row = from, col = to):\n      ";
    for (NodeId d = 0; d < rt.nodes(); ++d) {
      std::snprintf(buf, sizeof(buf), "%6d", d);
      out << buf;
    }
    out << "\n";
    for (NodeId s = 0; s < rt.nodes(); ++s) {
      std::snprintf(buf, sizeof(buf), "  %4d", s);
      out << buf;
      for (NodeId d = 0; d < rt.nodes(); ++d) {
        std::snprintf(buf, sizeof(buf), "%6lld", static_cast<long long>(rt.MigrationCount(s, d)));
        out << buf;
      }
      out << "\n";
    }
  }

  std::snprintf(buf, sizeof(buf),
                "  objects: %lld created, %lld moved, %lld replicas; threads: %lld migrations, "
                "%lld chain hops\n",
                static_cast<long long>(rt.objects_created()),
                static_cast<long long>(rt.objects_moved()),
                static_cast<long long>(rt.replicas_installed()),
                static_cast<long long>(rt.thread_migrations()),
                static_cast<long long>(rt.forward_hops()));
  out << buf;
  std::snprintf(buf, sizeof(buf), "  network: %lld messages, %.1f KB, bus busy %.2f ms\n",
                static_cast<long long>(rt.network().messages()),
                static_cast<double>(rt.network().bytes_sent()) / 1024.0,
                ToMillis(rt.network().busy_time()));
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  simulator: %llu events, %llu dispatches, %llu preemptions\n",
                static_cast<unsigned long long>(rt.sim().events_run()),
                static_cast<unsigned long long>(rt.sim().dispatches()),
                static_cast<unsigned long long>(rt.sim().preemptions()));
  out << buf;
  return out.str();
}

}  // namespace amber
