#include "src/core/cluster_report.h"

#include <cstdio>
#include <sstream>

#include "src/metrics/metrics.h"

namespace amber {
namespace {

// Migration count for one matrix cell. With a metrics registry attached the
// cell comes from the registry's "amber.migration.matrix" family (published
// at the end of Run); otherwise from the runtime's live counters.
int64_t MatrixCell(Runtime& rt, const metrics::Registry::CounterFamily* matrix, NodeId s,
                   NodeId d) {
  if (matrix != nullptr) {
    auto it = matrix->find(metrics::Registry::LinkLabel(s, d));
    return it != matrix->end() ? it->second.value() : 0;
  }
  return rt.MigrationCount(s, d);
}

}  // namespace

std::string ClusterReport(Runtime& rt, Time elapsed) {
  std::ostringstream out;
  char buf[160];
  const metrics::Registry* reg = rt.metrics();
  const metrics::Registry::CounterFamily* matrix =
      reg != nullptr ? reg->FindCounters("amber.migration.matrix") : nullptr;
  std::snprintf(buf, sizeof(buf), "cluster report (%d nodes x %d CPUs, %.2f ms virtual)\n",
                rt.nodes(), rt.procs_per_node(), ToMillis(elapsed));
  out << buf;

  out << "  node | utilization | migrations out\n";
  const double capacity =
      static_cast<double>(elapsed) * rt.procs_per_node();
  for (NodeId n = 0; n < rt.nodes(); ++n) {
    int64_t out_migrations = 0;
    for (NodeId d = 0; d < rt.nodes(); ++d) {
      out_migrations += MatrixCell(rt, matrix, n, d);
    }
    const double util =
        capacity > 0 ? 100.0 * static_cast<double>(rt.sim().NodeBusyTime(n)) / capacity : 0.0;
    std::snprintf(buf, sizeof(buf), "  %4d | %9.1f%% | %lld\n", n, util,
                  static_cast<long long>(out_migrations));
    out << buf;
  }

  // Migration matrix (only if anything migrated).
  if (rt.thread_migrations() > 0) {
    out << "  thread-migration matrix (row = from, col = to):\n      ";
    for (NodeId d = 0; d < rt.nodes(); ++d) {
      std::snprintf(buf, sizeof(buf), "%6d", d);
      out << buf;
    }
    out << "\n";
    for (NodeId s = 0; s < rt.nodes(); ++s) {
      std::snprintf(buf, sizeof(buf), "  %4d", s);
      out << buf;
      for (NodeId d = 0; d < rt.nodes(); ++d) {
        std::snprintf(buf, sizeof(buf), "%6lld",
                      static_cast<long long>(MatrixCell(rt, matrix, s, d)));
        out << buf;
      }
      out << "\n";
    }
  }

  // Lock contention, when a metrics registry is attached (SetMetrics).
  if (reg != nullptr && reg->CounterTotal("sync.lock.blocked") > 0) {
    std::snprintf(buf, sizeof(buf), "  lock contention: %lld contended acquires\n",
                  static_cast<long long>(reg->CounterTotal("sync.lock.blocked")));
    out << buf;
    if (const auto* blocked = reg->FindCounters("sync.lock.blocked")) {
      out << "    blocked per lock:";
      for (const auto& [label, counter] : *blocked) {
        std::snprintf(buf, sizeof(buf), " %s=%lld", label.c_str(),
                      static_cast<long long>(counter.value()));
        out << buf;
      }
      out << "\n";
    }
    if (const auto* waits = reg->FindHistograms("sync.lock.wait")) {
      for (const auto& [label, h] : *waits) {
        if (h.count() == 0) {
          continue;
        }
        std::snprintf(buf, sizeof(buf),
                      "    wait at %s: %lld waits, mean %.1f us, p99 %.1f us\n", label.c_str(),
                      static_cast<long long>(h.count()), h.mean() / 1000.0,
                      h.Percentile(99) / 1000.0);
        out << buf;
      }
    }
    if (const auto* holds = reg->FindHistograms("sync.lock.hold")) {
      if (auto it = holds->find("total"); it != holds->end() && it->second.count() > 0) {
        const auto& h = it->second;
        std::snprintf(buf, sizeof(buf), "    hold: %lld holds, mean %.1f us, p99 %.1f us\n",
                      static_cast<long long>(h.count()), h.mean() / 1000.0,
                      h.Percentile(99) / 1000.0);
        out << buf;
      }
    }
  }

  std::snprintf(buf, sizeof(buf),
                "  objects: %lld created, %lld moved, %lld replicas; threads: %lld migrations, "
                "%lld chain hops\n",
                static_cast<long long>(rt.objects_created()),
                static_cast<long long>(rt.objects_moved()),
                static_cast<long long>(rt.replicas_installed()),
                static_cast<long long>(rt.thread_migrations()),
                static_cast<long long>(rt.forward_hops()));
  out << buf;
  std::snprintf(buf, sizeof(buf), "  network: %lld messages, %.1f KB, bus busy %.2f ms\n",
                static_cast<long long>(rt.network().messages()),
                static_cast<double>(rt.network().bytes_sent()) / 1024.0,
                ToMillis(rt.network().busy_time()));
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  simulator: %llu events, %llu dispatches, %llu preemptions\n",
                static_cast<unsigned long long>(rt.sim().events_run()),
                static_cast<unsigned long long>(rt.sim().dispatches()),
                static_cast<unsigned long long>(rt.sim().preemptions()));
  out << buf;
  return out.str();
}

}  // namespace amber
