// Post-run cluster report: per-node utilization, scheduling activity,
// thread-migration matrix, and network totals. Benchmarks and examples
// print this to explain *why* a configuration performed as it did.

#ifndef AMBER_SRC_CORE_CLUSTER_REPORT_H_
#define AMBER_SRC_CORE_CLUSTER_REPORT_H_

#include <string>

#include "src/core/runtime.h"

namespace amber {

// Renders a human-readable report of the runtime's execution so far.
// `elapsed` is the virtual time window the utilization is computed over
// (typically Runtime::Run's return value).
std::string ClusterReport(Runtime& rt, Time elapsed);

}  // namespace amber

#endif  // AMBER_SRC_CORE_CLUSTER_REPORT_H_
