// amber::Ref<T> — a location-independent object reference.
//
// A Ref is just the object's global virtual address (§3.1): 8 bytes,
// trivially copyable, meaningful on every node. Ref::Call is the invocation
// primitive: it performs the paper's entry- and return-time residency checks
// (§3.5) around the method call, migrating the calling thread to the
// object's node when it is remote (function shipping, §4.1) and back to the
// enclosing frame's object afterwards.
//
// In the original system a preprocessor inserted these checks into every
// operation; Call is the template-era equivalent. Direct access through
// unchecked() is the analogue of the C++ "performance features" of §3.6 —
// legal exactly when co-residency is otherwise guaranteed.

#ifndef AMBER_SRC_CORE_REF_H_
#define AMBER_SRC_CORE_REF_H_

#include <type_traits>
#include <utility>

#include "src/core/object.h"
#include "src/core/runtime.h"
#include "src/rpc/wire.h"

namespace amber {

template <typename T>
class Ref {
  // T may be incomplete here (self-referential object graphs); the
  // Object-derivation requirement is asserted inside Call/New instead.

 public:
  constexpr Ref() = default;
  explicit constexpr Ref(T* ptr) : ptr_(ptr) {}

  // Invokes `method` on the object with full location transparency. The
  // calling thread is charged the invocation checks and, if the object is
  // remote, migrates to it carrying the (wire-sized) arguments and migrates
  // back with the result.
  template <typename R, typename... P, typename... A>
  R Call(R (T::*method)(P...), A&&... args) const {
    return DoCall<R, P...>(method, std::forward<A>(args)...);
  }

  template <typename R, typename... P, typename... A>
  R Call(R (T::*method)(P...) const, A&&... args) const {
    return DoCall<R, P...>(method, std::forward<A>(args)...);
  }

  // Raw pointer escape hatch (§3.6): valid only when the caller knows the
  // object is co-resident (member objects, attached objects, just-invoked).
  T* unchecked() const { return ptr_; }

  Object* object() const { return ptr_; }

  // Where the object currently resides (Locate primitive, §2.3).
  NodeId Where() const { return Runtime::Current().Locate(ptr_); }

  explicit operator bool() const { return ptr_ != nullptr; }
  bool operator==(const Ref& other) const { return ptr_ == other.ptr_; }
  bool operator!=(const Ref& other) const { return ptr_ != other.ptr_; }

 private:
  template <typename R, typename... P, typename M, typename... A>
  R DoCall(M method, A&&... args) const {
    static_assert(std::is_base_of_v<Object, T>, "Ref<T> requires T : public amber::Object");
    static_assert(!std::is_reference_v<R>, "operations must return by value");
    Runtime& rt = Runtime::Current();
    // Coerce arguments to the declared parameter types up front so the wire
    // size charged is what actually travels.
    std::tuple<P...> actual(std::forward<A>(args)...);
    const int64_t args_bytes =
        std::apply([](const auto&... a) { return rpc::WireSizeOfAll(a...); }, actual);
    rt.EnterInvocation(ptr_->AmberPrimary(), args_bytes);
    if constexpr (std::is_void_v<R>) {
      std::apply([&](auto&&... a) { (ptr_->*method)(std::forward<decltype(a)>(a)...); },
                 std::move(actual));
      rt.ExitInvocation(0);
    } else {
      R result = std::apply(
          [&](auto&&... a) { return (ptr_->*method)(std::forward<decltype(a)>(a)...); },
          std::move(actual));
      rt.ExitInvocation(rpc::WireSizeOf(result));
      return result;
    }
  }

  T* ptr_ = nullptr;
};

}  // namespace amber

#endif  // AMBER_SRC_CORE_REF_H_
