// RPC transport: composes fiber CPU charges with network transmission.
//
// Three communication shapes cover everything Amber does (§3):
//   * Send      — one-way control datagram (forwarding updates, acks).
//   * Roundtrip — request/reply with a service routine at the destination
//                 (Locate queries, address-space-server region requests,
//                 move-object control). The service runs in event context;
//                 its CPU is modelled as receive-side latency.
//   * Travel    — the signature Amber operation: the calling *thread* is the
//                 message. The current fiber is charged for marshalling its
//                 payload, then migrates to the destination node, arriving
//                 after the wire + software path (§3.4 thread migration).

#ifndef AMBER_SRC_RPC_TRANSPORT_H_
#define AMBER_SRC_RPC_TRANSPORT_H_

#include <cstdint>
#include <functional>

#include "src/net/network.h"
#include "src/sim/kernel.h"

namespace rpc {

using amber::Time;
using sim::NodeId;

// Observer of request/response roundtrips (tracing, metrics). `id` pairs a
// request with its response; callbacks fire at ordered points and must not
// call back into the transport.
class TransportObserver {
 public:
  virtual ~TransportObserver() = default;
  // A request of `bytes` left `src` for `dst` at `depart`.
  virtual void OnRpcRequest(Time depart, NodeId src, NodeId dst, int64_t bytes, uint64_t id) {}
  // The service at `src` produced a `bytes` reply for the requester at
  // `dst`; `when` is the service execution time, `reply_arrive` when the
  // reply reaches the requester.
  virtual void OnRpcResponse(Time when, Time reply_arrive, NodeId src, NodeId dst, int64_t bytes,
                             uint64_t id) {}
};

class Transport {
 public:
  Transport(sim::Kernel* kernel, net::Network* network) : kernel_(kernel), net_(network) {}

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // One-way datagram from the current fiber's node. Charges the fiber for
  // marshal + send software, then transmits. Returns delivery time at dst.
  Time Send(NodeId dst, int64_t payload_bytes, std::function<void()> deliver = nullptr);

  // Request/reply. Blocks the calling fiber until the reply (whose size the
  // service returns) arrives back. Returns the reply arrival time.
  Time Roundtrip(NodeId dst, int64_t request_bytes, std::function<int64_t()> service);

  // Migrates the calling fiber to dst carrying `payload_bytes` (thread
  // control state + stack + arguments). On return the fiber runs on dst.
  void Travel(NodeId dst, int64_t payload_bytes);

  // Bulk transfer (object move) from the current fiber's node; the fiber is
  // charged for marshalling. Returns delivery-complete time at dst.
  Time SendBulk(NodeId dst, int64_t payload_bytes, std::function<void()> deliver = nullptr);

  net::Network& network() { return *net_; }

  // Attaches a roundtrip observer (nullptr detaches). Emission sites are
  // guarded, so the cost is zero when none is attached.
  void SetObserver(TransportObserver* observer) { observer_ = observer; }

  // --- Statistics --------------------------------------------------------------
  int64_t roundtrips() const { return roundtrips_; }
  int64_t travels() const { return travels_; }

 private:
  // Charges marshal + protocol-send CPU to the current fiber and returns its
  // post-charge virtual time (the earliest wire departure).
  Time ChargeSendPath(int64_t payload_bytes);

  sim::Kernel* kernel_;
  net::Network* net_;
  TransportObserver* observer_ = nullptr;
  int64_t roundtrips_ = 0;
  int64_t travels_ = 0;
  uint64_t next_rpc_id_ = 1;
};

}  // namespace rpc

#endif  // AMBER_SRC_RPC_TRANSPORT_H_
