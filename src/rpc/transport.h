// RPC transport: composes fiber CPU charges with network transmission.
//
// Three communication shapes cover everything Amber does (§3):
//   * Send      — one-way control datagram (forwarding updates, acks).
//   * Roundtrip — request/reply with a service routine at the destination
//                 (Locate queries, address-space-server region requests,
//                 move-object control). The service runs in event context;
//                 its CPU is modelled as receive-side latency.
//   * Travel    — the signature Amber operation: the calling *thread* is the
//                 message. The current fiber is charged for marshalling its
//                 payload, then migrates to the destination node, arriving
//                 after the wire + software path (§3.4 thread migration).
//
// Failure semantics (fault-injection runs): with reliability enabled
// (Transport::EnableReliability), Roundtrip and Travel become
// sequence-numbered, timeout-protected operations with capped exponential
// backoff retransmission and receiver-side duplicate suppression. After
// RetryPolicy::max_attempts the operation returns a typed kTimeout status
// instead of blocking forever. One-way Send keeps datagram semantics: a
// dropped frame is simply lost. With reliability disabled (the default),
// every path is byte-for-byte the original lossless model — no timers are
// posted and no sequence state is kept.

#ifndef AMBER_SRC_RPC_TRANSPORT_H_
#define AMBER_SRC_RPC_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/net/network.h"
#include "src/sim/kernel.h"

namespace rpc {

using amber::Duration;
using amber::Time;
using sim::NodeId;

// Outcome of a reliable transport operation. In lossless mode the status is
// always kOk.
enum class SendStatus : uint8_t { kOk, kTimeout };

struct RoundtripResult {
  SendStatus status = SendStatus::kOk;
  Time completed = 0;  // reply arrival (kOk) or the time the caller gave up
  int attempts = 1;    // transmissions of the request
  operator Time() const { return completed; }  // compatibility with Time call sites
};

struct TravelResult {
  SendStatus status = SendStatus::kOk;
  int attempts = 1;
};

// Virtual-time retransmission policy: attempt k (0-based) waits
// min(timeout << k, timeout_cap) for an answer before retransmitting;
// after max_attempts transmissions the operation fails with kTimeout.
struct RetryPolicy {
  Duration timeout = amber::Millis(20);       // first-attempt timeout
  Duration timeout_cap = amber::Millis(160);  // backoff ceiling
  int max_attempts = 8;

  Duration AttemptTimeout(int attempt) const {
    Duration t = timeout;
    for (int i = 0; i < attempt && t < timeout_cap; ++i) {
      t *= 2;
    }
    return t < timeout_cap ? t : timeout_cap;
  }
};

// Observer of request/response roundtrips (tracing, metrics, profiling).
// `id` pairs a request with its response; `requester` is the fiber id of
// the blocked caller (so profilers can attribute the wait to a thread —
// OnRpcResponse runs in event context where that identity is not
// recoverable). Callbacks fire at ordered points and must not call back
// into the transport.
class TransportObserver {
 public:
  virtual ~TransportObserver() = default;
  // A request of `bytes` left `src` for `dst` at `depart` (first attempt).
  virtual void OnRpcRequest(Time depart, NodeId src, NodeId dst, int64_t bytes, uint64_t id,
                            uint64_t requester) {}
  // The service at `src` produced a `bytes` reply for the requester at
  // `dst`; `when` is the service execution time, `reply_arrive` when the
  // reply reaches the requester.
  virtual void OnRpcResponse(Time when, Time reply_arrive, NodeId src, NodeId dst, int64_t bytes,
                             uint64_t id) {}
  // --- Failure-path events (reliability mode only) --------------------------
  // Attempt `attempt` (1-based retransmission count) of request `id` left
  // src for dst after the previous attempt timed out.
  virtual void OnRpcRetry(Time when, NodeId src, NodeId dst, uint64_t id, int attempt,
                          uint64_t requester) {}
  // The operation gave up after `attempts` transmissions.
  virtual void OnRpcTimeout(Time when, NodeId src, NodeId dst, uint64_t id, int attempts,
                            uint64_t requester) {}
  // The receiver saw a duplicate of an already-served request and re-sent
  // the cached reply without re-running the service.
  virtual void OnRpcDuplicateSuppressed(Time when, NodeId node, uint64_t id) {}
};

// Trace-context piggybacking (src/rtrace). The hook is consulted once per
// Roundtrip/Travel on the requesting fiber; the returned frame rides every
// transmission of that operation (a retransmission re-carries the identical
// context) and is handed back at the destination when the payload is
// consumed — service execution for roundtrips, fiber arrival for travels.
// An empty frame means "this request is not traced" and leaves the
// operation byte-exact: no extra payload bytes, no arrival callback, no
// events. With no hook attached the transport never even asks.
class TraceHook {
 public:
  virtual ~TraceHook() = default;
  // Encoded context to piggyback for `requester` (the blocked fiber's id),
  // or {} for an untraced request.
  virtual std::vector<uint8_t> ContextFrame(uint64_t requester, NodeId src, NodeId dst) = 0;
  // A tagged frame's payload reached `node` (ordered point, event or fiber
  // context). `frame` is exactly the bytes ContextFrame returned.
  virtual void OnContextArrive(Time when, NodeId node, const std::vector<uint8_t>& frame) {}
};

class Transport {
 public:
  Transport(sim::Kernel* kernel, net::Network* network) : kernel_(kernel), net_(network) {}

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // One-way datagram from the current fiber's node. Charges the fiber for
  // marshal + send software, then transmits. Returns delivery time at dst.
  // Datagram semantics under faults: a dropped frame is lost, no retry.
  Time Send(NodeId dst, int64_t payload_bytes, std::function<void()> deliver = nullptr);

  // Request/reply. Blocks the calling fiber until the reply (whose size the
  // service returns) arrives back, retrying per the RetryPolicy when
  // reliability is enabled. The service runs at most once per roundtrip:
  // duplicate requests (retransmission racing a slow reply, or a duplicated
  // frame) re-send the cached reply without re-executing it.
  RoundtripResult Roundtrip(NodeId dst, int64_t request_bytes,
                            std::function<int64_t()> service);

  // Migrates the calling fiber to dst carrying `payload_bytes` (thread
  // control state + stack + arguments). On kOk the fiber runs on dst; on
  // kTimeout it never left the source node.
  TravelResult Travel(NodeId dst, int64_t payload_bytes);

  // Bulk transfer (object move) from the current fiber's node; the fiber is
  // charged for marshalling. Returns delivery-complete time at dst.
  Time SendBulk(NodeId dst, int64_t payload_bytes, std::function<void()> deliver = nullptr);

  // As SendBulk, but reports whether the transfer survived fault injection
  // (the simulator's oracle view; callers model detection as an ack timeout).
  net::TxResult SendBulkTracked(NodeId dst, int64_t payload_bytes,
                                std::function<void()> deliver = nullptr);

  net::Network& network() { return *net_; }

  // Attaches a roundtrip observer (nullptr detaches). Emission sites are
  // guarded, so the cost is zero when none is attached.
  void SetObserver(TransportObserver* observer) { observer_ = observer; }

  // Attaches the trace-context hook (nullptr detaches); see TraceHook.
  void SetTraceHook(TraceHook* hook) { trace_hook_ = hook; }

  // Switches Roundtrip/Travel onto the timeout/retry/dedup path. Off by
  // default; fault injection turns it on. When off, behaviour and event
  // traffic are exactly the lossless model.
  void EnableReliability(bool on) { reliable_ = on; }
  bool reliability_enabled() const { return reliable_; }

  void SetRetryPolicy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // Failure-detector consult: `suspects(src, dst)` true means src's
  // membership view has declared dst failed, and reliable operations give
  // up immediately (typed kTimeout) instead of burning the whole retry
  // budget against a node the protocol already knows is gone. Fed by
  // fault::Membership (lease expiry), never by the injector oracle. Unset
  // (the default) every attempt is made — exactly the pre-membership model.
  void SetSuspicionOracle(std::function<bool(NodeId, NodeId)> suspects) {
    suspects_ = std::move(suspects);
  }

  // Receiver-side duplicate-suppression entries currently cached (bounded:
  // O(in-flight roundtrips), see RoundtripReliable).
  size_t reply_cache_size() const { return reply_cache_.size(); }

  // --- Statistics --------------------------------------------------------------
  int64_t roundtrips() const { return roundtrips_; }
  int64_t travels() const { return travels_; }
  int64_t retries() const { return retries_; }
  int64_t timeouts() const { return timeouts_; }
  int64_t duplicates_suppressed() const { return dups_suppressed_; }

 private:
  // One cached reply on the receiver side, kept only until the requester
  // acks (completion) or the retry budget's worst-case window has passed.
  struct CachedReply {
    int64_t bytes = 0;
    Time cached_at = 0;
  };

  // Charges marshal + protocol-send CPU to the current fiber and returns its
  // post-charge virtual time (the earliest wire departure).
  Time ChargeSendPath(int64_t payload_bytes);

  RoundtripResult RoundtripReliable(NodeId dst, int64_t request_bytes,
                                    std::function<int64_t()> service);

  // After this window no duplicate of a request can still be in flight
  // (every attempt's timeout has expired and the requester has given up).
  Duration WorstCaseRetryWindow() const;
  void EvictExpiredReplies(Time now);

  sim::Kernel* kernel_;
  net::Network* net_;
  TransportObserver* observer_ = nullptr;
  TraceHook* trace_hook_ = nullptr;
  RetryPolicy retry_;
  std::function<bool(NodeId, NodeId)> suspects_;
  std::unordered_map<uint64_t, CachedReply> reply_cache_;
  bool reliable_ = false;
  int64_t roundtrips_ = 0;
  int64_t travels_ = 0;
  int64_t retries_ = 0;
  int64_t timeouts_ = 0;
  int64_t dups_suppressed_ = 0;
  uint64_t next_rpc_id_ = 1;
};

}  // namespace rpc

#endif  // AMBER_SRC_RPC_TRANSPORT_H_
