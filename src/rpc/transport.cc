#include "src/rpc/transport.h"

#include <memory>

#include "src/base/panic.h"

namespace rpc {
namespace {

// Shared state of one reliable roundtrip, reachable from the requester
// fiber, every in-flight request frame's delivery closure, the receiver's
// cached-reply re-sends, and the per-attempt timeout events. All access
// happens at ordered points (event context or post-Sync fiber code), so no
// host-level synchronization is needed.
struct RtState {
  sim::Fiber* requester = nullptr;
  // Requester side: true while the fiber is committed to blocking for this
  // attempt. Whoever clears it (reply or timeout) owns the Wake.
  bool waiting = false;
  int epoch = 0;  // attempt number the requester is currently waiting on
  bool reply_arrived = false;
  // Receiver side: the service runs once; duplicates re-send the cached
  // reply size without re-executing (duplicate suppression).
  bool service_ran = false;
  int64_t reply_bytes = 0;
  // Set when the requester gives up (kTimeout) and unwinds. The service
  // closure typically references the requester's stack frame, so a request
  // frame still in flight (fault-delayed past the retry budget) must not
  // execute it after cancellation — the late frame dies at the receiver.
  bool cancelled = false;
};

}  // namespace

Duration Transport::WorstCaseRetryWindow() const {
  Duration w = 0;
  for (int k = 0; k < retry_.max_attempts; ++k) {
    w += retry_.AttemptTimeout(k);
  }
  return w;
}

void Transport::EvictExpiredReplies(Time now) {
  // Lazy sweep (run on each insert): an entry older than the worst-case
  // retry window belongs to a requester that long since gave up; no
  // duplicate of its request can still arrive.
  const Duration window = WorstCaseRetryWindow();
  for (auto it = reply_cache_.begin(); it != reply_cache_.end();) {
    if (now - it->second.cached_at > window) {
      it = reply_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

Time Transport::ChargeSendPath(int64_t payload_bytes) {
  sim::Fiber* f = kernel_->current();
  AMBER_CHECK(f != nullptr) << "RPC send outside fiber context";
  const sim::CostModel& cost = kernel_->cost();
  kernel_->Charge(cost.MarshalCost(payload_bytes) + cost.rpc_send_software);
  // Sync so the bus reservation below happens at an ordered point: shared
  // bus state must only be touched in virtual-time order.
  kernel_->Sync();
  return kernel_->Now();
}

Time Transport::Send(NodeId dst, int64_t payload_bytes, std::function<void()> deliver) {
  const NodeId src = kernel_->current()->node;
  const Time depart = ChargeSendPath(payload_bytes);
  return net_->Send(src, dst, payload_bytes, depart, std::move(deliver));
}

RoundtripResult Transport::Roundtrip(NodeId dst, int64_t request_bytes,
                                     std::function<int64_t()> service) {
  if (reliable_) {
    return RoundtripReliable(dst, request_bytes, std::move(service));
  }
  sim::Fiber* f = kernel_->current();
  const NodeId src = f->node;
  AMBER_CHECK(dst != src) << "roundtrip to self";
  // Trace-context piggyback: an empty frame (untraced request, or no hook)
  // adds zero bytes and triggers no arrival callback — byte-exact.
  std::vector<uint8_t> ctx;
  if (trace_hook_ != nullptr) {
    ctx = trace_hook_->ContextFrame(f->id, src, dst);
  }
  const int64_t wire_bytes = request_bytes + static_cast<int64_t>(ctx.size());
  const Time depart = ChargeSendPath(wire_bytes);
  ++roundtrips_;
  const uint64_t id = next_rpc_id_++;
  if (observer_ != nullptr) {
    observer_->OnRpcRequest(depart, src, dst, wire_bytes, id, f->id);
  }
  Time reply_arrival = 0;
  net_->Send(src, dst, wire_bytes, depart, [this, f, src, dst, service, id, ctx,
                                            &reply_arrival] {
    const Time served = kernel_->Now();
    if (trace_hook_ != nullptr && !ctx.empty()) {
      trace_hook_->OnContextArrive(served, dst, ctx);
    }
    const int64_t reply_bytes = service();
    // The service's unmarshal/marshal work is folded into the fixed
    // rpc_recv_software/marshal_base terms below (latency model).
    const Time reply_depart = kernel_->Now() + kernel_->cost().MarshalCost(reply_bytes);
    reply_arrival = net_->Send(dst, src, reply_bytes, reply_depart, nullptr);
    if (observer_ != nullptr) {
      observer_->OnRpcResponse(served, reply_arrival, dst, src, reply_bytes, id);
    }
    kernel_->Wake(f, reply_arrival);
  });
  kernel_->Block();
  return RoundtripResult{SendStatus::kOk, kernel_->Now(), 1};
}

RoundtripResult Transport::RoundtripReliable(NodeId dst, int64_t request_bytes,
                                             std::function<int64_t()> service) {
  sim::Fiber* f = kernel_->current();
  const NodeId src = f->node;
  AMBER_CHECK(dst != src) << "roundtrip to self";
  ++roundtrips_;
  const uint64_t id = next_rpc_id_++;
  // Queried once: every retransmission re-carries the identical context
  // frame, so a request that only lands on attempt k still arrives tagged.
  std::vector<uint8_t> ctx;
  if (trace_hook_ != nullptr) {
    ctx = trace_hook_->ContextFrame(f->id, src, dst);
  }
  const int64_t wire_bytes = request_bytes + static_cast<int64_t>(ctx.size());
  auto st = std::make_shared<RtState>();
  st->requester = f;

  // Runs at the requester when a reply frame (original or cached re-send)
  // arrives. Any reply satisfies any attempt of this roundtrip — the
  // sequence id pairs them, and the service is idempotent by construction
  // (it ran exactly once).
  auto on_reply = [this, st] {
    if (st->waiting) {
      st->waiting = false;
      st->reply_arrived = true;
      kernel_->Wake(st->requester, kernel_->Now());
    }
    // else: the requester already gave up (or was already woken) — the late
    // reply is discarded.
  };

  // Runs at the receiver when a request frame arrives. First delivery
  // executes the service and sends the reply; duplicates (retransmissions
  // racing a slow reply, or fault-duplicated frames) re-send the cached
  // reply without re-running the service.
  auto on_request = [this, st, dst, src, id, service, on_reply, ctx] {
    if (st->cancelled) {
      return;  // requester gave up and unwound; see RtState::cancelled
    }
    if (!st->service_ran) {
      st->service_ran = true;
      const Time served = kernel_->Now();
      // Context delivery pairs with service execution: a duplicate frame
      // re-sends the cached reply but does not re-announce the arrival.
      if (trace_hook_ != nullptr && !ctx.empty()) {
        trace_hook_->OnContextArrive(served, dst, ctx);
      }
      st->reply_bytes = service();
      // Cache the reply for duplicate suppression — bounded: the entry dies
      // when the requester completes (ack piggybacked on its next frame,
      // wire cost below the model's resolution) or, if the requester is
      // gone, after the retry budget's worst-case window.
      EvictExpiredReplies(kernel_->Now());
      reply_cache_[id] = CachedReply{st->reply_bytes, kernel_->Now()};
      const Time reply_depart = kernel_->Now() + kernel_->cost().MarshalCost(st->reply_bytes);
      const net::TxResult tx = net_->SendTracked(dst, src, st->reply_bytes, reply_depart, on_reply);
      if (observer_ != nullptr) {
        observer_->OnRpcResponse(served, tx.arrival, dst, src, st->reply_bytes, id);
      }
    } else {
      ++dups_suppressed_;
      if (observer_ != nullptr) {
        observer_->OnRpcDuplicateSuppressed(kernel_->Now(), dst, id);
      }
      auto cached = reply_cache_.find(id);
      if (cached != reply_cache_.end()) {
        // Cached reply: already marshalled, so it departs immediately.
        net_->SendTracked(dst, src, cached->second.bytes, kernel_->Now(), on_reply);
      }
      // else: the requester already acked and the entry was evicted — a
      // straggler duplicate needs no reply.
    }
  };

  int sent = 0;
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (suspects_ && suspects_(src, dst)) {
      break;  // membership declared dst failed: stop burning the budget
    }
    Time depart;
    if (attempt == 0) {
      depart = ChargeSendPath(wire_bytes);
      if (observer_ != nullptr) {
        observer_->OnRpcRequest(depart, src, dst, wire_bytes, id, f->id);
      }
    } else {
      // Retransmission: the payload is already marshalled; only the protocol
      // send path is paid again.
      kernel_->Charge(kernel_->cost().rpc_send_software);
      kernel_->Sync();
      depart = kernel_->Now();
      ++retries_;
      if (observer_ != nullptr) {
        observer_->OnRpcRetry(depart, src, dst, id, attempt, f->id);
      }
    }
    // No events run between here and Block(): fiber code between kernel
    // calls is atomic, so arming waiting/epoch now is safe.
    st->waiting = true;
    st->epoch = attempt;
    sent = attempt + 1;
    net_->SendTracked(src, dst, wire_bytes, depart, on_request);
    const Duration timeout = retry_.AttemptTimeout(attempt);
    kernel_->Post(depart + timeout, [this, st, attempt] {
      // Only the attempt that armed this timer may expire it; a reply that
      // raced in first cleared `waiting` and owns the wake.
      if (st->waiting && st->epoch == attempt) {
        st->waiting = false;
        kernel_->Wake(st->requester, kernel_->Now());
      }
    });
    kernel_->Block();
    if (st->reply_arrived) {
      // Completion doubles as the ack: the receiver drops its cached reply
      // (no duplicate that still arrives will need it re-sent).
      reply_cache_.erase(id);
      return RoundtripResult{SendStatus::kOk, kernel_->Now(), attempt + 1};
    }
  }
  st->cancelled = true;
  reply_cache_.erase(id);
  if (sent == 0) {
    // Suspected before the first transmission: nothing left the node, no
    // timers ran — report the typed failure without stats or events.
    return RoundtripResult{SendStatus::kTimeout, kernel_->Now(), 0};
  }
  ++timeouts_;
  if (observer_ != nullptr) {
    observer_->OnRpcTimeout(kernel_->Now(), src, dst, id, sent, f->id);
  }
  return RoundtripResult{SendStatus::kTimeout, kernel_->Now(), sent};
}

TravelResult Transport::Travel(NodeId dst, int64_t payload_bytes) {
  sim::Fiber* f = kernel_->current();
  const NodeId src = f->node;
  AMBER_CHECK(dst != src) << "travel to self";
  // The migrating thread's context rides its own carrier frame, so a traced
  // request's identity survives the hop even though the fiber's host-side
  // state never leaves the process.
  std::vector<uint8_t> ctx;
  if (trace_hook_ != nullptr) {
    ctx = trace_hook_->ContextFrame(f->id, src, dst);
  }
  const int64_t wire_bytes = payload_bytes + static_cast<int64_t>(ctx.size());
  if (!reliable_) {
    const Time depart = ChargeSendPath(wire_bytes);
    ++travels_;
    const Time arrival = net_->Send(src, dst, wire_bytes, depart, nullptr);
    kernel_->TravelTo(dst, arrival);
    if (trace_hook_ != nullptr && !ctx.empty()) {
      trace_hook_->OnContextArrive(kernel_->Now(), dst, ctx);
    }
    return TravelResult{};
  }
  ++travels_;
  const uint64_t id = next_rpc_id_++;
  int sent = 0;
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (suspects_ && suspects_(src, dst)) {
      break;  // membership declared dst failed: stop burning the budget
    }
    Time depart;
    if (attempt == 0) {
      depart = ChargeSendPath(wire_bytes);
    } else {
      kernel_->Charge(kernel_->cost().rpc_send_software);
      kernel_->Sync();
      depart = kernel_->Now();
      ++retries_;
      if (observer_ != nullptr) {
        observer_->OnRpcRetry(depart, src, dst, id, attempt, f->id);
      }
    }
    // The simulator's oracle view of delivery stands in for the migration
    // protocol's arrival ack: a lost carrier frame surfaces as an ack
    // timeout at the source, which still holds the thread and retransmits.
    sent = attempt + 1;
    const net::TxResult tx = net_->SendTracked(src, dst, wire_bytes, depart, nullptr);
    if (tx.delivered) {
      kernel_->TravelTo(dst, tx.arrival);
      if (trace_hook_ != nullptr && !ctx.empty()) {
        trace_hook_->OnContextArrive(kernel_->Now(), dst, ctx);
      }
      return TravelResult{SendStatus::kOk, attempt + 1};
    }
    const Duration timeout = retry_.AttemptTimeout(attempt);
    kernel_->Post(depart + timeout, [this, f] { kernel_->Wake(f, kernel_->Now()); });
    kernel_->Block();
  }
  if (sent == 0) {
    return TravelResult{SendStatus::kTimeout, 0};  // suspected before any send
  }
  ++timeouts_;
  if (observer_ != nullptr) {
    observer_->OnRpcTimeout(kernel_->Now(), src, dst, id, sent, f->id);
  }
  return TravelResult{SendStatus::kTimeout, sent};
}

Time Transport::SendBulk(NodeId dst, int64_t payload_bytes, std::function<void()> deliver) {
  const NodeId src = kernel_->current()->node;
  const Time depart = ChargeSendPath(payload_bytes);
  return net_->SendBulk(src, dst, payload_bytes, depart, std::move(deliver));
}

net::TxResult Transport::SendBulkTracked(NodeId dst, int64_t payload_bytes,
                                         std::function<void()> deliver) {
  const NodeId src = kernel_->current()->node;
  const Time depart = ChargeSendPath(payload_bytes);
  return net_->SendBulkTracked(src, dst, payload_bytes, depart, std::move(deliver));
}

}  // namespace rpc
