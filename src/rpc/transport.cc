#include "src/rpc/transport.h"

#include "src/base/panic.h"

namespace rpc {

Time Transport::ChargeSendPath(int64_t payload_bytes) {
  sim::Fiber* f = kernel_->current();
  AMBER_CHECK(f != nullptr) << "RPC send outside fiber context";
  const sim::CostModel& cost = kernel_->cost();
  kernel_->Charge(cost.MarshalCost(payload_bytes) + cost.rpc_send_software);
  // Sync so the bus reservation below happens at an ordered point: shared
  // bus state must only be touched in virtual-time order.
  kernel_->Sync();
  return kernel_->Now();
}

Time Transport::Send(NodeId dst, int64_t payload_bytes, std::function<void()> deliver) {
  const NodeId src = kernel_->current()->node;
  const Time depart = ChargeSendPath(payload_bytes);
  return net_->Send(src, dst, payload_bytes, depart, std::move(deliver));
}

Time Transport::Roundtrip(NodeId dst, int64_t request_bytes, std::function<int64_t()> service) {
  sim::Fiber* f = kernel_->current();
  const NodeId src = f->node;
  AMBER_CHECK(dst != src) << "roundtrip to self";
  const Time depart = ChargeSendPath(request_bytes);
  ++roundtrips_;
  const uint64_t id = next_rpc_id_++;
  if (observer_ != nullptr) {
    observer_->OnRpcRequest(depart, src, dst, request_bytes, id);
  }
  Time reply_arrival = 0;
  net_->Send(src, dst, request_bytes, depart, [this, f, src, dst, service, id, &reply_arrival] {
    const Time served = kernel_->Now();
    const int64_t reply_bytes = service();
    // The service's unmarshal/marshal work is folded into the fixed
    // rpc_recv_software/marshal_base terms below (latency model).
    const Time reply_depart = kernel_->Now() + kernel_->cost().MarshalCost(reply_bytes);
    reply_arrival = net_->Send(dst, src, reply_bytes, reply_depart, nullptr);
    if (observer_ != nullptr) {
      observer_->OnRpcResponse(served, reply_arrival, dst, src, reply_bytes, id);
    }
    kernel_->Wake(f, reply_arrival);
  });
  kernel_->Block();
  return kernel_->Now();
}

void Transport::Travel(NodeId dst, int64_t payload_bytes) {
  sim::Fiber* f = kernel_->current();
  const NodeId src = f->node;
  AMBER_CHECK(dst != src) << "travel to self";
  const Time depart = ChargeSendPath(payload_bytes);
  ++travels_;
  const Time arrival = net_->Send(src, dst, payload_bytes, depart, nullptr);
  kernel_->TravelTo(dst, arrival);
}

Time Transport::SendBulk(NodeId dst, int64_t payload_bytes, std::function<void()> deliver) {
  const NodeId src = kernel_->current()->node;
  const Time depart = ChargeSendPath(payload_bytes);
  return net_->SendBulk(src, dst, payload_bytes, depart, std::move(deliver));
}

}  // namespace rpc
