// Wire-format serialization.
//
// Amber marshals data by hand (the original relied on identical layouts
// across homogeneous VAXes; our single-process limit makes raw bytes valid
// too, so marshalling is about *accounting and integrity*, not translation).
// WireBuffer provides a typed little-endian pack/unpack stream used by
// control messages and by the object-move path (which round-trips object
// contents through a buffer and verifies a checksum, exercising the real
// copy the paper's bulk transfer performs).
//
// WireSizeOf() computes the on-wire size of invocation arguments so thread
// migration charges honest payload bytes — the "manual serialization" burden
// the paper's model places on the runtime.

#ifndef AMBER_SRC_RPC_WIRE_H_
#define AMBER_SRC_RPC_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "src/base/panic.h"

namespace rpc {

class WireBuffer {
 public:
  WireBuffer() = default;
  explicit WireBuffer(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}

  // --- Writing ---------------------------------------------------------------

  void PutU8(uint8_t v) { PutRaw(&v, 1); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutPointer(const void* p) { PutU64(reinterpret_cast<uint64_t>(p)); }

  void PutBytes(const void* data, size_t len) {
    PutU64(len);
    PutRaw(data, len);
  }

  void PutString(const std::string& s) { PutBytes(s.data(), s.size()); }

  // --- Reading ---------------------------------------------------------------

  uint8_t GetU8() { return GetRaw<uint8_t>(); }
  uint32_t GetU32() { return GetRaw<uint32_t>(); }
  uint64_t GetU64() { return GetRaw<uint64_t>(); }
  int64_t GetI64() { return GetRaw<int64_t>(); }
  double GetDouble() { return GetRaw<double>(); }
  void* GetPointer() { return reinterpret_cast<void*>(GetU64()); }

  std::vector<uint8_t> GetBytes() {
    const uint64_t len = GetU64();
    // Guard against truncated buffers AND corrupted length prefixes: a huge
    // len would make `cursor_ + len` wrap and slip past a naive comparison.
    AMBER_CHECK(len <= bytes_.size() - cursor_)
        << "wire decode truncated: need " << len << " payload bytes, have "
        << (bytes_.size() - cursor_);
    std::vector<uint8_t> out(bytes_.begin() + static_cast<long>(cursor_),
                             bytes_.begin() + static_cast<long>(cursor_ + len));
    cursor_ += len;
    return out;
  }

  std::string GetString() {
    auto b = GetBytes();
    return std::string(b.begin(), b.end());
  }

  // --- Trivially-copyable record fast path -----------------------------------
  // Whole structs travel as their in-memory representation (valid within one
  // simulated machine — see the header comment). The decode side is guarded:
  // a short or truncated buffer panics with a clear message instead of
  // reading past the end, which matters once fault injection can duplicate
  // or corrupt frames.

  template <typename T>
  void PutRecord(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "PutRecord requires a trivially-copyable type");
    PutRaw(&v, sizeof(T));
  }

  template <typename T>
  T GetRecord() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "GetRecord requires a trivially-copyable type");
    return GetRaw<T>();
  }

  // --- Introspection -----------------------------------------------------------

  size_t size() const { return bytes_.size(); }
  size_t remaining() const { return bytes_.size() - cursor_; }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  void Rewind() { cursor_ = 0; }

  // FNV-1a over the contents; the object-move path verifies this across the
  // simulated wire.
  uint64_t Checksum() const {
    uint64_t h = 1469598103934665603ULL;
    for (uint8_t b : bytes_) {
      h = (h ^ b) * 1099511628211ULL;
    }
    return h;
  }

 private:
  void PutRaw(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + len);
  }

  template <typename T>
  T GetRaw() {
    AMBER_CHECK(sizeof(T) <= bytes_.size() - cursor_)
        << "wire underrun: need " << sizeof(T) << " bytes, have " << (bytes_.size() - cursor_)
        << " of " << bytes_.size();
    T v;
    std::memcpy(&v, bytes_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return v;
  }

  std::vector<uint8_t> bytes_;
  size_t cursor_ = 0;
};

// --- Wire-size accounting for invocation arguments ---------------------------

// Default: trivially-copyable types travel as their in-memory representation.
template <typename T, typename Enable = void>
struct WireSize {
  static_assert(std::is_trivially_copyable_v<std::remove_cvref_t<T>>,
                "non-trivially-copyable argument needs a WireSize specialization "
                "(pass large data as std::vector/std::string or an object Ref)");
  static int64_t Of(const T&) { return sizeof(std::remove_cvref_t<T>); }
};

template <typename T>
int64_t WireSizeOf(const T& v);

template <typename E>
struct WireSize<std::vector<E>> {
  static int64_t Of(const std::vector<E>& v) {
    if constexpr (std::is_trivially_copyable_v<E>) {
      return 8 + static_cast<int64_t>(v.size() * sizeof(E));
    } else {
      int64_t total = 8;
      for (const E& e : v) {
        total += WireSizeOf(e);
      }
      return total;
    }
  }
};

template <>
struct WireSize<std::string> {
  static int64_t Of(const std::string& s) { return 8 + static_cast<int64_t>(s.size()); }
};

template <typename T>
int64_t WireSizeOf(const T& v) {
  return WireSize<std::remove_cvref_t<T>>::Of(v);
}

// Total wire size of an argument pack (invocation payload accounting).
template <typename... Args>
int64_t WireSizeOfAll(const Args&... args) {
  return (int64_t{0} + ... + WireSizeOf(args));
}

}  // namespace rpc

#endif  // AMBER_SRC_RPC_WIRE_H_
