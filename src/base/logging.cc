#include "src/base/logging.h"

#include <cstdio>
#include <cstring>

namespace amber {
namespace {

LogLevel g_level = LogLevel::kInfo;
LogTimeSource g_time_source = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

// Strips the path down to the basename so log lines stay short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }
void SetLogTimeSource(LogTimeSource source) { g_time_source = source; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) {
  stream_ << "[" << LevelName(level) << "] ";
  if (g_time_source != nullptr) {
    // Virtual time in microseconds with millisecond grouping reads best for
    // the latency ranges Amber operates in (µs..s).
    const int64_t ns = g_time_source();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "t=%.3fms ", static_cast<double>(ns) / 1e6);
    stream_ << buf;
  }
  stream_ << Basename(file) << ":" << line << " ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace amber
