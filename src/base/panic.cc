#include "src/base/panic.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace amber {
namespace {

PanicHook& Hook() {
  static PanicHook hook;
  return hook;
}

}  // namespace

void SetPanicHook(PanicHook hook) { Hook() = std::move(hook); }

void Panic(const std::string& msg, const char* file, int line) {
  std::fprintf(stderr, "panic: %s at %s:%d\n", msg.c_str(), file, line);
  std::fflush(stderr);
  // A panic raised *by the hook* (a failed check while flushing the black
  // box) must not re-enter it: the guard makes the nested call fall through
  // to abort() with the partial dump left on disk.
  static bool in_hook = false;
  if (Hook() && !in_hook) {
    in_hook = true;
    const std::string path = Hook()(msg, file, line);
    in_hook = false;
    if (!path.empty()) {
      std::fprintf(stderr, "black box: %s\n", path.c_str());
      std::fflush(stderr);
    }
  }
  std::abort();
}

}  // namespace amber
