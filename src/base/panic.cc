#include "src/base/panic.h"

#include <cstdio>
#include <cstdlib>

namespace amber {

void Panic(const std::string& msg, const char* file, int line) {
  std::fprintf(stderr, "panic: %s at %s:%d\n", msg.c_str(), file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace amber
