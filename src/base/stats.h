// Statistics accumulators used by benchmarks and the network/CPU models.

#ifndef AMBER_SRC_BASE_STATS_H_
#define AMBER_SRC_BASE_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/base/panic.h"

namespace amber {

// Streaming accumulator: count/min/max/mean/stddev without storing samples.
// Uses Welford's online algorithm for numerical stability.
class Accumulator {
 public:
  void Add(double x) {
    ++count_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  int64_t count() const { return count_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const { return mean_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

  void Reset() { *this = Accumulator(); }

 private:
  int64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Sample-retaining accumulator for percentile queries. Benchmarks that need
// p50/p90/p99 use this; the streaming Accumulator covers everything else.
class Samples {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return values_.size(); }

  double Percentile(double p) {
    AMBER_CHECK(!values_.empty()) << "percentile of empty sample set";
    AMBER_CHECK(p >= 0.0 && p <= 100.0);
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
    // Nearest-rank with linear interpolation between adjacent ranks.
    const double rank = (p / 100.0) * static_cast<double>(values_.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  double Median() { return Percentile(50.0); }

  double Mean() const {
    if (values_.empty()) {
      return 0.0;
    }
    double sum = 0.0;
    for (double v : values_) {
      sum += v;
    }
    return sum / static_cast<double>(values_.size());
  }

  void Reset() {
    values_.clear();
    sorted_ = false;
  }

 private:
  std::vector<double> values_;
  bool sorted_ = false;
};

// Monotonic counter group used by the network and kernel layers to report
// traffic/operation totals (messages sent, bytes moved, faults taken...).
class Counter {
 public:
  void Add(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

}  // namespace amber

#endif  // AMBER_SRC_BASE_STATS_H_
