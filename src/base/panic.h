// Fatal-error handling for the Amber runtime.
//
// The runtime treats internal invariant violations as unrecoverable: a failed
// check prints the message (with source location) and aborts. AMBER_CHECK is
// always on; AMBER_DCHECK compiles away in NDEBUG builds and is used on hot
// paths (descriptor lookups, context switches).

#ifndef AMBER_SRC_BASE_PANIC_H_
#define AMBER_SRC_BASE_PANIC_H_

#include <functional>
#include <sstream>
#include <string>

namespace amber {

// Prints "panic: <msg> at <file>:<line>" to stderr, runs the panic hook (if
// one is installed — see SetPanicHook), and aborts.
[[noreturn]] void Panic(const std::string& msg, const char* file, int line);

// Last-gasp callback run by Panic between printing the message and calling
// abort(). Returns the path of whatever post-mortem artifact it wrote (the
// flight-recorder dump), or "" if it wrote nothing; a non-empty path is
// printed as "black box: <path>" so the operator knows where to look. The
// hook must not panic; if it does, the nested Panic skips straight to
// abort() (no recursion).
using PanicHook = std::function<std::string(const std::string& msg, const char* file, int line)>;

// Installs `hook` (replacing any previous one); pass nullptr to uninstall.
// Layering: base knows nothing about the flight recorder — amber::Runtime
// installs a hook that flushes its attached black box (core/runtime.cc).
void SetPanicHook(PanicHook hook);

namespace internal {

// Stream-capturing helper so check macros can use `<<` message chaining.
class PanicStream {
 public:
  PanicStream(const char* cond, const char* file, int line) : file_(file), line_(line) {
    stream_ << "check failed: " << cond;
  }
  [[noreturn]] ~PanicStream() { Panic(stream_.str(), file_, line_); }

  template <typename T>
  PanicStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
  const char* file_;
  int line_;
};

}  // namespace internal
}  // namespace amber

#define AMBER_CHECK(cond)                                             \
  if (cond) {                                                         \
  } else                                                              \
    ::amber::internal::PanicStream(#cond, __FILE__, __LINE__) << ": "

#define AMBER_PANIC(msg) \
  ::amber::Panic((msg), __FILE__, __LINE__)

#ifdef NDEBUG
#define AMBER_DCHECK(cond) \
  if (true) {              \
  } else                   \
    ::amber::internal::PanicStream(#cond, __FILE__, __LINE__) << ": "
#else
#define AMBER_DCHECK(cond) AMBER_CHECK(cond)
#endif

#endif  // AMBER_SRC_BASE_PANIC_H_
