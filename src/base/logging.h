// Leveled logging for the Amber runtime.
//
// Logging is stream-based and cheap when disabled: the message expression is
// not evaluated unless the level is enabled. The simulator injects the current
// virtual time into log lines when available (see SetTimeSource).

#ifndef AMBER_SRC_BASE_LOGGING_H_
#define AMBER_SRC_BASE_LOGGING_H_

#include <cstdint>
#include <sstream>

namespace amber {

enum class LogLevel : int {
  kTrace = 0,  // per-event detail (descriptor checks, dispatches)
  kDebug = 1,  // per-operation detail (moves, RPCs)
  kInfo = 2,   // lifecycle and results
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Returns / sets the global minimum level actually emitted. Default: kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Optional provider of the current virtual time in nanoseconds, stamped on
// every log line. Pass nullptr to clear.
using LogTimeSource = int64_t (*)();
void SetLogTimeSource(LogTimeSource source);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // flushes to stderr

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace amber

#define AMBER_LOG(level)                                       \
  if (::amber::LogLevel::level < ::amber::GetLogLevel()) {     \
  } else                                                       \
    ::amber::internal::LogMessage(::amber::LogLevel::level, __FILE__, __LINE__)

#endif  // AMBER_SRC_BASE_LOGGING_H_
