// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible, so all randomness flows through
// explicitly seeded generators — never std::random_device or global state.
// SplitMix64 seeds a xoshiro256** core; both are public-domain algorithms
// (Blackman & Vigna) reimplemented here.

#ifndef AMBER_SRC_BASE_RNG_H_
#define AMBER_SRC_BASE_RNG_H_

#include <cstdint>

#include "src/base/panic.h"

namespace amber {

// xoshiro256** seeded via SplitMix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  // the slight modulo bias is irrelevant for simulation tie-breaking but we
  // reject to keep distributions exact for tests.
  uint64_t Below(uint64_t bound) {
    AMBER_DCHECK(bound > 0);
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    AMBER_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool NextBool() { return (Next() & 1) != 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace amber

#endif  // AMBER_SRC_BASE_RNG_H_
