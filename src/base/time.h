// Virtual time types.
//
// All simulated time is in integer nanoseconds. Integer (not floating-point)
// time keeps the discrete-event simulation exactly reproducible: event
// ordering never depends on rounding.

#ifndef AMBER_SRC_BASE_TIME_H_
#define AMBER_SRC_BASE_TIME_H_

#include <cstdint>

namespace amber {

// A point in virtual time, nanoseconds since simulation start.
using Time = int64_t;

// A span of virtual time in nanoseconds.
using Duration = int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

constexpr double ToMicros(Duration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToMillis(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1e9; }

constexpr Duration Micros(double us) { return static_cast<Duration>(us * 1e3); }
constexpr Duration Millis(double ms) { return static_cast<Duration>(ms * 1e6); }
constexpr Duration Seconds(double s) { return static_cast<Duration>(s * 1e9); }

}  // namespace amber

#endif  // AMBER_SRC_BASE_TIME_H_
