#include "src/rtrace/rtrace.h"

#include <algorithm>

#include "src/rpc/wire.h"

namespace rtrace {
namespace {

void EscapeJson(std::ostream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    if (static_cast<unsigned char>(c) >= 0x20) {
      out << c;
    }
  }
}

// Every completed trace carries all categories (zero included), so dumps
// diff cleanly and consumers need no key-existence checks.
constexpr const char* kCategories[] = {"compute", "join",     "lock",  "migration", "other",
                                       "queue",   "recovery", "retry", "rpc"};

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRequest:
      return "request";
    case SpanKind::kInvoke:
      return "invoke";
    case SpanKind::kRpc:
      return "rpc";
    case SpanKind::kLockWait:
      return "lock_wait";
    case SpanKind::kMigration:
      return "migration";
    case SpanKind::kBackoff:
      return "backoff";
    case SpanKind::kRecovery:
      return "recovery";
  }
  return "?";
}

std::vector<uint8_t> EncodeContext(const TraceContext& ctx) {
  rpc::WireBuffer w;
  w.PutU8(ctx.has_baggage ? 2 : ctx.version);
  w.PutU64(ctx.trace_id);
  w.PutU64(ctx.span_id);
  w.PutU8(ctx.flags);
  if (ctx.has_baggage) {
    w.PutU64(ctx.baggage);
  }
  return w.bytes();
}

TraceContext DecodeContext(const std::vector<uint8_t>& bytes) {
  rpc::WireBuffer r(bytes);
  TraceContext ctx;
  ctx.version = r.GetU8();
  ctx.trace_id = r.GetU64();
  ctx.span_id = r.GetU64();
  ctx.flags = r.GetU8();
  // The baggage extension rides after the base frame. A frame from the
  // future (version > 2) may append further fields after it; everything
  // past what this decoder understands is deliberately ignored.
  if (ctx.version >= 2 && r.remaining() >= kBaggageWireBytes) {
    ctx.has_baggage = true;
    ctx.baggage = r.GetU64();
  }
  return ctx;
}

Tracer::Tracer(TraceConfig config) : config_(std::move(config)) {}

void Tracer::AttachTo(amber::Runtime& rt) {
  rt_ = &rt;
  rt.AddObserver(this);
  rt.transport().SetTraceHook(this);
}

uint64_t Tracer::OpenRequest(const std::string& name) {
  ++requests_seen_;
  if (config_.sample_every == 0 ||
      static_cast<uint64_t>(requests_seen_ - 1) % config_.sample_every != 0) {
    return 0;
  }
  sim::Fiber* f = rt_ != nullptr ? rt_->sim().current() : nullptr;
  if (f == nullptr) {
    return 0;  // no fiber to bind the root thread to
  }
  ++requests_sampled_;
  const uint64_t trace_id = next_trace_id_++;
  armed_[f->id] = ArmedRequest{name, trace_id};
  return trace_id;
}

uint64_t Tracer::CurrentTraceId() const {
  if (rt_ == nullptr) {
    return 0;
  }
  sim::Fiber* f = rt_->sim().current();
  if (f == nullptr) {
    return 0;
  }
  auto it = threads_.find(f->id);
  return it != threads_.end() ? it->second.trace_id : 0;
}

uint64_t Tracer::CurrentSpanOf(ThreadId thread) const {
  auto it = threads_.find(thread);
  if (it == threads_.end() || it->second.span_stack.empty()) {
    return 0;
  }
  return it->second.span_stack.back();
}

const Trace* Tracer::FindTrace(uint64_t trace_id) const {
  auto it = traces_.find(trace_id);
  return it != traces_.end() ? &it->second : nullptr;
}

Trace* Tracer::TraceOf(ThreadCtx& ctx) {
  auto it = traces_.find(ctx.trace_id);
  return it != traces_.end() ? &it->second : nullptr;
}

Tracer::ThreadCtx* Tracer::Ctx(ThreadId thread) {
  auto it = threads_.find(thread);
  return it != threads_.end() ? &it->second : nullptr;
}

uint64_t Tracer::AddSpan(ThreadCtx& ctx, SpanKind kind, Time start, Time end, NodeId node,
                         ThreadId thread, const std::string& label, int64_t aux,
                         uint64_t parent) {
  Trace* t = TraceOf(ctx);
  if (t == nullptr) {
    return 0;
  }
  Span s;
  s.id = next_span_id_++;
  s.parent = parent != 0 ? parent : (ctx.span_stack.empty() ? 0 : ctx.span_stack.back());
  s.kind = kind;
  s.start = start;
  s.end = end;
  s.node = node;
  s.thread = thread;
  s.label = label;
  s.aux = aux;
  t->spans.push_back(std::move(s));
  return t->spans.back().id;
}

Span* Tracer::FindSpan(Trace& trace, uint64_t span_id) {
  for (Span& s : trace.spans) {
    if (s.id == span_id) {
      return &s;
    }
  }
  return nullptr;
}

void Tracer::CloseSegment(ThreadCtx& ctx, Time when, const char* category) {
  Trace* t = TraceOf(ctx);
  if (t != nullptr) {
    // Consecutive segment deltas telescope, so the category sums equal
    // end - start *exactly* no matter how the run interleaved.
    t->attribution[category] += when - ctx.seg_start;
  }
  ctx.seg_start = when;
}

const char* Tracer::BlockedCategory(const ThreadCtx& ctx) const {
  if (ctx.recovery_depth > 0) {
    return "recovery";
  }
  switch (ctx.blocked_cause) {
    case Cause::kRpc:
      return "rpc";
    case Cause::kRetry:
      return "retry";
    case Cause::kLock:
      return "lock";
    case Cause::kMigration:
      return "migration";
    case Cause::kJoin:
      return "join";
    case Cause::kOther:
      break;
  }
  return "other";
}

void Tracer::FinishTrace(ThreadCtx& ctx, Time when) {
  Trace* t = TraceOf(ctx);
  if (t == nullptr) {
    return;
  }
  t->end = when;
  t->done = true;
  // Force-close anything the root left open (its own spans only — a child
  // thread outliving the request keeps recording into the trace until it
  // exits, but the request is over).
  for (Span& s : t->spans) {
    if (s.end == 0 && s.thread == t->root_thread) {
      s.end = when;
    }
  }
  completion_order_.push_back(t->trace_id);
  EvictIfOverCapacity();
}

void Tracer::EvictIfOverCapacity() {
  while (completion_order_.size() > config_.max_traces) {
    const uint64_t victim = completion_order_.front();
    completion_order_.erase(completion_order_.begin());
    traces_.erase(victim);
    ++traces_evicted_;
  }
}

// --- rpc::TraceHook ------------------------------------------------------------

std::vector<uint8_t> Tracer::ContextFrame(uint64_t requester, NodeId src, NodeId dst) {
  auto it = threads_.find(requester);
  if (it == threads_.end()) {
    return {};  // untraced request: zero extra bytes on the wire
  }
  const ThreadCtx& ctx = it->second;
  TraceContext tc;
  tc.trace_id = ctx.trace_id;
  tc.span_id = ctx.span_stack.empty() ? 0 : ctx.span_stack.back();
  tc.flags = kContextFlagSampled;
  if (config_.wire_baggage) {
    tc.has_baggage = true;
    auto trace = traces_.find(ctx.trace_id);
    tc.baggage = trace != traces_.end() ? static_cast<uint64_t>(trace->second.hops) : 0;
  }
  return EncodeContext(tc);
}

void Tracer::OnContextArrive(Time when, NodeId node, const std::vector<uint8_t>& frame) {
  const TraceContext ctx = DecodeContext(frame);
  auto it = traces_.find(ctx.trace_id);
  if (!ctx.sampled() || it == traces_.end()) {
    ++contexts_invalid_;
    return;
  }
  ++contexts_propagated_;
  ++it->second.hops;
}

// --- Observer callbacks --------------------------------------------------------

void Tracer::OnThreadCreate(Time when, NodeId node, ThreadId thread, const std::string& name,
                            ThreadId parent) {
  auto armed = armed_.find(parent);
  if (armed != armed_.end()) {
    // This create is the request root the parent announced with OpenRequest.
    const ArmedRequest req = armed->second;
    armed_.erase(armed);
    Trace& t = traces_[req.trace_id];
    t.trace_id = req.trace_id;
    t.name = req.name;
    t.root_thread = thread;
    t.start = when;
    for (const char* cat : kCategories) {
      t.attribution[cat] = 0;
    }
    ThreadCtx& ctx = threads_[thread];
    ctx.trace_id = req.trace_id;
    ctx.is_root = true;
    ctx.state = RunState::kQueued;
    ctx.seg_start = when;
    Span root;
    root.id = next_span_id_++;
    root.kind = SpanKind::kRequest;
    root.start = when;
    root.node = node;
    root.thread = thread;
    root.label = req.name;
    t.spans.push_back(std::move(root));
    ctx.span_stack.push_back(t.spans.back().id);
    return;
  }
  // A thread created by a traced thread inherits the trace for span
  // recording (its scheduling is not attributed — only the root's is).
  ThreadCtx* pctx = Ctx(parent);
  if (pctx != nullptr) {
    const uint64_t inherited =
        pctx->span_stack.empty() ? 0 : pctx->span_stack.back();
    ThreadCtx& ctx = threads_[thread];
    ctx.trace_id = pctx->trace_id;
    ctx.is_root = false;
    ctx.span_stack.push_back(inherited);
  }
}

void Tracer::OnThreadDispatch(Time when, NodeId node, ThreadId thread, Duration queue_wait) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx == nullptr) {
    return;
  }
  if (ctx->open_migration_span != 0) {
    // First dispatch after a migration departure: the hop is complete
    // (or reverted) and the thread is running again.
    Trace* t = TraceOf(*ctx);
    if (t != nullptr) {
      Span* s = FindSpan(*t, ctx->open_migration_span);
      if (s != nullptr && s->end == 0) {
        s->end = when;
      }
    }
    ctx->open_migration_span = 0;
  }
  if (!ctx->is_root) {
    return;
  }
  if (ctx->state == RunState::kQueued) {
    CloseSegment(*ctx, when, "queue");
  }
  ctx->state = RunState::kRunning;
}

void Tracer::OnThreadBlock(Time when, NodeId node, ThreadId thread) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx == nullptr || !ctx->is_root) {
    return;
  }
  CloseSegment(*ctx, when, "compute");
  ctx->state = RunState::kBlocked;
  ctx->blocked_cause = ctx->pending;
  ctx->pending = Cause::kOther;
}

void Tracer::OnThreadUnblock(Time when, NodeId node, ThreadId thread, ThreadId waker,
                             Time wake_time) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx == nullptr || !ctx->is_root || ctx->state != RunState::kBlocked) {
    return;
  }
  CloseSegment(*ctx, when, BlockedCategory(*ctx));
  ctx->blocked_cause = Cause::kOther;
  ctx->state = RunState::kQueued;
}

void Tracer::OnThreadPreempt(Time when, NodeId node, ThreadId thread) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx == nullptr || !ctx->is_root) {
    return;
  }
  if (ctx->state == RunState::kRunning) {
    CloseSegment(*ctx, when, "compute");
  }
  ctx->state = RunState::kQueued;
}

void Tracer::OnThreadExit(Time when, NodeId node, ThreadId thread) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx == nullptr) {
    return;
  }
  if (ctx->is_root) {
    switch (ctx->state) {
      case RunState::kRunning:
        CloseSegment(*ctx, when, "compute");
        break;
      case RunState::kQueued:
        CloseSegment(*ctx, when, "queue");
        break;
      case RunState::kBlocked:
        CloseSegment(*ctx, when, BlockedCategory(*ctx));
        break;
    }
    FinishTrace(*ctx, when);
  } else {
    // Close the child's leftover open spans so the dump has no dangling
    // end_ns = 0 entries.
    Trace* t = TraceOf(*ctx);
    if (t != nullptr) {
      for (Span& s : t->spans) {
        if (s.end == 0 && s.thread == thread) {
          s.end = when;
        }
      }
    }
  }
  threads_.erase(thread);
}

void Tracer::OnThreadJoin(Time when, NodeId node, ThreadId thread, ThreadId target) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx != nullptr && ctx->is_root) {
    ctx->pending = Cause::kJoin;
  }
}

void Tracer::OnThreadMigrate(Time when, NodeId src, NodeId dst, ThreadId thread,
                             int64_t bytes) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx == nullptr) {
    return;
  }
  ctx->open_migration_span =
      AddSpan(*ctx, SpanKind::kMigration, when, 0, src, thread, "", dst);
  if (ctx->is_root) {
    ctx->pending = Cause::kMigration;
  }
}

void Tracer::OnInvokeEnter(Time when, NodeId node, ThreadId thread, const void* obj,
                           const std::string& object, bool remote, NodeId origin,
                           Duration entry_overhead) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx == nullptr) {
    return;
  }
  const uint64_t id = AddSpan(*ctx, SpanKind::kInvoke, when, 0, node, thread, object, origin);
  if (id != 0) {
    ctx->span_stack.push_back(id);
  }
}

void Tracer::OnInvokeExit(Time when, NodeId node, ThreadId thread, Duration span, bool remote,
                          Duration exit_overhead) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx == nullptr || ctx->span_stack.size() <= 1) {
    return;  // never pop the base (request / inherited) span
  }
  Trace* t = TraceOf(*ctx);
  if (t != nullptr) {
    Span* s = FindSpan(*t, ctx->span_stack.back());
    if (s != nullptr && s->end == 0) {
      s->end = when;
    }
  }
  ctx->span_stack.pop_back();
}

void Tracer::OnLockBlocked(Time when, NodeId node, ThreadId thread, int lock) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx != nullptr && ctx->is_root) {
    ctx->pending = Cause::kLock;
  }
}

void Tracer::OnLockAcquired(Time when, NodeId node, ThreadId thread, int lock, Duration wait) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx == nullptr || wait <= 0) {
    return;
  }
  AddSpan(*ctx, SpanKind::kLockWait, when - wait, when, node, thread, "", lock);
}

void Tracer::OnRpcRequest(Time depart, NodeId src, NodeId dst, int64_t bytes, uint64_t id,
                          ThreadId requester) {
  ThreadCtx* ctx = Ctx(requester);
  if (ctx == nullptr) {
    return;
  }
  const uint64_t span = AddSpan(*ctx, SpanKind::kRpc, depart, 0, src, requester, "", dst);
  if (span != 0) {
    open_rpcs_[id] = {ctx->trace_id, span};
  }
  if (ctx->is_root) {
    ctx->pending = Cause::kRpc;
  }
}

void Tracer::OnRpcResponse(Time when, Time reply_arrive, NodeId src, NodeId dst, int64_t bytes,
                           uint64_t id) {
  auto it = open_rpcs_.find(id);
  if (it == open_rpcs_.end()) {
    return;
  }
  auto trace = traces_.find(it->second.first);
  if (trace != traces_.end()) {
    Span* s = FindSpan(trace->second, it->second.second);
    if (s != nullptr) {
      s->end = reply_arrive;
    }
  }
  open_rpcs_.erase(it);
}

void Tracer::OnRpcRetry(Time when, NodeId src, NodeId dst, uint64_t id, int attempt,
                        ThreadId requester) {
  auto it = open_rpcs_.find(id);
  if (it != open_rpcs_.end()) {
    auto trace = traces_.find(it->second.first);
    if (trace != traces_.end()) {
      Span* s = FindSpan(trace->second, it->second.second);
      if (s != nullptr) {
        s->retries = attempt;
      }
    }
  }
  // The retry fires in fiber context between the timeout wake and the next
  // block, so it marks the *coming* wait: attempt-0 waits count as "rpc",
  // every retransmission wait as "retry".
  ThreadCtx* ctx = Ctx(requester);
  if (ctx != nullptr && ctx->is_root && ctx->state != RunState::kBlocked) {
    ctx->pending = Cause::kRetry;
  }
}

void Tracer::OnRpcTimeout(Time when, NodeId src, NodeId dst, uint64_t id, int attempts,
                          ThreadId requester) {
  auto it = open_rpcs_.find(id);
  if (it == open_rpcs_.end()) {
    return;
  }
  auto trace = traces_.find(it->second.first);
  if (trace != traces_.end()) {
    Span* s = FindSpan(trace->second, it->second.second);
    if (s != nullptr) {
      s->end = when;
      s->retries = attempts - 1;
      s->failed = true;
    }
  }
  open_rpcs_.erase(it);
}

void Tracer::OnFailureBackoff(Time when, NodeId node, ThreadId thread, Duration backoff) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx == nullptr) {
    return;
  }
  AddSpan(*ctx, SpanKind::kBackoff, when, when + backoff, node, thread, "", 0);
  if (ctx->is_root) {
    ctx->pending = Cause::kRetry;
  }
}

void Tracer::OnRecoveryStart(Time when, NodeId node, ThreadId thread, const void* obj) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx == nullptr) {
    return;
  }
  if (ctx->recovery_depth++ == 0) {
    ctx->open_recovery_span = AddSpan(*ctx, SpanKind::kRecovery, when, 0, node, thread, "", 0);
  }
}

void Tracer::OnRecoveryEnd(Time when, NodeId node, ThreadId thread, const void* obj, bool ok) {
  ThreadCtx* ctx = Ctx(thread);
  if (ctx == nullptr || ctx->recovery_depth == 0) {
    return;
  }
  if (--ctx->recovery_depth == 0 && ctx->open_recovery_span != 0) {
    Trace* t = TraceOf(*ctx);
    if (t != nullptr) {
      Span* s = FindSpan(*t, ctx->open_recovery_span);
      if (s != nullptr) {
        s->end = when;
        s->failed = !ok;
      }
    }
    ctx->open_recovery_span = 0;
  }
}

// --- Dump ----------------------------------------------------------------------

void Tracer::WriteJson(std::ostream& out) const {
  out << "{\n";
  out << "  \"rtrace\": \"";
  EscapeJson(out, config_.name);
  out << "\",\n";
  out << "  \"schema\": 1,\n";
  out << "  \"sample_every\": " << config_.sample_every << ",\n";
  out << "  \"requests_seen\": " << requests_seen_ << ",\n";
  out << "  \"requests_sampled\": " << requests_sampled_ << ",\n";
  out << "  \"contexts_propagated\": " << contexts_propagated_ << ",\n";
  out << "  \"contexts_invalid\": " << contexts_invalid_ << ",\n";
  out << "  \"traces_evicted\": " << traces_evicted_ << ",\n";
  out << "  \"traces\": [";
  bool first_trace = true;
  for (const auto& [id, t] : traces_) {
    if (!t.done) {
      continue;
    }
    out << (first_trace ? "\n" : ",\n");
    first_trace = false;
    out << "    {\"trace_id\": " << t.trace_id << ", \"name\": \"";
    EscapeJson(out, t.name);
    out << "\", \"root_thread\": " << t.root_thread << ", \"start_ns\": " << t.start
        << ", \"end_ns\": " << t.end << ", \"latency_ns\": " << t.latency()
        << ", \"hops\": " << t.hops << ",\n     \"attribution\": {";
    bool first_cat = true;
    for (const auto& [cat, ns] : t.attribution) {
      out << (first_cat ? "" : ", ") << "\"" << cat << "\": " << ns;
      first_cat = false;
    }
    out << "},\n     \"spans\": [";
    bool first_span = true;
    for (const Span& s : t.spans) {
      out << (first_span ? "\n" : ",\n");
      first_span = false;
      out << "       {\"id\": " << s.id << ", \"parent\": " << s.parent << ", \"kind\": \""
          << SpanKindName(s.kind) << "\", \"start_ns\": " << s.start << ", \"end_ns\": " << s.end
          << ", \"node\": " << s.node << ", \"thread\": " << s.thread << ", \"label\": \"";
      EscapeJson(out, s.label);
      out << "\", \"aux\": " << s.aux << ", \"retries\": " << s.retries
          << ", \"failed\": " << (s.failed ? "true" : "false") << "}";
    }
    out << (first_span ? "]}" : "\n     ]}");
  }
  out << (first_trace ? "" : "\n  ") << "]\n}\n";
}

}  // namespace rtrace
