// Request-scoped distributed tracing (sampled).
//
// Every observability layer before this one is aggregate (metrics, the
// causal profiler) or post-mortem (the flight recorder); none follows a
// *single request* across invocations, RPCs, retries and migrations. A
// rtrace::Tracer does exactly that:
//
//   * A TraceContext — trace id, current span id, sampling bit — is
//     allocated at a request root (OpenRequest, called by the serving
//     driver immediately before StartThread) and bound to the spawned
//     thread. Sampling is deterministic 1-in-N (TraceConfig::sample_every)
//     counted in request-open order, so the same seed samples the same
//     requests.
//   * The context propagates with the request: to child threads at
//     OnThreadCreate, through every EnterInvocation (invoke spans nest on
//     the thread's frame stack), and across the RPC wire — the transport's
//     TraceHook piggybacks an encoded context frame on every transmission
//     of a traced thread's roundtrips and travels (retransmissions
//     re-carry it) and hands the bytes back at the destination, where the
//     tracer decodes and validates them (contexts_propagated). The frame
//     is versioned in the style of the membership heartbeats: a v1 frame
//     is exactly kContextV1Bytes; v2 appends a baggage word; a decoder
//     ignores unknown trailing bytes, so frames from the future still
//     yield their v1 prefix. An untraced request contributes an *empty*
//     frame — zero bytes, byte-exact wire traffic.
//   * Everything the request does is recorded as spans: the root request
//     span, nested invoke spans, RPC roundtrips (with retransmission
//     counts; timeouts close the span failed), lock waits, thread
//     migrations, failure backoffs and recovery episodes.
//   * The root thread's lifetime is tiled into *exact* virtual-time
//     attribution: every nanosecond between thread creation and thread
//     exit lands in exactly one of {queue, compute, rpc, retry, lock,
//     migration, join, recovery, other}, driven by the scheduler's
//     dispatch/block/unblock/preempt events and the same fiber-context
//     cause markers the profiler and flight recorder use. The category
//     sums equal the request's end-to-end latency by construction —
//     amber-tail asserts it when rendering.
//
// Pair with metrics exemplars: record request latency via
// Histogram::Record(latency, tracer.CurrentTraceId()) and the histogram's
// p999 bucket names a trace id this tracer can fully reconstruct
// (WriteJson -> TRACEREQ_<name>.json, rendered by amber-tail).
//
// Contract: the tracer is an observer-only tap on the bus plus a wire
// hook. Attached with sampling off (sample_every = 0) it adds no payload
// bytes, records nothing, and every output of the run is byte-identical
// to an untraced run; detached it costs nothing at all. Same-seed runs
// produce byte-identical TRACEREQ documents.

#ifndef AMBER_SRC_RTRACE_RTRACE_H_
#define AMBER_SRC_RTRACE_RTRACE_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/runtime.h"
#include "src/rpc/transport.h"

namespace rtrace {

using amber::Duration;
using amber::NodeId;
using amber::ThreadId;
using amber::Time;

// --- Wire format --------------------------------------------------------------

// v1 frame: [u8 version][u64 trace_id][u64 span_id][u8 flags] = 18 bytes.
// v2 appends [u64 baggage] (hop count). Unknown trailing bytes are ignored
// on decode, mirroring the membership heartbeat's forward compatibility.
inline constexpr uint8_t kContextVersion = 1;
inline constexpr size_t kContextV1Bytes = 18;
inline constexpr size_t kBaggageWireBytes = 8;
inline constexpr uint8_t kContextFlagSampled = 1;

struct TraceContext {
  uint8_t version = kContextVersion;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // the sender's span at transmission time
  uint8_t flags = 0;
  bool has_baggage = false;  // v2 extension
  uint64_t baggage = 0;      // wire hop count at transmission

  bool sampled() const { return (flags & kContextFlagSampled) != 0; }
};

// Encodes v1, or v2 when has_baggage is set.
std::vector<uint8_t> EncodeContext(const TraceContext& ctx);
// Decodes a v1/v2/future frame; trailing bytes past what this decoder
// understands are deliberately ignored.
TraceContext DecodeContext(const std::vector<uint8_t>& bytes);

// --- Spans ---------------------------------------------------------------------

enum class SpanKind : uint8_t {
  kRequest,    // root: the request thread's whole lifetime
  kInvoke,     // one EnterInvocation..ExitInvocation frame
  kRpc,        // transport roundtrip, depart to reply arrival (retries folded)
  kLockWait,   // contended lock acquisition wait
  kMigration,  // thread migration, depart to first dispatch at the destination
  kBackoff,    // failure-handler backoff window
  kRecovery,   // recovery episode (replica re-bind / checkpoint restore)
};

const char* SpanKindName(SpanKind kind);

struct Span {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = top-level (the request span itself)
  SpanKind kind = SpanKind::kRequest;
  Time start = 0;
  Time end = 0;  // 0 while open
  NodeId node = 0;
  ThreadId thread = 0;
  std::string label;  // invoke: object label; request: request name
  int64_t aux = 0;    // lock: id; migration/rpc: dst node; invoke: origin node
  int64_t retries = 0;  // rpc: retransmissions beyond the first attempt
  bool failed = false;
};

struct Trace {
  uint64_t trace_id = 0;
  std::string name;
  ThreadId root_thread = 0;
  Time start = 0;
  Time end = 0;
  bool done = false;
  int64_t hops = 0;  // context frames that arrived across the wire
  std::vector<Span> spans;
  // Exact tiling of [start, end]: the nine category sums always total
  // end - start for a completed trace.
  std::map<std::string, Duration> attribution;

  Duration latency() const { return end - start; }
};

// --- The tracer ----------------------------------------------------------------

struct TraceConfig {
  std::string name = "rtrace";  // dump identity: TRACEREQ_<name>.json
  // Sample 1 of every N opened requests (deterministic, in open order).
  // 0 disables sampling entirely — attached but byte-inert.
  uint64_t sample_every = 1;
  // Completed traces retained; beyond it the oldest-completed is evicted
  // (exemplars normally point at recent traces, so old ones age out first).
  size_t max_traces = 1024;
  // Send v2 context frames carrying the hop count as baggage. Default v1.
  bool wire_baggage = false;
};

class Tracer : public amber::RuntimeObserver, public rpc::TraceHook {
 public:
  explicit Tracer(TraceConfig config = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Joins the runtime's observer fan-out and installs the transport trace
  // hook. Call before Run(); the tracer must outlive the runtime.
  void AttachTo(amber::Runtime& rt);

  // Declares the *next thread created by the calling thread* a request
  // root named `name`. Returns the allocated trace id, or 0 when this
  // request fell outside the 1-in-N sample (the caller proceeds
  // identically either way). Call from fiber context, immediately before
  // StartThread.
  uint64_t OpenRequest(const std::string& name);

  // The calling fiber's active trace id (0 = untraced). Serving code uses
  // this as the exemplar id when recording the request's latency.
  uint64_t CurrentTraceId() const;

  // `thread`'s innermost open span (0 = untraced) — the flight recorder's
  // span source (fdr::Recorder::SetSpanSource).
  uint64_t CurrentSpanOf(ThreadId thread) const;

  const TraceConfig& config() const { return config_; }
  int64_t requests_seen() const { return requests_seen_; }
  int64_t requests_sampled() const { return requests_sampled_; }
  int64_t contexts_propagated() const { return contexts_propagated_; }
  int64_t contexts_invalid() const { return contexts_invalid_; }
  int64_t traces_evicted() const { return traces_evicted_; }

  // Retained traces by id (completed ones have done = true).
  const std::map<uint64_t, Trace>& traces() const { return traces_; }
  const Trace* FindTrace(uint64_t trace_id) const;

  // TRACEREQ_<name>.json: deterministic, fixed key order, completed traces
  // only, ascending trace id.
  void WriteJson(std::ostream& out) const;

  // --- rpc::TraceHook ---------------------------------------------------------
  std::vector<uint8_t> ContextFrame(uint64_t requester, NodeId src, NodeId dst) override;
  void OnContextArrive(Time when, NodeId node, const std::vector<uint8_t>& frame) override;

  // --- amber::RuntimeObserver -------------------------------------------------
  void OnThreadCreate(Time when, NodeId node, ThreadId thread, const std::string& name,
                      ThreadId parent) override;
  void OnThreadDispatch(Time when, NodeId node, ThreadId thread, Duration queue_wait) override;
  void OnThreadBlock(Time when, NodeId node, ThreadId thread) override;
  void OnThreadUnblock(Time when, NodeId node, ThreadId thread, ThreadId waker,
                       Time wake_time) override;
  void OnThreadPreempt(Time when, NodeId node, ThreadId thread) override;
  void OnThreadExit(Time when, NodeId node, ThreadId thread) override;
  void OnThreadJoin(Time when, NodeId node, ThreadId thread, ThreadId target) override;
  void OnThreadMigrate(Time when, NodeId src, NodeId dst, ThreadId thread,
                       int64_t bytes) override;
  void OnInvokeEnter(Time when, NodeId node, ThreadId thread, const void* obj,
                     const std::string& object, bool remote, NodeId origin,
                     Duration entry_overhead) override;
  void OnInvokeExit(Time when, NodeId node, ThreadId thread, Duration span, bool remote,
                    Duration exit_overhead) override;
  void OnLockAcquired(Time when, NodeId node, ThreadId thread, int lock, Duration wait) override;
  void OnLockBlocked(Time when, NodeId node, ThreadId thread, int lock) override;
  void OnRpcRequest(Time depart, NodeId src, NodeId dst, int64_t bytes, uint64_t id,
                    ThreadId requester) override;
  void OnRpcResponse(Time when, Time reply_arrive, NodeId src, NodeId dst, int64_t bytes,
                     uint64_t id) override;
  void OnRpcRetry(Time when, NodeId src, NodeId dst, uint64_t id, int attempt,
                  ThreadId requester) override;
  void OnRpcTimeout(Time when, NodeId src, NodeId dst, uint64_t id, int attempts,
                    ThreadId requester) override;
  void OnFailureBackoff(Time when, NodeId node, ThreadId thread, Duration backoff) override;
  void OnRecoveryStart(Time when, NodeId node, ThreadId thread, const void* obj) override;
  void OnRecoveryEnd(Time when, NodeId node, ThreadId thread, const void* obj, bool ok) override;

 private:
  // What a blocked (or about-to-block) segment of the root thread is for —
  // armed in fiber context right before the block, consumed at the block
  // (the profiler's marker protocol).
  enum class Cause : uint8_t {
    kOther,
    kRpc,
    kRetry,  // rpc retransmission waits + failure backoffs
    kLock,
    kMigration,
    kJoin,
  };
  enum class RunState : uint8_t { kQueued, kRunning, kBlocked };

  struct ThreadCtx {
    uint64_t trace_id = 0;
    bool is_root = false;
    std::vector<uint64_t> span_stack;  // open invoke spans; [0] = base span
    // Root-thread attribution machinery.
    RunState state = RunState::kQueued;
    Time seg_start = 0;
    Cause pending = Cause::kOther;
    Cause blocked_cause = Cause::kOther;
    int recovery_depth = 0;
    uint64_t open_migration_span = 0;  // close at the next dispatch
    uint64_t open_recovery_span = 0;
  };

  struct ArmedRequest {
    std::string name;
    uint64_t trace_id = 0;
  };

  Trace* TraceOf(ThreadCtx& ctx);
  ThreadCtx* Ctx(ThreadId thread);
  // Appends a completed or open span to ctx's trace; returns its id.
  uint64_t AddSpan(ThreadCtx& ctx, SpanKind kind, Time start, Time end, NodeId node,
                   ThreadId thread, const std::string& label, int64_t aux, uint64_t parent = 0);
  Span* FindSpan(Trace& trace, uint64_t span_id);
  // Closes the root thread's current attribution segment at `when` under
  // `category` and opens the next one.
  void CloseSegment(ThreadCtx& ctx, Time when, const char* category);
  const char* BlockedCategory(const ThreadCtx& ctx) const;
  void FinishTrace(ThreadCtx& ctx, Time when);
  void EvictIfOverCapacity();

  TraceConfig config_;
  amber::Runtime* rt_ = nullptr;
  std::map<uint64_t, Trace> traces_;  // ordered: deterministic dump
  std::unordered_map<ThreadId, ThreadCtx> threads_;          // traced threads only
  std::unordered_map<ThreadId, ArmedRequest> armed_;         // parent -> next-create binding
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> open_rpcs_;  // rpc id -> (trace, span)
  std::vector<uint64_t> completion_order_;  // trace eviction order
  uint64_t next_trace_id_ = 1;
  uint64_t next_span_id_ = 1;
  int64_t requests_seen_ = 0;
  int64_t requests_sampled_ = 0;
  int64_t contexts_propagated_ = 0;
  int64_t contexts_invalid_ = 0;
  int64_t traces_evicted_ = 0;
};

}  // namespace rtrace

#endif  // AMBER_SRC_RTRACE_RTRACE_H_
