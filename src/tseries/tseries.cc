#include "src/tseries/tseries.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace tseries {
namespace {

// JSON number rendering, same contract as the metrics registry: integral
// values print exactly, everything else %.9g — deterministic functions of
// the value's bit pattern.
std::string Num(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "0");  // JSON has no inf/nan
  }
  return buf;
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string SeriesKey(const std::string& name, const std::string& label) {
  return label == "total" ? name : name + "/" + label;
}

}  // namespace

MttrResult MeasureMttr(const std::vector<double>& values, amber::Time start_ns,
                       amber::Duration window_ns, amber::Time crash_ns,
                       const MttrParams& params) {
  MttrResult out;
  if (window_ns <= 0 || crash_ns < start_ns) {
    return out;
  }
  const size_t crash_window =
      static_cast<size_t>((crash_ns - start_ns) / window_ns);  // window containing the crash
  if (crash_window <= params.warmup_windows || crash_window > values.size()) {
    return out;  // no steady pre-crash windows to take a band from
  }
  double lo = values[params.warmup_windows];
  double hi = lo;
  for (size_t i = params.warmup_windows; i < crash_window; ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  // Widen each side; the 0.5 floor keeps flat integer signals (e.g. a
  // constant requests-per-window count) from demanding exact equality.
  const double expand = std::max(params.band_expand * (hi - lo), 0.5);
  out.band_lo = lo - expand;
  out.band_hi = hi + expand;

  // MTTR is measured to the first *stable re-entry after the dip*: skip
  // forward to the first out-of-band window at or after the crash, then find
  // hold_windows consecutive in-band windows. A signal that never left the
  // band was never perturbed — dipped stays false and nothing is measured.
  size_t i = crash_window;
  while (i < values.size() && values[i] >= out.band_lo && values[i] <= out.band_hi) {
    ++i;
  }
  if (i >= values.size()) {
    return out;
  }
  out.dipped = true;
  for (; i + params.hold_windows <= values.size(); ++i) {
    bool stable = true;
    for (size_t j = i; j < i + params.hold_windows; ++j) {
      if (values[j] < out.band_lo || values[j] > out.band_hi) {
        stable = false;
        break;
      }
    }
    if (stable) {
      out.measured = true;
      out.recovered_at = start_ns + static_cast<amber::Time>(i + 1) * window_ns;
      out.mttr = out.recovered_at - crash_ns;
      return out;
    }
  }
  return out;
}

Collector::Collector(Config config) : config_(std::move(config)) {
  until_flush_ = config_.flush_every_windows;
}

void Collector::WatchCounter(const std::string& name) {
  counters_.push_back(CounterWatch{name});
  counter_last_.push_back(0);
}

void Collector::WatchGauge(const std::string& name, const std::string& label) {
  gauges_.push_back(GaugeWatch{name, label});
}

void Collector::WatchHistogram(const std::string& name, const std::string& label) {
  hists_.push_back(HistWatch{name, label, metrics::HistogramSnapshot{}});
}

void Collector::AttachTo(amber::Runtime& rt) {
  if (registry_ == nullptr) {
    registry_ = rt.metrics();
  }
  rt.AddObserver(this);
}

void Collector::Advance(amber::Time now) {
  if (finished_ || config_.window_ns <= 0) {
    return;
  }
  while (now >= (windows_closed_ + 1) * config_.window_ns) {
    CloseWindow();
  }
}

void Collector::Finish(amber::Time end) {
  if (finished_) {
    return;
  }
  Advance(end);
  if (end > windows_closed_ * config_.window_ns) {
    CloseWindow();  // the final partial window [k*w, end)
  }
  finished_ = true;
  if (!config_.flush_path.empty()) {
    FlushTo(config_.flush_path);
  }
}

void Collector::Annotate(amber::Time when, const std::string& kind, const std::string& detail) {
  AddAnnotation(when, kind, detail);
}

void Collector::AddAnnotation(amber::Time when, const std::string& kind,
                              const std::string& detail) {
  Advance(when);
  if (annotations_.size() >= config_.max_annotations) {
    ++dropped_annotations_;
    return;
  }
  annotations_.push_back(Annotation{when, kind, detail});
}

void Collector::CloseWindow() {
  Frame frame;
  frame.index = windows_closed_;
  frame.counter_deltas.reserve(counters_.size());
  for (size_t i = 0; i < counters_.size(); ++i) {
    // Read-only lookups throughout: Get* would create empty families in the
    // registry and change its (byte-compared) rendering.
    const int64_t total =
        registry_ != nullptr ? registry_->CounterTotal(counters_[i].name) : 0;
    frame.counter_deltas.push_back(total - counter_last_[i]);
    counter_last_[i] = total;
  }
  frame.gauge_values.reserve(gauges_.size());
  for (const GaugeWatch& w : gauges_) {
    double v = 0.0;
    if (registry_ != nullptr) {
      if (const metrics::Registry::GaugeFamily* fam = registry_->FindGauges(w.name)) {
        auto it = fam->find(w.label);
        if (it != fam->end()) {
          v = it->second.value();
        }
      }
    }
    frame.gauge_values.push_back(v);
  }
  frame.hists.reserve(hists_.size());
  for (HistWatch& w : hists_) {
    metrics::HistogramSnapshot cur;
    if (registry_ != nullptr) {
      if (const metrics::Registry::HistogramFamily* fam = registry_->FindHistograms(w.name)) {
        auto it = fam->find(w.label);
        if (it != fam->end()) {
          cur = it->second.Snapshot();
        }
      }
    }
    HistFrame hf;
    hf.summary = metrics::Histogram::Diff(w.last, cur);
    for (const auto& [bucket, count] : cur.buckets) {
      auto it = w.last.buckets.find(bucket);
      const int64_t d = count - (it != w.last.buckets.end() ? it->second : 0);
      if (d > 0) {
        hf.bucket_deltas[bucket] = d;
      }
    }
    w.last = std::move(cur);
    frame.hists.push_back(std::move(hf));
  }
  frames_.push_back(std::move(frame));
  if (frames_.size() > config_.max_frames) {
    frames_.pop_front();
    ++dropped_frames_;
  }
  ++windows_closed_;
  if (config_.flush_every_windows > 0 && !config_.flush_path.empty() && --until_flush_ == 0) {
    until_flush_ = config_.flush_every_windows;
    FlushTo(config_.flush_path);
  }
}

std::vector<double> Collector::SeriesValues(const std::string& series) const {
  std::vector<double> out;
  auto collect = [&](auto getter) {
    out.reserve(frames_.size());
    for (const Frame& f : frames_) {
      out.push_back(getter(f));
    }
  };
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (series == "counter:" + counters_[i].name) {
      collect([i](const Frame& f) { return static_cast<double>(f.counter_deltas[i]); });
      return out;
    }
  }
  for (size_t i = 0; i < gauges_.size(); ++i) {
    if (series == "gauge:" + SeriesKey(gauges_[i].name, gauges_[i].label)) {
      collect([i](const Frame& f) { return f.gauge_values[i]; });
      return out;
    }
  }
  for (size_t i = 0; i < hists_.size(); ++i) {
    const std::string base = "hist:" + SeriesKey(hists_[i].name, hists_[i].label) + ".";
    if (series.rfind(base, 0) != 0) {
      continue;
    }
    const std::string comp = series.substr(base.size());
    auto field = [comp](const metrics::IntervalSummary& s) {
      if (comp == "count") return static_cast<double>(s.count);
      if (comp == "sum") return s.sum;
      if (comp == "p50") return s.p50;
      if (comp == "p99") return s.p99;
      if (comp == "p999") return s.p999;
      return 0.0;
    };
    if (comp == "count" || comp == "sum" || comp == "p50" || comp == "p99" || comp == "p999") {
      collect([i, field](const Frame& f) { return field(f.hists[i].summary); });
      return out;
    }
  }
  return out;
}

metrics::IntervalSummary Collector::AggregateHistogram(size_t hist_series, size_t from,
                                                       size_t to) const {
  std::map<int, int64_t> buckets;
  double sum = 0.0;
  if (hist_series >= hists_.size()) {
    return metrics::IntervalSummary{};
  }
  to = std::min(to, frames_.size());
  for (size_t i = from; i < to; ++i) {
    const HistFrame& hf = frames_[i].hists[hist_series];
    sum += hf.summary.sum;
    for (const auto& [bucket, count] : hf.bucket_deltas) {
      buckets[bucket] += count;
    }
  }
  return metrics::Histogram::SummaryFromBuckets(buckets, sum);
}

void Collector::WriteJson(std::ostream& out) const {
  out << "{\n  \"tseries\": " << Quote(config_.name) << ",\n  \"window_ns\": " << config_.window_ns
      << ",\n  \"first_window\": " << (frames_.empty() ? 0 : frames_.front().index)
      << ",\n  \"windows\": " << frames_.size() << ",\n  \"dropped_frames\": " << dropped_frames_
      << ",\n  \"series\": {\n    \"counters\": {";
  for (size_t i = 0; i < counters_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "      " << Quote(counters_[i].name) << ": [";
    bool first = true;
    for (const Frame& f : frames_) {
      out << (first ? "" : ", ") << f.counter_deltas[i];
      first = false;
    }
    out << "]";
  }
  out << (counters_.empty() ? "" : "\n    ") << "},\n    \"gauges\": {";
  for (size_t i = 0; i < gauges_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "      "
        << Quote(SeriesKey(gauges_[i].name, gauges_[i].label)) << ": [";
    bool first = true;
    for (const Frame& f : frames_) {
      out << (first ? "" : ", ") << Num(f.gauge_values[i]);
      first = false;
    }
    out << "]";
  }
  out << (gauges_.empty() ? "" : "\n    ") << "},\n    \"histograms\": {";
  for (size_t i = 0; i < hists_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "      "
        << Quote(SeriesKey(hists_[i].name, hists_[i].label)) << ": {";
    const char* fields[] = {"count", "sum", "p50", "p99", "p999"};
    for (size_t fi = 0; fi < 5; ++fi) {
      out << (fi == 0 ? "\n" : ",\n") << "        \"" << fields[fi] << "\": [";
      bool first = true;
      for (const Frame& f : frames_) {
        const metrics::IntervalSummary& s = f.hists[i].summary;
        const double v = fi == 0   ? static_cast<double>(s.count)
                         : fi == 1 ? s.sum
                         : fi == 2 ? s.p50
                         : fi == 3 ? s.p99
                                   : s.p999;
        out << (first ? "" : ", ") << Num(v);
        first = false;
      }
      out << "]";
    }
    out << "\n      }";
  }
  out << (hists_.empty() ? "" : "\n    ") << "}\n  },\n  \"annotations\": [";
  for (size_t i = 0; i < annotations_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    {\"t_ns\": " << annotations_[i].when
        << ", \"kind\": " << Quote(annotations_[i].kind)
        << ", \"detail\": " << Quote(annotations_[i].detail) << "}";
  }
  out << (annotations_.empty() ? "" : "\n  ")
      << "],\n  \"dropped_annotations\": " << dropped_annotations_ << "\n}\n";
}

bool Collector::FlushTo(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      return false;
    }
    WriteJson(out);
    if (!out.good()) {
      return false;
    }
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace tseries
