// Virtual-time metric time series: windowed rollups over a metrics::Registry.
//
// Every other consumer of the registry reads it once, at the end of a run —
// BENCH_*.json can say what p999 *was*, but not how p99 evolved as load
// ramped, nor how long a cluster took to re-converge after a crash. The
// Collector closes that gap: on a configurable virtual-time cadence
// (default 10 ms) it snapshots the *watched* metric families and appends one
// fixed-shape frame per window:
//
//   * counters   — the delta of the family total across the window;
//   * gauges     — the instantaneous value at window close;
//   * histograms — an interval summary (count, sum, p50/p99/p999) computed
//                  by diffing cumulative bucket snapshots
//                  (metrics::Histogram::Snapshot) — the histogram is never
//                  reset, so cumulative dumps stay byte-identical.
//
// The collector is a pure RuntimeObserver tap: it advances its window clock
// on the virtual timestamps the event bus already carries and never calls
// back into the runtime, so an attached collector leaves virtual time, event
// order and every other output file byte-identical — and an unattached one
// costs nothing at all. Frames live in a bounded ring (oldest dropped, drops
// counted); the dump is a deterministic TS_<name>.json, optionally flushed
// atomically (tmp+rename, like telemetry) during the run for live readers.
//
// An annotation channel records the run's discrete punctuation — node
// crashes/restarts, policy migrations, drains, recoveries — so a renderer
// (amber-plot) can mark *why* a series moved where it moved.
//
// MeasureMttr turns a recovery timeline into a number: the virtual time from
// a crash until the per-window signal re-enters its pre-crash band.

#ifndef AMBER_SRC_TSERIES_TSERIES_H_
#define AMBER_SRC_TSERIES_TSERIES_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/metrics/metrics.h"

namespace tseries {

// One discrete event worth marking on a chart.
struct Annotation {
  amber::Time when = 0;
  std::string kind;    // "crash", "restart", "migration", "drain", "recover", or user-defined
  std::string detail;  // e.g. "node3"
};

// Result of MeasureMttr (all times virtual nanoseconds).
struct MttrResult {
  bool measured = false;     // a recovery point was found
  bool dipped = false;       // the signal actually left the band after the crash
  amber::Time recovered_at = 0;  // end of the first window of the stable re-entry
  amber::Duration mttr = 0;      // recovered_at - crash time
  double band_lo = 0.0;          // the pre-crash band the signal had to re-enter
  double band_hi = 0.0;
};

struct MttrParams {
  size_t warmup_windows = 2;   // leading windows excluded from the band
  double band_expand = 0.5;    // band = [min,max] of pre-crash windows, widened
                               // each side by this fraction of the range
                               // (at least half a unit, for flat signals)
  size_t hold_windows = 3;     // consecutive in-band windows required
};

// Measures time-to-recovery of a per-window signal. `values[i]` is the
// signal for the window starting at start_ns + i * window_ns. The pre-crash
// band is [min, max] over the steady pre-crash windows (warmup excluded),
// expanded per MttrParams; recovery is the first run of hold_windows
// consecutive in-band windows at or after the crash.
MttrResult MeasureMttr(const std::vector<double>& values, amber::Time start_ns,
                       amber::Duration window_ns, amber::Time crash_ns,
                       const MttrParams& params = MttrParams{});

class Collector : public amber::RuntimeObserver {
 public:
  struct Config {
    std::string name = "amber";            // TS_<name>.json
    amber::Duration window_ns = 10'000'000;  // 10 ms virtual-time windows
    size_t max_frames = 4096;              // bounded ring; oldest frames dropped
    size_t max_annotations = 512;
    // Optional live export: rewrite `flush_path` atomically every
    // `flush_every_windows` closed windows. Empty path or 0 disables.
    std::string flush_path;
    uint64_t flush_every_windows = 0;
  };

  explicit Collector(Config config);

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  // The registry the watched families live in. Must outlive the collector's
  // use; AttachTo defaults it to the runtime's attached registry.
  void SetRegistry(metrics::Registry* registry) { registry_ = registry; }

  // --- Watch registration (call before the run; order = series order) -------

  // Watches the family total (sum across labels) as a per-window delta.
  void WatchCounter(const std::string& name);
  // Watches one gauge instance (instantaneous value at window close).
  void WatchGauge(const std::string& name, const std::string& label = "total");
  // Watches one histogram instance (per-window interval summary).
  void WatchHistogram(const std::string& name, const std::string& label = "total");

  // Joins the runtime's observer fan-out and adopts its registry unless one
  // was set explicitly. Call before Run().
  void AttachTo(amber::Runtime& rt);

  // Closes every window whose end is at or before `now`. Called from the
  // observer hooks below; harnesses that drive a registry without a runtime
  // (tests) may call it directly.
  void Advance(amber::Time now);

  // Closes the final (partial) window at the run's end time. Call after
  // Run() returns; idempotent for a given end.
  void Finish(amber::Time end);

  // Appends a user annotation (also advances the window clock to `when`).
  void Annotate(amber::Time when, const std::string& kind, const std::string& detail);

  // --- Results ---------------------------------------------------------------

  struct HistFrame {
    metrics::IntervalSummary summary;
    std::map<int, int64_t> bucket_deltas;  // for cross-window aggregation
  };
  // One closed window. Vectors parallel the Watch* registration order.
  struct Frame {
    int64_t index = 0;  // window number since virtual time 0
    std::vector<int64_t> counter_deltas;
    std::vector<double> gauge_values;
    std::vector<HistFrame> hists;
  };

  const std::string& name() const { return config_.name; }
  amber::Duration window_ns() const { return config_.window_ns; }
  const std::deque<Frame>& frames() const { return frames_; }
  int64_t windows_closed() const { return windows_closed_; }
  int64_t dropped_frames() const { return dropped_frames_; }
  const std::vector<Annotation>& annotations() const { return annotations_; }

  // Per-window values of one watched series as a flat vector (frames in ring
  // order). `series` is "counter:NAME", "gauge:NAME/LABEL" or
  // "hist:NAME/LABEL.p99" (also .p50/.p999/.count/.sum). Empty if unknown.
  std::vector<double> SeriesValues(const std::string& series) const;

  // Virtual start time of the first retained frame.
  amber::Time FirstFrameStart() const {
    return frames_.empty() ? 0 : frames_.front().index * config_.window_ns;
  }

  // Aggregates a watched histogram across retained windows [from, to)
  // (indices into frames()) by summing bucket deltas — the steady-state
  // extraction primitive.
  metrics::IntervalSummary AggregateHistogram(size_t hist_series, size_t from, size_t to) const;

  // Deterministic TS_<name>.json document.
  void WriteJson(std::ostream& out) const;
  // Writes the JSON document to `path` atomically via a .tmp sibling and
  // rename, so a concurrent reader never sees a torn file.
  bool FlushTo(const std::string& path) const;

  // --- RuntimeObserver: every timestamped event advances the window clock ---
  // (High-frequency families only; annotation-worthy events also annotate.)

  void OnThreadCreate(amber::Time when, amber::NodeId, amber::ThreadId, const std::string&,
                      amber::ThreadId) override {
    Advance(when);
  }
  void OnThreadDispatch(amber::Time when, amber::NodeId, amber::ThreadId,
                        amber::Duration) override {
    Advance(when);
  }
  void OnThreadBlock(amber::Time when, amber::NodeId, amber::ThreadId) override { Advance(when); }
  void OnThreadUnblock(amber::Time when, amber::NodeId, amber::ThreadId, amber::ThreadId,
                       amber::Time) override {
    Advance(when);
  }
  void OnThreadExit(amber::Time when, amber::NodeId, amber::ThreadId) override { Advance(when); }
  void OnInvokeEnter(amber::Time when, amber::NodeId, amber::ThreadId, const void*,
                     const std::string&, bool, amber::NodeId, amber::Duration) override {
    Advance(when);
  }
  void OnInvokeExit(amber::Time when, amber::NodeId, amber::ThreadId, amber::Duration, bool,
                    amber::Duration) override {
    Advance(when);
  }
  void OnMessage(amber::Time, amber::Time arrive, amber::NodeId, amber::NodeId,
                 int64_t) override {
    Advance(arrive);
  }
  void OnRpcRequest(amber::Time depart, amber::NodeId, amber::NodeId, int64_t, uint64_t,
                    amber::ThreadId) override {
    Advance(depart);
  }
  void OnRpcResponse(amber::Time when, amber::Time, amber::NodeId, amber::NodeId, int64_t,
                     uint64_t) override {
    Advance(when);
  }
  void OnNodeCrash(amber::Time when, amber::NodeId node) override {
    AddAnnotation(when, "crash", "node" + std::to_string(node));
  }
  void OnNodeRestart(amber::Time when, amber::NodeId node) override {
    AddAnnotation(when, "restart", "node" + std::to_string(node));
  }
  void OnPolicyMigration(amber::Time when, const void*, amber::NodeId from, amber::NodeId to,
                         bool ok, amber::Duration) override {
    if (ok) {
      AddAnnotation(when, "migration",
                    std::to_string(from) + "->" + std::to_string(to));
    }
  }
  void OnNodeDrained(amber::Time when, amber::NodeId node, int objects_moved) override {
    AddAnnotation(when, "drain",
                  "node" + std::to_string(node) + " x" + std::to_string(objects_moved));
  }
  void OnObjectRecovered(amber::Time when, const void*, amber::NodeId from, amber::NodeId to,
                         bool from_checkpoint) override {
    AddAnnotation(when, "recover",
                  std::to_string(from) + "->" + std::to_string(to) +
                      (from_checkpoint ? " checkpoint" : " replica"));
  }

 private:
  struct CounterWatch {
    std::string name;
  };
  struct GaugeWatch {
    std::string name;
    std::string label;
  };
  struct HistWatch {
    std::string name;
    std::string label;
    metrics::HistogramSnapshot last;  // snapshot at the previous window close
  };

  // Closes exactly one window ending at (closed+1) * window_ns.
  void CloseWindow();
  void AddAnnotation(amber::Time when, const std::string& kind, const std::string& detail);

  Config config_;
  metrics::Registry* registry_ = nullptr;
  std::vector<CounterWatch> counters_;
  std::vector<int64_t> counter_last_;  // family totals at the previous close
  std::vector<GaugeWatch> gauges_;
  std::vector<HistWatch> hists_;
  std::deque<Frame> frames_;
  std::vector<Annotation> annotations_;
  int64_t windows_closed_ = 0;  // windows closed since t=0 (== next frame index)
  int64_t dropped_frames_ = 0;
  int64_t dropped_annotations_ = 0;
  uint64_t until_flush_ = 0;
  bool finished_ = false;
};

}  // namespace tseries

#endif  // AMBER_SRC_TSERIES_TSERIES_H_
