// Per-node object descriptor tables (§3.2, §3.3).
//
// Each node holds, for every object it has ever dealt with, a descriptor
// saying whether the object is locally resident, a locally cached replica of
// an immutable object, or remote — in which case the descriptor carries a
// *forwarding address* (the last known location, possibly stale). An object
// the node has never dealt with has an *uninitialized* descriptor — in the
// paper this is detected through zero-filled pages; here, through absence
// from the table — and is resolved via the object's home node, computed from
// its address (§3.3).
//
// Invariant (checked by tests): at any ordered point, exactly one node's
// table marks a mutable object kResident, and every forwarding chain
// terminates at that node.

#ifndef AMBER_SRC_KERNEL_DESCRIPTOR_TABLE_H_
#define AMBER_SRC_KERNEL_DESCRIPTOR_TABLE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/base/panic.h"
#include "src/base/stats.h"
#include "src/sim/fiber.h"
#include "src/telemetry/telemetry.h"

namespace amber {

using sim::NodeId;
using sim::kNoNode;

enum class Residency : uint8_t {
  kUninitialized,  // never seen here: consult the home node
  kResident,       // object lives on this node
  kRemoteHint,     // forwarding address in Descriptor::forward (may be stale)
  kReplica,        // local copy of an immutable object
};

struct Descriptor {
  Residency state = Residency::kUninitialized;
  NodeId forward = kNoNode;
};

class DescriptorTable {
 public:
  explicit DescriptorTable(NodeId node) : node_(node) {}

  // The invocation-time check. Absent entries read as uninitialized.
  Descriptor Lookup(const void* obj) const {
    lookups_.Add();
    telemetry::CountIfActive(telemetry::Count::kDescriptorLookups);
    auto it = map_.find(obj);
    return it == map_.end() ? Descriptor{} : it->second;
  }

  bool IsResident(const void* obj) const {
    auto it = map_.find(obj);
    return it != map_.end() && it->second.state == Residency::kResident;
  }

  void SetResident(const void* obj) { map_[obj] = {Residency::kResident, kNoNode}; }

  // Leaves a forwarding address behind when the object departs (§3.3), or
  // refreshes a stale hint after a chain walk (path compaction).
  void SetForward(const void* obj, NodeId to) {
    AMBER_DCHECK(to != node_) << "forwarding to self";
    map_[obj] = {Residency::kRemoteHint, to};
  }

  // A replica also remembers where its bytes came from — a hint toward the
  // primary copy, so location queries made while standing on a replica can
  // still make progress (the hint may be stale, like any forwarding entry).
  void SetReplica(const void* obj, NodeId primary_hint = kNoNode) {
    map_[obj] = {Residency::kReplica, primary_hint};
  }

  // Object deleted on this node: drop local knowledge. Stale entries on
  // other nodes are tolerated by the heap's no-split rule (§3.2).
  void Erase(const void* obj) { map_.erase(obj); }

  NodeId node() const { return node_; }
  size_t entries() const { return map_.size(); }
  int64_t lookups() const { return lookups_.value(); }

  void ForEach(const std::function<void(const void*, const Descriptor&)>& fn) const {
    for (const auto& [obj, d] : map_) {
      fn(obj, d);
    }
  }

 private:
  NodeId node_;
  std::unordered_map<const void*, Descriptor> map_;
  mutable ::amber::Counter lookups_;
};

}  // namespace amber

#endif  // AMBER_SRC_KERNEL_DESCRIPTOR_TABLE_H_
