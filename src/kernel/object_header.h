// The object header (§3.2).
//
// "An Amber object is implemented as a record, the first part of which is
// its descriptor, and the remainder of which is its representation." In the
// paper the descriptor bytes at the object's address hold *per-node* state
// (resident bit, forwarding address) because every node has its own copy of
// that page. A single host process has exactly one copy of each address, so
// the per-node descriptor state lives in per-node DescriptorTables
// (descriptor_table.h) and this header carries the node-independent part:
// identity, home node, mobility linkage (attachment tree, §2.3), and the
// immutability flag.
//
// `owner` is the authoritative current location. The location *protocol*
// (forwarding chains, home-node fallback) never reads it — it is written by
// migration, read by invariant checks and tests, and consulted only at
// ordered points where the paper's kernel would hold the object's node lock.

#ifndef AMBER_SRC_KERNEL_OBJECT_HEADER_H_
#define AMBER_SRC_KERNEL_OBJECT_HEADER_H_

#include <cstdint>

#include "src/sim/fiber.h"

namespace amber {

using sim::NodeId;
using sim::kNoNode;

class Object;

enum ObjectFlags : uint32_t {
  kObjImmutable = 1u << 0,  // marked immutable; replicated on demand (§2.3)
  kObjMember = 1u << 1,     // member object: co-resident with its primary (§3.6)
  kObjStackLocal = 1u << 2, // stack/auto object: co-resident with its thread (§3.6)
  kObjThread = 1u << 3,     // thread object: co-resident with its fiber (§3.4)
  kObjRecoverable = 1u << 4, // opt-in checkpoint/restore crash recovery (docs/FAULTS.md)
};

struct ObjectHeader {
  static constexpr uint32_t kMagic = 0x00a8be20u;

  uint32_t magic = 0;
  uint32_t flags = 0;
  NodeId home = kNoNode;   // node owning the region the object was carved from
  NodeId owner = kNoNode;  // authoritative location (validation only; see above)
  uint64_t size = 0;       // usable segment size of the primary allocation

  // For member objects: the primary (containing) object whose location
  // governs this one. Null for primary objects.
  Object* primary = nullptr;

  // Attachment tree (§2.3): this object moves whenever `attach_parent`
  // moves; `first_child`/`next_sibling` form the intrusive child list.
  Object* attach_parent = nullptr;
  Object* first_child = nullptr;
  Object* next_sibling = nullptr;

  bool IsImmutable() const { return (flags & kObjImmutable) != 0; }
  bool IsMember() const { return (flags & kObjMember) != 0; }
  bool IsStackLocal() const { return (flags & kObjStackLocal) != 0; }
  bool IsThread() const { return (flags & kObjThread) != 0; }
  bool IsRecoverable() const { return (flags & kObjRecoverable) != 0; }
};

}  // namespace amber

#endif  // AMBER_SRC_KERNEL_OBJECT_HEADER_H_
