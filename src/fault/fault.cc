#include "src/fault/fault.h"

#include "src/base/panic.h"

namespace fault {

const char* DropReasonName(DropReason r) {
  switch (r) {
    case DropReason::kLossy:
      return "lossy";
    case DropReason::kPartition:
      return "partition";
    case DropReason::kNodeDown:
      return "node_down";
  }
  return "?";
}

void Injector::Attach(sim::Kernel* kernel, net::Network* net, rpc::Transport* rpc) {
  AMBER_CHECK(!attached_) << "fault injector attached twice";
  attached_ = true;
  if (!active()) {
    return;  // empty plan: leave every hook untouched (byte-identity contract)
  }
  kernel_ = kernel;
  net->SetFaultFilter(this);
  rpc->EnableReliability(true);
  for (const NodeEvent& e : plan_.node_events) {
    AMBER_CHECK(e.node >= 0 && e.node < kernel->nodes())
        << "fault plan crashes unknown node " << e.node;
    AMBER_CHECK(e.restart_at < 0 || e.restart_at > e.crash_at)
        << "node " << e.node << " restart at " << e.restart_at << " not after crash at "
        << e.crash_at;
    kernel->Post(e.crash_at, [this, node = e.node] {
      kernel_->SetNodeUp(node, false);
      ++crashes_;
      if (sink_ != nullptr) {
        sink_->OnNodeCrash(kernel_->Now(), node);
      }
      if (node_handler_) {
        node_handler_(kernel_->Now(), node, /*up=*/false);
      }
    });
    if (e.restart_at >= 0) {
      kernel->Post(e.restart_at, [this, node = e.node] {
        kernel_->SetNodeUp(node, true);
        ++restarts_;
        if (sink_ != nullptr) {
          sink_->OnNodeRestart(kernel_->Now(), node);
        }
        if (node_handler_) {
          node_handler_(kernel_->Now(), node, /*up=*/true);
        }
      });
    }
  }
}

bool Injector::NodeUp(NodeId node) const {
  return kernel_ == nullptr || kernel_->NodeUp(node);
}

bool Injector::Partitioned(NodeId src, NodeId dst, Time at) const {
  for (const Partition& p : plan_.partitions) {
    if (at < p.from || at >= p.until) {
      continue;
    }
    const bool fwd = (p.a == kAnyNode || p.a == src) && (p.b == kAnyNode || p.b == dst);
    const bool rev = (p.a == kAnyNode || p.a == dst) && (p.b == kAnyNode || p.b == src);
    if (fwd || rev) {
      return true;
    }
  }
  return false;
}

bool Injector::Reachable(NodeId src, NodeId dst, Time at) const {
  return NodeUp(src) && NodeUp(dst) && !Partitioned(src, dst, at);
}

const LinkRule* Injector::MatchRule(NodeId src, NodeId dst) const {
  for (const LinkRule& r : plan_.links) {
    if ((r.src == kAnyNode || r.src == src) && (r.dst == kAnyNode || r.dst == dst)) {
      return &r;
    }
  }
  return nullptr;
}

net::FaultDecision Injector::OnTransmit(NodeId src, NodeId dst, int64_t bytes, Time depart,
                                        bool bulk) {
  net::FaultDecision fd;
  // Fail-stop crashes and partitions are deterministic total loss; they are
  // checked before the probabilistic rules so they consume no RNG draws.
  DropReason reason;
  if (!NodeUp(src) || !NodeUp(dst)) {
    fd.action = net::FaultAction::kDrop;
    reason = DropReason::kNodeDown;
  } else if (Partitioned(src, dst, depart)) {
    fd.action = net::FaultAction::kDrop;
    reason = DropReason::kPartition;
  } else if (const LinkRule* r = MatchRule(src, dst); r != nullptr) {
    // Draws happen in a fixed order (drop, duplicate, delay) and only when
    // the corresponding probability is nonzero, so the stream of random
    // numbers is a pure function of the traffic sequence.
    if (r->drop > 0 && rng_.NextDouble() < r->drop) {
      fd.action = net::FaultAction::kDrop;
      reason = DropReason::kLossy;
    } else {
      // Bulk transfers never duplicate: the bulk protocol numbers its
      // fragments and suppresses duplicates below the delivery callback, so
      // no draw is consumed and no duplicate is counted for them.
      if (!bulk && r->duplicate > 0 && rng_.NextDouble() < r->duplicate) {
        fd.action = net::FaultAction::kDuplicate;
        ++duplicates_;
        if (sink_ != nullptr) {
          sink_->OnMessageDuplicated(depart, src, dst, bytes);
        }
      }
      if (r->delay > 0 && rng_.NextDouble() < r->delay) {
        fd.extra_delay = rng_.Range(r->delay_min, r->delay_max);
        ++delays_;
        if (sink_ != nullptr) {
          sink_->OnMessageDelayed(depart, src, dst, fd.extra_delay);
        }
      }
    }
  }
  if (fd.action == net::FaultAction::kDrop) {
    ++drops_;
    if (sink_ != nullptr) {
      sink_->OnMessageDropped(depart, src, dst, bytes, reason);
    }
  }
  return fd;
}

void Injector::OnArrivalAtDeadNode(NodeId src, NodeId dst, int64_t bytes, Time arrival) {
  ++drops_;
  if (sink_ != nullptr) {
    sink_->OnMessageDropped(arrival, src, dst, bytes, DropReason::kNodeDown);
  }
}

}  // namespace fault
