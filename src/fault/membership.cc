#include "src/fault/membership.h"

#include "src/base/panic.h"

namespace fault {

Membership::Membership(sim::Kernel* kernel, net::Network* net, MembershipConfig config)
    : kernel_(kernel), net_(net), config_(config) {
  AMBER_CHECK(config_.heartbeat_period > 0);
  AMBER_CHECK(config_.lease_periods >= 1);
  const int n = kernel_->nodes();
  seq_.assign(n, 0);
  last_heard_.assign(n, std::vector<Time>(n, 0));
  suspected_.assign(n, std::vector<bool>(n, false));
  tick_armed_.assign(n, false);
}

void Membership::Start() {
  for (NodeId node = 0; node < kernel_->nodes(); ++node) {
    ArmTick(node, config_.heartbeat_period);
  }
}

bool Membership::Suspects(NodeId viewer, NodeId peer) const {
  AMBER_CHECK(viewer >= 0 && viewer < kernel_->nodes());
  AMBER_CHECK(peer >= 0 && peer < kernel_->nodes());
  return suspected_[viewer][peer];
}

void Membership::OnNodeRestart(Time when, NodeId node) {
  AMBER_CHECK(node >= 0 && node < kernel_->nodes());
  for (NodeId peer = 0; peer < kernel_->nodes(); ++peer) {
    last_heard_[node][peer] = when;  // fresh lease: don't suspect for time spent down
    suspected_[node][peer] = false;
  }
  // If the whole cluster went quiet while this node was down, the tick
  // chains stopped; restart them so the reboot is heard.
  for (NodeId n = 0; n < kernel_->nodes(); ++n) {
    if (!tick_armed_[n]) {
      ArmTick(n, when + config_.heartbeat_period);
    }
  }
}

void Membership::ArmTick(NodeId node, Time at) {
  tick_armed_[node] = true;
  kernel_->Post(at, [this, node] { Tick(node); });
}

void Membership::Tick(NodeId node) {
  if (!kernel_->AnyLiveFiberOnUpNode()) {
    // Every runnable fiber is gone (or frozen on a dead node): stop ticking
    // so the event queue can drain. A restart event re-arms via
    // OnNodeRestart if frozen fibers come back to life.
    tick_armed_[node] = false;
    return;
  }
  const Time now = kernel_->Now();
  if (kernel_->NodeUp(node)) {
    ++seq_[node];
    for (NodeId peer = 0; peer < kernel_->nodes(); ++peer) {
      if (peer == node) {
        continue;
      }
      ++heartbeats_sent_;
      net_->Send(node, peer, config_.heartbeat_bytes, now, [this, node, peer] {
        // Runs at `peer` on arrival (the network re-checks receiver
        // liveness, so a frame landing on a crashed node never gets here).
        last_heard_[peer][node] = kernel_->Now();
        if (suspected_[peer][node]) {
          suspected_[peer][node] = false;
          if (on_trust_) {
            on_trust_(kernel_->Now(), peer, node);
          }
        }
      });
    }
    for (NodeId peer = 0; peer < kernel_->nodes(); ++peer) {
      if (peer == node || suspected_[node][peer]) {
        continue;
      }
      if (now - last_heard_[node][peer] > lease()) {
        suspected_[node][peer] = true;
        ++suspicions_;
        if (on_suspect_) {
          on_suspect_(now, node, peer);
        }
      }
    }
  }
  // A down node keeps its (silent) tick chain alive so it resumes
  // heartbeating right after a restart.
  ArmTick(node, now + config_.heartbeat_period);
}

}  // namespace fault
