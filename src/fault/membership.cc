#include "src/fault/membership.h"

#include "src/base/panic.h"
#include "src/rpc/wire.h"

namespace fault {

std::vector<uint8_t> Membership::EncodeHeartbeat(const Heartbeat& hb) {
  rpc::WireBuffer w;
  w.PutU8(hb.has_summary ? 2 : hb.version);
  w.PutU64(hb.seq);
  w.PutU32(static_cast<uint32_t>(hb.sender));
  if (hb.has_summary) {
    w.PutU32(static_cast<uint32_t>(hb.summary.runnable));
    w.PutU32(static_cast<uint32_t>(hb.summary.busy));
    w.PutU32(static_cast<uint32_t>(hb.summary.hot_objects));
    w.PutU32(static_cast<uint32_t>(hb.summary.recent_migrations));
  }
  return w.bytes();
}

Membership::Heartbeat Membership::DecodeHeartbeat(const std::vector<uint8_t>& bytes) {
  rpc::WireBuffer r(bytes);
  Heartbeat hb;
  hb.version = r.GetU8();
  hb.seq = r.GetU64();
  hb.sender = static_cast<NodeId>(r.GetU32());
  // The summary extension rides after the base frame. A frame from the
  // future (version > 2) may append further fields after it; everything past
  // what this decoder understands is deliberately ignored.
  if (hb.version >= 2 && r.remaining() >= static_cast<size_t>(kSummaryWireBytes)) {
    hb.has_summary = true;
    hb.summary.runnable = static_cast<int32_t>(r.GetU32());
    hb.summary.busy = static_cast<int32_t>(r.GetU32());
    hb.summary.hot_objects = static_cast<int32_t>(r.GetU32());
    hb.summary.recent_migrations = static_cast<int32_t>(r.GetU32());
  }
  return hb;
}

Membership::Membership(sim::Kernel* kernel, net::Network* net, MembershipConfig config)
    : kernel_(kernel), net_(net), config_(config) {
  AMBER_CHECK(config_.heartbeat_period > 0);
  AMBER_CHECK(config_.lease_periods >= 1);
  const int n = kernel_->nodes();
  seq_.assign(n, 0);
  last_heard_.assign(n, std::vector<Time>(n, 0));
  suspected_.assign(n, std::vector<bool>(n, false));
  tick_armed_.assign(n, false);
}

void Membership::Start() {
  for (NodeId node = 0; node < kernel_->nodes(); ++node) {
    ArmTick(node, config_.heartbeat_period);
  }
}

void Membership::Hear(NodeId viewer, NodeId sender) {
  last_heard_[viewer][sender] = kernel_->Now();
  if (suspected_[viewer][sender]) {
    suspected_[viewer][sender] = false;
    if (on_trust_) {
      on_trust_(kernel_->Now(), viewer, sender);
    }
  }
}

bool Membership::Suspects(NodeId viewer, NodeId peer) const {
  AMBER_CHECK(viewer >= 0 && viewer < kernel_->nodes());
  AMBER_CHECK(peer >= 0 && peer < kernel_->nodes());
  return suspected_[viewer][peer];
}

void Membership::OnNodeRestart(Time when, NodeId node) {
  AMBER_CHECK(node >= 0 && node < kernel_->nodes());
  for (NodeId peer = 0; peer < kernel_->nodes(); ++peer) {
    last_heard_[node][peer] = when;  // fresh lease: don't suspect for time spent down
    suspected_[node][peer] = false;
  }
  // If the whole cluster went quiet while this node was down, the tick
  // chains stopped; restart them so the reboot is heard.
  for (NodeId n = 0; n < kernel_->nodes(); ++n) {
    if (!tick_armed_[n]) {
      ArmTick(n, when + config_.heartbeat_period);
    }
  }
}

void Membership::ArmTick(NodeId node, Time at) {
  tick_armed_[node] = true;
  kernel_->Post(at, [this, node] { Tick(node); });
}

void Membership::Tick(NodeId node) {
  if (!kernel_->AnyLiveFiberOnUpNode()) {
    // Every runnable fiber is gone (or frozen on a dead node): stop ticking
    // so the event queue can drain. A restart event re-arms via
    // OnNodeRestart if frozen fibers come back to life.
    tick_armed_[node] = false;
    return;
  }
  const Time now = kernel_->Now();
  if (kernel_->NodeUp(node)) {
    ++seq_[node];
    // With a summary provider attached the heartbeat carries an encoded v2
    // payload (and pays for it on the wire); without one, the plain v1 path
    // below is untouched so policy-free runs stay byte-identical.
    Heartbeat hb;
    std::vector<uint8_t> frame;
    int64_t wire_bytes = config_.heartbeat_bytes;
    if (summary_provider_ != nullptr) {
      hb.seq = seq_[node];
      hb.sender = node;
      if (summary_provider_(node, &hb.summary)) {
        hb.has_summary = true;
        wire_bytes += kSummaryWireBytes;
      }
      frame = EncodeHeartbeat(hb);
    }
    for (NodeId peer = 0; peer < kernel_->nodes(); ++peer) {
      if (peer == node) {
        continue;
      }
      ++heartbeats_sent_;
      if (frame.empty()) {
        net_->Send(node, peer, config_.heartbeat_bytes, now, [this, node, peer] {
          // Runs at `peer` on arrival (the network re-checks receiver
          // liveness, so a frame landing on a crashed node never gets here).
          Hear(peer, node);
        });
      } else {
        net_->Send(node, peer, wire_bytes, now, [this, node, peer, frame] {
          Hear(peer, node);
          if (summary_handler_) {
            const Heartbeat rx = DecodeHeartbeat(frame);
            if (rx.has_summary) {
              summary_handler_(kernel_->Now(), peer, rx.sender, rx.summary);
            }
          }
        });
      }
    }
    for (NodeId peer = 0; peer < kernel_->nodes(); ++peer) {
      if (peer == node || suspected_[node][peer]) {
        continue;
      }
      if (now - last_heard_[node][peer] > lease()) {
        suspected_[node][peer] = true;
        ++suspicions_;
        if (on_suspect_) {
          on_suspect_(now, node, peer);
        }
      }
    }
  }
  // A down node keeps its (silent) tick chain alive so it resumes
  // heartbeating right after a restart.
  ArmTick(node, now + config_.heartbeat_period);
}

}  // namespace fault
