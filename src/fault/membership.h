// Heartbeat/lease membership: failure detection without an oracle.
//
// Every node broadcasts a small sequence-numbered heartbeat datagram to every
// other node once per heartbeat period, over the ordinary net::Network — so
// heartbeats queue on the shared medium, are dropped by lossy link rules and
// partitions, and die with a crashed sender exactly like application traffic.
// Each node records, per peer, the virtual time it last heard a heartbeat;
// when a node's own periodic scan finds a peer silent for longer than the
// lease (lease_periods heartbeat periods), it declares the peer *suspected*
// and fires the suspicion handler. Hearing a heartbeat from a suspected peer
// clears the suspicion (trust handler). Suspicion is per-viewer: a
// partitioned pair suspect each other while third parties still trust both.
//
// The runtime consults Suspects() everywhere it used to consult the fault
// injector's perfect-failure-detector oracle (NodeUp / Reachable): the
// forwarding-chain repair broadcast, move/replicate destination screening,
// the transport's early give-up, and the crash-recovery election. The oracle
// remains only as *ground truth* in tests, which grade this protocol: a node
// unreachable from t0 is suspected no later than t0 + lease + 2 periods, and
// the standard 5% loss plan produces zero false suspicions at the default
// lease (membership_test.cc).
//
// Determinism: ticks fire at fixed virtual times in node order, heartbeat
// frames take fault draws from the injector's single RNG like any other
// frame, and all state changes happen in event context — the same
// (plan, seed) yields the same suspicion history, byte for byte.

#ifndef AMBER_SRC_FAULT_MEMBERSHIP_H_
#define AMBER_SRC_FAULT_MEMBERSHIP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/time.h"
#include "src/net/network.h"
#include "src/sim/kernel.h"

namespace fault {

using amber::Duration;
using amber::Time;
using sim::NodeId;

struct MembershipConfig {
  Duration heartbeat_period = amber::Millis(5);
  int lease_periods = 4;        // suspect after this many silent periods
  int64_t heartbeat_bytes = 40; // seqno + sender id + protocol framing
};

// Compact per-node load summary piggybacked on heartbeats for the adaptive
// placement policy (src/policy): each node gossips what its scheduler looks
// like so peers can make pull/steal decisions from an eventually-consistent
// local view instead of a global one.
struct LoadSummary {
  int32_t runnable = 0;           // run-queue depth at the sender
  int32_t busy = 0;               // busy processors at the sender
  int32_t hot_objects = 0;        // resident objects above the policy heat floor
  int32_t recent_migrations = 0;  // policy pulls issued in the current budget window
};

class Membership {
 public:
  // (when, viewer, peer): `viewer` changed its opinion of `peer`.
  using Handler = std::function<void(Time when, NodeId viewer, NodeId peer)>;
  // Fills `out` with the sender's current load summary; return false to send
  // a plain (v1) heartbeat this period.
  using SummaryProvider = std::function<bool(NodeId sender, LoadSummary* out)>;
  // (when, viewer, sender, summary): `viewer` heard `sender`'s summary.
  using SummaryHandler =
      std::function<void(Time when, NodeId viewer, NodeId sender, const LoadSummary& summary)>;

  // Versioned heartbeat payload. v1 is the base frame (version, seqno,
  // sender); v2 appends the load summary. Decoders ignore unknown trailing
  // bytes, so a v1-era node interoperates with a v2 sender: it reads the
  // base fields and skips the extension (wire-compat test in fault_test).
  struct Heartbeat {
    uint8_t version = 1;  // 1 = base frame, 2 = base + load summary
    uint64_t seq = 0;
    NodeId sender = 0;
    bool has_summary = false;
    LoadSummary summary;
  };

  // Wire size of the encoded v2 extension (4 x u32).
  static constexpr int64_t kSummaryWireBytes = 16;

  static std::vector<uint8_t> EncodeHeartbeat(const Heartbeat& hb);
  static Heartbeat DecodeHeartbeat(const std::vector<uint8_t>& bytes);

  Membership(sim::Kernel* kernel, net::Network* net, MembershipConfig config = {});

  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  // Arms every node's heartbeat tick. Call once, before Kernel::Run().
  void Start();

  // Whether `viewer` currently suspects `peer` of having failed. A node
  // never suspects itself.
  bool Suspects(NodeId viewer, NodeId peer) const;

  // Boot-time reset for a restarted node: it re-enters the group with a
  // fresh lease on every peer and no suspicions (its pre-crash view is
  // stale), and any tick chain that wound down while the cluster was idle
  // is re-armed. Peers clear their suspicion of the restarted node only
  // when they actually hear its next heartbeat — no oracle shortcut.
  void OnNodeRestart(Time when, NodeId node);

  void SetSuspicionHandler(Handler h) { on_suspect_ = std::move(h); }
  void SetTrustHandler(Handler h) { on_trust_ = std::move(h); }

  // Piggybacks load summaries on heartbeats. With no provider attached the
  // wire format, byte counts and delivery closures are exactly the v1
  // protocol — a policy-free run is byte-identical. With a provider, each
  // heartbeat grows by kSummaryWireBytes and carries the sender's summary;
  // receivers with a handler attached get it on arrival.
  void SetSummaryProvider(SummaryProvider p) { summary_provider_ = std::move(p); }
  void SetSummaryHandler(SummaryHandler h) { summary_handler_ = std::move(h); }

  // The silence window after which a peer is suspected.
  Duration lease() const { return config_.heartbeat_period * config_.lease_periods; }
  const MembershipConfig& config() const { return config_; }

  int64_t heartbeats_sent() const { return heartbeats_sent_; }
  int64_t suspicions() const { return suspicions_; }

 private:
  void ArmTick(NodeId node, Time at);
  void Tick(NodeId node);
  void Hear(NodeId viewer, NodeId sender);

  sim::Kernel* kernel_;
  net::Network* net_;
  MembershipConfig config_;
  std::vector<uint64_t> seq_;                // per-sender heartbeat seqno
  std::vector<std::vector<Time>> last_heard_; // [viewer][peer]
  std::vector<std::vector<bool>> suspected_;  // [viewer][peer]
  std::vector<bool> tick_armed_;
  Handler on_suspect_;
  Handler on_trust_;
  SummaryProvider summary_provider_;
  SummaryHandler summary_handler_;
  int64_t heartbeats_sent_ = 0;
  int64_t suspicions_ = 0;
};

}  // namespace fault

#endif  // AMBER_SRC_FAULT_MEMBERSHIP_H_
