// Heartbeat/lease membership: failure detection without an oracle.
//
// Every node broadcasts a small sequence-numbered heartbeat datagram to every
// other node once per heartbeat period, over the ordinary net::Network — so
// heartbeats queue on the shared medium, are dropped by lossy link rules and
// partitions, and die with a crashed sender exactly like application traffic.
// Each node records, per peer, the virtual time it last heard a heartbeat;
// when a node's own periodic scan finds a peer silent for longer than the
// lease (lease_periods heartbeat periods), it declares the peer *suspected*
// and fires the suspicion handler. Hearing a heartbeat from a suspected peer
// clears the suspicion (trust handler). Suspicion is per-viewer: a
// partitioned pair suspect each other while third parties still trust both.
//
// The runtime consults Suspects() everywhere it used to consult the fault
// injector's perfect-failure-detector oracle (NodeUp / Reachable): the
// forwarding-chain repair broadcast, move/replicate destination screening,
// the transport's early give-up, and the crash-recovery election. The oracle
// remains only as *ground truth* in tests, which grade this protocol: a node
// unreachable from t0 is suspected no later than t0 + lease + 2 periods, and
// the standard 5% loss plan produces zero false suspicions at the default
// lease (membership_test.cc).
//
// Determinism: ticks fire at fixed virtual times in node order, heartbeat
// frames take fault draws from the injector's single RNG like any other
// frame, and all state changes happen in event context — the same
// (plan, seed) yields the same suspicion history, byte for byte.

#ifndef AMBER_SRC_FAULT_MEMBERSHIP_H_
#define AMBER_SRC_FAULT_MEMBERSHIP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/time.h"
#include "src/net/network.h"
#include "src/sim/kernel.h"

namespace fault {

using amber::Duration;
using amber::Time;
using sim::NodeId;

struct MembershipConfig {
  Duration heartbeat_period = amber::Millis(5);
  int lease_periods = 4;        // suspect after this many silent periods
  int64_t heartbeat_bytes = 40; // seqno + sender id + protocol framing
};

class Membership {
 public:
  // (when, viewer, peer): `viewer` changed its opinion of `peer`.
  using Handler = std::function<void(Time when, NodeId viewer, NodeId peer)>;

  Membership(sim::Kernel* kernel, net::Network* net, MembershipConfig config = {});

  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  // Arms every node's heartbeat tick. Call once, before Kernel::Run().
  void Start();

  // Whether `viewer` currently suspects `peer` of having failed. A node
  // never suspects itself.
  bool Suspects(NodeId viewer, NodeId peer) const;

  // Boot-time reset for a restarted node: it re-enters the group with a
  // fresh lease on every peer and no suspicions (its pre-crash view is
  // stale), and any tick chain that wound down while the cluster was idle
  // is re-armed. Peers clear their suspicion of the restarted node only
  // when they actually hear its next heartbeat — no oracle shortcut.
  void OnNodeRestart(Time when, NodeId node);

  void SetSuspicionHandler(Handler h) { on_suspect_ = std::move(h); }
  void SetTrustHandler(Handler h) { on_trust_ = std::move(h); }

  // The silence window after which a peer is suspected.
  Duration lease() const { return config_.heartbeat_period * config_.lease_periods; }
  const MembershipConfig& config() const { return config_; }

  int64_t heartbeats_sent() const { return heartbeats_sent_; }
  int64_t suspicions() const { return suspicions_; }

 private:
  void ArmTick(NodeId node, Time at);
  void Tick(NodeId node);

  sim::Kernel* kernel_;
  net::Network* net_;
  MembershipConfig config_;
  std::vector<uint64_t> seq_;                // per-sender heartbeat seqno
  std::vector<std::vector<Time>> last_heard_; // [viewer][peer]
  std::vector<std::vector<bool>> suspected_;  // [viewer][peer]
  std::vector<bool> tick_armed_;
  Handler on_suspect_;
  Handler on_trust_;
  int64_t heartbeats_sent_ = 0;
  int64_t suspicions_ = 0;
};

}  // namespace fault

#endif  // AMBER_SRC_FAULT_MEMBERSHIP_H_
