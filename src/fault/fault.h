// Deterministic fault injection.
//
// A FaultPlan is a declarative description of everything that will go wrong
// in a run: per-link loss/duplication/delay probabilities, link partitions
// over virtual-time windows, and node crash/restart events. The Injector
// executes the plan by hooking the network's transmission path (as a
// net::FaultFilter) and the kernel's node state — all draws come from one
// seeded amber::Rng consulted in virtual-time order, so a (plan, seed) pair
// reproduces the exact same failure sequence on every run.
//
// Contract (see docs/FAULTS.md):
//   * An EMPTY plan is inert: Attach() installs nothing, no generator is
//     consulted, no timers are posted — every output byte is identical to a
//     run without the fault subsystem linked at all.
//   * A non-empty plan flips rpc::Transport into reliability mode (timeouts,
//     capped exponential backoff retransmission, duplicate suppression) so
//     lost frames surface as retries or typed timeout errors, never hangs.
//   * Node crashes are fail-stop freezes: a down node dispatches nothing,
//     all frames to or from it are dropped at departure time, and frames
//     already in flight when it crashes are discarded on arrival; memory
//     and queued state survive a restart.
//   * The Injector's NodeUp/Reachable view is *ground truth*, used by tests
//     to grade the heartbeat/lease membership service (membership.h) —
//     detection latency, false suspicions. The runtime's repair and recovery
//     paths consult Membership::Suspects, never this oracle.

#ifndef AMBER_SRC_FAULT_FAULT_H_
#define AMBER_SRC_FAULT_FAULT_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/net/network.h"
#include "src/rpc/transport.h"
#include "src/sim/kernel.h"

namespace fault {

using amber::Duration;
using amber::Time;
using sim::NodeId;

inline constexpr Time kForever = std::numeric_limits<Time>::max();
inline constexpr NodeId kAnyNode = -1;

// Why a frame was dropped (observer/metrics label).
enum class DropReason : uint8_t { kLossy, kPartition, kNodeDown };

const char* DropReasonName(DropReason r);

// Probabilistic misbehaviour of one direction of one link. kAnyNode
// wildcards match every endpoint; the first matching rule wins.
struct LinkRule {
  NodeId src = kAnyNode;
  NodeId dst = kAnyNode;
  double drop = 0.0;       // P(frame lost)
  double duplicate = 0.0;  // P(frame delivered twice), if not dropped
  double delay = 0.0;      // P(extra receive-side delay), if not dropped
  Duration delay_min = 0;  // uniform extra delay bounds
  Duration delay_max = 0;
};

// Total loss between two endpoints over a virtual-time window [from, until).
// Matches either direction; kAnyNode isolates a node from everyone.
struct Partition {
  NodeId a = kAnyNode;
  NodeId b = kAnyNode;
  Time from = 0;
  Time until = kForever;
};

// Fail-stop crash at crash_at; restart_at < 0 means the node never returns.
struct NodeEvent {
  NodeId node = 0;
  Time crash_at = 0;
  Time restart_at = -1;
};

struct FaultPlan {
  uint64_t seed = 1;
  std::vector<LinkRule> links;
  std::vector<Partition> partitions;
  std::vector<NodeEvent> node_events;

  bool empty() const { return links.empty() && partitions.empty() && node_events.empty(); }
};

// Receives fault events as they happen (at ordered points, virtual
// timestamps). The Amber runtime implements this to fan events out to its
// RuntimeObserver bus and the fault.* metrics.
class FaultSink {
 public:
  virtual ~FaultSink() = default;
  virtual void OnMessageDropped(Time when, NodeId src, NodeId dst, int64_t bytes,
                                DropReason reason) {}
  virtual void OnMessageDuplicated(Time when, NodeId src, NodeId dst, int64_t bytes) {}
  virtual void OnMessageDelayed(Time when, NodeId src, NodeId dst, Duration extra) {}
  virtual void OnNodeCrash(Time when, NodeId node) {}
  virtual void OnNodeRestart(Time when, NodeId node) {}
};

class Injector : public net::FaultFilter {
 public:
  explicit Injector(FaultPlan plan) : plan_(std::move(plan)), rng_(plan_.seed) {}

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  // True when the plan can actually perturb a run. Inactive injectors must
  // not be observable in any output.
  bool active() const { return !plan_.empty(); }

  // Installs the injector into a simulation: hooks the network's
  // transmission path, switches the transport onto its timeout/retry path,
  // and schedules the plan's crash/restart events. Call once, before
  // Kernel::Run(). A no-op when the plan is empty.
  void Attach(sim::Kernel* kernel, net::Network* net, rpc::Transport* rpc);

  // Attaches an event sink (nullptr detaches). May be set before or after
  // Attach().
  void SetSink(FaultSink* sink) { sink_ = sink; }

  // Node lifecycle hook: called in event context, after the kernel's node
  // state has flipped, for every executed crash/restart plan event. Unlike
  // the FaultSink (observability, optional) this drives *semantics*: the
  // runtime uses it for membership bookkeeping and boot-time recovery of a
  // restarted node's descriptor tables.
  using NodeEventHandler = std::function<void(Time when, NodeId node, bool up)>;
  void SetNodeEventHandler(NodeEventHandler handler) { node_handler_ = std::move(handler); }

  // --- Failure-detector oracle (test ground truth) ---------------------------

  // Whether `node` is up right now (true before Attach()).
  bool NodeUp(NodeId node) const;

  // Whether a frame sent src->dst at time `at` could be delivered at all:
  // both endpoints up and no partition covering the pair at `at`. Ignores
  // probabilistic loss (that is noise, not reachability).
  bool Reachable(NodeId src, NodeId dst, Time at) const;

  // --- net::FaultFilter ------------------------------------------------------

  net::FaultDecision OnTransmit(NodeId src, NodeId dst, int64_t bytes, Time depart,
                                bool bulk) override;

  // A frame already in flight when its destination crashed was discarded by
  // the network at arrival time: counted and reported as a kNodeDown drop.
  void OnArrivalAtDeadNode(NodeId src, NodeId dst, int64_t bytes, Time arrival) override;

  // --- Statistics ------------------------------------------------------------

  int64_t drops() const { return drops_; }
  int64_t duplicates() const { return duplicates_; }
  int64_t delays() const { return delays_; }
  int64_t crashes() const { return crashes_; }
  int64_t restarts() const { return restarts_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  bool Partitioned(NodeId src, NodeId dst, Time at) const;
  const LinkRule* MatchRule(NodeId src, NodeId dst) const;

  FaultPlan plan_;
  amber::Rng rng_;
  bool attached_ = false;
  sim::Kernel* kernel_ = nullptr;  // set only by an *active* Attach()
  FaultSink* sink_ = nullptr;
  NodeEventHandler node_handler_;
  int64_t drops_ = 0;
  int64_t duplicates_ = 0;
  int64_t delays_ = 0;
  int64_t crashes_ = 0;
  int64_t restarts_ = 0;
};

}  // namespace fault

#endif  // AMBER_SRC_FAULT_FAULT_H_
