#include "src/metrics/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <iostream>

namespace metrics {
namespace {

// JSON number rendering: integral values print without a fraction so counter
// sums and nanosecond timestamps stay exact; everything else uses %.9g.
// Both forms are deterministic functions of the value's bit pattern.
std::string Num(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "0");  // JSON has no inf/nan
  }
  return buf;
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

IntervalSummary Histogram::Diff(const HistogramSnapshot& prev, const HistogramSnapshot& cur) {
  std::map<int, int64_t> deltas;
  for (const auto& [bucket, count] : cur.buckets) {
    auto it = prev.buckets.find(bucket);
    const int64_t d = count - (it != prev.buckets.end() ? it->second : 0);
    if (d > 0) {
      deltas[bucket] = d;
    }
  }
  return SummaryFromBuckets(deltas, cur.sum - prev.sum);
}

namespace {

// Percentile estimate over bucketed counts: find the bucket holding the
// target rank, interpolate linearly inside its value range. Bucket 0 covers
// [0, 2), bucket b >= 1 covers [2^b, 2^(b+1)).
double BucketPercentile(const std::map<int, int64_t>& buckets, int64_t total, double p) {
  const double rank = (p / 100.0) * static_cast<double>(total - 1);
  int64_t below = 0;
  for (const auto& [bucket, count] : buckets) {
    if (static_cast<double>(below + count) > rank) {
      const double lo = bucket == 0 ? 0.0 : static_cast<double>(int64_t{1} << bucket);
      const double hi = static_cast<double>(int64_t{1} << (bucket + 1));
      const double frac = (rank - static_cast<double>(below)) / static_cast<double>(count);
      return lo + frac * (hi - lo);
    }
    below += count;
  }
  return buckets.empty() ? 0.0 : static_cast<double>(int64_t{1} << (buckets.rbegin()->first + 1));
}

}  // namespace

IntervalSummary Histogram::SummaryFromBuckets(const std::map<int, int64_t>& bucket_deltas,
                                              double sum) {
  IntervalSummary out;
  for (const auto& [bucket, count] : bucket_deltas) {
    out.count += count;
  }
  out.sum = sum;
  if (out.count <= 0) {
    return IntervalSummary{};
  }
  out.p50 = BucketPercentile(bucket_deltas, out.count, 50.0);
  out.p99 = BucketPercentile(bucket_deltas, out.count, 99.0);
  out.p999 = BucketPercentile(bucket_deltas, out.count, 99.9);
  return out;
}

Exemplar Histogram::ExemplarNear(double v) const {
  Exemplar best;
  double best_dist = 0.0;
  for (const auto& [bucket, ex] : exemplars_) {
    const double dist = std::fabs(ex.value - v);
    if (best.trace_id == 0 || dist < best_dist) {
      best = ex;
      best_dist = dist;
    }
  }
  return best;
}

template <typename Family>
typename Family::mapped_type& Registry::Lookup(std::map<std::string, Family>& families,
                                               const std::string& name, const std::string& label,
                                               typename Family::mapped_type& sink) {
  Family& fam = families[name];
  auto it = fam.find(label);
  if (it != fam.end()) {
    return it->second;
  }
  if (fam.size() >= label_cap_) {
    NoteDroppedLabel(name);
    return sink;
  }
  return fam[label];
}

void Registry::NoteDroppedLabel(const std::string& name) {
  ++dropped_labels_;
  // Bypass the capped lookup: the drop counter itself must always land.
  counters_["metrics.dropped_labels"]["total"].Add(1);
  bool& warned = warned_families_[name];
  if (!warned) {
    warned = true;
    std::cerr << "metrics: family \"" << name << "\" hit the label cap (" << label_cap_
              << "); further new labels are dropped (metrics.dropped_labels counts them)\n";
  }
}

Counter& Registry::GetCounter(const std::string& name, const std::string& label) {
  return Lookup(counters_, name, label, counter_sink_);
}

Gauge& Registry::GetGauge(const std::string& name, const std::string& label) {
  return Lookup(gauges_, name, label, gauge_sink_);
}

Histogram& Registry::GetHistogram(const std::string& name, const std::string& label) {
  return Lookup(histograms_, name, label, histogram_sink_);
}

const Registry::CounterFamily* Registry::FindCounters(const std::string& name) const {
  auto it = counters_.find(name);
  return it != counters_.end() ? &it->second : nullptr;
}

const Registry::GaugeFamily* Registry::FindGauges(const std::string& name) const {
  auto it = gauges_.find(name);
  return it != gauges_.end() ? &it->second : nullptr;
}

const Registry::HistogramFamily* Registry::FindHistograms(const std::string& name) const {
  auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

int64_t Registry::CounterTotal(const std::string& name) const {
  const CounterFamily* fam = FindCounters(name);
  if (fam == nullptr) {
    return 0;
  }
  int64_t total = 0;
  for (const auto& [label, c] : *fam) {
    total += c.value();
  }
  return total;
}

void Registry::WriteJson(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first_fam = true;
  for (const auto& [name, fam] : counters_) {
    out << (first_fam ? "\n" : ",\n") << "    " << Quote(name) << ": {";
    first_fam = false;
    bool first = true;
    for (const auto& [label, c] : fam) {
      out << (first ? "" : ", ") << Quote(label) << ": " << c.value();
      first = false;
    }
    out << "}";
  }
  out << (first_fam ? "" : "\n  ") << "},\n  \"gauges\": {";
  first_fam = true;
  for (const auto& [name, fam] : gauges_) {
    out << (first_fam ? "\n" : ",\n") << "    " << Quote(name) << ": {";
    first_fam = false;
    bool first = true;
    for (const auto& [label, g] : fam) {
      out << (first ? "" : ", ") << Quote(label) << ": " << Num(g.value());
      first = false;
    }
    out << "}";
  }
  out << (first_fam ? "" : "\n  ") << "},\n  \"histograms\": {";
  first_fam = true;
  for (const auto& [name, fam] : histograms_) {
    out << (first_fam ? "\n" : ",\n") << "    " << Quote(name) << ": {";
    first_fam = false;
    bool first = true;
    for (const auto& [label, h] : fam) {
      out << (first ? "\n      " : ",\n      ") << Quote(label) << ": {\"count\": " << h.count()
          << ", \"sum\": " << Num(h.sum()) << ", \"min\": " << Num(h.min())
          << ", \"max\": " << Num(h.max()) << ", \"mean\": " << Num(h.mean())
          << ", \"p50\": " << Num(h.Percentile(50)) << ", \"p90\": " << Num(h.Percentile(90))
          << ", \"p99\": " << Num(h.Percentile(99)) << ", \"p999\": " << Num(h.Percentile(99.9));
      // Exemplars render only when present, so histograms recorded without
      // trace ids emit exactly the pre-exemplar document.
      if (!h.exemplars().empty()) {
        out << ", \"exemplars\": {";
        bool first_ex = true;
        for (const auto& [bucket, ex] : h.exemplars()) {
          out << (first_ex ? "" : ", ") << "\"" << bucket << "\": {\"value\": " << Num(ex.value)
              << ", \"trace_id\": " << ex.trace_id << "}";
          first_ex = false;
        }
        out << "}";
      }
      out << "}";
      first = false;
    }
    out << (first ? "}" : "\n    }");
  }
  out << (first_fam ? "" : "\n  ") << "}\n}\n";
}

}  // namespace metrics
