// Metrics registry: named counters, gauges and virtual-time histograms.
//
// A Registry is a flat, deterministic store of named metric families, each
// holding one instance per *label* — "total" for the scalar case, "node3"
// for per-node dimensions, "0->2" for per-link / migration-matrix cells.
// The Amber runtime registers its core metrics (invocation latency,
// migration traffic, run-queue wait, lock contention, per-link bytes) when
// a registry is attached with Runtime::SetMetrics(); applications and
// benchmarks register their own through the same Get* calls.
//
// All values are derived from virtual time and deterministic event order,
// so WriteJson() output is byte-identical across identical runs — the
// machine-readable stats document benchmarks dump as BENCH_<name>.json and
// future changes diff against.
//
// Registries are not thread-safe; the simulation is single-host-threaded.

#ifndef AMBER_SRC_METRICS_METRICS_H_
#define AMBER_SRC_METRICS_METRICS_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "src/base/stats.h"

namespace metrics {

// Monotonic integer counter.
class Counter {
 public:
  void Add(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Last-value-wins instantaneous measurement.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed set of tail quantiles reports care about. Extracted in one call so a
// consumer (bench tables, the scale harness's per-event dispatch cost) takes
// a consistent snapshot instead of four lazy sorts.
struct PercentileSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

// Sample-retaining distribution with percentile queries, built on
// amber::Samples. Values are virtual-time durations in nanoseconds unless a
// family documents otherwise.
class Histogram {
 public:
  void Record(double v) {
    samples_.Add(v);
    acc_.Add(v);
  }

  int64_t count() const { return acc_.count(); }
  double sum() const { return acc_.sum(); }
  double min() const { return acc_.min(); }
  double max() const { return acc_.max(); }
  double mean() const { return acc_.mean(); }
  // p in [0, 100]. Returns 0 for an empty histogram.
  double Percentile(double p) const {
    return samples_.count() > 0 ? samples_.Percentile(p) : 0.0;
  }
  // p50/p90/p99/p999 in one snapshot (all 0 for an empty histogram).
  PercentileSummary Summary() const {
    return PercentileSummary{Percentile(50), Percentile(90), Percentile(99), Percentile(99.9)};
  }

 private:
  mutable amber::Samples samples_;  // Percentile() sorts lazily
  amber::Accumulator acc_;
};

class Registry {
 public:
  using CounterFamily = std::map<std::string, Counter>;
  using GaugeFamily = std::map<std::string, Gauge>;
  using HistogramFamily = std::map<std::string, Histogram>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // --- Registration / lookup (creates the instance on first use) -----------

  Counter& GetCounter(const std::string& name) { return counters_[name]["total"]; }
  Counter& GetCounter(const std::string& name, int node) {
    return counters_[name][NodeLabel(node)];
  }
  Counter& GetCounter(const std::string& name, const std::string& label) {
    return counters_[name][label];
  }

  Gauge& GetGauge(const std::string& name) { return gauges_[name]["total"]; }
  Gauge& GetGauge(const std::string& name, int node) { return gauges_[name][NodeLabel(node)]; }
  Gauge& GetGauge(const std::string& name, const std::string& label) {
    return gauges_[name][label];
  }

  Histogram& GetHistogram(const std::string& name) { return histograms_[name]["total"]; }
  Histogram& GetHistogram(const std::string& name, int node) {
    return histograms_[name][NodeLabel(node)];
  }
  Histogram& GetHistogram(const std::string& name, const std::string& label) {
    return histograms_[name][label];
  }

  // --- Read-only access (reports) ------------------------------------------

  // Returns the family, or nullptr if no metric with that name exists.
  const CounterFamily* FindCounters(const std::string& name) const;
  const GaugeFamily* FindGauges(const std::string& name) const;
  const HistogramFamily* FindHistograms(const std::string& name) const;

  // Sum of a counter family across all labels (0 if absent).
  int64_t CounterTotal(const std::string& name) const;

  const std::map<std::string, CounterFamily>& counters() const { return counters_; }
  const std::map<std::string, GaugeFamily>& gauges() const { return gauges_; }
  const std::map<std::string, HistogramFamily>& histograms() const { return histograms_; }

  // --- Rendering ------------------------------------------------------------

  // Stable machine-readable document:
  //   {"counters": {name: {label: value}},
  //    "gauges":   {name: {label: value}},
  //    "histograms": {name: {label: {count,sum,min,max,mean,p50,p90,p99,p999}}}}
  // Families and labels render in lexicographic order; identical runs
  // produce byte-identical output.
  void WriteJson(std::ostream& out) const;

  static std::string NodeLabel(int node) { return "node" + std::to_string(node); }
  static std::string LinkLabel(int src, int dst) {
    return std::to_string(src) + "->" + std::to_string(dst);
  }

 private:
  std::map<std::string, CounterFamily> counters_;
  std::map<std::string, GaugeFamily> gauges_;
  std::map<std::string, HistogramFamily> histograms_;
};

}  // namespace metrics

#endif  // AMBER_SRC_METRICS_METRICS_H_
