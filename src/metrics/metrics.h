// Metrics registry: named counters, gauges and virtual-time histograms.
//
// A Registry is a flat, deterministic store of named metric families, each
// holding one instance per *label* — "total" for the scalar case, "node3"
// for per-node dimensions, "0->2" for per-link / migration-matrix cells.
// The Amber runtime registers its core metrics (invocation latency,
// migration traffic, run-queue wait, lock contention, per-link bytes) when
// a registry is attached with Runtime::SetMetrics(); applications and
// benchmarks register their own through the same Get* calls.
//
// All values are derived from virtual time and deterministic event order,
// so WriteJson() output is byte-identical across identical runs — the
// machine-readable stats document benchmarks dump as BENCH_<name>.json and
// future changes diff against.
//
// Registries are not thread-safe; the simulation is single-host-threaded.

#ifndef AMBER_SRC_METRICS_METRICS_H_
#define AMBER_SRC_METRICS_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "src/base/stats.h"

namespace metrics {

// Monotonic integer counter.
class Counter {
 public:
  void Add(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Last-value-wins instantaneous measurement.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed set of tail quantiles reports care about. Extracted in one call so a
// consumer (bench tables, the scale harness's per-event dispatch cost) takes
// a consistent snapshot instead of four lazy sorts.
struct PercentileSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

// Cumulative state of a histogram at one instant: total count, total sum,
// and the per-power-of-two-bucket counts Record maintains. Snapshots are
// cheap value copies; diffing two of them recovers the *interval* between
// the snapshot points without resetting anything — the histogram keeps
// accumulating and its cumulative WriteJson rendering stays byte-identical.
// This is what the windowed-rollup collector (src/tseries) is built on.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  std::map<int, int64_t> buckets;  // BucketOf(v) -> cumulative observations
};

// Summary of the observations that landed between two snapshots. The
// percentiles are estimated from the bucket-count deltas by linear
// interpolation inside the matched power-of-two bucket — coarser than the
// sample-exact cumulative Percentile(), but computable from two O(buckets)
// snapshots, and ordered by construction (p50 <= p99 <= p999).
struct IntervalSummary {
  int64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

// OpenMetrics-style exemplar: one concrete observation retained per
// power-of-two bucket, carrying the trace id of the request that produced
// it. The p999 bucket of a latency histogram thereby names a real trace a
// tool (amber-tail) can reconstruct, instead of an anonymous quantile.
struct Exemplar {
  double value = 0.0;
  uint64_t trace_id = 0;
};

// Sample-retaining distribution with percentile queries, built on
// amber::Samples. Values are virtual-time durations in nanoseconds unless a
// family documents otherwise.
class Histogram {
 public:
  void Record(double v) {
    samples_.Add(v);
    acc_.Add(v);
    ++bucket_counts_[BucketOf(v)];
  }

  // Records v and, when trace_id is nonzero (a sampled trace), retains it as
  // the exemplar of v's power-of-two bucket (most recent observation wins).
  // Record(v, 0) is byte-for-byte equivalent to Record(v): exemplars render
  // only when at least one exists, so unsampled runs emit unchanged JSON.
  void Record(double v, uint64_t trace_id) {
    Record(v);
    if (trace_id != 0) {
      exemplars_[BucketOf(v)] = Exemplar{v, trace_id};
    }
  }

  int64_t count() const { return acc_.count(); }
  double sum() const { return acc_.sum(); }
  double min() const { return acc_.min(); }
  double max() const { return acc_.max(); }
  double mean() const { return acc_.mean(); }
  // p in [0, 100]. Returns 0 for an empty histogram.
  double Percentile(double p) const {
    return samples_.count() > 0 ? samples_.Percentile(p) : 0.0;
  }
  // p50/p90/p99/p999 in one snapshot (all 0 for an empty histogram).
  PercentileSummary Summary() const {
    return PercentileSummary{Percentile(50), Percentile(90), Percentile(99), Percentile(99.9)};
  }

  // Bucket index: floor(log2(v)) for v >= 1, 0 below (ordered map keys keep
  // the JSON rendering deterministic).
  static int BucketOf(double v) {
    uint64_t n = v >= 1.0 ? static_cast<uint64_t>(v) : 1;
    int b = 0;
    while (n >>= 1) {
      ++b;
    }
    return b;
  }

  // Cumulative snapshot for interval diffing (see HistogramSnapshot). Pure
  // read: takes nothing out of the histogram, so cumulative dumps taken
  // before and after a snapshot render byte-identically.
  HistogramSnapshot Snapshot() const {
    return HistogramSnapshot{acc_.count(), acc_.sum(), bucket_counts_};
  }

  // The observations that landed between `prev` and `cur` (prev must be the
  // earlier snapshot of the same histogram). Zero summary for an empty
  // interval.
  static IntervalSummary Diff(const HistogramSnapshot& prev, const HistogramSnapshot& cur);

  // Interval summary straight from a bucket-delta map (count = sum of the
  // deltas). This is Diff's core, exposed so a consumer that accumulates
  // bucket deltas across several intervals (steady-state extraction in
  // bench_serve --sweep) can summarize the union without re-snapshotting.
  static IntervalSummary SummaryFromBuckets(const std::map<int, int64_t>& bucket_deltas,
                                            double sum);

  // Exemplars by bucket index (empty unless Record(v, trace_id) ran).
  const std::map<int, Exemplar>& exemplars() const { return exemplars_; }

  // The retained exemplar whose value lies closest to v — how a consumer
  // resolves "which trace is my p999" — or a zero Exemplar when none exist.
  Exemplar ExemplarNear(double v) const;

 private:
  mutable amber::Samples samples_;  // Percentile() sorts lazily
  amber::Accumulator acc_;
  std::map<int, int64_t> bucket_counts_;  // cumulative, for Snapshot()
  std::map<int, Exemplar> exemplars_;
};

class Registry {
 public:
  using CounterFamily = std::map<std::string, Counter>;
  using GaugeFamily = std::map<std::string, Gauge>;
  using HistogramFamily = std::map<std::string, Histogram>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // --- Registration / lookup (creates the instance on first use) -----------
  //
  // Per-family label cardinality is capped (SetLabelCap, default 4096): the
  // first lookup past the cap warns once per family on stderr, bumps the
  // `metrics.dropped_labels` counter, and returns a family-shared sink
  // instance that WriteJson never renders — so a per-object or per-trace
  // label dimension gone wrong degrades one family instead of blowing up
  // the JSON document or the host heap.

  Counter& GetCounter(const std::string& name) { return GetCounter(name, std::string("total")); }
  Counter& GetCounter(const std::string& name, int node) {
    return GetCounter(name, NodeLabel(node));
  }
  Counter& GetCounter(const std::string& name, const std::string& label);

  Gauge& GetGauge(const std::string& name) { return GetGauge(name, std::string("total")); }
  Gauge& GetGauge(const std::string& name, int node) { return GetGauge(name, NodeLabel(node)); }
  Gauge& GetGauge(const std::string& name, const std::string& label);

  Histogram& GetHistogram(const std::string& name) {
    return GetHistogram(name, std::string("total"));
  }
  Histogram& GetHistogram(const std::string& name, int node) {
    return GetHistogram(name, NodeLabel(node));
  }
  Histogram& GetHistogram(const std::string& name, const std::string& label);

  // Maximum distinct labels per family before new labels drop to the sink.
  void SetLabelCap(size_t cap) { label_cap_ = cap; }
  size_t label_cap() const { return label_cap_; }
  int64_t dropped_labels() const { return dropped_labels_; }

  // --- Read-only access (reports) ------------------------------------------

  // Returns the family, or nullptr if no metric with that name exists.
  const CounterFamily* FindCounters(const std::string& name) const;
  const GaugeFamily* FindGauges(const std::string& name) const;
  const HistogramFamily* FindHistograms(const std::string& name) const;

  // Sum of a counter family across all labels (0 if absent).
  int64_t CounterTotal(const std::string& name) const;

  const std::map<std::string, CounterFamily>& counters() const { return counters_; }
  const std::map<std::string, GaugeFamily>& gauges() const { return gauges_; }
  const std::map<std::string, HistogramFamily>& histograms() const { return histograms_; }

  // --- Rendering ------------------------------------------------------------

  // Stable machine-readable document:
  //   {"counters": {name: {label: value}},
  //    "gauges":   {name: {label: value}},
  //    "histograms": {name: {label: {count,sum,min,max,mean,p50,p90,p99,p999}}}}
  // Families and labels render in lexicographic order; identical runs
  // produce byte-identical output.
  void WriteJson(std::ostream& out) const;

  static std::string NodeLabel(int node) { return "node" + std::to_string(node); }
  static std::string LinkLabel(int src, int dst) {
    return std::to_string(src) + "->" + std::to_string(dst);
  }

 private:
  // Shared lookup-with-cap: existing labels always resolve; a new label in a
  // full family drops to `sink` (never rendered) and is counted.
  template <typename Family>
  typename Family::mapped_type& Lookup(std::map<std::string, Family>& families,
                                       const std::string& name, const std::string& label,
                                       typename Family::mapped_type& sink);
  void NoteDroppedLabel(const std::string& name);

  std::map<std::string, CounterFamily> counters_;
  std::map<std::string, GaugeFamily> gauges_;
  std::map<std::string, HistogramFamily> histograms_;
  size_t label_cap_ = 4096;
  int64_t dropped_labels_ = 0;
  std::map<std::string, bool> warned_families_;
  Counter counter_sink_;
  Gauge gauge_sink_;
  Histogram histogram_sink_;
};

}  // namespace metrics

#endif  // AMBER_SRC_METRICS_METRICS_H_
