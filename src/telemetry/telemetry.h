// Host-side self-telemetry: wall-clock profiling of the simulator itself.
//
// Every other observability layer in this repo (metrics, profiler, flight
// recorder) measures *virtual* time. This library measures what the DES core
// costs on the host — wall-clock time per subsystem, events per second, heap
// in use — which is what ROADMAP item 1 (scale to 256–1024 nodes) needs to
// optimize against.
//
// The contract that keeps the rest of the system honest:
//
//   * Telemetry never touches virtual time. Hooks read CLOCK_MONOTONIC and
//     feed host-side aggregates only; enabling or disabling the profiler
//     cannot change any simulation result, event order, or the bytes of any
//     BENCH/PROF/FDR output.
//   * Zero cost when disabled: every hot-path hook is one inline null-check
//     of a process-global pointer. The simulation is single-host-threaded,
//     so a plain global (no atomics) is correct.
//   * Deterministic schema: TELEMETRY_<name>.json has a fixed key set, and
//     the sample ring is keyed to *event counts*, not wall time — so the
//     virtual-time / event / queue-depth fields are identical across
//     identical runs and only the wall-clock readings differ.
//     WriteJson(out, /*scrub_wall=*/true) zeroes exactly those readings,
//     which is what the byte-compare tests diff.
//
// Layering: this is a base-level library (std only) so src/sim can link it.

#ifndef AMBER_SRC_TELEMETRY_TELEMETRY_H_
#define AMBER_SRC_TELEMETRY_TELEMETRY_H_

#include <cstddef>
#include <cstdint>
#include <ctime>
#include <ostream>
#include <string>
#include <vector>

namespace telemetry {

// Host monotonic clock, nanoseconds. Via vDSO this is ~20ns per call — cheap
// in isolation, but the DES core turns an event in a few hundred ns, so even
// one read per event would be a measurable tax. The profiler therefore reads
// the clock sparsely: the event loop takes one telescoped reading every
// kLoopClockEvery iterations (consecutive differences still sum to the exact
// total), scoped timers sample 1 in kScopeSampleEvery calls and extrapolate,
// and the hottest sites (descriptor lookups, allocation accounting) use pure
// counter tallies with no clock at all.
inline int64_t NowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return int64_t{ts.tv_sec} * 1000000000 + ts.tv_nsec;
}

// Wall-time buckets, one per instrumented subsystem. kEventLoop is the
// umbrella (a whole event-queue iteration, including any fiber slice and
// observer fan-out it contains); the others are nested subsets, so bucket
// times overlap by design and do not sum to the run's wall time.
enum class Bucket : int {
  kEventLoop = 0,      // one EventQueue::RunOne iteration
  kFiberRun = 1,       // kernel→fiber context switch until the switch back
  kObserverFanout = 2, // RuntimeObserver / metrics bridge emission
  kNetDelivery = 3,    // net::Network delivery closure execution
};
inline constexpr int kBucketCount = 4;
const char* BucketName(Bucket b);

// Pure counters for hot sites where even one clock read would dominate.
enum class Count : int {
  kEvents = 0,            // event-loop iterations
  kDispatches = 1,        // fiber switch-ins from TryDispatch
  kDescriptorLookups = 2, // DescriptorTable::Lookup calls
  kAllocations = 3,       // SegmentAllocator::Allocate calls
  kAllocBytes = 4,        // bytes requested from SegmentAllocator
};
inline constexpr int kCountCount = 5;
const char* CountName(Count c);

class SelfProfiler {
 public:
  struct Config {
    std::string name = "amber";     // TELEMETRY_<name>.json
    // Take a time-series sample every N event-loop iterations. Event-count
    // cadence (not wall time) keeps the sampled virtual times deterministic.
    uint64_t sample_every_events = 8192;
    // Ring of most-recent samples kept in memory (fixed size; old samples
    // are overwritten — sized so a dump stays small at any run length).
    size_t ring_capacity = 1024;
    // Optional live export: rewrite TELEMETRY_<name>.json (atomically, via
    // tmp+rename) every `flush_every_samples` samples so `amber-top` can
    // follow the run. Empty path or 0 disables.
    std::string flush_path;
    uint64_t flush_every_samples = 0;
  };

  struct Sample {
    int64_t virtual_time_ns = 0;  // deterministic
    int64_t wall_ns = 0;          // since Enable(); host-dependent
    int64_t events = 0;           // cumulative event-loop iterations (deterministic)
    int64_t queue_depth = 0;      // pending events after this one (deterministic)
    int64_t heap_bytes = 0;       // mallinfo2 in-use bytes; -1 if unavailable
  };

  explicit SelfProfiler(Config config);
  ~SelfProfiler();

  SelfProfiler(const SelfProfiler&) = delete;
  SelfProfiler& operator=(const SelfProfiler&) = delete;

  // Makes this the process-global active profiler (hot paths see it through
  // active()). Disable() detaches and accumulates the enabled wall time.
  void Enable();
  void Disable();
  bool enabled() const { return g_active_ == this; }

  static SelfProfiler* active() { return g_active_; }

  // --- Hot paths (inline; callers have already null-checked active()) ------

  // Telescoped event-loop clock: read every kLoopClockEvery iterations. The
  // deltas between consecutive readings sum to the exact elapsed wall time,
  // so coarse reads lose sample granularity but never total accuracy.
  static constexpr int64_t kLoopClockEvery = 32;
  // Scoped timers (fiber_run, observer_fanout, net_delivery) read the clock
  // on 1 of every kScopeSampleEvery calls and extrapolate; calls are always
  // counted exactly.
  static constexpr uint32_t kScopeSampleEvery = 32;  // power of two

  void AddBucket(Bucket b, int64_t wall_ns) {
    BucketAcc& acc = buckets_[static_cast<int>(b)];
    ++acc.calls;
    acc.wall_ns += wall_ns;
  }

  void Add(Count c, int64_t n = 1) { counts_[static_cast<int>(c)] += n; }

  // One event-loop iteration finished with the virtual clock at
  // `virtual_now_ns` and `queue_depth` events pending. Counts the event,
  // advances the telescoped loop clock, and feeds the sample ring on its
  // event-count cadence. Countdown counters (not modulo) keep the per-event
  // cost to increments and predictable branches.
  void OnEventLoopIteration(int64_t virtual_now_ns, size_t queue_depth) {
    ++buckets_[static_cast<int>(Bucket::kEventLoop)].calls;
    ++counts_[static_cast<int>(Count::kEvents)];
    if (--until_clock_ == 0) {
      until_clock_ = kLoopClockEvery;
      const int64_t now = NowNs();
      buckets_[static_cast<int>(Bucket::kEventLoop)].wall_ns += now - last_loop_ns_;
      last_loop_ns_ = now;
    }
    if (--until_sample_ == 0) {
      until_sample_ = static_cast<int64_t>(sample_every_);
      TakeSample(virtual_now_ns, static_cast<int64_t>(queue_depth));
    }
  }

  // Re-anchors the telescoped loop clock without attributing anything — the
  // kernel calls this when its loop starts, so setup time between Enable()
  // and the first event never lands in the event_loop bucket.
  void ResetLoopClock() {
    last_loop_ns_ = NowNs();
    until_clock_ = kLoopClockEvery;
  }

  // Closes the current telescoped block, attributing the tail since the last
  // reading to the event-loop bucket. The kernel calls this when its loop
  // drains.
  void SyncLoopClock() {
    const int64_t now = NowNs();
    buckets_[static_cast<int>(Bucket::kEventLoop)].wall_ns += now - last_loop_ns_;
    last_loop_ns_ = now;
  }

  // Begin/End for sampled scoped timing (used by ScopedWallTimer). Begin
  // counts the call and returns a start timestamp for sampled calls, 0 for
  // the rest; End adds the measured span to the bucket's sampled pool.
  int64_t BeginScope(Bucket b) {
    BucketAcc& acc = buckets_[static_cast<int>(b)];
    ++acc.calls;
    if ((acc.tick++ & (kScopeSampleEvery - 1)) == 0) {
      ++acc.sampled_calls;
      return NowNs();
    }
    return 0;
  }
  void EndScope(Bucket b, int64_t start) {
    buckets_[static_cast<int>(b)].sampled_ns += NowNs() - start;
  }

  // A fiber was switched in on `node` (per-node dispatch attribution).
  void NodeDispatch(int node) {
    Add(Count::kDispatches);
    if (node >= 0 && node < static_cast<int>(node_dispatches_.size())) {
      ++node_dispatches_[node];
    }
  }

  // Sizes the per-node dispatch table (idempotent; keeps existing counts
  // when the node count is unchanged). The kernel calls this at Run() start.
  void SetNodeCount(int nodes);

  // --- Results --------------------------------------------------------------

  const std::string& name() const { return config_.name; }
  int64_t count(Count c) const { return counts_[static_cast<int>(c)]; }
  int64_t bucket_calls(Bucket b) const { return buckets_[static_cast<int>(b)].calls; }
  // Exact accumulation plus the sampled-scope extrapolation
  // (sampled_ns * calls / sampled_calls).
  int64_t bucket_wall_ns(Bucket b) const {
    const BucketAcc& acc = buckets_[static_cast<int>(b)];
    int64_t total = acc.wall_ns;
    if (acc.sampled_calls > 0) {
      total += acc.sampled_ns * acc.calls / acc.sampled_calls;
    }
    return total;
  }
  const std::vector<int64_t>& node_dispatches() const { return node_dispatches_; }
  int64_t samples_taken() const { return total_samples_; }

  // Total wall time spent enabled (closed periods plus the current one).
  int64_t EnabledWallNs() const;
  // count(kEvents) / EnabledWallNs, 0 if no wall time has accrued.
  double EventsPerSec() const;

  // Samples oldest-first (at most ring_capacity; earlier ones overwritten).
  std::vector<Sample> SamplesChronological() const;

  // Fixed-schema JSON document. With scrub_wall, every host-dependent field
  // (wall times, heap bytes, events/sec) renders as 0 — the remaining bytes
  // are a deterministic function of the simulation.
  void WriteJson(std::ostream& out, bool scrub_wall = false) const;

  // OpenMetrics-style text exposition (amber_selfprof_* families).
  void WriteOpenMetrics(std::ostream& out) const;

  // Writes the (unscrubbed) JSON document to `path` atomically, via a .tmp
  // sibling and rename, so a concurrent reader never sees a torn file.
  bool FlushTo(const std::string& path) const;

 private:
  struct BucketAcc {
    int64_t calls = 0;
    int64_t wall_ns = 0;       // exact accumulation (event_loop telescoping)
    int64_t sampled_ns = 0;    // measured spans from sampled scope calls
    int64_t sampled_calls = 0; // how many calls contributed to sampled_ns
    uint32_t tick = 0;         // rotates the 1-in-kScopeSampleEvery choice
  };

  void TakeSample(int64_t virtual_now_ns, int64_t queue_depth);

  inline static SelfProfiler* g_active_ = nullptr;

  Config config_;
  uint64_t sample_every_;
  int64_t until_sample_;         // countdown to the next ring sample
  int64_t until_clock_ = kLoopClockEvery;  // countdown to the next loop clock read
  int64_t last_loop_ns_ = 0;     // previous telescoped clock reading
  BucketAcc buckets_[kBucketCount] = {};
  int64_t counts_[kCountCount] = {};
  std::vector<int64_t> node_dispatches_;
  std::vector<Sample> ring_;
  int64_t total_samples_ = 0;
  int64_t enabled_wall_ns_ = 0;  // closed enable..disable periods
  int64_t enable_start_ns_ = 0;  // NowNs() at Enable, 0 when disabled
};

// Adds `n` to counter `c` iff a profiler is active. The disabled cost is one
// global load and branch — safe for the hottest sites (descriptor lookups,
// allocation accounting).
inline void CountIfActive(Count c, int64_t n = 1) {
  SelfProfiler* p = SelfProfiler::active();
  if (p != nullptr) {
    p->Add(c, n);
  }
}

// Times a scope into `bucket` iff a profiler is active at construction.
// Disabled cost: one global load and branch, no clock reads. Enabled cost:
// an exact call tally always, clock reads only on the 1-in-kScopeSampleEvery
// sampled calls (the bucket's wall time is extrapolated from those).
class ScopedWallTimer {
 public:
  explicit ScopedWallTimer(Bucket bucket)
      : prof_(SelfProfiler::active()),
        bucket_(bucket),
        start_(prof_ != nullptr ? prof_->BeginScope(bucket) : 0) {}
  ~ScopedWallTimer() {
    if (start_ != 0) {
      prof_->EndScope(bucket_, start_);
    }
  }

  ScopedWallTimer(const ScopedWallTimer&) = delete;
  ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;

 private:
  SelfProfiler* prof_;
  Bucket bucket_;
  int64_t start_;
};

}  // namespace telemetry

#endif  // AMBER_SRC_TELEMETRY_TELEMETRY_H_
