#include "src/telemetry/telemetry.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#if defined(__GLIBC__) && defined(__GLIBC_PREREQ)
#if __GLIBC_PREREQ(2, 33)
#include <malloc.h>
#define AMBER_HAVE_MALLINFO2 1
#endif
#endif

namespace telemetry {
namespace {

// In-use heap bytes as glibc sees them; -1 where mallinfo2 is unavailable.
// Advisory only — never part of the deterministic schema fields.
int64_t HeapInUseBytes() {
#ifdef AMBER_HAVE_MALLINFO2
  struct mallinfo2 mi = mallinfo2();
  return static_cast<int64_t>(mi.uordblks);
#else
  return -1;
#endif
}

// Deterministic double rendering for the few non-integral JSON values.
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

const char* BucketName(Bucket b) {
  switch (b) {
    case Bucket::kEventLoop:
      return "event_loop";
    case Bucket::kFiberRun:
      return "fiber_run";
    case Bucket::kObserverFanout:
      return "observer_fanout";
    case Bucket::kNetDelivery:
      return "net_delivery";
  }
  return "unknown";
}

const char* CountName(Count c) {
  switch (c) {
    case Count::kEvents:
      return "events";
    case Count::kDispatches:
      return "dispatches";
    case Count::kDescriptorLookups:
      return "descriptor_lookups";
    case Count::kAllocations:
      return "allocations";
    case Count::kAllocBytes:
      return "alloc_bytes";
  }
  return "unknown";
}

SelfProfiler::SelfProfiler(Config config)
    : config_(std::move(config)),
      sample_every_(config_.sample_every_events),
      // A zero cadence means "never sample": park the countdown far away.
      until_sample_(config_.sample_every_events > 0
                        ? static_cast<int64_t>(config_.sample_every_events)
                        : std::numeric_limits<int64_t>::max()) {
  ring_.reserve(config_.ring_capacity);
}

SelfProfiler::~SelfProfiler() {
  if (enabled()) {
    Disable();
  }
}

void SelfProfiler::Enable() {
  if (enabled()) {
    return;
  }
  g_active_ = this;
  enable_start_ns_ = NowNs();
  last_loop_ns_ = enable_start_ns_;  // anchor the telescoped loop clock
  until_clock_ = kLoopClockEvery;
}

void SelfProfiler::Disable() {
  if (!enabled()) {
    return;
  }
  enabled_wall_ns_ += NowNs() - enable_start_ns_;
  enable_start_ns_ = 0;
  g_active_ = nullptr;
}

void SelfProfiler::SetNodeCount(int nodes) {
  if (nodes > static_cast<int>(node_dispatches_.size())) {
    node_dispatches_.resize(nodes, 0);
  }
}

int64_t SelfProfiler::EnabledWallNs() const {
  int64_t total = enabled_wall_ns_;
  if (enable_start_ns_ != 0) {
    total += NowNs() - enable_start_ns_;
  }
  return total;
}

double SelfProfiler::EventsPerSec() const {
  const int64_t wall = EnabledWallNs();
  if (wall <= 0) {
    return 0.0;
  }
  return static_cast<double>(count(Count::kEvents)) * 1e9 / static_cast<double>(wall);
}

void SelfProfiler::TakeSample(int64_t virtual_now_ns, int64_t queue_depth) {
  Sample s;
  s.virtual_time_ns = virtual_now_ns;
  s.wall_ns = enable_start_ns_ != 0 ? NowNs() - enable_start_ns_ : EnabledWallNs();
  s.events = count(Count::kEvents);
  s.queue_depth = queue_depth;
  s.heap_bytes = HeapInUseBytes();
  if (config_.ring_capacity == 0) {
    return;
  }
  if (ring_.size() < config_.ring_capacity) {
    ring_.push_back(s);
  } else {
    ring_[static_cast<size_t>(total_samples_) % config_.ring_capacity] = s;
  }
  ++total_samples_;
  if (!config_.flush_path.empty() && config_.flush_every_samples > 0 &&
      static_cast<uint64_t>(total_samples_) % config_.flush_every_samples == 0) {
    FlushTo(config_.flush_path);
  }
}

std::vector<SelfProfiler::Sample> SelfProfiler::SamplesChronological() const {
  std::vector<Sample> out;
  out.reserve(ring_.size());
  if (ring_.size() < config_.ring_capacity || config_.ring_capacity == 0) {
    out = ring_;  // not yet wrapped: ring order is chronological
  } else {
    const size_t start = static_cast<size_t>(total_samples_) % config_.ring_capacity;
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
  }
  return out;
}

void SelfProfiler::WriteJson(std::ostream& out, bool scrub_wall) const {
  auto wall = [scrub_wall](int64_t v) { return scrub_wall ? int64_t{0} : v; };
  out << "{\n";
  out << "  \"telemetry\": \"" << config_.name << "\",\n";
  out << "  \"schema\": 1,\n";
  out << "  \"enabled_wall_ns\": " << wall(EnabledWallNs()) << ",\n";
  out << "  \"counts\": {";
  for (int c = 0; c < kCountCount; ++c) {
    out << (c == 0 ? "" : ", ") << "\"" << CountName(static_cast<Count>(c))
        << "\": " << counts_[c];
  }
  out << "},\n";
  out << "  \"buckets\": {";
  for (int b = 0; b < kBucketCount; ++b) {
    out << (b == 0 ? "\n" : ",\n") << "    \"" << BucketName(static_cast<Bucket>(b))
        << "\": {\"calls\": " << buckets_[b].calls
        << ", \"wall_ns\": " << wall(bucket_wall_ns(static_cast<Bucket>(b))) << "}";
  }
  out << "\n  },\n";
  out << "  \"node_dispatches\": [";
  for (size_t n = 0; n < node_dispatches_.size(); ++n) {
    out << (n == 0 ? "" : ", ") << node_dispatches_[n];
  }
  out << "],\n";
  out << "  \"samples\": [";
  const std::vector<Sample> samples = SamplesChronological();
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"virtual_time_ns\": " << s.virtual_time_ns
        << ", \"wall_ns\": " << wall(s.wall_ns) << ", \"events\": " << s.events
        << ", \"queue_depth\": " << s.queue_depth
        << ", \"heap_bytes\": " << wall(s.heap_bytes) << "}";
  }
  out << (samples.empty() ? "" : "\n  ") << "],\n";
  out << "  \"totals\": {\"events_per_sec\": " << (scrub_wall ? "0" : Num(EventsPerSec()))
      << "}\n";
  out << "}\n";
}

void SelfProfiler::WriteOpenMetrics(std::ostream& out) const {
  out << "# TYPE amber_selfprof_count_total counter\n";
  for (int c = 0; c < kCountCount; ++c) {
    out << "amber_selfprof_count_total{kind=\"" << CountName(static_cast<Count>(c))
        << "\"} " << counts_[c] << "\n";
  }
  out << "# TYPE amber_selfprof_bucket_calls_total counter\n";
  for (int b = 0; b < kBucketCount; ++b) {
    out << "amber_selfprof_bucket_calls_total{bucket=\"" << BucketName(static_cast<Bucket>(b))
        << "\"} " << buckets_[b].calls << "\n";
  }
  out << "# TYPE amber_selfprof_bucket_wall_seconds_total counter\n";
  for (int b = 0; b < kBucketCount; ++b) {
    out << "amber_selfprof_bucket_wall_seconds_total{bucket=\""
        << BucketName(static_cast<Bucket>(b)) << "\"} "
        << Num(static_cast<double>(bucket_wall_ns(static_cast<Bucket>(b))) / 1e9) << "\n";
  }
  out << "# TYPE amber_selfprof_node_dispatches_total counter\n";
  for (size_t n = 0; n < node_dispatches_.size(); ++n) {
    out << "amber_selfprof_node_dispatches_total{node=\"" << n << "\"} " << node_dispatches_[n]
        << "\n";
  }
  out << "# TYPE amber_selfprof_enabled_wall_seconds gauge\n";
  out << "amber_selfprof_enabled_wall_seconds "
      << Num(static_cast<double>(EnabledWallNs()) / 1e9) << "\n";
  out << "# TYPE amber_selfprof_events_per_second gauge\n";
  out << "amber_selfprof_events_per_second " << Num(EventsPerSec()) << "\n";
  out << "# EOF\n";
}

bool SelfProfiler::FlushTo(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    WriteJson(out, /*scrub_wall=*/false);
    if (!out.good()) {
      return false;
    }
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace telemetry
