// Simulated interconnect: a 10 Mbit/s shared-medium Ethernet.
//
// The bus is modelled as a single FIFO channel: each frame occupies the
// medium for media-access overhead plus size/bandwidth, so concurrent
// senders queue behind one another — reproducing the saturation behaviour
// that limits small-grid SOR speedup (paper Figure 3). Bulk transfers
// (object moves, §4.2 "efficient bulk transfer protocol") fragment at the
// MTU and pay a reduced per-fragment overhead.
//
// Division of labour: the *sender's CPU* costs (marshalling, RPC software
// path) are charged by the RPC layer to the sending fiber so they occupy a
// simulated processor; the Network accounts only for wire occupancy,
// propagation, and the receive-side software path (modelled as latency).

#ifndef AMBER_SRC_NET_NETWORK_H_
#define AMBER_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "src/base/stats.h"
#include "src/sim/cost_model.h"
#include "src/sim/kernel.h"

namespace metrics {
class Registry;
}

namespace net {

using amber::Counter;
using amber::Duration;
using amber::Time;
using sim::NodeId;

// Interconnect organization. The paper's testbed is a shared 10 Mbit/s
// Ethernet (kSharedBus); kSwitched models the "new high-throughput
// networks" its §5 anticipates — independent full-duplex links per node
// pair, so there is no shared-medium queueing (only per-link serialization).
enum class Topology { kSharedBus, kSwitched };

// --- Fault injection ---------------------------------------------------------
//
// A FaultFilter is consulted once per transmission, at an ordered point,
// before the channel is reserved. It decides the frame's fate: deliver
// normally, drop it (the frame still occupies the sender's medium — it is
// lost at the receiver), or deliver twice (a second identical frame is
// transmitted back-to-back). An extra receive-side delay may be added in
// any case. Loopback sends (src == dst) never consult the filter: they do
// not touch the medium. With no filter attached, behaviour and timings are
// exactly the unfaulted model.

enum class FaultAction : uint8_t { kDeliver, kDrop, kDuplicate };

struct FaultDecision {
  FaultAction action = FaultAction::kDeliver;
  Duration extra_delay = 0;  // added to the receive path (reordering/jitter)
};

class FaultFilter {
 public:
  virtual ~FaultFilter() = default;
  virtual FaultDecision OnTransmit(NodeId src, NodeId dst, int64_t bytes, Time depart,
                                   bool bulk) = 0;
  // Bookkeeping: a frame that was in flight when its destination crashed
  // reached a dead node, and the network discarded the delivery at arrival
  // time. The decision comes from kernel liveness, not from the filter.
  virtual void OnArrivalAtDeadNode(NodeId src, NodeId dst, int64_t bytes, Time arrival) {}
};

// Outcome of one transmission as known to the simulator (not to the sending
// software, which only learns of loss through timeouts).
struct TxResult {
  Time arrival = 0;        // delivery time of the first copy (would-be, if dropped)
  bool delivered = false;  // at least one copy reached dst
};

class Network {
 public:
  explicit Network(sim::Kernel* kernel, Topology topology = Topology::kSharedBus)
      : kernel_(kernel), topology_(topology) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Transmits one datagram of `bytes` payload leaving src no earlier than
  // `depart`. Returns the time the message is available to software at dst
  // (wire + propagation + receive software path). If `deliver` is non-null
  // it runs, in event context, at that time. A loopback send (src == dst)
  // bypasses the medium entirely: zero wire occupancy, no propagation, only
  // the receive software path.
  Time Send(NodeId src, NodeId dst, int64_t bytes, Time depart,
            std::function<void()> deliver = nullptr);

  // As Send, but also reports whether any copy was delivered (fault
  // filters may drop the frame). The *simulator's* view of the outcome —
  // sending software only learns of loss through timeouts.
  TxResult SendTracked(NodeId src, NodeId dst, int64_t bytes, Time depart,
                       std::function<void()> deliver = nullptr);

  // Transmits a bulk payload as MTU-sized fragments back-to-back on the
  // medium. Returns delivery-complete time at dst.
  Time SendBulk(NodeId src, NodeId dst, int64_t bytes, Time depart,
                std::function<void()> deliver = nullptr);

  // As SendBulk, with the delivery outcome (fault filters drop or delay the
  // transfer as a unit).
  TxResult SendBulkTracked(NodeId src, NodeId dst, int64_t bytes, Time depart,
                           std::function<void()> deliver = nullptr);

  // Attaches a fault filter (nullptr detaches). With none attached every
  // frame is delivered with unmodified timing.
  void SetFaultFilter(FaultFilter* filter) { fault_ = filter; }

  // --- Traffic statistics ----------------------------------------------------
  int64_t messages() const { return messages_.value(); }
  int64_t bytes_sent() const { return bytes_.value(); }
  int64_t fragments() const { return fragments_.value(); }
  Duration busy_time() const { return busy_ns_; }
  void ResetStats() {
    messages_.Reset();
    bytes_.Reset();
    fragments_.Reset();
    busy_ns_ = 0;
  }

  Topology topology() const { return topology_; }

  // Observer of every transmission (tracing). Called with (depart, arrive,
  // src, dst, bytes) at ordered points.
  using MessageObserver = std::function<void(Time, Time, NodeId, NodeId, int64_t)>;
  void SetMessageObserver(MessageObserver observer) { on_message_ = std::move(observer); }

  // Attaches a metrics registry (nullptr detaches): every medium
  // transmission records per-link histograms, labelled "src->dst" —
  // net.link_bytes (payload per transmitted message; a fault-duplicated
  // copy counts separately, a bulk transfer counts once) and
  // net.link_queue_depth (channel reservations: frames of backlog ahead of
  // the frame when it was ready to transmit; 0 = idle channel). Loopback
  // sends never touch a link and record nothing. Observation only: timings
  // are unchanged.
  void SetMetrics(metrics::Registry* registry) { metrics_ = registry; }

 private:
  // Reserves the channel (the shared bus, or the src->dst link) for a
  // transmission of `wire` duration starting no earlier than `ready`;
  // returns the transmission start time.
  Time AcquireChannel(NodeId src, NodeId dst, Time ready, Duration wire);

  // Records the per-link payload-size sample for one transmitted frame.
  void RecordLinkTx(NodeId src, NodeId dst, int64_t bytes);

  // Posts `deliver` for execution at `arrival`. Under fault injection the
  // receiver may crash while the frame is in flight, so liveness is
  // re-checked when the closure runs: a dead node executes no delivery
  // software (fail-stop covers in-flight frames, not just future
  // departures). With no filter attached this is a plain Post.
  void PostDelivery(NodeId src, NodeId dst, int64_t bytes, Time arrival,
                    std::function<void()> deliver);

  // Delivery time of a loopback send: no medium, only the receive software
  // path (the message never leaves the node's protocol stack).
  TxResult Loopback(NodeId node, int64_t bytes, Time depart, std::function<void()> deliver);

  sim::Kernel* kernel_;
  Topology topology_;
  Time bus_free_at_ = 0;
  std::map<std::pair<NodeId, NodeId>, Time> link_free_at_;  // kSwitched
  Counter messages_;
  Counter bytes_;
  Counter fragments_;
  Duration busy_ns_ = 0;
  MessageObserver on_message_;
  FaultFilter* fault_ = nullptr;
  metrics::Registry* metrics_ = nullptr;
};

}  // namespace net

#endif  // AMBER_SRC_NET_NETWORK_H_
