#include "src/net/network.h"

#include <algorithm>

#include "src/base/panic.h"
#include "src/metrics/metrics.h"
#include "src/telemetry/telemetry.h"

namespace net {

Time Network::AcquireChannel(NodeId src, NodeId dst, Time ready, Duration wire) {
  Time* free_at = &bus_free_at_;
  if (topology_ == Topology::kSwitched) {
    free_at = &link_free_at_[{src, dst}];  // full duplex: per direction
  }
  const Time start = std::max(ready, *free_at);
  if (metrics_ != nullptr) {
    // Backlog ahead of this frame when it was ready to go, expressed in
    // frame-times of its own wire duration (0 = idle channel).
    const Duration backlog = start - ready;
    const int64_t depth = wire > 0 ? (backlog + wire - 1) / wire : (backlog > 0 ? 1 : 0);
    metrics_->GetHistogram("net.link_queue_depth", metrics::Registry::LinkLabel(src, dst))
        .Record(static_cast<double>(depth));
  }
  *free_at = start + wire;
  busy_ns_ += wire;
  return start;
}

void Network::RecordLinkTx(NodeId src, NodeId dst, int64_t bytes) {
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("net.link_bytes", metrics::Registry::LinkLabel(src, dst))
        .Record(static_cast<double>(bytes));
  }
}

void Network::PostDelivery(NodeId src, NodeId dst, int64_t bytes, Time arrival,
                           std::function<void()> deliver) {
  if (telemetry::SelfProfiler::active() != nullptr) {
    // Attribute the delivery closure's host cost to the net_delivery bucket.
    // Wrapped only while a profiler is active so the disabled path posts the
    // exact same closure it always did.
    deliver = [inner = std::move(deliver)] {
      telemetry::ScopedWallTimer timer(telemetry::Bucket::kNetDelivery);
      inner();
    };
  }
  if (fault_ == nullptr) {
    kernel_->Post(arrival, std::move(deliver));
    return;
  }
  kernel_->Post(arrival, [this, src, dst, bytes, arrival, deliver = std::move(deliver)] {
    if (!kernel_->NodeUp(dst)) {
      // Fail-stop: the receiver crashed while the frame was in flight; a
      // dead node executes no delivery software. The frame is lost.
      if (fault_ != nullptr) {
        fault_->OnArrivalAtDeadNode(src, dst, bytes, arrival);
      }
      return;
    }
    deliver();
  });
}

TxResult Network::Loopback(NodeId node, int64_t bytes, Time depart,
                           std::function<void()> deliver) {
  // A send to self never touches the medium: zero wire occupancy, no
  // propagation, no channel reservation. Only the receive software path is
  // paid (the message still traverses the local protocol stack). Fault
  // filters are not consulted — there is no wire to be lossy — though
  // delivery still requires the node to be up at arrival time.
  const Time arrival = depart + kernel_->cost().rpc_recv_software;
  messages_.Add();
  bytes_.Add(bytes);
  fragments_.Add();
  if (on_message_) {
    on_message_(depart, arrival, node, node, bytes);
  }
  if (deliver) {
    PostDelivery(node, node, bytes, arrival, std::move(deliver));
  }
  return TxResult{arrival, true};
}

Time Network::Send(NodeId src, NodeId dst, int64_t bytes, Time depart,
                   std::function<void()> deliver) {
  return SendTracked(src, dst, bytes, depart, std::move(deliver)).arrival;
}

TxResult Network::SendTracked(NodeId src, NodeId dst, int64_t bytes, Time depart,
                              std::function<void()> deliver) {
  AMBER_DCHECK(bytes >= 0);
  if (src == dst) {
    return Loopback(src, bytes, depart, std::move(deliver));
  }
  FaultDecision fd;
  if (fault_ != nullptr) {
    fd = fault_->OnTransmit(src, dst, bytes, depart, /*bulk=*/false);
  }
  const sim::CostModel& cost = kernel_->cost();
  const Duration wire = cost.WireTime(bytes);
  const Time start = AcquireChannel(src, dst, depart, wire);
  const Time arrival = start + wire + cost.propagation + cost.rpc_recv_software + fd.extra_delay;
  messages_.Add();
  bytes_.Add(bytes);
  fragments_.Add();
  RecordLinkTx(src, dst, bytes);
  const bool delivered = fd.action != FaultAction::kDrop;
  if (delivered) {
    if (on_message_) {
      on_message_(depart, arrival, src, dst, bytes);
    }
    if (deliver) {
      PostDelivery(src, dst, bytes, arrival, deliver);
    }
  }
  if (fd.action == FaultAction::kDuplicate) {
    // A second identical frame goes out back-to-back on the medium and is
    // delivered independently (receivers must suppress duplicates).
    const Time start2 = AcquireChannel(src, dst, start + wire, wire);
    const Time arrival2 =
        start2 + wire + cost.propagation + cost.rpc_recv_software + fd.extra_delay;
    messages_.Add();
    bytes_.Add(bytes);
    fragments_.Add();
    RecordLinkTx(src, dst, bytes);
    if (on_message_) {
      on_message_(depart, arrival2, src, dst, bytes);
    }
    if (deliver) {
      PostDelivery(src, dst, bytes, arrival2, deliver);
    }
  }
  return TxResult{arrival, delivered};
}

Time Network::SendBulk(NodeId src, NodeId dst, int64_t bytes, Time depart,
                       std::function<void()> deliver) {
  return SendBulkTracked(src, dst, bytes, depart, std::move(deliver)).arrival;
}

TxResult Network::SendBulkTracked(NodeId src, NodeId dst, int64_t bytes, Time depart,
                                  std::function<void()> deliver) {
  AMBER_DCHECK(bytes >= 0);
  if (src == dst) {
    return Loopback(src, bytes, depart, std::move(deliver));
  }
  // Faults apply to the transfer as a unit: the bulk protocol numbers its
  // fragments, so duplicates are suppressed below the delivery callback
  // (the filter never duplicates bulk transfers) and a lost fragment kills
  // the whole transfer (kDrop).
  FaultDecision fd;
  if (fault_ != nullptr) {
    fd = fault_->OnTransmit(src, dst, bytes, depart, /*bulk=*/true);
  }
  const sim::CostModel& cost = kernel_->cost();
  const int64_t frags = cost.Fragments(bytes);
  Time ready = depart;
  int64_t remaining = bytes;
  Time last_delivery = depart;
  for (int64_t i = 0; i < frags; ++i) {
    const int64_t chunk = std::min<int64_t>(remaining, cost.mtu_bytes);
    remaining -= chunk;
    const Duration wire = cost.WireTime(chunk);
    const Time start = AcquireChannel(src, dst, ready, wire);
    // Back-to-back fragments: the next one is ready as soon as this one has
    // left the adapter, plus the (cheap) per-fragment protocol cost.
    ready = start + wire + cost.per_fragment_overhead;
    last_delivery = start + wire + cost.propagation;
  }
  const Time arrival = last_delivery + cost.rpc_recv_software + fd.extra_delay;
  messages_.Add();
  bytes_.Add(bytes);
  fragments_.Add(frags);
  RecordLinkTx(src, dst, bytes);
  const bool delivered = fd.action != FaultAction::kDrop;
  if (delivered) {
    if (on_message_) {
      on_message_(depart, arrival, src, dst, bytes);
    }
    if (deliver) {
      PostDelivery(src, dst, bytes, arrival, std::move(deliver));
    }
  }
  return TxResult{arrival, delivered};
}

}  // namespace net
