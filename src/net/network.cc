#include "src/net/network.h"

#include <algorithm>

#include "src/base/panic.h"

namespace net {

Time Network::AcquireChannel(NodeId src, NodeId dst, Time ready, Duration wire) {
  Time* free_at = &bus_free_at_;
  if (topology_ == Topology::kSwitched) {
    free_at = &link_free_at_[{src, dst}];  // full duplex: per direction
  }
  const Time start = std::max(ready, *free_at);
  *free_at = start + wire;
  busy_ns_ += wire;
  return start;
}

Time Network::Send(NodeId src, NodeId dst, int64_t bytes, Time depart,
                   std::function<void()> deliver) {
  AMBER_DCHECK(bytes >= 0);
  AMBER_DCHECK(src != dst) << "network send to self";
  const sim::CostModel& cost = kernel_->cost();
  const Duration wire = cost.WireTime(bytes);
  const Time start = AcquireChannel(src, dst, depart, wire);
  const Time arrival = start + wire + cost.propagation + cost.rpc_recv_software;
  messages_.Add();
  bytes_.Add(bytes);
  fragments_.Add();
  if (on_message_) {
    on_message_(depart, arrival, src, dst, bytes);
  }
  if (deliver) {
    kernel_->Post(arrival, std::move(deliver));
  }
  return arrival;
}

Time Network::SendBulk(NodeId src, NodeId dst, int64_t bytes, Time depart,
                       std::function<void()> deliver) {
  AMBER_DCHECK(bytes >= 0);
  AMBER_DCHECK(src != dst) << "network send to self";
  const sim::CostModel& cost = kernel_->cost();
  const int64_t frags = cost.Fragments(bytes);
  Time ready = depart;
  int64_t remaining = bytes;
  Time last_delivery = depart;
  for (int64_t i = 0; i < frags; ++i) {
    const int64_t chunk = std::min<int64_t>(remaining, cost.mtu_bytes);
    remaining -= chunk;
    const Duration wire = cost.WireTime(chunk);
    const Time start = AcquireChannel(src, dst, ready, wire);
    // Back-to-back fragments: the next one is ready as soon as this one has
    // left the adapter, plus the (cheap) per-fragment protocol cost.
    ready = start + wire + cost.per_fragment_overhead;
    last_delivery = start + wire + cost.propagation;
  }
  const Time arrival = last_delivery + cost.rpc_recv_software;
  messages_.Add();
  bytes_.Add(bytes);
  fragments_.Add(frags);
  if (on_message_) {
    on_message_(depart, arrival, src, dst, bytes);
  }
  if (deliver) {
    kernel_->Post(arrival, std::move(deliver));
  }
  return arrival;
}

}  // namespace net
