// amber-plot: renders virtual-time metric series and saturation curves as
// Unicode terminal charts.
//
//   amber-plot TS_chaos_timeline.json                 # every series in the file
//   amber-plot TS_serve_r5.json --series serve.latency.p99
//   amber-plot TS_file.json --width 80 --height 8
//   amber-plot --sweep BENCH_serve_sweep.json         # p99-vs-offered-load curve
//
// TS mode charts each windowed series (counter deltas, gauge values, and the
// p99 of each histogram) against virtual time, with the file's annotation
// channel — crashes, restarts, migrations, drains, recoveries — rendered as
// markers under the x-axis, so the chart answers "what happened *here*".
// Sweep mode renders the offered-load ladder from BENCH_serve_sweep.json as
// horizontal p99 bars and flags the knee rung.
//
// Pure reader: parses the deterministic JSON dumps, never touches the
// runtime. Exits nonzero on unreadable input or an empty selection, which is
// what lets CI use "amber-plot renders it" as a smoke check.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/fdr/fdr_report.h"

namespace {

using fdrtool::Json;

bool LoadJson(const std::string& path, Json* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "amber-plot: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string error;
  if (!fdrtool::ParseJson(ss.str(), out, &error)) {
    std::fprintf(stderr, "amber-plot: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

struct Series {
  std::string name;  // chart title, e.g. "serve.completed" or "serve.latency.p99"
  std::vector<double> values;
};

struct Annotation {
  double t_ns = 0;
  std::string kind;
  std::string detail;
};

std::vector<double> NumberArray(const Json& j) {
  std::vector<double> out;
  for (const Json& v : j.arr) {
    out.push_back(v.num);
  }
  return out;
}

// Marker letter for an annotation kind (legend printed under each chart).
char MarkOf(const std::string& kind) {
  if (kind == "crash") return 'C';
  if (kind == "restart") return 'R';
  if (kind == "migration") return 'M';
  if (kind == "drain") return 'D';
  if (kind == "recover") return 'V';
  return '*';
}

// One column chart: `height` rows of eighth-block columns, 0 at the bottom
// row and the series max at the top. Values are bucketed down to at most
// `width` columns (max within each bucket, so spikes survive downsampling).
void Chart(const Series& s, double window_ns, const std::vector<Annotation>& annotations,
           int width, int height) {
  static const char* kBlocks[] = {" ", "▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  const int n = static_cast<int>(s.values.size());
  const int cols = std::min(width, n);
  if (cols == 0) {
    return;
  }
  std::vector<double> col(cols, 0.0);
  for (int i = 0; i < n; ++i) {
    int c = static_cast<int>(static_cast<int64_t>(i) * cols / n);
    col[c] = std::max(col[c], s.values[i]);
  }
  double vmax = 0.0;
  for (double v : col) {
    vmax = std::max(vmax, v);
  }
  std::printf("%s  (max %g, %d windows)\n", s.name.c_str(), vmax, n);
  for (int row = height - 1; row >= 0; --row) {
    if (row == height - 1) {
      std::printf("%10g ┤", vmax);
    } else if (row == 0) {
      std::printf("%10g └", 0.0);
    } else {
      std::printf("           │");
    }
    for (int c = 0; c < cols; ++c) {
      const int eighths =
          vmax > 0 ? static_cast<int>(std::lround(col[c] / vmax * height * 8.0)) : 0;
      const int below = row * 8;
      std::printf("%s", kBlocks[std::clamp(eighths - below, 0, 8)]);
    }
    std::printf("\n");
  }
  // Annotation markers line up under the column holding their timestamp.
  if (!annotations.empty()) {
    std::string marks(static_cast<size_t>(cols), ' ');
    for (const Annotation& a : annotations) {
      const int win = window_ns > 0 ? static_cast<int>(a.t_ns / window_ns) : 0;
      if (win >= 0 && win < n) {
        marks[static_cast<size_t>(static_cast<int64_t>(win) * cols / n)] = MarkOf(a.kind);
      }
    }
    std::printf("            %s\n", marks.c_str());
  }
  std::printf("            0%*s ms\n\n", cols > 1 ? cols - 1 : 1,
              std::to_string(static_cast<int64_t>(n * window_ns / 1e6)).c_str());
}

int PlotTs(const std::string& path, const std::string& only, int width, int height) {
  Json doc;
  if (!LoadJson(path, &doc)) {
    return 1;
  }
  const Json* series = doc.Get("series");
  if (doc.Get("tseries") == nullptr || series == nullptr) {
    std::fprintf(stderr, "amber-plot: %s is not a TS_*.json time-series dump\n", path.c_str());
    return 1;
  }
  const double window_ns = static_cast<double>(doc.Int("window_ns"));

  std::vector<Series> charts;
  if (const Json* counters = series->Get("counters")) {
    for (const auto& [name, arr] : counters->obj) {
      charts.push_back(Series{name, NumberArray(arr)});
    }
  }
  if (const Json* gauges = series->Get("gauges")) {
    for (const auto& [name, arr] : gauges->obj) {
      charts.push_back(Series{name, NumberArray(arr)});
    }
  }
  if (const Json* hists = series->Get("histograms")) {
    for (const auto& [name, fields] : hists->obj) {
      if (const Json* p99 = fields.Get("p99")) {
        charts.push_back(Series{name + ".p99", NumberArray(*p99)});
      }
    }
  }

  std::vector<Annotation> annotations;
  if (const Json* anns = doc.Get("annotations")) {
    for (const Json& a : anns->arr) {
      annotations.push_back(
          Annotation{static_cast<double>(a.Int("t_ns")), a.Str("kind"), a.Str("detail")});
    }
  }

  std::printf("%s: %lld windows of %.0f ms virtual time\n\n", doc.Str("tseries").c_str(),
              static_cast<long long>(doc.Int("windows")), window_ns / 1e6);
  int rendered = 0;
  for (const Series& s : charts) {
    if (!only.empty() && s.name != only) {
      continue;
    }
    Chart(s, window_ns, annotations, width, height);
    ++rendered;
  }
  if (rendered == 0) {
    std::fprintf(stderr, "amber-plot: no series%s%s in %s\n", only.empty() ? "" : " named ",
                 only.c_str(), path.c_str());
    return 1;
  }
  for (const Annotation& a : annotations) {
    std::printf("  %c  %-9s %8.1f ms  %s\n", MarkOf(a.kind), a.kind.c_str(), a.t_ns / 1e6,
                a.detail.c_str());
  }
  return 0;
}

// --- Saturation curve (--sweep) ----------------------------------------------

int PlotSweep(const std::string& path, int width) {
  Json doc;
  if (!LoadJson(path, &doc)) {
    return 1;
  }
  const Json* metrics = doc.Get("metrics");
  const Json* gauges = metrics != nullptr ? metrics->Get("gauges") : nullptr;
  const Json* offered = gauges != nullptr ? gauges->Get("sweep.offered_per_sec") : nullptr;
  const Json* p99 = gauges != nullptr ? gauges->Get("sweep.p99_us") : nullptr;
  if (offered == nullptr || p99 == nullptr) {
    std::fprintf(stderr, "amber-plot: %s has no sweep.* gauges (not a BENCH_serve_sweep.json?)\n",
                 path.c_str());
    return 1;
  }
  auto value_of = [](const Json* fam, const std::string& label) {
    const Json* v = fam->Get(label);
    return v != nullptr ? v->num : 0.0;
  };
  const Json* thr = gauges->Get("sweep.throughput_per_sec");
  const Json* rej = gauges->Get("sweep.rejection_pct");
  const Json* knee_g = gauges->Get("sweep.knee_offered_per_sec");
  const double knee = knee_g != nullptr ? value_of(knee_g, "total") : 0.0;

  double p99_max = 0.0;
  for (const auto& [label, v] : p99->obj) {
    p99_max = std::max(p99_max, v.num);
  }
  std::printf("%s saturation curve (p99 vs offered load)\n\n", doc.Str("bench").c_str());
  std::printf("%10s %11s %12s %9s\n", "offered/s", "thruput/s", "p99 us", "reject %");
  for (const auto& [label, v] : p99->obj) {
    const double off = value_of(offered, label);
    const int bar = p99_max > 0 ? std::max(1, static_cast<int>(v.num / p99_max * width)) : 0;
    std::printf("%10.0f %11.0f %12.1f %9.1f  %s%s\n", off,
                thr != nullptr ? value_of(thr, label) : 0.0, v.num,
                rej != nullptr ? value_of(rej, label) : 0.0, std::string(bar, '#').c_str(),
                off == knee && knee > 0 ? "  <- knee" : "");
  }
  if (knee > 0) {
    std::printf("\nknee at %.0f offered/s: first rung past the service capacity — p99 "
                "leaves the flat region here\n",
                knee);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string only;
  bool sweep = false;
  int width = 100;
  int height = 6;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sweep") {
      sweep = true;
    } else if (arg == "--series" && i + 1 < argc) {
      only = argv[++i];
    } else if (arg == "--width" && i + 1 < argc) {
      width = std::max(8, std::atoi(argv[++i]));
    } else if (arg == "--height" && i + 1 < argc) {
      height = std::max(2, std::atoi(argv[++i]));
    } else if (arg.rfind("--", 0) != 0 && path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: amber-plot TS_<name>.json [--series NAME] [--width N] [--height N]\n"
                   "       amber-plot --sweep BENCH_serve_sweep.json [--width N]\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "amber-plot: no input file\n");
    return 2;
  }
  return sweep ? PlotSweep(path, width) : PlotTs(path, only, width, height);
}
