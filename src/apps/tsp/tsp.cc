#include "src/apps/tsp/tsp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/base/panic.h"
#include "src/base/rng.h"
#include "src/core/amber.h"

namespace tsp {
namespace {

using amber::Here;
using amber::Lock;
using amber::MakeImmutable;
using amber::MonitorGuard;
using amber::MoveTo;
using amber::New;
using amber::NewOn;
using amber::NodeId;
using amber::Object;
using amber::Ref;
using amber::Runtime;
using amber::StartThreadNamed;
using amber::ThreadRef;
using amber::Work;

// The immutable distance matrix: replicated to every node on first use.
class Distances : public Object {
 public:
  Distances(int cities, uint64_t seed) : n_(cities) {
    data_ = MakeDistances(cities, seed);
  }
  int n() const { return n_; }
  double At(int a, int b) const { return data_[static_cast<size_t>(a) * n_ + b]; }
  // Cheapest edge leaving each city — the admissible lower-bound table.
  double MinOut(int city) const { return min_out_[static_cast<size_t>(city)]; }
  void Finalize() {
    min_out_.assign(static_cast<size_t>(n_), std::numeric_limits<double>::infinity());
    for (int a = 0; a < n_; ++a) {
      for (int b = 0; b < n_; ++b) {
        if (a != b) {
          min_out_[static_cast<size_t>(a)] = std::min(min_out_[static_cast<size_t>(a)], At(a, b));
        }
      }
    }
  }
  int Touch() { return n_; }  // forces replica installation

 private:
  int n_;
  std::vector<double> data_;
  std::vector<double> min_out_;
};

// A subproblem: a fixed tour prefix starting at city 0.
struct Prefix {
  double cost;
  int length;
  int order[16];  // cities in visit order (bounded by kMaxCities)
};
constexpr int kMaxCities = 16;

// The incumbent best tour: a monitor invoked from every node.
class Best : public Object {
 public:
  explicit Best(int cities) : cities_(cities) {
    cost_ = std::numeric_limits<double>::infinity();
  }

  double Get() {
    MonitorGuard g(lock_);
    return cost_;
  }

  // Returns the (possibly better) global bound.
  double Offer(double cost, std::vector<int> tour) {
    MonitorGuard g(lock_);
    if (cost < cost_) {
      cost_ = cost;
      tour_ = std::move(tour);
    }
    return cost_;
  }

  std::vector<int> Tour() {
    MonitorGuard g(lock_);
    return tour_;
  }

 private:
  Lock lock_;
  const int cities_;
  double cost_;
  std::vector<int> tour_;
};

// The central work pool of tour prefixes.
class WorkPool : public Object {
 public:
  void Fill(std::vector<Prefix> items) {
    MonitorGuard g(lock_);
    items_ = std::move(items);
    total_ = static_cast<int64_t>(items_.size());
  }

  // Returns the next subproblem, or one with length == 0 when drained.
  Prefix Take() {
    MonitorGuard g(lock_);
    Prefix p{};
    if (!items_.empty()) {
      p = items_.back();
      items_.pop_back();
    }
    return p;
  }

  int64_t total() const { return total_; }

 private:
  Lock lock_;
  std::vector<Prefix> items_;
  int64_t total_ = 0;
};

// Generates all prefixes of the given depth with their costs (the pool
// contents), pruning nothing — pruning happens in the workers.
void GeneratePrefixes(const Distances& d, int depth, std::vector<Prefix>* out) {
  Prefix seed{};
  seed.cost = 0.0;
  seed.length = 1;
  seed.order[0] = 0;
  std::vector<Prefix> frontier{seed};
  for (int level = 1; level < depth; ++level) {
    std::vector<Prefix> next;
    for (const Prefix& p : frontier) {
      for (int city = 1; city < d.n(); ++city) {
        bool used = false;
        for (int i = 0; i < p.length; ++i) {
          used |= p.order[i] == city;
        }
        if (used) {
          continue;
        }
        Prefix q = p;
        q.cost += d.At(q.order[q.length - 1], city);
        q.order[q.length++] = city;
        next.push_back(q);
      }
    }
    frontier = std::move(next);
  }
  *out = std::move(frontier);
}

// Depth-first branch-and-bound under a prefix; returns expansions counted.
// `bound` is the caller's (possibly stale) copy of the global bound; it is
// tightened locally whenever a better complete tour is found.
struct SearchState {
  const Distances* d;
  double bound;
  double best_local;
  std::vector<int> best_tour;
  int64_t expansions = 0;
};

void Search(SearchState* s, int* order, bool* used, int length, double cost) {
  ++s->expansions;
  const int n = s->d->n();
  if (length == n) {
    const double total = cost + s->d->At(order[n - 1], order[0]);
    if (total < s->best_local) {
      s->best_local = total;
      s->best_tour.assign(order, order + n);
      s->bound = std::min(s->bound, total);
    }
    return;
  }
  // Admissible remaining-cost bound: every unvisited city (and the current
  // one) must be left at least once.
  double remaining = s->d->MinOut(order[length - 1]);
  for (int c = 0; c < n; ++c) {
    if (!used[c]) {
      remaining += s->d->MinOut(c);
    }
  }
  if (cost + remaining >= s->bound) {
    return;  // pruned
  }
  for (int c = 1; c < n; ++c) {
    if (used[c]) {
      continue;
    }
    used[c] = true;
    order[length] = c;
    Search(s, order, used, length + 1, cost + s->d->At(order[length - 1], c));
    used[c] = false;
  }
}

// A worker: takes prefixes from the pool, solves their subtrees, offers
// improvements to the incumbent. One Worker object per node; its threads
// run on that node (the distance replica and the worker are co-resident).
class Worker : public Object {
 public:
  struct Outcome {
    int64_t expansions;
    int64_t taken;
  };

  Outcome Run(Ref<Distances> dist, Ref<WorkPool> pool, Ref<Best> best, Params params) {
    dist.Call(&Distances::Touch);  // install the replica on this node
    const Distances* d = dist.unchecked();
    Outcome out{0, 0};
    double bound = best.Call(&Best::Get);
    int64_t since_refresh = 0;
    for (;;) {
      const Prefix p = pool.Call(&WorkPool::Take);
      if (p.length == 0) {
        break;
      }
      ++out.taken;
      SearchState state;
      state.d = d;
      state.bound = bound;
      state.best_local = bound;
      int order[kMaxCities];
      bool used[kMaxCities] = {};
      for (int i = 0; i < p.length; ++i) {
        order[i] = p.order[i];
        used[p.order[i]] = true;
      }
      // Expand the subtree, charging CPU and refreshing the bound in
      // chunks: the search itself runs host-side between charge points.
      const int64_t before = state.expansions;
      Search(&state, order, used, p.length, p.cost);
      const int64_t expanded = state.expansions - before;
      out.expansions += expanded;
      Work(expanded * params.expand_cost);
      since_refresh += expanded;
      if (!params.share_bounds) {
        // Isolated mode (for the sharing ablation): keep improvements to
        // ourselves until the end; prune only with our own discoveries.
        // The per-node record is shared by this node's worker threads:
        // min-merge so no thread's optimum is overwritten by a worse tour.
        if (state.best_local < bound) {
          bound = state.best_local;
          if (local_best_tour_.empty() || bound < local_best_cost_) {
            local_best_cost_ = bound;
            local_best_tour_ = state.best_tour;
          }
        }
        continue;
      }
      if (state.best_local < bound) {
        bound = best.Call(&Best::Offer, state.best_local, state.best_tour);
      } else if (since_refresh >= params.bound_refresh) {
        bound = best.Call(&Best::Get);
        since_refresh = 0;
      }
    }
    if (!params.share_bounds && !local_best_tour_.empty()) {
      best.Call(&Best::Offer, local_best_cost_, local_best_tour_);
    }
    return out;
  }

 private:
  double local_best_cost_ = 0.0;
  std::vector<int> local_best_tour_;
};

}  // namespace

std::vector<double> MakeDistances(int cities, uint64_t seed) {
  AMBER_CHECK(cities >= 3 && cities <= kMaxCities);
  amber::Rng rng(seed);
  std::vector<double> d(static_cast<size_t>(cities) * cities, 0.0);
  // Random points on a 1000x1000 plane, Euclidean distances (metric, so
  // bounds behave sensibly).
  std::vector<double> x(static_cast<size_t>(cities));
  std::vector<double> y(static_cast<size_t>(cities));
  for (int i = 0; i < cities; ++i) {
    x[static_cast<size_t>(i)] = rng.NextDouble() * 1000.0;
    y[static_cast<size_t>(i)] = rng.NextDouble() * 1000.0;
  }
  for (int a = 0; a < cities; ++a) {
    for (int b = 0; b < cities; ++b) {
      const double dx = x[static_cast<size_t>(a)] - x[static_cast<size_t>(b)];
      const double dy = y[static_cast<size_t>(a)] - y[static_cast<size_t>(b)];
      d[static_cast<size_t>(a) * cities + b] = std::sqrt(dx * dx + dy * dy);
    }
  }
  return d;
}

Result RunSequential(amber::Runtime& rt, const Params& params) {
  Result result;
  rt.Run([&] {
    auto dist = New<Distances>(params.cities, params.seed);
    dist.Call(&Distances::Finalize);
    const Distances* d = dist.unchecked();
    // Process the same prefix pool in the same (LIFO) order as the parallel
    // workers, carrying the incumbent across subtrees — so speedup numbers
    // compare identical search strategies and are not inflated by the
    // classic B&B exploration-order anomaly.
    std::vector<Prefix> items;
    GeneratePrefixes(*d, params.prefix_depth, &items);
    result.pool_items = static_cast<int64_t>(items.size());
    const Time t0 = amber::Now();
    double bound = std::numeric_limits<double>::infinity();
    for (auto it = items.rbegin(); it != items.rend(); ++it) {
      SearchState state;
      state.d = d;
      state.bound = bound;
      state.best_local = bound;
      int order[kMaxCities];
      bool used[kMaxCities] = {};
      for (int i = 0; i < it->length; ++i) {
        order[i] = it->order[i];
        used[it->order[i]] = true;
      }
      Search(&state, order, used, it->length, it->cost);
      Work(state.expansions * params.expand_cost);
      result.expansions += state.expansions;
      if (state.best_local < bound) {
        bound = state.best_local;
        result.best_tour = state.best_tour;
      }
    }
    result.best_cost = bound;
    result.solve_time = amber::Now() - t0;
  });
  return result;
}

Result RunAmber(amber::Runtime& rt, const Params& params) {
  Result result;
  rt.Run([&] {
    auto dist = New<Distances>(params.cities, params.seed);
    dist.Call(&Distances::Finalize);
    MakeImmutable(dist);
    auto best = New<Best>(params.cities);
    auto pool = New<WorkPool>();
    {
      std::vector<Prefix> items;
      GeneratePrefixes(*dist.unchecked(), params.prefix_depth, &items);
      result.pool_items = static_cast<int64_t>(items.size());
      pool.Call(&WorkPool::Fill, items);
    }

    net::Network& net = rt.network();
    const int64_t msgs0 = net.messages();
    const int64_t bytes0 = net.bytes_sent();
    const Time t0 = amber::Now();
    std::vector<ThreadRef<Worker::Outcome>> threads;
    for (NodeId n = 0; n < rt.nodes(); ++n) {
      auto worker = NewOn<Worker>(n);
      for (int w = 0; w < params.workers_per_node; ++w) {
        threads.push_back(StartThreadNamed("tsp-" + std::to_string(n) + "-" + std::to_string(w),
                                           0, worker, &Worker::Run, dist, pool, best, params));
      }
    }
    for (auto& t : threads) {
      const Worker::Outcome out = t.Join();
      result.expansions += out.expansions;
    }
    result.solve_time = amber::Now() - t0;
    result.best_cost = best.Call(&Best::Get);
    result.best_tour = best.Call(&Best::Tour);
    result.net_messages = net.messages() - msgs0;
    result.net_bytes = net.bytes_sent() - bytes0;
  });
  return result;
}

Result RunSequentialOn(const Params& params, const sim::CostModel& cost) {
  amber::Runtime::Config config;
  config.nodes = 1;
  config.procs_per_node = 1;
  config.cost = cost;
  config.arena_bytes = size_t{256} << 20;
  amber::Runtime rt(config);
  return RunSequential(rt, params);
}

Result RunAmberOn(int nodes, int procs, const Params& params, const sim::CostModel& cost) {
  amber::Runtime::Config config;
  config.nodes = nodes;
  config.procs_per_node = procs;
  config.cost = cost;
  config.arena_bytes = size_t{256} << 20;
  amber::Runtime rt(config);
  return RunAmber(rt, params);
}

}  // namespace tsp
