// Distributed branch-and-bound TSP on Amber.
//
// A second application exercising the model on an irregular, dynamic
// workload (the paper's SOR is regular and static; §6 notes this makes
// partitioning easy — TSP is the opposite case):
//
//   * the distance matrix is an *immutable* object: every node's first use
//     installs a local replica (§2.3 replication);
//   * a central WorkPool object hands out subproblems (tour prefixes);
//     worker threads on every node invoke Take remotely — function shipping
//     keeps pool state consistent with hardware synchronization on its node;
//   * the incumbent best tour is a monitor object; workers refresh their
//     local bound copy every `bound_refresh` expansions, trading
//     communication against pruning efficiency (see bench_tsp).
//
// Correctness anchor: the sequential solver is exhaustive branch-and-bound;
// any parallel configuration must find a tour of exactly the same cost.

#ifndef AMBER_SRC_APPS_TSP_TSP_H_
#define AMBER_SRC_APPS_TSP_TSP_H_

#include <cstdint>
#include <vector>

#include "src/base/time.h"
#include "src/core/runtime.h"

namespace tsp {

using amber::Duration;
using amber::Time;

struct Params {
  int cities = 11;
  uint64_t seed = 1;         // deterministic random symmetric distances
  int prefix_depth = 3;      // subproblem granularity (pool items)
  int workers_per_node = 2;  // worker threads per node
  int bound_refresh = 64;    // expansions between global-bound refreshes
  bool share_bounds = true;  // offer/refresh the incumbent during the run
  Duration expand_cost = amber::Micros(40);  // CPU per B&B node expansion
};

struct Result {
  double best_cost = 0.0;
  std::vector<int> best_tour;
  Time solve_time = 0;
  int64_t expansions = 0;  // B&B nodes expanded (all workers)
  int64_t pool_items = 0;
  int64_t net_messages = 0;
  int64_t net_bytes = 0;
};

// Generates the symmetric distance matrix for (cities, seed).
std::vector<double> MakeDistances(int cities, uint64_t seed);

// Exhaustive branch-and-bound on one simulated CPU.
Result RunSequential(amber::Runtime& rt, const Params& params);

// Distributed solve across all of rt's nodes.
Result RunAmber(amber::Runtime& rt, const Params& params);

// Convenience wrappers that build the Runtime.
Result RunSequentialOn(const Params& params, const sim::CostModel& cost);
Result RunAmberOn(int nodes, int procs, const Params& params, const sim::CostModel& cost);

}  // namespace tsp

#endif  // AMBER_SRC_APPS_TSP_TSP_H_
