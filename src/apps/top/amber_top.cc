// amber-top: live top-style view of simulator self-telemetry.
//
// Reads a TELEMETRY_<name>.json document (written by src/telemetry, and
// rewritten atomically during a run when the profiler's periodic flush is
// on) and renders per-subsystem wall-time buckets, the event rate, heap in
// use, queue depth, and the busiest nodes by dispatch count.
//
// Two modes:
//   --once        render a single frame from the file and exit (CI smoke,
//                 post-mortem inspection of a finished run);
//   default       follow the file: re-read every --interval ms, compute
//                 live rates from successive cumulative counts, and redraw
//                 (like top). --iterations N stops after N frames (0 = run
//                 until interrupted).
//
// Usage: amber-top [--once] [--interval MS] [--iterations N] TELEMETRY_x.json

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/fdr/fdr_report.h"

namespace {

struct Frame {
  std::string name;
  int64_t enabled_wall_ns = 0;
  int64_t events = 0;
  int64_t dispatches = 0;
  int64_t descriptor_lookups = 0;
  int64_t allocations = 0;
  double events_per_sec = 0;  // whole-run average from the file
  struct BucketRow {
    std::string name;
    int64_t calls = 0;
    int64_t wall_ns = 0;
  };
  std::vector<BucketRow> buckets;
  std::vector<int64_t> node_dispatches;
  // Latest sample (for queue depth / heap / virtual time).
  int64_t virtual_time_ns = 0;
  int64_t queue_depth = 0;
  int64_t heap_bytes = -1;
  int64_t sample_wall_ns = 0;
  int64_t sample_events = 0;
  // The whole sample ring as (wall_ns, cumulative events) points — the ev/s
  // sparkline is the successive deltas of the last few of these.
  std::vector<std::pair<int64_t, int64_t>> sample_points;
};

bool LoadFrame(const std::string& path, Frame* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  fdrtool::Json doc;
  if (!fdrtool::ParseJson(buf.str(), &doc, error)) {
    return false;
  }
  Frame f;
  f.name = doc.Str("telemetry", "?");
  f.enabled_wall_ns = doc.Int("enabled_wall_ns");
  if (const fdrtool::Json* counts = doc.Get("counts")) {
    f.events = counts->Int("events");
    f.dispatches = counts->Int("dispatches");
    f.descriptor_lookups = counts->Int("descriptor_lookups");
    f.allocations = counts->Int("allocations");
  }
  if (const fdrtool::Json* totals = doc.Get("totals")) {
    if (const fdrtool::Json* eps = totals->Get("events_per_sec")) {
      f.events_per_sec = eps->num;
    }
  }
  if (const fdrtool::Json* buckets = doc.Get("buckets")) {
    for (const auto& [name, b] : buckets->obj) {
      f.buckets.push_back({name, b.Int("calls"), b.Int("wall_ns")});
    }
  }
  if (const fdrtool::Json* nd = doc.Get("node_dispatches")) {
    for (const fdrtool::Json& v : nd->arr) {
      f.node_dispatches.push_back(static_cast<int64_t>(v.num));
    }
  }
  if (const fdrtool::Json* samples = doc.Get("samples")) {
    for (const fdrtool::Json& s : samples->arr) {
      f.sample_points.emplace_back(s.Int("wall_ns"), s.Int("events"));
    }
    if (!samples->arr.empty()) {
      const fdrtool::Json& last = samples->arr.back();
      f.virtual_time_ns = last.Int("virtual_time_ns");
      f.queue_depth = last.Int("queue_depth");
      f.heap_bytes = last.Int("heap_bytes", -1);
      f.sample_wall_ns = last.Int("wall_ns");
      f.sample_events = last.Int("events");
    }
  }
  *out = f;
  return true;
}

// Trend-at-a-glance: ev/s over the last `n` sample-ring intervals, each
// interval one block scaled against the window's own maximum.
std::string Sparkline(const std::vector<std::pair<int64_t, int64_t>>& points, size_t n) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  std::vector<double> rates;
  const size_t first = points.size() > n ? points.size() - n - 1 : 0;
  for (size_t i = first + 1; i < points.size(); ++i) {
    const int64_t dw = points[i].first - points[i - 1].first;
    const int64_t de = points[i].second - points[i - 1].second;
    if (dw > 0 && de >= 0) {
      rates.push_back(static_cast<double>(de) * 1e9 / static_cast<double>(dw));
    }
  }
  if (rates.size() < 2) {
    return "";
  }
  double vmax = 0;
  for (double r : rates) {
    vmax = std::max(vmax, r);
  }
  std::string out;
  for (double r : rates) {
    const int level =
        vmax > 0 ? std::min(7, static_cast<int>(r / vmax * 8.0)) : 0;
    out += kBlocks[level];
  }
  return out;
}

std::string Eng(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

// Renders one frame. `prev` (may be null) supplies the baseline for live
// rates; without it, whole-run averages from the file are shown.
void Render(const Frame& f, const Frame* prev) {
  double live_eps = f.events_per_sec;
  const char* rate_kind = "avg";
  if (prev != nullptr && f.sample_wall_ns > prev->sample_wall_ns &&
      f.sample_events >= prev->sample_events) {
    live_eps = static_cast<double>(f.sample_events - prev->sample_events) * 1e9 /
               static_cast<double>(f.sample_wall_ns - prev->sample_wall_ns);
    rate_kind = "live";
  }
  std::printf("amber-top — %s\n", f.name.c_str());
  const std::string spark = Sparkline(f.sample_points, 16);
  std::printf("events %" PRId64 "  (%s ev/s %s%s%s)  vtime %.3f s  queue %" PRId64, f.events,
              Eng(live_eps).c_str(), rate_kind, spark.empty() ? "" : " ", spark.c_str(),
              static_cast<double>(f.virtual_time_ns) / 1e9, f.queue_depth);
  if (f.heap_bytes >= 0) {
    std::printf("  heap %.1f MB", static_cast<double>(f.heap_bytes) / 1e6);
  }
  std::printf("\nwall %.2f s  dispatches %" PRId64 "  lookups %" PRId64 "  allocs %" PRId64
              "\n\n",
              static_cast<double>(f.enabled_wall_ns) / 1e9, f.dispatches, f.descriptor_lookups,
              f.allocations);

  int64_t loop_wall = 0;
  for (const auto& b : f.buckets) {
    if (b.name == "event_loop") {
      loop_wall = b.wall_ns;
    }
  }
  std::printf("%-16s %12s %12s %9s\n", "subsystem", "calls", "wall ms", "% loop");
  for (const auto& b : f.buckets) {
    const double pct =
        loop_wall > 0 ? 100.0 * static_cast<double>(b.wall_ns) / static_cast<double>(loop_wall)
                      : 0.0;
    std::printf("%-16s %12" PRId64 " %12.1f %8.1f%%\n", b.name.c_str(), b.calls,
                static_cast<double>(b.wall_ns) / 1e6, pct);
  }

  // Busiest nodes by cumulative dispatches (delta against prev when live).
  std::vector<std::pair<int64_t, int>> busy;
  for (size_t n = 0; n < f.node_dispatches.size(); ++n) {
    int64_t d = f.node_dispatches[n];
    if (prev != nullptr && n < prev->node_dispatches.size()) {
      d -= prev->node_dispatches[n];
    }
    busy.push_back({d, static_cast<int>(n)});
  }
  std::sort(busy.begin(), busy.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  const size_t top = std::min<size_t>(busy.size(), 10);
  if (top > 0) {
    std::printf("\n%-8s %12s\n", "node", prev != nullptr ? "dispatches Δ" : "dispatches");
    for (size_t i = 0; i < top; ++i) {
      std::printf("node%-4d %12" PRId64 "\n", busy[i].second, busy[i].first);
    }
  }
}

void Usage() {
  std::fprintf(stderr,
               "usage: amber-top [--once] [--interval MS] [--iterations N] TELEMETRY_x.json\n"
               "  --once          render one frame and exit\n"
               "  --interval MS   follow-mode refresh period (default 1000)\n"
               "  --iterations N  stop after N frames (default 0 = until interrupted)\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  int interval_ms = 1000;
  int iterations = 0;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--interval" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--iterations" && i + 1 < argc) {
      iterations = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  Frame frame;
  std::string error;
  if (!LoadFrame(path, &frame, &error)) {
    std::fprintf(stderr, "amber-top: %s\n", error.c_str());
    return 1;
  }
  if (once) {
    Render(frame, nullptr);
    return 0;
  }

  Frame prev = frame;
  Render(frame, nullptr);
  for (int i = 0; iterations == 0 || i < iterations; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    Frame next;
    if (!LoadFrame(path, &next, &error)) {
      // The writer may be mid-rename or the run may have ended; keep the
      // last good frame and retry.
      continue;
    }
    std::printf("\x1b[H\x1b[2J");  // clear + home, like top
    Render(next, &prev);
    std::fflush(stdout);
    prev = next;
  }
  return 0;
}
