// Red/Black Successive Over-Relaxation — the paper's application (§6).
//
// Computes the steady-state temperature over a square plate (Laplace's
// equation, Dirichlet boundary) by red/black SOR. The Amber decomposition
// follows Figure 1 exactly:
//
//   * the grid is split into column-strip Section objects, one per strip,
//     placed round-robin across nodes;
//   * each section has a set of *compute threads* updating its points in
//     parallel, two *edge threads* exchanging boundary columns with the
//     neighbouring sections (by remote invocation of PutEdge — one network
//     transaction per edge per color), and one *convergence thread*
//     reporting the section's residual to a single Master object;
//   * edge transfer of one color is overlapped with computation of the
//     other color when Params::overlap is set (the paper's key structuring
//     technique; the 8Nx4P overlap-on/off pair in Figure 2).
//
// The sequential baseline (RunSequential) performs bitwise-identical
// arithmetic, so correctness tests can require exact grid equality.

#ifndef AMBER_SRC_APPS_SOR_SOR_H_
#define AMBER_SRC_APPS_SOR_SOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/core/runtime.h"

namespace sor {

using amber::Duration;
using amber::Time;

struct Params {
  int rows = 122;  // the paper's grid: 122 × 842
  int cols = 842;
  int sections = 8;             // column strips (paper: 8; 6 for 3/6-node runs)
  int threads_per_section = 0;  // 0 = auto: max(1, total processors / sections)
  bool overlap = true;          // overlap edge exchange with computation
  double omega = 1.5;           // over-relaxation factor
  double boundary_top = 100.0;  // fixed temperature along the top edge
  double tolerance = 0.0;       // 0 disables convergence (run max_iterations)
  int max_iterations = 50;
  Duration point_cost = amber::Micros(30);  // CVAX-era cost of one update (~7 FLOPs at ~0.25 MFLOPS)
};

struct Result {
  int iterations = 0;
  double final_delta = 0.0;
  Time solve_time = 0;     // virtual time of the solve phase
  uint64_t grid_hash = 0;  // FNV-1a over the full grid's bit patterns
  std::vector<double> grid;  // row-major rows × cols (filled if keep_grid)
  int64_t net_messages = 0;
  int64_t net_bytes = 0;
  int64_t thread_migrations = 0;
};

// Runs the sequential C++ baseline inside `rt` (typically a 1-node/1-CPU
// runtime) and returns timing + the converged grid.
Result RunSequential(amber::Runtime& rt, const Params& params, bool keep_grid = false);

// Runs the Amber-parallel program inside `rt`, distributing sections across
// all of rt's nodes.
Result RunAmber(amber::Runtime& rt, const Params& params, bool keep_grid = false);

// Convenience: builds a Runtime for `nodes` × `procs` with the given cost
// model and runs the Amber program in it.
Result RunAmberOn(int nodes, int procs, const Params& params, const sim::CostModel& cost,
                  bool keep_grid = false);

// The sequential baseline on a 1×1 machine with the same cost model.
Result RunSequentialOn(const Params& params, const sim::CostModel& cost, bool keep_grid = false);

}  // namespace sor

#endif  // AMBER_SRC_APPS_SOR_SOR_H_
