#include "src/apps/sor/sor.h"

#include <algorithm>
#include <cmath>

#include "src/base/panic.h"
#include "src/core/amber.h"

namespace sor {
namespace {

using amber::Barrier;
using amber::Condition;
using amber::Here;
using amber::Lock;
using amber::MonitorGuard;
using amber::MoveTo;
using amber::New;
using amber::NodeId;
using amber::Object;
using amber::Ref;
using amber::Runtime;
using amber::StartThreadNamed;
using amber::ThreadRef;
using amber::Work;

// Phase numbering: phase p updates color p % 2 (0 = black) of iteration
// p / 2. Computing phase p needs the neighbours' phase p-1 edge values;
// initial ghosts count as phase -1.
constexpr int kBlack = 0;

uint64_t HashDoubles(const std::vector<double>& v) {
  uint64_t h = 1469598103934665603ULL;
  for (double d : v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((bits >> (8 * i)) & 0xff)) * 1099511628211ULL;
    }
  }
  return h;
}

// The SOR update — shared verbatim by the sequential and parallel versions
// so their arithmetic is bitwise identical.
inline double Relax(double v, double up, double down, double left, double right, double omega) {
  return (1.0 - omega) * v + omega * 0.25 * (up + down + left + right);
}

class Master;

// One column strip of the grid (Figure 1's "section object").
class Section : public Object {
 public:
  Section(const Params& params, int index, int col0, int width, int threads)
      : p_(params),
        index_(index),
        col0_(col0),
        width_(width),
        threads_(threads),
        local_barrier_(threads),
        data_(static_cast<size_t>(params.rows) * static_cast<size_t>(width + 2), 0.0) {
    ghost_phase_[0] = ghost_phase_[1] = -1;
    snapshot_phase_[0] = snapshot_phase_[1] = -1;
  }

  void SetNeighbors(Ref<Section> left, Ref<Section> right) {
    left_ = left;
    right_ = right;
  }

  // Applies boundary conditions to owned columns (and boundary ghosts).
  void InitGrid() {
    for (int c = -1; c <= width_; ++c) {
      const int gc = col0_ + c;
      if (gc < 0 || gc >= p_.cols) {
        continue;
      }
      for (int r = 0; r < p_.rows; ++r) {
        At(r, c) = BoundaryValue(r, gc);
      }
    }
  }

  // --- Thread bodies ----------------------------------------------------------

  // Compute thread `worker` (0-based): updates a contiguous block of rows.
  void ComputeLoop(int worker);

  // Edge thread for side 0 (left) / 1 (right): ships each published phase's
  // edge values to the neighbour by remote invocation.
  void EdgeLoop(int side);

  // Reports the per-iteration residual to the master and relays its
  // decision (Figure 1's "one additional thread per section").
  void ConvergenceLoop(Ref<Master> master);

  // --- Remote-invoked ------------------------------------------------------------

  // Receives one color's edge values from a neighbour (a single network
  // transaction per edge per phase, §6).
  void PutEdge(int side, int64_t phase, std::vector<double> values) {
    MonitorGuard g(lock_);
    const int gc = side == 0 ? col0_ - 1 : col0_ + width_;  // ghost column
    const int color = static_cast<int>(phase % 2);
    size_t k = 0;
    for (int r = 1; r < p_.rows - 1; ++r) {
      if ((r + gc) % 2 == color) {
        AMBER_DCHECK(k < values.size());
        At(r, side == 0 ? -1 : width_) = values[k++];
      }
    }
    AMBER_CHECK(k == values.size()) << "edge size mismatch";
    ghost_phase_[side] = phase;
    cv_.Broadcast();
  }

  // --- Harness --------------------------------------------------------------------

  std::vector<double> ExtractColumns() {
    std::vector<double> out(static_cast<size_t>(p_.rows) * static_cast<size_t>(width_));
    for (int r = 0; r < p_.rows; ++r) {
      for (int c = 0; c < width_; ++c) {
        out[static_cast<size_t>(r) * width_ + c] = At(r, c);
      }
    }
    return out;
  }

  int iterations_run() const { return static_cast<int>(decided_iter_) + 1; }
  int col0() const { return col0_; }
  int width() const { return width_; }

 private:
  double BoundaryValue(int r, int gc) const {
    return r == 0 ? p_.boundary_top : 0.0;  // hot top edge, cold elsewhere
  }

  // c is a local column in [-1, width_]; -1 and width_ are ghosts.
  double& At(int r, int c) {
    return data_[static_cast<size_t>(r) * static_cast<size_t>(width_ + 2) +
                 static_cast<size_t>(c + 1)];
  }

  bool IsInterior(int gc) const { return gc >= 1 && gc <= p_.cols - 2; }

  // Updates color points of phase `phase` in rows [r0, r1) over local
  // columns [c_lo, c_hi]; returns the max delta and charges CPU per row.
  double UpdateRows(int r0, int r1, int64_t phase, int c_lo, int c_hi) {
    const int color = static_cast<int>(phase % 2);
    double max_delta = 0.0;
    for (int r = std::max(r0, 1); r < std::min(r1, p_.rows - 1); ++r) {
      int updated = 0;
      for (int c = c_lo; c <= c_hi; ++c) {
        const int gc = col0_ + c;
        if (!IsInterior(gc) || (r + gc) % 2 != color) {
          continue;
        }
        const double old = At(r, c);
        const double next =
            Relax(old, At(r - 1, c), At(r + 1, c), At(r, c - 1), At(r, c + 1), p_.omega);
        At(r, c) = next;
        max_delta = std::max(max_delta, std::fabs(next - old));
        ++updated;
      }
      if (updated > 0) {
        Work(updated * p_.point_cost);
      }
    }
    return max_delta;
  }

  // Snapshots and ships one phase's edge values to both neighbours by
  // blocking remote invocations (no-overlap mode only).
  void ShipEdgesInline(int64_t phase) {
    for (int side = 0; side < 2; ++side) {
      const Ref<Section> neighbor = side == 0 ? left_ : right_;
      if (!neighbor) {
        continue;
      }
      const int edge_local = side == 0 ? 0 : width_ - 1;
      const int gc = col0_ + edge_local;
      const int color = static_cast<int>(phase % 2);
      std::vector<double> values;
      {
        MonitorGuard g(lock_);
        for (int r = 1; r < p_.rows - 1; ++r) {
          if ((r + gc) % 2 == color) {
            values.push_back(At(r, edge_local));
          }
        }
        snapshot_phase_[side] = phase;
        cv_.Broadcast();
      }
      neighbor.Call(&Section::PutEdge, side == 0 ? 1 : 0, phase, values);
    }
  }

  // Blocks until both neighbours' phase-1 edges are here and our own
  // phase-2 edges have been snapshotted (so we may overwrite them).
  void WaitGhosts(int64_t phase) {
    MonitorGuard g(lock_);
    while (!(GhostsReady(0, phase) && GhostsReady(1, phase))) {
      cv_.Wait(lock_);
    }
  }

  bool GhostsReady(int side, int64_t phase) {
    const bool have_neighbor = side == 0 ? static_cast<bool>(left_) : static_cast<bool>(right_);
    if (!have_neighbor) {
      return true;
    }
    return ghost_phase_[side] >= phase - 1 && snapshot_phase_[side] >= phase - 2;
  }

  const Params p_;
  const int index_;
  const int col0_;
  const int width_;
  const int threads_;

  Ref<Section> left_;
  Ref<Section> right_;

  // Member objects: co-resident with the section, move with it (§3.6).
  Lock lock_;
  Condition cv_;
  Barrier local_barrier_;

  std::vector<double> data_;

  int64_t edges_ready_ = -1;       // highest phase whose edges may be shipped
  int64_t ghost_phase_[2];         // last phase received per side
  int64_t snapshot_phase_[2];      // last phase snapshotted by edge thread
  double iter_delta_ = 0.0;        // residual accumulation for this iteration
  int delta_count_ = 0;            // compute threads that deposited
  int64_t delta_iter_ready_ = -1;  // iteration whose delta is complete
  int64_t decided_iter_ = -1;      // last iteration with a master decision
  bool stop_ = false;
};

// The single master object: the convergence barrier of Figure 1.
class Master : public Object {
 public:
  Master(int sections, double tolerance, int max_iterations)
      : sections_(sections), tolerance_(tolerance), max_iterations_(max_iterations) {}

  // Called once per iteration by every section's convergence thread;
  // returns true when the computation should stop.
  bool Report(int64_t iter, double delta) {
    MonitorGuard g(lock_);
    AMBER_CHECK(iter == current_iter_) << "convergence reports out of step";
    global_delta_ = std::max(global_delta_, delta);
    if (++reported_ == sections_) {
      last_stop_ = (tolerance_ > 0.0 && global_delta_ < tolerance_) ||
                   iter + 1 >= max_iterations_;
      last_delta_ = global_delta_;
      decided_iter_ = iter;
      ++current_iter_;
      reported_ = 0;
      global_delta_ = 0.0;
      cv_.Broadcast();
    } else {
      while (decided_iter_ < iter) {
        cv_.Wait(lock_);
      }
    }
    return last_stop_;
  }

  double last_delta() const { return last_delta_; }

 private:
  Lock lock_;
  Condition cv_;
  const int sections_;
  const double tolerance_;
  const int max_iterations_;
  int reported_ = 0;
  double global_delta_ = 0.0;
  int64_t current_iter_ = 0;
  int64_t decided_iter_ = -1;
  bool last_stop_ = false;
  double last_delta_ = 0.0;
};

void Section::ComputeLoop(int worker) {
  // Row block for this worker.
  const int rows_per = (p_.rows + threads_ - 1) / threads_;
  const int r0 = worker * rows_per;
  const int r1 = std::min(p_.rows, r0 + rows_per);
  double delta = 0.0;
  for (int64_t iter = 0;; ++iter) {
    for (int color = 0; color < 2; ++color) {
      const int64_t phase = iter * 2 + color;
      if (p_.overlap && width_ > 2) {
        // Interior columns first — they need no ghosts — overlapping with
        // the in-flight edge exchange; then the two boundary columns.
        delta = std::max(delta, UpdateRows(r0, r1, phase, 1, width_ - 2));
        WaitGhosts(phase);
        delta = std::max(delta, UpdateRows(r0, r1, phase, 0, 0));
        delta = std::max(delta, UpdateRows(r0, r1, phase, width_ - 1, width_ - 1));
      } else {
        WaitGhosts(phase);
        delta = std::max(delta, UpdateRows(r0, r1, phase, 0, width_ - 1));
      }
      local_barrier_.Wait();
      if (worker == 0) {
        if (p_.overlap) {
          // Publish this phase's edges for the edge threads to ship
          // concurrently with the next phase's interior computation.
          MonitorGuard g(lock_);
          edges_ready_ = phase;
          cv_.Broadcast();
        } else {
          // Unstructured variant (the paper's second 8Nx4P point): the
          // compute thread ships both edges itself, serially — the
          // communication time is dead time.
          ShipEdgesInline(phase);
        }
      }
    }
    // Deposit this iteration's residual; the convergence thread reports it.
    {
      MonitorGuard g(lock_);
      iter_delta_ = std::max(iter_delta_, delta);
      if (++delta_count_ == threads_) {
        delta_count_ = 0;
        delta_iter_ready_ = iter;
        cv_.Broadcast();
      }
      // Wait for the global decision before starting the next iteration.
      while (decided_iter_ < iter) {
        cv_.Wait(lock_);
      }
      if (stop_) {
        return;
      }
    }
    delta = 0.0;
  }
}

void Section::EdgeLoop(int side) {
  const Ref<Section> neighbor = side == 0 ? left_ : right_;
  if (!neighbor) {
    return;  // global boundary: nothing to exchange
  }
  const int edge_local = side == 0 ? 0 : width_ - 1;
  const int gc = col0_ + edge_local;
  for (int64_t phase = 0;; ++phase) {
    std::vector<double> values;
    {
      MonitorGuard g(lock_);
      while (edges_ready_ < phase && !stop_) {
        cv_.Wait(lock_);
      }
      if (edges_ready_ < phase && stop_) {
        return;  // converged; the remaining edges are never read
      }
      // Snapshot the just-updated color's points of our edge column.
      const int color = static_cast<int>(phase % 2);
      for (int r = 1; r < p_.rows - 1; ++r) {
        if ((r + gc) % 2 == color) {
          values.push_back(At(r, edge_local));
        }
      }
      snapshot_phase_[side] = phase;
      cv_.Broadcast();
    }
    // One network transaction transfers the whole edge (§6): this thread
    // migrates to the neighbour carrying the values and returns.
    neighbor.Call(&Section::PutEdge, side == 0 ? 1 : 0, phase, values);
  }
}

void Section::ConvergenceLoop(Ref<Master> master) {
  for (int64_t iter = 0;; ++iter) {
    double delta;
    {
      MonitorGuard g(lock_);
      while (delta_iter_ready_ < iter) {
        cv_.Wait(lock_);
      }
      delta = iter_delta_;
      iter_delta_ = 0.0;
    }
    // Remote invocation on the master: the paper's per-iteration barrier.
    const bool stop = master.Call(&Master::Report, iter, delta);
    {
      MonitorGuard g(lock_);
      decided_iter_ = iter;
      stop_ = stop;
      cv_.Broadcast();
    }
    if (stop) {
      return;
    }
  }
}

std::vector<int> SectionWidths(int cols, int sections) {
  std::vector<int> widths(static_cast<size_t>(sections), cols / sections);
  for (int i = 0; i < cols % sections; ++i) {
    ++widths[static_cast<size_t>(i)];
  }
  return widths;
}

}  // namespace

Result RunSequential(amber::Runtime& rt, const Params& params, bool keep_grid) {
  Result result;
  rt.Run([&] {
    const int rows = params.rows;
    const int cols = params.cols;
    std::vector<double> grid(static_cast<size_t>(rows) * cols, 0.0);
    auto at = [&](int r, int c) -> double& {
      return grid[static_cast<size_t>(r) * cols + static_cast<size_t>(c)];
    };
    for (int c = 0; c < cols; ++c) {
      at(0, c) = params.boundary_top;
    }
    const Time start = amber::Now();
    int iterations = 0;
    double delta = 0.0;
    for (int iter = 0; iter < params.max_iterations; ++iter) {
      delta = 0.0;
      for (int color = 0; color < 2; ++color) {
        for (int r = 1; r < rows - 1; ++r) {
          int updated = 0;
          for (int c = 1; c < cols - 1; ++c) {
            if ((r + c) % 2 != color) {
              continue;
            }
            const double old = at(r, c);
            const double next =
                Relax(old, at(r - 1, c), at(r + 1, c), at(r, c - 1), at(r, c + 1), params.omega);
            at(r, c) = next;
            delta = std::max(delta, std::fabs(next - old));
            ++updated;
          }
          Work(updated * params.point_cost);
        }
      }
      iterations = iter + 1;
      if (params.tolerance > 0.0 && delta < params.tolerance) {
        break;
      }
    }
    result.iterations = iterations;
    result.final_delta = delta;
    result.solve_time = amber::Now() - start;
    result.grid_hash = HashDoubles(grid);
    if (keep_grid) {
      result.grid = std::move(grid);
    }
  });
  return result;
}

Result RunAmber(amber::Runtime& rt, const Params& params, bool keep_grid) {
  AMBER_CHECK(params.sections >= 1);
  AMBER_CHECK(params.cols >= 2 * params.sections) << "sections too narrow";
  Result result;
  rt.Run([&] {
    const int sections = params.sections;
    const int total_procs = rt.nodes() * rt.procs_per_node();
    const int threads = params.threads_per_section > 0
                            ? params.threads_per_section
                            : std::max(1, total_procs / sections);
    const auto widths = SectionWidths(params.cols, sections);

    // Create and place the sections: round-robin strips over nodes, as in
    // the paper's decomposition (one or more sections per node).
    std::vector<Ref<Section>> secs;
    int col0 = 0;
    for (int s = 0; s < sections; ++s) {
      auto sec = New<Section>(params, s, col0, widths[static_cast<size_t>(s)], threads);
      const NodeId target = static_cast<NodeId>((s * rt.nodes()) / sections);
      if (target != 0) {
        MoveTo(sec, target);
      }
      secs.push_back(sec);
      col0 += widths[static_cast<size_t>(s)];
    }
    auto master = New<Master>(sections, params.tolerance, params.max_iterations);
    for (int s = 0; s < sections; ++s) {
      secs[static_cast<size_t>(s)].Call(&Section::SetNeighbors,
                                        s > 0 ? secs[static_cast<size_t>(s - 1)] : Ref<Section>(),
                                        s + 1 < sections ? secs[static_cast<size_t>(s + 1)]
                                                         : Ref<Section>());
      secs[static_cast<size_t>(s)].Call(&Section::InitGrid);
    }

    net::Network& net = rt.network();
    const int64_t msgs0 = net.messages();
    const int64_t bytes0 = net.bytes_sent();
    const int64_t migr0 = rt.thread_migrations();
    const Time start = amber::Now();

    // Figure 1's thread structure: compute threads + 2 edge threads + 1
    // convergence thread per section.
    std::vector<ThreadRef<void>> ts;
    for (int s = 0; s < sections; ++s) {
      auto sec = secs[static_cast<size_t>(s)];
      for (int w = 0; w < threads; ++w) {
        ts.push_back(StartThreadNamed("compute-" + std::to_string(s) + "-" + std::to_string(w),
                                      0, sec, &Section::ComputeLoop, w));
      }
      if (params.overlap) {
        for (int side = 0; side < 2; ++side) {
          ts.push_back(StartThreadNamed("edge-" + std::to_string(s) + "-" + std::to_string(side),
                                        0, sec, &Section::EdgeLoop, side));
        }
      }
      ts.push_back(StartThreadNamed("conv-" + std::to_string(s), 0, sec,
                                    &Section::ConvergenceLoop, master));
    }
    for (auto& t : ts) {
      t.Join();
    }
    result.solve_time = amber::Now() - start;
    result.net_messages = net.messages() - msgs0;
    result.net_bytes = net.bytes_sent() - bytes0;
    result.thread_migrations = rt.thread_migrations() - migr0;
    result.iterations = secs[0].Call(&Section::iterations_run);
    result.final_delta = master.Call(&Master::last_delta);

    // Reassemble the grid for verification.
    std::vector<double> grid(static_cast<size_t>(params.rows) * params.cols, 0.0);
    for (int s = 0; s < sections; ++s) {
      auto sec = secs[static_cast<size_t>(s)];
      const int c0 = sec.Call(&Section::col0);
      const int w = sec.Call(&Section::width);
      const auto cols_data = sec.Call(&Section::ExtractColumns);
      for (int r = 0; r < params.rows; ++r) {
        for (int c = 0; c < w; ++c) {
          grid[static_cast<size_t>(r) * params.cols + static_cast<size_t>(c0 + c)] =
              cols_data[static_cast<size_t>(r) * w + static_cast<size_t>(c)];
        }
      }
    }
    result.grid_hash = HashDoubles(grid);
    if (keep_grid) {
      result.grid = std::move(grid);
    }
  });
  return result;
}

Result RunAmberOn(int nodes, int procs, const Params& params, const sim::CostModel& cost,
                  bool keep_grid) {
  amber::Runtime::Config config;
  config.nodes = nodes;
  config.procs_per_node = procs;
  config.cost = cost;
  config.arena_bytes = size_t{1} << 30;
  amber::Runtime rt(config);
  return RunAmber(rt, params, keep_grid);
}

Result RunSequentialOn(const Params& params, const sim::CostModel& cost, bool keep_grid) {
  amber::Runtime::Config config;
  config.nodes = 1;
  config.procs_per_node = 1;
  config.cost = cost;
  config.arena_bytes = size_t{256} << 20;
  amber::Runtime rt(config);
  return RunSequential(rt, params, keep_grid);
}

}  // namespace sor
