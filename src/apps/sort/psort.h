// Distributed sample sort — the §2.3 phase-reorganization workload.
//
// "Dynamic mobility is useful because some applications will need to
// reorganize object locations following different computational phases of
// a program."
//
// Sample sort is exactly such a program:
//   phase 1  each node sorts its local block of keys;
//   -        a master collects samples and publishes P-1 splitters as an
//            immutable (replicated) object;
//   phase 2  each node partitions its block into one Bucket object per
//            destination node;
//   reorg    every bucket is *moved* to its destination — the bulk object
//            transfers between phases that MoveTo exists for;
//   phase 3  each node merges the buckets it received into its final run.
//
// The `reorganize` knob selects how phase 3 reaches the data:
//   true  — buckets migrate (one bulk transfer each; merge is then local);
//   false — buckets stay put and each merger fetches their contents by
//           remote invocation (thread round trips carrying the keys back).
// Both produce identical output; the bench compares their costs.

#ifndef AMBER_SRC_APPS_SORT_PSORT_H_
#define AMBER_SRC_APPS_SORT_PSORT_H_

#include <cstdint>
#include <vector>

#include "src/base/time.h"
#include "src/core/runtime.h"

namespace psort {

using amber::Duration;
using amber::Time;

struct Params {
  int64_t keys = 64 * 1024;  // total keys, split evenly over the nodes
  uint64_t seed = 1;
  bool reorganize = true;    // move buckets between phases (vs remote fetch)
  int samples_per_node = 16;
  Duration key_op_cost = amber::Micros(4);  // CPU per compare/copy step
};

struct Result {
  Time solve_time = 0;
  bool sorted = false;        // globally sorted, verified host-side
  uint64_t checksum = 0;      // order-independent key checksum (multiset id)
  int64_t net_messages = 0;
  int64_t net_bytes = 0;
  int64_t objects_moved = 0;
  Time phase1_end = 0;        // local sort done
  Time reorg_end = 0;         // buckets in place / fetched
};

// Order-independent checksum of a key set (for multiset preservation).
uint64_t KeysetChecksum(const std::vector<uint64_t>& keys);

// Distributed sample sort across all of rt's nodes.
Result RunAmber(amber::Runtime& rt, const Params& params);

// Single-CPU baseline (same cost accounting).
Result RunSequentialOn(const Params& params, const sim::CostModel& cost);

Result RunAmberOn(int nodes, int procs, const Params& params, const sim::CostModel& cost);

}  // namespace psort

#endif  // AMBER_SRC_APPS_SORT_PSORT_H_
