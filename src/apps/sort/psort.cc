#include "src/apps/sort/psort.h"

#include <algorithm>

#include "src/base/panic.h"
#include "src/base/rng.h"
#include "src/core/amber.h"

namespace psort {
namespace {

using amber::MakeImmutable;
using amber::MoveTo;
using amber::New;
using amber::NewOn;
using amber::NodeId;
using amber::Object;
using amber::Ref;
using amber::StartThreadNamed;
using amber::ThreadRef;
using amber::Work;

// log2-ish factor for n log n cost accounting.
int64_t Log2Ceil(int64_t n) {
  int64_t bits = 0;
  while ((int64_t{1} << bits) < n) {
    ++bits;
  }
  return std::max<int64_t>(bits, 1);
}

// The P-1 splitters, published once and replicated everywhere.
class Splitters : public Object {
 public:
  void Set(std::vector<uint64_t> values) { values_ = std::move(values); }
  std::vector<uint64_t> Get() const { return values_; }
  int64_t AmberPayloadBytes() const override {
    return static_cast<int64_t>(values_.size() * sizeof(uint64_t));
  }

 private:
  std::vector<uint64_t> values_;
};

// A bucket of keys destined for one node. Moves between phases.
class Bucket : public Object {
 public:
  void Add(std::vector<uint64_t> keys) { keys_ = std::move(keys); }
  std::vector<uint64_t> Take() { return std::move(keys_); }
  int64_t AmberPayloadBytes() const override {
    return static_cast<int64_t>(keys_.size() * sizeof(uint64_t));
  }

 private:
  std::vector<uint64_t> keys_;
};

// One node's portion of the computation.
class Block : public Object {
 public:
  Block(int index, int64_t count, uint64_t seed) : index_(index) {
    amber::Rng rng(seed + static_cast<uint64_t>(index) * 0x9e3779b97f4a7c15ULL);
    keys_.reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      keys_.push_back(rng.Next());
    }
  }

  // Phase 1: local sort + sample extraction.
  std::vector<uint64_t> SortAndSample(int samples, Duration key_op_cost) {
    std::sort(keys_.begin(), keys_.end());
    const auto n = static_cast<int64_t>(keys_.size());
    Work(n * Log2Ceil(n) * key_op_cost);
    std::vector<uint64_t> sample;
    for (int s = 0; s < samples; ++s) {
      sample.push_back(keys_[static_cast<size_t>((n * (s + 1)) / (samples + 1))]);
    }
    return sample;
  }

  // Phase 2: split the sorted block by the splitters into per-node runs,
  // storing each into the corresponding Bucket object (created locally).
  std::vector<Ref<Bucket>> Partition(Ref<Splitters> splitters, Duration key_op_cost) {
    const std::vector<uint64_t> cuts = splitters.Call(&Splitters::Get);  // replica read
    std::vector<Ref<Bucket>> buckets;
    size_t begin = 0;
    for (size_t part = 0; part <= cuts.size(); ++part) {
      size_t end = keys_.size();
      if (part < cuts.size()) {
        end = static_cast<size_t>(
            std::lower_bound(keys_.begin(), keys_.end(), cuts[part]) - keys_.begin());
      }
      auto bucket = New<Bucket>();
      bucket.Call(&Bucket::Add,
                  std::vector<uint64_t>(keys_.begin() + static_cast<long>(begin),
                                        keys_.begin() + static_cast<long>(end)));
      buckets.push_back(bucket);
      begin = end;
    }
    Work(static_cast<int64_t>(keys_.size()) * key_op_cost);  // one pass
    keys_.clear();
    return buckets;
  }

  // Phase 3: merge the runs destined for this node into the final output.
  int64_t MergeRuns(std::vector<std::vector<uint64_t>> runs, Duration key_op_cost) {
    int64_t total = 0;
    for (const auto& r : runs) {
      total += static_cast<int64_t>(r.size());
    }
    out_.clear();
    out_.reserve(static_cast<size_t>(total));
    for (auto& r : runs) {
      out_.insert(out_.end(), r.begin(), r.end());
    }
    std::sort(out_.begin(), out_.end());  // k-way merge modeled as sort of runs
    Work(total * Log2Ceil(std::max<int64_t>(2, static_cast<int64_t>(runs.size()))) *
         key_op_cost);
    return total;
  }

  std::vector<uint64_t> TakeOutput() { return std::move(out_); }
  int64_t AmberPayloadBytes() const override {
    return static_cast<int64_t>((keys_.size() + out_.size()) * sizeof(uint64_t));
  }

 private:
  const int index_;
  std::vector<uint64_t> keys_;
  std::vector<uint64_t> out_;
};

}  // namespace

uint64_t KeysetChecksum(const std::vector<uint64_t>& keys) {
  // Commutative mix so the checksum identifies the multiset regardless of
  // partitioning or order.
  uint64_t sum = 0;
  uint64_t xr = 0;
  for (uint64_t k : keys) {
    uint64_t z = k + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    sum += z;
    xr ^= z;
  }
  return sum ^ (xr * 0x94d049bb133111ebULL);
}

Result RunAmber(amber::Runtime& rt, const Params& params) {
  Result result;
  rt.Run([&] {
    const int nodes = rt.nodes();
    const int64_t per_node = params.keys / nodes;

    // Setup: one block per node, pre-filled with its keys (input
    // distribution is the problem statement, not part of the measured sort).
    std::vector<Ref<Block>> blocks;
    for (NodeId n = 0; n < nodes; ++n) {
      blocks.push_back(NewOn<Block>(n, n, per_node, params.seed));
    }
    auto splitters = New<Splitters>();

    const amber::Time t0 = amber::Now();
    // --- Phase 1: parallel local sort + sampling --------------------------
    std::vector<ThreadRef<std::vector<uint64_t>>> sorters;
    for (auto& b : blocks) {
      sorters.push_back(StartThreadNamed("sort", 0, b, &Block::SortAndSample,
                                         params.samples_per_node, params.key_op_cost));
    }
    std::vector<uint64_t> all_samples;
    for (auto& t : sorters) {
      const auto s = t.Join();
      all_samples.insert(all_samples.end(), s.begin(), s.end());
    }
    result.phase1_end = amber::Now() - t0;

    // Master: choose splitters, publish immutably.
    std::sort(all_samples.begin(), all_samples.end());
    std::vector<uint64_t> cuts;
    for (int p = 1; p < nodes; ++p) {
      cuts.push_back(all_samples[static_cast<size_t>(
          (static_cast<int64_t>(all_samples.size()) * p) / nodes)]);
    }
    splitters.Call(&Splitters::Set, cuts);
    MakeImmutable(splitters);

    // --- Phase 2: partition into buckets -----------------------------------
    std::vector<ThreadRef<std::vector<Ref<Bucket>>>> partitioners;
    for (auto& b : blocks) {
      partitioners.push_back(StartThreadNamed("part", 0, b, &Block::Partition, splitters,
                                              params.key_op_cost));
    }
    // buckets[src][dst]
    std::vector<std::vector<Ref<Bucket>>> buckets;
    for (auto& t : partitioners) {
      buckets.push_back(t.Join());
    }

    // --- Reorganization (or not) -------------------------------------------
    if (params.reorganize) {
      // Move every bucket to its destination node: the phase boundary
      // object shuffle MoveTo exists for. Done in parallel by threads.
      class Mover : public Object {
       public:
        int MoveAll(std::vector<Ref<Bucket>> row, int src) {
          for (size_t dst = 0; dst < row.size(); ++dst) {
            if (static_cast<NodeId>(dst) != static_cast<NodeId>(src)) {
              MoveTo(row[dst], static_cast<NodeId>(dst));
            }
          }
          return 0;
        }
      };
      std::vector<ThreadRef<int>> movers;
      for (int src = 0; src < nodes; ++src) {
        auto m = NewOn<Mover>(src);
        movers.push_back(
            StartThreadNamed("move", 0, m, &Mover::MoveAll, buckets[static_cast<size_t>(src)],
                             src));
      }
      for (auto& t : movers) {
        t.Join();
      }
    }
    result.reorg_end = amber::Now() - t0;

    // --- Phase 3: merge on each destination node ---------------------------
    class Merger : public Object {
     public:
      int64_t Gather(Ref<Block> block, std::vector<Ref<Bucket>> incoming,
                     Duration key_op_cost) {
        std::vector<std::vector<uint64_t>> runs;
        for (auto& b : incoming) {
          // If the bucket was moved here this is a local call; otherwise
          // the thread travels to the bucket and carries the keys back.
          runs.push_back(b.Call(&Bucket::Take));
        }
        return block.Call(&Block::MergeRuns, runs, key_op_cost);
      }
    };
    std::vector<ThreadRef<int64_t>> mergers;
    for (NodeId dst = 0; dst < nodes; ++dst) {
      std::vector<Ref<Bucket>> incoming;
      for (int src = 0; src < nodes; ++src) {
        incoming.push_back(buckets[static_cast<size_t>(src)][static_cast<size_t>(dst)]);
      }
      auto m = NewOn<Merger>(dst);
      mergers.push_back(StartThreadNamed("merge", 0, m, &Merger::Gather,
                                         blocks[static_cast<size_t>(dst)], incoming,
                                         params.key_op_cost));
    }
    int64_t total_keys = 0;
    for (auto& t : mergers) {
      total_keys += t.Join();
    }
    result.solve_time = amber::Now() - t0;
    AMBER_CHECK(total_keys == per_node * nodes);

    // --- Verification (host-side, unmeasured) -------------------------------
    std::vector<uint64_t> gathered;
    uint64_t prev_max = 0;
    result.sorted = true;
    for (NodeId n = 0; n < nodes; ++n) {
      const auto out = blocks[static_cast<size_t>(n)].Call(&Block::TakeOutput);
      for (size_t i = 0; i < out.size(); ++i) {
        if (i > 0 && out[i] < out[i - 1]) {
          result.sorted = false;
        }
      }
      if (!out.empty()) {
        if (n > 0 && out.front() < prev_max) {
          result.sorted = false;
        }
        prev_max = out.back();
      }
      gathered.insert(gathered.end(), out.begin(), out.end());
    }
    result.checksum = KeysetChecksum(gathered);
  });
  result.net_messages = rt.network().messages();
  result.net_bytes = rt.network().bytes_sent();
  result.objects_moved = rt.objects_moved();
  return result;
}

Result RunSequentialOn(const Params& params, const sim::CostModel& cost) {
  amber::Runtime::Config config;
  config.nodes = 1;
  config.procs_per_node = 1;
  config.cost = cost;
  config.arena_bytes = size_t{256} << 20;
  amber::Runtime rt(config);
  Result result;
  rt.Run([&] {
    amber::Rng rng(params.seed);
    std::vector<uint64_t> keys;
    keys.reserve(static_cast<size_t>(params.keys));
    for (int64_t i = 0; i < params.keys; ++i) {
      keys.push_back(rng.Next());
    }
    const amber::Time t0 = amber::Now();
    std::sort(keys.begin(), keys.end());
    Work(params.keys * Log2Ceil(params.keys) * params.key_op_cost);
    result.solve_time = amber::Now() - t0;
    result.sorted = std::is_sorted(keys.begin(), keys.end());
    result.checksum = KeysetChecksum(keys);
  });
  return result;
}

Result RunAmberOn(int nodes, int procs, const Params& params, const sim::CostModel& cost) {
  amber::Runtime::Config config;
  config.nodes = nodes;
  config.procs_per_node = procs;
  config.cost = cost;
  config.arena_bytes = size_t{512} << 20;
  amber::Runtime rt(config);
  return RunAmber(rt, params);
}

}  // namespace psort
