#include "src/apps/fdr/fdr_report.h"

#include <algorithm>
#include <map>
#include <set>

namespace fdrtool {

// --- JSON reader -------------------------------------------------------------

const Json* Json::Get(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : obj) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

int64_t Json::Int(const std::string& key, int64_t def) const {
  const Json* v = Get(key);
  return v != nullptr && v->kind == Kind::kNumber ? static_cast<int64_t>(v->num) : def;
}

std::string Json::Str(const std::string& key, const std::string& def) const {
  const Json* v = Get(key);
  return v != nullptr && v->kind == Kind::kString ? v->str : def;
}

bool Json::Bool(const std::string& key, bool def) const {
  const Json* v = Get(key);
  return v != nullptr && v->kind == Kind::kBool ? v->b : def;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool Parse(Json* out) {
    SkipWs();
    if (!Value(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters");
    }
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const size_t len = std::string(lit).size();
    if (text_.compare(pos_, len, lit) != 0) {
      return Fail(std::string("expected '") + lit + "'");
    }
    pos_ += len;
    return true;
  }

  bool String(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return Fail("truncated escape");
      }
      char e = text_[pos_++];
      switch (e) {
        case '"':  out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/':  out->push_back('/'); break;
        case 'n':  out->push_back('\n'); break;
        case 't':  out->push_back('\t'); break;
        case 'r':  out->push_back('\r'); break;
        case 'b':  out->push_back('\b'); break;
        case 'f':  out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // Dumps only escape control characters, so a one-byte decode
          // suffices (other code points pass through as UTF-8 already).
          out->push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    if (pos_ >= text_.size()) {
      return Fail("unterminated string");
    }
    ++pos_;  // closing quote
    return true;
  }

  bool Value(Json* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      out->kind = Json::Kind::kObject;
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!String(&key)) {
          return false;
        }
        SkipWs();
        if (!Literal(":")) {
          return false;
        }
        SkipWs();
        Json value;
        if (!Value(&value)) {
          return false;
        }
        out->obj.emplace_back(std::move(key), std::move(value));
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Literal("}");
      }
    }
    if (c == '[') {
      out->kind = Json::Kind::kArray;
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        Json value;
        if (!Value(&value)) {
          return false;
        }
        out->arr.push_back(std::move(value));
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Literal("]");
      }
    }
    if (c == '"') {
      out->kind = Json::Kind::kString;
      return String(&out->str);
    }
    if (c == 't') {
      out->kind = Json::Kind::kBool;
      out->b = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = Json::Kind::kBool;
      out->b = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = Json::Kind::kNull;
      return Literal("null");
    }
    // Number.
    size_t end = pos_;
    while (end < text_.size() &&
           (text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E' ||
            (text_[end] >= '0' && text_[end] <= '9'))) {
      ++end;
    }
    if (end == pos_) {
      return Fail("unexpected character");
    }
    out->kind = Json::Kind::kNumber;
    out->num = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

// --- Report ------------------------------------------------------------------

std::string Ms(int64_t ns) {
  // Fixed 3-decimal milliseconds without locale-dependent formatting.
  const bool neg = ns < 0;
  const int64_t abs_ns = neg ? -ns : ns;
  const int64_t whole = abs_ns / 1000000;
  const int64_t frac = (abs_ns % 1000000) / 1000;
  std::string f = std::to_string(frac);
  while (f.size() < 3) {
    f.insert(f.begin(), '0');
  }
  return (neg ? "-" : "") + std::to_string(whole) + "." + f + " ms";
}

const Json* FindBy(const Json* array, const std::string& key, int64_t value) {
  if (array == nullptr || array->kind != Json::Kind::kArray) {
    return nullptr;
  }
  for (const Json& e : array->arr) {
    if (e.Int(key, value - 1) == value) {
      return &e;
    }
  }
  return nullptr;
}

std::string ThreadLabel(const Json* threads, int64_t tid) {
  const Json* t = FindBy(threads, "thread", tid);
  if (t == nullptr) {
    return "thread " + std::to_string(tid);
  }
  const std::string name = t->Str("name");
  return "thread " + std::to_string(tid) + (name.empty() ? "" : " (" + name + ")");
}

// One timeline line: every member except the envelope keys, in dump order.
void RenderEventLine(const Json& e, std::ostream& out) {
  out << "  [" << Ms(e.Int("t")) << "] n" << e.Int("node") << " " << e.Str("type");
  for (const auto& [k, v] : e.obj) {
    if (k == "seq" || k == "t" || k == "node" || k == "type") {
      continue;
    }
    out << " " << k << "=";
    switch (v.kind) {
      case Json::Kind::kString: out << v.str; break;
      case Json::Kind::kBool:   out << (v.b ? "true" : "false"); break;
      case Json::Kind::kNumber: out << static_cast<int64_t>(v.num); break;
      default:                  out << "?"; break;
    }
  }
  out << "\n";
}

void RenderCausalChain(const Json& dump, std::ostream& out) {
  const Json* threads = dump.Get("threads");
  const Json* locks = dump.Get("locks");
  const Json* rpcs = dump.Get("rpcs_in_flight");
  int64_t tid = dump.Int("dying_thread");
  out << "Causal chain from the dying thread:\n";
  if (tid == 0 && FindBy(threads, "thread", 0) == nullptr) {
    out << "  (death outside any simulated thread — event or host context)\n";
    return;
  }
  std::set<int64_t> visited;
  for (int depth = 0; depth < 32; ++depth) {
    if (!visited.insert(tid).second) {
      out << "  ** cycle: " << ThreadLabel(threads, tid)
          << " reached again — lock-wait deadlock **\n";
      return;
    }
    const Json* t = FindBy(threads, "thread", tid);
    if (t == nullptr) {
      out << "  " << ThreadLabel(threads, tid) << ": no recorded state\n";
      return;
    }
    out << "  " << ThreadLabel(threads, tid) << " on n" << t->Int("node") << " is "
        << t->Str("status") << " (since " << Ms(t->Int("since_ns")) << ")";
    const Json* held = t->Get("held_locks");
    if (held != nullptr && !held->arr.empty()) {
      out << ", holding lock";
      for (size_t i = 0; i < held->arr.size(); ++i) {
        out << (i == 0 ? " " : ", ") << static_cast<int64_t>(held->arr[i].num);
      }
    }
    out << "\n";
    if (t->Str("status") != "blocked") {
      return;
    }
    const std::string wait = t->Str("wait");
    if (wait == "lock") {
      const int64_t lock = t->Int("wait_arg");
      const Json* l = FindBy(locks, "lock", lock);
      const int64_t holder = l != nullptr ? l->Int("holder") : 0;
      out << "    └ waits on lock " << lock;
      if (holder == 0) {
        out << " (no recorded holder)\n";
        return;
      }
      out << ", held by " << ThreadLabel(threads, holder) << "\n";
      tid = holder;
      continue;
    }
    if (wait == "rpc") {
      const int64_t id = t->Int("wait_arg");
      out << "    └ waits on rpc " << id << " to n" << t->Int("wait_node");
      const Json* r = FindBy(rpcs, "id", id);
      if (r != nullptr) {
        out << " (departed " << Ms(r->Int("depart_ns")) << ", " << r->Int("attempts")
            << " transmission" << (r->Int("attempts") == 1 ? "" : "s") << ")";
      }
      out << "\n";
      return;
    }
    if (wait == "join") {
      const int64_t target = t->Int("wait_arg");
      out << "    └ waits to join " << ThreadLabel(threads, target) << "\n";
      tid = target;
      continue;
    }
    if (wait == "migration") {
      out << "    └ waits on migration to n" << t->Int("wait_node") << "\n";
      return;
    }
    if (wait == "backoff") {
      out << "    └ waits in failure backoff\n";
      return;
    }
    out << "    └ blocked (condition/sleep — no tracked resource)\n";
    return;
  }
  out << "  ... chain truncated at depth 32\n";
}

void RenderSuspicion(const Json& dump, std::ostream& out) {
  const Json* suspicion = dump.Get("suspicion");
  const Json* nodes = dump.Get("nodes");
  if (suspicion == nullptr || suspicion->kind != Json::Kind::kArray) {
    return;
  }
  bool any = false;
  for (const Json& view : suspicion->arr) {
    const Json* sus = view.Get("suspects");
    if (sus != nullptr && !sus->arr.empty()) {
      any = true;
    }
  }
  out << "Suspicion views:\n";
  if (!any) {
    out << "  all nodes trust all nodes\n";
    return;
  }
  for (const Json& view : suspicion->arr) {
    const Json* sus = view.Get("suspects");
    if (sus == nullptr || sus->arr.empty()) {
      continue;
    }
    out << "  n" << view.Int("viewer") << " suspects:";
    for (const Json& p : sus->arr) {
      out << " n" << static_cast<int64_t>(p.num);
    }
    out << "\n";
  }
  // Discrepancies: a suspected node whose recorder shows it alive.
  for (const Json& view : suspicion->arr) {
    const Json* sus = view.Get("suspects");
    if (sus == nullptr) {
      continue;
    }
    for (const Json& p : sus->arr) {
      const int64_t peer = static_cast<int64_t>(p.num);
      const Json* n = FindBy(nodes, "node", peer);
      if (n != nullptr && !n->Bool("crashed")) {
        out << "  ** discrepancy: n" << view.Int("viewer") << " suspected n" << peer
            << ", but n" << peer << " never crashed (last event " << Ms(n->Int("last_event_ns"))
            << ") **\n";
      }
    }
  }
}

void RenderTraffic(const Json& dump, std::ostream& out) {
  const Json* events = dump.Get("events");
  if (events == nullptr || events->kind != Json::Kind::kArray) {
    return;
  }
  // Aggregate the retained window's wire traffic by link; keys match the
  // net.link_bytes / net.link_queue_depth metric labels.
  std::map<std::string, std::pair<int64_t, int64_t>> links;  // label -> (msgs, bytes)
  for (const Json& e : events->arr) {
    if (e.Str("type") != "message") {
      continue;
    }
    const std::string label =
        std::to_string(e.Int("node")) + "->" + std::to_string(e.Int("dst"));
    links[label].first += 1;
    links[label].second += e.Int("bytes");
  }
  if (links.empty()) {
    return;
  }
  out << "Final-window link traffic (cross-reference metrics net.link_bytes{<link>}):\n";
  for (const auto& [label, mb] : links) {
    out << "  " << label << ": " << mb.first << " msgs, " << mb.second << " bytes\n";
  }
}

}  // namespace

bool ParseJson(const std::string& text, Json* out, std::string* error) {
  return Parser(text, error).Parse(out);
}

void RenderReport(const Json& dump, std::ostream& out, size_t timeline_events) {
  const Json* threads = dump.Get("threads");
  out << "=== amber flight recorder: " << dump.Str("fdr", "?") << " ===\n";
  out << "reason: " << dump.Str("reason", "?");
  const std::string detail = dump.Str("detail");
  if (!detail.empty()) {
    out << " — " << detail;
  }
  out << "\n";
  out << "virtual time of death: " << Ms(dump.Int("virtual_time_ns")) << "\n";
  out << "dying thread: " << ThreadLabel(threads, dump.Int("dying_thread")) << "\n";
  out << "recorder: " << dump.Int("recorded") << " events recorded, " << dump.Int("dropped")
      << " overwritten (ring capacity " << dump.Int("ring_capacity") << "/node)\n";

  const Json* nodes = dump.Get("nodes");
  if (nodes != nullptr && nodes->kind == Json::Kind::kArray) {
    out << "\nNodes:\n";
    for (const Json& n : nodes->arr) {
      out << "  n" << n.Int("node") << ": " << (n.Bool("crashed") ? "CRASHED" : "up")
          << ", last event " << Ms(n.Int("last_event_ns")) << ", " << n.Int("recorded")
          << " recorded (" << n.Int("dropped") << " dropped)\n";
    }
  }

  out << "\n";
  RenderSuspicion(dump, out);
  out << "\n";
  RenderCausalChain(dump, out);

  const Json* locks = dump.Get("locks");
  if (locks != nullptr && !locks->arr.empty()) {
    out << "\nLocks held or contended at death:\n";
    for (const Json& l : locks->arr) {
      out << "  lock " << l.Int("lock") << ": held by "
          << ThreadLabel(threads, l.Int("holder"));
      const Json* waiters = l.Get("waiters");
      if (waiters != nullptr && !waiters->arr.empty()) {
        out << "; waiting:";
        for (const Json& w : waiters->arr) {
          out << " " << static_cast<int64_t>(w.num);
        }
      }
      out << "\n";
    }
  }

  const Json* rpcs = dump.Get("rpcs_in_flight");
  if (rpcs != nullptr && !rpcs->arr.empty()) {
    out << "\nRPCs in flight:\n";
    for (const Json& r : rpcs->arr) {
      out << "  rpc " << r.Int("id") << " n" << r.Int("src") << "->n" << r.Int("dst") << ", "
          << r.Int("bytes") << " bytes, requester "
          << ThreadLabel(threads, r.Int("requester")) << ", departed "
          << Ms(r.Int("depart_ns")) << ", " << r.Int("attempts") << " transmission"
          << (r.Int("attempts") == 1 ? "" : "s") << "\n";
    }
  }

  const Json* objects = dump.Get("objects");
  if (objects != nullptr && !objects->arr.empty()) {
    out << "\nRecently-touched objects (descriptor chain per node):\n";
    for (const Json& o : objects->arr) {
      out << "  #" << o.Int("id") << " " << o.Str("label") << " @ n" << o.Int("node")
          << " (touched " << Ms(o.Int("last_touched_ns")) << ")";
      const Json* chain = o.Get("chain");
      if (chain != nullptr && !chain->arr.empty()) {
        out << " [";
        for (size_t i = 0; i < chain->arr.size(); ++i) {
          out << (i == 0 ? "" : " ") << chain->arr[i].str;
        }
        out << "]";
      }
      out << "\n";
    }
  }

  out << "\n";
  RenderTraffic(dump, out);

  const Json* events = dump.Get("events");
  if (events != nullptr && events->kind == Json::Kind::kArray) {
    const size_t total = events->arr.size();
    const size_t show = std::min(timeline_events, total);
    out << "\nFinal " << show << " of " << total << " retained events:\n";
    for (size_t i = total - show; i < total; ++i) {
      RenderEventLine(events->arr[i], out);
    }
  }
}

}  // namespace fdrtool
