// amber-fdr: render a "why did this run die" report from a flight-recorder
// dump (FDR_*.json), the post-mortem counterpart of amber-prof.
//
// Usage:
//   amber-fdr <FDR_file.json>             full report
//   amber-fdr --timeline=N <file>         show the last N events (default 40)
//
// Exit status: 0 on success, 1 on usage/IO error, 2 on a malformed dump.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/apps/fdr/fdr_report.h"

int main(int argc, char** argv) {
  size_t timeline = 40;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--timeline=", 0) == 0) {
      timeline = static_cast<size_t>(std::stoul(arg.substr(11)));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return 1;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "usage: amber-fdr [--timeline=N] <FDR_file.json>\n";
      return 1;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: amber-fdr [--timeline=N] <FDR_file.json>\n";
    return 1;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "amber-fdr: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  fdrtool::Json dump;
  std::string error;
  if (!fdrtool::ParseJson(buf.str(), &dump, &error)) {
    std::cerr << "amber-fdr: malformed dump " << path << ": " << error << "\n";
    return 2;
  }
  fdrtool::RenderReport(dump, std::cout, timeline);
  return 0;
}
