// Post-mortem analysis of flight-recorder dumps (FDR_*.json).
//
// A deliberately small, dependency-free JSON reader plus the report
// renderer behind the amber-fdr CLI. The renderer answers "why did this
// run die": the final-window timeline, the dying thread's causal chain
// (who it waited on, transitively, with deadlock-cycle detection), lock
// and RPC state at death, and cross-node discrepancies between suspicion
// views and actual node liveness. Lives in a library so tests can drive
// it against freshly-written dumps without shelling out.

#ifndef AMBER_SRC_APPS_FDR_FDR_REPORT_H_
#define AMBER_SRC_APPS_FDR_FDR_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace fdrtool {

// Minimal JSON document tree. Object keys keep file order, so rendering
// a value echoes the dump's deterministic layout.
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  // Object member access; nullptr when absent or not an object.
  const Json* Get(const std::string& key) const;
  // Convenience accessors with defaults (for absent/mistyped members).
  int64_t Int(const std::string& key, int64_t def = 0) const;
  std::string Str(const std::string& key, const std::string& def = "") const;
  bool Bool(const std::string& key, bool def = false) const;
};

// Parses a complete JSON document. Returns false (and sets *error, with
// byte offset) on malformed input.
bool ParseJson(const std::string& text, Json* out, std::string* error);

// Renders the human "why did this run die" report for a parsed FDR dump.
// `timeline_events` bounds the final-window timeline section.
void RenderReport(const Json& dump, std::ostream& out, size_t timeline_events = 40);

}  // namespace fdrtool

#endif  // AMBER_SRC_APPS_FDR_FDR_REPORT_H_
