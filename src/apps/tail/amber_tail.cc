// amber-tail: renders one request's span tree from a TRACEREQ_*.json dump.
//
//   amber-tail TRACEREQ_serve.json                     # slowest trace
//   amber-tail TRACEREQ_serve.json --trace 17          # a specific trace id
//   amber-tail TRACEREQ_serve.json --exemplar BENCH_serve.json [--hist serve.latency]
//                                                      # the p999 exemplar's trace
//
// The third form closes the observability loop: a latency histogram's p999
// bucket carries an exemplar naming a real traced request; amber-tail looks
// the exemplar up in the benchmark's metrics dump, finds that trace in the
// TRACEREQ document, and shows where the nanoseconds went — queueing vs
// compute vs RPC vs retries vs migration — with the span tree underneath.
//
// The per-hop attribution is checked, not trusted: the category sums must
// equal the trace's end-to-end latency exactly (the tracer tiles the root
// thread's lifetime), and amber-tail exits nonzero if they do not.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/fdr/fdr_report.h"

namespace {

using fdrtool::Json;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool LoadJson(const std::string& path, Json* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "amber-tail: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!fdrtool::ParseJson(text, out, &error)) {
    std::fprintf(stderr, "amber-tail: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

std::string Us(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ns / 1000.0);
  return buf;
}

// Finds the exemplar nearest the histogram's p999 in a BENCH_*.json metrics
// section. Returns 0 when the family has no exemplars.
uint64_t ExemplarTraceId(const Json& bench, const std::string& family) {
  const Json* metrics = bench.Get("metrics");
  const Json* hists = metrics != nullptr ? metrics->Get("histograms") : nullptr;
  const Json* fam = hists != nullptr ? hists->Get(family) : nullptr;
  if (fam == nullptr) {
    std::fprintf(stderr, "amber-tail: no histogram family \"%s\" in benchmark dump\n",
                 family.c_str());
    return 0;
  }
  uint64_t best_id = 0;
  double best_dist = 0;
  for (const auto& [label, h] : fam->obj) {
    const Json* exemplars = h.Get("exemplars");
    if (exemplars == nullptr) {
      continue;
    }
    const double p999 = h.Get("p999") != nullptr ? h.Get("p999")->num : 0;
    for (const auto& [bucket, ex] : exemplars->obj) {
      const double dist = std::abs(ex.Int("value") - p999);
      const uint64_t id = static_cast<uint64_t>(ex.Int("trace_id"));
      if (id != 0 && (best_id == 0 || dist < best_dist)) {
        best_id = id;
        best_dist = dist;
      }
    }
  }
  return best_id;
}

const Json* FindTrace(const Json& dump, uint64_t trace_id) {
  const Json* traces = dump.Get("traces");
  if (traces == nullptr) {
    return nullptr;
  }
  for (const Json& t : traces->arr) {
    if (trace_id == 0 || static_cast<uint64_t>(t.Int("trace_id")) == trace_id) {
      return &t;  // trace_id 0: caller wants the first candidate
    }
  }
  return nullptr;
}

const Json* SlowestTrace(const Json& dump) {
  const Json* traces = dump.Get("traces");
  const Json* best = nullptr;
  if (traces == nullptr) {
    return nullptr;
  }
  for (const Json& t : traces->arr) {
    if (best == nullptr || t.Int("latency_ns") > best->Int("latency_ns")) {
      best = &t;
    }
  }
  return best;
}

void RenderSpanTree(const Json& trace) {
  const Json* spans = trace.Get("spans");
  if (spans == nullptr) {
    return;
  }
  // parent id -> children, in file (creation) order.
  std::map<int64_t, std::vector<const Json*>> children;
  for (const Json& s : spans->arr) {
    children[s.Int("parent")].push_back(&s);
  }
  const int64_t start0 = trace.Int("start_ns");
  // Recursive descent without recursion: explicit stack of (span, depth).
  std::vector<std::pair<const Json*, int>> stack;
  const auto push_children = [&](int64_t id, int depth) {
    auto it = children.find(id);
    if (it == children.end()) {
      return;
    }
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
      stack.emplace_back(*rit, depth);
    }
  };
  push_children(0, 0);
  while (!stack.empty()) {
    const auto [s, depth] = stack.back();
    stack.pop_back();
    const int64_t start = s->Int("start_ns");
    const int64_t end = s->Int("end_ns");
    std::string line(static_cast<size_t>(depth) * 2, ' ');
    line += s->Str("kind");
    const std::string label = s->Str("label");
    if (!label.empty()) {
      line += " \"" + label + "\"";
    }
    std::printf("  %-44s +%8s us  %8s us  node %lld", line.c_str(),
                Us(static_cast<double>(start - start0)).c_str(),
                Us(static_cast<double>(end - start)).c_str(),
                static_cast<long long>(s->Int("node")));
    if (s->Int("aux") != 0) {
      std::printf("  aux %lld", static_cast<long long>(s->Int("aux")));
    }
    if (s->Int("retries") > 0) {
      std::printf("  retries %lld", static_cast<long long>(s->Int("retries")));
    }
    if (s->Bool("failed")) {
      std::printf("  FAILED");
    }
    std::printf("\n");
    push_children(s->Int("id"), depth + 1);
  }
}

// Renders the trace; returns false when the attribution does not tile the
// latency exactly (a tracer bug worth failing CI over).
bool RenderTrace(const Json& trace) {
  const int64_t latency = trace.Int("latency_ns");
  std::printf("trace %lld \"%s\"  latency %s us  (root thread %lld, %lld wire hops)\n",
              static_cast<long long>(trace.Int("trace_id")), trace.Str("name").c_str(),
              Us(static_cast<double>(latency)).c_str(),
              static_cast<long long>(trace.Int("root_thread")),
              static_cast<long long>(trace.Int("hops")));

  const Json* attr = trace.Get("attribution");
  int64_t sum = 0;
  if (attr != nullptr) {
    std::printf("\n  %-12s %12s %8s\n", "category", "us", "share");
    std::vector<std::pair<std::string, int64_t>> rows;
    for (const auto& [cat, v] : attr->obj) {
      rows.emplace_back(cat, static_cast<int64_t>(v.num));
      sum += static_cast<int64_t>(v.num);
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [cat, ns] : rows) {
      if (ns == 0) {
        continue;
      }
      std::printf("  %-12s %12s %7.1f%%\n", cat.c_str(), Us(static_cast<double>(ns)).c_str(),
                  latency > 0 ? 100.0 * static_cast<double>(ns) / static_cast<double>(latency)
                              : 0.0);
    }
  }

  std::printf("\n  %-44s %11s %12s\n", "span", "at", "took");
  RenderSpanTree(trace);

  if (sum != latency) {
    std::printf("\namber-tail: ATTRIBUTION MISMATCH: categories sum to %lld ns, latency is "
                "%lld ns\n",
                static_cast<long long>(sum), static_cast<long long>(latency));
    return false;
  }
  std::printf("\nattribution sums to latency exactly (%lld ns).\n",
              static_cast<long long>(latency));
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: amber-tail TRACEREQ_<name>.json [--trace ID] "
               "[--exemplar BENCH_<name>.json [--hist FAMILY]]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dump_path;
  std::string bench_path;
  std::string family = "serve.latency";
  uint64_t trace_id = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_id = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--exemplar" && i + 1 < argc) {
      bench_path = argv[++i];
    } else if (arg == "--hist" && i + 1 < argc) {
      family = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (dump_path.empty()) {
      dump_path = arg;
    } else {
      return Usage();
    }
  }
  if (dump_path.empty()) {
    return Usage();
  }

  Json dump;
  if (!LoadJson(dump_path, &dump)) {
    return 1;
  }
  std::printf("rtrace \"%s\": %lld requests seen, %lld sampled, %lld contexts propagated\n\n",
              dump.Str("rtrace").c_str(), static_cast<long long>(dump.Int("requests_seen")),
              static_cast<long long>(dump.Int("requests_sampled")),
              static_cast<long long>(dump.Int("contexts_propagated")));

  if (!bench_path.empty()) {
    Json bench;
    if (!LoadJson(bench_path, &bench)) {
      return 1;
    }
    trace_id = ExemplarTraceId(bench, family);
    if (trace_id == 0) {
      std::fprintf(stderr, "amber-tail: histogram \"%s\" carries no exemplars\n", family.c_str());
      return 1;
    }
    std::printf("p999 exemplar of %s names trace %llu:\n\n", family.c_str(),
                static_cast<unsigned long long>(trace_id));
  }

  const Json* trace = trace_id != 0 ? FindTrace(dump, trace_id) : SlowestTrace(dump);
  if (trace == nullptr) {
    std::fprintf(stderr, "amber-tail: trace %llu not found in %s%s\n",
                 static_cast<unsigned long long>(trace_id), dump_path.c_str(),
                 trace_id != 0 ? " (evicted, or sampling missed it)" : "");
    return 1;
  }
  return RenderTrace(*trace) ? 0 : 1;
}
