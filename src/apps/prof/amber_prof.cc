// amber-prof: run a registered example/bench scenario under the causal
// critical-path profiler and report where the virtual time went.
//
// For each requested scenario the tool builds a Runtime, attaches a
// prof::Profiler to the event bus (AddObserver — zero virtual-time cost),
// runs the workload, and then:
//   * prints the human-readable summary (attribution table, per-lock
//     contention, ranked placement advice) to stdout;
//   * writes the machine-readable report to PROF_<scenario>.json in the
//     current directory (byte-identical across same-seed runs).
//
// Scenarios:
//   serial        single node, single processor: pure compute; the critical
//                 path is the run (sanity baseline)
//   fig2          the paper's headline 8Nx4P Red/Black SOR solve
//   lock-convoy   four nodes hammering one lock-protected object
//   chaos         quarter-scale SOR under the standard lossy fault plan
//                 (seed 42) with a mid-solve node crash
//   hotspot       an object placed on node 0 but invoked almost entirely
//                 from node 2 — the advisor recommends MoveTo(2)
//   hotspot-moved the same workload with the recommended MoveTo applied:
//                 reported virtual time drops
//
// With no arguments every scenario runs, in the order above.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/apps/sor/sor.h"
#include "src/core/amber.h"
#include "src/fault/fault.h"
#include "src/policy/policy.h"
#include "src/prof/profiler.h"

namespace {

using amber::kMicrosecond;
using amber::NodeId;
using amber::Ref;
using amber::Time;

// Writes the report for `name`, prints the summary, returns the run's
// virtual end time.
Time Emit(prof::Profiler& profiler, const std::string& name, Time end) {
  prof::ProfileReport report = profiler.Finalize();
  report.name = name;
  report.WriteSummary(std::cout);
  const std::string path = "PROF_" + name + ".json";
  std::ofstream out(path);
  report.WriteJson(out);
  std::printf("wrote %s\n\n", path.c_str());
  return end;
}

// --- Workload objects ----------------------------------------------------------

class Spinner : public amber::Object {
 public:
  int Step() {
    amber::Work(kMicrosecond * 100);
    return ++steps_;
  }

 private:
  int steps_ = 0;
};

class Protected : public amber::Object {
 public:
  void Update() {
    lock_.Acquire();
    const int v = value_;
    amber::Work(kMicrosecond * 200);
    value_ = v + 1;
    lock_.Release();
  }
  int value() const { return value_; }

 private:
  amber::Lock lock_;
  int value_ = 0;
};

class NodeWorker : public amber::Object {
 public:
  int Run(Ref<Protected> p, int rounds) {
    for (int i = 0; i < rounds; ++i) {
      p.Call(&Protected::Update);
      amber::Work(kMicrosecond * 500);
    }
    return rounds;
  }
};

class Counter : public amber::Object {
 public:
  int Bump() {
    amber::Work(kMicrosecond * 50);
    return ++value_;
  }

 private:
  int value_ = 0;
};

class Driver : public amber::Object {
 public:
  int Run(Ref<Counter> c, int rounds) {
    for (int i = 0; i < rounds; ++i) {
      c.Call(&Counter::Bump);
      amber::Work(kMicrosecond * 20);
    }
    return rounds;
  }
};

// --- Scenarios -----------------------------------------------------------------

void RunSerial() {
  amber::Runtime::Config config;
  config.nodes = 1;
  config.procs_per_node = 1;
  config.arena_bytes = size_t{128} << 20;
  amber::Runtime rt(config);
  prof::Profiler profiler;
  rt.AddObserver(&profiler);
  const Time end = rt.Run([] {
    auto s = amber::New<Spinner>();
    for (int i = 0; i < 50; ++i) {
      s.Call(&Spinner::Step);
      amber::Work(kMicrosecond * 40);
    }
  });
  Emit(profiler, "serial", end);
}

void RunFig2() {
  sor::Params params;  // the paper's problem: 122 x 842, 8 sections
  params.max_iterations = 100;
  params.tolerance = 0.0;
  amber::Runtime::Config config;
  config.nodes = 8;
  config.procs_per_node = 4;
  config.arena_bytes = size_t{1} << 30;
  amber::Runtime rt(config);
  prof::Profiler profiler;
  rt.AddObserver(&profiler);
  sor::RunAmber(rt, params);
  Emit(profiler, "fig2", 0);
}

void RunLockConvoy() {
  constexpr int kNodes = 4;
  constexpr int kRounds = 16;
  amber::Runtime::Config config;
  config.nodes = kNodes;
  config.procs_per_node = 2;
  amber::Runtime rt(config);
  prof::Profiler profiler;
  rt.AddObserver(&profiler);
  const Time end = rt.Run([&] {
    auto prot = amber::New<Protected>();
    amber::MoveTo(prot, 1);
    std::vector<Ref<NodeWorker>> workers;
    for (NodeId n = 0; n < kNodes; ++n) {
      workers.push_back(amber::NewOn<NodeWorker>(n));
    }
    std::vector<amber::ThreadRef<int>> ts;
    for (auto& w : workers) {
      ts.push_back(amber::StartThread(w, &NodeWorker::Run, prot, kRounds));
    }
    for (auto& t : ts) {
      t.Join();
    }
  });
  Emit(profiler, "lock_convoy", end);
}

void RunChaos() {
  constexpr int kNodes = 4;
  constexpr uint64_t kSeed = 42;
  sor::Params params;  // quarter-scale Figure-2 problem (as bench_chaos)
  params.rows = 62;
  params.cols = 210;
  params.sections = 4;
  params.max_iterations = 30;
  params.tolerance = 0.0;

  // Clean run sizes the fault plan (crash inside the solve), as bench_chaos.
  amber::Time clean_end = 0;
  {
    amber::Runtime::Config config;
    config.nodes = kNodes;
    config.procs_per_node = 2;
    config.arena_bytes = size_t{512} << 20;
    amber::Runtime rt(config);
    clean_end = sor::RunAmber(rt, params).solve_time;
  }

  fault::FaultPlan plan;
  plan.seed = kSeed;
  fault::LinkRule rule;
  rule.drop = 0.05;
  rule.duplicate = 0.02;
  rule.delay = 0.05;
  rule.delay_min = amber::Micros(100);
  rule.delay_max = amber::Millis(1);
  plan.links.push_back(rule);
  fault::NodeEvent ev;
  ev.node = kNodes - 1;
  ev.crash_at = clean_end / 4;
  ev.restart_at = clean_end / 2;
  plan.node_events.push_back(ev);

  amber::Runtime::Config config;
  config.nodes = kNodes;
  config.procs_per_node = 2;
  config.arena_bytes = size_t{512} << 20;
  amber::Runtime rt(config);
  fault::Injector injector(plan);
  rt.SetFaultInjector(&injector);
  rt.SetFailureHandler([](const amber::FailureEvent&) { return amber::FailureAction::kRetry; });
  prof::Profiler profiler;
  rt.AddObserver(&profiler);
  sor::RunAmber(rt, params);
  Emit(profiler, "chaos", 0);
}

// The placement-advice demo. `moved` applies the advisor's recommendation
// (MoveTo the counter to its heaviest caller's node) before the hot loop.
Time RunHotspot(bool moved) {
  amber::Runtime::Config config;
  config.nodes = 4;
  config.procs_per_node = 2;
  config.arena_bytes = size_t{128} << 20;
  amber::Runtime rt(config);
  prof::Profiler profiler;
  rt.AddObserver(&profiler);
  // Observe-only placement policy (default config: disabled): it tracks
  // per-object invocation-origin heat from the same bus without issuing any
  // migrations, and prints the hot-object table below — the live view of
  // what the advisor's MoveTo advice is based on (docs/PLACEMENT.md).
  policy::PlacementPolicy heatwatch;
  heatwatch.AttachTo(rt);
  const Time end = rt.Run([&] {
    auto counter = amber::New<Counter>();  // lives on node 0
    auto driver = amber::NewOn<Driver>(2);
    for (int i = 0; i < 4; ++i) {
      counter.Call(&Counter::Bump);  // a few local calls from node 0
    }
    if (moved) {
      amber::MoveTo(counter, 2);  // the advisor's recommendation
    }
    auto t = amber::StartThread(driver, &Driver::Run, counter, 64);
    t.Join();
  });
  heatwatch.WriteHeatSummary(std::cout);
  std::printf("\n");
  return Emit(profiler, moved ? "hotspot_moved" : "hotspot", end);
}

void RunHotspotPair() {
  const Time before = RunHotspot(/*moved=*/false);
  const Time after = RunHotspot(/*moved=*/true);
  std::printf("hotspot: applying the advisor's MoveTo cut virtual time %.3f ms -> %.3f ms\n\n",
              amber::ToMillis(before), amber::ToMillis(after));
}

struct Scenario {
  const char* name;
  void (*run)();
};

const Scenario kScenarios[] = {
    {"serial", RunSerial},
    {"fig2", RunFig2},
    {"lock-convoy", RunLockConvoy},
    {"chaos", RunChaos},
    {"hotspot", RunHotspotPair},
};

void Usage() {
  std::printf("usage: amber-prof [scenario...]\nscenarios:");
  for (const Scenario& s : kScenarios) {
    std::printf(" %s", s.name);
  }
  std::printf("\n(no arguments: run all)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const Scenario*> todo;
  if (argc <= 1) {
    for (const Scenario& s : kScenarios) {
      todo.push_back(&s);
    }
  } else {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
        Usage();
        return 0;
      }
      const Scenario* found = nullptr;
      for (const Scenario& s : kScenarios) {
        if (std::strcmp(argv[i], s.name) == 0) {
          found = &s;
        }
      }
      if (found == nullptr) {
        std::printf("unknown scenario '%s'\n", argv[i]);
        Usage();
        return 1;
      }
      todo.push_back(found);
    }
  }
  for (const Scenario* s : todo) {
    s->run();
  }
  return 0;
}
