// Online decentralized adaptive placement — the closed-loop counterpart of
// the post-mortem placement advisor (src/prof) and the boot-time placers
// (core/placement.h).
//
// Every node runs the same PlacementPolicy protocol with no global view
// (ABS-NET-style, PAPERS.md):
//
//   * Heat: each invocation event on the RuntimeObserver bus bumps an EWMA
//     of (object, origin-node) heat, decayed exponentially in virtual time
//     (half_life). Local calls defend an object's current home; remote
//     calls build the case for pulling it toward the caller.
//   * Gossip: each node summarizes its scheduler (run-queue depth, busy
//     processors, resident hot-set, recent migration count) and gossips the
//     summary — piggybacked on the PR-4 membership heartbeats when a fault
//     plan is active, or over its own periodic datagrams otherwise. The
//     result is an eventually-consistent local view of every neighbor.
//   * Decision: the runtime consults ShouldPull on the invocation path
//     (amber::PlacementHook). A pull is granted only when the caller's
//     decayed heat dominates the home node's by improvement_ratio AND the
//     hysteresis gates pass: minimum residency since the last move, a
//     cooldown after each policy move of the same object, a per-node
//     migration budget per window, and a load veto from the gossiped view.
//     Attach groups move with their root or not at all; the policy defers
//     to failure handling (no pulls while recovery episodes run, none of
//     objects homed on membership-suspected nodes, none on drained nodes).
//
// Observation is always on once attached: a *disabled* policy (the default
// config) still tracks heat and exports the labelled policy.heat histograms
// so amber-prof/amber-top can display hot objects without enabling
// migration — while issuing no pulls, sending no gossip, and leaving every
// byte of the run's output identical to an un-policied runtime.
//
// Determinism: heat updates and decisions happen at ordered bus/invocation
// points in fiber context, decay is pure double arithmetic on virtual
// timestamps, and gossip rides the deterministic network — the same seed
// yields the same migrations, byte for byte. See docs/PLACEMENT.md.

#ifndef AMBER_SRC_POLICY_POLICY_H_
#define AMBER_SRC_POLICY_POLICY_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/runtime.h"
#include "src/fault/membership.h"

namespace policy {

using amber::Duration;
using amber::NodeId;
using amber::ThreadId;
using amber::Time;

struct PolicyConfig {
  // Master switch. false = observe-only: heat tracking + policy.heat export,
  // no pulls, no gossip, zero virtual-time footprint.
  bool enabled = false;

  // --- Heat model ------------------------------------------------------------
  // Each invocation adds one unit of (object, origin) heat; existing heat
  // halves every half_life of virtual time.
  Duration half_life = amber::Millis(20);

  // --- Hysteresis (docs/PLACEMENT.md has the full interaction table) ---------
  double min_heat = 3.0;           // decayed heat an origin needs before a pull
  double improvement_ratio = 2.0;  // origin heat must beat home heat by this factor
  Duration min_residency = amber::Millis(2);  // after ANY move of the object
  Duration cooldown = amber::Millis(10);      // after a policy move of the object
  int migration_budget = 8;                   // pulls per node per budget window
  Duration budget_window = amber::Millis(50);
  // Load veto: deny pulls when this node's run-queue exceeds the object's
  // home-node depth (from the gossiped summary) by more than this.
  int max_queue_imbalance = 8;

  // --- Load-summary gossip ---------------------------------------------------
  // Cadence of the standalone summary datagrams used when no membership
  // service exists (fault-free runs). With a fault plan active the summary
  // piggybacks on every membership heartbeat instead and this is unused.
  // The summaries only feed the load *veto* (a stale view just vetoes less
  // precisely), so the cadence trades freshness against wire contention
  // with the application's own traffic; 20 ms keeps the gossip under ~1% of
  // a communication-heavy workload's virtual time.
  Duration summary_period = amber::Millis(20);
  int64_t summary_bytes = 40;  // encoded summary + datagram framing
};

// Per-node adaptive placement engine. One instance serves the whole
// simulated machine (it keeps per-node state internally, and all callbacks
// arrive on the single host thread at deterministic points). Attach with
// AttachTo before Run(); the policy must outlive the runtime.
class PlacementPolicy : public amber::RuntimeObserver, public amber::PlacementHook {
 public:
  explicit PlacementPolicy(PolicyConfig config = {});

  PlacementPolicy(const PlacementPolicy&) = delete;
  PlacementPolicy& operator=(const PlacementPolicy&) = delete;

  // Joins the runtime's observer fan-out (heat tracking) and installs
  // itself as the invocation-path decision hook. When enabled, also arms
  // the load-summary gossip: piggybacked on membership heartbeats if a
  // fault plan is active (call SetFaultInjector first), standalone
  // datagrams otherwise.
  void AttachTo(amber::Runtime& rt);

  const PolicyConfig& config() const { return config_; }

  int64_t pulls_granted() const { return pulls_granted_; }
  int64_t pulls_completed() const { return pulls_completed_; }
  int64_t pulls_failed() const { return pulls_failed_; }
  int64_t summaries_sent() const { return summaries_sent_; }
  int64_t summaries_received() const { return summaries_received_; }

  // Decayed heat of (object, origin) as of `now` — test introspection.
  double HeatOf(const void* obj, NodeId origin, Time now) const;

  // Human-readable hot-object table (amber-prof prints this): per object,
  // its current home and the decayed per-origin heat, hottest first. Works
  // with the engine disabled — observation is always on once attached.
  void WriteHeatSummary(std::ostream& out) const;

  // --- amber::PlacementHook --------------------------------------------------
  bool ShouldPull(const amber::Object* root, const amber::Object* target, NodeId here,
                  Time now) override;
  void OnPullResult(const amber::Object* root, NodeId here, bool ok) override;
  void PublishMetrics(metrics::Registry* registry) override;
  void OnRunEnd(Time end) override;

  // --- amber::RuntimeObserver ------------------------------------------------
  void OnInvokeEnter(Time when, NodeId node, ThreadId thread, const void* obj,
                     const std::string& object, bool remote, NodeId origin,
                     Duration entry_overhead) override;
  void OnObjectMove(Time when, const void* obj, NodeId src, NodeId dst, int64_t bytes) override;
  void OnRecoveryStart(Time when, NodeId node, ThreadId thread, const void* obj) override;
  void OnRecoveryEnd(Time when, NodeId node, ThreadId thread, const void* obj, bool ok) override;
  void OnNodeDrained(Time when, NodeId node, int objects_moved) override;

 private:
  struct OriginHeat {
    double heat = 0.0;
    Time updated = 0;
  };
  struct ObjState {
    uint64_t id = 0;  // dense first-seen order (deterministic label)
    std::string label;
    NodeId home = 0;       // node of the most recent invocation entry
    Time first_seen = 0;
    Time last_move = 0;    // any OnObjectMove of this object
    Time cooldown_until = 0;  // set when a policy pull is granted
    int64_t policy_moves = 0;
    std::map<NodeId, OriginHeat> origins;  // ordered: deterministic export
  };
  struct NodeBudget {
    Time window_start = 0;
    int used = 0;
  };
  struct SummaryView {
    fault::LoadSummary summary;
    Time when = 0;
    bool valid = false;
  };

  const ObjState* Find(const void* obj) const;
  // The kernel clock while the run is live, the frozen end time after —
  // post-mortem exports (amber-prof, tests) outlive the runtime.
  Time Now() const;
  ObjState& Ensure(const void* obj, const std::string& label, Time when);
  double Decayed(const OriginHeat& h, Time now) const;
  // Total decayed heat of an object across all origins.
  double TotalHeat(const ObjState& st, Time now) const;
  void Deny(const char* reason);
  fault::LoadSummary LocalSummary(NodeId node, Time now) const;
  void ReceiveSummary(Time when, NodeId viewer, NodeId sender, const fault::LoadSummary& s);
  void ArmSummaryTick(NodeId node, Time at);
  void SummaryTick(NodeId node);

  PolicyConfig config_;
  amber::Runtime* rt_ = nullptr;
  sim::Kernel* kernel_ = nullptr;
  net::Network* net_ = nullptr;
  fault::Membership* membership_ = nullptr;

  std::unordered_map<const void*, size_t> index_;  // object -> objects_ slot
  std::vector<ObjState> objects_;                  // dense first-seen order
  std::vector<NodeBudget> budget_;                 // per node
  std::vector<std::vector<SummaryView>> view_;     // [viewer][sender]
  std::vector<bool> tick_armed_;                   // standalone gossip chains
  std::vector<bool> drained_;
  Time frozen_now_ = 0;  // final virtual time once frozen_ (run over)
  bool frozen_ = false;
  int recovery_depth_ = 0;
  int64_t pulls_granted_ = 0;
  int64_t pulls_completed_ = 0;
  int64_t pulls_failed_ = 0;
  int64_t summaries_sent_ = 0;
  int64_t summaries_received_ = 0;
  std::map<std::string, int64_t> denials_;  // reason -> count (ordered export)
};

}  // namespace policy

#endif  // AMBER_SRC_POLICY_POLICY_H_
