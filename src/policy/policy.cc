#include "src/policy/policy.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/base/panic.h"
#include "src/metrics/metrics.h"

namespace policy {

PlacementPolicy::PlacementPolicy(PolicyConfig config) : config_(config) {
  AMBER_CHECK(config_.half_life > 0);
  AMBER_CHECK(config_.improvement_ratio >= 1.0);
  AMBER_CHECK(config_.migration_budget >= 0);
  AMBER_CHECK(config_.budget_window > 0);
}

void PlacementPolicy::AttachTo(amber::Runtime& rt) {
  AMBER_CHECK(rt_ == nullptr) << "placement policy already attached";
  rt_ = &rt;
  kernel_ = &rt.sim();
  net_ = &rt.network();
  membership_ = rt.membership();  // non-null only with an active fault plan
  const int n = rt.nodes();
  budget_.assign(static_cast<size_t>(n), {});
  view_.assign(static_cast<size_t>(n), std::vector<SummaryView>(static_cast<size_t>(n)));
  tick_armed_.assign(static_cast<size_t>(n), false);
  drained_.assign(static_cast<size_t>(n), false);
  rt.AddObserver(this);
  rt.SetPlacementPolicy(this);
  if (!config_.enabled) {
    // Observe-only: heat tracking and policy.heat export, no pulls and no
    // gossip — the run's virtual time and wire traffic are untouched.
    return;
  }
  if (membership_ != nullptr) {
    // Fault plan active: piggyback the summary on every membership
    // heartbeat (wire grows by Membership::kSummaryWireBytes per frame).
    membership_->SetSummaryProvider([this](NodeId sender, fault::LoadSummary* out) {
      const Time now = kernel_->Now();
      *out = LocalSummary(sender, now);
      view_[static_cast<size_t>(sender)][static_cast<size_t>(sender)] = {*out, now, true};
      ++summaries_sent_;
      return true;
    });
    membership_->SetSummaryHandler(
        [this](Time when, NodeId viewer, NodeId sender, const fault::LoadSummary& s) {
          ReceiveSummary(when, viewer, sender, s);
        });
  } else {
    // Fault-free run: the policy gossips its own summary datagrams on the
    // membership cadence pattern (per-node tick chains that wind down with
    // the fiber population).
    for (NodeId node = 0; node < n; ++node) {
      ArmSummaryTick(node, config_.summary_period);
    }
  }
}

// --- Heat model ----------------------------------------------------------------

double PlacementPolicy::Decayed(const OriginHeat& h, Time now) const {
  if (now <= h.updated) {
    return h.heat;
  }
  const double periods = static_cast<double>(now - h.updated) /
                         static_cast<double>(config_.half_life);
  return h.heat * std::exp2(-periods);
}

double PlacementPolicy::TotalHeat(const ObjState& st, Time now) const {
  double total = 0.0;
  for (const auto& [origin, oh] : st.origins) {
    total += Decayed(oh, now);
  }
  return total;
}

const PlacementPolicy::ObjState* PlacementPolicy::Find(const void* obj) const {
  const auto it = index_.find(obj);
  return it == index_.end() ? nullptr : &objects_[it->second];
}

PlacementPolicy::ObjState& PlacementPolicy::Ensure(const void* obj, const std::string& label,
                                                   Time when) {
  const auto [it, inserted] = index_.try_emplace(obj, objects_.size());
  if (inserted) {
    ObjState st;
    st.id = objects_.size() + 1;  // dense first-seen order, 1-based like obj_seq_
    st.label = label;
    st.first_seen = when;
    objects_.push_back(std::move(st));
  }
  return objects_[it->second];
}

void PlacementPolicy::OnInvokeEnter(Time when, NodeId node, ThreadId thread, const void* obj,
                                    const std::string& object, bool remote, NodeId origin,
                                    Duration entry_overhead) {
  ObjState& st = Ensure(obj, object, when);
  st.home = node;  // invocations run where the object lives
  OriginHeat& oh = st.origins[origin];
  oh.heat = Decayed(oh, when) + 1.0;
  oh.updated = when;
}

void PlacementPolicy::OnObjectMove(Time when, const void* obj, NodeId src, NodeId dst,
                                   int64_t bytes) {
  const auto it = index_.find(obj);
  if (it == index_.end()) {
    return;  // moved before it was ever invoked — no heat to re-home
  }
  ObjState& st = objects_[it->second];
  st.home = dst;
  st.last_move = when;
}

void PlacementPolicy::OnRecoveryStart(Time when, NodeId node, ThreadId thread, const void* obj) {
  ++recovery_depth_;
}

void PlacementPolicy::OnRecoveryEnd(Time when, NodeId node, ThreadId thread, const void* obj,
                                    bool ok) {
  if (recovery_depth_ > 0) {
    --recovery_depth_;
  }
}

void PlacementPolicy::OnNodeDrained(Time when, NodeId node, int objects_moved) {
  drained_[static_cast<size_t>(node)] = true;
}

// --- Decision ------------------------------------------------------------------

void PlacementPolicy::Deny(const char* reason) { ++denials_[reason]; }

bool PlacementPolicy::ShouldPull(const amber::Object* root, const amber::Object* target,
                                 NodeId here, Time now) {
  if (!config_.enabled) {
    return false;
  }
  if (recovery_depth_ > 0) {
    // A recovery episode is rebuilding object homes right now; adaptive
    // moves would race the election/restore protocols.
    Deny("recovery");
    return false;
  }
  if (drained_[static_cast<size_t>(here)]) {
    Deny("drained");  // never pull toward a node being evacuated
    return false;
  }
  const auto it = index_.find(target);
  if (it == index_.end()) {
    Deny("cold");  // never seen an invocation of it — no case to weigh
    return false;
  }
  ObjState& st = objects_[it->second];
  if (membership_ != nullptr && st.home >= 0 && membership_->Suspects(here, st.home)) {
    // The observed home's heartbeat lease expired here: leave the object to
    // the failure/recovery machinery instead of racing it with a move.
    Deny("suspected");
    return false;
  }
  if (now < st.cooldown_until) {
    Deny("cooldown");
    return false;
  }
  if (now - std::max(st.last_move, st.first_seen) < config_.min_residency) {
    Deny("residency");
    return false;
  }
  NodeBudget& b = budget_[static_cast<size_t>(here)];
  if (b.window_start == 0 || now - b.window_start >= config_.budget_window) {
    b.window_start = now;
    b.used = 0;
  }
  if (b.used >= config_.migration_budget) {
    Deny("budget");
    return false;
  }
  const auto here_it = st.origins.find(here);
  const double heat_here = here_it == st.origins.end() ? 0.0 : Decayed(here_it->second, now);
  if (heat_here < config_.min_heat) {
    Deny("low_heat");
    return false;
  }
  const auto home_it = st.origins.find(st.home);
  const double heat_home = home_it == st.origins.end() ? 0.0 : Decayed(home_it->second, now);
  if (heat_here < config_.improvement_ratio * heat_home) {
    Deny("no_dominance");
    return false;
  }
  // Load veto from the gossiped view: don't steal work onto a node already
  // deeper in runnable threads than the object's home.
  const SummaryView& v =
      view_[static_cast<size_t>(here)][static_cast<size_t>(std::max<NodeId>(st.home, 0))];
  const int home_queue = v.valid ? v.summary.runnable : 0;
  if (kernel_->RunQueueLength(here) - home_queue > config_.max_queue_imbalance) {
    Deny("overloaded");
    return false;
  }
  ++pulls_granted_;
  ++b.used;
  ++st.policy_moves;
  st.cooldown_until = now + config_.cooldown;
  return true;
}

Time PlacementPolicy::Now() const {
  if (frozen_) {
    return frozen_now_;
  }
  return kernel_ != nullptr ? kernel_->Now() : 0;
}

void PlacementPolicy::OnRunEnd(Time end) {
  frozen_now_ = end;
  frozen_ = true;
}

void PlacementPolicy::OnPullResult(const amber::Object* root, NodeId here, bool ok) {
  if (ok) {
    ++pulls_completed_;
  } else {
    ++pulls_failed_;
  }
}

// --- Load-summary gossip -------------------------------------------------------

fault::LoadSummary PlacementPolicy::LocalSummary(NodeId node, Time now) const {
  fault::LoadSummary s;
  s.runnable = kernel_->RunQueueLength(node);
  s.busy = kernel_->BusyProcessors(node);
  int hot = 0;
  for (const ObjState& st : objects_) {
    if (st.home == node && TotalHeat(st, now) >= config_.min_heat) {
      ++hot;
    }
  }
  s.hot_objects = hot;
  s.recent_migrations = budget_[static_cast<size_t>(node)].used;
  return s;
}

void PlacementPolicy::ReceiveSummary(Time when, NodeId viewer, NodeId sender,
                                     const fault::LoadSummary& s) {
  view_[static_cast<size_t>(viewer)][static_cast<size_t>(sender)] = {s, when, true};
  ++summaries_received_;
}

void PlacementPolicy::ArmSummaryTick(NodeId node, Time at) {
  tick_armed_[static_cast<size_t>(node)] = true;
  kernel_->Post(at, [this, node] { SummaryTick(node); });
}

void PlacementPolicy::SummaryTick(NodeId node) {
  if (!kernel_->AnyLiveFiberOnUpNode()) {
    // Wind down with the fiber population, like the membership ticks, so
    // the event queue can drain.
    tick_armed_[static_cast<size_t>(node)] = false;
    return;
  }
  const Time now = kernel_->Now();
  if (kernel_->NodeUp(node)) {
    const fault::LoadSummary s = LocalSummary(node, now);
    view_[static_cast<size_t>(node)][static_cast<size_t>(node)] = {s, now, true};
    for (NodeId peer = 0; peer < kernel_->nodes(); ++peer) {
      if (peer == node) {
        continue;
      }
      ++summaries_sent_;
      net_->Send(node, peer, config_.summary_bytes, now,
                 [this, node, peer, s] { ReceiveSummary(kernel_->Now(), peer, node, s); });
    }
  }
  ArmSummaryTick(node, now + config_.summary_period);
}

// --- Export --------------------------------------------------------------------

double PlacementPolicy::HeatOf(const void* obj, NodeId origin, Time now) const {
  const ObjState* st = Find(obj);
  if (st == nullptr) {
    return 0.0;
  }
  const auto it = st->origins.find(origin);
  return it == st->origins.end() ? 0.0 : Decayed(it->second, now);
}

void PlacementPolicy::PublishMetrics(metrics::Registry* registry) {
  if (registry == nullptr) {
    return;
  }
  const Time now = Now();
  for (const ObjState& st : objects_) {
    const std::string label = "obj" + std::to_string(st.id);
    auto& heat = registry->GetHistogram("policy.heat", label);
    double best = -1.0;
    NodeId best_origin = -1;
    for (const auto& [origin, oh] : st.origins) {
      const double h = Decayed(oh, now);
      heat.Record(h);
      if (h > best) {
        best = h;
        best_origin = origin;
      }
    }
    registry->GetGauge("policy.heat.hottest_origin", label).Set(static_cast<double>(best_origin));
    registry->GetGauge("policy.home", label).Set(static_cast<double>(st.home));
    if (st.policy_moves > 0) {
      registry->GetCounter("policy.moves", label).Add(st.policy_moves);
    }
  }
  if (pulls_granted_ > 0) {
    registry->GetCounter("policy.pulls.granted").Add(pulls_granted_);
    registry->GetCounter("policy.pulls.completed").Add(pulls_completed_);
  }
  if (pulls_failed_ > 0) {
    registry->GetCounter("policy.pulls.failed").Add(pulls_failed_);
  }
  if (summaries_sent_ > 0) {
    registry->GetCounter("policy.summaries.sent").Add(summaries_sent_);
  }
  if (summaries_received_ > 0) {
    registry->GetCounter("policy.summaries.received").Add(summaries_received_);
  }
  for (const auto& [reason, count] : denials_) {
    registry->GetCounter("policy.denied", reason).Add(count);
  }
}

void PlacementPolicy::WriteHeatSummary(std::ostream& out) const {
  const Time now = Now();
  std::vector<const ObjState*> order;
  order.reserve(objects_.size());
  for (const ObjState& st : objects_) {
    order.push_back(&st);
  }
  std::sort(order.begin(), order.end(), [&](const ObjState* a, const ObjState* b) {
    const double ha = TotalHeat(*a, now);
    const double hb = TotalHeat(*b, now);
    if (ha != hb) {
      return ha > hb;
    }
    return a->id < b->id;
  });
  out << "placement heat (decayed to end of run, half-life "
      << config_.half_life / 1000000 << "ms):\n";
  const size_t top = std::min<size_t>(order.size(), 16);
  char buf[64];
  for (size_t i = 0; i < top; ++i) {
    const ObjState& st = *order[i];
    std::snprintf(buf, sizeof(buf), "%8.2f", TotalHeat(st, now));
    out << "  obj" << st.id << " " << st.label << "  home=node" << st.home << "  total=" << buf
        << "  origins:";
    for (const auto& [origin, oh] : st.origins) {
      const double h = Decayed(oh, now);
      if (h < 0.01) {
        continue;
      }
      std::snprintf(buf, sizeof(buf), "%.2f", h);
      out << " node" << origin << ":" << buf;
    }
    out << "\n";
  }
  if (order.size() > top) {
    out << "  ... " << (order.size() - top) << " cooler objects\n";
  }
}

}  // namespace policy
