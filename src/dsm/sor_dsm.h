// Red/Black SOR on the page-based DSM — the §4.2 comparison workload.
//
// One pinned process per node owns a column strip of a grid living in DSM
// shared memory; neighbours' edge columns are read through the coherence
// protocol, and phases are separated by the RPC barrier. The `layout`
// parameter exposes the paper's point that a page-based system makes the
// programmer "optimize data reference patterns by laying out data
// structures": with the grid row-major, an edge *column* spans ~one page
// per row and faults pathologically; stored column-major it is contiguous
// and faults once or twice. Amber's object decomposition gets the
// equivalent of the good layout for free (§4.2: "This structuring comes for
// free in an object-based system").

#ifndef AMBER_SRC_DSM_SOR_DSM_H_
#define AMBER_SRC_DSM_SOR_DSM_H_

#include <cstdint>

#include "src/base/time.h"
#include "src/dsm/dsm.h"

namespace dsm {

enum class GridLayout { kRowMajor, kColumnMajor };

struct SorDsmParams {
  int rows = 122;
  int cols = 842;
  int iterations = 50;
  double omega = 1.5;
  double boundary_top = 100.0;
  amber::Duration point_cost = amber::Micros(30);
  GridLayout layout = GridLayout::kColumnMajor;
  int page_size = 1024;
  Protocol protocol = Protocol::kInvalidate;
};

struct SorDsmResult {
  amber::Time solve_time = 0;
  uint64_t grid_hash = 0;
  int64_t read_faults = 0;
  int64_t write_faults = 0;
  int64_t page_transfers = 0;
  int64_t updates_sent = 0;
  int64_t net_messages = 0;
  int64_t net_bytes = 0;
};

// Runs SOR on `nodes` single-process DSM nodes (one column strip each).
SorDsmResult RunSorDsm(int nodes, const SorDsmParams& params, const sim::CostModel& cost);

}  // namespace dsm

#endif  // AMBER_SRC_DSM_SOR_DSM_H_
