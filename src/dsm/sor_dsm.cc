#include "src/dsm/sor_dsm.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/base/panic.h"

namespace dsm {
namespace {

uint64_t HashDoubles(const double* v, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    uint64_t bits;
    __builtin_memcpy(&bits, &v[i], sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h = (h ^ ((bits >> (8 * b)) & 0xff)) * 1099511628211ULL;
    }
  }
  return h;
}

inline double Relax(double v, double up, double down, double left, double right, double omega) {
  return (1.0 - omega) * v + omega * 0.25 * (up + down + left + right);
}

}  // namespace

SorDsmResult RunSorDsm(int nodes, const SorDsmParams& p, const sim::CostModel& cost) {
  AMBER_CHECK(nodes >= 1);
  AMBER_CHECK(p.cols >= 2 * nodes);
  Machine::Config mc;
  mc.nodes = nodes;
  mc.procs_per_node = 1;
  mc.cost = cost;
  mc.page_size = p.page_size;
  mc.protocol = p.protocol;
  const int64_t grid_bytes = int64_t{8} * p.rows * p.cols;
  mc.shared_bytes = ((grid_bytes + p.page_size - 1) / p.page_size + 1) * p.page_size;
  Machine m(mc);

  auto* grid = reinterpret_cast<double*>(m.shared_base());
  auto index = [&](int r, int c) -> int64_t {
    return p.layout == GridLayout::kRowMajor ? int64_t{r} * p.cols + c : int64_t{c} * p.rows + r;
  };
  auto at = [&](int r, int c) -> double& { return grid[index(r, c)]; };
  // Boundary conditions set up before timing starts (host-side init; each
  // node's first faults pull what it needs).
  for (int c = 0; c < p.cols; ++c) {
    at(0, c) = p.boundary_top;
  }

  // Column strips.
  std::vector<int> col0(static_cast<size_t>(nodes) + 1);
  for (int n = 0; n <= nodes; ++n) {
    col0[static_cast<size_t>(n)] = static_cast<int>(int64_t{n} * p.cols / nodes);
  }

  SorDsmResult result;
  amber::Time start_time = 0;
  for (int n = 0; n < nodes; ++n) {
    m.Spawn(n, [&, n] {
      const int lo = col0[static_cast<size_t>(n)];
      const int hi = col0[static_cast<size_t>(n) + 1];  // exclusive
      // Touch our strip once (initial ownership), then synchronize and time.
      for (int c = lo; c < hi; ++c) {
        if (p.layout == GridLayout::kColumnMajor) {
          m.Write(&at(0, c), int64_t{8} * p.rows);
        }
      }
      if (p.layout == GridLayout::kRowMajor) {
        for (int r = 0; r < p.rows; ++r) {
          m.Write(&at(r, lo), int64_t{8} * (hi - lo));
        }
      }
      m.BarrierWait(nodes);
      if (n == 0) {
        start_time = m.kernel().Now();
      }
      for (int iter = 0; iter < p.iterations; ++iter) {
        for (int color = 0; color < 2; ++color) {
          // Pull the neighbours' edge columns through the DSM.
          for (int side = 0; side < 2; ++side) {
            const int gc = side == 0 ? lo - 1 : hi;
            if (gc < 0 || gc >= p.cols) {
              continue;
            }
            if (p.layout == GridLayout::kColumnMajor) {
              m.Read(&at(0, gc), int64_t{8} * p.rows);
            } else {
              for (int r = 1; r < p.rows - 1; ++r) {
                m.Read(&at(r, gc), 8);
              }
            }
          }
          // Update our strip's points of this color.
          for (int r = 1; r < p.rows - 1; ++r) {
            int updated = 0;
            for (int c = std::max(lo, 1); c < std::min(hi, p.cols - 1); ++c) {
              if ((r + c) % 2 != color) {
                continue;
              }
              // Re-assert write access: a neighbour's read of our edge
              // column downgraded those pages.
              m.Write(&at(r, c), 8);
              at(r, c) = Relax(at(r, c), at(r - 1, c), at(r + 1, c), at(r, c - 1), at(r, c + 1),
                               p.omega);
              ++updated;
            }
            if (updated > 0) {
              m.Work(updated * p.point_cost);
            }
          }
          m.BarrierWait(nodes);
        }
      }
      if (n == 0) {
        result.solve_time = m.kernel().Now() - start_time;
      }
    }, "dsm-sor-" + std::to_string(n));
  }
  m.Run();
  m.CheckCoherence();
  // Hash in logical row-major order so layouts are comparable.
  std::vector<double> logical(static_cast<size_t>(p.rows) * p.cols);
  for (int r = 0; r < p.rows; ++r) {
    for (int c = 0; c < p.cols; ++c) {
      logical[static_cast<size_t>(r) * p.cols + c] = at(r, c);
    }
  }
  result.grid_hash = HashDoubles(logical.data(), logical.size());
  result.read_faults = m.read_faults();
  result.write_faults = m.write_faults();
  result.page_transfers = m.page_transfers();
  result.updates_sent = m.updates_sent();
  result.net_messages = m.network().messages();
  result.net_bytes = m.network().bytes_sent();
  return result;
}

}  // namespace dsm
