// An Ivy-style page-based distributed shared memory (Li & Hudak) — the
// comparator system of the paper's §4.
//
// The paper argues object-grain, function-shipping coherence (Amber) against
// page-grain, data-shipping coherence (Ivy). This module implements the
// latter over the *same* simulated cluster and cost model so the argument
// becomes a measured ablation:
//
//   * fixed-distributed managers: page p is managed by node p % nodes;
//   * single-writer / multiple-reader invalidation: a write fault
//     invalidates every cached copy (with acks) and transfers ownership;
//     a read fault copies the page from its owner and joins the copyset;
//   * processes are *pinned* to nodes (Ivy moves data, not computation);
//   * synchronization is RPC-based — the paper notes "recent versions of
//     Ivy have handled [lock thrashing] by ... accessing shared lock
//     variables with remote procedure calls" — plus a lock-in-page variant
//     that exhibits the thrashing (§4.1), for the comparison benchmark.
//
// Software fault detection: without MMU traps, application code brackets
// shared accesses with Read()/Write() range calls. Valid-access checks are
// free (hardware would do them); only faults cost anything.

#ifndef AMBER_SRC_DSM_DSM_H_
#define AMBER_SRC_DSM_DSM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/stats.h"
#include "src/net/network.h"
#include "src/rpc/transport.h"
#include "src/sim/kernel.h"
#include "src/sim/stack_pool.h"

namespace dsm {

using amber::Duration;
using amber::Time;
using sim::NodeId;

enum class PageState : uint8_t { kInvalid, kRead, kWrite };

// Coherence protocol (Li & Hudak describe both families):
//   kInvalidate — single writer / multiple readers; a write fault
//                 invalidates every copy (the protocol Ivy shipped);
//   kUpdate     — copies stay valid; every write to a page with remote
//                 copies multicasts the written bytes to the copyset.
enum class Protocol : uint8_t { kInvalidate, kUpdate };

class Machine {
 public:
  struct Config {
    int nodes = 4;
    int procs_per_node = 1;
    sim::CostModel cost;
    int64_t shared_bytes = 8 << 20;
    int page_size = 1024;
    Protocol protocol = Protocol::kInvalidate;
  };

  explicit Machine(const Config& config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // --- Processes -------------------------------------------------------------

  // Spawns a process (pinned fiber) on `node`.
  void Spawn(NodeId node, std::function<void()> fn, std::string name = "");

  // Runs to completion; returns final virtual time.
  Time Run();

  // --- Shared memory (call from process context) -----------------------------

  uint8_t* shared_base() { return shared_.data(); }
  int64_t shared_size() const { return static_cast<int64_t>(shared_.size()); }
  int page_size() const { return page_size_; }
  int64_t pages() const { return static_cast<int64_t>(page_meta_.size()); }

  // Ensures the calling process's node may read [addr, addr+len): takes a
  // read fault on every page not held in kRead/kWrite state.
  void Read(const void* addr, int64_t len);

  // Ensures write (exclusive) access: write faults invalidate all copies.
  void Write(void* addr, int64_t len);

  // Consumes CPU on the calling process.
  void Work(Duration d) { kernel_->Charge(d); }

  // --- Synchronization --------------------------------------------------------

  // Centralized barrier (manager on node 0), implemented with RPC.
  void BarrierWait(int parties);

  // RPC lock: acquire/release by request to the lock's manager node — the
  // fix "recent versions of Ivy" adopted (§4.1).
  void RpcLockAcquire(int lock_id);
  void RpcLockRelease(int lock_id);

  // Lock-in-page: a test-and-set word in shared memory; every contended
  // attempt write-faults the containing page between nodes (the §4.1
  // thrashing pathology). `addr` must point into shared memory.
  void PageLockAcquire(uint64_t* addr);
  void PageLockRelease(uint64_t* addr);

  // --- Introspection -------------------------------------------------------------

  sim::Kernel& kernel() { return *kernel_; }
  net::Network& network() { return *net_; }

  int64_t read_faults() const { return read_faults_.value(); }
  int64_t write_faults() const { return write_faults_.value(); }
  int64_t page_transfers() const { return page_transfers_.value(); }
  int64_t invalidations() const { return invalidations_.value(); }
  int64_t updates_sent() const { return updates_sent_.value(); }
  Protocol protocol() const { return config_.protocol; }

  PageState NodePageState(NodeId node, int64_t page) const {
    return node_state_[static_cast<size_t>(node)][static_cast<size_t>(page)];
  }
  NodeId PageOwner(int64_t page) const { return page_meta_[static_cast<size_t>(page)].owner; }

  // Protocol invariants: at most one writer per page; a page in kWrite
  // state anywhere implies no other node holds it readable; the owner
  // always holds a valid copy. Panics on violation.
  void CheckCoherence() const;

 private:
  struct PageMeta {
    NodeId owner = 0;                 // last writer (holds the master copy)
    std::vector<NodeId> copyset;      // nodes holding read copies
    bool busy = false;                // a protocol operation is in flight
    std::vector<sim::Fiber*> waiters; // faulters queued behind it
  };

  // Serializes protocol operations per page (Ivy queues requests at the
  // manager). Blocks until the page is idle; returns with `busy` claimed.
  void ClaimPage(PageMeta* meta);
  // Completion side: runs at `when`, releases the claim and wakes waiters.
  void ReleasePageAt(PageMeta* meta, Time when);
  struct RpcLock {
    bool held = false;
    std::vector<sim::Fiber*> waiters;
  };

  NodeId ManagerOf(int64_t page) const { return static_cast<NodeId>(page % kernel_->nodes()); }
  int64_t PageOf(const void* addr) const;
  NodeId Here() const;

  // Fault handlers: block the calling process for the protocol latency.
  void ReadFault(int64_t page);
  void WriteFault(int64_t page);
  // kUpdate: multicast `len` written bytes of `page` to the copyset.
  void PropagateUpdate(int64_t page, int64_t len);

  Config config_;
  std::unique_ptr<sim::Kernel> kernel_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<rpc::Transport> rpc_;
  sim::StackPool stacks_;
  int page_size_;

  std::vector<uint8_t> shared_;                     // the actual bytes (host-shared)
  std::vector<PageMeta> page_meta_;                 // protocol state (manager's view)
  std::vector<std::vector<PageState>> node_state_;  // [node][page]

  std::vector<RpcLock> rpc_locks_;
  struct BarrierState {
    int arrived = 0;
    std::vector<sim::Fiber*> waiters;
  } barrier_;

  amber::Counter read_faults_;
  amber::Counter write_faults_;
  amber::Counter page_transfers_;
  amber::Counter invalidations_;
  amber::Counter updates_sent_;
};

}  // namespace dsm

#endif  // AMBER_SRC_DSM_DSM_H_
