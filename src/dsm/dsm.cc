#include "src/dsm/dsm.h"

#include <algorithm>

#include "src/base/panic.h"

namespace dsm {
namespace {

constexpr int64_t kControlBytes = 48;  // fault requests, invalidations, acks

}  // namespace

Machine::Machine(const Config& config)
    : config_(config), stacks_(64 * 1024), page_size_(config.page_size) {
  AMBER_CHECK(config.page_size >= 64);
  AMBER_CHECK(config.shared_bytes % config.page_size == 0);
  sim::Kernel::Config kc;
  kc.nodes = config.nodes;
  kc.procs_per_node = config.procs_per_node;
  kc.cost = config.cost;
  kernel_ = std::make_unique<sim::Kernel>(kc);
  net_ = std::make_unique<net::Network>(kernel_.get());
  rpc_ = std::make_unique<rpc::Transport>(kernel_.get(), net_.get());
  shared_.assign(static_cast<size_t>(config.shared_bytes), 0);
  const int64_t n_pages = config.shared_bytes / config.page_size;
  page_meta_.assign(static_cast<size_t>(n_pages), PageMeta{});
  node_state_.assign(static_cast<size_t>(config.nodes),
                     std::vector<PageState>(static_cast<size_t>(n_pages), PageState::kInvalid));
  // Initially all pages are owned (writable) by their manager node.
  for (int64_t p = 0; p < n_pages; ++p) {
    page_meta_[static_cast<size_t>(p)].owner = ManagerOf(p);
    node_state_[static_cast<size_t>(ManagerOf(p))][static_cast<size_t>(p)] = PageState::kWrite;
  }
  rpc_locks_.resize(64);
}

Machine::~Machine() = default;

void Machine::Spawn(NodeId node, std::function<void()> fn, std::string name) {
  void* stack = stacks_.Allocate();
  kernel_->Spawn(node, stack, stacks_.stack_size(), std::move(fn), std::move(name));
}

Time Machine::Run() { return kernel_->Run(); }

NodeId Machine::Here() const {
  sim::Fiber* f = kernel_->current();
  AMBER_CHECK(f != nullptr) << "not in process context";
  return f->node;
}

int64_t Machine::PageOf(const void* addr) const {
  const auto* p = static_cast<const uint8_t*>(addr);
  AMBER_CHECK(p >= shared_.data() && p < shared_.data() + shared_.size())
      << "address outside shared memory";
  return (p - shared_.data()) / page_size_;
}

void Machine::Read(const void* addr, int64_t len) {
  AMBER_CHECK(len > 0);
  const int64_t first = PageOf(addr);
  const int64_t last = PageOf(static_cast<const uint8_t*>(addr) + len - 1);
  const NodeId here = Here();
  for (int64_t p = first; p <= last; ++p) {
    if (node_state_[static_cast<size_t>(here)][static_cast<size_t>(p)] == PageState::kInvalid) {
      ReadFault(p);
    }
  }
}

void Machine::Write(void* addr, int64_t len) {
  AMBER_CHECK(len > 0);
  const int64_t first = PageOf(addr);
  const int64_t last = PageOf(static_cast<uint8_t*>(addr) + len - 1);
  const NodeId here = Here();
  for (int64_t p = first; p <= last; ++p) {
    if (config_.protocol == Protocol::kUpdate) {
      // Update protocol: ensure a valid local copy, then push the written
      // bytes to every other copy — nothing is invalidated.
      if (node_state_[static_cast<size_t>(here)][static_cast<size_t>(p)] ==
          PageState::kInvalid) {
        ReadFault(p);
      }
      PropagateUpdate(p, std::min<int64_t>(len, page_size_));
      continue;
    }
    if (node_state_[static_cast<size_t>(here)][static_cast<size_t>(p)] != PageState::kWrite) {
      WriteFault(p);
    }
  }
}

void Machine::PropagateUpdate(int64_t page, int64_t len) {
  const NodeId here = Here();
  const auto& cost = kernel_->cost();
  PageMeta& meta = page_meta_[static_cast<size_t>(page)];
  meta.owner = here;  // last writer holds the master copy
  if (std::find(meta.copyset.begin(), meta.copyset.end(), here) == meta.copyset.end()) {
    meta.copyset.push_back(here);
  }
  bool any_remote = false;
  for (NodeId r : meta.copyset) {
    any_remote |= r != here;
  }
  if (!any_remote) {
    return;  // sole copy: writes are free, as in the invalidate protocol
  }
  // One update message per remote copy, charged on the writer.
  kernel_->Charge(cost.MarshalCost(len) + cost.rpc_send_software);
  kernel_->Sync();
  for (NodeId r : meta.copyset) {
    if (r == here) {
      continue;
    }
    updates_sent_.Add();
    net_->Send(here, r, kControlBytes + len, kernel_->Now());
  }
}

void Machine::ClaimPage(PageMeta* meta) {
  sim::Fiber* self = kernel_->current();
  while (meta->busy) {
    meta->waiters.push_back(self);
    kernel_->Block();
  }
  meta->busy = true;
}

void Machine::ReleasePageAt(PageMeta* meta, Time when) {
  kernel_->Post(when, [this, meta] {
    meta->busy = false;
    for (sim::Fiber* w : meta->waiters) {
      kernel_->Wake(w, kernel_->Now());
    }
    meta->waiters.clear();
  });
}

void Machine::ReadFault(int64_t page) {
  const NodeId faulter = Here();
  sim::Fiber* self = kernel_->current();
  const NodeId manager = ManagerOf(page);
  const auto& cost = kernel_->cost();

  // Fault software path on the faulting processor.
  kernel_->Charge(cost.MarshalCost(kControlBytes) + cost.rpc_send_software);
  kernel_->Sync();

  PageMeta& meta = page_meta_[static_cast<size_t>(page)];
  ClaimPage(&meta);
  if (node_state_[static_cast<size_t>(faulter)][static_cast<size_t>(page)] !=
      PageState::kInvalid) {
    // Served while we queued (another thread on this node faulted it in).
    ReleasePageAt(&meta, kernel_->Now());
    return;
  }
  read_faults_.Add();
  auto serve = [this, page, faulter, self, &meta](Time at_manager) {
    // Manager adds the faulter to the copyset and has the owner send the
    // page. (Executed at an ordered point; latencies composed explicitly.)
    const NodeId owner = meta.owner;
    if (std::find(meta.copyset.begin(), meta.copyset.end(), faulter) == meta.copyset.end()) {
      meta.copyset.push_back(faulter);
    }
    if (std::find(meta.copyset.begin(), meta.copyset.end(), owner) == meta.copyset.end()) {
      meta.copyset.push_back(owner);
    }
    // The owner drops to read state (single-writer rule: a read copy
    // elsewhere means no one may write unimpeded).
    node_state_[static_cast<size_t>(owner)][static_cast<size_t>(page)] = PageState::kRead;
    const NodeId manager_node = ManagerOf(page);
    Time transfer_start = at_manager;
    if (owner != manager_node) {
      transfer_start = net_->Send(manager_node, owner, kControlBytes, at_manager);
    }
    const Time arrived = owner == faulter
                             ? transfer_start
                             : net_->Send(owner, faulter, page_size_, transfer_start);
    page_transfers_.Add();
    kernel_->Post(arrived, [this, page, faulter, self] {
      node_state_[static_cast<size_t>(faulter)][static_cast<size_t>(page)] = PageState::kRead;
      kernel_->Wake(self, kernel_->Now());
    });
    ReleasePageAt(&meta, arrived);
  };

  if (manager == faulter) {
    serve(kernel_->Now());
  } else {
    net_->Send(faulter, manager, kControlBytes, kernel_->Now(),
               [this, serve] { serve(kernel_->Now()); });
  }
  kernel_->Block();
}

void Machine::WriteFault(int64_t page) {
  const NodeId faulter = Here();
  sim::Fiber* self = kernel_->current();
  const NodeId manager = ManagerOf(page);
  const auto& cost = kernel_->cost();

  kernel_->Charge(cost.MarshalCost(kControlBytes) + cost.rpc_send_software);
  kernel_->Sync();

  PageMeta& meta = page_meta_[static_cast<size_t>(page)];
  ClaimPage(&meta);
  if (node_state_[static_cast<size_t>(faulter)][static_cast<size_t>(page)] == PageState::kWrite) {
    ReleasePageAt(&meta, kernel_->Now());
    return;
  }
  write_faults_.Add();
  auto serve = [this, page, faulter, self, &meta](Time at_manager) {
    const NodeId manager_node = ManagerOf(page);
    const NodeId old_owner = meta.owner;
    // Invalidate every copy except the faulter's own; each invalidation is
    // acknowledged to the faulter (Ivy waits for all acks).
    Time all_acked = at_manager;
    for (NodeId r : meta.copyset) {
      if (r == faulter) {
        continue;
      }
      invalidations_.Add();
      const Time at_r = r == manager_node
                            ? at_manager
                            : net_->Send(manager_node, r, kControlBytes, at_manager);
      kernel_->Post(at_r, [this, r, page] {
        node_state_[static_cast<size_t>(r)][static_cast<size_t>(page)] = PageState::kInvalid;
      });
      const Time ack = r == faulter ? at_r : net_->Send(r, faulter, kControlBytes, at_r);
      all_acked = std::max(all_acked, ack);
    }
    if (old_owner != faulter &&
        std::find(meta.copyset.begin(), meta.copyset.end(), old_owner) == meta.copyset.end()) {
      // Owner wasn't in the copyset list but still holds the page.
      invalidations_.Add();
    }
    // Page (with ownership) moves to the faulter unless it already holds a
    // read copy — Ivy still transfers on ownership change; we grant an
    // upgrade without a transfer when the faulter has a valid copy.
    Time arrived = all_acked;
    const bool has_copy =
        node_state_[static_cast<size_t>(faulter)][static_cast<size_t>(page)] != PageState::kInvalid;
    if (!has_copy && old_owner != faulter) {
      const Time fwd = old_owner == manager_node
                           ? at_manager
                           : net_->Send(manager_node, old_owner, kControlBytes, at_manager);
      arrived = std::max(arrived, net_->Send(old_owner, faulter, page_size_, fwd));
      page_transfers_.Add();
    }
    if (old_owner != faulter) {
      kernel_->Post(arrived, [this, old_owner, page] {
        node_state_[static_cast<size_t>(old_owner)][static_cast<size_t>(page)] =
            PageState::kInvalid;
      });
    }
    meta.owner = faulter;
    meta.copyset.assign(1, faulter);
    kernel_->Post(arrived, [this, page, faulter, self] {
      node_state_[static_cast<size_t>(faulter)][static_cast<size_t>(page)] = PageState::kWrite;
      kernel_->Wake(self, kernel_->Now());
    });
    ReleasePageAt(&meta, arrived);
  };

  if (manager == faulter) {
    serve(kernel_->Now());
  } else {
    net_->Send(faulter, manager, kControlBytes, kernel_->Now(),
               [this, serve] { serve(kernel_->Now()); });
  }
  kernel_->Block();
}

// --- Synchronization ------------------------------------------------------------

void Machine::BarrierWait(int parties) {
  sim::Fiber* self = kernel_->current();
  const NodeId here = Here();
  const auto& cost = kernel_->cost();
  kernel_->Charge(cost.MarshalCost(kControlBytes) + cost.rpc_send_software);
  kernel_->Sync();

  auto arrive = [this, parties, self](Time now) {
    barrier_.waiters.push_back(self);
    if (++barrier_.arrived < parties) {
      return;
    }
    barrier_.arrived = 0;
    for (sim::Fiber* w : barrier_.waiters) {
      const Time release =
          w->node == 0 ? now : net_->Send(0, w->node, kControlBytes, now);
      kernel_->Wake(w, release);
    }
    barrier_.waiters.clear();
  };
  if (here == 0) {
    arrive(kernel_->Now());
  } else {
    net_->Send(here, 0, kControlBytes, kernel_->Now(),
               [this, arrive] { arrive(kernel_->Now()); });
  }
  kernel_->Block();
}

void Machine::RpcLockAcquire(int lock_id) {
  AMBER_CHECK(lock_id >= 0 && lock_id < static_cast<int>(rpc_locks_.size()));
  sim::Fiber* self = kernel_->current();
  const NodeId here = Here();
  const NodeId manager = static_cast<NodeId>(lock_id % kernel_->nodes());
  const auto& cost = kernel_->cost();
  kernel_->Charge(cost.MarshalCost(kControlBytes) + cost.rpc_send_software);
  kernel_->Sync();

  RpcLock& lock = rpc_locks_[static_cast<size_t>(lock_id)];
  auto serve = [this, &lock, self, manager](Time now) {
    if (!lock.held) {
      lock.held = true;
      // Grant: reply to the requester.
      const Time granted =
          self->node == manager ? now : net_->Send(manager, self->node, kControlBytes, now);
      kernel_->Wake(self, granted);
    } else {
      lock.waiters.push_back(self);
    }
  };
  if (here == manager) {
    serve(kernel_->Now());
  } else {
    net_->Send(here, manager, kControlBytes, kernel_->Now(),
               [this, serve] { serve(kernel_->Now()); });
  }
  kernel_->Block();
}

void Machine::RpcLockRelease(int lock_id) {
  AMBER_CHECK(lock_id >= 0 && lock_id < static_cast<int>(rpc_locks_.size()));
  const NodeId here = Here();
  const NodeId manager = static_cast<NodeId>(lock_id % kernel_->nodes());
  const auto& cost = kernel_->cost();
  kernel_->Charge(cost.MarshalCost(kControlBytes) + cost.rpc_send_software);
  kernel_->Sync();

  RpcLock& lock = rpc_locks_[static_cast<size_t>(lock_id)];
  auto serve = [this, &lock, manager](Time now) {
    AMBER_CHECK(lock.held);
    if (lock.waiters.empty()) {
      lock.held = false;
      return;
    }
    sim::Fiber* next = lock.waiters.front();
    lock.waiters.erase(lock.waiters.begin());
    const Time granted =
        next->node == manager ? now : net_->Send(manager, next->node, kControlBytes, now);
    kernel_->Wake(next, granted);
  };
  if (here == manager) {
    serve(kernel_->Now());
  } else {
    net_->Send(here, manager, kControlBytes, kernel_->Now(),
               [this, serve] { serve(kernel_->Now()); });
    // Release is asynchronous: the releaser does not wait.
  }
}

void Machine::PageLockAcquire(uint64_t* addr) {
  // Test-and-set on a shared word: every attempt needs exclusive (write)
  // access to the containing page — contention ping-pongs the page.
  const auto& cost = kernel_->cost();
  for (;;) {
    Write(addr, sizeof(*addr));
    kernel_->Charge(cost.spin_op);
    kernel_->Sync();
    if (*addr == 0) {
      *addr = 1;
      return;
    }
    // Backoff before retrying so the holder can make progress.
    sim::Fiber* self = kernel_->current();
    kernel_->Wake(self, kernel_->Now() + cost.lock_op * 8);
    kernel_->Block();
  }
}

void Machine::PageLockRelease(uint64_t* addr) {
  Write(addr, sizeof(*addr));
  kernel_->Charge(kernel_->cost().spin_op);
  kernel_->Sync();
  AMBER_CHECK(*addr == 1) << "releasing a free page lock";
  *addr = 0;
}

void Machine::CheckCoherence() const {
  const int64_t n_pages = pages();
  for (int64_t p = 0; p < n_pages; ++p) {
    int writers = 0;
    int readers = 0;
    for (NodeId n = 0; n < kernel_->nodes(); ++n) {
      const PageState s = node_state_[static_cast<size_t>(n)][static_cast<size_t>(p)];
      if (s == PageState::kWrite) {
        ++writers;
        AMBER_CHECK(page_meta_[static_cast<size_t>(p)].owner == n)
            << "writable copy on non-owner node " << n << " page " << p;
      } else if (s == PageState::kRead) {
        ++readers;
      }
    }
    AMBER_CHECK(writers <= 1) << "page " << p << " has " << writers << " writers";
    AMBER_CHECK(writers == 0 || readers == 0)
        << "page " << p << " readable while writable elsewhere";
  }
}

}  // namespace dsm
