# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sor_heat "/root/repo/build/examples/sor_heat" "2" "2" "22" "62" "40")
set_tests_properties(example_sor_heat PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matmul "/root/repo/build/examples/matmul" "2" "2" "48")
set_tests_properties(example_matmul PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline "/root/repo/build/examples/pipeline" "3" "16")
set_tests_properties(example_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_scheduler "/root/repo/build/examples/custom_scheduler")
set_tests_properties(example_custom_scheduler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tsp_solver "/root/repo/build/examples/tsp_solver" "2" "2" "9")
set_tests_properties(example_tsp_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
