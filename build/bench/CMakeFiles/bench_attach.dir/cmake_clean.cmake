file(REMOVE_RECURSE
  "CMakeFiles/bench_attach.dir/bench_attach.cc.o"
  "CMakeFiles/bench_attach.dir/bench_attach.cc.o.d"
  "bench_attach"
  "bench_attach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
