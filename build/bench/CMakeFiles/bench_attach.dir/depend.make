# Empty dependencies file for bench_attach.
# This may be replaced when dependencies are built.
