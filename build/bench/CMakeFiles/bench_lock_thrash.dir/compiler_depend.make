# Empty compiler generated dependencies file for bench_lock_thrash.
# This may be replaced when dependencies are built.
