file(REMOVE_RECURSE
  "CMakeFiles/bench_lock_thrash.dir/bench_lock_thrash.cc.o"
  "CMakeFiles/bench_lock_thrash.dir/bench_lock_thrash.cc.o.d"
  "bench_lock_thrash"
  "bench_lock_thrash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lock_thrash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
