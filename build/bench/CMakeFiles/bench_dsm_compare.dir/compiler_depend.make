# Empty compiler generated dependencies file for bench_dsm_compare.
# This may be replaced when dependencies are built.
