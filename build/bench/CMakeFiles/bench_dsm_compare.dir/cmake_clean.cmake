file(REMOVE_RECURSE
  "CMakeFiles/bench_dsm_compare.dir/bench_dsm_compare.cc.o"
  "CMakeFiles/bench_dsm_compare.dir/bench_dsm_compare.cc.o.d"
  "bench_dsm_compare"
  "bench_dsm_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsm_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
