# Empty compiler generated dependencies file for bench_tsp.
# This may be replaced when dependencies are built.
