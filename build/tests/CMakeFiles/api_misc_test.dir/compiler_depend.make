# Empty compiler generated dependencies file for api_misc_test.
# This may be replaced when dependencies are built.
