file(REMOVE_RECURSE
  "CMakeFiles/api_misc_test.dir/api_misc_test.cc.o"
  "CMakeFiles/api_misc_test.dir/api_misc_test.cc.o.d"
  "api_misc_test"
  "api_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
