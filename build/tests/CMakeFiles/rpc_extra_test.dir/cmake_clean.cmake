file(REMOVE_RECURSE
  "CMakeFiles/rpc_extra_test.dir/rpc_extra_test.cc.o"
  "CMakeFiles/rpc_extra_test.dir/rpc_extra_test.cc.o.d"
  "rpc_extra_test"
  "rpc_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
