# Empty dependencies file for rpc_extra_test.
# This may be replaced when dependencies are built.
