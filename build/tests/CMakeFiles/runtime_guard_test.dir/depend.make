# Empty dependencies file for runtime_guard_test.
# This may be replaced when dependencies are built.
