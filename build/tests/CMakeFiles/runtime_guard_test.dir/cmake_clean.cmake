file(REMOVE_RECURSE
  "CMakeFiles/runtime_guard_test.dir/runtime_guard_test.cc.o"
  "CMakeFiles/runtime_guard_test.dir/runtime_guard_test.cc.o.d"
  "runtime_guard_test"
  "runtime_guard_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_guard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
