file(REMOVE_RECURSE
  "CMakeFiles/thread_extra_test.dir/thread_extra_test.cc.o"
  "CMakeFiles/thread_extra_test.dir/thread_extra_test.cc.o.d"
  "thread_extra_test"
  "thread_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
