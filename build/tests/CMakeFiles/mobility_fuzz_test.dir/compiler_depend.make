# Empty compiler generated dependencies file for mobility_fuzz_test.
# This may be replaced when dependencies are built.
