file(REMOVE_RECURSE
  "CMakeFiles/mobility_fuzz_test.dir/mobility_fuzz_test.cc.o"
  "CMakeFiles/mobility_fuzz_test.dir/mobility_fuzz_test.cc.o.d"
  "mobility_fuzz_test"
  "mobility_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
