file(REMOVE_RECURSE
  "CMakeFiles/tsp_test.dir/tsp_test.cc.o"
  "CMakeFiles/tsp_test.dir/tsp_test.cc.o.d"
  "tsp_test"
  "tsp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
