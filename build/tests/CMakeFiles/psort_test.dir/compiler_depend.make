# Empty compiler generated dependencies file for psort_test.
# This may be replaced when dependencies are built.
