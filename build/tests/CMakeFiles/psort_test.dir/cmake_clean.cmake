file(REMOVE_RECURSE
  "CMakeFiles/psort_test.dir/psort_test.cc.o"
  "CMakeFiles/psort_test.dir/psort_test.cc.o.d"
  "psort_test"
  "psort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
