file(REMOVE_RECURSE
  "CMakeFiles/amber_rpc.dir/transport.cc.o"
  "CMakeFiles/amber_rpc.dir/transport.cc.o.d"
  "libamber_rpc.a"
  "libamber_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amber_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
