# Empty dependencies file for amber_rpc.
# This may be replaced when dependencies are built.
