file(REMOVE_RECURSE
  "libamber_rpc.a"
)
