file(REMOVE_RECURSE
  "CMakeFiles/amber_sor.dir/sor.cc.o"
  "CMakeFiles/amber_sor.dir/sor.cc.o.d"
  "libamber_sor.a"
  "libamber_sor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amber_sor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
