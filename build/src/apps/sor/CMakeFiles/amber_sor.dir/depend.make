# Empty dependencies file for amber_sor.
# This may be replaced when dependencies are built.
