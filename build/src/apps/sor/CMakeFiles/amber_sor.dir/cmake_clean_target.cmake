file(REMOVE_RECURSE
  "libamber_sor.a"
)
