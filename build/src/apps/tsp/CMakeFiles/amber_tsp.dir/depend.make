# Empty dependencies file for amber_tsp.
# This may be replaced when dependencies are built.
