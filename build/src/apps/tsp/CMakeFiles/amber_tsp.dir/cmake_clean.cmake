file(REMOVE_RECURSE
  "CMakeFiles/amber_tsp.dir/tsp.cc.o"
  "CMakeFiles/amber_tsp.dir/tsp.cc.o.d"
  "libamber_tsp.a"
  "libamber_tsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amber_tsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
