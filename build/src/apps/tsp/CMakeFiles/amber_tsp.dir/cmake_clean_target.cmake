file(REMOVE_RECURSE
  "libamber_tsp.a"
)
