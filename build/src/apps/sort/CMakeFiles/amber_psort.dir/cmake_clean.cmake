file(REMOVE_RECURSE
  "CMakeFiles/amber_psort.dir/psort.cc.o"
  "CMakeFiles/amber_psort.dir/psort.cc.o.d"
  "libamber_psort.a"
  "libamber_psort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amber_psort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
