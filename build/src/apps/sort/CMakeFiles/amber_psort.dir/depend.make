# Empty dependencies file for amber_psort.
# This may be replaced when dependencies are built.
