file(REMOVE_RECURSE
  "libamber_psort.a"
)
