file(REMOVE_RECURSE
  "libamber_mem.a"
)
