# Empty dependencies file for amber_mem.
# This may be replaced when dependencies are built.
