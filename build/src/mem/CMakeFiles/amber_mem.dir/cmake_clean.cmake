file(REMOVE_RECURSE
  "CMakeFiles/amber_mem.dir/address_space.cc.o"
  "CMakeFiles/amber_mem.dir/address_space.cc.o.d"
  "CMakeFiles/amber_mem.dir/region_server.cc.o"
  "CMakeFiles/amber_mem.dir/region_server.cc.o.d"
  "CMakeFiles/amber_mem.dir/segment_alloc.cc.o"
  "CMakeFiles/amber_mem.dir/segment_alloc.cc.o.d"
  "libamber_mem.a"
  "libamber_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amber_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
