# Empty compiler generated dependencies file for amber_dsm.
# This may be replaced when dependencies are built.
