file(REMOVE_RECURSE
  "CMakeFiles/amber_dsm.dir/dsm.cc.o"
  "CMakeFiles/amber_dsm.dir/dsm.cc.o.d"
  "CMakeFiles/amber_dsm.dir/sor_dsm.cc.o"
  "CMakeFiles/amber_dsm.dir/sor_dsm.cc.o.d"
  "libamber_dsm.a"
  "libamber_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amber_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
