file(REMOVE_RECURSE
  "libamber_dsm.a"
)
