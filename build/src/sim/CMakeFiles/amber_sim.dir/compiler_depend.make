# Empty compiler generated dependencies file for amber_sim.
# This may be replaced when dependencies are built.
