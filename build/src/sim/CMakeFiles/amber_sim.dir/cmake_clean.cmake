file(REMOVE_RECURSE
  "CMakeFiles/amber_sim.dir/context.cc.o"
  "CMakeFiles/amber_sim.dir/context.cc.o.d"
  "CMakeFiles/amber_sim.dir/context_x86_64.S.o"
  "CMakeFiles/amber_sim.dir/kernel.cc.o"
  "CMakeFiles/amber_sim.dir/kernel.cc.o.d"
  "CMakeFiles/amber_sim.dir/stack_pool.cc.o"
  "CMakeFiles/amber_sim.dir/stack_pool.cc.o.d"
  "libamber_sim.a"
  "libamber_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/amber_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
