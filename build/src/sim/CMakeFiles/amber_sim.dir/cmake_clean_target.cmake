file(REMOVE_RECURSE
  "libamber_sim.a"
)
