# Empty dependencies file for amber_base.
# This may be replaced when dependencies are built.
