file(REMOVE_RECURSE
  "CMakeFiles/amber_base.dir/logging.cc.o"
  "CMakeFiles/amber_base.dir/logging.cc.o.d"
  "CMakeFiles/amber_base.dir/panic.cc.o"
  "CMakeFiles/amber_base.dir/panic.cc.o.d"
  "libamber_base.a"
  "libamber_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amber_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
