file(REMOVE_RECURSE
  "libamber_base.a"
)
