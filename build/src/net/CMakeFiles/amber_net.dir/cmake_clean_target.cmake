file(REMOVE_RECURSE
  "libamber_net.a"
)
