# Empty compiler generated dependencies file for amber_net.
# This may be replaced when dependencies are built.
