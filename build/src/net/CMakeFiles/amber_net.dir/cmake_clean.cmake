file(REMOVE_RECURSE
  "CMakeFiles/amber_net.dir/network.cc.o"
  "CMakeFiles/amber_net.dir/network.cc.o.d"
  "libamber_net.a"
  "libamber_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amber_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
