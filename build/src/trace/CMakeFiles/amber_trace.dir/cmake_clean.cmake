file(REMOVE_RECURSE
  "CMakeFiles/amber_trace.dir/trace.cc.o"
  "CMakeFiles/amber_trace.dir/trace.cc.o.d"
  "libamber_trace.a"
  "libamber_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amber_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
