# Empty dependencies file for amber_trace.
# This may be replaced when dependencies are built.
