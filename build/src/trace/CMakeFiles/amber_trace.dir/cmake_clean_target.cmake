file(REMOVE_RECURSE
  "libamber_trace.a"
)
