file(REMOVE_RECURSE
  "CMakeFiles/amber_core.dir/cluster_report.cc.o"
  "CMakeFiles/amber_core.dir/cluster_report.cc.o.d"
  "CMakeFiles/amber_core.dir/object.cc.o"
  "CMakeFiles/amber_core.dir/object.cc.o.d"
  "CMakeFiles/amber_core.dir/runtime.cc.o"
  "CMakeFiles/amber_core.dir/runtime.cc.o.d"
  "CMakeFiles/amber_core.dir/sync.cc.o"
  "CMakeFiles/amber_core.dir/sync.cc.o.d"
  "libamber_core.a"
  "libamber_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amber_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
