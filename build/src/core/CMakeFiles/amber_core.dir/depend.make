# Empty dependencies file for amber_core.
# This may be replaced when dependencies are built.
