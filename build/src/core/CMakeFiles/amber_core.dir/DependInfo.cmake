
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_report.cc" "src/core/CMakeFiles/amber_core.dir/cluster_report.cc.o" "gcc" "src/core/CMakeFiles/amber_core.dir/cluster_report.cc.o.d"
  "/root/repo/src/core/object.cc" "src/core/CMakeFiles/amber_core.dir/object.cc.o" "gcc" "src/core/CMakeFiles/amber_core.dir/object.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/amber_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/amber_core.dir/runtime.cc.o.d"
  "/root/repo/src/core/sync.cc" "src/core/CMakeFiles/amber_core.dir/sync.cc.o" "gcc" "src/core/CMakeFiles/amber_core.dir/sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/amber_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/amber_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/amber_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/amber_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/amber_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
