file(REMOVE_RECURSE
  "libamber_core.a"
)
