// The paper's application (§6): steady-state temperature over a square
// plate by Red/Black SOR, decomposed into section objects with compute,
// edge-exchange, and convergence threads (Figure 1).
//
// Usage: sor_heat [nodes procs rows cols iterations]
// Defaults reproduce a small instance of the paper's setup and print an
// ASCII rendering of the temperature field plus the parallel/sequential
// comparison.

#include <cstdio>
#include <cstdlib>

#include "src/apps/sor/sor.h"

int main(int argc, char** argv) {
  int nodes = 4;
  int procs = 4;
  sor::Params params;
  params.rows = 42;
  params.cols = 122;
  params.sections = 4;
  params.tolerance = 1e-3;
  params.max_iterations = 20000;

  if (argc >= 3) {
    nodes = std::atoi(argv[1]);
    procs = std::atoi(argv[2]);
  }
  if (argc >= 5) {
    params.rows = std::atoi(argv[3]);
    params.cols = std::atoi(argv[4]);
  }
  if (argc >= 6) {
    params.max_iterations = std::atoi(argv[5]);
    params.tolerance = 0.0;
  }

  const sim::CostModel cost;
  std::printf("Solving Laplace's equation on a %dx%d plate (top edge at 100 C)\n",
              params.rows, params.cols);
  std::printf("Amber: %d nodes x %d processors, %d sections, overlap on\n\n", nodes, procs,
              params.sections);

  const sor::Result seq = sor::RunSequentialOn(params, cost, /*keep_grid=*/false);
  const sor::Result par = sor::RunAmberOn(nodes, procs, params, cost, /*keep_grid=*/true);

  std::printf("converged after %d iterations (residual %.2e)\n", par.iterations,
              par.final_delta);
  std::printf("sequential: %8.2f s (virtual)\n", amber::ToSeconds(seq.solve_time));
  std::printf("amber:      %8.2f s (virtual)  speedup %.2f on %d processors\n",
              amber::ToSeconds(par.solve_time),
              static_cast<double>(seq.solve_time) / static_cast<double>(par.solve_time),
              nodes * procs);
  std::printf("network:    %lld messages, %.1f KB\n\n",
              static_cast<long long>(par.net_messages),
              static_cast<double>(par.net_bytes) / 1024.0);
  if (par.grid_hash == seq.grid_hash) {
    std::printf("parallel result is bitwise identical to the sequential solver\n\n");
  } else {
    std::printf("WARNING: parallel and sequential grids differ!\n\n");
  }

  // ASCII heat map, downsampled to at most 56x28 cells.
  const char* shades = " .:-=+*#%@";
  const int out_rows = std::min(par.grid.empty() ? 0 : params.rows, 24);
  const int out_cols = std::min(params.cols, 60);
  for (int r = 0; r < out_rows; ++r) {
    const int gr = r * params.rows / out_rows;
    for (int c = 0; c < out_cols; ++c) {
      const int gc = c * params.cols / out_cols;
      const double v = par.grid[static_cast<size_t>(gr) * params.cols + gc];
      const int shade = std::min(9, static_cast<int>(v / 10.01));
      std::putchar(shades[shade]);
    }
    std::putchar('\n');
  }
  return 0;
}
