// A processing pipeline across nodes.
//
// Stages are monitored objects placed on successive nodes, connected by
// bounded buffers (Lock + Condition member objects, §2.2). One worker
// thread per stage pulls an item from its local input queue, "processes"
// it, and pushes it to the next stage by remote invocation — the thread
// carries the item across the network, Amber's function-shipping in its
// most literal form.
//
// Usage: pipeline [stages items]

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <vector>

#include "src/core/amber.h"

namespace {

using namespace amber;

constexpr int kBufferCapacity = 4;
constexpr Duration kProcessCost = kMicrosecond * 800;

// Trivially copyable: travels with the invoking thread at sizeof(Item)
// wire bytes (rpc::WireSize default).
struct Item {
  int id;
  int hops;
  double payload[16];
};

class Stage : public Object {
 public:
  explicit Stage(int index) : index_(index) {}

  void SetNext(Ref<Stage> next) { next_ = next; }

  // Bounded-buffer put: called remotely by the upstream stage's worker.
  void Put(Item item) {
    lock_.Acquire();
    while (static_cast<int>(buffer_.size()) >= kBufferCapacity) {
      not_full_.Wait(lock_);
    }
    buffer_.push_back(item);
    not_empty_.Signal();
    lock_.Release();
  }

  // Worker body: drain the input queue, process, forward.
  int RunWorker(int expected) {
    int done = 0;
    while (done < expected) {
      lock_.Acquire();
      while (buffer_.empty()) {
        not_empty_.Wait(lock_);
      }
      Item item = buffer_.front();
      buffer_.pop_front();
      not_full_.Signal();
      lock_.Release();

      Work(kProcessCost);  // this stage's processing
      item.hops += 1;
      item.payload[item.hops % 16] += static_cast<double>(index_);

      if (next_) {
        next_.Call(&Stage::Put, item);  // carry the item downstream
      } else {
        ++sunk_;
      }
      ++done;
    }
    return done;
  }

  int sunk() const { return sunk_; }

 private:
  const int index_;
  Ref<Stage> next_;
  Lock lock_;
  Condition not_empty_;
  Condition not_full_;
  std::deque<Item> buffer_;
  int sunk_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int stages = 4;
  int items = 32;
  if (argc >= 2) {
    stages = std::atoi(argv[1]);
  }
  if (argc >= 3) {
    items = std::atoi(argv[2]);
  }

  Runtime::Config config;
  config.nodes = stages;  // one stage per node
  config.procs_per_node = 2;
  Runtime rt(config);

  Time elapsed = 0;
  int sunk = 0;
  rt.Run([&] {
    std::vector<Ref<Stage>> pipeline;
    for (int s = 0; s < stages; ++s) {
      pipeline.push_back(NewOn<Stage>(static_cast<NodeId>(s), s));
    }
    for (int s = 0; s + 1 < stages; ++s) {
      pipeline[static_cast<size_t>(s)].Call(&Stage::SetNext, pipeline[static_cast<size_t>(s) + 1]);
    }

    const Time t0 = Now();
    std::vector<ThreadRef<int>> workers;
    for (auto& stage : pipeline) {
      workers.push_back(StartThread(stage, &Stage::RunWorker, items));
    }
    // Feed the head of the pipeline.
    for (int i = 0; i < items; ++i) {
      Item item{};
      item.id = i;
      pipeline[0].Call(&Stage::Put, item);
    }
    for (auto& w : workers) {
      w.Join();
    }
    elapsed = Now() - t0;
    sunk = pipeline.back().Call(&Stage::sunk);
  });

  std::printf("pipeline of %d stages processed %d items (sink received %d)\n", stages, items,
              sunk);
  std::printf("virtual time: %.1f ms (%.2f ms/item steady-state)\n", ToMillis(elapsed),
              ToMillis(elapsed) / items);
  std::printf("network: %lld messages, %.1f KB — each item crossed %d node boundaries\n",
              static_cast<long long>(rt.network().messages()),
              static_cast<double>(rt.network().bytes_sent()) / 1024.0, stages - 1);
  return 0;
}
