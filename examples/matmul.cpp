// Distributed blocked matrix multiply: C = A x B.
//
// A second domain workload exercising the placement idioms the paper's
// model is built around:
//   * A is split into row-panel objects, one placed on each node;
//   * B is marked immutable — every node's first use installs a local
//     replica instead of shipping threads back and forth (§2.3);
//   * one worker thread per processor per panel computes in parallel;
//   * the result panels stay distributed; the driver gathers them at the
//     end (threads migrate to each panel to read it).
//
// Usage: matmul [nodes procs n]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/core/amber.h"

namespace {

using namespace amber;

// CVAX-era cost of one fused multiply-add in the inner loop.
constexpr Duration kFlopCost = kMicrosecond * 3;

// An immutable operand matrix (B), row-major n x n.
class Matrix : public Object {
 public:
  explicit Matrix(int n) : n_(n), data_(static_cast<size_t>(n) * n) {}
  void FillDeterministic(uint64_t seed) {
    for (size_t i = 0; i < data_.size(); ++i) {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      data_[i] = static_cast<double>(seed >> 40) / 1048576.0;
    }
  }
  double At(int r, int c) const { return data_[static_cast<size_t>(r) * n_ + c]; }
  int n() const { return n_; }
  // Direct access for co-resident readers (§3.6 performance feature).
  const double* raw() const { return data_.data(); }

 private:
  int n_;
  std::vector<double> data_;
};

// A row panel of A (and of the result C).
class Panel : public Object {
 public:
  Panel(int row0, int rows, int n) : row0_(row0), rows_(rows), n_(n) {
    a_.assign(static_cast<size_t>(rows) * n_, 0.0);
    c_.assign(static_cast<size_t>(rows) * n_, 0.0);
  }

  void FillDeterministic(uint64_t seed) {
    seed += static_cast<uint64_t>(row0_) * 0x9e3779b97f4a7c15ULL;
    for (size_t i = 0; i < a_.size(); ++i) {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      a_[i] = static_cast<double>(seed >> 40) / 1048576.0;
    }
  }

  // Computes rows [lo, hi) of this panel against B. Invoked by worker
  // threads that migrated here; B is immutable so B.Call reads a local
  // replica after the first touch.
  int ComputeRows(Ref<Matrix> b, int lo, int hi) {
    const Matrix* bm = b.unchecked();  // replica is local after first Call
    b.Call(&Matrix::n);                // ensure the replica is installed
    for (int r = lo; r < hi; ++r) {
      for (int c = 0; c < n_; ++c) {
        double acc = 0.0;
        for (int k = 0; k < n_; ++k) {
          acc += a_[static_cast<size_t>(r) * n_ + k] * bm->At(k, c);
        }
        c_[static_cast<size_t>(r) * n_ + c] = acc;
      }
      // One output row costs n columns x n FMAs.
      Work(static_cast<Duration>(n_) * n_ * kFlopCost);
    }
    return hi - lo;
  }

  double Checksum() {
    double sum = 0.0;
    for (double v : c_) {
      sum += v;
    }
    return sum;
  }

  int rows() const { return rows_; }

 private:
  int row0_;
  int rows_;
  int n_;
  std::vector<double> a_;
  std::vector<double> c_;
};

}  // namespace

int main(int argc, char** argv) {
  int nodes = 4;
  int procs = 2;
  int n = 96;
  if (argc >= 3) {
    nodes = std::atoi(argv[1]);
    procs = std::atoi(argv[2]);
  }
  if (argc >= 4) {
    n = std::atoi(argv[3]);
  }

  Runtime::Config config;
  config.nodes = nodes;
  config.procs_per_node = procs;
  Runtime rt(config);

  double checksum = 0.0;
  Time solve = 0;
  rt.Run([&] {
    // B: one immutable operand, replicated on demand.
    auto b = New<Matrix>(n);
    b.Call(&Matrix::FillDeterministic, uint64_t{7});
    MakeImmutable(b);

    // A/C row panels, one per node.
    std::vector<Ref<Panel>> panels;
    const int rows_per = (n + Nodes() - 1) / Nodes();
    for (NodeId node = 0; node < Nodes(); ++node) {
      const int row0 = node * rows_per;
      const int rows = std::min(rows_per, n - row0);
      if (rows <= 0) {
        break;
      }
      auto p = NewOn<Panel>(node, row0, rows, n);
      p.Call(&Panel::FillDeterministic, uint64_t{13});
      panels.push_back(p);
    }

    const Time t0 = Now();
    std::vector<ThreadRef<int>> workers;
    for (auto& p : panels) {
      const int rows = p.Call(&Panel::rows);
      const int per = (rows + ProcsPerNode() - 1) / ProcsPerNode();
      for (int w = 0; w < ProcsPerNode(); ++w) {
        const int lo = w * per;
        const int hi = std::min(rows, lo + per);
        if (lo >= hi) {
          break;
        }
        workers.push_back(StartThread(p, &Panel::ComputeRows, b, lo, hi));
      }
    }
    for (auto& t : workers) {
      t.Join();
    }
    solve = Now() - t0;
    for (auto& p : panels) {
      checksum += p.Call(&Panel::Checksum);
    }
  });

  std::printf("C = A x B, n=%d on %d nodes x %d processors\n", n, nodes, procs);
  std::printf("virtual solve time: %.2f s, checksum %.6e\n", amber::ToSeconds(solve), checksum);
  std::printf("replicas of B installed: %lld (one per remote node)\n",
              static_cast<long long>(rt.replicas_installed()));
  std::printf("network: %lld messages, %.1f KB\n",
              static_cast<long long>(rt.network().messages()),
              static_cast<double>(rt.network().bytes_sent()) / 1024.0);
  return 0;
}
