// Distributed branch-and-bound TSP (see src/apps/tsp/tsp.h).
//
// Irregular, dynamic parallelism — the opposite of SOR's regular static
// decomposition: a central work pool of tour prefixes, worker threads on
// every node, an immutable (replicated) distance matrix, and a shared
// incumbent-bound monitor.
//
// Usage: tsp_solver [nodes procs cities seed [trace.json [metrics.json]]]
// With a trace argument, the parallel run is fully instrumented: Chrome
// trace to trace.json, metrics-registry dump to metrics.json (default
// trace.json.metrics.json), plus a cluster report with the registry's
// lock-contention section (docs/OBSERVABILITY.md).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/apps/tsp/tsp.h"
#include "src/core/cluster_report.h"
#include "src/metrics/metrics.h"
#include "src/trace/trace.h"

int main(int argc, char** argv) {
  int nodes = 4;
  int procs = 2;
  tsp::Params params;
  params.cities = 11;
  if (argc >= 3) {
    nodes = std::atoi(argv[1]);
    procs = std::atoi(argv[2]);
  }
  if (argc >= 4) {
    params.cities = std::atoi(argv[3]);
  }
  if (argc >= 5) {
    params.seed = static_cast<uint64_t>(std::atoll(argv[4]));
  }

  const sim::CostModel cost;
  std::printf("TSP branch-and-bound: %d cities (seed %llu), %d nodes x %d CPUs\n\n",
              params.cities, static_cast<unsigned long long>(params.seed), nodes, procs);

  const tsp::Result seq = tsp::RunSequentialOn(params, cost);

  amber::Runtime::Config config;
  config.nodes = nodes;
  config.procs_per_node = procs;
  config.cost = cost;
  config.arena_bytes = size_t{256} << 20;
  amber::Runtime rt(config);
  trace::Tracer tracer;
  metrics::Registry registry;
  const bool instrument = argc >= 6;
  if (instrument) {
    rt.SetObserver(&tracer);
    rt.SetMetrics(&registry);
  }
  const tsp::Result par = tsp::RunAmber(rt, params);

  std::printf("optimal tour cost: %.2f (sequential) / %.2f (parallel)%s\n", seq.best_cost,
              par.best_cost, seq.best_cost == par.best_cost ? "  [match]" : "  [MISMATCH!]");
  std::printf("tour: ");
  for (int c : par.best_tour) {
    std::printf("%d ", c);
  }
  std::printf("\n\n");
  std::printf("sequential: %8.2f s, %lld expansions\n", amber::ToSeconds(seq.solve_time),
              static_cast<long long>(seq.expansions));
  std::printf("parallel:   %8.2f s, %lld expansions across %lld pool items\n",
              amber::ToSeconds(par.solve_time), static_cast<long long>(par.expansions),
              static_cast<long long>(par.pool_items));
  std::printf("speedup %.2f on %d processors (note: parallel search may expand a\n"
              "different node count — bound propagation is timing-dependent)\n",
              static_cast<double>(seq.solve_time) / static_cast<double>(par.solve_time),
              nodes * procs);
  std::printf("network: %lld messages, %.1f KB\n", static_cast<long long>(par.net_messages),
              static_cast<double>(par.net_bytes) / 1024.0);
  if (instrument) {
    std::printf("\n%s", amber::ClusterReport(rt, par.solve_time).c_str());
    std::ofstream tout(argv[5]);
    tracer.WriteChromeTrace(tout);
    if (!tout) {
      std::fprintf(stderr, "cannot write %s\n", argv[5]);
      return 1;
    }
    std::printf("trace: %zu events written to %s (open in https://ui.perfetto.dev)\n",
                tracer.size(), argv[5]);
    const std::string metrics_path =
        argc >= 7 ? argv[6] : std::string(argv[5]) + ".metrics.json";
    std::ofstream mout(metrics_path);
    registry.WriteJson(mout);
    std::printf("metrics: registry written to %s\n", metrics_path.c_str());
  }
  return 0;
}
