// Distributed branch-and-bound TSP (see src/apps/tsp/tsp.h).
//
// Irregular, dynamic parallelism — the opposite of SOR's regular static
// decomposition: a central work pool of tour prefixes, worker threads on
// every node, an immutable (replicated) distance matrix, and a shared
// incumbent-bound monitor.
//
// Usage: tsp_solver [nodes procs cities seed]

#include <cstdio>
#include <cstdlib>

#include "src/apps/tsp/tsp.h"
#include "src/core/cluster_report.h"

int main(int argc, char** argv) {
  int nodes = 4;
  int procs = 2;
  tsp::Params params;
  params.cities = 11;
  if (argc >= 3) {
    nodes = std::atoi(argv[1]);
    procs = std::atoi(argv[2]);
  }
  if (argc >= 4) {
    params.cities = std::atoi(argv[3]);
  }
  if (argc >= 5) {
    params.seed = static_cast<uint64_t>(std::atoll(argv[4]));
  }

  const sim::CostModel cost;
  std::printf("TSP branch-and-bound: %d cities (seed %llu), %d nodes x %d CPUs\n\n",
              params.cities, static_cast<unsigned long long>(params.seed), nodes, procs);

  const tsp::Result seq = tsp::RunSequentialOn(params, cost);
  const tsp::Result par = tsp::RunAmberOn(nodes, procs, params, cost);

  std::printf("optimal tour cost: %.2f (sequential) / %.2f (parallel)%s\n", seq.best_cost,
              par.best_cost, seq.best_cost == par.best_cost ? "  [match]" : "  [MISMATCH!]");
  std::printf("tour: ");
  for (int c : par.best_tour) {
    std::printf("%d ", c);
  }
  std::printf("\n\n");
  std::printf("sequential: %8.2f s, %lld expansions\n", amber::ToSeconds(seq.solve_time),
              static_cast<long long>(seq.expansions));
  std::printf("parallel:   %8.2f s, %lld expansions across %lld pool items\n",
              amber::ToSeconds(par.solve_time), static_cast<long long>(par.expansions),
              static_cast<long long>(par.pool_items));
  std::printf("speedup %.2f on %d processors (note: parallel search may expand a\n"
              "different node count — bound propagation is timing-dependent)\n",
              static_cast<double>(seq.solve_time) / static_cast<double>(par.solve_time),
              nodes * procs);
  std::printf("network: %lld messages, %.1f KB\n", static_cast<long long>(par.net_messages),
              static_cast<double>(par.net_bytes) / 1024.0);
  return 0;
}
