// Quickstart: the Amber programming model in one file.
//
// Creates a small cluster, places objects on nodes, invokes them with
// location transparency (the calling thread migrates to remote objects),
// uses threads + Join, and exercises the mobility primitives MoveTo /
// Locate / Attach / MakeImmutable.
//
// Build & run:  ./build/examples/quickstart [trace.json [metrics.json]]
// With an argument, writes a chrome://tracing / perfetto trace of the full
// event bus (scheduling, invocations, migrations, moves, messages, lock
// contention) plus a metrics-registry JSON dump (docs/OBSERVABILITY.md).

#include <cstdio>
#include <fstream>
#include <string>

#include "src/core/amber.h"
#include "src/metrics/metrics.h"
#include "src/trace/trace.h"

namespace {

using namespace amber;

// Any class deriving amber::Object lives in the network-wide object space.
class Counter : public Object {
 public:
  int Add(int delta) {
    value_ += delta;
    return value_;
  }
  int Get() const { return value_; }
  NodeId WhereDidIRun() { return Here(); }

 private:
  int value_ = 0;
};

// A bank account whose lock is a member object: the lock is always
// co-resident with the data it protects and moves with it (§3.6).
class Account : public Object {
 public:
  void Deposit(int amount) {
    MonitorGuard g(lock_);
    balance_ += amount;
  }
  int Balance() {
    MonitorGuard g(lock_);
    return balance_;
  }

 private:
  Lock lock_;
  int balance_ = 0;
};

void Main() {
  std::printf("== Amber quickstart on %d nodes x %d processors ==\n\n", Nodes(), ProcsPerNode());

  // --- Objects and invocation -------------------------------------------------
  auto counter = New<Counter>();  // created on the current node (0)
  std::printf("counter created on node %d\n", Locate(counter));
  counter.Call(&Counter::Add, 5);

  MoveTo(counter, 2);  // explicit placement (§2.3)
  std::printf("counter moved to node %d\n", Locate(counter));

  // Invoking a remote object ships this thread to it and back: the call
  // below runs on node 2 even though we started it from node 0.
  std::printf("invocation executed on node %d (value now %d)\n",
              counter.Call(&Counter::WhereDidIRun), counter.Call(&Counter::Get));

  // --- Threads -----------------------------------------------------------------
  auto account = NewOn<Account>(1);  // create-and-place
  std::vector<ThreadRef<void>> depositors;
  for (int i = 0; i < 8; ++i) {
    // Each thread starts here, migrates to the account on node 1, and
    // synchronizes through the account's member lock.
    depositors.push_back(StartThread(account, &Account::Deposit, 100));
  }
  for (auto& t : depositors) {
    t.Join();
  }
  std::printf("8 depositors x 100 => balance %d (on node %d)\n",
              account.Call(&Account::Balance), Locate(account));

  // --- Attachment: structures that move as a unit -------------------------------
  auto index = New<Counter>();
  auto data = New<Counter>();
  Attach(data, index);  // co-located from now on
  MoveTo(index, 3);
  std::printf("attached pair now on nodes %d and %d (always equal)\n", Locate(index),
              Locate(data));

  // --- Immutability: read-only data replicates instead of migrating -------------
  auto config = New<Counter>();
  config.Call(&Counter::Add, 42);
  MakeImmutable(config);
  MoveTo(config, 1);  // installs a *copy*; the original stays put
  std::printf("immutable config readable everywhere; a replica now lives on node 1\n");

  std::printf("\nvirtual time elapsed: %.2f ms\n", ToMillis(Now()));
}

}  // namespace

int main(int argc, char** argv) {
  Runtime::Config config;
  config.nodes = 4;
  config.procs_per_node = 4;
  Runtime rt(config);
  trace::Tracer tracer;
  metrics::Registry registry;
  if (argc > 1) {
    rt.SetObserver(&tracer);
    rt.SetMetrics(&registry);
  }
  rt.Run(Main);
  std::printf("network: %lld messages, %lld bytes\n",
              static_cast<long long>(rt.network().messages()),
              static_cast<long long>(rt.network().bytes_sent()));
  if (argc > 1) {
    std::ofstream out(argv[1]);
    tracer.WriteChromeTrace(out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::printf("trace: %zu events written to %s (open in https://ui.perfetto.dev)\n",
                tracer.size(), argv[1]);
    const std::string metrics_path =
        argc > 2 ? argv[2] : std::string(argv[1]) + ".metrics.json";
    std::ofstream mout(metrics_path);
    registry.WriteJson(mout);
    std::printf("metrics: registry written to %s\n", metrics_path.c_str());
  }
  return 0;
}
