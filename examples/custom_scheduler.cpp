// Replaceable scheduling policies (§2.1 / Presto heritage).
//
// "An application can install a custom scheduling discipline at runtime by
// replacing the system scheduler object with a similar object that supports
// the same interface but behaves differently."
//
// This example runs an interactive-style workload (short, latency-sensitive
// requests) against background compute threads, under the default FIFO
// policy and under a priority policy — and also shows a *user-defined*
// policy (shortest-job-first by declared priority) implemented outside the
// runtime by subclassing sim::RunQueue.

#include <cstdio>
#include <map>
#include <vector>

#include "src/core/amber.h"

namespace {

using namespace amber;

// A user-defined discipline: lowest numeric "deadline" (stored in the
// fiber's priority field, negated) runs first.
class DeadlineRunQueue : public sim::RunQueue {
 public:
  void Enqueue(sim::Fiber* f) override { q_.emplace(f->priority, f); }
  sim::Fiber* Dequeue() override {
    if (q_.empty()) {
      return nullptr;
    }
    auto it = q_.begin();
    sim::Fiber* f = it->second;
    q_.erase(it);
    return f;
  }
  bool Empty() const override { return q_.empty(); }
  size_t Size() const override { return q_.size(); }
  bool Remove(sim::Fiber* f) override {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (it->second == f) {
        q_.erase(it);
        return true;
      }
    }
    return false;
  }

 private:
  std::multimap<int, sim::Fiber*> q_;  // keyed by "deadline"
};

class Server : public Object {
 public:
  // A short interactive request; `submitted` is the StartThread timestamp,
  // so the returned latency includes run-queue waiting time.
  double Request(Time submitted) {
    Work(kMicrosecond * 300);
    return ToMillis(Now() - submitted);
  }
  // A long background job.
  int Background() {
    for (int i = 0; i < 40; ++i) {
      Work(kMillisecond);
    }
    return 1;
  }
};

double RunWorkload(const char* label, int mode) {
  Runtime::Config config;
  config.nodes = 1;
  config.procs_per_node = 2;
  sim::CostModel cost;
  cost.quantum = amber::Millis(5);
  config.cost = cost;
  Runtime rt(config);
  double avg_latency = 0.0;
  rt.Run([&] {
    if (mode == 1) {
      SetScheduler(0, std::make_unique<sim::PriorityRunQueue>());
    } else if (mode == 2) {
      SetScheduler(0, std::make_unique<DeadlineRunQueue>());
    }
    auto server = New<Server>();
    // Saturate both CPUs with background work.
    std::vector<ThreadRef<int>> bg;
    for (int i = 0; i < 4; ++i) {
      bg.push_back(StartThreadNamed("bg", mode == 2 ? 100 : 0, server, &Server::Background));
    }
    Work(kMillisecond * 2);
    // Fire interactive requests; under FIFO they queue behind background
    // quanta, under priority/deadline they preempt the queue.
    std::vector<ThreadRef<double>> fg;
    for (int i = 0; i < 6; ++i) {
      fg.push_back(
          StartThreadNamed("fg", mode == 2 ? 1 : 10, server, &Server::Request, Now()));
      Work(kMillisecond);
    }
    double total = 0.0;
    for (auto& t : fg) {
      total += t.Join();
    }
    avg_latency = total / 6.0;
    for (auto& t : bg) {
      t.Join();
    }
  });
  std::printf("%-28s avg interactive latency: %7.2f ms\n", label, avg_latency);
  return avg_latency;
}

}  // namespace

int main() {
  std::printf("Replaceable scheduler objects (par. 2.1): 6 interactive requests vs 4\n");
  std::printf("background jobs on a 2-CPU node.\n\n");
  const double fifo = RunWorkload("FIFO (system default)", 0);
  const double prio = RunWorkload("PriorityRunQueue", 1);
  const double ddl = RunWorkload("DeadlineRunQueue (custom)", 2);
  if (prio < fifo && ddl < fifo) {
    std::printf("\ncustom policies cut interactive latency %.1fx without touching the app\n",
                fifo / prio);
  }
  return 0;
}
