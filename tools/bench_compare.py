#!/usr/bin/env python3
"""Compare BENCH_*.json results against committed baselines.

The simulator is deterministic: for a fixed (plan, seed) the virtual run time
of every benchmark is an exact function of the code. Any drift in
`virtual_time_ns` is therefore a real modelled-cost change, not noise — this
gate fails CI when a benchmark gets slower than its committed baseline by
more than the allowed tolerance.

Usage:
    tools/bench_compare.py --baseline bench/baselines [--current .]
                           [--tolerance 2.0] [--tolerance chaos=5.0] ...
                           fig2 table1 chaos

Each positional argument names a benchmark: `<current>/BENCH_<name>.json` is
compared with `<baseline>/BENCH_<name>.json`. `--tolerance PCT` sets the
default allowed regression (percent, virtual time); `--tolerance NAME=PCT`
overrides it for one benchmark. Gauge metrics present in both files are
reported as deltas for context but do not gate (they are derived from the
same virtual clock).

Exit status: 0 if every benchmark is within tolerance, 1 on regression or a
missing/unreadable file.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def gauges(doc):
    """Flattens {"metrics": {"gauges": {name: {label: value}}}} to name/label -> value."""
    out = {}
    for name, fam in doc.get("metrics", {}).get("gauges", {}).items():
        for label, value in fam.items():
            key = name if label == "total" else f"{name}/{label}"
            if isinstance(value, (int, float)):
                out[key] = float(value)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="directory with BENCH_<name>.json baselines")
    parser.add_argument("--current", default=".", help="directory with freshly produced BENCH_<name>.json")
    parser.add_argument(
        "--tolerance",
        action="append",
        default=[],
        help="allowed virtual-time regression in percent: PCT (default for all) or NAME=PCT",
    )
    parser.add_argument("benches", nargs="+", help="benchmark names (fig2, table1, chaos, ...)")
    args = parser.parse_args()

    default_tol = 2.0
    per_bench_tol = {}
    for spec in args.tolerance:
        if "=" in spec:
            name, pct = spec.split("=", 1)
            per_bench_tol[name] = float(pct)
        else:
            default_tol = float(spec)

    failures = []
    rows = []
    for name in args.benches:
        tol = per_bench_tol.get(name, default_tol)
        base_path = os.path.join(args.baseline, f"BENCH_{name}.json")
        cur_path = os.path.join(args.current, f"BENCH_{name}.json")
        try:
            base = load(base_path)
            cur = load(cur_path)
        except (OSError, ValueError) as err:
            failures.append(f"{name}: cannot load results: {err}")
            rows.append((name, "-", "-", "-", f"<= {tol:.1f}%", "ERROR"))
            continue

        base_ns = base.get("virtual_time_ns")
        cur_ns = cur.get("virtual_time_ns")
        if not isinstance(base_ns, (int, float)) or not isinstance(cur_ns, (int, float)) or base_ns <= 0:
            failures.append(f"{name}: missing or invalid virtual_time_ns")
            rows.append((name, str(base_ns), str(cur_ns), "-", f"<= {tol:.1f}%", "ERROR"))
            continue

        delta_pct = 100.0 * (cur_ns - base_ns) / base_ns
        verdict = "ok"
        if delta_pct > tol:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: virtual time {cur_ns / 1e6:.3f} ms vs baseline "
                f"{base_ns / 1e6:.3f} ms (+{delta_pct:.2f}% > {tol:.1f}%)"
            )
        rows.append(
            (
                name,
                f"{base_ns / 1e6:.3f} ms",
                f"{cur_ns / 1e6:.3f} ms",
                f"{delta_pct:+.2f}%",
                f"<= {tol:.1f}%",
                verdict,
            )
        )

        base_gauges = gauges(base)
        cur_gauges = gauges(cur)
        for key in sorted(base_gauges.keys() & cur_gauges.keys()):
            b, c = base_gauges[key], cur_gauges[key]
            if b == c:
                continue
            rel = f" ({100.0 * (c - b) / b:+.2f}%)" if b else ""
            print(f"  note: {name} gauge {key}: {b:g} -> {c:g}{rel}")

    header = ("bench", "baseline", "current", "delta", "tolerance", "verdict")
    widths = [max(len(str(r[i])) for r in rows + [header]) for i in range(len(header))]
    for row in [header] + rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)).rstrip())

    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("\nall benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
