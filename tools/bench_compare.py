#!/usr/bin/env python3
"""Compare BENCH_*.json results against committed baselines.

The simulator is deterministic: for a fixed (plan, seed) the virtual run time
of every benchmark is an exact function of the code. Any drift in
`virtual_time_ns` is therefore a real modelled-cost change, not noise — this
gate fails CI when a benchmark gets slower than its committed baseline by
more than the allowed tolerance.

Wall-clock gauges (names containing ".wall.", e.g. bench_scale's
`scale.wall.events_per_sec`) measure the host, not the model: they are real
measurements with real noise, so they gate under a separate, wider band
(default 15%) with a per-metric direction — `*_per_sec` / `*throughput*`
gauges are higher-is-better, everything else (e.g. per-event cost
percentiles) lower-is-better. The `host` section of each BENCH file (cpu
count, compiler, build type) identifies the machine a baseline was taken on
and is ignored by the gate; use --no-wall-gate when comparing across
machines, or --metric to widen one gauge's band.

Improvements beyond a band never fail the gate, but they are printed as
"ratchet candidate" notes: the committed baseline is stale, and until it is
refreshed a later change could silently give the whole win back. Pass
--refresh to rewrite exactly the stale baseline files in place from the
current results (nothing else is touched); without it, the gate prints the
exact command to run.

Usage:
    tools/bench_compare.py --baseline bench/baselines [--current .]
                           [--tolerance 2.0] [--tolerance chaos=5.0]
                           [--wall-tolerance 15.0] [--no-wall-gate]
                           [--metric scale.wall.events_per_sec=higher:75]
                           [--refresh]
                           fig2 table1 chaos scale hotspot

Each positional argument names a benchmark: `<current>/BENCH_<name>.json` is
compared with `<baseline>/BENCH_<name>.json`. `--tolerance PCT` sets the
default allowed virtual-time regression (percent); `--tolerance NAME=PCT`
overrides it for one benchmark. `--metric NAME=DIR:PCT` (repeatable) pins a
gauge's direction (`higher`/`lower`) and band, overriding the built-in wall
rules. Virtual-time-derived gauges present in both files are reported as
deltas for context but do not gate — except `sweep.*` gauges (the saturation
curve from `bench_serve --sweep`): those are deterministic functions of the
model, so every curve point gates at the benchmark's own tolerance,
direction-aware (throughput higher-is-better, latency/rejection lower), and
--no-wall-gate does not exempt them.

Exit status: 0 if every benchmark is within tolerance, 1 on regression or a
missing/unreadable file.
"""

import argparse
import json
import os
import shutil
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def gauges(doc):
    """Flattens {"metrics": {"gauges": {name: {label: value}}}} to name/label -> value.

    Only the metrics section is read; the top-level "host" metadata section
    never reaches the gate.
    """
    out = {}
    for name, fam in doc.get("metrics", {}).get("gauges", {}).items():
        for label, value in fam.items():
            key = name if label == "total" else f"{name}/{label}"
            if isinstance(value, (int, float)):
                out[key] = float(value)
    return out


def is_wall_metric(key):
    return ".wall." in key


def is_sweep_metric(key):
    """Saturation-curve gauges (bench_serve --sweep) are virtual-time-derived:
    deterministic, so they gate even under --no-wall-gate, at the benchmark's
    own (tight) tolerance rather than the wall band."""
    return key.split("/")[0].startswith("sweep.")


def sweep_direction(key):
    """Direction for sweep-curve gauges: throughput up, latency/rejection down."""
    family = key.split("/")[0]
    if family.endswith("per_sec") or "throughput" in family:
        return "higher"
    return "lower"


def wall_direction(key):
    """Built-in direction for wall-clock gauges: rates up, costs down."""
    leaf = key.split("/")[0].rsplit(".", 1)[-1]
    if leaf.endswith("per_sec") or "throughput" in leaf or leaf.endswith("ops"):
        return "higher"
    return "lower"


def parse_metric_rules(specs):
    """--metric NAME=DIR:PCT -> {name: (direction, tolerance_pct)}"""
    rules = {}
    for spec in specs:
        try:
            name, rest = spec.split("=", 1)
            direction, pct = rest.split(":", 1)
            if direction not in ("higher", "lower"):
                raise ValueError(f"direction must be higher|lower, got {direction!r}")
            rules[name] = (direction, float(pct))
        except ValueError as err:
            raise SystemExit(f"bad --metric spec {spec!r}: {err}")
    return rules


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="directory with BENCH_<name>.json baselines")
    parser.add_argument("--current", default=".", help="directory with freshly produced BENCH_<name>.json")
    parser.add_argument(
        "--tolerance",
        action="append",
        default=[],
        help="allowed virtual-time regression in percent: PCT (default for all) or NAME=PCT",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=15.0,
        help="default band for wall-clock gauges (percent, direction-aware)",
    )
    parser.add_argument(
        "--no-wall-gate",
        action="store_true",
        help="report wall-clock gauge deltas but never fail on them (cross-machine runs)",
    )
    parser.add_argument(
        "--metric",
        action="append",
        default=[],
        help="per-gauge override: NAME=DIR:PCT with DIR in {higher,lower} (repeatable)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="rewrite stale baseline files in place from the current results (ratchet candidates only)",
    )
    parser.add_argument("benches", nargs="+", help="benchmark names (fig2, table1, chaos, scale, ...)")
    args = parser.parse_args()

    default_tol = 2.0
    per_bench_tol = {}
    for spec in args.tolerance:
        if "=" in spec:
            name, pct = spec.split("=", 1)
            per_bench_tol[name] = float(pct)
        else:
            default_tol = float(spec)
    metric_rules = parse_metric_rules(args.metric)

    failures = []
    rows = []
    stale = {}  # bench name -> (baseline path, current path), for --refresh
    for name in args.benches:
        tol = per_bench_tol.get(name, default_tol)
        base_path = os.path.join(args.baseline, f"BENCH_{name}.json")
        cur_path = os.path.join(args.current, f"BENCH_{name}.json")
        try:
            base = load(base_path)
            cur = load(cur_path)
        except (OSError, ValueError) as err:
            failures.append(f"{name}: cannot load results: {err}")
            rows.append((name, "-", "-", "-", f"<= {tol:.1f}%", "ERROR"))
            continue

        base_ns = base.get("virtual_time_ns")
        cur_ns = cur.get("virtual_time_ns")
        if not isinstance(base_ns, (int, float)) or not isinstance(cur_ns, (int, float)) or base_ns <= 0:
            failures.append(f"{name}: missing or invalid virtual_time_ns")
            rows.append((name, str(base_ns), str(cur_ns), "-", f"<= {tol:.1f}%", "ERROR"))
            continue

        delta_pct = 100.0 * (cur_ns - base_ns) / base_ns
        verdict = "ok"
        if delta_pct > tol:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: virtual time {cur_ns / 1e6:.3f} ms vs baseline "
                f"{base_ns / 1e6:.3f} ms (+{delta_pct:.2f}% > {tol:.1f}%)"
            )
        elif delta_pct < -tol:
            # An improvement beyond the tolerance band is not a failure, but
            # it means the committed baseline is stale: until it is refreshed,
            # a follow-up change could give the whole win back without
            # tripping the gate. Surface it so the author ratchets.
            verdict = "ok (ratchet)"
            stale[name] = (base_path, cur_path)
            print(
                f"  ratchet candidate: {name} virtual time improved "
                f"{base_ns / 1e6:.3f} ms -> {cur_ns / 1e6:.3f} ms ({delta_pct:.2f}%); "
                f"refresh {base_path} to lock in the win"
            )
        rows.append(
            (
                name,
                f"{base_ns / 1e6:.3f} ms",
                f"{cur_ns / 1e6:.3f} ms",
                f"{delta_pct:+.2f}%",
                f"<= {tol:.1f}%",
                verdict,
            )
        )

        base_gauges = gauges(base)
        cur_gauges = gauges(cur)
        for key in sorted(base_gauges.keys() & cur_gauges.keys()):
            b, c = base_gauges[key], cur_gauges[key]
            rule = metric_rules.get(key)
            sweep = rule is None and is_sweep_metric(key)
            gated = rule is not None or sweep or is_wall_metric(key)
            if not gated:
                if b == c:
                    continue
                rel = f" ({100.0 * (c - b) / b:+.2f}%)" if b else ""
                print(f"  note: {name} gauge {key}: {b:g} -> {c:g}{rel}")
                continue

            if rule is not None:
                direction, band = rule
            elif sweep:
                direction, band = sweep_direction(key), tol
            else:
                direction, band = wall_direction(key), args.wall_tolerance
            if sweep and b == c:
                continue  # identical curve point: the gate holds, quietly
            if b == 0:
                if sweep and direction == "lower":
                    # A lower-is-better curve point moving off zero (e.g. a rung
                    # that never rejected starts rejecting) is a real change
                    # even though no relative delta exists.
                    failures.append(f"{name}: sweep gauge {key}: {c:g} vs baseline 0")
                    print(f"  sweep: {name} {key}: 0 -> {c:g} [lower] REGRESSION")
                else:
                    print(f"  note: {name} gauge {key}: baseline is 0, skipping gate")
                continue
            # Sweep gauges derive from virtual time: deterministic, so
            # --no-wall-gate (a cross-machine concession) never exempts them.
            gate_off = args.no_wall_gate and not sweep
            kind = "sweep" if sweep else "wall"
            rel_pct = 100.0 * (c - b) / b
            worse = rel_pct < -band if direction == "higher" else rel_pct > band
            better = rel_pct > band if direction == "higher" else rel_pct < -band
            gate = "off (--no-wall-gate)" if gate_off else f"{direction} +/-{band:.1f}%"
            mark = "ok"
            if better:
                mark = "ok (ratchet)"
                stale.setdefault(name, (base_path, cur_path))
                print(
                    f"  ratchet candidate: {name} {kind} gauge {key} improved "
                    f"{b:g} -> {c:g} ({rel_pct:+.2f}%, {direction}-is-better); "
                    f"consider refreshing {base_path}"
                )
            if worse:
                mark = "WORSE" if gate_off else "REGRESSION"
                if not gate_off:
                    failures.append(
                        f"{name}: {kind} gauge {key}: {c:g} vs baseline {b:g} "
                        f"({rel_pct:+.2f}%, {direction}-is-better, band {band:.1f}%)"
                    )
            print(f"  {kind}: {name} {key}: {b:g} -> {c:g} ({rel_pct:+.2f}%) [{gate}] {mark}")

    header = ("bench", "baseline", "current", "delta", "tolerance", "verdict")
    widths = [max(len(str(r[i])) for r in rows + [header]) for i in range(len(header))]
    for row in [header] + rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)).rstrip())

    if stale:
        if args.refresh:
            print()
            for name in sorted(stale):
                base_path, cur_path = stale[name]
                shutil.copyfile(cur_path, base_path)
                print(f"refreshed {base_path} from {cur_path}")
        else:
            # Print the exact command so a CI log makes the ratchet a
            # copy-paste away instead of an archaeology exercise.
            hint = [f"tools/bench_compare.py --baseline {args.baseline}"]
            if args.current != ".":
                hint.append(f"--current {args.current}")
            hint.append("--refresh")
            hint.extend(sorted(stale))
            print(
                f"\n{len(stale)} stale baseline(s); to ratchet the improvement(s) "
                f"into the committed files, run:\n  {' '.join(hint)}"
            )

    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("\nall benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
