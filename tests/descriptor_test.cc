// Direct unit tests for the per-node descriptor tables and object headers
// (the §3.2/§3.3 state machines), independent of the full runtime.

#include "src/kernel/descriptor_table.h"

#include <gtest/gtest.h>

#include "src/kernel/object_header.h"

namespace amber {
namespace {

TEST(DescriptorTableTest, AbsentReadsAsUninitialized) {
  DescriptorTable table(0);
  int dummy;
  const Descriptor d = table.Lookup(&dummy);
  EXPECT_EQ(d.state, Residency::kUninitialized);
  EXPECT_EQ(d.forward, kNoNode);
  EXPECT_EQ(table.entries(), 0u);
}

TEST(DescriptorTableTest, ResidentRoundTrip) {
  DescriptorTable table(2);
  int obj;
  table.SetResident(&obj);
  EXPECT_TRUE(table.IsResident(&obj));
  EXPECT_EQ(table.Lookup(&obj).state, Residency::kResident);
  EXPECT_EQ(table.entries(), 1u);
}

TEST(DescriptorTableTest, ForwardOverwritesResident) {
  DescriptorTable table(0);
  int obj;
  table.SetResident(&obj);
  table.SetForward(&obj, 3);
  EXPECT_FALSE(table.IsResident(&obj));
  const Descriptor d = table.Lookup(&obj);
  EXPECT_EQ(d.state, Residency::kRemoteHint);
  EXPECT_EQ(d.forward, 3);
}

TEST(DescriptorTableTest, ForwardToSelfRejected) {
#ifdef NDEBUG
  GTEST_SKIP() << "AMBER_DCHECK compiles away in NDEBUG builds";
#else
  DescriptorTable table(1);
  int obj;
  EXPECT_DEATH(table.SetForward(&obj, 1), "forwarding to self");
#endif
}

TEST(DescriptorTableTest, ReplicaState) {
  DescriptorTable table(0);
  int obj;
  table.SetReplica(&obj);
  EXPECT_EQ(table.Lookup(&obj).state, Residency::kReplica);
  EXPECT_FALSE(table.IsResident(&obj));
}

TEST(DescriptorTableTest, EraseReturnsToUninitialized) {
  DescriptorTable table(0);
  int obj;
  table.SetResident(&obj);
  table.Erase(&obj);
  EXPECT_EQ(table.Lookup(&obj).state, Residency::kUninitialized);
  EXPECT_EQ(table.entries(), 0u);
}

TEST(DescriptorTableTest, LookupCounterTracksChecks) {
  DescriptorTable table(0);
  int obj;
  table.SetResident(&obj);
  const int64_t before = table.lookups();
  for (int i = 0; i < 10; ++i) {
    table.Lookup(&obj);
  }
  EXPECT_EQ(table.lookups(), before + 10);
}

TEST(DescriptorTableTest, ManyObjectsIndependent) {
  DescriptorTable table(0);
  int objs[100];
  for (int i = 0; i < 100; ++i) {
    if (i % 3 == 0) {
      table.SetResident(&objs[i]);
    } else if (i % 3 == 1) {
      table.SetForward(&objs[i], (i % 7) + 1);
    } else {
      table.SetReplica(&objs[i]);
    }
  }
  for (int i = 0; i < 100; ++i) {
    const Descriptor d = table.Lookup(&objs[i]);
    if (i % 3 == 0) {
      EXPECT_EQ(d.state, Residency::kResident);
    } else if (i % 3 == 1) {
      EXPECT_EQ(d.state, Residency::kRemoteHint);
      EXPECT_EQ(d.forward, (i % 7) + 1);
    } else {
      EXPECT_EQ(d.state, Residency::kReplica);
    }
  }
  EXPECT_EQ(table.entries(), 100u);
}

TEST(DescriptorTableTest, ForEachVisitsAllEntries) {
  DescriptorTable table(0);
  int a;
  int b;
  table.SetResident(&a);
  table.SetForward(&b, 2);
  int visited = 0;
  table.ForEach([&](const void* obj, const Descriptor& d) {
    ++visited;
    if (obj == &a) {
      EXPECT_EQ(d.state, Residency::kResident);
    } else {
      EXPECT_EQ(obj, &b);
      EXPECT_EQ(d.forward, 2);
    }
  });
  EXPECT_EQ(visited, 2);
}

TEST(ObjectHeaderTest, FlagPredicates) {
  ObjectHeader h;
  EXPECT_FALSE(h.IsImmutable());
  EXPECT_FALSE(h.IsMember());
  EXPECT_FALSE(h.IsStackLocal());
  EXPECT_FALSE(h.IsThread());
  h.flags = kObjImmutable | kObjThread;
  EXPECT_TRUE(h.IsImmutable());
  EXPECT_TRUE(h.IsThread());
  EXPECT_FALSE(h.IsMember());
}

}  // namespace
}  // namespace amber
