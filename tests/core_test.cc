// Tests for the Amber core: objects, references, invocation with thread
// migration, mobility primitives, and threads.

#include "src/core/amber.h"

#include <gtest/gtest.h>

#include <vector>

namespace amber {
namespace {

using amber::Millis;

Runtime::Config TestConfig(int nodes = 4, int procs = 2) {
  Runtime::Config c;
  c.nodes = nodes;
  c.procs_per_node = procs;
  c.arena_bytes = size_t{256} << 20;
  c.initial_regions_per_node = 4;
  return c;
}

class Counter : public Object {
 public:
  int Add(int d) {
    value_ += d;
    return value_;
  }
  int Get() const { return value_; }
  NodeId WhereAmI() { return Here(); }

 private:
  int value_ = 0;
};

TEST(ObjectTest, NewCreatesResidentLocalObject) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto c = New<Counter>();
    ASSERT_TRUE(c);
    EXPECT_EQ(rt.OwnerOf(c.object()), 0);
    EXPECT_EQ(Locate(c), 0);
    EXPECT_TRUE(rt.address_space().Contains(c.unchecked()));
    rt.ValidateLocationInvariants();
  });
}

TEST(ObjectTest, LocalCallExecutesAndCharges) {
  Runtime rt(TestConfig(1, 1));
  Time before = 0;
  Time after = 0;
  rt.Run([&] {
    auto c = New<Counter>();
    before = Now();
    EXPECT_EQ(c.Call(&Counter::Add, 5), 5);
    EXPECT_EQ(c.Call(&Counter::Add, 3), 8);
    after = Now();
  });
  // Two local invocations: ≥ 2 × (invoke + return) of CPU.
  const auto& cost = rt.cost();
  EXPECT_GE(after - before, 2 * (cost.local_invoke + cost.local_return));
  EXPECT_EQ(rt.thread_migrations(), 0);
}

TEST(ObjectTest, ConstMethodCall) {
  Runtime rt(TestConfig(1, 1));
  rt.Run([&] {
    auto c = New<Counter>();
    c.Call(&Counter::Add, 7);
    EXPECT_EQ(c.Call(&Counter::Get), 7);
  });
}

TEST(MobilityTest, MoveToChangesLocation) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto c = New<Counter>();
    MoveTo(c, 2);
    EXPECT_EQ(Locate(c), 2);
    EXPECT_EQ(rt.OwnerOf(c.object()), 2);
    EXPECT_EQ(rt.objects_moved(), 1);
    rt.ValidateLocationInvariants();
  });
}

TEST(MobilityTest, MoveIsSynchronousAndCostsTime) {
  Runtime rt(TestConfig());
  Duration move_cost = 0;
  rt.Run([&] {
    auto c = New<Counter>();
    const Time t0 = Now();
    MoveTo(c, 3);
    move_cost = Now() - t0;
  });
  // A move includes setup, marshalling, a bulk wire transfer, and install:
  // it must take on the order of milliseconds under default costs.
  EXPECT_GT(move_cost, Millis(1));
}

TEST(MobilityTest, RemoteCallMigratesThreadAndReturns) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto home_obj = New<Counter>();  // node 0: anchors this thread
    (void)home_obj;
    auto c = New<Counter>();
    MoveTo(c, 2);
    // Invoke from within an operation on home_obj so the return check
    // brings us back to node 0.
    class Driver : public Object {
     public:
      NodeId Drive(Ref<Counter> c) {
        EXPECT_EQ(Here(), 0);
        const NodeId remote = c.Call(&Counter::WhereAmI);
        EXPECT_EQ(remote, 2);  // executed at the object
        EXPECT_EQ(Here(), 0);  // returned to the enclosing frame's node
        return remote;
      }
    };
    auto d = New<Driver>();
    EXPECT_EQ(d.Call(&Driver::Drive, c), 2);
    EXPECT_GE(rt.thread_migrations(), 2);  // there and back
  });
}

TEST(MobilityTest, RootFrameCallLeavesThreadAtCallee) {
  // A remote call made from the thread's root frame does NOT migrate back:
  // the root frame is the thread object, which travels with the thread
  // (§3.4's Join tradeoff).
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto c = New<Counter>();
    MoveTo(c, 1);
    EXPECT_EQ(Here(), 0);
    c.Call(&Counter::Add, 1);
    EXPECT_EQ(Here(), 1);
  });
}

TEST(MobilityTest, ForwardingChainFollowedAndCompacted) {
  Runtime rt(TestConfig(6, 1));
  rt.Run([&] {
    auto anchor = New<Counter>();
    (void)anchor;
    auto c = New<Counter>();
    // Build a chain: 0 -> 1 -> 2 -> 3 -> 4 by repeated moves.
    for (NodeId n = 1; n <= 4; ++n) {
      MoveTo(c, n);
    }
    rt.ValidateLocationInvariants();
    // Node 0's hint is stale (points at 1); the protocol must chase through
    // the chain and then compact it.
    class Driver : public Object {
     public:
      int Drive(Ref<Counter> c) { return c.Call(&Counter::Add, 1); }
    };
    auto d = New<Driver>();
    const int64_t hops_before = rt.forward_hops();
    d.Call(&Driver::Drive, c);
    EXPECT_GT(rt.forward_hops(), hops_before);  // chased at least one hop
    // After compaction the hint at node 0 points straight at node 4.
    EXPECT_EQ(rt.table(0).Lookup(c.unchecked()).state, Residency::kRemoteHint);
    EXPECT_EQ(rt.table(0).Lookup(c.unchecked()).forward, 4);
    const int64_t hops_after = rt.forward_hops();
    d.Call(&Driver::Drive, c);
    EXPECT_EQ(rt.forward_hops(), hops_after);  // second call: direct hop only
    rt.ValidateLocationInvariants();
  });
}

TEST(MobilityTest, HomeNodeResolvesUninitializedDescriptor) {
  Runtime rt(TestConfig(4, 1));
  rt.Run([&] {
    auto c = New<Counter>();  // home = node 0
    MoveTo(c, 2);
    // A thread that starts on node 3 has an uninitialized descriptor for c;
    // it must route via c's home node (0), then follow 0's hint to 2.
    class Prober : public Object {
     public:
      NodeId Probe(Ref<Counter> c) { return c.Call(&Counter::WhereAmI); }
    };
    auto p = New<Prober>();
    MoveTo(p, 3);
    EXPECT_EQ(rt.table(3).Lookup(c.unchecked()).state, Residency::kUninitialized);
    EXPECT_EQ(p.Call(&Prober::Probe, c), 2);
    rt.ValidateLocationInvariants();
  });
}

TEST(MobilityTest, MoveToSameNodeIsNoOp) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto c = New<Counter>();
    MoveTo(c, 0);
    EXPECT_EQ(rt.objects_moved(), 0);
    EXPECT_EQ(Locate(c), 0);
  });
}

class Pair : public Object {
 public:
  int Sum() { return a_.Get() + b_.Get(); }
  Counter& a() { return a_; }
  Counter& b() { return b_; }

 private:
  Counter a_;  // member objects: co-resident, move with the Pair (§3.6)
  Counter b_;
};

TEST(ObjectTest, MemberObjectsShareResidency) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto p = New<Pair>();
    EXPECT_TRUE(p.unchecked()->a().amber_header().IsMember());
    EXPECT_EQ(p.unchecked()->a().AmberPrimary(), p.object());
    MoveTo(p, 2);
    // Invoking the member migrates to the container's node.
    Ref<Counter> a(&p.unchecked()->a());
    class Driver : public Object {
     public:
      NodeId Drive(Ref<Counter> a) { return a.Call(&Counter::WhereAmI); }
    };
    auto d = New<Driver>();
    EXPECT_EQ(d.Call(&Driver::Drive, a), 2);
    rt.ValidateLocationInvariants();
  });
}

TEST(MobilityTest, AttachedObjectsMoveTogether) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto a = New<Counter>();
    auto b = New<Counter>();
    auto c = New<Counter>();
    Attach(b, a);
    Attach(c, b);  // chain: c -> b -> a
    MoveTo(a, 3);
    EXPECT_EQ(Locate(a), 3);
    EXPECT_EQ(Locate(b), 3);
    EXPECT_EQ(Locate(c), 3);
    rt.ValidateLocationInvariants();
    // Unattach frees b (and its subtree) to move independently.
    Unattach(b);
    MoveTo(b, 1);
    EXPECT_EQ(Locate(a), 3);
    EXPECT_EQ(Locate(b), 1);
    EXPECT_EQ(Locate(c), 1);  // c still attached to b
    rt.ValidateLocationInvariants();
  });
}

TEST(MobilityTest, AttachBringsChildToParent) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto parent = New<Counter>();
    auto child = New<Counter>();
    MoveTo(parent, 2);
    EXPECT_EQ(Locate(child), 0);
    Attach(child, parent);
    EXPECT_EQ(Locate(child), 2);  // co-location established at attach time
    rt.ValidateLocationInvariants();
  });
}

TEST(MobilityTest, MovingAttachedChildIsAnError) {
  Runtime rt(TestConfig());
  EXPECT_DEATH(rt.Run([&] {
    auto a = New<Counter>();
    auto b = New<Counter>();
    Attach(b, a);
    MoveTo(b, 1);
  }),
               "unattach");
}

TEST(MobilityTest, AttachmentCycleRejected) {
  Runtime rt(TestConfig());
  EXPECT_DEATH(rt.Run([&] {
    auto a = New<Counter>();
    auto b = New<Counter>();
    Attach(b, a);
    Attach(a, b);
  }),
               "cycle");
}

TEST(ImmutableTest, MoveToCopiesInsteadOfMoving) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto c = New<Counter>();
    c.Call(&Counter::Add, 42);
    MakeImmutable(c);
    MoveTo(c, 2);
    // Original still resident at 0; node 2 holds a replica.
    EXPECT_EQ(rt.table(0).Lookup(c.unchecked()).state, Residency::kResident);
    EXPECT_EQ(rt.table(2).Lookup(c.unchecked()).state, Residency::kReplica);
    EXPECT_EQ(rt.replicas_installed(), 1);
    EXPECT_EQ(rt.objects_moved(), 0);
    rt.ValidateLocationInvariants();
  });
}

TEST(ImmutableTest, RemoteReadReplicatesInsteadOfMigrating) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto c = New<Counter>();
    c.Call(&Counter::Add, 9);
    MakeImmutable(c);
    class Reader : public Object {
     public:
      int Read(Ref<Counter> c) {
        const NodeId before = Here();
        const int v = c.Call(&Counter::Get);
        EXPECT_EQ(Here(), before) << "reading an immutable must not migrate";
        return v;
      }
    };
    auto r = New<Reader>();
    MoveTo(r, 3);
    const int64_t migrations = rt.thread_migrations();
    EXPECT_EQ(r.Call(&Reader::Read, c), 9);
    // The main thread migrated to node 3's Reader (one hop; no hop back —
    // this call is from the root frame), but the Counter invocation itself
    // replicated instead of migrating.
    EXPECT_EQ(rt.replicas_installed(), 1);
    EXPECT_EQ(rt.thread_migrations(), migrations + 1);
    EXPECT_EQ(Here(), 3);
    // Second read: replica already installed, no new replica, no migration.
    r.Call(&Reader::Read, c);
    EXPECT_EQ(rt.replicas_installed(), 1);
    rt.ValidateLocationInvariants();
  });
}

TEST(ObjectTest, DeleteReclaimsSegmentForReuse) {
  Runtime rt(TestConfig(1, 1));
  rt.Run([&] {
    auto a = New<Counter>();
    void* addr = a.unchecked();
    Delete(a);
    auto b = New<Counter>();  // same size: reuses the freed block whole
    EXPECT_EQ(static_cast<void*>(b.unchecked()), addr);
  });
}

TEST(ObjectTest, DeleteRemoteObjectMigratesThere) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto c = New<Counter>();
    MoveTo(c, 2);
    Delete(c);  // thread chases to node 2, deletes, root frame stays there
    EXPECT_EQ(rt.allocator(0).live_segments(),
              rt.allocator(0).live_segments());  // no crash; accounting sane
  });
}

TEST(ThreadTest, StartAndJoinReturnsResult) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto c = New<Counter>();
    auto t = StartThread(c, &Counter::Add, 11);
    EXPECT_EQ(t.Join(), 11);
    EXPECT_TRUE(t.object()->finished());
  });
}

TEST(ThreadTest, ThreadMigratesToRemoteTarget) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto c = New<Counter>();
    MoveTo(c, 3);
    auto t = StartThread(c, &Counter::WhereAmI);
    EXPECT_EQ(t.Join(), 3);
    // The thread died at node 3; joining chased it there.
    EXPECT_EQ(Here(), 3);
  });
}

TEST(ThreadTest, ManyThreadsConcurrentCounter) {
  Runtime rt(TestConfig(1, 4));
  rt.Run([&] {
    auto c = New<Counter>();
    std::vector<ThreadRef<int>> threads;
    for (int i = 0; i < 16; ++i) {
      threads.push_back(StartThread(c, &Counter::Add, 1));
    }
    for (auto& t : threads) {
      t.Join();
    }
    EXPECT_EQ(c.Call(&Counter::Get), 16);
  });
}

TEST(ThreadTest, ParallelSpeedupAcrossProcessors) {
  // 4 threads × 10 ms of Work on a 4-CPU node finishes in ~10 ms, not 40.
  class Worker : public Object {
   public:
    int Burn() {
      Work(Millis(10));
      return 1;
    }
  };
  Runtime rt(TestConfig(1, 4));
  Time elapsed = 0;
  rt.Run([&] {
    auto w = New<Worker>();
    const Time t0 = Now();
    std::vector<ThreadRef<int>> ts;
    for (int i = 0; i < 4; ++i) {
      ts.push_back(StartThread(w, &Worker::Burn));
    }
    for (auto& t : ts) {
      t.Join();
    }
    elapsed = Now() - t0;
  });
  EXPECT_LT(elapsed, Millis(20));
  EXPECT_GE(elapsed, Millis(10));
}

TEST(ThreadTest, VoidResultJoin) {
  class Sink : public Object {
   public:
    void Poke() { ++pokes_; }
    int pokes() const { return pokes_; }

   private:
    int pokes_ = 0;
  };
  Runtime rt(TestConfig(1, 1));
  rt.Run([&] {
    auto s = New<Sink>();
    auto t = StartThread(s, &Sink::Poke);
    t.Join();
    EXPECT_EQ(s.Call(&Sink::pokes), 1);
  });
}

TEST(ThreadTest, ArgumentsTravelByValue) {
  class Echo : public Object {
   public:
    std::vector<double> Round(std::vector<double> v) {
      for (double& x : v) {
        x *= 2;
      }
      return v;
    }
  };
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto e = New<Echo>();
    MoveTo(e, 1);
    std::vector<double> row(122, 1.5);
    auto t = StartThread(e, &Echo::Round, row);
    auto out = t.Join();
    ASSERT_EQ(out.size(), 122u);
    EXPECT_EQ(out[0], 3.0);
  });
}

TEST(BoundThreadTest, RunningThreadFollowsMovingObject) {
  // A thread executing a long operation on an object that gets moved must
  // end up at the object's new node (lazily, at its next check), and the
  // object's state must stay consistent.
  class Grinder : public Object {
   public:
    NodeId Grind() {
      for (int i = 0; i < 20; ++i) {
        Work(Millis(2));
        // Touch our own state through an ordered point each chunk.
        ++chunks_;
      }
      return Here();
    }
    int chunks() const { return chunks_; }

   private:
    int chunks_ = 0;
  };
  Runtime rt(TestConfig(4, 2));
  rt.Run([&] {
    auto g = New<Grinder>();
    auto t = StartThread(g, &Grinder::Grind);
    Work(Millis(5));  // let the grinder get going
    MoveTo(g, 2);
    EXPECT_EQ(t.Join(), 2) << "bound thread should finish at the object's new node";
    EXPECT_EQ(g.Call(&Grinder::chunks), 20);
    rt.ValidateLocationInvariants();
  });
}

TEST(SchedulerTest, PriorityPolicyOrdersThreads) {
  class Logger : public Object {
   public:
    void Log(int id) { order_.push_back(id); }
    std::vector<int> order_;
  };
  Runtime rt(TestConfig(1, 1));
  rt.Run([&] {
    SetScheduler(0, std::make_unique<sim::PriorityRunQueue>());
    auto log = New<Logger>();
    std::vector<ThreadRef<void>> ts;
    // Main holds the only CPU while spawning, so all three queue up; the
    // priority policy must then run them highest-first.
    for (int i = 0; i < 3; ++i) {
      ts.push_back(StartThreadNamed("t" + std::to_string(i), /*priority=*/i, log, &Logger::Log,
                                    i));
    }
    for (auto& t : ts) {
      t.Join();
    }
    EXPECT_EQ(log.unchecked()->order_, (std::vector<int>{2, 1, 0}));
  });
}

TEST(RuntimeTest, DeterministicEndToEnd) {
  auto run_once = [] {
    Runtime rt(TestConfig(4, 2));
    std::vector<std::pair<NodeId, Time>> trace;
    const Time end = rt.Run([&] {
      auto c = New<Counter>();
      std::vector<ThreadRef<int>> ts;
      for (int i = 0; i < 6; ++i) {
        ts.push_back(StartThread(c, &Counter::Add, i));
      }
      for (auto& t : ts) {
        t.Join();
        trace.emplace_back(Here(), Now());
      }
      MoveTo(c, 3);
      c.Call(&Counter::Get);
      trace.emplace_back(Here(), Now());
    });
    trace.emplace_back(-1, end);
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(RuntimeTest, RegionExhaustionGrowsThroughServer) {
  Runtime::Config config = TestConfig(2, 1);
  config.initial_regions_per_node = 1;
  Runtime rt(config);
  rt.Run([&] {
    // Fill node 1's single initial region (1 MiB) with 64 KiB objects; the
    // allocator must extend through the (remote) address-space server.
    class Blob : public Object {
      char data_[64 * 1024];
    };
    class Factory : public Object {
     public:
      int Make(int n) {
        for (int i = 0; i < n; ++i) {
          New<Blob>();
        }
        return n;
      }
    };
    auto f = New<Factory>();
    MoveTo(f, 1);
    f.Call(&Factory::Make, 40);  // ~2.6 MiB of blobs
    EXPECT_GT(rt.allocator(1).regions_owned(), 1u);
  });
}

}  // namespace
}  // namespace amber
