// Tests for the causal critical-path profiler (src/prof): exact closure of
// the attribution (the breakdown sums to the end-to-end virtual time), cause
// classification (lock convoys land on the right lock, fault-induced retry
// waits land in the fault category), the placement advisor's hotspot
// recommendation (and that applying it actually shortens the run), and
// byte-determinism of the JSON report.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/amber.h"
#include "src/fault/fault.h"
#include "src/prof/profiler.h"
#include "src/rpc/transport.h"

namespace amber {
namespace {

class Spinner : public Object {
 public:
  int Step() {
    Work(kMicrosecond * 100);
    return ++steps_;
  }

 private:
  int steps_ = 0;
};

class Guarded : public Object {
 public:
  void Update() {
    lock_.Acquire();
    Work(kMillisecond * 2);
    ++value_;
    lock_.Release();
  }
  int value() const { return value_; }

 private:
  Lock lock_;
  int value_ = 0;
};

class Counter : public Object {
 public:
  int Add(int d) {
    Work(kMicrosecond * 50);
    return value_ += d;
  }

 private:
  int value_ = 0;
};

class Driver : public Object {
 public:
  int Run(Ref<Counter> c, int rounds) {
    for (int i = 0; i < rounds; ++i) {
      c.Call(&Counter::Add, 1);
      Work(kMicrosecond * 20);
    }
    return rounds;
  }
};

Time Sum(const std::map<std::string, Time>& breakdown) {
  Time sum = 0;
  for (const auto& [cat, ns] : breakdown) {
    sum += ns;
  }
  return sum;
}

// A run with no parallelism: the critical path *is* the run, and every
// nanosecond of it is node-0 compute or queueing.
TEST(ProfilerTest, SerialCriticalPathEqualsTotalVirtualTime) {
  Runtime::Config config;
  config.nodes = 1;
  config.procs_per_node = 1;
  config.arena_bytes = size_t{128} << 20;
  Runtime rt(config);
  prof::Profiler profiler;
  rt.AddObserver(&profiler);
  const Time end = rt.Run([] {
    auto s = New<Spinner>();
    for (int i = 0; i < 20; ++i) {
      s.Call(&Spinner::Step);
      Work(kMicrosecond * 30);
    }
  });
  prof::ProfileReport report = profiler.Finalize();
  EXPECT_EQ(report.total_ns, end);
  EXPECT_EQ(Sum(report.breakdown), report.total_ns);
  for (const auto& [cat, ns] : report.breakdown) {
    EXPECT_TRUE(cat == "compute.node0" || cat == "queue.node0")
        << "serial run attributed time to " << cat;
  }
  // Dominated by compute.
  ASSERT_TRUE(report.breakdown.count("compute.node0"));
  EXPECT_GT(report.breakdown["compute.node0"], report.total_ns / 2);
  EXPECT_TRUE(report.advice.empty());
}

// Closure holds on a genuinely parallel multi-node run with migrations,
// remote invocations and joins.
TEST(ProfilerTest, BreakdownClosesExactlyOnParallelRun) {
  Runtime::Config config;
  config.nodes = 4;
  config.procs_per_node = 2;
  config.arena_bytes = size_t{256} << 20;
  Runtime rt(config);
  prof::Profiler profiler;
  rt.AddObserver(&profiler);
  rt.Run([] {
    std::vector<Ref<Spinner>> spinners;
    for (NodeId n = 0; n < 4; ++n) {
      spinners.push_back(NewOn<Spinner>(n));
    }
    std::vector<ThreadRef<int>> ts;
    for (auto& s : spinners) {
      ts.push_back(StartThread(s, &Spinner::Step));
    }
    for (auto& t : ts) {
      t.Join();
    }
    for (auto& s : spinners) {
      s.Call(&Spinner::Step);  // main migrates around the machine
    }
  });
  prof::ProfileReport report = profiler.Finalize();
  EXPECT_GT(report.total_ns, 0);
  EXPECT_EQ(Sum(report.breakdown), report.total_ns);
  EXPECT_FALSE(report.critical_path.empty());
  // The path steps are the breakdown, unaggregated.
  Time step_sum = 0;
  for (const auto& s : report.critical_path) {
    step_sum += s.ns;
  }
  EXPECT_EQ(step_sum, report.total_ns);
}

// A two-thread lock convoy on one node: the second thread's wait for the
// first one's critical section is on the critical path, attributed to that
// lock (not to compute or the network).
TEST(ProfilerTest, LockConvoyAttributesContentionToTheLock) {
  Runtime::Config config;
  config.nodes = 1;
  config.procs_per_node = 2;
  config.arena_bytes = size_t{128} << 20;
  Runtime rt(config);
  prof::Profiler profiler;
  rt.AddObserver(&profiler);
  rt.Run([] {
    auto g = New<Guarded>();
    auto t1 = StartThread(g, &Guarded::Update);
    auto t2 = StartThread(g, &Guarded::Update);
    t1.Join();
    t2.Join();
    EXPECT_EQ(g.Call(&Guarded::value), 2);
  });
  prof::ProfileReport report = profiler.Finalize();
  EXPECT_EQ(Sum(report.breakdown), report.total_ns);

  // Exactly one lock saw contention: Guarded's member lock.
  ASSERT_EQ(report.locks.size(), 1u);
  const prof::LockProfile& lock = report.locks[0];
  EXPECT_EQ(lock.acquisitions, 1);  // one *contended* acquisition
  EXPECT_GE(lock.wait_ns, kMillisecond / 2);
  EXPECT_GE(lock.hold_ns, 2 * kMillisecond);

  // That wait sits on the critical path, labelled with the same lock id.
  const std::string cat = "lock." + std::to_string(lock.id);
  ASSERT_TRUE(report.breakdown.count(cat)) << "no " << cat << " on the critical path";
  EXPECT_GE(report.breakdown[cat], kMillisecond / 2);
  EXPECT_EQ(report.breakdown[cat], lock.critical_path_ns);

  // And the advisor points at it.
  bool lock_advice = false;
  for (const auto& a : report.advice) {
    lock_advice |= a.kind == "lock" && a.target == lock.id;
  }
  EXPECT_TRUE(lock_advice);
}

// A crash/restart outage under the kRetry failure handler: the thread's
// backoff across the outage is the fault's fault, and the profiler says so.
TEST(ProfilerTest, FaultRunAttributesRetryBackoffToFaultCategory) {
  Runtime::Config config;
  config.nodes = 2;
  config.procs_per_node = 1;
  config.arena_bytes = size_t{128} << 20;
  Runtime rt(config);
  fault::FaultPlan plan;
  fault::NodeEvent ev;
  ev.node = 1;
  ev.crash_at = Millis(10);
  ev.restart_at = Millis(60);
  plan.node_events.push_back(ev);
  fault::Injector injector(plan);
  rt.SetFaultInjector(&injector);
  // Short retransmission budget so the failure handler (backoff) carries the
  // thread across the outage.
  rpc::RetryPolicy policy;
  policy.timeout = Millis(2);
  policy.timeout_cap = Millis(8);
  policy.max_attempts = 3;
  rt.transport().SetRetryPolicy(policy);
  rt.SetFailureHandler([](const FailureEvent&) { return FailureAction::kRetry; });
  prof::Profiler profiler;
  rt.AddObserver(&profiler);
  int final_value = 0;
  rt.Run([&] {
    auto c = New<Counter>();
    ASSERT_EQ(MoveTo(c, 1), Status::kOk);  // parked on the node about to die
    Work(Millis(12));                      // let the crash land
    final_value = c.Call(&Counter::Add, 1);  // blocks across the outage
  });
  EXPECT_EQ(final_value, 1);
  EXPECT_EQ(injector.crashes(), 1);

  prof::ProfileReport report = profiler.Finalize();
  EXPECT_EQ(Sum(report.breakdown), report.total_ns);
  ASSERT_TRUE(report.breakdown.count("fault"))
      << "no fault-attributed time on the critical path";
  // The outage spans ~50 ms of the run; a healthy chunk of the wait (the
  // timeout episodes and handler backoff) must be charged to the fault, not
  // to the network or the serving node.
  EXPECT_GE(report.breakdown["fault"], Millis(10));
}

// The placement advisor: an object living on node 0 whose invocations come
// almost entirely from node 2 gets a MoveTo(2) as the top recommendation —
// and applying that recommendation really does shorten the run.
TEST(ProfilerTest, AdvisorRecommendsMovingHotspotAndMoveHelps) {
  auto run = [](bool moved, prof::ProfileReport* report) {
    Runtime::Config config;
    config.nodes = 4;
    config.procs_per_node = 2;
    config.arena_bytes = size_t{128} << 20;
    Runtime rt(config);
    prof::Profiler profiler;
    rt.AddObserver(&profiler);
    const Time end = rt.Run([&] {
      auto counter = New<Counter>();  // lives on node 0
      auto driver = NewOn<Driver>(2);
      counter.Call(&Counter::Add, 1);  // one local call from node 0
      if (moved) {
        MoveTo(counter, 2);
      }
      auto t = StartThread(driver, &Driver::Run, counter, 16);
      t.Join();
    });
    if (report != nullptr) {
      *report = profiler.Finalize();
    }
    return end;
  };

  prof::ProfileReport report;
  const Time before = run(/*moved=*/false, &report);
  EXPECT_EQ(Sum(report.breakdown), report.total_ns);
  ASSERT_FALSE(report.advice.empty());
  const prof::Advice& top = report.advice[0];
  EXPECT_EQ(top.kind, "move");
  EXPECT_EQ(top.to, 2);
  EXPECT_NE(top.label.find("Counter"), std::string::npos)
      << "top advice targets " << top.label;
  EXPECT_GT(top.est_saving_ns, 0);

  const Time after = run(/*moved=*/true, nullptr);
  EXPECT_LT(after, before) << "applying the recommended MoveTo did not help";
}

// Same seed, same run, same bytes: the JSON report is deterministic.
TEST(ProfilerTest, WriteJsonIsByteIdenticalAcrossRuns) {
  auto once = [] {
    Runtime::Config config;
    config.nodes = 4;
    config.procs_per_node = 2;
    config.arena_bytes = size_t{128} << 20;
    Runtime rt(config);
    prof::Profiler profiler;
    rt.AddObserver(&profiler);
    rt.Run([] {
      auto g = New<Guarded>();
      MoveTo(g, 1);
      auto counter = NewOn<Counter>(3);
      auto t1 = StartThread(g, &Guarded::Update);
      auto t2 = StartThread(g, &Guarded::Update);
      counter.Call(&Counter::Add, 7);
      t1.Join();
      t2.Join();
    });
    prof::ProfileReport report = profiler.Finalize();
    report.name = "determinism";
    std::ostringstream out;
    report.WriteJson(out);
    return out.str();
  };
  const std::string a = once();
  const std::string b = once();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// Reset forgets everything: a profiler reused across two runs reports only
// the second.
TEST(ProfilerTest, ResetClearsState) {
  auto run = [](prof::Profiler& profiler) {
    Runtime::Config config;
    config.nodes = 1;
    config.procs_per_node = 1;
    config.arena_bytes = size_t{128} << 20;
    Runtime rt(config);
    rt.AddObserver(&profiler);
    return rt.Run([] {
      auto s = New<Spinner>();
      s.Call(&Spinner::Step);
    });
  };
  prof::Profiler profiler;
  run(profiler);
  profiler.Reset();
  const Time end = run(profiler);
  prof::ProfileReport report = profiler.Finalize();
  EXPECT_EQ(report.total_ns, end);
  EXPECT_EQ(Sum(report.breakdown), report.total_ns);
}

}  // namespace
}  // namespace amber
