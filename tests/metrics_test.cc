// Tests for the metrics registry: percentile math, registry lookups,
// runtime core metrics, JSON determinism, and the registry-backed cluster
// report sections.

#include "src/metrics/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/amber.h"
#include "src/core/cluster_report.h"

namespace metrics {
namespace {

using namespace amber;

TEST(HistogramTest, PercentileMath) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(i);  // 1..100
  }
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_NEAR(h.Percentile(50), 50.0, 1.0);
  EXPECT_NEAR(h.Percentile(90), 90.0, 1.0);
  EXPECT_NEAR(h.Percentile(99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
}

TEST(HistogramTest, SummaryExtractsTailPercentiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(i);  // 1..1000: enough samples for p999 to resolve the tail
  }
  const PercentileSummary s = h.Summary();
  EXPECT_DOUBLE_EQ(s.p50, h.Percentile(50));
  EXPECT_DOUBLE_EQ(s.p90, h.Percentile(90));
  EXPECT_DOUBLE_EQ(s.p99, h.Percentile(99));
  EXPECT_DOUBLE_EQ(s.p999, h.Percentile(99.9));
  EXPECT_NEAR(s.p50, 500.0, 1.0);
  EXPECT_NEAR(s.p99, 990.0, 1.0);
  EXPECT_NEAR(s.p999, 999.0, 1.0);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, h.max());
}

TEST(HistogramTest, SummaryAppearsInJson) {
  Registry reg;
  reg.GetHistogram("h").Record(1.0);
  std::ostringstream out;
  reg.WriteJson(out);
  EXPECT_NE(out.str().find("\"p999\""), std::string::npos);
}

TEST(HistogramTest, EmptyHistogramIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
  const PercentileSummary s = h.Summary();
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p999, 0.0);
}

TEST(RegistryTest, LabelsAndLookup) {
  Registry reg;
  reg.GetCounter("a").Add(3);
  reg.GetCounter("a", 2).Add(4);
  reg.GetCounter("b", "x->y").Add(5);
  reg.GetGauge("g", 1).Set(2.5);
  reg.GetHistogram("h", 0).Record(7.0);

  EXPECT_EQ(reg.CounterTotal("a"), 7);
  EXPECT_EQ(reg.CounterTotal("b"), 5);
  EXPECT_EQ(reg.CounterTotal("missing"), 0);
  ASSERT_NE(reg.FindCounters("a"), nullptr);
  EXPECT_EQ(reg.FindCounters("a")->at("node2").value(), 4);
  EXPECT_EQ(reg.FindCounters("missing"), nullptr);
  EXPECT_DOUBLE_EQ(reg.FindGauges("g")->at("node1").value(), 2.5);
  EXPECT_EQ(reg.FindHistograms("h")->at("node0").count(), 1);
  EXPECT_EQ(Registry::NodeLabel(3), "node3");
  EXPECT_EQ(Registry::LinkLabel(1, 2), "1->2");
}

Runtime::Config TestConfig() {
  Runtime::Config c;
  c.nodes = 2;
  c.procs_per_node = 2;
  c.arena_bytes = size_t{128} << 20;
  return c;
}

class Pokee : public Object {
 public:
  int Poke() {
    Work(kMicrosecond * 50);
    return ++pokes_;
  }

 private:
  int pokes_ = 0;
};

class Monitored : public Object {
 public:
  void Bump() {
    lock_.Acquire();
    Work(kMillisecond * 2);
    ++value_;
    lock_.Release();
  }

 private:
  Lock lock_;
  int value_ = 0;
};

// A deterministic 2-node scenario: remote invocations, a contended lock,
// an object move. Returns the registry's JSON document.
std::string RunScenario(Registry* reg) {
  Runtime rt(TestConfig());
  rt.SetMetrics(reg);
  rt.Run([&] {
    auto shared = NewOn<Monitored>(1);
    // Both workers start on node 0 and migrate to the monitor on node 1.
    auto t1 = StartThread(shared, &Monitored::Bump);
    auto t2 = StartThread(shared, &Monitored::Bump);
    t1.Join();
    t2.Join();
    auto thing = New<Pokee>();
    MoveTo(thing, 1 - Here());  // wherever we are, the object goes elsewhere
    thing.Call(&Pokee::Poke);   // so this invoke is remote and migrates us
  });
  std::ostringstream out;
  reg->WriteJson(out);
  return out.str();
}

TEST(RegistryTest, RuntimeCoreMetrics) {
  Registry reg;
  const std::string json = RunScenario(&reg);

  // Distribution totals published at end of Run().
  EXPECT_GE(reg.CounterTotal("amber.objects.created"), 2);
  EXPECT_GE(reg.CounterTotal("amber.objects.moved"), 1);
  EXPECT_GE(reg.CounterTotal("amber.threads.migrated"), 2);
  EXPECT_GT(reg.CounterTotal("net.messages"), 0);
  EXPECT_GT(reg.CounterTotal("net.link.messages"), 0);

  // Remote invocation latency recorded per destination node.
  const auto* remote = reg.FindHistograms("amber.invoke.latency.remote");
  ASSERT_NE(remote, nullptr);
  int64_t remote_count = 0;
  for (const auto& [label, h] : *remote) {
    remote_count += h.count();
  }
  EXPECT_GE(remote_count, 1);

  // The two Bump threads contend on the member lock.
  EXPECT_GE(reg.CounterTotal("sync.lock.blocked"), 1);
  const auto* holds = reg.FindHistograms("sync.lock.hold");
  ASSERT_NE(holds, nullptr);
  EXPECT_GE(holds->at("total").count(), 2);
  // Each hold spans at least the 2ms critical section.
  EXPECT_GE(holds->at("total").min(), 2.0 * kMillisecond);

  // Per-lock wait/hold distributions, labelled "lock<id>" (dense ids in
  // first-contention order) — the placement advisor's raw material.
  const auto* lock_waits = reg.FindHistograms("lock.wait_ns");
  ASSERT_NE(lock_waits, nullptr);
  ASSERT_FALSE(lock_waits->empty());
  const auto* lock_holds = reg.FindHistograms("lock.hold_ns");
  ASSERT_NE(lock_holds, nullptr);
  int64_t lock_wait_count = 0;
  double max_wait = 0.0;
  for (const auto& [label, h] : *lock_waits) {
    EXPECT_EQ(label.rfind("lock", 0), 0u) << "unexpected label " << label;
    lock_wait_count += h.count();
    max_wait = std::max(max_wait, h.max());
  }
  EXPECT_GE(lock_wait_count, 1);   // at least one contended acquisition
  EXPECT_GT(max_wait, 0.0);        // which actually waited
  // The contended lock's hold series is labelled identically, so the two
  // families join on the lock id.
  for (const auto& [label, h] : *lock_waits) {
    EXPECT_TRUE(lock_holds->count(label))
        << "lock.wait_ns label " << label << " has no lock.hold_ns series";
    EXPECT_GE(lock_holds->at(label).min(), 2.0 * kMillisecond);
  }

  // Scheduler metrics.
  EXPECT_GT(reg.CounterTotal("sched.threads.created"), 0);
  const auto* waits = reg.FindHistograms("sched.runqueue.wait");
  ASSERT_NE(waits, nullptr);

  // The run is machine-summarized.
  EXPECT_GT(reg.FindGauges("run.virtual_time")->at("total").value(), 0.0);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(RegistryTest, JsonByteIdenticalAcrossRuns) {
  Registry a;
  Registry b;
  EXPECT_EQ(RunScenario(&a), RunScenario(&b));
}

TEST(RegistryTest, PerLinkNetworkHistograms) {
  // Traffic between node 0 and node 1 must show up as per-link histograms
  // labelled "src->dst" — the flight-recorder report cross-references these
  // labels when attributing cross-node traffic.
  // Anchor the caller in an object frame on node 0: a root-frame remote call
  // would finish on node 1 and never generate the 1->0 return leg.
  class LinkDriver : public Object {
   public:
    int Drive() {
      auto thing = New<Pokee>();
      MoveTo(thing, 1);
      return thing.Call(&Pokee::Poke);  // travel 0->1, return 1->0
    }
  };
  Registry reg;
  Runtime rt(TestConfig());
  rt.SetMetrics(&reg);
  rt.Run([] {
    auto driver = New<LinkDriver>();
    driver.Call(&LinkDriver::Drive);
  });

  const auto* bytes = reg.FindHistograms("net.link_bytes");
  ASSERT_NE(bytes, nullptr);
  const auto* depth = reg.FindHistograms("net.link_queue_depth");
  ASSERT_NE(depth, nullptr);
  for (const std::string& link : {std::string("0->1"), std::string("1->0")}) {
    auto b = bytes->find(link);
    ASSERT_NE(b, bytes->end()) << "missing net.link_bytes{" << link << "}";
    EXPECT_GT(b->second.count(), 0);
    EXPECT_GT(b->second.sum(), 0.0);
    auto d = depth->find(link);
    ASSERT_NE(d, depth->end()) << "missing net.link_queue_depth{" << link << "}";
    // Depth is sampled per channel acquisition (per fragment), bytes once
    // per message — fragmented bulk transfers make depth the larger count.
    EXPECT_GE(d->second.count(), b->second.count()) << "on " << link;
  }
  // No traffic flowed between a node and itself: only real links appear.
  EXPECT_EQ(bytes->count("0->0"), 0u);
  EXPECT_EQ(bytes->count("1->1"), 0u);
}

TEST(RegistryTest, ClusterReportUsesRegistry) {
  Registry reg;
  Runtime rt(TestConfig());
  rt.SetMetrics(&reg);
  Time elapsed = 0;
  rt.Run([&] {
    auto shared = NewOn<Monitored>(1);
    auto t1 = StartThread(shared, &Monitored::Bump);
    auto t2 = StartThread(shared, &Monitored::Bump);
    t1.Join();
    t2.Join();
    elapsed = Now();
  });
  const std::string report = ClusterReport(rt, elapsed);
  EXPECT_NE(report.find("lock contention:"), std::string::npos);
  EXPECT_NE(report.find("blocked per lock:"), std::string::npos);
  EXPECT_NE(report.find("hold:"), std::string::npos);
}

TEST(RegistryTest, NoMetricsMeansNoChangeInVirtualTime) {
  auto run = [](Registry* reg) {
    Runtime rt(TestConfig());
    if (reg != nullptr) {
      rt.SetMetrics(reg);
    }
    Time end = 0;
    rt.Run([&] {
      auto thing = New<Pokee>();
      MoveTo(thing, 1);
      thing.Call(&Pokee::Poke);
      end = Now();
    });
    return end;
  };
  Registry reg;
  EXPECT_EQ(run(nullptr), run(&reg));
}

// --- Exemplars -----------------------------------------------------------------

TEST(HistogramTest, ExemplarsTrackBucketsAndResolveNearestValue) {
  Histogram h;
  h.Record(100.0);  // plain Record: no exemplar retained
  EXPECT_TRUE(h.exemplars().empty());
  h.Record(100.0, 0);  // trace id 0 = unsampled: still no exemplar
  EXPECT_TRUE(h.exemplars().empty());

  h.Record(90.0, 7);
  h.Record(5000.0, 9);
  h.Record(100.0, 8);  // same bucket as 90.0: most recent observation wins
  ASSERT_EQ(h.exemplars().size(), 2u);
  EXPECT_EQ(h.ExemplarNear(95.0).trace_id, 8u);
  EXPECT_EQ(h.ExemplarNear(4000.0).trace_id, 9u);
  EXPECT_DOUBLE_EQ(h.ExemplarNear(4000.0).value, 5000.0);
  EXPECT_EQ(Histogram().ExemplarNear(1.0).trace_id, 0u);  // empty: zero exemplar
}

TEST(HistogramTest, ExemplarsRenderInJsonOnlyWhenPresent) {
  Registry reg;
  reg.GetHistogram("lat").Record(100.0);
  std::ostringstream without;
  reg.WriteJson(without);
  EXPECT_EQ(without.str().find("exemplars"), std::string::npos);

  reg.GetHistogram("lat").Record(5000.0, 9);
  std::ostringstream with;
  reg.WriteJson(with);
  EXPECT_NE(with.str().find("\"exemplars\""), std::string::npos);
  EXPECT_NE(with.str().find("\"trace_id\": 9"), std::string::npos);
}

// --- Label cardinality guard ---------------------------------------------------

TEST(RegistryTest, LabelCapDropsNewLabelsButKeepsExistingOnes) {
  Registry reg;
  reg.SetLabelCap(4);
  for (int i = 0; i < 10; ++i) {
    reg.GetCounter("fam", "l" + std::to_string(i)).Add(1);
  }
  EXPECT_EQ(reg.dropped_labels(), 6);
  ASSERT_NE(reg.FindCounters("fam"), nullptr);
  EXPECT_EQ(reg.FindCounters("fam")->size(), 4u);
  EXPECT_EQ(reg.CounterTotal("metrics.dropped_labels"), 6);

  // Labels admitted before the family filled keep resolving (and don't
  // count as drops); only brand-new labels fall into the sink.
  reg.GetCounter("fam", "l0").Add(1);
  EXPECT_EQ(reg.dropped_labels(), 6);
  EXPECT_EQ(reg.FindCounters("fam")->at("l0").value(), 2);

  // The sink absorbs writes but is never rendered.
  std::ostringstream out;
  reg.WriteJson(out);
  EXPECT_EQ(out.str().find("l7"), std::string::npos);
  EXPECT_NE(out.str().find("\"metrics.dropped_labels\""), std::string::npos);
}

TEST(RegistryTest, LabelCapAppliesPerFamilyAndPerKind) {
  Registry reg;
  reg.SetLabelCap(2);
  reg.GetGauge("g", "a").Set(1);
  reg.GetGauge("g", "b").Set(2);
  reg.GetGauge("g", "c").Set(3);  // dropped
  reg.GetHistogram("h", "a").Record(1);
  reg.GetHistogram("h", "b").Record(2);
  reg.GetHistogram("h", "c").Record(3);  // dropped
  reg.GetGauge("g2", "a").Set(1);        // fresh family: admitted
  EXPECT_EQ(reg.dropped_labels(), 2);
  EXPECT_EQ(reg.FindGauges("g")->size(), 2u);
  EXPECT_EQ(reg.FindHistograms("h")->size(), 2u);
  EXPECT_EQ(reg.FindGauges("g2")->size(), 1u);
}

}  // namespace
}  // namespace metrics
