// Additional RPC/transport tests: bulk-from-fiber, concurrent senders on
// the shared bus vs switched links, roundtrip service values, wire-buffer
// edge cases, and a randomized wire round-trip property test.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/net/network.h"
#include "src/rpc/transport.h"
#include "src/rpc/wire.h"
#include "src/sim/stack_pool.h"

namespace rpc {
namespace {

using amber::Micros;
using amber::Millis;
using amber::Time;
using sim::CostModel;

CostModel SimpleNet() {
  CostModel c;
  c.context_switch = 0;
  c.rpc_send_software = 0;
  c.rpc_recv_software = 0;
  c.marshal_base = 0;
  c.marshal_ns_per_byte = 0;
  c.media_access = Micros(100);
  c.propagation = Micros(10);
  c.bandwidth_bits_per_sec = 10e6;
  c.per_fragment_overhead = 0;
  return c;
}

class Harness {
 public:
  explicit Harness(net::Topology topology, CostModel cost = SimpleNet())
      : pool_(64 * 1024) {
    sim::Kernel::Config config;
    config.nodes = 4;
    config.procs_per_node = 2;
    config.cost = cost;
    kernel_ = std::make_unique<sim::Kernel>(config);
    net_ = std::make_unique<net::Network>(kernel_.get(), topology);
    rpc_ = std::make_unique<Transport>(kernel_.get(), net_.get());
  }
  void Go(sim::NodeId node, std::function<void()> fn) {
    void* stack = pool_.Allocate();
    kernel_->Spawn(node, stack, pool_.stack_size(), std::move(fn));
  }
  sim::Kernel& k() { return *kernel_; }
  net::Network& net() { return *net_; }
  Transport& rpc() { return *rpc_; }

 private:
  sim::StackPool pool_;
  std::unique_ptr<sim::Kernel> kernel_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<Transport> rpc_;
};

TEST(TopologyTest, SwitchedLinksDoNotQueueAcrossPairs) {
  // Two disjoint node pairs sending simultaneously: on the shared bus the
  // second transmission queues; on a switch they proceed in parallel.
  auto run = [](net::Topology topology) {
    Harness h(topology);
    const Time a = h.net().Send(0, 1, 1250, 0);
    const Time b = h.net().Send(2, 3, 1250, 0);
    return std::make_pair(a, b);
  };
  const auto [bus_a, bus_b] = run(net::Topology::kSharedBus);
  EXPECT_GT(bus_b, bus_a);  // serialized on the medium
  const auto [sw_a, sw_b] = run(net::Topology::kSwitched);
  EXPECT_EQ(sw_a, sw_b);  // independent links
}

TEST(TopologyTest, SwitchedSameLinkStillSerializes) {
  Harness h(net::Topology::kSwitched);
  const Time a = h.net().Send(0, 1, 1250, 0);
  const Time b = h.net().Send(0, 1, 1250, 0);
  EXPECT_GT(b, a);  // same directional link
}

TEST(TopologyTest, SwitchedDuplexDirectionsIndependent) {
  Harness h(net::Topology::kSwitched);
  const Time a = h.net().Send(0, 1, 1250, 0);
  const Time b = h.net().Send(1, 0, 1250, 0);  // reverse direction
  EXPECT_EQ(a, b);
}

TEST(TransportTest, BulkChargesMarshalOnSender) {
  CostModel cost = SimpleNet();
  cost.marshal_base = Micros(200);
  cost.marshal_ns_per_byte = 100.0;
  Harness h(net::Topology::kSharedBus, cost);
  Time after_charge = -1;
  h.Go(0, [&] {
    h.rpc().SendBulk(1, 10000, nullptr);
    after_charge = h.k().Now();  // sender's vtime includes the marshal
  });
  h.k().Run();
  // marshal(10 KB) = 200 µs + 1 ms: the sender's own time reflects it.
  EXPECT_GE(after_charge, Micros(1200));
}

TEST(TransportTest, RoundtripServiceSideEffectsVisible) {
  Harness h(net::Topology::kSharedBus);
  int service_state = 0;
  h.Go(0, [&] {
    for (int i = 0; i < 3; ++i) {
      h.rpc().Roundtrip(2, 64, [&]() -> int64_t {
        ++service_state;
        return 64;
      });
      EXPECT_EQ(service_state, i + 1);  // reply implies the service ran
    }
  });
  h.k().Run();
  EXPECT_EQ(service_state, 3);
}

TEST(TransportTest, TravelCountsTracked) {
  Harness h(net::Topology::kSharedBus);
  h.Go(0, [&] {
    h.rpc().Travel(1, 100);
    h.rpc().Travel(2, 100);
    EXPECT_EQ(h.k().current()->node, 2);
  });
  h.k().Run();
  EXPECT_EQ(h.rpc().travels(), 2);
}

TEST(WireTest, EmptyBuffer) {
  WireBuffer w;
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.remaining(), 0u);
  EXPECT_EQ(w.Checksum(), WireBuffer().Checksum());
}

TEST(WireTest, UnderrunPanics) {
  WireBuffer w;
  w.PutU32(5);
  w.GetU32();
  EXPECT_DEATH(w.GetU32(), "underrun");
}

TEST(WireTest, RewindReplays) {
  WireBuffer w;
  w.PutI64(-9);
  EXPECT_EQ(w.GetI64(), -9);
  w.Rewind();
  EXPECT_EQ(w.GetI64(), -9);
}

TEST(WireTest, PropertyRandomRoundTrip) {
  amber::Rng rng(0x17E5);
  for (int round = 0; round < 200; ++round) {
    WireBuffer w;
    // Build a random record, remembering the expected values.
    std::vector<uint64_t> u64s;
    std::vector<double> doubles;
    std::vector<std::string> strings;
    const int fields = static_cast<int>(rng.Range(1, 12));
    std::vector<int> shape;
    for (int f = 0; f < fields; ++f) {
      switch (rng.Below(3)) {
        case 0: {
          u64s.push_back(rng.Next());
          w.PutU64(u64s.back());
          shape.push_back(0);
          break;
        }
        case 1: {
          doubles.push_back(rng.NextDouble() * 1e6 - 5e5);
          w.PutDouble(doubles.back());
          shape.push_back(1);
          break;
        }
        default: {
          std::string s;
          const int len = static_cast<int>(rng.Below(40));
          for (int i = 0; i < len; ++i) {
            s.push_back(static_cast<char>('a' + rng.Below(26)));
          }
          strings.push_back(s);
          w.PutString(s);
          shape.push_back(2);
          break;
        }
      }
    }
    size_t iu = 0;
    size_t id = 0;
    size_t is = 0;
    for (int kind : shape) {
      if (kind == 0) {
        ASSERT_EQ(w.GetU64(), u64s[iu++]);
      } else if (kind == 1) {
        ASSERT_EQ(w.GetDouble(), doubles[id++]);
      } else {
        ASSERT_EQ(w.GetString(), strings[is++]);
      }
    }
    ASSERT_EQ(w.remaining(), 0u);
  }
}

TEST(WireTest, NestedVectorWireSize) {
  std::vector<std::vector<uint64_t>> runs{{1, 2, 3}, {}, {4}};
  // 8 (outer) + (8 + 24) + (8 + 0) + (8 + 8).
  EXPECT_EQ(WireSizeOf(runs), 8 + 32 + 8 + 16);
}

}  // namespace
}  // namespace rpc
