// Tests for the Red/Black SOR application: numerical correctness against
// the sequential baseline (bitwise), convergence behaviour, overlap
// equivalence, and parallel speedup shape.

#include "src/apps/sor/sor.h"

#include <gtest/gtest.h>

namespace sor {
namespace {

using amber::Millis;

// A small, fast problem for correctness tests.
Params SmallProblem() {
  Params p;
  p.rows = 18;
  p.cols = 40;
  p.sections = 4;
  p.max_iterations = 12;
  p.tolerance = 0.0;
  p.point_cost = amber::Micros(10);
  return p;
}

sim::CostModel DefaultCost() { return sim::CostModel{}; }

TEST(SorSequentialTest, ConvergesOnSmallGrid) {
  Params p = SmallProblem();
  p.tolerance = 1e-4;
  p.max_iterations = 10000;
  Result r = RunSequentialOn(p, DefaultCost(), /*keep_grid=*/true);
  EXPECT_LT(r.final_delta, 1e-4);
  EXPECT_GT(r.iterations, 10);
  // Physics sanity: temperature decreases monotonically away from the hot
  // top edge along the centre column.
  const int c = p.cols / 2;
  double prev = r.grid[static_cast<size_t>(c)];
  EXPECT_EQ(prev, 100.0);
  for (int row = 1; row < p.rows; ++row) {
    const double v = r.grid[static_cast<size_t>(row) * p.cols + c];
    EXPECT_LE(v, prev + 1e-12) << "row " << row;
    prev = v;
  }
}

TEST(SorSequentialTest, WorkScalesWithGridSize) {
  Params small = SmallProblem();
  Params big = SmallProblem();
  big.rows *= 2;
  big.cols *= 2;
  const Result rs = RunSequentialOn(small, DefaultCost());
  const Result rb = RunSequentialOn(big, DefaultCost());
  // 4× the points → ~4× the time (same iteration count).
  ASSERT_EQ(rs.iterations, rb.iterations);
  const double ratio = static_cast<double>(rb.solve_time) / static_cast<double>(rs.solve_time);
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 4.6);
}

class SorEquivalence : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(SorEquivalence, AmberMatchesSequentialBitwise) {
  const auto [nodes, procs, overlap] = GetParam();
  Params p = SmallProblem();
  p.overlap = overlap;
  const Result seq = RunSequentialOn(p, DefaultCost());
  const Result par = RunAmberOn(nodes, procs, p, DefaultCost());
  EXPECT_EQ(par.iterations, seq.iterations);
  EXPECT_EQ(par.grid_hash, seq.grid_hash)
      << "parallel grid diverged from sequential (nodes=" << nodes << " procs=" << procs
      << " overlap=" << overlap << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SorEquivalence,
    ::testing::Values(std::make_tuple(1, 1, true), std::make_tuple(1, 4, true),
                      std::make_tuple(2, 2, true), std::make_tuple(4, 1, true),
                      std::make_tuple(4, 4, true), std::make_tuple(1, 4, false),
                      std::make_tuple(4, 2, false), std::make_tuple(4, 4, false)),
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) + "N" +
             std::to_string(std::get<1>(info.param)) + "P" +
             (std::get<2>(info.param) ? "ov" : "seq");
    });

TEST(SorConvergenceTest, ParallelStopsAtSameIterationAsSequential) {
  Params p = SmallProblem();
  p.tolerance = 1e-3;
  p.max_iterations = 5000;
  const Result seq = RunSequentialOn(p, DefaultCost());
  const Result par = RunAmberOn(2, 2, p, DefaultCost());
  EXPECT_EQ(par.iterations, seq.iterations);
  EXPECT_EQ(par.grid_hash, seq.grid_hash);
  EXPECT_LT(par.final_delta, 1e-3);
}

TEST(SorSpeedupTest, MoreProcessorsFasterSameNode) {
  Params p = SmallProblem();
  p.rows = 34;
  p.cols = 160;
  p.max_iterations = 20;
  const Result r1 = RunAmberOn(1, 1, p, DefaultCost());
  const Result r4 = RunAmberOn(1, 4, p, DefaultCost());
  EXPECT_EQ(r1.grid_hash, r4.grid_hash);
  const double speedup = static_cast<double>(r1.solve_time) / static_cast<double>(r4.solve_time);
  EXPECT_GT(speedup, 2.0) << "4 CPUs should be much faster than 1";
}

TEST(SorSpeedupTest, MultiNodeBeatsSingleNodeOnLargeGrid) {
  Params p;
  p.rows = 62;
  p.cols = 422;  // half the paper grid
  p.sections = 4;
  p.max_iterations = 10;
  const Result r1 = RunAmberOn(1, 1, p, DefaultCost());
  const Result r4 = RunAmberOn(4, 4, p, DefaultCost());
  EXPECT_EQ(r1.grid_hash, r4.grid_hash);
  // A half-size grid over 10 iterations pays relatively more barrier and
  // startup overhead than the paper's full problem (the Figure 2/3 benches
  // measure that shape); still, 16 CPUs must clearly beat 1.
  const double speedup = static_cast<double>(r1.solve_time) / static_cast<double>(r4.solve_time);
  EXPECT_GT(speedup, 4.0) << "16 processors over 4 nodes should give real speedup";
}

TEST(SorOverlapTest, OverlapBeatsNoOverlapAcrossNodes) {
  // The Figure 2 pair: same configuration, overlap on vs off. Overlap hides
  // edge-exchange latency behind interior computation.
  Params p;
  p.rows = 62;
  p.cols = 422;
  p.sections = 4;
  p.max_iterations = 10;
  p.overlap = true;
  const Result on = RunAmberOn(4, 2, p, DefaultCost());
  p.overlap = false;
  const Result off = RunAmberOn(4, 2, p, DefaultCost());
  EXPECT_EQ(on.grid_hash, off.grid_hash) << "overlap must not change the numerics";
  EXPECT_LT(on.solve_time, off.solve_time) << "overlap should hide communication";
}

TEST(SorTrafficTest, EdgeExchangeUsesOneMessagePerEdgePerPhase) {
  Params p = SmallProblem();
  p.sections = 4;
  p.max_iterations = 8;
  const Result r = RunAmberOn(4, 1, p, DefaultCost());
  // 3 interior boundaries × 2 directions × 2 phases × 8 iterations ≈ 96
  // edge transfers; each is one thread migration out and one back, plus
  // convergence traffic. The point: messages scale with edges, not points.
  EXPECT_GT(r.net_messages, 100);
  EXPECT_LT(r.net_messages, 600);
  EXPECT_LT(r.net_bytes, 2'000'000);
}

TEST(SorDeterminismTest, IdenticalRunsProduceIdenticalResults) {
  Params p = SmallProblem();
  const Result a = RunAmberOn(4, 2, p, DefaultCost());
  const Result b = RunAmberOn(4, 2, p, DefaultCost());
  EXPECT_EQ(a.solve_time, b.solve_time);
  EXPECT_EQ(a.grid_hash, b.grid_hash);
  EXPECT_EQ(a.net_messages, b.net_messages);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
}

TEST(SorConfigTest, SixSectionsOnThreeNodes) {
  // The paper's 3-node/6-node runs used 6 sections.
  Params p = SmallProblem();
  p.cols = 42;
  p.sections = 6;
  const Result seq = RunSequentialOn(p, DefaultCost());
  const Result par = RunAmberOn(3, 2, p, DefaultCost());
  EXPECT_EQ(par.grid_hash, seq.grid_hash);
}

TEST(SorConfigTest, ExplicitThreadsPerSection) {
  Params p = SmallProblem();
  p.threads_per_section = 3;
  const Result seq = RunSequentialOn(p, DefaultCost());
  const Result par = RunAmberOn(2, 2, p, DefaultCost());
  EXPECT_EQ(par.grid_hash, seq.grid_hash);
}

TEST(SorConfigTest, SingleSectionDegeneratesGracefully) {
  Params p = SmallProblem();
  p.sections = 1;
  const Result seq = RunSequentialOn(p, DefaultCost());
  const Result par = RunAmberOn(1, 2, p, DefaultCost());
  EXPECT_EQ(par.grid_hash, seq.grid_hash);
  EXPECT_EQ(par.net_messages, 0) << "one section on one node: no network traffic";
}

}  // namespace
}  // namespace sor
