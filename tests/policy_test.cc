// Tests for the online adaptive placement policy (src/policy): the closed
// loop must recover what the offline advisor predicts on the hotspot
// workload, stay quiet on workloads where migration cannot help (ping-pong
// adversary, balanced SOR), defer to the failure machinery under a fault
// plan, and — the load-bearing contract — leave a run byte-identical when
// disabled.

#include "src/policy/policy.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/apps/sor/sor.h"
#include "src/core/amber.h"
#include "src/fault/fault.h"
#include "src/metrics/metrics.h"
#include "src/prof/profiler.h"
#include "src/trace/trace.h"

namespace amber {
namespace {

Runtime::Config TestConfig(int nodes = 4, int procs = 2) {
  Runtime::Config c;
  c.nodes = nodes;
  c.procs_per_node = procs;
  c.arena_bytes = size_t{256} << 20;
  c.initial_regions_per_node = 4;
  return c;
}

class Counter : public Object {
 public:
  int Bump() {
    Work(kMicrosecond * 50);
    return ++value_;
  }

 private:
  int value_ = 0;
};

class Driver : public Object {
 public:
  int Run(Ref<Counter> c, int rounds, Duration gap) {
    for (int i = 0; i < rounds; ++i) {
      c.Call(&Counter::Bump);
      Work(gap);
    }
    return rounds;
  }
};

// The bench_hotspot workload: a counter born on node 0 (a few local warmup
// calls defend it) that a driver on node 2 then hammers.
Time RunHotspot(policy::PlacementPolicy* policy, prof::Profiler* profiler) {
  Runtime rt(TestConfig());
  if (profiler != nullptr) {
    rt.AddObserver(profiler);
  }
  if (policy != nullptr) {
    policy->AttachTo(rt);
  }
  return rt.Run([] {
    auto counter = New<Counter>();
    auto driver = NewOn<Driver>(2);
    for (int i = 0; i < 4; ++i) {
      counter.Call(&Counter::Bump);
    }
    auto t = StartThread(driver, &Driver::Run, counter, 64, kMicrosecond * 20);
    t.Join();
  });
}

TEST(PolicyHotspotTest, OnlinePolicyRecoversTheAdvisorEstimate) {
  // Off-run under the profiler: static placement, advisor estimate.
  prof::Profiler profiler;
  policy::PlacementPolicy observer;  // default config: disabled
  const Time off_end = RunHotspot(&observer, &profiler);
  const prof::ProfileReport report = profiler.Finalize();
  Time advisor_saving = 0;
  for (const prof::Advice& a : report.advice) {
    if (a.kind == "move") {
      advisor_saving = a.est_saving_ns;  // ranked best-first
      break;
    }
  }
  ASSERT_GT(advisor_saving, 0) << "the advisor no longer flags the hotspot";
  EXPECT_EQ(observer.pulls_granted(), 0);  // disabled: observation only

  // On-run: the policy must pull the counter to its callers...
  policy::PolicyConfig pc;
  pc.enabled = true;
  policy::PlacementPolicy policy(pc);
  const Time on_end = RunHotspot(&policy, nullptr);

  // ...exactly O(1) times (hysteresis: no oscillation)...
  EXPECT_GE(policy.pulls_granted(), 1);
  EXPECT_LE(policy.pulls_granted(), 4);
  EXPECT_EQ(policy.pulls_failed(), 0);

  // ...and recover at least 80% of the predicted win.
  const Time win = off_end - on_end;
  EXPECT_GE(static_cast<double>(win), 0.8 * static_cast<double>(advisor_saving))
      << "online win " << win << " ns vs advisor estimate " << advisor_saving << " ns";
}

TEST(PolicyHotspotTest, EnabledRunsAreSeedDeterministic) {
  auto capture = [] {
    Runtime rt(TestConfig());
    metrics::Registry metrics;
    trace::Tracer tracer;
    rt.SetMetrics(&metrics);
    rt.SetObserver(&tracer);
    policy::PolicyConfig pc;
    pc.enabled = true;
    policy::PlacementPolicy policy(pc);
    policy.AttachTo(rt);
    const Time end = rt.Run([] {
      auto counter = New<Counter>();
      auto driver = NewOn<Driver>(2);
      for (int i = 0; i < 4; ++i) {
        counter.Call(&Counter::Bump);
      }
      auto t = StartThread(driver, &Driver::Run, counter, 64, kMicrosecond * 20);
      t.Join();
    });
    std::ostringstream out;
    out << end << '\x1e';
    metrics.WriteJson(out);
    out << '\x1e';
    tracer.WriteText(out);
    return out.str();
  };
  const std::string run1 = capture();
  const std::string run2 = capture();
  EXPECT_EQ(run1, run2) << "policy decisions must be a pure function of the seed";
}

TEST(PolicyOscillationTest, PingPongWorkloadMigratesO1Times) {
  // The adversarial workload for any reactive placer: one hot object called
  // alternately from two nodes. A naive policy chases the last caller and
  // ping-pongs the object forever; hysteresis (dominance ratio + cooldown +
  // residency) must hold total migrations to O(1) — independent of the
  // round count.
  policy::PolicyConfig pc;
  pc.enabled = true;
  policy::PlacementPolicy policy(pc);
  Runtime rt(TestConfig());
  policy.AttachTo(rt);
  rt.Run([] {
    auto counter = New<Counter>();
    auto a = NewOn<Driver>(1);
    auto b = NewOn<Driver>(2);
    // Slightly different gaps so the two call streams interleave rather
    // than phase-lock.
    auto ta = StartThread(a, &Driver::Run, counter, 100, kMicrosecond * 30);
    auto tb = StartThread(b, &Driver::Run, counter, 100, kMicrosecond * 37);
    ta.Join();
    tb.Join();
  });
  EXPECT_LE(policy.pulls_granted(), 3)
      << "ping-pong: the policy oscillated (" << policy.pulls_granted() << " migrations)";
}

TEST(PolicyChaosTest, StaysStableUnderLossyPlanAndPiggybacksOnHeartbeats) {
  auto capture = [](int64_t* migrations, int64_t* summaries) {
    fault::FaultPlan plan;
    plan.seed = 42;
    fault::LinkRule rule;  // the standard lossy plan
    rule.drop = 0.05;
    rule.duplicate = 0.02;
    rule.delay = 0.05;
    rule.delay_min = Micros(100);
    rule.delay_max = Millis(1);
    plan.links.push_back(rule);

    Runtime rt(TestConfig());
    fault::Injector injector(plan);
    metrics::Registry metrics;
    trace::Tracer tracer;
    rt.SetMetrics(&metrics);
    rt.SetObserver(&tracer);
    rt.SetFaultInjector(&injector);  // creates the membership service...
    rt.SetFailureHandler([](const FailureEvent&) { return FailureAction::kRetry; });
    policy::PolicyConfig pc;
    pc.enabled = true;
    policy::PlacementPolicy policy(pc);
    policy.AttachTo(rt);  // ...so the summary piggybacks on its heartbeats
    const Time end = rt.Run([] {
      auto counter = New<Counter>();
      auto driver = NewOn<Driver>(2);
      for (int i = 0; i < 4; ++i) {
        counter.Call(&Counter::Bump);
      }
      auto t = StartThread(driver, &Driver::Run, counter, 32, kMicrosecond * 40);
      t.Join();
      Work(Millis(10));  // a few more lease windows of heartbeat traffic
    });
    if (migrations != nullptr) {
      *migrations = policy.pulls_granted();
    }
    if (summaries != nullptr) {
      *summaries = policy.summaries_received();
    }
    std::ostringstream out;
    out << end << '\x1e';
    metrics.WriteJson(out);
    out << '\x1e';
    tracer.WriteText(out);
    return out.str();
  };

  int64_t migrations = 0;
  int64_t summaries = 0;
  const std::string run1 = capture(&migrations, &summaries);
  EXPECT_GT(summaries, 0) << "no summaries arrived — the heartbeat piggyback is dead";
  EXPECT_LE(migrations, 4) << "lossy links must not destabilize placement";
  const std::string run2 = capture(nullptr, nullptr);
  EXPECT_EQ(run1, run2);  // same seed, same failure+placement history
}

TEST(PolicyDisabledTest, AttachedButDisabledPolicyIsByteInert) {
  auto workload = [] {
    auto counter = New<Counter>();
    auto driver = NewOn<Driver>(2);
    for (int i = 0; i < 4; ++i) {
      counter.Call(&Counter::Bump);
    }
    auto t = StartThread(driver, &Driver::Run, counter, 32, kMicrosecond * 20);
    t.Join();
  };
  auto capture = [&](policy::PlacementPolicy* policy) {
    Runtime rt(TestConfig());
    trace::Tracer tracer;
    rt.SetObserver(&tracer);
    if (policy != nullptr) {
      policy->AttachTo(rt);
    }
    const Time end = rt.Run(workload);
    std::ostringstream out;
    out << end << '\x1e';
    tracer.WriteText(out);
    return out.str();
  };

  const std::string bare = capture(nullptr);
  policy::PlacementPolicy disabled;  // default config: enabled = false
  const std::string watched = capture(&disabled);
  // The whole observe-only contract: virtual end time and the full event
  // trace are byte-identical with the disabled policy attached.
  EXPECT_EQ(bare, watched);
  EXPECT_EQ(disabled.pulls_granted(), 0);
  EXPECT_EQ(disabled.summaries_sent(), 0);  // no gossip either

  // ...yet observation ran: heat accumulated and exports (satellite 1).
  metrics::Registry registry;
  disabled.PublishMetrics(&registry);
  const auto* heat = registry.FindHistograms("policy.heat");
  ASSERT_NE(heat, nullptr);
  EXPECT_FALSE(heat->empty());
  std::ostringstream table;
  disabled.WriteHeatSummary(table);
  EXPECT_NE(table.str().find("home=node"), std::string::npos);
}

TEST(PolicySorTest, BalancedSmallGridDoesNotRegress) {
  // Red/Black SOR spreads its sections one-per-node: there is no placement
  // win to find, so the policy's job is to do no harm — bounded migrations
  // and no virtual-time regression.
  sor::Params params;
  params.rows = 62;
  params.cols = 210;
  params.sections = 4;
  params.max_iterations = 10;
  params.tolerance = 0.0;

  Time off_end = 0;
  {
    Runtime rt(TestConfig(4, 2));
    off_end = sor::RunAmber(rt, params).solve_time;
  }

  policy::PolicyConfig pc;
  pc.enabled = true;
  policy::PlacementPolicy policy(pc);
  Runtime rt(TestConfig(4, 2));
  policy.AttachTo(rt);
  const Time on_end = sor::RunAmber(rt, params).solve_time;

  EXPECT_LE(policy.pulls_granted(), 4)
      << "a balanced grid gave the policy nothing to move, yet it moved things";
  // The summary datagrams share the modelled network, so allow a sliver of
  // contention — but a real regression fails.
  EXPECT_LE(on_end, off_end + off_end / 50)
      << "policy-on solve " << on_end << " ns vs policy-off " << off_end << " ns";
}

}  // namespace
}  // namespace amber
