"""Unit tests for tools/bench_compare.py — the CI baseline gate.

Each test builds a baseline/current pair of BENCH_<name>.json documents in a
temp directory and runs the real tool as a subprocess, asserting on exit
status and output: the 2% virtual-time gate, direction-aware wall-gauge
gating, ratchet-candidate notes, --refresh rewriting exactly the stale
baselines, and the sweep-curve comparison (which gates even under
--no-wall-gate because the curve derives from virtual time).

Run directly (python3 tests/bench_compare_test.py) or via CTest.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir,
                    "tools", "bench_compare.py")


def bench_doc(vt_ns, gauges=None):
    fams = {}
    for key, value in (gauges or {}).items():
        name, _, label = key.partition("/")
        fams.setdefault(name, {})[label or "total"] = value
    return {"bench": "x", "config": {}, "host": {}, "virtual_time_ns": vt_ns,
            "metrics": {"counters": {}, "gauges": fams, "histograms": {}}}


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.base_dir = os.path.join(self.dir.name, "baseline")
        self.cur_dir = os.path.join(self.dir.name, "current")
        os.makedirs(self.base_dir)
        os.makedirs(self.cur_dir)

    def tearDown(self):
        self.dir.cleanup()

    def write(self, directory, name, doc):
        path = os.path.join(directory, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_tool(self, *args):
        proc = subprocess.run(
            [sys.executable, TOOL, "--baseline", self.base_dir, "--current",
             self.cur_dir, *args],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr

    # --- virtual-time gate ---------------------------------------------------

    def test_within_default_tolerance_passes(self):
        self.write(self.base_dir, "a", bench_doc(100_000_000))
        self.write(self.cur_dir, "a", bench_doc(101_000_000))  # +1% < 2%
        code, out = self.run_tool("a")
        self.assertEqual(code, 0, out)
        self.assertIn("+1.00%", out)

    def test_regression_past_tolerance_fails(self):
        self.write(self.base_dir, "a", bench_doc(100_000_000))
        self.write(self.cur_dir, "a", bench_doc(103_000_000))  # +3% > 2%
        code, out = self.run_tool("a")
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)

    def test_per_bench_tolerance_override(self):
        self.write(self.base_dir, "a", bench_doc(100_000_000))
        self.write(self.cur_dir, "a", bench_doc(103_000_000))
        code, out = self.run_tool("--tolerance", "a=5.0", "a")
        self.assertEqual(code, 0, out)

    def test_missing_current_file_fails(self):
        self.write(self.base_dir, "a", bench_doc(100_000_000))
        code, out = self.run_tool("a")
        self.assertEqual(code, 1, out)
        self.assertIn("cannot load", out)

    # --- direction-aware wall gauges -----------------------------------------

    def test_wall_rate_drop_fails_rise_ratchets(self):
        gauges = {"scale.wall.events_per_sec": 1000.0}
        self.write(self.base_dir, "a", bench_doc(100, gauges))
        self.write(self.cur_dir, "a",
                   bench_doc(100, {"scale.wall.events_per_sec": 700.0}))  # -30%
        code, out = self.run_tool("a")
        self.assertEqual(code, 1, out)
        self.assertIn("higher-is-better", out)

        self.write(self.cur_dir, "a",
                   bench_doc(100, {"scale.wall.events_per_sec": 1500.0}))  # +50%
        code, out = self.run_tool("a")
        self.assertEqual(code, 0, out)
        self.assertIn("ratchet candidate", out)

    def test_wall_cost_rise_fails(self):
        self.write(self.base_dir, "a", bench_doc(100, {"scale.wall.p99_ns": 100.0}))
        self.write(self.cur_dir, "a", bench_doc(100, {"scale.wall.p99_ns": 200.0}))
        code, out = self.run_tool("a")
        self.assertEqual(code, 1, out)
        self.assertIn("lower-is-better", out)

    def test_no_wall_gate_reports_but_passes(self):
        self.write(self.base_dir, "a", bench_doc(100, {"scale.wall.p99_ns": 100.0}))
        self.write(self.cur_dir, "a", bench_doc(100, {"scale.wall.p99_ns": 200.0}))
        code, out = self.run_tool("--no-wall-gate", "a")
        self.assertEqual(code, 0, out)
        self.assertIn("WORSE", out)

    def test_metric_rule_overrides_band(self):
        self.write(self.base_dir, "a", bench_doc(100, {"scale.wall.p99_ns": 100.0}))
        self.write(self.cur_dir, "a", bench_doc(100, {"scale.wall.p99_ns": 200.0}))
        code, out = self.run_tool("--metric", "scale.wall.p99_ns=lower:150", "a")
        self.assertEqual(code, 0, out)

    # --- ratchet notes and --refresh -----------------------------------------

    def test_refresh_rewrites_exactly_the_stale_baselines(self):
        self.write(self.base_dir, "fast", bench_doc(100_000_000))
        cur_fast = bench_doc(80_000_000)  # -20%: stale baseline
        self.write(self.cur_dir, "fast", cur_fast)
        steady_base = bench_doc(50_000_000)
        self.write(self.base_dir, "steady", steady_base)
        self.write(self.cur_dir, "steady", bench_doc(50_000_000))

        code, out = self.run_tool("fast", "steady")
        self.assertEqual(code, 0, out)
        self.assertIn("ratchet candidate", out)
        self.assertIn("--refresh", out)  # prints the exact command

        code, out = self.run_tool("--refresh", "fast", "steady")
        self.assertEqual(code, 0, out)
        self.assertIn("refreshed", out)
        with open(os.path.join(self.base_dir, "BENCH_fast.json")) as f:
            self.assertEqual(json.load(f), cur_fast)  # rewritten from current
        with open(os.path.join(self.base_dir, "BENCH_steady.json")) as f:
            self.assertEqual(json.load(f), steady_base)  # untouched

    # --- sweep-curve comparison ----------------------------------------------

    def sweep_gauges(self, p99_r1=200.0, thr_r1=1000.0, rej_r1=0.0):
        return {
            "sweep.offered_per_sec/r0": 500.0, "sweep.offered_per_sec/r1": 1000.0,
            "sweep.throughput_per_sec/r0": 500.0, "sweep.throughput_per_sec/r1": thr_r1,
            "sweep.p99_us/r0": 100.0, "sweep.p99_us/r1": p99_r1,
            "sweep.rejection_pct/r0": 0.0, "sweep.rejection_pct/r1": rej_r1,
        }

    def test_sweep_identical_curve_passes_quietly(self):
        self.write(self.base_dir, "s", bench_doc(100, self.sweep_gauges()))
        self.write(self.cur_dir, "s", bench_doc(100, self.sweep_gauges()))
        code, out = self.run_tool("--no-wall-gate", "s")
        self.assertEqual(code, 0, out)
        self.assertNotIn("sweep:", out)

    def test_sweep_p99_regression_fails_even_without_wall_gate(self):
        self.write(self.base_dir, "s", bench_doc(100, self.sweep_gauges()))
        self.write(self.cur_dir, "s",
                   bench_doc(100, self.sweep_gauges(p99_r1=300.0)))  # +50%
        code, out = self.run_tool("--no-wall-gate", "s")
        self.assertEqual(code, 1, out)
        self.assertIn("sweep gauge sweep.p99_us/r1", out)

    def test_sweep_throughput_drop_fails_improvement_ratchets(self):
        self.write(self.base_dir, "s", bench_doc(100, self.sweep_gauges()))
        self.write(self.cur_dir, "s",
                   bench_doc(100, self.sweep_gauges(thr_r1=500.0)))  # -50%
        code, out = self.run_tool("--no-wall-gate", "s")
        self.assertEqual(code, 1, out)
        self.assertIn("higher-is-better", out)

        self.write(self.cur_dir, "s",
                   bench_doc(100, self.sweep_gauges(p99_r1=100.0)))  # p99 halves
        code, out = self.run_tool("--no-wall-gate", "s")
        self.assertEqual(code, 0, out)
        self.assertIn("ratchet candidate", out)

    def test_sweep_rejection_off_zero_fails(self):
        self.write(self.base_dir, "s", bench_doc(100, self.sweep_gauges()))
        self.write(self.cur_dir, "s",
                   bench_doc(100, self.sweep_gauges(rej_r1=3.0)))
        code, out = self.run_tool("--no-wall-gate", "s")
        self.assertEqual(code, 1, out)
        self.assertIn("vs baseline 0", out)


if __name__ == "__main__":
    unittest.main()
