// Tests for the machine-context layer: correctness of switching, argument
// passing, stack isolation, floating-point state, and deep nesting.

#include "src/sim/context.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/sim/stack_pool.h"

namespace sim {
namespace {

struct PingPong {
  Context main_ctx;
  Context fiber_ctx;
  std::vector<int> trace;
};

void PingPongEntry(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  pp->trace.push_back(1);
  Context::Switch(&pp->fiber_ctx, &pp->main_ctx);
  pp->trace.push_back(3);
  Context::Switch(&pp->fiber_ctx, &pp->main_ctx);
  ADD_FAILURE() << "resumed dead fiber";
}

TEST(ContextTest, PingPongOrdering) {
  StackPool pool;
  PingPong pp;
  void* stack = pool.Allocate();
  pp.fiber_ctx.Init(stack, pool.stack_size(), &PingPongEntry, &pp);

  pp.trace.push_back(0);
  Context::Switch(&pp.main_ctx, &pp.fiber_ctx);
  pp.trace.push_back(2);
  Context::Switch(&pp.main_ctx, &pp.fiber_ctx);
  pp.trace.push_back(4);

  EXPECT_EQ(pp.trace, (std::vector<int>{0, 1, 2, 3, 4}));
  pool.Free(stack);
}

struct ArgCheck {
  Context main_ctx;
  Context fiber_ctx;
  void* seen_arg = nullptr;
};

void ArgEntry(void* arg) {
  auto* ac = static_cast<ArgCheck*>(arg);
  ac->seen_arg = arg;
  Context::Switch(&ac->fiber_ctx, &ac->main_ctx);
}

TEST(ContextTest, ArgumentReachesEntry) {
  StackPool pool;
  ArgCheck ac;
  void* stack = pool.Allocate();
  ac.fiber_ctx.Init(stack, pool.stack_size(), &ArgEntry, &ac);
  Context::Switch(&ac.main_ctx, &ac.fiber_ctx);
  EXPECT_EQ(ac.seen_arg, &ac);
  pool.Free(stack);
}

struct Counters {
  Context main_ctx;
  std::vector<Context*> fibers;
  std::vector<int> counts;
  int rounds = 0;
};
Counters* g_counters = nullptr;

void CountingEntry(void* arg) {
  const int index = static_cast<int>(reinterpret_cast<intptr_t>(arg));
  // Local state must survive across switches — this is the whole point of a
  // private stack per fiber.
  int local = 0;
  for (int r = 0; r < g_counters->rounds; ++r) {
    ++local;
    g_counters->counts[index] = local;
    Context::Switch(g_counters->fibers[index], &g_counters->main_ctx);
  }
  Context::Switch(g_counters->fibers[index], &g_counters->main_ctx);
}

TEST(ContextTest, ManyFibersKeepPrivateStackState) {
  constexpr int kFibers = 16;
  constexpr int kRounds = 50;
  StackPool pool(64 * 1024);
  Counters counters;
  counters.rounds = kRounds;
  counters.counts.assign(kFibers, 0);
  g_counters = &counters;

  std::vector<void*> stacks;
  std::vector<std::unique_ptr<Context>> ctxs;
  for (int i = 0; i < kFibers; ++i) {
    ctxs.push_back(std::make_unique<Context>());
    counters.fibers.push_back(ctxs.back().get());
    stacks.push_back(pool.Allocate());
    ctxs.back()->Init(stacks.back(), pool.stack_size(), &CountingEntry,
                      reinterpret_cast<void*>(static_cast<intptr_t>(i)));
  }
  for (int r = 0; r < kRounds; ++r) {
    for (int i = 0; i < kFibers; ++i) {
      Context::Switch(&counters.main_ctx, counters.fibers[i]);
      EXPECT_EQ(counters.counts[i], r + 1);
    }
  }
  for (int i = 0; i < kFibers; ++i) {
    Context::Switch(&counters.main_ctx, counters.fibers[i]);  // let each finish
    pool.Free(stacks[i]);
  }
  g_counters = nullptr;
}

struct FpCheck {
  Context main_ctx;
  Context fiber_ctx;
  double result = 0.0;
};

void FpEntry(void* arg) {
  auto* fc = static_cast<FpCheck*>(arg);
  // Exercises SSE math across a switch boundary: the compiler may keep
  // values in xmm registers which are caller-saved — a cooperative switch
  // must still produce correct results because it happens at a call.
  double acc = 1.0;
  for (int i = 1; i <= 10; ++i) {
    acc = acc * 1.5 + static_cast<double>(i);
    Context::Switch(&fc->fiber_ctx, &fc->main_ctx);
  }
  fc->result = acc;
  Context::Switch(&fc->fiber_ctx, &fc->main_ctx);
}

TEST(ContextTest, FloatingPointSurvivesSwitches) {
  StackPool pool;
  FpCheck fc;
  void* stack = pool.Allocate();
  fc.fiber_ctx.Init(stack, pool.stack_size(), &FpEntry, &fc);
  for (int i = 0; i < 11; ++i) {
    Context::Switch(&fc.main_ctx, &fc.fiber_ctx);
  }
  double expect = 1.0;
  for (int i = 1; i <= 10; ++i) {
    expect = expect * 1.5 + static_cast<double>(i);
  }
  EXPECT_DOUBLE_EQ(fc.result, expect);
  pool.Free(stack);
}

struct DeepCall {
  Context main_ctx;
  Context fiber_ctx;
  int max_depth = 0;
};

int Recurse(DeepCall* dc, int depth) {
  volatile char pad[512];  // consume real stack
  pad[0] = static_cast<char>(depth);
  if (depth == 0) {
    dc->max_depth = 1;
    Context::Switch(&dc->fiber_ctx, &dc->main_ctx);
    return static_cast<int>(pad[0]);
  }
  const int r = Recurse(dc, depth - 1) + 1;
  dc->max_depth = std::max(dc->max_depth, r);
  return r;
}

void DeepEntry(void* arg) {
  auto* dc = static_cast<DeepCall*>(arg);
  Recurse(dc, 100);  // ~50 KB of frames on a 256 KB stack
  Context::Switch(&dc->fiber_ctx, &dc->main_ctx);
}

TEST(ContextTest, SwitchFromDeepCallStack) {
  StackPool pool;
  DeepCall dc;
  void* stack = pool.Allocate();
  dc.fiber_ctx.Init(stack, pool.stack_size(), &DeepEntry, &dc);
  Context::Switch(&dc.main_ctx, &dc.fiber_ctx);  // suspended at depth 100
  EXPECT_EQ(dc.max_depth, 1);
  Context::Switch(&dc.main_ctx, &dc.fiber_ctx);  // unwind and finish
  EXPECT_EQ(dc.max_depth, 100);
  pool.Free(stack);
}

TEST(StackPoolTest, ReusesFreedStacks) {
  StackPool pool(16 * 1024);
  void* a = pool.Allocate();
  pool.Free(a);
  void* b = pool.Allocate();
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.outstanding(), 1u);
  pool.Free(b);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(StackPoolTest, StacksAreWritableOverFullExtent) {
  StackPool pool(32 * 1024);
  void* a = pool.Allocate();
  std::memset(a, 0xab, pool.stack_size());
  EXPECT_EQ(static_cast<unsigned char*>(a)[0], 0xab);
  EXPECT_EQ(static_cast<unsigned char*>(a)[pool.stack_size() - 1], 0xab);
  pool.Free(a);
}

}  // namespace
}  // namespace sim
