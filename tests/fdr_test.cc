// Tests for the flight data recorder (src/fdr): ring wraparound
// accounting, deterministic dumps, the panic-triggered black box (a real
// death test — the dump is written by the dying child process and then
// analyzed by the parent), and the observer-only contract (recorder
// attached vs. detached changes no virtual time).

#include "src/fdr/fdr.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/apps/fdr/fdr_report.h"
#include "src/core/amber.h"
#include "src/core/sync.h"
#include "src/fault/fault.h"
#include "src/rpc/transport.h"
#include "src/metrics/metrics.h"

namespace amber {
namespace {

Runtime::Config TestConfig(int nodes = 3, int procs = 2) {
  Runtime::Config c;
  c.nodes = nodes;
  c.procs_per_node = procs;
  c.arena_bytes = size_t{256} << 20;
  c.initial_regions_per_node = 4;
  return c;
}

class Counter : public Object {
 public:
  int Add(int d) {
    Work(kMicrosecond * 20);
    value_ += d;
    return value_;
  }

 private:
  int value_ = 0;
};

// The crash scenario's local object: a lock that the dying thread holds
// (and a victim waits on) at the moment of death, plus a thread stuck on a
// cross-partition move (its reliable roundtrip is in flight at death).
class Holder : public Object {
 public:
  void HoldAndDie() {
    lock_.Acquire();
    Work(Millis(80));  // long enough for the partition to produce suspicion
    AMBER_CHECK(false) << "injected black-box crash";
  }
  void BlockOnLock() {
    Work(Millis(1));  // lose the race for the lock deterministically
    lock_.Acquire();
    lock_.Release();
  }
  void MoveBack(Ref<Counter> remote) {
    Work(Millis(31));  // start after the partition cuts node 2 off
    MoveTo(remote, 0);  // control roundtrip to the unreachable owner
  }

 private:
  Lock lock_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

fdrtool::Json ParseDump(const std::string& text) {
  fdrtool::Json dump;
  std::string error;
  EXPECT_TRUE(fdrtool::ParseJson(text, &dump, &error)) << error;
  return dump;
}

// --- Ring buffer -------------------------------------------------------------

TEST(FdrRingTest, WraparoundCountsDropsAndKeepsLatestWindow) {
  fdr::Recorder rec({.name = "wrap", .ring_capacity = 4});
  for (int i = 0; i < 10; ++i) {
    rec.OnThreadCreate(/*when=*/i * 100, /*node=*/0, /*thread=*/static_cast<ThreadId>(i + 1),
                       "t" + std::to_string(i), /*parent=*/0);
  }
  EXPECT_EQ(rec.recorded(), 10);
  EXPECT_EQ(rec.dropped(), 6);

  std::ostringstream out;
  rec.WriteDump(out, "explicit", "");  // no live runtime: event-only dump
  const fdrtool::Json dump = ParseDump(out.str());
  const fdrtool::Json* events = dump.Get("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->arr.size(), 4u) << "ring must retain exactly capacity records";
  // The retained window is the *last* K appends, merged in order.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events->arr[i].Int("seq"), static_cast<int64_t>(6 + i));
    EXPECT_EQ(events->arr[i].Int("thread"), static_cast<int64_t>(7 + i));
  }
  EXPECT_EQ(dump.Int("recorded"), 10);
  EXPECT_EQ(dump.Int("dropped"), 6);
}

TEST(FdrRingTest, PublishMetricsEmitsDeltas) {
  fdr::Recorder rec({.name = "m", .ring_capacity = 2});
  for (int i = 0; i < 5; ++i) {
    rec.OnThreadExit(i, 0, 1);
  }
  metrics::Registry registry;
  rec.PublishMetrics(&registry);
  EXPECT_EQ(registry.CounterTotal("fdr.recorded"), 5);
  EXPECT_EQ(registry.CounterTotal("fdr.dropped"), 3);
  rec.OnThreadExit(5, 0, 1);
  rec.PublishMetrics(&registry);  // second publication adds only the delta
  EXPECT_EQ(registry.CounterTotal("fdr.recorded"), 6);
  EXPECT_EQ(registry.CounterTotal("fdr.dropped"), 4);
}

// --- Determinism -------------------------------------------------------------

// One deterministic mini-chaos run: lossy links, cross-node calls, lock
// contention. Returns (virtual end time, full dump text).
std::pair<Time, std::string> RunChaos(bool attach_recorder) {
  Runtime rt(TestConfig());
  fault::FaultPlan plan;
  plan.seed = 7;
  fault::LinkRule rule;
  rule.drop = 0.05;
  rule.delay = 0.05;
  rule.delay_min = Micros(50);
  rule.delay_max = Micros(500);
  plan.links.push_back(rule);
  fault::Injector injector(plan);
  rt.SetFaultInjector(&injector);
  rt.SetFailureHandler([](const FailureEvent&) { return FailureAction::kRetry; });
  fdr::Recorder rec({.name = "det", .ring_capacity = 512});
  if (attach_recorder) {
    rec.AttachTo(rt);
  }
  const Time end = rt.Run([] {
    auto c = New<Counter>();
    MoveTo(c, 1);
    auto t = StartThread(c, &Counter::Add, 5);
    for (int i = 0; i < 3; ++i) {
      c.Call(&Counter::Add, 1);
      Work(Millis(5));
    }
    t.Join();
  });
  std::string dump;
  if (attach_recorder) {
    std::ostringstream out;
    rec.WriteDump(out, "explicit", "");
    dump = out.str();
  }
  return {end, dump};
}

TEST(FdrDumpTest, ByteIdenticalAcrossSameSeedRuns) {
  const auto [end1, dump1] = RunChaos(true);
  const auto [end2, dump2] = RunChaos(true);
  EXPECT_EQ(end1, end2);
  ASSERT_FALSE(dump1.empty());
  EXPECT_EQ(dump1, dump2) << "same plan + seed must dump byte-identical black boxes";
}

TEST(FdrDumpTest, RecorderIsObserverOnly) {
  const auto [end_on, dump] = RunChaos(true);
  const auto [end_off, none] = RunChaos(false);
  EXPECT_EQ(end_on, end_off) << "attaching the recorder must not change virtual time";
  EXPECT_TRUE(none.empty());
}

TEST(FdrDumpTest, ExplicitDumpViaRuntime) {
  Runtime rt(TestConfig(2, 2));
  fdr::Recorder rec({.name = "explicit"});
  rec.AttachTo(rt);
  rt.Run([] {
    auto c = New<Counter>();
    MoveTo(c, 1);
    c.Call(&Counter::Add, 1);
  });
  const std::string path = rt.DumpBlackBox("FDR_explicit_test.json");
  ASSERT_EQ(path, "FDR_explicit_test.json");
  const fdrtool::Json dump = ParseDump(ReadFile(path));
  EXPECT_EQ(dump.Str("reason"), "explicit");
  EXPECT_GT(dump.Int("recorded"), 0);
  // Runtime was alive at dump time: the kernel fiber snapshot is present.
  const fdrtool::Json* fibers = dump.Get("fibers");
  ASSERT_NE(fibers, nullptr);
  EXPECT_FALSE(fibers->arr.empty());
  // The moved Counter's descriptor chain names node 1 as home.
  const fdrtool::Json* objects = dump.Get("objects");
  ASSERT_NE(objects, nullptr);
  bool found_resident = false;
  for (const fdrtool::Json& o : objects->arr) {
    const fdrtool::Json* chain = o.Get("chain");
    if (chain != nullptr && chain->arr.size() == 2 && chain->arr[1].str == "res") {
      found_resident = true;
    }
  }
  EXPECT_TRUE(found_resident) << "expected an object resident on node 1 in " << ReadFile(path);
  std::remove(path.c_str());
}

// --- The black box itself ----------------------------------------------------

// Runs the fatal chaos scenario: partition 0<->2 breeds mutual suspicion, a
// thread dies on a failed AMBER_CHECK while holding a lock another thread
// waits on, and a third thread's move-control roundtrip to the partitioned
// owner is still in flight (a long first-attempt timeout keeps it pending
// past the moment of death). Never returns.
void RunFatalScenario() {
  // Four processors per node: the rpc-waiter thread must dispatch without
  // queue delay so its move lands after the partition (30ms) but before
  // node 0 suspects node 2 (~50ms); otherwise the control roundtrip is
  // short-circuited by suspicion and never appears in flight.
  Runtime rt(TestConfig(3, 4));
  fault::FaultPlan plan;
  fault::Partition part;
  part.a = 0;
  part.b = 2;
  part.from = Millis(30);
  plan.partitions.push_back(part);
  fault::Injector injector(plan);
  rt.SetFaultInjector(&injector);
  rpc::RetryPolicy slow_retry;
  slow_retry.timeout = Millis(500);
  slow_retry.timeout_cap = Millis(500);
  rt.transport().SetRetryPolicy(slow_retry);
  fdr::Recorder rec({.name = "blackbox"});
  rec.AttachTo(rt);
  rt.Run([] {
    auto remote = New<Counter>();
    MoveTo(remote, 2);  // home the counter on node 2 before the partition
    auto h = New<Holder>();
    StartThreadNamed("holder-dies", 0, h, &Holder::HoldAndDie);
    StartThreadNamed("lock-victim", 0, h, &Holder::BlockOnLock);
    StartThreadNamed("rpc-waiter", 0, h, &Holder::MoveBack, remote);
    Work(Millis(200));
  });
}

TEST(FdrDeathTest, PanicWritesBlackBoxNamingCulprits) {
  std::remove("FDR_blackbox.json");
  // The child prints the panic, flushes the dump, announces its path, and
  // aborts; the file lands in the shared cwd for the parent to dissect.
  EXPECT_DEATH(RunFatalScenario(), "black box: FDR_blackbox\\.json");

  const std::string text = ReadFile("FDR_blackbox.json");
  ASSERT_FALSE(text.empty()) << "dying child must leave FDR_blackbox.json behind";
  const fdrtool::Json dump = ParseDump(text);
  EXPECT_EQ(dump.Str("reason"), "panic");
  EXPECT_NE(dump.Str("detail").find("injected black-box crash"), std::string::npos);

  // The dying thread is identified by id and name: still running, and
  // holding the contended lock.
  const int64_t dying = dump.Int("dying_thread");
  ASSERT_NE(dying, 0);
  const fdrtool::Json* threads = dump.Get("threads");
  ASSERT_NE(threads, nullptr);
  const fdrtool::Json* dt = nullptr;
  for (const fdrtool::Json& t : threads->arr) {
    if (t.Int("thread") == dying) {
      dt = &t;
    }
  }
  ASSERT_NE(dt, nullptr);
  EXPECT_EQ(dt->Str("name"), "holder-dies");
  EXPECT_EQ(dt->Str("status"), "running");
  const fdrtool::Json* held = dt->Get("held_locks");
  ASSERT_NE(held, nullptr);
  ASSERT_EQ(held->arr.size(), 1u) << "the dying thread held the lock";
  const int64_t lock_id = static_cast<int64_t>(held->arr[0].num);

  // The victim is recorded blocked on exactly that lock.
  const fdrtool::Json* locks = dump.Get("locks");
  ASSERT_NE(locks, nullptr);
  bool victim_waits = false;
  for (const fdrtool::Json& l : locks->arr) {
    if (l.Int("lock") == lock_id && l.Int("holder") == dying) {
      victim_waits = !l.Get("waiters")->arr.empty();
    }
  }
  EXPECT_TRUE(victim_waits) << "lock table must show the blocked victim";

  // The move-control roundtrip to partitioned node 2 is in flight.
  const fdrtool::Json* rpcs = dump.Get("rpcs_in_flight");
  ASSERT_NE(rpcs, nullptr);
  bool move_rpc = false;
  for (const fdrtool::Json& r : rpcs->arr) {
    if (r.Int("src") == 0 && r.Int("dst") == 2) {
      move_rpc = true;
    }
  }
  EXPECT_TRUE(move_rpc) << "expected the move-control roundtrip in rpcs_in_flight";

  // The partition produced mutual suspicion between nodes 0 and 2.
  const fdrtool::Json* suspicion = dump.Get("suspicion");
  ASSERT_NE(suspicion, nullptr);
  bool zero_suspects_two = false;
  for (const fdrtool::Json& v : suspicion->arr) {
    if (v.Int("viewer") == 0) {
      for (const fdrtool::Json& s : v.Get("suspects")->arr) {
        if (static_cast<int64_t>(s.num) == 2) {
          zero_suspects_two = true;
        }
      }
    }
  }
  EXPECT_TRUE(zero_suspects_two) << "node 0 should suspect partitioned node 2";

  // The analyzer report names all of it.
  std::ostringstream report;
  fdrtool::RenderReport(dump, report);
  const std::string r = report.str();
  EXPECT_NE(r.find("holder-dies"), std::string::npos);
  EXPECT_NE(r.find("holding lock"), std::string::npos);
  EXPECT_NE(r.find("waiting:"), std::string::npos) << "lock section must list the victim:\n" << r;
  EXPECT_NE(r.find("RPCs in flight"), std::string::npos);
  EXPECT_NE(r.find("suspects"), std::string::npos);
  EXPECT_NE(r.find("discrepancy"), std::string::npos)
      << "suspected-but-alive node 2 must be flagged:\n" << r;
  // Deliberately left on disk: CI's flight-recorder smoke renders this dump
  // with the amber-fdr CLI, and the artifact step archives it on failure.
}

TEST(FdrDeathTest, PanicDumpIsDeterministic) {
  // Two same-seed fatal children must leave byte-identical black boxes.
  std::remove("FDR_blackbox.json");
  EXPECT_DEATH(RunFatalScenario(), "black box: FDR_blackbox\\.json");
  const std::string first = ReadFile("FDR_blackbox.json");
  std::remove("FDR_blackbox.json");
  EXPECT_DEATH(RunFatalScenario(), "black box: FDR_blackbox\\.json");
  const std::string second = ReadFile("FDR_blackbox.json");
  std::remove("FDR_blackbox.json");
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace amber
