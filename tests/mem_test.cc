// Tests for the global address space, region server, and segment allocator —
// including property tests on the paper's §3.1/§3.2 invariants.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "src/base/rng.h"
#include "src/mem/address_space.h"
#include "src/mem/region_server.h"
#include "src/mem/segment_alloc.h"

namespace mem {
namespace {

TEST(AddressSpaceTest, RegionGeometry) {
  GlobalAddressSpace gas(size_t{64} << 20);  // 64 MiB = 64 regions
  EXPECT_EQ(gas.total_regions(), 64u);
  EXPECT_EQ(gas.committed_regions(), 0u);
  gas.CommitRegion(0, 3);
  gas.CommitRegion(5, 1);
  auto* r0 = static_cast<uint8_t*>(gas.RegionBase(0));
  auto* r5 = static_cast<uint8_t*>(gas.RegionBase(5));
  EXPECT_EQ(r5 - r0, static_cast<ptrdiff_t>(5 * kRegionSize));
  EXPECT_TRUE(gas.Contains(r0));
  EXPECT_EQ(gas.RegionIndexOf(r0 + 100), 0);
  EXPECT_EQ(gas.RegionIndexOf(r5 + kRegionSize - 1), 5);
}

TEST(AddressSpaceTest, HomeNodeFromAddress) {
  GlobalAddressSpace gas(size_t{16} << 20);
  gas.CommitRegion(0, 2);
  auto* p = static_cast<uint8_t*>(gas.RegionBase(0)) + 4096;
  EXPECT_EQ(gas.HomeOf(p), 2);
  // Unassigned region: no home yet.
  EXPECT_EQ(gas.HomeOf(static_cast<uint8_t*>(gas.RegionBase(3))), sim::kNoNode);
  // Outside the arena entirely.
  int local;
  EXPECT_EQ(gas.HomeOf(&local), sim::kNoNode);
}

TEST(AddressSpaceTest, CommittedRegionIsZeroFilled) {
  // §3.2: "unwritten pages of virtual memory are zero-filled" — the
  // uninitialized-descriptor trick depends on it.
  GlobalAddressSpace gas(size_t{4} << 20);
  gas.CommitRegion(1, 0);
  auto* p = static_cast<uint8_t*>(gas.RegionBase(1));
  for (size_t i = 0; i < kRegionSize; i += 4093) {
    EXPECT_EQ(p[i], 0);
  }
}

TEST(RegionServerTest, InitialGrantsRoundRobin) {
  GlobalAddressSpace gas(size_t{64} << 20);
  RegionServer server(&gas, /*nodes=*/4, /*initial_regions_per_node=*/2);
  EXPECT_EQ(server.regions_granted(), 8);
  EXPECT_EQ(gas.RegionOwner(0), 0);
  EXPECT_EQ(gas.RegionOwner(1), 0);
  EXPECT_EQ(gas.RegionOwner(2), 1);
  EXPECT_EQ(gas.RegionOwner(7), 3);
}

TEST(RegionServerTest, AcquireExtendsAPool) {
  GlobalAddressSpace gas(size_t{64} << 20);
  RegionServer server(&gas, 2, 1);
  const int64_t r = server.AcquireRegion(1);
  EXPECT_EQ(r, 2);
  EXPECT_EQ(gas.RegionOwner(r), 1);
  EXPECT_EQ(gas.HomeOf(gas.RegionBase(r)), 1);
}

class SegmentAllocTest : public ::testing::Test {
 protected:
  SegmentAllocTest() : gas_(size_t{64} << 20), server_(&gas_, 1, 1), alloc_(&gas_, 0) {
    alloc_.AddRegion(0);
  }

  void Grow() { alloc_.AddRegion(server_.AcquireRegion(0)); }

  GlobalAddressSpace gas_;
  RegionServer server_;
  SegmentAllocator alloc_;
};

TEST_F(SegmentAllocTest, AllocateAlignedWritable) {
  void* p = alloc_.Allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
  std::memset(p, 0x5a, 100);
  EXPECT_EQ(alloc_.SizeOf(p), 112u);  // rounded to 16
  EXPECT_TRUE(alloc_.IsLiveSegment(p));
}

TEST_F(SegmentAllocTest, FreeAndExactReuse) {
  void* a = alloc_.Allocate(256);
  alloc_.Free(a);
  EXPECT_FALSE(alloc_.IsLiveSegment(a));
  void* b = alloc_.Allocate(256);
  EXPECT_EQ(a, b) << "exact-size free block should be reused whole";
}

TEST_F(SegmentAllocTest, FreedBlocksNeverSplit) {
  // A freed 1 KiB block must NOT satisfy a smaller request (that would split
  // it); the smaller request carves fresh space instead.
  void* big = alloc_.Allocate(1024);
  void* next = alloc_.Allocate(16);  // marks where the bump pointer is
  alloc_.Free(big);
  void* small = alloc_.Allocate(64);
  EXPECT_NE(small, big);
  EXPECT_GT(small, next);
  // And the original block is still reusable whole at its own size.
  void* again = alloc_.Allocate(1024);
  EXPECT_EQ(again, big);
}

TEST_F(SegmentAllocTest, ExhaustionReturnsNullThenRegionGrowthRecovers) {
  std::vector<void*> blocks;
  const size_t chunk = 64 * 1024;
  void* p;
  while ((p = alloc_.Allocate(chunk)) != nullptr) {
    blocks.push_back(p);
  }
  EXPECT_GT(blocks.size(), 10u);  // ~15 × 64 KiB + headers per 1 MiB region
  Grow();
  p = alloc_.Allocate(chunk);
  EXPECT_NE(p, nullptr);
  alloc_.CheckIntegrity();
}

TEST_F(SegmentAllocTest, DoubleFreePanics) {
  void* p = alloc_.Allocate(32);
  alloc_.Free(p);
  EXPECT_DEATH(alloc_.Free(p), "double free");
}

TEST_F(SegmentAllocTest, FreeForeignPointerPanics) {
  alignas(16) char local[64];
  EXPECT_DEATH(alloc_.Free(local + 16), "non-segment");
}

TEST_F(SegmentAllocTest, WalkVisitsAllBlocksInOrder) {
  void* a = alloc_.Allocate(32);
  void* b = alloc_.Allocate(48);
  void* c = alloc_.Allocate(64);
  alloc_.Free(b);
  std::vector<std::pair<void*, bool>> seen;
  alloc_.WalkBlocks([&](const SegmentAllocator::BlockInfo& info) {
    seen.emplace_back(info.base, info.live);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], std::make_pair(a, true));
  EXPECT_EQ(seen[1], std::make_pair(b, false));
  EXPECT_EQ(seen[2], std::make_pair(c, true));
}

// Property test: a randomized allocate/free workload preserves (a) no two
// live blocks overlap, (b) freed blocks are reused whole at exact size,
// (c) allocator accounting matches a shadow model.
TEST_F(SegmentAllocTest, PropertyRandomizedWorkloadKeepsInvariants) {
  amber::Rng rng(0xA3BE12);
  std::map<void*, size_t> live;  // shadow model
  for (int step = 0; step < 5000; ++step) {
    const bool do_alloc = live.empty() || rng.NextDouble() < 0.6;
    if (do_alloc) {
      const size_t size = static_cast<size_t>(rng.Range(1, 2048));
      void* p = alloc_.Allocate(size);
      if (p == nullptr) {
        Grow();
        p = alloc_.Allocate(size);
        ASSERT_NE(p, nullptr);
      }
      // Overlap check against the shadow model.
      const auto base = reinterpret_cast<uintptr_t>(p);
      const size_t rounded = (size + 15) & ~size_t{15};
      for (const auto& [q, qsize] : live) {
        const auto qbase = reinterpret_cast<uintptr_t>(q);
        EXPECT_TRUE(base + rounded <= qbase || qbase + qsize <= base)
            << "overlapping live segments";
      }
      // Write a pattern to catch cross-block scribbles later.
      std::memset(p, static_cast<int>(base & 0xff), rounded);
      live[p] = rounded;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      // Verify the pattern survived.
      const auto base = reinterpret_cast<uintptr_t>(it->first);
      const auto* bytes = static_cast<uint8_t*>(it->first);
      EXPECT_EQ(bytes[0], static_cast<uint8_t>(base & 0xff));
      EXPECT_EQ(bytes[it->second - 1], static_cast<uint8_t>(base & 0xff));
      alloc_.Free(it->first);
      live.erase(it);
    }
    if (step % 512 == 0) {
      alloc_.CheckIntegrity();
    }
  }
  alloc_.CheckIntegrity();
  EXPECT_EQ(alloc_.live_segments(), static_cast<int64_t>(live.size()));
}

}  // namespace
}  // namespace mem
