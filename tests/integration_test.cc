// End-to-end integration scenarios combining the whole stack: placement
// policies, mobility, threads, synchronization, tracing, and the cluster
// report, in one program — the kind of application a downstream user would
// actually write.

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/amber.h"
#include "src/core/cluster_report.h"
#include "src/core/placement.h"
#include "src/trace/trace.h"

namespace amber {
namespace {

// A work item repository sharded over the cluster; shards are placed by
// policy, workers process them in parallel, results funnel to a monitor.
class Shard : public Object {
 public:
  explicit Shard(int items) : items_(items) {}

  int64_t Process(Duration per_item) {
    int64_t sum = 0;
    for (int i = 0; i < items_; ++i) {
      Work(per_item);
      sum += i;
    }
    return sum;
  }

 private:
  const int items_;
};

class Collector : public Object {
 public:
  void Report(int64_t value) {
    MonitorGuard g(lock_);
    total_ += value;
    ++reports_;
    done_.Broadcast();
  }
  int64_t AwaitTotal(int expected) {
    lock_.Acquire();
    while (reports_ < expected) {
      done_.Wait(lock_);
    }
    const int64_t t = total_;
    lock_.Release();
    return t;
  }

 private:
  Lock lock_;
  Condition done_;
  int64_t total_ = 0;
  int reports_ = 0;
};

class PipelineWorker : public Object {
 public:
  int64_t Run(Ref<Shard> shard, Ref<Collector> collector, Duration per_item) {
    const int64_t v = shard.Call(&Shard::Process, per_item);
    collector.Call(&Collector::Report, v);
    return v;
  }
};

TEST(IntegrationTest, ShardedComputationWithPlacementAndTrace) {
  Runtime::Config config;
  config.nodes = 4;
  config.procs_per_node = 2;
  config.arena_bytes = size_t{256} << 20;
  Runtime rt(config);
  trace::Tracer tracer;
  rt.SetObserver(&tracer);

  constexpr int kShards = 8;
  constexpr int kItemsPerShard = 50;
  int64_t total = 0;
  Time elapsed = 0;
  rt.Run([&] {
    RoundRobinPlacer placer;
    auto collector = New<Collector>();
    std::vector<Ref<Shard>> shards;
    for (int s = 0; s < kShards; ++s) {
      shards.push_back(placer.Place<Shard>(kItemsPerShard));
    }
    const Time t0 = Now();
    std::vector<ThreadRef<int64_t>> workers;
    for (auto& s : shards) {
      auto w = New<PipelineWorker>();
      workers.push_back(StartThread(w, &PipelineWorker::Run, s, collector,
                                    Duration{kMicrosecond * 500}));
    }
    total = collector.Call(&Collector::AwaitTotal, kShards);
    for (auto& w : workers) {
      w.Join();
    }
    elapsed = Now() - t0;
    rt.ValidateLocationInvariants();
  });

  // Arithmetic: each shard sums 0..49.
  EXPECT_EQ(total, kShards * (kItemsPerShard * (kItemsPerShard - 1) / 2));
  // Parallelism: 8 shards x 25 ms of work over 8 CPUs finishes way under
  // the 200 ms serial time.
  EXPECT_LT(elapsed, Millis(80));
  EXPECT_GE(elapsed, Millis(25));
  // Every node did real work (round-robin placement).
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_GT(rt.sim().NodeBusyTime(n), Millis(20)) << "node " << n;
  }
  // The tracer saw the worker migrations and the report traffic.
  EXPECT_GT(tracer.size(), 20u);
  // And the cluster report renders with migrations on every row.
  const std::string report = ClusterReport(rt, elapsed);
  EXPECT_NE(report.find("thread-migration matrix"), std::string::npos);
}

// Shared scenario for the rebalance pair: 4 shards all created on node 0
// (bad placement); optionally rebalanced live with MoveTo while their
// worker threads execute — the §2.3 story end to end.
Time RunRebalanceScenario(bool rebalance) {
  Runtime::Config config;
  config.nodes = 4;
  config.procs_per_node = 1;
  config.arena_bytes = size_t{256} << 20;
  sim::CostModel cost;
  cost.quantum = Millis(2);  // reschedule often: bound threads chase sooner
  config.cost = cost;
  Runtime rt(config);
  Time elapsed = 0;
  rt.Run([&] {
    std::vector<Ref<Shard>> shards;
    for (int s = 0; s < 4; ++s) {
      shards.push_back(New<Shard>(40));  // all on node 0
    }
    const Time t0 = Now();
    // A rebalancer on an idle node moves three shards away (requesting
    // moves from node 0, whose CPU the workers saturate); the bound worker
    // threads chase lazily at their next reschedule (§3.5). It is started
    // first so it escapes node 0 before the workers monopolize the CPU —
    // a rebalancer queued behind the overload it is meant to fix would
    // itself starve (a lesson this test originally learned the hard way).
    class Rebalancer : public Object {
     public:
      int MoveOne(Ref<Shard> shard, NodeId dst) {
        MoveTo(shard, dst);
        return 0;
      }
      int Spread(std::vector<Ref<Shard>> shards) {
        Work(Millis(2));  // let the workers get going
        // Issue the three moves concurrently: each is a blocking protocol
        // round, but they overlap on the wire.
        std::vector<ThreadRef<int>> movers;
        for (int s = 1; s < 4; ++s) {
          movers.push_back(StartThread(Ref<Rebalancer>(this), &Rebalancer::MoveOne,
                                       shards[static_cast<size_t>(s)],
                                       static_cast<NodeId>(s)));
        }
        for (auto& m : movers) {
          m.Join();
        }
        return 0;
      }
    };
    ThreadRef<int> balancer_thread;
    if (rebalance) {
      auto balancer = NewOn<Rebalancer>(3);
      balancer_thread = StartThread(balancer, &Rebalancer::Spread, shards);
    }
    std::vector<ThreadRef<int64_t>> workers;
    for (auto& s : shards) {
      workers.push_back(StartThread(s, &Shard::Process, Duration{kMicrosecond * 500}));
    }
    if (rebalance) {
      balancer_thread.Join();
    }
    for (auto& w : workers) {
      EXPECT_EQ(w.Join(), 40 * 39 / 2);
    }
    elapsed = Now() - t0;
    rt.ValidateLocationInvariants();
    if (rebalance) {
      for (int s = 1; s < 4; ++s) {
        EXPECT_EQ(rt.OwnerOf(shards[static_cast<size_t>(s)].object()), s);
      }
    }
  });
  return elapsed;
}

TEST(IntegrationTest, DynamicRebalanceUnderLoad) {
  const Time balanced = RunRebalanceScenario(/*rebalance=*/true);
  const Time serial = RunRebalanceScenario(/*rebalance=*/false);
  // 4 x 20 ms of work: pinned to one CPU it is fully serial. The live
  // rebalance spreads it out — but not instantly: bound threads migrate
  // *lazily* at their next reschedule (§3.5), and the rebalancer itself
  // pays thread-creation and move-protocol latencies first, so the win is
  // bounded well away from the ideal 4x. A clear (>25%) improvement with
  // correct final placement is the property under test.
  EXPECT_LT(static_cast<double>(balanced), 0.72 * static_cast<double>(serial))
      << "balanced " << ToMillis(balanced) << " ms vs serial " << ToMillis(serial) << " ms";
}

}  // namespace
}  // namespace amber
