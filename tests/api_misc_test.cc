// Coverage for small public-API items not exercised elsewhere: Yield,
// Locate on immutables/replicas, runtime accessors, payload accounting.

#include <gtest/gtest.h>

#include "src/core/amber.h"

namespace amber {
namespace {

class Cell : public Object {
 public:
  int Get() const { return 7; }
};

Runtime::Config TestConfig(int nodes = 3, int procs = 2) {
  Runtime::Config c;
  c.nodes = nodes;
  c.procs_per_node = procs;
  c.arena_bytes = size_t{128} << 20;
  return c;
}

TEST(ApiMiscTest, AccessorsReflectConfig) {
  Runtime rt(TestConfig(3, 2));
  rt.Run([&] {
    EXPECT_EQ(Nodes(), 3);
    EXPECT_EQ(ProcsPerNode(), 2);
    EXPECT_EQ(Here(), 0);
    EXPECT_GE(Now(), 0);
  });
}

TEST(ApiMiscTest, YieldRotatesEqualThreads) {
  Runtime rt(TestConfig(1, 1));
  rt.Run([&] {
    class Turns : public Object {
     public:
      void Take(int id, int rounds) {
        for (int r = 0; r < rounds; ++r) {
          order_.push_back(id);
          Yield();
        }
      }
      std::vector<int> order_;
    };
    auto t = New<Turns>();
    auto a = StartThread(t, &Turns::Take, 1, 3);
    auto b = StartThread(t, &Turns::Take, 2, 3);
    a.Join();
    b.Join();
    // Yield after every step interleaves the two strictly.
    EXPECT_EQ(t.unchecked()->order_, (std::vector<int>{1, 2, 1, 2, 1, 2}));
  });
}

TEST(ApiMiscTest, LocateImmutableReportsAHolder) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto c = New<Cell>();
    MakeImmutable(c);
    EXPECT_EQ(Locate(c), 0);  // original holder
    MoveTo(c, 2);             // replicates; original stays resident at 0
    EXPECT_EQ(Locate(c), 0);
    EXPECT_EQ(c.Call(&Cell::Get), 7);
  });
}

TEST(ApiMiscTest, RefComparisons) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto a = New<Cell>();
    auto b = New<Cell>();
    Ref<Cell> a2 = a;
    EXPECT_TRUE(a == a2);
    EXPECT_TRUE(a != b);
    Ref<Cell> null_ref;
    EXPECT_FALSE(null_ref);
    EXPECT_TRUE(a);
  });
}

TEST(ApiMiscTest, WhereSugarsLocate) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    auto c = New<Cell>();
    MoveTo(c, 1);
    EXPECT_EQ(c.Where(), 1);
  });
}

TEST(ApiMiscTest, ClosureBytesCountsAttachmentsAndPayload) {
  Runtime rt(TestConfig());
  rt.Run([&] {
    class Fat : public Object {
     public:
      int64_t AmberPayloadBytes() const override { return 5000; }
    };
    auto root = New<Cell>();
    auto fat = New<Fat>();
    Attach(fat, root);
    const int64_t bytes = rt.ClosureBytes(root.object());
    // Both segments + the fat payload + per-object overheads.
    EXPECT_GT(bytes, 5000);
    EXPECT_LT(bytes, 6000);
  });
}

TEST(ApiMiscTest, WorkAccumulatesExactly) {
  Runtime rt(TestConfig(1, 1));
  Time delta = 0;
  rt.Run([&] {
    const Time t0 = Now();
    for (int i = 0; i < 10; ++i) {
      Work(kMicrosecond * 123);
    }
    delta = Now() - t0;
  });
  EXPECT_EQ(delta, 10 * kMicrosecond * 123);
}

}  // namespace
}  // namespace amber
