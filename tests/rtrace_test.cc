// Tests for request-scoped tracing: the versioned context wire frame
// (v1/v2/future compatibility, mirroring the heartbeat wire tests), sampled
// end-to-end propagation through threads / invocations / the RPC wire,
// exact virtual-time attribution closure, exemplar integration, the flight
// recorder's span column, and byte-inertness when sampling is off.

#include "src/rtrace/rtrace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/core/amber.h"
#include "src/fdr/fdr.h"
#include "src/metrics/metrics.h"
#include "src/rpc/wire.h"

namespace rtrace {
namespace {

using namespace amber;

Runtime::Config TestConfig() {
  Runtime::Config config;
  config.nodes = 2;
  config.procs_per_node = 2;
  config.arena_bytes = size_t{128} << 20;
  return config;
}

class Worker final : public Object {
 public:
  int Spin(int units) {
    Work(Micros(50) * (units + 1));
    return units * 2;
  }
};

// --- Wire compatibility --------------------------------------------------------
//
// The context frame is versioned like the membership heartbeat: a v1 frame
// is exactly kContextV1Bytes, v2 appends a baggage word, and a decoder must
// ignore unknown trailing bytes so frames from future versions still yield
// the prefix it understands.

TEST(TraceContextWireTest, V1RoundTripIsExactlyTheFixedPrefix) {
  TraceContext tx;
  tx.trace_id = 0x1122334455667788ull;
  tx.span_id = 42;
  tx.flags = kContextFlagSampled;

  const std::vector<uint8_t> frame = EncodeContext(tx);
  EXPECT_EQ(frame.size(), kContextV1Bytes);
  const TraceContext rx = DecodeContext(frame);
  EXPECT_EQ(rx.version, 1);
  EXPECT_EQ(rx.trace_id, 0x1122334455667788ull);
  EXPECT_EQ(rx.span_id, 42u);
  EXPECT_TRUE(rx.sampled());
  EXPECT_FALSE(rx.has_baggage);
}

TEST(TraceContextWireTest, V2BaggageRoundTripsAndV1FrameStillDecodes) {
  TraceContext tx;
  tx.trace_id = 7;
  tx.span_id = 9;
  tx.flags = kContextFlagSampled;
  tx.has_baggage = true;
  tx.baggage = 1234;

  const std::vector<uint8_t> frame = EncodeContext(tx);
  EXPECT_EQ(frame.size(), kContextV1Bytes + kBaggageWireBytes);
  const TraceContext rx = DecodeContext(frame);
  EXPECT_EQ(rx.version, 2);
  EXPECT_EQ(rx.trace_id, 7u);
  ASSERT_TRUE(rx.has_baggage);
  EXPECT_EQ(rx.baggage, 1234u);

  TraceContext bare;
  bare.trace_id = 3;
  const TraceContext rx1 = DecodeContext(EncodeContext(bare));
  EXPECT_EQ(rx1.version, 1);
  EXPECT_EQ(rx1.trace_id, 3u);
  EXPECT_FALSE(rx1.has_baggage);
  EXPECT_FALSE(rx1.sampled());
}

TEST(TraceContextWireTest, V1StyleReaderAcceptsV2Frame) {
  TraceContext tx;
  tx.trace_id = 123;
  tx.span_id = 5;
  tx.has_baggage = true;
  tx.baggage = 99;

  // What a pre-baggage decoder does: read the fixed prefix, stop. The
  // trailing baggage bytes are simply left unread.
  rpc::WireBuffer r(EncodeContext(tx));
  EXPECT_GE(r.GetU8(), 1);  // version: newer than it knows, prefix unchanged
  EXPECT_EQ(r.GetU64(), 123u);
  EXPECT_EQ(r.GetU64(), 5u);
  r.GetU8();  // flags
  EXPECT_EQ(r.remaining(), kBaggageWireBytes);
}

TEST(TraceContextWireTest, FutureVersionTrailingBytesAreIgnored) {
  TraceContext tx;
  tx.trace_id = 77;
  tx.has_baggage = true;
  tx.baggage = 5;
  std::vector<uint8_t> frame = EncodeContext(tx);
  frame[0] = 3;  // claim a future version
  frame.insert(frame.end(), {0xde, 0xad, 0xbe, 0xef, 0x01});

  const TraceContext rx = DecodeContext(frame);
  EXPECT_EQ(rx.version, 3);
  EXPECT_EQ(rx.trace_id, 77u);
  ASSERT_TRUE(rx.has_baggage);
  EXPECT_EQ(rx.baggage, 5u);

  // A future frame whose extension is too short to hold the baggage word
  // still yields the base fields.
  std::vector<uint8_t> short_frame = EncodeContext(TraceContext{});
  short_frame[0] = 3;
  short_frame.push_back(0x42);
  const TraceContext rx2 = DecodeContext(short_frame);
  EXPECT_EQ(rx2.version, 3);
  EXPECT_FALSE(rx2.has_baggage);
}

// --- End-to-end tracing --------------------------------------------------------

TEST(RtraceTest, SamplesOneInNAndPropagatesAcrossTheWire) {
  Tracer tracer({.name = "t", .sample_every = 2});
  Runtime rt(TestConfig());
  tracer.AttachTo(rt);
  rt.Run([&] {
    auto w = NewOn<Worker>(1);
    for (int i = 0; i < 6; ++i) {
      const uint64_t id = tracer.OpenRequest("req");
      EXPECT_EQ(id != 0, i % 2 == 0);  // deterministic 1-in-2, open order
      auto t = StartThread(w, &Worker::Spin, i);
      EXPECT_EQ(t.Join(), i * 2);
    }
  });
  EXPECT_EQ(tracer.requests_seen(), 6);
  EXPECT_EQ(tracer.requests_sampled(), 3);
  // The request threads invoked a remote object: their travel to node 1
  // carried context frames that arrived and validated.
  EXPECT_GT(tracer.contexts_propagated(), 0);
  EXPECT_EQ(tracer.contexts_invalid(), 0);

  int done = 0;
  int64_t total_hops = 0;
  for (const auto& [id, t] : tracer.traces()) {
    EXPECT_TRUE(t.done);
    EXPECT_EQ(t.name, "req");
    EXPECT_GT(t.latency(), 0);
    total_hops += t.hops;
    ASSERT_FALSE(t.spans.empty());
    EXPECT_EQ(t.spans[0].kind, SpanKind::kRequest);
    bool has_invoke = false;
    for (const Span& s : t.spans) {
      if (s.kind == SpanKind::kInvoke) {
        has_invoke = true;
        EXPECT_GE(s.end, s.start);
      }
    }
    EXPECT_TRUE(has_invoke);
    ++done;
  }
  EXPECT_EQ(done, 3);
  // At least the requests that crossed nodes announced their context on
  // arrival (a request whose thread happened to be created co-located with
  // the worker never touches the wire — that's fine).
  EXPECT_GT(total_hops, 0);
}

TEST(RtraceTest, AttributionSumsToLatencyExactly) {
  Tracer tracer({.name = "t"});
  Runtime rt(TestConfig());
  tracer.AttachTo(rt);
  rt.Run([&] {
    auto w = NewOn<Worker>(1);
    for (int i = 0; i < 4; ++i) {
      tracer.OpenRequest("req");
      auto t = StartThread(w, &Worker::Spin, i);
      t.Join();
    }
  });
  ASSERT_EQ(tracer.requests_sampled(), 4);
  for (const auto& [id, t] : tracer.traces()) {
    ASSERT_TRUE(t.done);
    Duration sum = 0;
    for (const auto& [cat, ns] : t.attribution) {
      sum += ns;
    }
    // Exact closure: every nanosecond of the root thread's lifetime lands
    // in exactly one category.
    EXPECT_EQ(sum, t.latency()) << "trace " << id;
    EXPECT_GT(t.attribution.at("compute"), 0) << "trace " << id;
  }
}

TEST(RtraceTest, ExemplarNamesAReconstructibleTrace) {
  Tracer tracer({.name = "t"});
  metrics::Registry registry;
  {
    Runtime rt(TestConfig());
    rt.SetMetrics(&registry);
    tracer.AttachTo(rt);
    rt.Run([&] {
      auto w = NewOn<Worker>(1);
      for (int i = 0; i < 3; ++i) {
        tracer.OpenRequest("req");
        const Time arrival = Now();
        auto t = StartThread(w, &Worker::Spin, i);
        t.Join();
        registry.GetHistogram("req.latency")
            .Record(static_cast<double>(Now() - arrival), tracer.CurrentTraceId());
      }
    });
  }
  // The driver itself is untraced: CurrentTraceId() returned 0, so no
  // exemplars were retained from it...
  EXPECT_TRUE(registry.GetHistogram("req.latency").exemplars().empty());

  // ...but a request thread recording its own latency leaves one, and the
  // trace it names is retrievable and complete.
  Tracer tracer2({.name = "t2"});
  metrics::Registry registry2;
  {
    Runtime rt2(TestConfig());
    rt2.SetMetrics(&registry2);
    tracer2.AttachTo(rt2);
    rt2.Run([&] {
      auto w = NewOn<Worker>(1);
      tracer2.OpenRequest("req");
      auto t = StartThread(w, &Worker::Spin, 7);
      t.Join();
      // Join chased the request thread; the trace is complete now. Use its
      // id (the only sampled one) as the exemplar.
      ASSERT_EQ(tracer2.traces().size(), 1u);
      const uint64_t id = tracer2.traces().begin()->first;
      registry2.GetHistogram("req.latency").Record(1000.0, id);
    });
  }
  const metrics::Exemplar ex = registry2.GetHistogram("req.latency").ExemplarNear(1000.0);
  ASSERT_NE(ex.trace_id, 0u);
  const Trace* t = tracer2.FindTrace(ex.trace_id);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->done);
}

TEST(RtraceTest, WriteJsonIsDeterministicAndComplete) {
  auto run = [] {
    Tracer tracer({.name = "dump"});
    Runtime rt(TestConfig());
    tracer.AttachTo(rt);
    rt.Run([&] {
      auto w = NewOn<Worker>(1);
      for (int i = 0; i < 3; ++i) {
        tracer.OpenRequest("req");
        auto t = StartThread(w, &Worker::Spin, i);
        t.Join();
      }
    });
    std::ostringstream out;
    tracer.WriteJson(out);
    return out.str();
  };
  const std::string a = run();
  EXPECT_EQ(a, run());  // same seed, byte-identical dump
  EXPECT_NE(a.find("\"rtrace\": \"dump\""), std::string::npos);
  EXPECT_NE(a.find("\"attribution\""), std::string::npos);
  EXPECT_NE(a.find("\"kind\": \"invoke\""), std::string::npos);
  EXPECT_EQ(a.find("\"end_ns\": 0,"), std::string::npos);  // no dangling open spans
}

TEST(RtraceTest, FlightRecorderRecordsSpanIds) {
  Tracer tracer({.name = "t"});
  fdr::Recorder recorder({.name = "rtrace_test"});
  recorder.SetSpanSource(
      [&tracer](ThreadId thread) { return tracer.CurrentSpanOf(thread); });
  Runtime rt(TestConfig());
  tracer.AttachTo(rt);
  recorder.AttachTo(rt);
  rt.Run([&] {
    auto w = NewOn<Worker>(1);
    tracer.OpenRequest("req");
    auto t = StartThread(w, &Worker::Spin, 2);
    t.Join();
  });
  std::ostringstream out;
  recorder.WriteDump(out, "test", "span column");
  EXPECT_NE(out.str().find("\"span\":"), std::string::npos);
}

TEST(RtraceTest, DisabledSamplingIsByteInert) {
  // Identical workload three ways: untraced, tracer attached with sampling
  // off, tracer attached with sampling on. The first two must be
  // byte-identical in every output (the metrics document embeds per-link
  // byte counts, so any extra wire byte would show). Sampling on is
  // *allowed* to shift virtual time: piggybacked context frames are real
  // payload bytes, charged like any other.
  auto run = [](Tracer* tracer) {
    metrics::Registry registry;
    Runtime rt(TestConfig());
    rt.SetMetrics(&registry);
    if (tracer != nullptr) {
      tracer->AttachTo(rt);
    }
    Time end = 0;
    rt.Run([&] {
      auto w = NewOn<Worker>(1);
      for (int i = 0; i < 4; ++i) {
        if (tracer != nullptr) {
          tracer->OpenRequest("req");
        }
        auto t = StartThread(w, &Worker::Spin, i);
        t.Join();
      }
      end = Now();
    });
    std::ostringstream json;
    registry.WriteJson(json);
    return std::make_pair(end, json.str());
  };

  const auto untraced = run(nullptr);
  Tracer off({.name = "off", .sample_every = 0});
  const auto sampling_off = run(&off);
  EXPECT_EQ(untraced.first, sampling_off.first);
  EXPECT_EQ(untraced.second, sampling_off.second);
  EXPECT_EQ(off.requests_seen(), 4);
  EXPECT_EQ(off.requests_sampled(), 0);
  EXPECT_TRUE(off.traces().empty());

  Tracer on({.name = "on", .sample_every = 1});
  const auto sampling_on = run(&on);
  EXPECT_EQ(on.requests_sampled(), 4);
  EXPECT_GT(on.contexts_propagated(), 0);
}

TEST(RtraceTest, EvictionKeepsTheNewestTraces) {
  Tracer tracer({.name = "t", .max_traces = 2});
  Runtime rt(TestConfig());
  tracer.AttachTo(rt);
  rt.Run([&] {
    auto w = NewOn<Worker>(1);
    for (int i = 0; i < 5; ++i) {
      tracer.OpenRequest("req");
      auto t = StartThread(w, &Worker::Spin, i);
      t.Join();
    }
  });
  EXPECT_EQ(tracer.requests_sampled(), 5);
  EXPECT_EQ(tracer.traces_evicted(), 3);
  EXPECT_EQ(tracer.traces().size(), 2u);
  // The survivors are the most recently completed ones.
  for (const auto& [id, t] : tracer.traces()) {
    EXPECT_TRUE(t.done);
    EXPECT_GE(id, 4u);
  }
}

}  // namespace
}  // namespace rtrace
