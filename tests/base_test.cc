// Tests for the base utilities: RNG determinism and distribution, statistics
// accumulators, time conversions, logging plumbing.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/base/logging.h"
#include "src/base/panic.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/time.h"

namespace amber {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  // Bound 1 is always 0.
  EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, BelowCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.Below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // roughly uniform
}

TEST(RngTest, ReseedResetsSequence) {
  Rng rng(5);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(5);
  EXPECT_EQ(rng.Next(), first);
}

TEST(AccumulatorTest, BasicMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.Add(v);
  }
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);  // sample stddev
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(AccumulatorTest, EmptyIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(AccumulatorTest, SingleSampleHasZeroVariance) {
  Accumulator acc;
  acc.Add(3.5);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.mean(), 3.5);
}

TEST(AccumulatorTest, ResetClears) {
  Accumulator acc;
  acc.Add(1);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0);
}

TEST(SamplesTest, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(90), 90.1, 0.2);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
}

TEST(SamplesTest, AddAfterSortResorts) {
  Samples s;
  s.Add(10);
  s.Add(20);
  EXPECT_DOUBLE_EQ(s.Median(), 15.0);
  s.Add(0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.Median(), 10.0);
}

TEST(SamplesTest, EmptyPercentilePanics) {
  Samples s;
  EXPECT_DEATH(s.Percentile(50), "empty");
}

TEST(PanicDeathTest, NoHookStillAborts) {
  // With no hook installed, Panic prints the message and aborts without any
  // "black box:" line — the hookless path must not touch the null hook.
  SetPanicHook(nullptr);
  EXPECT_DEATH(Panic("plain abort", "panic_test.cc", 7), "panic: plain abort at panic_test\\.cc:7");
}

TEST(PanicDeathTest, HookRunsAndPathIsAnnounced) {
  SetPanicHook([](const std::string& msg, const char* file, int line) {
    return std::string("HOOK_") + msg + "_" + std::to_string(line) + ".json";
  });
  EXPECT_DEATH(Panic("boom", "panic_test.cc", 9), "black box: HOOK_boom_9\\.json");
  SetPanicHook(nullptr);
}

TEST(PanicDeathTest, HookReturningEmptyPrintsNoBlackBoxLine) {
  // A hook that writes nothing returns "": Panic must treat it like the
  // no-hook case (no announcement) and still reach abort().
  SetPanicHook([](const std::string&, const char*, int) { return std::string(); });
  EXPECT_DEATH(Panic("quiet hook", "panic_test.cc", 11), "panic: quiet hook at panic_test\\.cc:11");
  SetPanicHook(nullptr);
}

TEST(CounterTest, AddAndReset) {
  Counter c;
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Millis(1.5), 1'500'000);
  EXPECT_EQ(Micros(2.0), 2'000);
  EXPECT_EQ(Seconds(0.001), Millis(1.0));
  EXPECT_DOUBLE_EQ(ToMillis(kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(ToMicros(kMillisecond), 1000.0);
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
}

TEST(LoggingTest, LevelGatesOutput) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These must be no-ops (and cheap: the stream body is not evaluated).
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "x";
  };
  AMBER_LOG(kDebug) << expensive();
  AMBER_LOG(kInfo) << expensive();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(old);
}

TEST(LoggingTest, TimeSourceStampsLines) {
  SetLogTimeSource([]() -> int64_t { return 5'000'000; });
  AMBER_LOG(kError) << "stamped line (expected in test output)";
  SetLogTimeSource(nullptr);
}

}  // namespace
}  // namespace amber
