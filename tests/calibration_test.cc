// Calibration regression tests: pin the paper-facing numbers so cost-model
// or protocol changes that would break the reproduction fail loudly here
// rather than silently skewing EXPERIMENTS.md.
//
// Bands are deliberately loose (the claim is *shape*, not digits) but tight
// enough to catch structural regressions: a lost overlap, a forgotten
// charge, a protocol change that adds a round trip.

#include <gtest/gtest.h>

#include "src/apps/sor/sor.h"
#include "src/core/amber.h"

namespace amber {
namespace {

class Packet : public Object {
 public:
  int Noop() { return 0; }

 private:
  char payload_[1000];
};

class Anchor : public Object {
 public:
  double LocalInvokeUs(int trials) {
    auto obj = New<Packet>();
    const Time t0 = Now();
    for (int i = 0; i < trials; ++i) {
      obj.Call(&Packet::Noop);
    }
    return ToMicros(Now() - t0) / trials;
  }

  double RemoteInvokeMs() {
    auto obj = New<Packet>();
    MoveTo(obj, 1);
    obj.Call(&Packet::Noop);  // warm hint
    MoveTo(obj, 2);           // one-hop-stale hint
    const Time t0 = Now();
    obj.Call(&Packet::Noop);
    return ToMillis(Now() - t0);
  }

  double CreateMs() {
    const Time t0 = Now();
    New<Packet>();
    return ToMillis(Now() - t0);
  }

  double MoveMs() {
    auto obj = New<Packet>();
    const Time t0 = Now();
    MoveTo(obj, 3);
    return ToMillis(Now() - t0);
  }

  double ThreadMs() {
    auto obj = New<Packet>();
    const Time t0 = Now();
    auto t = StartThread(obj, &Packet::Noop);
    t.Join();
    return ToMillis(Now() - t0);
  }
};

TEST(CalibrationTest, Table1OperationsWithinBands) {
  Runtime::Config config;
  config.nodes = 4;
  config.procs_per_node = 4;
  Runtime rt(config);
  rt.Run([&] {
    auto bench = New<Anchor>();
    // paper: 0.012 ms — ours must be exactly the two check charges.
    const double local_us = bench.Call(&Anchor::LocalInvokeUs, 32);
    EXPECT_NEAR(local_us, ToMicros(rt.cost().local_invoke + rt.cost().local_return), 0.5);
    // paper: 0.18 ms.
    const double create_ms = bench.Call(&Anchor::CreateMs);
    EXPECT_GT(create_ms, 0.10);
    EXPECT_LT(create_ms, 0.30);
    // paper: 8.32 ms (one forwarding hop).
    const double remote_ms = bench.Call(&Anchor::RemoteInvokeMs);
    EXPECT_GT(remote_ms, 4.0);
    EXPECT_LT(remote_ms, 12.0);
    // paper: 12.43 ms (local-source move is the cheap case: >= ~3 ms).
    const double move_ms = bench.Call(&Anchor::MoveMs);
    EXPECT_GT(move_ms, 2.0);
    EXPECT_LT(move_ms, 20.0);
    // paper: 1.33 ms.
    const double thread_ms = bench.Call(&Anchor::ThreadMs);
    EXPECT_GT(thread_ms, 0.7);
    EXPECT_LT(thread_ms, 2.5);
  });
}

TEST(CalibrationTest, Figure2HeadlineSpeedupBand) {
  // The paper's flagship number: speedup ~25 at 8Nx4P on the 122x842 grid.
  // 30 iterations suffice for a steady-state per-iteration ratio.
  sor::Params p;
  p.max_iterations = 30;
  const sim::CostModel cost;
  const sor::Result seq = sor::RunSequentialOn(p, cost);
  const sor::Result par = sor::RunAmberOn(8, 4, p, cost);
  ASSERT_EQ(par.grid_hash, seq.grid_hash);
  const double speedup =
      static_cast<double>(seq.solve_time) / static_cast<double>(par.solve_time);
  EXPECT_GT(speedup, 21.0);
  EXPECT_LT(speedup, 29.0);
}

TEST(CalibrationTest, EqualProcessorConfigsMatch) {
  // Paper: "nearly identical speedups ... for all of the experiments
  // involving a total of four processors (1Nx4P, 2Nx2P, 4Nx1P)".
  sor::Params p;
  p.max_iterations = 25;
  const sim::CostModel cost;
  const sor::Result seq = sor::RunSequentialOn(p, cost);
  const double s14 = static_cast<double>(seq.solve_time) /
                     static_cast<double>(sor::RunAmberOn(1, 4, p, cost).solve_time);
  const double s22 = static_cast<double>(seq.solve_time) /
                     static_cast<double>(sor::RunAmberOn(2, 2, p, cost).solve_time);
  const double s41 = static_cast<double>(seq.solve_time) /
                     static_cast<double>(sor::RunAmberOn(4, 1, p, cost).solve_time);
  EXPECT_NEAR(s14, s22, 0.35);
  EXPECT_NEAR(s22, s41, 0.35);
  EXPECT_GT(s41, 3.4);
}

TEST(CalibrationTest, OverlapBeatsNoOverlapAtScale) {
  sor::Params p;
  p.max_iterations = 25;
  const sim::CostModel cost;
  const sor::Result on = sor::RunAmberOn(8, 4, p, cost);
  sor::Params p2 = p;
  p2.overlap = false;
  const sor::Result off = sor::RunAmberOn(8, 4, p2, cost);
  EXPECT_EQ(on.grid_hash, off.grid_hash);
  EXPECT_LT(static_cast<double>(on.solve_time), 0.97 * static_cast<double>(off.solve_time))
      << "overlap must be a clear win at 8Nx4P (the Figure 2 pair)";
}

}  // namespace
}  // namespace amber
