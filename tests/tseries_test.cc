// Tests for the windowed metric-rollup collector: histogram snapshot/diff
// math, window close semantics (deltas, gauges, interval summaries, the
// final partial window), bounded rings, series extraction, cross-window
// histogram aggregation, MTTR measurement, JSON determinism, atomic flush,
// and the zero-cost invariant — attaching a collector to a runtime changes
// neither virtual time nor the registry's cumulative dump.

#include "src/tseries/tseries.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/amber.h"
#include "src/metrics/metrics.h"

namespace tseries {
namespace {

constexpr amber::Duration kWin = amber::Millis(10);

// --- Histogram snapshot / diff ----------------------------------------------

TEST(HistogramSnapshotTest, DiffRecoversTheInterval) {
  metrics::Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(100.0);  // bucket 6
  }
  const metrics::HistogramSnapshot before = h.Snapshot();
  for (int i = 0; i < 50; ++i) {
    h.Record(5000.0);  // bucket 12
  }
  const metrics::IntervalSummary s = metrics::Histogram::Diff(before, h.Snapshot());
  EXPECT_EQ(s.count, 50);
  EXPECT_DOUBLE_EQ(s.sum, 50 * 5000.0);
  // All interval observations live in bucket 12 = [4096, 8192).
  EXPECT_GE(s.p50, 4096.0);
  EXPECT_LE(s.p999, 8192.0);
  EXPECT_LE(s.p50, s.p99);
  EXPECT_LE(s.p99, s.p999);
}

TEST(HistogramSnapshotTest, SnapshotLeavesCumulativeDumpUntouched) {
  metrics::Registry reg;
  for (int i = 1; i <= 64; ++i) {
    reg.GetHistogram("h").Record(i * 100.0);
  }
  std::ostringstream before;
  reg.WriteJson(before);
  const metrics::HistogramSnapshot snap = reg.GetHistogram("h").Snapshot();
  (void)snap;
  std::ostringstream after;
  reg.WriteJson(after);
  EXPECT_EQ(before.str(), after.str());
}

TEST(HistogramSnapshotTest, EmptyIntervalIsZero) {
  metrics::Histogram h;
  h.Record(42.0);
  const metrics::HistogramSnapshot snap = h.Snapshot();
  const metrics::IntervalSummary s = metrics::Histogram::Diff(snap, h.Snapshot());
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.p999, 0.0);
  EXPECT_EQ(metrics::Histogram::SummaryFromBuckets({}, 0.0).count, 0);
}

// --- Collector windowing (driven directly, no runtime) -----------------------

Collector::Config SmallConfig() {
  Collector::Config c;
  c.name = "t";
  c.window_ns = kWin;
  return c;
}

TEST(CollectorTest, CountersRollUpAsPerWindowDeltas) {
  metrics::Registry reg;
  Collector col(SmallConfig());
  col.SetRegistry(&reg);
  col.WatchCounter("reqs");
  col.WatchGauge("depth");
  col.WatchHistogram("lat");

  reg.GetCounter("reqs", "node0").Add(3);
  reg.GetCounter("reqs", "node1").Add(2);  // family total: watched across labels
  reg.GetGauge("depth").Set(7.0);
  reg.GetHistogram("lat").Record(1000.0);
  col.Advance(kWin);  // closes window 0
  reg.GetCounter("reqs", "node0").Add(10);
  reg.GetGauge("depth").Set(3.0);
  col.Advance(2 * kWin + 1);  // closes window 1

  ASSERT_EQ(col.frames().size(), 2u);
  EXPECT_EQ(col.frames()[0].counter_deltas[0], 5);
  EXPECT_EQ(col.frames()[1].counter_deltas[0], 10);
  EXPECT_DOUBLE_EQ(col.frames()[0].gauge_values[0], 7.0);
  EXPECT_DOUBLE_EQ(col.frames()[1].gauge_values[0], 3.0);
  EXPECT_EQ(col.frames()[0].hists[0].summary.count, 1);
  EXPECT_EQ(col.frames()[1].hists[0].summary.count, 0);
}

TEST(CollectorTest, FinishClosesThePartialWindow) {
  metrics::Registry reg;
  Collector col(SmallConfig());
  col.SetRegistry(&reg);
  col.WatchCounter("reqs");
  reg.GetCounter("reqs").Add(4);
  col.Finish(kWin / 2);  // run ended mid-window
  ASSERT_EQ(col.frames().size(), 1u);
  EXPECT_EQ(col.frames()[0].counter_deltas[0], 4);
  EXPECT_EQ(col.windows_closed(), 1);
}

TEST(CollectorTest, FrameRingIsBounded) {
  metrics::Registry reg;
  Collector::Config cfg = SmallConfig();
  cfg.max_frames = 4;
  Collector col(cfg);
  col.SetRegistry(&reg);
  col.WatchCounter("reqs");
  col.Advance(10 * kWin);  // closes 10 windows
  EXPECT_EQ(col.frames().size(), 4u);
  EXPECT_EQ(col.dropped_frames(), 6);
  EXPECT_EQ(col.frames().front().index, 6);  // oldest retained window
  EXPECT_EQ(col.FirstFrameStart(), 6 * kWin);
}

TEST(CollectorTest, AnnotationsAreBoundedAndAdvanceTheClock) {
  metrics::Registry reg;
  Collector::Config cfg = SmallConfig();
  cfg.max_annotations = 2;
  Collector col(cfg);
  col.SetRegistry(&reg);
  col.Annotate(kWin + 1, "crash", "node1");
  EXPECT_EQ(col.windows_closed(), 1);  // the annotation advanced the window clock
  col.Annotate(kWin + 2, "restart", "node1");
  col.Annotate(kWin + 3, "drain", "node0");  // past the cap: dropped, not stored
  ASSERT_EQ(col.annotations().size(), 2u);
  EXPECT_EQ(col.annotations()[0].kind, "crash");
}

TEST(CollectorTest, SeriesValuesSelectsByName) {
  metrics::Registry reg;
  Collector col(SmallConfig());
  col.SetRegistry(&reg);
  col.WatchCounter("reqs");
  col.WatchGauge("depth");
  col.WatchHistogram("lat");
  reg.GetCounter("reqs").Add(2);
  reg.GetGauge("depth").Set(5.0);
  reg.GetHistogram("lat").Record(3000.0);
  col.Finish(kWin);

  EXPECT_EQ(col.SeriesValues("counter:reqs"), (std::vector<double>{2.0}));
  EXPECT_EQ(col.SeriesValues("gauge:depth"), (std::vector<double>{5.0}));
  EXPECT_EQ(col.SeriesValues("hist:lat.count"), (std::vector<double>{1.0}));
  const std::vector<double> p99 = col.SeriesValues("hist:lat.p99");
  ASSERT_EQ(p99.size(), 1u);
  EXPECT_GE(p99[0], 2048.0);  // bucket 11 = [2048, 4096)
  EXPECT_LE(p99[0], 4096.0);
  EXPECT_TRUE(col.SeriesValues("counter:nope").empty());
  EXPECT_TRUE(col.SeriesValues("hist:lat.p42").empty());
}

TEST(CollectorTest, AggregateHistogramSpansWindows) {
  metrics::Registry reg;
  Collector col(SmallConfig());
  col.SetRegistry(&reg);
  col.WatchHistogram("lat");
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 10; ++i) {
      reg.GetHistogram("lat").Record(1000.0 * (w + 1));
    }
    col.Advance((w + 1) * kWin);
  }
  const metrics::IntervalSummary all = col.AggregateHistogram(0, 0, 4);
  EXPECT_EQ(all.count, 40);
  EXPECT_DOUBLE_EQ(all.sum, 10 * (1000.0 + 2000.0 + 3000.0 + 4000.0));
  const metrics::IntervalSummary mid = col.AggregateHistogram(0, 1, 3);
  EXPECT_EQ(mid.count, 20);
}

// --- MTTR --------------------------------------------------------------------

TEST(MttrTest, MeasuresCrashToStableReentry) {
  // Steady 5/window, dip to 1 for windows 10-14, burst to 12 at 15, steady.
  std::vector<double> v(30, 5.0);
  for (int i = 10; i < 15; ++i) v[i] = 1.0;
  v[15] = 12.0;
  const MttrResult r = MeasureMttr(v, 0, kWin, 10 * kWin + kWin / 2);
  EXPECT_TRUE(r.dipped);
  ASSERT_TRUE(r.measured);
  // Band is [4.5, 5.5] (flat signal, half-unit floor); first in-band window
  // after the dip is 16, so recovery is its end: window 17 boundary.
  EXPECT_DOUBLE_EQ(r.band_lo, 4.5);
  EXPECT_DOUBLE_EQ(r.band_hi, 5.5);
  EXPECT_EQ(r.recovered_at, 17 * kWin);
  EXPECT_EQ(r.mttr, 17 * kWin - (10 * kWin + kWin / 2));
}

TEST(MttrTest, NoDipMeansNotMeasured) {
  const std::vector<double> v(20, 5.0);
  const MttrResult r = MeasureMttr(v, 0, kWin, 8 * kWin);
  EXPECT_FALSE(r.dipped);
  EXPECT_FALSE(r.measured);
}

TEST(MttrTest, DipWithoutRecoveryIsDippedButUnmeasured) {
  std::vector<double> v(20, 5.0);
  for (size_t i = 10; i < v.size(); ++i) v[i] = 0.0;  // never comes back
  const MttrResult r = MeasureMttr(v, 0, kWin, 10 * kWin);
  EXPECT_TRUE(r.dipped);
  EXPECT_FALSE(r.measured);
}

TEST(MttrTest, NoPreCrashWindowsMeansNotMeasured) {
  const std::vector<double> v(20, 5.0);
  const MttrResult r = MeasureMttr(v, 0, kWin, kWin);  // crash inside warmup
  EXPECT_FALSE(r.measured);
}

// --- JSON / flush ------------------------------------------------------------

void FillCollector(Collector* col, metrics::Registry* reg) {
  col->SetRegistry(reg);
  col->WatchCounter("reqs");
  col->WatchGauge("depth", "node0");
  col->WatchHistogram("lat");
  for (int w = 0; w < 3; ++w) {
    reg->GetCounter("reqs").Add(w + 1);
    reg->GetGauge("depth", "node0").Set(w * 2.0);
    reg->GetHistogram("lat").Record(500.0 * (w + 1));
    col->Advance((w + 1) * kWin);
  }
  col->Annotate(2 * kWin + 5, "migration", "0->1");
  col->Finish(3 * kWin + kWin / 2);
}

TEST(CollectorTest, WriteJsonIsDeterministic) {
  metrics::Registry reg1, reg2;
  Collector col1(SmallConfig()), col2(SmallConfig());
  FillCollector(&col1, &reg1);
  FillCollector(&col2, &reg2);
  std::ostringstream a, b;
  col1.WriteJson(a);
  col2.WriteJson(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"tseries\": \"t\""), std::string::npos);
  EXPECT_NE(a.str().find("\"depth/node0\""), std::string::npos);
  EXPECT_NE(a.str().find("\"kind\": \"migration\""), std::string::npos);
}

TEST(CollectorTest, FlushToWritesAtomically) {
  metrics::Registry reg;
  Collector col(SmallConfig());
  FillCollector(&col, &reg);
  const std::string path = "TS_tseries_test.json";
  ASSERT_TRUE(col.FlushTo(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream disk, mem;
  disk << in.rdbuf();
  col.WriteJson(mem);
  EXPECT_EQ(disk.str(), mem.str());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());  // renamed away, never left behind
  std::remove(path.c_str());
}

// --- Zero-cost invariant on a real runtime -----------------------------------

class Worker final : public amber::Object {
 public:
  int Step(int i) {
    amber::Work(amber::Micros(500));
    return i;
  }
};

amber::Time RunWorkload(Collector* col, std::string* metrics_dump) {
  amber::Runtime::Config cfg;
  cfg.nodes = 2;
  cfg.procs_per_node = 1;
  cfg.arena_bytes = size_t{128} << 20;
  amber::Runtime rt(cfg);
  metrics::Registry reg;
  rt.SetMetrics(&reg);
  if (col != nullptr) {
    col->SetRegistry(&reg);
    col->AttachTo(rt);
  }
  amber::Time end = 0;
  rt.Run([&end] {
    auto w = amber::NewOn<Worker>(1);
    for (int i = 0; i < 50; ++i) {
      auto t = amber::StartThread(w, &Worker::Step, i);
      t.Join();
    }
    end = amber::Now();
  });
  if (col != nullptr) {
    col->Finish(end);
  }
  std::ostringstream out;
  reg.WriteJson(out);
  *metrics_dump = out.str();
  return end;
}

TEST(CollectorTest, AttachedCollectorIsInvisibleToTheRun) {
  std::string without, with;
  const amber::Time t1 = RunWorkload(nullptr, &without);
  Collector col(SmallConfig());
  const amber::Time t2 = RunWorkload(&col, &with);
  EXPECT_EQ(t1, t2);          // virtual time unchanged
  EXPECT_EQ(without, with);   // cumulative metrics dump byte-identical
  EXPECT_GT(col.windows_closed(), 0);  // and the collector really observed
}

}  // namespace
}  // namespace tseries
