// Additional thread-layer tests: nested invocation chains, threads
// spawning threads, cross-node joins, stack reuse, and stress.

#include <gtest/gtest.h>

#include "src/core/amber.h"

namespace amber {
namespace {

Runtime::Config TestConfig(int nodes = 4, int procs = 2) {
  Runtime::Config c;
  c.nodes = nodes;
  c.procs_per_node = procs;
  c.arena_bytes = size_t{512} << 20;
  return c;
}

class Hop : public Object {
 public:
  void SetNext(Ref<Hop> next) { next_ = next; }
  // Recursive invocation chain across nodes; returns the number of nodes
  // visited. Exercises deep frame stacks with migration at every level.
  int Chain(int depth) {
    visits_ += 1;
    if (depth == 0 || !next_) {
      return 1;
    }
    return 1 + next_.Call(&Hop::Chain, depth - 1);
  }
  NodeId WhereAmI() { return Here(); }
  int visits() const { return visits_; }

 private:
  Ref<Hop> next_;
  int visits_ = 0;
};

TEST(ThreadExtraTest, DeepCrossNodeInvocationChain) {
  Runtime rt(TestConfig(4, 2));
  rt.Run([&] {
    // Ring of hops over the 4 nodes; a 12-deep chain crosses nodes 12 times
    // and unwinds back through every frame.
    std::vector<Ref<Hop>> hops;
    for (int i = 0; i < 4; ++i) {
      hops.push_back(NewOn<Hop>(i % rt.nodes()));
    }
    for (int i = 0; i < 4; ++i) {
      hops[static_cast<size_t>(i)].Call(&Hop::SetNext,
                                        hops[static_cast<size_t>((i + 1) % 4)]);
    }
    class Driver : public Object {
     public:
      int Drive(Ref<Hop> head) {
        const NodeId before = Here();
        const int n = head.Call(&Hop::Chain, 11);
        EXPECT_EQ(Here(), before) << "must unwind back to the driver's node";
        return n;
      }
    };
    auto d = New<Driver>();
    EXPECT_EQ(d.Call(&Driver::Drive, hops[0]), 12);
    EXPECT_GE(rt.thread_migrations(), 12);
    rt.ValidateLocationInvariants();
  });
}

class Spawner : public Object {
 public:
  // Threads spawning threads, fan-out tree of depth `depth`.
  int64_t Fan(int depth, int width) {
    if (depth == 0) {
      Work(kMicrosecond * 200);
      return 1;
    }
    std::vector<ThreadRef<int64_t>> kids;
    for (int w = 0; w < width; ++w) {
      kids.push_back(StartThread(Ref<Spawner>(this), &Spawner::Fan, depth - 1, width));
    }
    int64_t total = 1;
    for (auto& k : kids) {
      total += k.Join();
    }
    return total;
  }
};

TEST(ThreadExtraTest, ThreadsSpawningThreads) {
  Runtime rt(TestConfig(2, 4));
  rt.Run([&] {
    auto s = New<Spawner>();
    auto t = StartThread(s, &Spawner::Fan, 3, 3);
    // 1 + 3 + 9 + 27 = 40 nodes in the spawn tree.
    EXPECT_EQ(t.Join(), 40);
  });
}

TEST(ThreadExtraTest, JoinFromAnotherNodeChasesThread) {
  Runtime rt(TestConfig(3, 2));
  rt.Run([&] {
    auto target = NewOn<Hop>(2);
    auto t = StartThread(target, &Hop::WhereAmI);
    // Move ourselves to node 1 (root-frame call leaves us there), then
    // join: the joiner must chase the thread object to node 2.
    auto anchor = NewOn<Hop>(1);
    anchor.Call(&Hop::WhereAmI);
    EXPECT_EQ(Here(), 1);
    EXPECT_EQ(t.Join(), 2);
    EXPECT_EQ(Here(), 2) << "join is an invocation on the thread object";
  });
}

TEST(ThreadExtraTest, StacksAreReusedAfterJoin) {
  Runtime rt(TestConfig(1, 2));
  rt.Run([&] {
    auto s = New<Hop>();
    const int64_t live_before = rt.allocator(0).live_segments();
    for (int round = 0; round < 20; ++round) {
      auto t = StartThread(s, &Hop::WhereAmI);
      t.Join();
    }
    // Thread objects persist until teardown, but stacks are freed at join
    // and reused: live segments grow by at most one object per round, not
    // one object + one 64 KiB stack.
    const int64_t growth = rt.allocator(0).live_segments() - live_before;
    EXPECT_LE(growth, 21);
    EXPECT_LE(rt.allocator(0).regions_owned(), 10u) << "stack leak";
  });
}

TEST(ThreadExtraTest, TwoHundredThreadsStress) {
  Runtime rt(TestConfig(4, 4));
  rt.Run([&] {
    class Sink : public Object {
     public:
      void Count() {
        MonitorGuard g(lock_);
        ++count_;
      }
      int count() const { return count_; }

     private:
      Lock lock_;
      int count_ = 0;
    };
    auto sink = NewOn<Sink>(2);
    std::vector<ThreadRef<void>> ts;
    for (int i = 0; i < 200; ++i) {
      ts.push_back(StartThread(sink, &Sink::Count));
    }
    for (auto& t : ts) {
      t.Join();
    }
    EXPECT_EQ(sink.Call(&Sink::count), 200);
    rt.ValidateLocationInvariants();
  });
}

TEST(ThreadExtraTest, ResultTypesRoundTrip) {
  Runtime rt(TestConfig(2, 2));
  rt.Run([&] {
    class Typed : public Object {
     public:
      double Pi() { return 3.25; }
      std::string Name() { return "amber"; }
      std::vector<int> Seq(int n) {
        std::vector<int> v;
        for (int i = 0; i < n; ++i) {
          v.push_back(i * i);
        }
        return v;
      }
    };
    auto obj = NewOn<Typed>(1);
    EXPECT_EQ(StartThread(obj, &Typed::Pi).Join(), 3.25);
    EXPECT_EQ(StartThread(obj, &Typed::Name).Join(), "amber");
    EXPECT_EQ(StartThread(obj, &Typed::Seq, 4).Join(), (std::vector<int>{0, 1, 4, 9}));
  });
}

}  // namespace
}  // namespace amber
