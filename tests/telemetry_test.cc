// Tests for src/telemetry: the host-side self-profiler must never perturb
// the simulation (virtual end time and every observer-derived document are
// byte-identical whether telemetry is off, on, or absent), its TELEMETRY
// JSON must be deterministic once wall-clock fields are scrubbed, and the
// sample-ring / tally mechanics must hold up under wraparound.

#include "src/telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/apps/fdr/fdr_report.h"
#include "src/core/amber.h"
#include "src/fdr/fdr.h"
#include "src/metrics/metrics.h"
#include "src/prof/profiler.h"

namespace telemetry {
namespace {

using namespace amber;

class Pokee : public Object {
 public:
  int Poke() {
    Work(kMicrosecond * 50);
    return ++pokes_;
  }

 private:
  int pokes_ = 0;
};

class Monitored : public Object {
 public:
  void Bump() {
    lock_.Acquire();
    Work(kMillisecond * 2);
    ++value_;
    lock_.Release();
  }

 private:
  Lock lock_;
  int value_ = 0;
};

struct ScenarioOutputs {
  Time end = 0;
  std::string metrics_json;
  std::string prof_json;
  std::string fdr_json;
};

// The metrics_test scenario (remote invocations, a contended lock, an object
// move) with every observer attached, optionally self-profiled. Returns all
// three observer-derived documents for byte comparison.
ScenarioOutputs RunScenario(SelfProfiler* prof) {
  Runtime::Config c;
  c.nodes = 2;
  c.procs_per_node = 2;
  c.arena_bytes = size_t{128} << 20;
  Runtime rt(c);
  metrics::Registry reg;
  prof::Profiler profiler;
  fdr::Recorder rec({.name = "telemetry_test"});
  rt.SetMetrics(&reg);
  rt.AddObserver(&profiler);
  rec.AttachTo(rt);
  if (prof != nullptr) {
    prof->Enable();
  }
  ScenarioOutputs out;
  rt.Run([&] {
    auto shared = NewOn<Monitored>(1);
    auto t1 = StartThread(shared, &Monitored::Bump);
    auto t2 = StartThread(shared, &Monitored::Bump);
    t1.Join();
    t2.Join();
    auto thing = New<Pokee>();
    MoveTo(thing, 1 - Here());
    thing.Call(&Pokee::Poke);
    out.end = Now();
  });
  if (prof != nullptr) {
    prof->Disable();
  }
  std::ostringstream m;
  reg.WriteJson(m);
  out.metrics_json = m.str();
  prof::ProfileReport report = profiler.Finalize();
  report.name = "telemetry_test";
  std::ostringstream p;
  report.WriteJson(p);
  out.prof_json = p.str();
  std::ostringstream f;
  rec.WriteDump(f, "explicit", "");
  out.fdr_json = f.str();
  return out;
}

SelfProfiler::Config SmallRingConfig() {
  SelfProfiler::Config cfg;
  cfg.name = "telemetry_test";
  cfg.sample_every_events = 16;  // small enough that the scenario samples
  cfg.ring_capacity = 64;
  return cfg;
}

TEST(TelemetryTest, EnabledProfilerDoesNotPerturbSimulation) {
  const ScenarioOutputs plain = RunScenario(nullptr);
  SelfProfiler prof(SmallRingConfig());
  const ScenarioOutputs profiled = RunScenario(&prof);
  // Same virtual end time and byte-identical metrics / PROF / FDR documents:
  // telemetry reads the host clock only and never touches virtual time.
  EXPECT_EQ(plain.end, profiled.end);
  EXPECT_EQ(plain.metrics_json, profiled.metrics_json);
  EXPECT_EQ(plain.prof_json, profiled.prof_json);
  EXPECT_EQ(plain.fdr_json, profiled.fdr_json);
  // And the profiler did observe the run.
  EXPECT_GT(prof.count(Count::kEvents), 0);
}

TEST(TelemetryTest, ScrubbedJsonIsByteIdenticalAcrossRuns) {
  SelfProfiler a(SmallRingConfig());
  RunScenario(&a);
  SelfProfiler b(SmallRingConfig());
  RunScenario(&b);
  std::ostringstream ja;
  a.WriteJson(ja, /*scrub_wall=*/true);
  std::ostringstream jb;
  b.WriteJson(jb, /*scrub_wall=*/true);
  EXPECT_EQ(ja.str(), jb.str());
  // The scrubbed document still carries the deterministic structure:
  // virtual-time-keyed samples, counts, buckets, node attribution.
  const std::string& doc = ja.str();
  for (const char* key :
       {"\"telemetry\"", "\"schema\"", "\"counts\"", "\"buckets\"", "\"event_loop\"",
        "\"fiber_run\"", "\"observer_fanout\"", "\"net_delivery\"", "\"node_dispatches\"",
        "\"samples\"", "\"virtual_time_ns\"", "\"queue_depth\"", "\"totals\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_GT(a.samples_taken(), 0) << "scenario too small to sample";
}

TEST(TelemetryTest, CountsAndBucketsObserveTheRun) {
  SelfProfiler prof(SmallRingConfig());
  RunScenario(&prof);
  EXPECT_GT(prof.count(Count::kEvents), 0);
  EXPECT_GT(prof.count(Count::kDispatches), 0);
  EXPECT_GT(prof.count(Count::kDescriptorLookups), 0);
  EXPECT_GT(prof.count(Count::kAllocations), 0);
  EXPECT_GT(prof.count(Count::kAllocBytes), prof.count(Count::kAllocations));
  // Every event-loop iteration lands in the umbrella bucket.
  EXPECT_EQ(prof.bucket_calls(Bucket::kEventLoop), prof.count(Count::kEvents));
  EXPECT_GT(prof.bucket_calls(Bucket::kFiberRun), 0);
  // Observers were attached, so the fan-out bucket saw traffic.
  EXPECT_GT(prof.bucket_calls(Bucket::kObserverFanout), 0);
  // Dispatch attribution covers both nodes and sums to the dispatch count.
  int64_t total = 0;
  for (int64_t d : prof.node_dispatches()) {
    total += d;
  }
  EXPECT_EQ(prof.node_dispatches().size(), 2u);
  EXPECT_EQ(total, prof.count(Count::kDispatches));
  EXPECT_GT(prof.EnabledWallNs(), 0);
  EXPECT_GT(prof.EventsPerSec(), 0.0);
}

TEST(TelemetryTest, SampleRingWrapsKeepingNewestChronologically) {
  SelfProfiler::Config cfg;
  cfg.sample_every_events = 1;
  cfg.ring_capacity = 4;
  SelfProfiler prof(cfg);
  prof.Enable();
  for (int i = 1; i <= 10; ++i) {
    prof.OnEventLoopIteration(/*virtual_now_ns=*/i * 100, /*queue_depth=*/i);
  }
  prof.Disable();
  EXPECT_EQ(prof.samples_taken(), 10);
  const auto samples = prof.SamplesChronological();
  ASSERT_EQ(samples.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(samples[i].virtual_time_ns, (7 + i) * 100);
    EXPECT_EQ(samples[i].events, 7 + i);
    EXPECT_EQ(samples[i].queue_depth, 7 + i);
  }
}

TEST(TelemetryTest, OpenMetricsExposition) {
  SelfProfiler::Config cfg;
  cfg.sample_every_events = 1;
  cfg.ring_capacity = 4;
  SelfProfiler prof(cfg);
  prof.Enable();
  prof.SetNodeCount(2);
  prof.NodeDispatch(0);
  prof.OnEventLoopIteration(/*virtual_now_ns=*/100, /*queue_depth=*/1);
  prof.Disable();
  std::ostringstream out;
  prof.WriteOpenMetrics(out);
  const std::string om = out.str();
  EXPECT_NE(om.find("# TYPE amber_selfprof_count_total counter"), std::string::npos);
  EXPECT_NE(om.find("amber_selfprof_count_total{kind=\"events\"} 1"), std::string::npos);
  EXPECT_NE(om.find("amber_selfprof_bucket_wall_seconds_total{bucket=\"event_loop\"}"),
            std::string::npos);
  EXPECT_NE(om.find("amber_selfprof_node_dispatches_total{node=\"0\"} 1"), std::string::npos);
  EXPECT_EQ(om.rfind("# EOF\n"), om.size() - 6);
}

TEST(TelemetryTest, FlushToWritesParseableJsonAtomically) {
  SelfProfiler::Config cfg;
  cfg.sample_every_events = 1;
  cfg.ring_capacity = 8;
  SelfProfiler prof(cfg);
  prof.Enable();
  for (int i = 1; i <= 5; ++i) {
    prof.OnEventLoopIteration(/*virtual_now_ns=*/i * 10, /*queue_depth=*/0);
  }
  prof.Disable();
  const std::string path = "TELEMETRY_unittest.json";
  ASSERT_TRUE(prof.FlushTo(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  fdrtool::Json doc;
  std::string error;
  ASSERT_TRUE(fdrtool::ParseJson(buf.str(), &doc, &error)) << error;
  EXPECT_EQ(doc.Str("telemetry"), "amber");
  ASSERT_NE(doc.Get("counts"), nullptr);
  EXPECT_EQ(doc.Get("counts")->Int("events"), 5);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(TelemetryTest, DisabledHotPathsAreInertAndSafe) {
  ASSERT_EQ(SelfProfiler::active(), nullptr);
  CountIfActive(Count::kDescriptorLookups);  // no-op, must not crash
  { ScopedWallTimer timer(Bucket::kNetDelivery); }
  // Enable/Disable pairs nest sanely and the destructor detaches.
  {
    SelfProfiler prof(SelfProfiler::Config{});
    prof.Enable();
    EXPECT_EQ(SelfProfiler::active(), &prof);
  }
  EXPECT_EQ(SelfProfiler::active(), nullptr);
}

}  // namespace
}  // namespace telemetry
