// Tests for Amber synchronization objects: spin locks, blocking locks,
// monitors/conditions, and barriers — co-resident and distributed.

#include "src/core/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/amber.h"

namespace amber {
namespace {

Runtime::Config TestConfig(int nodes = 2, int procs = 4) {
  Runtime::Config c;
  c.nodes = nodes;
  c.procs_per_node = procs;
  c.arena_bytes = size_t{256} << 20;
  c.initial_regions_per_node = 4;
  return c;
}

// A shared account protected by a member lock — the §3.6 pattern: the lock
// moves with the object and is acquired with plain (inline) calls.
class Account : public Object {
 public:
  int DepositTimes(int n) {
    for (int i = 0; i < n; ++i) {
      lock_.Acquire();
      const int v = balance_;
      Work(kMicrosecond * 50);  // window for lost updates without the lock
      balance_ = v + 1;
      lock_.Release();
    }
    return balance_;
  }
  int SpinDepositTimes(int n) {
    for (int i = 0; i < n; ++i) {
      spin_.Acquire();
      const int v = balance_;
      Work(kMicrosecond * 5);
      balance_ = v + 1;
      spin_.Release();
    }
    return balance_;
  }
  int balance() const { return balance_; }

 private:
  Lock lock_;
  SpinLock spin_;
  int balance_ = 0;
};

TEST(LockTest, MutualExclusionUnderContention) {
  Runtime rt(TestConfig(1, 4));
  rt.Run([&] {
    auto acct = New<Account>();
    std::vector<ThreadRef<int>> ts;
    for (int i = 0; i < 4; ++i) {
      ts.push_back(StartThread(acct, &Account::DepositTimes, 25));
    }
    for (auto& t : ts) {
      t.Join();
    }
    EXPECT_EQ(acct.Call(&Account::balance), 100) << "lost updates: lock failed";
  });
}

TEST(SpinLockTest, MutualExclusionUnderContention) {
  Runtime rt(TestConfig(1, 4));
  rt.Run([&] {
    auto acct = New<Account>();
    std::vector<ThreadRef<int>> ts;
    for (int i = 0; i < 3; ++i) {
      ts.push_back(StartThread(acct, &Account::SpinDepositTimes, 20));
    }
    for (auto& t : ts) {
      t.Join();
    }
    EXPECT_EQ(acct.Call(&Account::balance), 60);
  });
}

TEST(SpinLockTest, SpinnerHoldsProcessor) {
  // Two threads on a 2-CPU node; one holds the spin lock for 5 ms while the
  // other spins. A third CPU-hungry thread must NOT start until a processor
  // frees, proving the spinner kept its processor busy.
  class Spinny : public Object {
   public:
    void HoldLong() {
      spin_.Acquire();
      Work(Millis(10));
      spin_.Release();
    }
    void GrabShort() {
      spin_.Acquire();
      spin_.Release();
    }

   private:
    SpinLock spin_;
  };
  class Bystander : public Object {
   public:
    Time Mark() { return Now(); }
  };
  Runtime rt(TestConfig(1, 2));
  rt.Run([&] {
    auto s = New<Spinny>();
    auto b = New<Bystander>();
    auto t1 = StartThread(s, &Spinny::HoldLong);
    auto t2 = StartThread(s, &Spinny::GrabShort);
    auto t3 = StartThread(b, &Bystander::Mark);
    const Time marked = t3.Join();
    t1.Join();
    t2.Join();
    // t3 could only run once the spinner (t2) or holder (t1) released a CPU
    // — i.e. not before ~10 ms.
    EXPECT_GE(marked, Millis(9));
  });
}

TEST(LockTest, BlockedWaiterReleasesProcessor) {
  // Contrast with the spin test: a *blocking* waiter frees its CPU, so the
  // bystander runs immediately.
  class Blocky : public Object {
   public:
    void HoldLong() {
      lock_.Acquire();
      Work(Millis(10));
      lock_.Release();
    }
    void GrabShort() {
      lock_.Acquire();
      lock_.Release();
    }

   private:
    Lock lock_;
  };
  class Bystander : public Object {
   public:
    Time Mark() { return Now(); }
  };
  Runtime rt(TestConfig(1, 2));
  rt.Run([&] {
    auto s = New<Blocky>();
    auto b = New<Bystander>();
    auto t1 = StartThread(s, &Blocky::HoldLong);
    auto t2 = StartThread(s, &Blocky::GrabShort);
    auto t3 = StartThread(b, &Bystander::Mark);
    const Time marked = t3.Join();
    t1.Join();
    t2.Join();
    EXPECT_LT(marked, Millis(5));
  });
}

TEST(LockTest, FifoHandoffOrder) {
  class Ordered : public Object {
   public:
    void Enter(int id) {
      lock_.Acquire();
      order_.push_back(id);
      Work(kMicrosecond * 100);
      lock_.Release();
    }
    std::vector<int> order_;

   private:
    Lock lock_;
  };
  Runtime rt(TestConfig(1, 1));
  rt.Run([&] {
    auto o = New<Ordered>();
    std::vector<ThreadRef<void>> ts;
    for (int i = 0; i < 5; ++i) {
      ts.push_back(StartThread(o, &Ordered::Enter, i));
    }
    for (auto& t : ts) {
      t.Join();
    }
    EXPECT_EQ(o.unchecked()->order_, (std::vector<int>{0, 1, 2, 3, 4}));
  });
}

TEST(LockTest, NonHolderReleasePanics) {
  Runtime rt(TestConfig(1, 1));
  EXPECT_DEATH(rt.Run([&] {
    class Bad : public Object {
     public:
      void Naughty() { lock_.Release(); }
      Lock lock_;
    };
    auto b = New<Bad>();
    b.Call(&Bad::Naughty);
  }),
               "non-holder");
}

// A distributed lock: the lock object lives on node 1; threads on other
// nodes acquire it by remote invocation (§4.1 function-shipping sync).
TEST(LockTest, RemoteLockSynchronizesAcrossNodes) {
  class Locker : public Object {
   public:
    void Acquire() { lock_.Acquire(); }
    void Release() { lock_.Release(); }

   private:
    Lock lock_;
  };
  class NodeWorker : public Object {
   public:
    int Run(Ref<Locker> l, int n) {
      for (int i = 0; i < n; ++i) {
        l.Call(&Locker::Acquire);  // migrates to the lock's node...
        Work(kMicrosecond * 100);  // ...critical section back home? No:
        l.Call(&Locker::Release);  // §4.1: sync constraint enforced remotely
      }
      return n;
    }
  };
  Runtime rt(TestConfig(4, 2));
  rt.Run([&] {
    auto lock = New<Locker>();
    MoveTo(lock, 1);
    std::vector<ThreadRef<int>> ts;
    std::vector<Ref<NodeWorker>> ws;
    for (NodeId n = 0; n < 4; ++n) {
      ws.push_back(NewOn<NodeWorker>(n));
    }
    for (auto& w : ws) {
      ts.push_back(StartThread(w, &NodeWorker::Run, lock, 3));
    }
    for (auto& t : ts) {
      EXPECT_EQ(t.Join(), 3);
    }
    rt.ValidateLocationInvariants();
  });
}

TEST(ConditionTest, ProducerConsumer) {
  class Queue : public Object {
   public:
    void Put(int v) {
      MonitorGuard g(lock_);
      buf_.push_back(v);
      nonempty_.Signal();
    }
    int Take() {
      lock_.Acquire();
      while (buf_.empty()) {
        nonempty_.Wait(lock_);
      }
      const int v = buf_.front();
      buf_.erase(buf_.begin());
      lock_.Release();
      return v;
    }

   private:
    Lock lock_;
    Condition nonempty_;
    std::vector<int> buf_;
  };
  class Producer : public Object {
   public:
    void Produce(Ref<Queue> q, int n) {
      for (int i = 0; i < n; ++i) {
        Work(kMicrosecond * 200);
        q.Call(&Queue::Put, i);
      }
    }
  };
  Runtime rt(TestConfig(1, 2));
  rt.Run([&] {
    auto q = New<Queue>();
    auto p = New<Producer>();
    auto t = StartThread(p, &Producer::Produce, q, 5);
    std::vector<int> got;
    for (int i = 0; i < 5; ++i) {
      got.push_back(q.Call(&Queue::Take));
    }
    t.Join();
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  });
}

TEST(ConditionTest, BroadcastWakesAll) {
  class Gate : public Object {
   public:
    void WaitOpen() {
      lock_.Acquire();
      while (!open_) {
        cond_.Wait(lock_);
      }
      ++through_;
      lock_.Release();
    }
    void Open() {
      MonitorGuard g(lock_);
      open_ = true;
      cond_.Broadcast();
    }
    int through() const { return through_; }

   private:
    Lock lock_;
    Condition cond_;
    bool open_ = false;
    int through_ = 0;
  };
  Runtime rt(TestConfig(1, 4));
  rt.Run([&] {
    auto g = New<Gate>();
    std::vector<ThreadRef<void>> ts;
    for (int i = 0; i < 6; ++i) {
      ts.push_back(StartThread(g, &Gate::WaitOpen));
    }
    Work(Millis(2));  // let them all block
    g.Call(&Gate::Open);
    for (auto& t : ts) {
      t.Join();
    }
    EXPECT_EQ(g.Call(&Gate::through), 6);
  });
}

// The Monitor base class: operations wrap themselves in MonitorGuard on the
// inherited member lock, which stays co-resident with the object (§3.6).
TEST(MonitorTest, MonitoredObjectSerializesOperations) {
  class Stats : public Monitor {
   public:
    void Record(int v) {
      MonitorGuard g(monitor_lock());
      const int old_n = n_;
      const int old_sum = sum_;
      Work(kMicrosecond * 80);  // lost-update window without the monitor
      n_ = old_n + 1;
      sum_ = old_sum + v;
    }
    double Mean() {
      MonitorGuard g(monitor_lock());
      return n_ > 0 ? static_cast<double>(sum_) / n_ : 0.0;
    }

   private:
    int n_ = 0;
    int sum_ = 0;
  };
  Runtime rt(TestConfig(2, 4));
  rt.Run([&] {
    auto stats = New<Stats>();
    MoveTo(stats, 1);
    std::vector<ThreadRef<void>> ts;
    for (int i = 0; i < 10; ++i) {
      ts.push_back(StartThread(stats, &Stats::Record, 6));
    }
    for (auto& t : ts) {
      t.Join();
    }
    EXPECT_DOUBLE_EQ(stats.Call(&Stats::Mean), 6.0);
    rt.ValidateLocationInvariants();
  });
}

TEST(BarrierTest, AllPartiesRendezvous) {
  class Phased : public Object {
   public:
    explicit Phased(int parties) : barrier_(parties) {}
    std::vector<int64_t> RunPhases(int phases) {
      std::vector<int64_t> seen;
      for (int p = 0; p < phases; ++p) {
        Work(kMicrosecond * 100);
        seen.push_back(barrier_.Wait());
      }
      return seen;
    }

   private:
    Barrier barrier_;
  };
  Runtime rt(TestConfig(1, 4));
  rt.Run([&] {
    auto obj = New<Phased>(4);
    std::vector<ThreadRef<std::vector<int64_t>>> ts;
    for (int i = 0; i < 4; ++i) {
      ts.push_back(StartThread(obj, &Phased::RunPhases, 3));
    }
    for (auto& t : ts) {
      EXPECT_EQ(t.Join(), (std::vector<int64_t>{0, 1, 2}));
    }
  });
}

TEST(BarrierTest, CrossNodeBarrier) {
  // Threads on 4 different nodes meet at a barrier object on node 0: each
  // Wait migrates the caller to the barrier and back (§2.2: mobile,
  // remotely invocable synchronization objects).
  class BarrierBox : public Object {
   public:
    explicit BarrierBox(int parties) : barrier_(parties) {}
    int64_t Meet() { return barrier_.Wait(); }

   private:
    Barrier barrier_;
  };
  class NodeWorker : public Object {
   public:
    NodeId RunRounds(Ref<BarrierBox> b, int rounds) {
      for (int i = 0; i < rounds; ++i) {
        Work(Millis(1));
        b.Call(&BarrierBox::Meet);
        EXPECT_EQ(Here(), start_) << "must return to my node after the barrier";
      }
      return Here();
    }
    void Init() { start_ = Here(); }

   private:
    NodeId start_ = kNoNode;
  };
  Runtime rt(TestConfig(4, 2));
  rt.Run([&] {
    auto b = New<BarrierBox>(4);
    std::vector<ThreadRef<NodeId>> ts;
    for (NodeId n = 0; n < 4; ++n) {
      auto w = NewOn<NodeWorker>(n);
      w.Call(&NodeWorker::Init);
      ts.push_back(StartThread(w, &NodeWorker::RunRounds, b, 3));
    }
    for (NodeId n = 0; n < 4; ++n) {
      EXPECT_EQ(ts[static_cast<size_t>(n)].Join(), n);
    }
  });
}

TEST(BarrierTest, SinglePartyNeverBlocks) {
  Runtime rt(TestConfig(1, 1));
  rt.Run([&] {
    class Solo : public Object {
     public:
      Solo() : b_(1) {}
      int64_t Go() {
        b_.Wait();
        b_.Wait();
        return b_.Wait();
      }

     private:
      Barrier b_;
    };
    auto s = New<Solo>();
    EXPECT_EQ(s.Call(&Solo::Go), 2);
  });
}

TEST(MovableLockTest, LockMovesWhileWaitersBlocked) {
  // Move a lock object while threads are blocked on it; when released and
  // rescheduled, waiters chase it to the new node and still get FIFO order.
  class LockBox : public Object {
   public:
    void HoldFor(Duration d) {
      lock_.Acquire();
      Work(d);
      lock_.Release();
    }
    NodeId AcquireAndReport() {
      lock_.Acquire();
      const NodeId n = Here();
      lock_.Release();
      return n;
    }

   private:
    Lock lock_;
  };
  Runtime rt(TestConfig(3, 2));
  rt.Run([&] {
    auto box = New<LockBox>();
    auto holder = StartThread(box, &LockBox::HoldFor, Duration{Millis(20)});
    Work(Millis(2));
    auto waiter = StartThread(box, &LockBox::AcquireAndReport);
    Work(Millis(2));
    MoveTo(box, 2);  // move the lock (and bound holder, lazily) mid-hold
    holder.Join();
    EXPECT_EQ(waiter.Join(), 2) << "waiter must acquire at the lock's new node";
    rt.ValidateLocationInvariants();
  });
}

}  // namespace
}  // namespace amber
