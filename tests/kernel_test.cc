// Tests for the discrete-event kernel: clocks, charging, timeslicing,
// processor occupancy, blocking/waking, migration, preemption, determinism.

#include "src/sim/kernel.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/base/time.h"
#include "src/sim/stack_pool.h"

namespace sim {
namespace {

using amber::Micros;
using amber::Millis;
using amber::Time;

// Convenience harness: owns a kernel + stack pool, tracks spawned fibers.
class Harness {
 public:
  Harness(int nodes, int procs, CostModel cost = CostModel{}) : pool_(64 * 1024) {
    Kernel::Config config;
    config.nodes = nodes;
    config.procs_per_node = procs;
    config.cost = cost;
    kernel_ = std::make_unique<Kernel>(config);
  }

  Fiber* Go(NodeId node, std::function<void()> fn, std::string name = "") {
    void* stack = pool_.Allocate();
    stacks_.push_back(stack);
    return kernel_->Spawn(node, stack, pool_.stack_size(), std::move(fn), std::move(name));
  }

  Kernel& k() { return *kernel_; }

 private:
  StackPool pool_;
  std::vector<void*> stacks_;
  std::unique_ptr<Kernel> kernel_;
};

// A zero-overhead cost model so tests can reason about exact times.
CostModel FreeCpu() {
  CostModel c;
  c.context_switch = 0;
  c.preempt_ipi = 0;
  c.quantum = Millis(10);
  return c;
}

TEST(KernelTest, ChargeAdvancesVirtualTime) {
  Harness h(1, 1, FreeCpu());
  Time end_time = -1;
  h.Go(0, [&] {
    EXPECT_EQ(h.k().Now(), 0);
    h.k().Charge(Micros(250));
    EXPECT_EQ(h.k().Now(), Micros(250));
    h.k().Charge(Micros(750));
    end_time = h.k().Now();
  });
  h.k().Run();
  EXPECT_EQ(end_time, Micros(1000));
  EXPECT_EQ(h.k().live_fibers(), 0);
}

TEST(KernelTest, RunReturnsFinalTime) {
  Harness h(1, 1, FreeCpu());
  h.Go(0, [&] { h.k().Charge(Millis(3)); });
  EXPECT_EQ(h.k().Run(), Millis(3));
}

TEST(KernelTest, SyncPreservesVirtualTime) {
  Harness h(1, 1, FreeCpu());
  h.Go(0, [&] {
    h.k().Charge(Micros(100));
    const Time before = h.k().Now();
    h.k().Sync();
    EXPECT_EQ(h.k().Now(), before);
  });
  h.k().Run();
}

TEST(KernelTest, TwoProcessorsRunInParallel) {
  Harness h(1, 2, FreeCpu());
  // Two fibers each burning 5 ms on a 2-CPU node: total elapsed 5 ms.
  for (int i = 0; i < 2; ++i) {
    h.Go(0, [&] { h.k().Charge(Millis(5)); });
  }
  EXPECT_EQ(h.k().Run(), Millis(5));
}

TEST(KernelTest, OneProcessorSerializes) {
  Harness h(1, 1, FreeCpu());
  for (int i = 0; i < 2; ++i) {
    h.Go(0, [&] { h.k().Charge(Millis(5)); });
  }
  EXPECT_EQ(h.k().Run(), Millis(10));
}

TEST(KernelTest, TimeslicingInterleavesCpuBoundFibers) {
  CostModel cost = FreeCpu();
  cost.quantum = Millis(1);
  Harness h(1, 1, cost);
  std::vector<int> order;
  for (int i = 0; i < 2; ++i) {
    h.Go(0, [&, i] {
      for (int chunk = 0; chunk < 3; ++chunk) {
        h.k().Charge(Millis(1));
        order.push_back(i);
      }
    });
  }
  h.k().Run();
  // Round-robin: 0,1,0,1,0,1 — not 0,0,0,1,1,1.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(KernelTest, QuantumExtendsWhenAlone) {
  CostModel cost = FreeCpu();
  cost.quantum = Millis(1);
  Harness h(1, 1, cost);
  h.Go(0, [&] { h.k().Charge(Millis(50)); });
  h.k().Run();
  EXPECT_EQ(h.k().preemptions(), 0u);  // nobody waiting: no preemption churn
}

TEST(KernelTest, BlockAndWake) {
  Harness h(1, 2, FreeCpu());
  Fiber* sleeper = nullptr;
  Time woke_at = -1;
  sleeper = h.Go(0, [&] {
    h.k().Sync();
    h.k().Block();
    woke_at = h.k().Now();
  });
  h.Go(0, [&] {
    h.k().Charge(Millis(7));
    h.k().Sync();
    h.k().Wake(sleeper, h.k().Now());
  });
  h.k().Run();
  EXPECT_EQ(woke_at, Millis(7));
}

TEST(KernelTest, TravelToMovesFiberBetweenNodes) {
  Harness h(3, 1, FreeCpu());
  std::vector<NodeId> visited;
  h.Go(0, [&] {
    visited.push_back(h.k().current()->node);
    h.k().Sync();
    h.k().TravelTo(2, h.k().Now() + Millis(4));
    visited.push_back(h.k().current()->node);
    EXPECT_EQ(h.k().Now(), Millis(4));
    h.k().Sync();
    h.k().TravelTo(1, h.k().Now() + Millis(4));
    visited.push_back(h.k().current()->node);
  });
  h.k().Run();
  EXPECT_EQ(visited, (std::vector<NodeId>{0, 2, 1}));
}

TEST(KernelTest, TravelReleasesSourceProcessor) {
  Harness h(2, 1, FreeCpu());
  Time second_started = -1;
  h.Go(0, [&] {
    h.k().Charge(Millis(1));
    h.k().Sync();
    h.k().TravelTo(1, h.k().Now() + Millis(100));
  });
  h.Go(0, [&] { second_started = h.k().Now(); h.k().Charge(Millis(1)); });
  h.k().Run();
  // The second fiber gets node 0's CPU as soon as the traveler departs.
  EXPECT_EQ(second_started, Millis(1));
}

TEST(KernelTest, ResumeHookRunsAfterPreemption) {
  CostModel cost = FreeCpu();
  cost.quantum = Millis(1);
  Harness h(1, 1, cost);
  int hook_runs = 0;
  h.k().SetResumeHook([&](Fiber*) { ++hook_runs; });
  for (int i = 0; i < 2; ++i) {
    h.Go(0, [&] { h.k().Charge(Millis(3)); });
  }
  h.k().Run();
  EXPECT_GT(hook_runs, 0);
}

TEST(KernelTest, RequestPreemptForcesReschedule) {
  CostModel cost = FreeCpu();
  cost.quantum = Micros(500);  // boundaries often enough to observe the flag
  Harness h(1, 2, cost);
  h.Go(0, [&] {
    // Worker charges in small chunks; each chunk is a preemption opportunity.
    for (int i = 0; i < 100; ++i) {
      h.k().Charge(Micros(100));
    }
  });
  h.Go(0, [&] {
    h.k().Charge(Millis(2));
    h.k().Sync();
    EXPECT_EQ(h.k().RequestPreempt(0), 1);  // flags the worker, not self
  });
  const uint64_t preempts_before = h.k().preemptions();
  h.k().Run();
  EXPECT_GT(h.k().preemptions(), preempts_before);
}

TEST(KernelTest, BusyTimeAccounting) {
  Harness h(2, 2, FreeCpu());
  h.Go(0, [&] { h.k().Charge(Millis(5)); });
  h.Go(0, [&] { h.k().Charge(Millis(3)); });
  h.Go(1, [&] { h.k().Charge(Millis(2)); });
  h.k().Run();
  EXPECT_EQ(h.k().NodeBusyTime(0), Millis(8));
  EXPECT_EQ(h.k().NodeBusyTime(1), Millis(2));
}

TEST(KernelTest, SpawnFromFiber) {
  Harness h(1, 2, FreeCpu());
  Time child_ran_at = -1;
  h.Go(0, [&] {
    h.k().Charge(Millis(2));
    h.k().Sync();
    h.Go(0, [&] { child_ran_at = h.k().Now(); });
  });
  h.k().Run();
  EXPECT_EQ(child_ran_at, Millis(2));
}

TEST(KernelTest, OnExitRunsBeforeTeardown) {
  Harness h(1, 1, FreeCpu());
  bool exited = false;
  Fiber* f = h.Go(0, [&] { h.k().Charge(Millis(1)); });
  f->on_exit = [&] { exited = true; };
  h.k().Run();
  EXPECT_TRUE(exited);
  EXPECT_EQ(f->state, FiberState::kFinished);
}

TEST(KernelTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Harness h(4, 2, CostModel{});
    std::vector<std::pair<int, Time>> log;
    for (int i = 0; i < 8; ++i) {
      h.Go(i % 4, [&h, &log, i] {
        for (int r = 0; r < 5; ++r) {
          h.k().Charge(Micros(100 + 37 * i));
          h.k().Sync();
          log.emplace_back(i, h.k().Now());
        }
      });
    }
    h.k().Run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(KernelTest, ContextSwitchCostCharged) {
  CostModel cost;
  cost.context_switch = Micros(50);
  Harness h(1, 1, cost);
  Time first_seen = -1;
  h.Go(0, [&] { first_seen = h.k().Now(); });
  h.k().Run();
  EXPECT_EQ(first_seen, Micros(50));  // dispatch pays one context switch
}

TEST(KernelTest, ReplaceRunQueueWithPriority) {
  CostModel cost = FreeCpu();
  Harness h(1, 1, cost);
  std::vector<int> order;
  // Spawn a starter that sets up the priority queue, then three children
  // whose priorities invert their spawn order.
  h.Go(0, [&] {
    h.k().SetRunQueue(0, std::make_unique<PriorityRunQueue>());
    h.k().Sync();
    for (int i = 0; i < 3; ++i) {
      Fiber* f = h.Go(0, [&order, i] { order.push_back(i); });
      f->priority = i;  // higher wins
    }
  });
  h.k().Run();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(KernelTest, DestroyFiberReclaimsRecord) {
  Harness h(1, 1, FreeCpu());
  Fiber* f = h.Go(0, [] {});
  h.k().Run();
  h.k().DestroyFiber(f);  // must not crash; fiber is finished
}

TEST(EventQueueTest, OrdersByTimeThenSequence) {
  EventQueue q;
  std::vector<int> order;
  q.Post(10, [&] { order.push_back(1); });
  q.Post(5, [&] { order.push_back(0); });
  q.Post(10, [&] { order.push_back(2); });  // same time: FIFO by sequence
  while (q.RunOne()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.now(), 10);
}

TEST(EventQueueTest, EventsCanPostEvents) {
  EventQueue q;
  int runs = 0;
  std::function<void()> chain = [&] {
    if (++runs < 5) {
      q.Post(q.now() + 1, chain);
    }
  };
  q.Post(0, chain);
  while (q.RunOne()) {
  }
  EXPECT_EQ(runs, 5);
  EXPECT_EQ(q.now(), 4);
}

}  // namespace
}  // namespace sim
