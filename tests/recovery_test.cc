// Tests for crash recovery and planned shutdown: immutable objects re-bind
// to a surviving replica (deterministic lowest-live-node election), mutable
// objects opted in with amber::SetRecoverable restore their last buddy
// checkpoint (the documented staleness contract: work since the checkpoint
// is lost), lost threads surface through TryJoin instead of hanging, and
// DrainNode evacuates a node's residents — attach groups intact.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/amber.h"
#include "src/fault/fault.h"
#include "src/metrics/metrics.h"

namespace amber {
namespace {

Runtime::Config TestConfig(int nodes = 4, int procs = 2) {
  Runtime::Config c;
  c.nodes = nodes;
  c.procs_per_node = procs;
  c.arena_bytes = size_t{256} << 20;
  c.initial_regions_per_node = 4;
  return c;
}

class Counter : public Object {
 public:
  int Add(int d) {
    Work(kMicrosecond * 20);
    value_ += d;
    return value_;
  }
  int Get() const { return value_; }
  int Spin() {
    Work(Millis(30));
    return 1;
  }

 private:
  int value_ = 0;
};

// Records recovery and drain events published on the observer bus.
struct RecoveryLog : RuntimeObserver {
  struct Recovered {
    const void* obj;
    NodeId from;
    NodeId to;
    bool from_checkpoint;
  };
  struct Drained {
    NodeId node;
    int moved;
  };
  std::vector<Recovered> recovered;
  std::vector<Drained> drained;

  void OnObjectRecovered(Time /*when*/, const void* obj, NodeId from, NodeId to,
                         bool from_checkpoint) override {
    recovered.push_back({obj, from, to, from_checkpoint});
  }
  void OnNodeDrained(Time /*when*/, NodeId node, int objects_moved) override {
    drained.push_back({node, objects_moved});
  }
};

fault::FaultPlan CrashPlan(NodeId node, Time crash_at, Time restart_at = -1) {
  fault::FaultPlan plan;
  fault::NodeEvent ev;
  ev.node = node;
  ev.crash_at = crash_at;
  ev.restart_at = restart_at;
  plan.node_events.push_back(ev);
  return plan;
}

TEST(RecoveryTest, ImmutableHomeCrashRebindsToLowestLiveReplica) {
  Runtime rt(TestConfig());
  fault::Injector injector(CrashPlan(/*node=*/3, /*crash_at=*/Millis(35)));
  metrics::Registry metrics;
  RecoveryLog log;
  rt.SetMetrics(&metrics);
  rt.AddObserver(&log);
  rt.SetFaultInjector(&injector);
  rt.SetFailureHandler([](const FailureEvent&) { return FailureAction::kRecover; });
  rt.Run([&] {
    // A root-level Call leaves this thread at the callee's node (its thread
    // object travels with it), so keep an anchor on node 0 to hop home
    // before the crash lands — the crash must not take the driver with it.
    auto anchor = New<Counter>();
    auto c = NewOn<Counter>(3);            // homed on the node about to die
    c.Call(&Counter::Add, 7);              // driver is now on node 3
    MakeImmutable(c);
    ASSERT_EQ(MoveTo(c, 1), Status::kOk);  // replica on a survivor
    anchor.Call(&Counter::Get);            // driver back on node 0
    Work(Millis(100));                     // crash lands, suspicion matures
    // The home is dead; invocation transparently re-binds to the surviving
    // replica — the lowest live holder becomes the new home.
    EXPECT_EQ(c.Call(&Counter::Get), 7);
    EXPECT_EQ(Locate(c), 1);
    rt.ValidateLocationInvariants();
  });
  ASSERT_EQ(log.recovered.size(), 1u);
  EXPECT_EQ(log.recovered[0].from, 3);
  EXPECT_EQ(log.recovered[0].to, 1);
  EXPECT_FALSE(log.recovered[0].from_checkpoint);
  EXPECT_EQ(metrics.CounterTotal("recovery.rebinds"), 1);
  EXPECT_EQ(metrics.CounterTotal("recovery.restores"), 0);
}

TEST(RecoveryTest, CheckpointRestoreHonorsStalenessContract) {
  Runtime rt(TestConfig());
  fault::Injector injector(CrashPlan(/*node=*/2, /*crash_at=*/Millis(45)));
  metrics::Registry metrics;
  RecoveryLog log;
  rt.SetMetrics(&metrics);
  rt.AddObserver(&log);
  rt.SetFaultInjector(&injector);
  rt.SetFailureHandler([](const FailureEvent&) { return FailureAction::kRecover; });
  rt.Run([&] {
    auto anchor = New<Counter>();          // the driver's way home (node 0)
    auto c = New<Counter>();
    SetRecoverable(c);
    ASSERT_EQ(MoveTo(c, 2), Status::kOk);  // successful move re-checkpoints
    c.Call(&Counter::Add, 5);              // driver is now on node 2
    ASSERT_TRUE(Checkpoint(c));  // value 5 committed to the buddy
    c.Call(&Counter::Add, 3);    // applied in memory, never checkpointed
    anchor.Call(&Counter::Get);  // driver back on node 0, clear of the blast
    Work(Millis(110));           // node 2 dies; suspicion matures
    // The staleness contract: recovery restores the *last checkpoint* — the
    // un-checkpointed +3 is lost and the application re-runs from 5.
    EXPECT_EQ(c.Call(&Counter::Get), 5);
    EXPECT_EQ(Locate(c), 0);  // restored on the buddy (lowest live != 2)
    EXPECT_EQ(c.Call(&Counter::Add, 2), 7);  // usable after recovery
    rt.ValidateLocationInvariants();
  });
  ASSERT_EQ(log.recovered.size(), 1u);
  EXPECT_EQ(log.recovered[0].from, 2);
  EXPECT_EQ(log.recovered[0].to, 0);
  EXPECT_TRUE(log.recovered[0].from_checkpoint);
  EXPECT_EQ(metrics.CounterTotal("recovery.restores"), 1);
  // SetRecoverable, the move, and the explicit call each took a checkpoint.
  EXPECT_GE(metrics.CounterTotal("recovery.checkpoints"), 3);
}

TEST(RecoveryTest, LostThreadSurfacesThroughTryJoinAndFinishesAfterRestart) {
  Runtime rt(TestConfig());
  fault::Injector injector(CrashPlan(/*node=*/2, /*crash_at=*/Millis(10),
                                     /*restart_at=*/Millis(60)));
  rt.SetFaultInjector(&injector);
  rt.SetFailureHandler([](const FailureEvent&) { return FailureAction::kRetry; });
  rt.Run([&] {
    auto c = New<Counter>();
    ASSERT_EQ(MoveTo(c, 2), Status::kOk);
    auto w = StartThread(c, &Counter::Spin);  // freezes mid-Work at the crash
    Work(Millis(5));
    bool saw_lost = false;
    while (!w.TryJoin()) {  // false once node 2's lease expires
      saw_lost = true;
      EXPECT_TRUE(w.object()->lost());
      Work(Millis(5));
    }
    EXPECT_TRUE(saw_lost);
    EXPECT_EQ(w.result(), 1);  // the thread finished after the restart
    EXPECT_GT(Now(), Millis(60));
  });
}

TEST(RecoveryTest, DrainNodeEvacuatesResidentsAndAttachGroups) {
  Runtime rt(TestConfig());  // fault-free: drain is a planned operation
  RecoveryLog log;
  rt.AddObserver(&log);
  rt.Run([&] {
    auto m = New<Counter>();
    ASSERT_EQ(MoveTo(m, 1), Status::kOk);
    m.Call(&Counter::Add, 4);
    auto parent = New<Counter>();
    ASSERT_EQ(MoveTo(parent, 1), Status::kOk);
    auto child = New<Counter>();
    Attach(child, parent);
    auto imm = New<Counter>();
    imm.Call(&Counter::Add, 9);
    ASSERT_EQ(MoveTo(imm, 1), Status::kOk);
    MakeImmutable(imm);

    const int moved = DrainNode(1);
    EXPECT_GE(moved, 3);  // m, the attach group, imm

    EXPECT_NE(Locate(m), 1);
    EXPECT_NE(Locate(parent), 1);
    EXPECT_NE(Locate(imm), 1);
    EXPECT_EQ(Locate(child), Locate(parent));  // the group moved as a unit
    EXPECT_EQ(m.Call(&Counter::Get), 4);
    EXPECT_EQ(imm.Call(&Counter::Get), 9);
    rt.ValidateLocationInvariants();

    ASSERT_EQ(log.drained.size(), 1u);
    EXPECT_EQ(log.drained[0].node, 1);
    EXPECT_EQ(log.drained[0].moved, moved);
  });
}

}  // namespace
}  // namespace amber
