// Tests for the reliable RPC path: virtual-time timeouts, capped exponential
// backoff retransmission, receiver-side duplicate suppression, and the typed
// kTimeout surface for permanent partitions. Frames are dropped by a scripted
// net::FaultFilter so each scenario controls exactly which transmission dies.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/net/network.h"
#include "src/rpc/transport.h"
#include "src/sim/stack_pool.h"

namespace rpc {
namespace {

using amber::Micros;
using amber::Millis;
using amber::Time;
using sim::CostModel;
using sim::Kernel;

CostModel SimpleNet() {
  CostModel c;
  c.context_switch = 0;
  c.rpc_send_software = 0;
  c.rpc_recv_software = 0;
  c.marshal_base = 0;
  c.marshal_ns_per_byte = 0;
  c.media_access = Micros(100);
  c.propagation = Micros(10);
  c.bandwidth_bits_per_sec = 10e6;
  c.per_fragment_overhead = 0;
  c.mtu_bytes = 1500;
  return c;
}

// Drops the frames whose (1-based) transmission index the script selects;
// everything else is delivered untouched.
class ScriptedFilter : public net::FaultFilter {
 public:
  explicit ScriptedFilter(std::function<bool(int frame, sim::NodeId src, sim::NodeId dst)> drop)
      : drop_(std::move(drop)) {}

  net::FaultDecision OnTransmit(sim::NodeId src, sim::NodeId dst, int64_t /*bytes*/,
                                Time /*depart*/, bool /*bulk*/) override {
    ++frames_;
    if (drop_(frames_, src, dst)) {
      return net::FaultDecision{net::FaultAction::kDrop, 0};
    }
    return net::FaultDecision{};
  }

  int frames() const { return frames_; }

 private:
  std::function<bool(int, sim::NodeId, sim::NodeId)> drop_;
  int frames_ = 0;
};

class RetryHarness {
 public:
  explicit RetryHarness(int nodes = 4) : pool_(64 * 1024) {
    Kernel::Config config;
    config.nodes = nodes;
    config.procs_per_node = 1;
    config.cost = SimpleNet();
    kernel_ = std::make_unique<Kernel>(config);
    net_ = std::make_unique<net::Network>(kernel_.get());
    transport_ = std::make_unique<Transport>(kernel_.get(), net_.get());
    transport_->EnableReliability(true);
  }

  sim::Fiber* Go(sim::NodeId node, std::function<void()> fn) {
    void* stack = pool_.Allocate();
    return kernel_->Spawn(node, stack, pool_.stack_size(), std::move(fn));
  }

  Kernel& k() { return *kernel_; }
  net::Network& net() { return *net_; }
  Transport& rpc() { return *transport_; }

 private:
  sim::StackPool pool_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<Transport> transport_;
};

TEST(RpcRetryTest, DroppedRequestIsRetransmittedAndSucceeds) {
  RetryHarness h;
  // Frame 1 is the first request transmission: kill it.
  ScriptedFilter filter([](int frame, sim::NodeId, sim::NodeId) { return frame == 1; });
  h.net().SetFaultFilter(&filter);
  int service_runs = 0;
  RoundtripResult rr;
  h.Go(0, [&] {
    rr = h.rpc().Roundtrip(2, 100, [&]() -> int64_t {
      ++service_runs;
      return 100;
    });
  });
  h.k().Run();
  EXPECT_EQ(rr.status, SendStatus::kOk);
  EXPECT_EQ(rr.attempts, 2);
  EXPECT_EQ(service_runs, 1);
  EXPECT_EQ(h.rpc().retries(), 1);
  EXPECT_EQ(h.rpc().timeouts(), 0);
  // The retry waited out the first-attempt timeout before retransmitting.
  EXPECT_GT(rr.completed, h.rpc().retry_policy().timeout);
}

TEST(RpcRetryTest, DroppedReplyIsSuppressedAtReceiverNotReExecuted) {
  RetryHarness h;
  // Frame 1 = request (delivered), frame 2 = reply (dropped). The requester
  // times out and retransmits (frame 3); the receiver recognizes the
  // duplicate, does NOT re-run the service, and re-sends the cached reply
  // (frame 4).
  ScriptedFilter filter([](int frame, sim::NodeId, sim::NodeId) { return frame == 2; });
  h.net().SetFaultFilter(&filter);
  int service_runs = 0;
  RoundtripResult rr;
  h.Go(0, [&] {
    rr = h.rpc().Roundtrip(2, 100, [&]() -> int64_t {
      ++service_runs;
      return 100;
    });
  });
  h.k().Run();
  EXPECT_EQ(rr.status, SendStatus::kOk);
  EXPECT_EQ(rr.attempts, 2);
  EXPECT_EQ(service_runs, 1);  // at-most-once execution
  EXPECT_EQ(h.rpc().duplicates_suppressed(), 1);
  EXPECT_EQ(filter.frames(), 4);
}

TEST(RpcRetryTest, PermanentPartitionReturnsTypedTimeout) {
  RetryHarness h;
  // Node 2 is unreachable from node 0, forever.
  ScriptedFilter filter([](int, sim::NodeId src, sim::NodeId dst) {
    return (src == 0 && dst == 2) || (src == 2 && dst == 0);
  });
  h.net().SetFaultFilter(&filter);
  RetryPolicy policy;
  policy.timeout = Millis(5);
  policy.timeout_cap = Millis(20);
  policy.max_attempts = 4;
  h.rpc().SetRetryPolicy(policy);
  int service_runs = 0;
  RoundtripResult rr;
  bool returned = false;
  h.Go(0, [&] {
    rr = h.rpc().Roundtrip(2, 100, [&]() -> int64_t {
      ++service_runs;
      return 100;
    });
    returned = true;
  });
  h.k().Run();
  ASSERT_TRUE(returned);  // the caller got an answer, not a hang
  EXPECT_EQ(rr.status, SendStatus::kTimeout);
  EXPECT_EQ(rr.attempts, 4);
  EXPECT_EQ(service_runs, 0);
  EXPECT_EQ(h.rpc().timeouts(), 1);
  EXPECT_EQ(h.rpc().retries(), 3);
  // Give-up time = 5 + 10 + 20 + 20 ms of per-attempt waits (cap at 20 ms)
  // plus the per-attempt send paths; check the backoff shape via a floor.
  EXPECT_GE(rr.completed, Millis(5) + Millis(10) + Millis(20) + Millis(20));
}

TEST(RpcRetryTest, TravelRetriesLostCarrierFrame) {
  RetryHarness h;
  ScriptedFilter filter([](int frame, sim::NodeId, sim::NodeId) { return frame == 1; });
  h.net().SetFaultFilter(&filter);
  TravelResult tr;
  sim::NodeId landed = -1;
  h.Go(0, [&] {
    tr = h.rpc().Travel(3, 1000);
    landed = h.k().current()->node;
  });
  h.k().Run();
  EXPECT_EQ(tr.status, SendStatus::kOk);
  EXPECT_EQ(tr.attempts, 2);
  EXPECT_EQ(landed, 3);
}

TEST(RpcRetryTest, TravelAgainstDeadLinkTimesOutAtSource) {
  RetryHarness h;
  ScriptedFilter filter([](int, sim::NodeId src, sim::NodeId) { return src == 0; });
  h.net().SetFaultFilter(&filter);
  RetryPolicy policy;
  policy.timeout = Millis(2);
  policy.timeout_cap = Millis(4);
  policy.max_attempts = 3;
  h.rpc().SetRetryPolicy(policy);
  TravelResult tr;
  sim::NodeId landed = -1;
  h.Go(0, [&] {
    tr = h.rpc().Travel(3, 1000);
    landed = h.k().current()->node;  // never left
  });
  h.k().Run();
  EXPECT_EQ(tr.status, SendStatus::kTimeout);
  EXPECT_EQ(tr.attempts, 3);
  EXPECT_EQ(landed, 0);
}

// Delivers every frame, but `delay` late (fault-injected jitter).
class DelayAllFilter : public net::FaultFilter {
 public:
  explicit DelayAllFilter(amber::Duration delay) : delay_(delay) {}

  net::FaultDecision OnTransmit(sim::NodeId, sim::NodeId, int64_t, Time, bool) override {
    return net::FaultDecision{net::FaultAction::kDeliver, delay_};
  }

 private:
  amber::Duration delay_;
};

TEST(RpcRetryTest, LateDeliveredRequestAfterGiveUpDoesNotRunService) {
  RetryHarness h;
  // Every frame arrives 500 ms late — far beyond the whole retry budget
  // (2 + 4 + 4 ms), so every request reaches the receiver only after the
  // caller returned kTimeout and its stack frame unwound. A late delivery
  // must not execute the service (it references the caller's frame).
  DelayAllFilter filter(Millis(500));
  h.net().SetFaultFilter(&filter);
  RetryPolicy policy;
  policy.timeout = Millis(2);
  policy.timeout_cap = Millis(4);
  policy.max_attempts = 3;
  h.rpc().SetRetryPolicy(policy);
  int service_runs = 0;
  RoundtripResult rr;
  h.Go(0, [&] {
    rr = h.rpc().Roundtrip(2, 100, [&]() -> int64_t {
      ++service_runs;
      return 100;
    });
  });
  h.k().Run();  // runs past the delayed arrivals
  EXPECT_EQ(rr.status, SendStatus::kTimeout);
  EXPECT_EQ(service_runs, 0);
  EXPECT_EQ(h.rpc().timeouts(), 1);
}

TEST(RpcRetryTest, RequestInFlightWhenReceiverCrashesIsNotServed) {
  RetryHarness h;
  // A pass-through filter: its presence arms the network's arrival-time
  // liveness re-check (as any non-empty fault plan would).
  ScriptedFilter filter([](int, sim::NodeId, sim::NodeId) { return false; });
  h.net().SetFaultFilter(&filter);
  RetryPolicy policy;
  policy.timeout = Millis(2);
  policy.timeout_cap = Millis(4);
  policy.max_attempts = 3;
  h.rpc().SetRetryPolicy(policy);
  // The first request departs at t=0 and arrives at t=190 µs (media + wire
  // + propagation); node 2 dies at t=50 µs with the frame in flight. A dead
  // node must not execute the service or send a reply.
  h.k().Post(Micros(50), [&] { h.k().SetNodeUp(2, false); });
  int service_runs = 0;
  RoundtripResult rr;
  h.Go(0, [&] {
    rr = h.rpc().Roundtrip(2, 100, [&]() -> int64_t {
      ++service_runs;
      return 100;
    });
  });
  h.k().Run();
  EXPECT_EQ(rr.status, SendStatus::kTimeout);
  EXPECT_EQ(service_runs, 0);
  EXPECT_EQ(h.rpc().timeouts(), 1);
}

TEST(RpcRetryTest, ReplyCacheStaysBoundedByInFlightRequests) {
  RetryHarness h;
  // Lossless run with concurrent requesters: the duplicate-suppression
  // cache must hold at most one entry per in-flight roundtrip (an entry is
  // born when the service runs and dies when the requester completes), and
  // must be empty once everything quiesced — not grow with request count.
  constexpr int kRequesters = 6;
  constexpr int kRoundsEach = 20;
  int completed = 0;
  for (int r = 0; r < kRequesters; ++r) {
    h.Go(r % 2, [&h, &completed, r] {
      for (int i = 0; i < kRoundsEach; ++i) {
        RoundtripResult rr = h.rpc().Roundtrip(2 + (r % 2), 100, []() -> int64_t { return 64; });
        ASSERT_EQ(rr.status, SendStatus::kOk);
        // O(in-flight): never more entries than concurrent requesters.
        ASSERT_LE(h.rpc().reply_cache_size(), static_cast<size_t>(kRequesters));
        ++completed;
      }
    });
  }
  h.k().Run();
  EXPECT_EQ(completed, kRequesters * kRoundsEach);
  EXPECT_EQ(h.rpc().reply_cache_size(), 0u);  // every completion acked its entry
}

TEST(RpcRetryTest, OrphanedReplyIsEvictedAfterWorstCaseRetryWindow) {
  RetryHarness h;
  // Pass-through filter: arms the arrival-time liveness re-check.
  ScriptedFilter filter([](int, sim::NodeId, sim::NodeId) { return false; });
  h.net().SetFaultFilter(&filter);
  RetryPolicy policy;
  policy.timeout = Millis(2);
  policy.timeout_cap = Millis(4);
  policy.max_attempts = 3;  // worst-case window: 2 + 4 + 4 = 10 ms
  h.rpc().SetRetryPolicy(policy);
  // Requester on node 0 calls node 2; the service runs (entry cached), then
  // node 0 dies with the reply in flight. The requester can never ack or
  // give up — without the window eviction its entry would live forever.
  h.k().Post(Micros(250), [&] { h.k().SetNodeUp(0, false); });
  h.Go(0, [&] { h.rpc().Roundtrip(2, 100, []() -> int64_t { return 100; }); });
  int64_t orphans_seen = -1;
  bool second_done = false;
  // Well past the retry window the orphan is still cached (eviction is
  // lazy); the next service insertion sweeps it out.
  h.k().Post(Millis(30), [&] {
    orphans_seen = static_cast<int64_t>(h.rpc().reply_cache_size());
    h.Go(1, [&] {
      RoundtripResult rr = h.rpc().Roundtrip(2, 64, []() -> int64_t { return 32; });
      EXPECT_EQ(rr.status, SendStatus::kOk);
      second_done = true;
    });
  });
  h.k().Run();
  EXPECT_EQ(orphans_seen, 1);
  EXPECT_TRUE(second_done);
  EXPECT_EQ(h.rpc().reply_cache_size(), 0u);  // orphan swept, new entry acked
}

TEST(RpcRetryTest, ReliabilityOffIsLosslessFastPath) {
  RetryHarness h;
  h.rpc().EnableReliability(false);
  int service_runs = 0;
  RoundtripResult rr;
  h.Go(0, [&] {
    rr = h.rpc().Roundtrip(2, 100, [&]() -> int64_t {
      ++service_runs;
      return 100;
    });
  });
  h.k().Run();
  EXPECT_EQ(rr.status, SendStatus::kOk);
  EXPECT_EQ(rr.attempts, 1);
  EXPECT_EQ(service_runs, 1);
  EXPECT_EQ(h.rpc().retries(), 0);
  // Two 100-byte frames: 2 × (100 µs media + 80 µs wire + 10 µs prop) —
  // identical timing to the original lossless model.
  EXPECT_EQ(rr.completed, 2 * (Micros(100) + Micros(80) + Micros(10)));
}

}  // namespace
}  // namespace rpc
