// Tests for the shared-bus network model and the RPC transport.

#include "src/net/network.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "src/rpc/transport.h"
#include "src/rpc/wire.h"
#include "src/sim/stack_pool.h"

namespace net {
namespace {

using amber::Micros;
using amber::Millis;
using amber::Time;
using sim::CostModel;
using sim::Kernel;

CostModel SimpleNet() {
  CostModel c;
  // Zero the CPU-side knobs so wire math is exact in tests.
  c.context_switch = 0;
  c.rpc_send_software = 0;
  c.rpc_recv_software = 0;
  c.marshal_base = 0;
  c.marshal_ns_per_byte = 0;
  c.media_access = Micros(100);
  c.propagation = Micros(10);
  c.bandwidth_bits_per_sec = 10e6;  // 1250 bytes = 1 ms wire time
  c.per_fragment_overhead = 0;
  c.mtu_bytes = 1500;
  return c;
}

class NetHarness {
 public:
  explicit NetHarness(CostModel cost = SimpleNet(), int nodes = 4) : pool_(64 * 1024) {
    Kernel::Config config;
    config.nodes = nodes;
    config.procs_per_node = 1;
    config.cost = cost;
    kernel_ = std::make_unique<Kernel>(config);
    net_ = std::make_unique<Network>(kernel_.get());
    transport_ = std::make_unique<rpc::Transport>(kernel_.get(), net_.get());
  }

  sim::Fiber* Go(sim::NodeId node, std::function<void()> fn) {
    void* stack = pool_.Allocate();
    return kernel_->Spawn(node, stack, pool_.stack_size(), std::move(fn));
  }

  Kernel& k() { return *kernel_; }
  Network& net() { return *net_; }
  rpc::Transport& rpc() { return *transport_; }

 private:
  sim::StackPool pool_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<rpc::Transport> transport_;
};

TEST(NetworkTest, SingleMessageTiming) {
  NetHarness h;
  // 1250 bytes at 10 Mbit/s = 1 ms; +100 µs media access +10 µs propagation.
  const Time arrival = h.net().Send(0, 1, 1250, /*depart=*/0);
  EXPECT_EQ(arrival, Millis(1) + Micros(110));
  EXPECT_EQ(h.net().messages(), 1);
  EXPECT_EQ(h.net().bytes_sent(), 1250);
}

TEST(NetworkTest, SharedBusSerializesConcurrentSenders) {
  NetHarness h;
  // Two identical frames departing at t=0: the second queues behind the
  // first on the medium.
  const Time a1 = h.net().Send(0, 1, 1250, 0);
  const Time a2 = h.net().Send(2, 3, 1250, 0);
  EXPECT_EQ(a2 - a1, Millis(1) + Micros(100));  // one full bus occupancy later
}

TEST(NetworkTest, BusIdleGapNotCharged) {
  NetHarness h;
  h.net().Send(0, 1, 1250, 0);
  // Departs long after the bus is free again: no queueing delay.
  const Time a = h.net().Send(0, 1, 1250, Millis(10));
  EXPECT_EQ(a, Millis(10) + Millis(1) + Micros(110));
}

TEST(NetworkTest, DeliveryCallbackRunsAtArrival) {
  NetHarness h;
  Time delivered_at = -1;
  h.net().Send(0, 1, 0, 0, [&] { delivered_at = h.k().Now(); });
  h.k().Run();
  EXPECT_EQ(delivered_at, Micros(110));
}

TEST(NetworkTest, BulkTransferFragments) {
  NetHarness h;
  // 4500 bytes = 3 MTU fragments.
  h.net().SendBulk(0, 1, 4500, 0);
  EXPECT_EQ(h.net().fragments(), 3);
  EXPECT_EQ(h.net().bytes_sent(), 4500);
  // Wire time: 3 × (100 µs + 1500·8/10e6 s = 1.2 ms) = 3.9 ms of occupancy.
  EXPECT_EQ(h.net().busy_time(), 3 * (Micros(100) + Micros(1200)));
}

TEST(NetworkTest, BulkFasterThanEquivalentDatagramsWithOverhead) {
  CostModel cost = SimpleNet();
  cost.rpc_recv_software = Micros(500);
  cost.per_fragment_overhead = Micros(50);
  NetHarness h(cost);
  const Time bulk = h.net().SendBulk(0, 1, 4500, 0);
  h.net().ResetStats();
  // Same payload as three separate datagrams, each paying the full receive
  // software path.
  Time dgram = 0;
  for (int i = 0; i < 3; ++i) {
    dgram = h.net().Send(0, 1, 1500, dgram);
  }
  EXPECT_LT(bulk, dgram);
}

TEST(NetworkTest, LoopbackBypassesMedium) {
  CostModel cost = SimpleNet();
  cost.rpc_recv_software = Micros(50);
  NetHarness h(cost);
  // src == dst: no media access, no wire time, no propagation — only the
  // receive software path. The shared bus stays free for other senders.
  const Time arrival = h.net().Send(2, 2, 1250, /*depart=*/0);
  EXPECT_EQ(arrival, Micros(50));
  EXPECT_EQ(h.net().busy_time(), 0);
  // A cross-node frame departing at the same instant pays no queueing.
  const Time cross = h.net().Send(0, 1, 1250, 0);
  EXPECT_EQ(cross, Millis(1) + Micros(110) + Micros(50));
}

TEST(NetworkTest, LoopbackStillCountsTrafficAndDelivers) {
  NetHarness h;
  Time delivered_at = -1;
  h.net().Send(3, 3, 700, Millis(1), [&] { delivered_at = h.k().Now(); });
  h.k().Run();
  EXPECT_EQ(delivered_at, Millis(1));  // recv software is 0 in SimpleNet
  EXPECT_EQ(h.net().messages(), 1);
  EXPECT_EQ(h.net().bytes_sent(), 700);
}

class DropEverything : public FaultFilter {
 public:
  FaultDecision OnTransmit(sim::NodeId, sim::NodeId, int64_t, Time, bool) override {
    ++consulted;
    return FaultDecision{FaultAction::kDrop, 0};
  }
  int consulted = 0;
};

TEST(NetworkTest, LoopbackNeverConsultsFaultFilter) {
  NetHarness h;
  DropEverything filter;
  h.net().SetFaultFilter(&filter);
  bool delivered = false;
  const TxResult tx = h.net().SendTracked(1, 1, 64, 0, [&] { delivered = true; });
  h.k().Run();
  EXPECT_TRUE(tx.delivered);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(filter.consulted, 0);
  // A cross-node frame is dropped and the filter sees it.
  const TxResult lost = h.net().SendTracked(0, 1, 64, 0);
  EXPECT_FALSE(lost.delivered);
  EXPECT_EQ(filter.consulted, 1);
}

TEST(TransportTest, TravelMovesFiberWithPayloadCharges) {
  CostModel cost = SimpleNet();
  cost.marshal_base = Micros(100);
  cost.marshal_ns_per_byte = 100.0;  // 1000 bytes → 100 µs
  cost.rpc_send_software = Micros(300);
  cost.rpc_recv_software = Micros(200);
  NetHarness h(cost);
  Time arrived_at = -1;
  sim::NodeId arrived_on = -1;
  h.Go(0, [&] {
    h.rpc().Travel(1, 1000);
    arrived_at = h.k().Now();
    arrived_on = h.k().current()->node;
  });
  h.k().Run();
  EXPECT_EQ(arrived_on, 1);
  // marshal 100+100 µs + send sw 300 µs = depart 500 µs; wire 100+800 µs;
  // prop 10 µs; recv sw 200 µs → 1610 µs; plus dispatch on node 1 (free).
  EXPECT_EQ(arrived_at, Micros(1610));
}

TEST(TransportTest, RoundtripBlocksUntilReply) {
  CostModel cost = SimpleNet();
  NetHarness h(cost);
  Time done_at = -1;
  bool service_ran = false;
  h.Go(0, [&] {
    h.rpc().Roundtrip(2, 100, [&] {
      service_ran = true;
      return int64_t{100};
    });
    done_at = h.k().Now();
  });
  h.k().Run();
  EXPECT_TRUE(service_ran);
  // Two 100-byte frames: 2 × (100 µs media + 80 µs wire + 10 µs prop).
  EXPECT_EQ(done_at, 2 * (Micros(100) + Micros(80) + Micros(10)));
}

TEST(TransportTest, SenderCpuOccupiesProcessor) {
  CostModel cost = SimpleNet();
  cost.rpc_send_software = Millis(2);
  NetHarness h(cost);
  Time other_start = -1;
  h.Go(0, [&] { h.rpc().Send(1, 0); });
  h.Go(0, [&] { other_start = h.k().Now(); });
  h.k().Run();
  // The second fiber waits for the sender's 2 ms software path (1 CPU/node).
  EXPECT_EQ(other_start, Millis(2));
}

TEST(WireTest, RoundTripsScalars) {
  rpc::WireBuffer w;
  w.PutU8(7);
  w.PutU32(0xdeadbeef);
  w.PutU64(1ULL << 60);
  w.PutI64(-42);
  w.PutDouble(3.25);
  w.PutString("amber");
  EXPECT_EQ(w.GetU8(), 7);
  EXPECT_EQ(w.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(w.GetU64(), 1ULL << 60);
  EXPECT_EQ(w.GetI64(), -42);
  EXPECT_EQ(w.GetDouble(), 3.25);
  EXPECT_EQ(w.GetString(), "amber");
  EXPECT_EQ(w.remaining(), 0u);
}

TEST(WireTest, RoundTripsBytesAndPointers) {
  rpc::WireBuffer w;
  int x = 5;
  w.PutPointer(&x);
  const uint8_t blob[4] = {1, 2, 3, 4};
  w.PutBytes(blob, sizeof(blob));
  EXPECT_EQ(w.GetPointer(), &x);
  auto b = w.GetBytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[3], 4);
}

TEST(WireTest, ChecksumDetectsCorruption) {
  rpc::WireBuffer a;
  a.PutString("payload");
  rpc::WireBuffer b;
  b.PutString("paxload");
  EXPECT_NE(a.Checksum(), b.Checksum());
  rpc::WireBuffer c;
  c.PutString("payload");
  EXPECT_EQ(a.Checksum(), c.Checksum());
}

TEST(WireTest, WireSizeAccounting) {
  EXPECT_EQ(rpc::WireSizeOf(int32_t{1}), 4);
  EXPECT_EQ(rpc::WireSizeOf(3.0), 8);
  std::vector<double> row(122);
  EXPECT_EQ(rpc::WireSizeOf(row), 8 + 122 * 8);
  std::string s = "hello";
  EXPECT_EQ(rpc::WireSizeOf(s), 8 + 5);
  EXPECT_EQ(rpc::WireSizeOfAll(int32_t{1}, 3.0, row), 4 + 8 + 8 + 976);
  EXPECT_EQ(rpc::WireSizeOfAll(), 0);
}

TEST(WireTest, TruncatedScalarPanicsInsteadOfReadingPastEnd) {
  std::vector<uint8_t> three_bytes = {1, 2, 3};
  rpc::WireBuffer w(std::move(three_bytes));
  EXPECT_EQ(w.GetU8(), 1);
  EXPECT_DEATH(w.GetU32(), "wire underrun");
}

TEST(WireTest, TruncatedByteBlockPanics) {
  rpc::WireBuffer full;
  full.PutBytes("abcdefgh", 8);
  std::vector<uint8_t> cut(full.bytes().begin(), full.bytes().end() - 3);
  rpc::WireBuffer w(std::move(cut));
  EXPECT_DEATH(w.GetBytes(), "wire decode truncated");
}

TEST(WireTest, CorruptedLengthPrefixDoesNotWrap) {
  // A length prefix of ~2^64 must not wrap cursor+len past the bounds check.
  rpc::WireBuffer evil;
  evil.PutU64(std::numeric_limits<uint64_t>::max() - 2);
  rpc::WireBuffer w(evil.bytes());
  EXPECT_DEATH(w.GetBytes(), "wire decode truncated");
}

TEST(WireTest, RecordRoundTripAndTruncationGuard) {
  struct Header {
    uint32_t seq;
    uint16_t kind;
    uint16_t flags;
  };
  rpc::WireBuffer w;
  w.PutRecord(Header{7, 2, 0xff});
  const auto h = w.GetRecord<Header>();
  EXPECT_EQ(h.seq, 7u);
  EXPECT_EQ(h.kind, 2);
  EXPECT_EQ(h.flags, 0xff);
  EXPECT_EQ(w.remaining(), 0u);
  EXPECT_DEATH(w.GetRecord<Header>(), "wire underrun");
}

}  // namespace
}  // namespace net
