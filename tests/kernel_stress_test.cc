// Property/stress tests for the simulation kernel: a randomized mix of
// charges, syncs, yields, travels, blocks/wakes and spawns must preserve
// the kernel's accounting invariants and remain deterministic.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/sim/kernel.h"
#include "src/sim/stack_pool.h"

namespace sim {
namespace {

using amber::Micros;
using amber::Millis;
using amber::Time;

struct StressResult {
  Time end_time;
  uint64_t dispatches;
  uint64_t preemptions;
  uint64_t events;
  int64_t actions;
  std::vector<amber::Duration> busy;
};

StressResult RunStress(uint64_t seed, int fibers, int nodes, int procs) {
  Kernel::Config config;
  config.nodes = nodes;
  config.procs_per_node = procs;
  config.cost.quantum = Millis(1);
  Kernel kernel(config);
  StackPool pool(64 * 1024);
  StressResult result{};

  std::vector<void*> stacks;
  for (int i = 0; i < fibers; ++i) {
    void* stack = pool.Allocate();
    stacks.push_back(stack);
    kernel.Spawn(i % nodes, stack, pool.stack_size(), [&kernel, &result, seed, i, nodes] {
      amber::Rng rng(seed * 1315423911u + static_cast<uint64_t>(i));
      for (int step = 0; step < 60; ++step) {
        ++result.actions;
        switch (rng.Below(6)) {
          case 0:
          case 1:
            kernel.Charge(Micros(static_cast<double>(50 + rng.Below(400))));
            break;
          case 2:
            kernel.Sync();
            break;
          case 3:
            kernel.Yield();
            break;
          case 4: {
            kernel.Sync();
            const NodeId dst = static_cast<NodeId>(rng.Below(static_cast<uint64_t>(nodes)));
            if (dst != kernel.current()->node) {
              kernel.TravelTo(dst, kernel.Now() + Micros(200));
            }
            break;
          }
          case 5: {
            // Timed sleep: self-scheduled wake, then block. (Cross-fiber
            // wakes are exercised by the lock/condition tests; a random
            // parker here could strand if it parks after all potential
            // wakers have finished.)
            kernel.Sync();
            kernel.Wake(kernel.current(), kernel.Now() + Micros(static_cast<double>(
                                              100 + rng.Below(900))));
            kernel.Block();
            break;
          }
        }
      }
    });
  }
  result.end_time = kernel.Run();
  EXPECT_EQ(kernel.live_fibers(), 0) << "stress run deadlocked";
  result.dispatches = kernel.dispatches();
  result.preemptions = kernel.preemptions();
  result.events = kernel.events_run();
  for (NodeId n = 0; n < nodes; ++n) {
    result.busy.push_back(kernel.NodeBusyTime(n));
  }
  for (void* s : stacks) {
    pool.Free(s);
  }
  return result;
}

class KernelStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelStress, RandomActionMixTerminatesConsistently) {
  const StressResult r = RunStress(GetParam(), /*fibers=*/24, /*nodes=*/4, /*procs=*/2);
  EXPECT_GT(r.end_time, 0);
  EXPECT_EQ(r.actions, 24 * 60);
  // Busy time can never exceed capacity: nodes × procs × elapsed.
  for (amber::Duration busy : r.busy) {
    EXPECT_LE(busy, 2 * r.end_time);
    EXPECT_GE(busy, 0);
  }
  EXPECT_GE(r.dispatches, 24u);  // every fiber dispatched at least once
}

TEST_P(KernelStress, BitIdenticalReruns) {
  const StressResult a = RunStress(GetParam(), 16, 3, 2);
  const StressResult b = RunStress(GetParam(), 16, 3, 2);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.busy, b.busy);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelStress,
                         ::testing::Values(0x1uLL, 0x7uLL, 0x2AuLL, 0xFEEDuLL, 0xC0FFEEuLL));

}  // namespace
}  // namespace sim
