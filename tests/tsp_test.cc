// Tests for the distributed branch-and-bound TSP application.

#include "src/apps/tsp/tsp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tsp {
namespace {

sim::CostModel DefaultCost() { return sim::CostModel{}; }

Params SmallProblem() {
  Params p;
  p.cities = 9;
  p.seed = 3;
  p.prefix_depth = 3;
  p.workers_per_node = 2;
  return p;
}

TEST(TspSequentialTest, FindsAValidTour) {
  const Result r = RunSequentialOn(SmallProblem(), DefaultCost());
  ASSERT_EQ(r.best_tour.size(), 9u);
  // A permutation of all cities starting at 0.
  std::vector<bool> seen(9, false);
  for (int c : r.best_tour) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 9);
    EXPECT_FALSE(seen[static_cast<size_t>(c)]) << "city visited twice";
    seen[static_cast<size_t>(c)] = true;
  }
  EXPECT_EQ(r.best_tour[0], 0);
  // The reported cost matches the tour's actual cost.
  const auto d = MakeDistances(9, 3);
  double cost = 0;
  for (size_t i = 0; i < 9; ++i) {
    cost += d[static_cast<size_t>(r.best_tour[i]) * 9 +
              static_cast<size_t>(r.best_tour[(i + 1) % 9])];
  }
  EXPECT_NEAR(cost, r.best_cost, 1e-9);
}

TEST(TspSequentialTest, PruningBeatsFactorialGrowth) {
  const Result r = RunSequentialOn(SmallProblem(), DefaultCost());
  // 8! = 40320 leaf orderings; B&B must expand far fewer nodes than the
  // full permutation tree (~109600 nodes for n=9).
  EXPECT_LT(r.expansions, 40000);
  EXPECT_GT(r.expansions, 9);
}

class TspParallel : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TspParallel, FindsTheOptimalCost) {
  const auto [nodes, procs] = GetParam();
  const Params p = SmallProblem();
  const Result seq = RunSequentialOn(p, DefaultCost());
  const Result par = RunAmberOn(nodes, procs, p, DefaultCost());
  EXPECT_NEAR(par.best_cost, seq.best_cost, 1e-9)
      << "parallel search missed the optimum (" << nodes << "N x " << procs << "P)";
  ASSERT_EQ(par.best_tour.size(), static_cast<size_t>(p.cities));
}

INSTANTIATE_TEST_SUITE_P(Configs, TspParallel,
                         ::testing::Values(std::make_tuple(1, 2), std::make_tuple(2, 2),
                                           std::make_tuple(4, 1), std::make_tuple(4, 4)),
                         [](const auto& info) {
                           return std::to_string(std::get<0>(info.param)) + "N" +
                                  std::to_string(std::get<1>(info.param)) + "P";
                         });

TEST(TspParallelTest, SpeedsUpOnIrregularWork) {
  Params p = SmallProblem();
  p.cities = 10;
  const Result seq = RunSequentialOn(p, DefaultCost());
  const Result par = RunAmberOn(4, 2, p, DefaultCost());
  EXPECT_NEAR(par.best_cost, seq.best_cost, 1e-9);
  const double speedup =
      static_cast<double>(seq.solve_time) / static_cast<double>(par.solve_time);
  // Irregular subtrees + pool/bound communication: expect real but
  // sublinear speedup on 8 CPUs.
  EXPECT_GT(speedup, 2.0);
}

TEST(TspParallelTest, DeterministicRuns) {
  const Params p = SmallProblem();
  const Result a = RunAmberOn(2, 2, p, DefaultCost());
  const Result b = RunAmberOn(2, 2, p, DefaultCost());
  EXPECT_EQ(a.solve_time, b.solve_time);
  EXPECT_EQ(a.expansions, b.expansions);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.net_messages, b.net_messages);
}

TEST(TspParallelTest, StaleBoundsExpandMoreNodes) {
  // Refreshing the global bound rarely means weaker pruning: the total
  // expansion count should grow as the refresh interval grows.
  Params often = SmallProblem();
  often.cities = 10;
  often.bound_refresh = 16;
  Params rarely = often;
  rarely.bound_refresh = 1 << 20;  // effectively never refresh
  const Result r_often = RunAmberOn(4, 2, often, DefaultCost());
  const Result r_rarely = RunAmberOn(4, 2, rarely, DefaultCost());
  EXPECT_NEAR(r_often.best_cost, r_rarely.best_cost, 1e-9);  // both optimal
  EXPECT_LE(r_often.expansions, r_rarely.expansions);
}

TEST(TspDistancesTest, SymmetricMetricAndDeterministic) {
  const auto a = MakeDistances(8, 42);
  const auto b = MakeDistances(8, 42);
  EXPECT_EQ(a, b);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a[static_cast<size_t>(i) * 8 + i], 0.0);
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(a[static_cast<size_t>(i) * 8 + j], a[static_cast<size_t>(j) * 8 + i]);
      EXPECT_GE(a[static_cast<size_t>(i) * 8 + j], 0.0);
    }
  }
}

}  // namespace
}  // namespace tsp
